package vasppower_test

// Benchmark harness: one testing.B benchmark per table/figure of the
// paper, each regenerating that experiment end to end (workload
// generation, simulated execution, telemetry sampling, and the
// statistical analysis). Run with:
//
//	go test -bench=. -benchmem
//
// The per-iteration wall time is the cost of regenerating the whole
// experiment; cmd/powerstudy prints the actual figures.
//
// Cache policy: every benchmark calls experiments.ResetCache() at the
// top of each iteration, without exception — even for runners that do
// not currently consult the shared measurement cache (TableI renders
// static data; the scheduler and MILC studies keep their own state).
// A cold cache per iteration is what makes the numbers comparable
// across benchmarks and stable when a runner later gains or loses
// cached measurements.

import (
	"testing"

	"vasppower/internal/experiments"
)

// benchCfg is the quick configuration: trimmed sweeps, one repeat —
// enough to exercise every code path of each figure.
func benchCfg() experiments.Config {
	return experiments.Config{Seed: 42, Quick: true, Repeats: 1}
}

func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.ResetCache()
		if _, err := experiments.RunTableI(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig1ProtocolRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.ResetCache()
		if _, err := experiments.RunFig1(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig2SamplingRates(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.ResetCache()
		if _, err := experiments.RunFig2(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3Timelines(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.ResetCache()
		if _, err := experiments.RunFig3(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4And5Scaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.ResetCache()
		if _, err := experiments.RunScaling(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6SizeSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.ResetCache()
		if _, err := experiments.RunFig6(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7ParameterSweeps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.ResetCache()
		if _, err := experiments.RunFig7(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8Concurrency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.ResetCache()
		if _, err := experiments.RunFig8(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9MethodViolins(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.ResetCache()
		if _, err := experiments.RunFig9(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10And12CapStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.ResetCache()
		if _, err := experiments.RunCapStudy(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11CapTimeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.ResetCache()
		if _, err := experiments.RunFig11(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig13CapsAcrossNodeCounts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.ResetCache()
		if _, err := experiments.RunFig13(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtScheduler(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.ResetCache()
		if _, err := experiments.RunExtScheduler(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtRepeats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.ResetCache()
		if _, err := experiments.RunExtRepeats(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtCDVFSVsCapping(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.ResetCache()
		if _, err := experiments.RunExtC(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtDPowerPrediction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.ResetCache()
		if _, err := experiments.RunExtD(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtEMILC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.ResetCache()
		if _, err := experiments.RunExtE(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtFSignatureClustering(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.ResetCache()
		if _, err := experiments.RunExtF(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtGMetricAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.ResetCache()
		if _, err := experiments.RunExtG(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// Warm-disk variants: each measures a runner against a populated
// persistent cache, with the memory tier reset every iteration — the
// shape of a warm-start sweep, where a fresh process finds every
// measurement already on disk. Compare against the plain benchmark of
// the same runner for the warm-vs-cold ratio (BENCH.md records both).
//
// warmDisk attaches a fresh disk tier, runs populate once to fill it,
// and resets the timer so only warm iterations are measured.
func warmDisk(b *testing.B, populate func() error) {
	b.Helper()
	experiments.ResetCache()
	if _, err := experiments.EnableDiskCache(b.TempDir(), 0); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(experiments.DisableDiskCache)
	if err := populate(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
}

func BenchmarkTableIWarmDisk(b *testing.B) {
	warmDisk(b, func() error { _, err := experiments.RunTableI(benchCfg()); return err })
	for i := 0; i < b.N; i++ {
		experiments.ResetCache()
		if _, err := experiments.RunTableI(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4And5ScalingWarmDisk(b *testing.B) {
	warmDisk(b, func() error { _, err := experiments.RunScaling(benchCfg()); return err })
	for i := 0; i < b.N; i++ {
		experiments.ResetCache()
		if _, err := experiments.RunScaling(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10And12CapStudyWarmDisk(b *testing.B) {
	warmDisk(b, func() error { _, err := experiments.RunCapStudy(benchCfg()); return err })
	for i := 0; i < b.N; i++ {
		experiments.ResetCache()
		if _, err := experiments.RunCapStudy(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}
