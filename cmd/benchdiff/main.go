// Command benchdiff compares two `go test -bench` outputs and fails
// on time/op regressions beyond a threshold. It is the repo's stand-in
// for benchstat in CI (no external dependencies):
//
//	benchdiff -new new.txt [-old old.txt] [-threshold 0.10] [-out report.json]
//
// Both files hold standard benchmark lines
// ("BenchmarkName-8  100  12345 ns/op  67 B/op  8 allocs/op");
// repeated -count runs of one benchmark collapse to the minimum ns/op
// (the least-noise estimate on a shared runner) and the minimum
// B/op and allocs/op. Names are compared with the trailing
// -GOMAXPROCS suffix stripped.
//
// The comparison is asymmetric by design: a benchmark present only in
// -new (a new benchmark this change introduces) or only in -old (one
// it removes) is reported but never a failure; only a matched name
// whose new time/op exceeds old × (1 + threshold) fails the run. A
// missing or empty -old file means "no baseline" (first run, or the
// merge base predates the benchmark): the report is still written and
// the exit status is 0.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type result struct {
	Name     string  `json:"name"`
	NsOp     float64 `json:"ns_op"`
	BOp      float64 `json:"b_op,omitempty"`
	AllocsOp float64 `json:"allocs_op,omitempty"`

	// Baseline comparison, present when -old had the same name.
	OldNsOp float64 `json:"old_ns_op,omitempty"`
	Ratio   float64 `json:"ratio,omitempty"` // new/old time per op
}

type report struct {
	Threshold   float64   `json:"threshold"`
	Baseline    bool      `json:"baseline"` // an -old file was read
	Benchmarks  []*result `json:"benchmarks"`
	Regressions []string  `json:"regressions"`
}

func main() {
	oldPath := flag.String("old", "", "baseline `go test -bench` output (optional)")
	newPath := flag.String("new", "", "candidate `go test -bench` output (required)")
	threshold := flag.Float64("threshold", 0.10, "fail when new time/op exceeds old by this fraction")
	out := flag.String("out", "", "also write the JSON report to this file")
	flag.Parse()
	if *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -new is required")
		os.Exit(2)
	}

	news, err := parseFile(*newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	rep := report{Threshold: *threshold, Regressions: []string{}}
	var olds map[string]*result
	if *oldPath != "" {
		if olds, err = parseFile(*oldPath); err == nil {
			rep.Baseline = true
		} else if !os.IsNotExist(err) {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
	}

	for _, name := range sortedNames(news) {
		r := news[name]
		if old, ok := olds[name]; ok && old.NsOp > 0 {
			r.OldNsOp = old.NsOp
			r.Ratio = r.NsOp / old.NsOp
			if r.Ratio > 1+*threshold {
				rep.Regressions = append(rep.Regressions, fmt.Sprintf(
					"%s: %.0f -> %.0f ns/op (%+.1f%%, threshold %+.0f%%)",
					name, old.NsOp, r.NsOp, (r.Ratio-1)*100, *threshold*100))
			}
		}
		rep.Benchmarks = append(rep.Benchmarks, r)
	}

	enc, _ := json.MarshalIndent(rep, "", "  ")
	fmt.Println(string(enc))
	if *out != "" {
		if err := os.WriteFile(*out, append(enc, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
	}
	if len(rep.Regressions) > 0 {
		for _, r := range rep.Regressions {
			fmt.Fprintln(os.Stderr, "REGRESSION", r)
		}
		os.Exit(1)
	}
}

func parseFile(path string) (map[string]*result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return parse(string(data)), nil
}

// parse extracts benchmark results, collapsing repeated runs of one
// name to the per-metric minimum. Names are qualified by the enclosing
// "pkg:" header — two packages may define benchmarks with the same
// name (both internal/core and internal/workloads have a
// BenchmarkCapSweep) and must not conflate.
func parse(text string) map[string]*result {
	out := make(map[string]*result)
	pkg := ""
	for _, line := range strings.Split(text, "\n") {
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[0] == "pkg:" {
			pkg = fields[1]
			continue
		}
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := stripProcs(fields[0])
		if pkg != "" {
			name = pkg + "." + name
		}
		r := &result{Name: name, NsOp: -1, BOp: -1, AllocsOp: -1}
		// fields[1] is the iteration count; after it come value/unit
		// pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			switch fields[i+1] {
			case "ns/op":
				r.NsOp = v
			case "B/op":
				r.BOp = v
			case "allocs/op":
				r.AllocsOp = v
			}
		}
		if r.NsOp < 0 {
			continue
		}
		if prev, ok := out[name]; ok {
			prev.NsOp = minKeep(prev.NsOp, r.NsOp)
			prev.BOp = minKeep(prev.BOp, r.BOp)
			prev.AllocsOp = minKeep(prev.AllocsOp, r.AllocsOp)
			continue
		}
		if r.BOp < 0 {
			r.BOp = 0
		}
		if r.AllocsOp < 0 {
			r.AllocsOp = 0
		}
		out[name] = r
	}
	return out
}

func minKeep(a, b float64) float64 {
	if b < 0 {
		return a
	}
	if b < a {
		return b
	}
	return a
}

// stripProcs removes the trailing -GOMAXPROCS suffix go test appends.
func stripProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

func sortedNames(m map[string]*result) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	for i := 1; i < len(names); i++ { // insertion sort; tiny n
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return names
}
