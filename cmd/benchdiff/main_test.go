package main

import "testing"

const sample = `goos: linux
goarch: amd64
pkg: vasppower/internal/workloads
cpu: AMD EPYC 7J13 64-Core Processor
BenchmarkCapSweep/points=16/engine=incremental-8         	     212	   5500123 ns/op	    2048 B/op	      12 allocs/op
BenchmarkCapSweep/points=16/engine=incremental-8         	     210	   5612000 ns/op	    2050 B/op	      12 allocs/op
BenchmarkCapSweep/points=16/engine=oracle-8              	      24	  47500000 ns/op	  901234 B/op	    5120 allocs/op
BenchmarkCapSolverSolve/mode=mem-8                       	 6721490	       178.6 ns/op
PASS
ok  	vasppower/internal/workloads	12.3s
`

func TestParse(t *testing.T) {
	got := parse(sample)
	if len(got) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(got))
	}
	inc, ok := got["vasppower/internal/workloads.BenchmarkCapSweep/points=16/engine=incremental"]
	if !ok {
		t.Fatalf("incremental entry missing (GOMAXPROCS suffix not stripped, or pkg prefix lost?): %v", got)
	}
	if inc.NsOp != 5500123 {
		t.Errorf("repeated runs: ns/op = %g, want the minimum 5500123", inc.NsOp)
	}
	if inc.BOp != 2048 || inc.AllocsOp != 12 {
		t.Errorf("B/op, allocs/op = %g, %g, want 2048, 12", inc.BOp, inc.AllocsOp)
	}
	solve, ok := got["vasppower/internal/workloads.BenchmarkCapSolverSolve/mode=mem"]
	if !ok || solve.NsOp != 178.6 {
		t.Fatalf("fractional ns/op line without -benchmem columns: got %+v", solve)
	}
	if solve.BOp != 0 || solve.AllocsOp != 0 {
		t.Errorf("missing mem columns should read as 0, got %g, %g", solve.BOp, solve.AllocsOp)
	}
}

func TestParseIgnoresNoise(t *testing.T) {
	got := parse("BenchmarkBroken-8 notanumber ns/op\nrandom text\nBenchmark\n")
	if len(got) != 0 {
		t.Fatalf("noise lines parsed as benchmarks: %v", got)
	}
}
