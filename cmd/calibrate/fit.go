package main

import (
	"fmt"
	"math"
	"sort"

	"vasppower/internal/hw/gpu"
	"vasppower/internal/hw/platform"
)

// Black-box efficiency-table fitting (-fit-tables). The device is
// treated as the measurement apparatus: the fitter only calls
// UncappedDuration and UncappedPower on probe kernels — exactly what a
// calibration campaign can observe on real hardware — and inverts the
// roofline and power models to recover every table parameter:
//
//   - response caps from saturated probes (all axes huge),
//   - the occupancy floor from degenerate probes (an active axis tiny),
//   - per-axis half-saturation points from the two-probe ratio
//     r = sat(a1,h)/sat(a2,h)  =>  h = a1·a2·(1−r)/(r·a2 − a1),
//     sampled in the mid-band (15–85% of cap) where the inversion is
//     well conditioned and clear of both the floor and saturation,
//   - SM activity from power probes at full clock (duty 1, no memory
//     traffic), detecting the derive-from-compute convention by
//     comparing against compute occupancy across probe configurations,
//   - launch latency and per-class factors from the duration slope in
//     the launch count,
//   - the entropy response from dynamic-power ratios at e = 0.25, 0.75.

const (
	probeHuge  = 1e30 // saturates every axis (sat rounds to exactly 1)
	probeTiny  = 1e-30
	probeFlops = 1e15
	probeBytes = 1e14
)

type fitter struct {
	g  *gpu.GPU
	sp gpu.Spec
}

// fitTables recovers the platform's efficiency table from black-box
// probes of a nominal (no-variability) device.
func fitTables(p platform.Platform) (*gpu.EfficiencyModel, error) {
	if p.Efficiency == nil {
		return nil, fmt.Errorf("platform %s carries no efficiency table to refit", p.Name)
	}
	f := &fitter{g: gpu.New(p.GPU, p.Efficiency, 0, nil, gpu.Variability{}), sp: p.GPU}
	classes := make([]gpu.KernelClass, 0, len(p.Efficiency.Classes))
	for c := range p.Efficiency.Classes {
		classes = append(classes, c)
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })

	m := &gpu.EfficiencyModel{
		Name:    p.Name + "-fit",
		Classes: make(map[gpu.KernelClass]gpu.ClassEfficiency, len(classes)),
	}

	// Launch-latency slopes: λ_c = LaunchLatency · factor_c. The base
	// latency is the smallest slope (factor 1); factors are ratios.
	lambdas := make(map[gpu.KernelClass]float64, len(classes))
	minLambda := math.Inf(1)
	for _, c := range classes {
		l := f.launchSlope(c)
		lambdas[c] = l
		minLambda = math.Min(minLambda, l)
	}
	if minLambda > 0 && !math.IsInf(minLambda, 1) {
		m.LaunchLatency = minLambda
	}

	for _, c := range classes {
		ce := gpu.ClassEfficiency{
			Compute: fitResponse(f.compOcc(c)),
			Memory:  fitResponse(f.memOcc(c)),
		}
		smaF, compF := f.smAct(c), f.compOcc(c)
		derive := true
		for _, cfg := range probeConfigs() {
			if math.Abs(smaF(cfg)-compF(cfg)) > 1e-9 {
				derive = false
				break
			}
		}
		if !derive {
			ce.SMActivity = fitResponse(smaF)
		}
		if m.LaunchLatency > 0 {
			factor := lambdas[c] / m.LaunchLatency
			if math.Abs(factor-1) > 1e-6 {
				ce.LaunchFactor = factor
			}
		}
		m.Classes[c] = ce
	}

	// The occupancy floor is what a degenerate compute probe lands on.
	floorDone := false
	for _, c := range classes {
		for i, h := range m.Classes[c].Compute.Half {
			if h > 0 {
				axes := [3]float64{probeHuge, probeHuge, probeHuge}
				axes[i] = probeTiny
				m.OccFloor = f.compOcc(c)(axes)
				floorDone = true
				break
			}
		}
		if floorDone {
			break
		}
	}
	if !floorDone {
		return nil, fmt.Errorf("fit-tables: no saturating compute response to probe the occupancy floor")
	}

	m.Entropy = f.fitEntropy(classes[0])

	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("fit-tables: fitted table invalid: %w", err)
	}
	return m, nil
}

// compOcc measures achieved compute occupancy at the given axes from
// the duration of a flops-only probe: occ = F / (d · PeakFlops).
func (f *fitter) compOcc(c gpu.KernelClass) func([3]float64) float64 {
	return func(axes [3]float64) float64 {
		k := gpu.Kernel{Name: "fit-comp", Class: c, Flops: probeFlops, Axes: axes}
		return probeFlops / (f.g.UncappedDuration(k) * f.sp.PeakFlops)
	}
}

// memOcc measures achieved memory occupancy from a bytes-only probe:
// occ = B / (d · PeakMemBW).
func (f *fitter) memOcc(c gpu.KernelClass) func([3]float64) float64 {
	return func(axes [3]float64) float64 {
		k := gpu.Kernel{Name: "fit-mem", Class: c, Bytes: probeBytes, Axes: axes}
		return probeBytes / (f.g.UncappedDuration(k) * f.sp.PeakMemBW)
	}
}

// smAct measures SM activity from sustained power at full clock: with
// no memory traffic and no launch latency, P = Idle + Base +
// CompPowerFull · sma · clockFactor(1).
func (f *fitter) smAct(c gpu.KernelClass) func([3]float64) float64 {
	cf := f.sp.Gamma + (1 - f.sp.Gamma)
	return func(axes [3]float64) float64 {
		k := gpu.Kernel{Name: "fit-sma", Class: c, Flops: probeFlops, Axes: axes}
		p := f.g.UncappedPower(k)
		return (p - f.sp.IdleWatts - f.sp.ActiveBase) / (f.sp.CompPowerFull * cf)
	}
}

// launchSlope measures d(duration)/d(launches) at saturated axes.
func (f *fitter) launchSlope(c gpu.KernelClass) float64 {
	k := gpu.Kernel{Name: "fit-lat", Class: c, Flops: probeFlops,
		Axes: [3]float64{probeHuge, probeHuge, probeHuge}}
	d0 := f.g.UncappedDuration(k)
	k.Launches = 1e6
	d1 := f.g.UncappedDuration(k)
	return (d1 - d0) / 1e6
}

// fitEntropy recovers the entropy→dynamic-power response from two
// probes: scale(e) = dyn(e)/dyn(0) = 1 + S·(e − Ref).
func (f *fitter) fitEntropy(c gpu.KernelClass) gpu.EntropyModel {
	dyn := func(e float64) float64 {
		k := gpu.Kernel{Name: "fit-entropy", Class: c, Flops: probeFlops,
			Axes: [3]float64{probeHuge, probeHuge, probeHuge}, Entropy: e}
		return f.g.UncappedPower(k) - f.sp.IdleWatts - f.sp.ActiveBase
	}
	d0 := dyn(0)
	if d0 <= 0 {
		return gpu.EntropyModel{}
	}
	s1, s2 := dyn(0.25)/d0, dyn(0.75)/d0
	sens := (s2 - s1) / 0.5
	if math.Abs(sens) < 1e-9 {
		return gpu.EntropyModel{}
	}
	return gpu.EntropyModel{Ref: 0.25 + (1-s1)/sens, Sensitivity: sens}
}

// fitResponse recovers one saturating response — cap plus per-axis
// half-saturation points — from black-box probes of v(axes).
func fitResponse(v func([3]float64) float64) gpu.Response {
	allHuge := [3]float64{probeHuge, probeHuge, probeHuge}
	cap := v(allHuge)
	var half [3]float64
	for i := 0; i < 3; i++ {
		axes := allHuge
		axes[i] = probeTiny
		vFloor := v(axes) // plateau (occupancy floor / zero) when active
		if math.Abs(vFloor-cap) <= 1e-9*cap {
			continue // axis does not modulate this response
		}
		// Mid-band acceptance: clear of the floor plateau below and of
		// saturation above, where the two-probe inversion is stable.
		lo := math.Max(0.15*cap, vFloor*1.01)
		hi := 0.85 * cap
		var a1, v1 float64
		for a := 1e-2; a <= 1e16; a *= 10 {
			axes[i] = a
			if val := v(axes); val > lo && val < hi {
				a1, v1 = a, val
				break
			}
		}
		if a1 == 0 {
			continue // half-saturation below probe resolution
		}
		a2 := a1 * 10
		axes[i] = a2
		v2 := v(axes)
		r := v1 / v2
		h := a1 * a2 * (1 - r) / (r*a2 - a1)
		if h > 0 && !math.IsNaN(h) && !math.IsInf(h, 0) {
			half[i] = h
		}
	}
	return gpu.Response{Cap: cap, Half: half}
}

// probeConfigs spans the axes space for the derive-from-compute
// detection: the saturated point plus three magnitudes per axis.
func probeConfigs() [][3]float64 {
	cfgs := [][3]float64{{probeHuge, probeHuge, probeHuge}}
	for i := 0; i < 3; i++ {
		for _, a := range []float64{1e2, 1e6, 1e10} {
			c := [3]float64{probeHuge, probeHuge, probeHuge}
			c[i] = a
			cfgs = append(cfgs, c)
		}
	}
	return cfgs
}
