package main

import (
	"math"
	"sort"
	"testing"

	"vasppower/internal/hw/gpu"
	"vasppower/internal/hw/platform"
)

func close6(a, b float64) bool {
	return math.Abs(a-b) <= 1e-6*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

// TestFitRecoversDefaultTable is the -fit-tables acceptance check: the
// black-box fitter, probing only durations and powers, must recover a
// table behaviorally equivalent to the calibrated perlmutter-a100
// default across the axes space.
func TestFitRecoversDefaultTable(t *testing.T) {
	p := platform.Default()
	fitted, err := fitTables(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := fitted.Validate(); err != nil {
		t.Fatal(err)
	}

	truth := p.Efficiency
	if !close6(fitted.OccFloor, truth.OccFloor) {
		t.Fatalf("occupancy floor %v, want %v", fitted.OccFloor, truth.OccFloor)
	}
	if !close6(fitted.LaunchLatency, truth.LaunchLatency) {
		t.Fatalf("launch latency %v, want %v", fitted.LaunchLatency, truth.LaunchLatency)
	}
	if !close6(fitted.Entropy.Sensitivity, truth.Entropy.Sensitivity) ||
		!close6(fitted.Entropy.Ref, truth.Entropy.Ref) {
		t.Fatalf("entropy model %+v, want %+v", fitted.Entropy, truth.Entropy)
	}

	classes := make([]gpu.KernelClass, 0, len(truth.Classes))
	for c := range truth.Classes {
		classes = append(classes, c)
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })
	if len(fitted.Classes) != len(classes) {
		t.Fatalf("fitted %d classes, want %d", len(fitted.Classes), len(classes))
	}

	// Behavioral sweep: every class, a grid of axes magnitudes, with
	// latency and entropy in play.
	vals := []float64{10, 1e3, 1e5, 1e8, 1e12}
	for _, c := range classes {
		for _, a0 := range vals {
			for _, a1 := range vals {
				for _, a2 := range vals {
					k := gpu.Kernel{
						Name: "sweep", Class: c,
						Flops: 1e12, Bytes: 1e11,
						Axes:     [3]float64{a0, a1, a2},
						Launches: 17, LatencyScale: 12, Entropy: 0.4,
					}
					want, err := truth.Resolve(k)
					if err != nil {
						t.Fatal(err)
					}
					got, err := fitted.Resolve(k)
					if err != nil {
						t.Fatalf("%s: fitted table cannot resolve: %v", c, err)
					}
					if !close6(got.ComputeOcc, want.ComputeOcc) ||
						!close6(got.MemOcc, want.MemOcc) ||
						!close6(got.SMActivity, want.SMActivity) ||
						!close6(got.Latency, want.Latency) ||
						!close6(got.PowerScale, want.PowerScale) {
						t.Fatalf("%s axes %v: fitted %+v, want %+v", c, k.Axes, got, want)
					}
				}
			}
		}
	}
}
