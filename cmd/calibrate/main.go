// Command calibrate prints the model's power/performance landing
// points against the paper's published targets, for tuning the
// platform efficiency tables.
//
// Modes:
//
//	calibrate                  human-readable landing-point report
//	calibrate -json            machine-readable report, exit 1 on drift
//	calibrate -tolerances F    judge against a checked-in drift budget
//	calibrate -fit-tables      refit the platform's efficiency table
//	                           from black-box device probes, emit JSON
//
// Every measurement goes through the process-wide two-tier result
// cache; with -cache-dir set, repeated calibration passes (the whole
// point of the tool) reuse each other's simulations instead of
// re-running them.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"vasppower/internal/core"
	"vasppower/internal/experiments"
	"vasppower/internal/hw/platform"
	"vasppower/internal/obs"
	"vasppower/internal/workloads"
)

func main() {
	cacheDir := flag.String("cache-dir", "", "persistent measurement-cache directory (empty = in-memory only)")
	cacheMaxBytes := flag.Int64("cache-max-bytes", 1<<30, "persistent cache size bound in bytes, LRU-evicted (0 = unbounded)")
	jsonOut := flag.Bool("json", false, "emit the machine-readable calibration report on stdout; exit 1 on drift")
	tolPath := flag.String("tolerances", "", "JSON drift-budget file (see calibration-tolerances.json); enables drift gating in text mode too")
	platName := flag.String("platform", "", "platform to calibrate (default: "+platform.DefaultName+")")
	fitFlag := flag.Bool("fit-tables", false, "fit an efficiency table from black-box device probes and write it as JSON")
	outPath := flag.String("out", "", "output file for -fit-tables (default stdout)")
	version := flag.Bool("version", false, "print module version, VCS revision, and dirty flag, then exit")
	flag.Parse()
	if *version {
		fmt.Println(obs.VersionString("calibrate"))
		return
	}

	p := platform.Default()
	if *platName != "" {
		var err error
		if p, err = platform.Get(*platName); err != nil {
			fatal(err)
		}
	}

	if *fitFlag {
		m, err := fitTables(p)
		if err != nil {
			fatal(err)
		}
		blob, err := json.MarshalIndent(m, "", "  ")
		if err != nil {
			fatal(err)
		}
		blob = append(blob, '\n')
		if *outPath != "" {
			if err := os.WriteFile(*outPath, blob, 0o644); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "calibrate: fitted table %s written to %s\n", m.Name, *outPath)
		} else {
			os.Stdout.Write(blob)
		}
		return
	}

	if *cacheDir != "" {
		if _, err := experiments.EnableDiskCache(*cacheDir, *cacheMaxBytes); err != nil {
			fatal(err)
		}
	}

	tol := defaultTolerances()
	if *tolPath != "" {
		var err error
		if tol, err = loadTolerances(*tolPath); err != nil {
			fatal(err)
		}
	}

	const seed = 42
	measure := experiments.CachedMeasureSpec
	rep, err := buildReport(measure, p, tol, seed)
	if err != nil {
		fatal(err)
	}

	if *jsonOut {
		if err := rep.writeJSON(os.Stdout); err != nil {
			fatal(err)
		}
	} else {
		rep.writeText(os.Stdout)
		printParallelEfficiency(measure, p, seed)
	}
	if !rep.Pass && (*jsonOut || *tolPath != "") {
		os.Exit(1)
	}
}

// printParallelEfficiency renders the strong-scaling section of the
// text report (not part of the drift gate: PE targets are bounds the
// repo's own tests enforce).
func printParallelEfficiency(measure func(core.MeasureSpec) (core.JobProfile, error), p platform.Platform, seed uint64) {
	fmt.Println("\n=== Parallel efficiency, Si256_hse (target: >=70% to ~8-16 nodes) ===")
	b, _ := workloads.ByName("Si256_hse")
	base, err := measure(core.MeasureSpec{Bench: b, Platform: p, Nodes: 1, Seed: seed})
	if err != nil {
		fmt.Fprintln(os.Stderr, "calibrate:", err)
		return
	}
	for _, n := range []int{2, 4, 8, 16, 32} {
		jp, err := measure(core.MeasureSpec{Bench: b, Platform: p, Nodes: n, Seed: seed})
		if err != nil {
			fmt.Printf("  %2d nodes: %v\n", n, err)
			continue
		}
		pe := base.Runtime / jp.Runtime / float64(n)
		mode := 0.0
		if jp.NodeTotal.HasMode {
			mode = jp.NodeTotal.HighMode.X
		}
		fmt.Printf("  %2d nodes: runtime %7.1fs  PE %5.1f%%  nodeMode %6.0f W  energy %6.2f MJ\n",
			n, jp.Runtime, pe*100, mode, jp.EnergyJ/1e6)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "calibrate:", err)
	os.Exit(2)
}
