// Command calibrate prints the model's power/performance landing
// points against the paper's published targets, for tuning the
// workload-model constants.
//
// Every measurement goes through the process-wide two-tier result
// cache; with -cache-dir set, repeated calibration passes (the whole
// point of the tool) reuse each other's simulations instead of
// re-running them.
package main

import (
	"flag"
	"fmt"
	"os"

	"vasppower/internal/core"
	"vasppower/internal/experiments"
	"vasppower/internal/hw/platform"
	"vasppower/internal/obs"
	"vasppower/internal/workloads"
)

func main() {
	cacheDir := flag.String("cache-dir", "", "persistent measurement-cache directory (empty = in-memory only)")
	cacheMaxBytes := flag.Int64("cache-max-bytes", 1<<30, "persistent cache size bound in bytes, LRU-evicted (0 = unbounded)")
	version := flag.Bool("version", false, "print module version, VCS revision, and dirty flag, then exit")
	flag.Parse()
	if *version {
		fmt.Println(obs.VersionString("calibrate"))
		return
	}
	if *cacheDir != "" {
		if _, err := experiments.EnableDiskCache(*cacheDir, *cacheMaxBytes); err != nil {
			fmt.Fprintln(os.Stderr, "calibrate:", err)
			os.Exit(2)
		}
	}

	measure := experiments.CachedMeasureSpec

	fmt.Println("=== Table I benchmarks @ 1 node (targets: node mode 766..1814 W) ===")
	fmt.Printf("%-14s %9s %9s %9s %8s %8s %8s\n",
		"bench", "runtime", "nodeMode", "gpuMode", "gpuShare", "cpumem%", "meanNode")
	targets := map[string]float64{
		"Si256_hse": 1810, "B.hR105_hse": 1430, "PdO4": 1150, "PdO2": 1000,
		"GaAsBi-64": 766, "CuC_vdw": 950, "Si128_acfdtr": 1814,
	}
	for _, b := range workloads.TableI() {
		jp, err := measure(core.MeasureSpec{Bench: b, Nodes: 1, Seed: 42})
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", b.Name, err)
			continue
		}
		nodeMode := 0.0
		if jp.NodeTotal.HasMode {
			nodeMode = jp.NodeTotal.HighMode.X
		}
		gpuMode := 0.0
		if jp.GPUs[0].HasMode {
			gpuMode = jp.GPUs[0].HighMode.X
		}
		fmt.Printf("%-14s %8.0fs %6.0f W (tgt %4.0f) %6.0f W %7.1f%% %7.1f%% %7.0f W\n",
			b.Name, jp.Runtime, nodeMode, targets[b.Name], gpuMode,
			jp.GPUShareOfNode()*100, jp.CPUMemShareOfNode()*100, jp.NodeTotal.Summary.Mean)
	}

	fmt.Println("\n=== Cap response (targets: 300W ~0%, 200W ~9% hungry, 100W ~60% hungry / <5% GaAsBi,PdO2) ===")
	for _, name := range []string{"Si256_hse", "Si128_acfdtr", "GaAsBi-64", "PdO2"} {
		b, _ := workloads.ByName(name)
		base, err := measure(core.MeasureSpec{Bench: b, Nodes: b.OptimalNodes, Seed: 42})
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			continue
		}
		tdp := platform.Default().GPU.TDP
		fmt.Printf("%-14s @%d nodes: ", name, b.OptimalNodes)
		for _, capW := range []float64{400, 300, 200, 100} {
			// A cap at or above the GPU's TDP is the default limit and
			// reuses the baseline, as on the real machine.
			jp := base
			if capW > 0 && capW < tdp {
				jp, err = measure(core.MeasureSpec{Bench: b, Nodes: b.OptimalNodes, CapW: capW, Seed: 42})
				if err != nil {
					fmt.Fprintf(os.Stderr, "%s @%v W: %v\n", name, capW, err)
					continue
				}
			}
			slow := jp.Runtime/base.Runtime - 1
			gpuMode, cnt := 0.0, 0
			for _, g := range jp.GPUs {
				if g.HasMode {
					gpuMode += g.HighMode.X
					cnt++
				}
			}
			if cnt > 0 {
				gpuMode /= float64(cnt)
			}
			fmt.Printf(" %3.0fW:%+5.1f%%(mode %3.0f)", capW, slow*100, gpuMode)
		}
		fmt.Println()
	}

	fmt.Println("\n=== Parallel efficiency, Si256_hse (target: >=70% to ~8-16 nodes) ===")
	b, _ := workloads.ByName("Si256_hse")
	base, _ := measure(core.MeasureSpec{Bench: b, Nodes: 1, Seed: 42})
	for _, n := range []int{2, 4, 8, 16, 32} {
		jp, err := measure(core.MeasureSpec{Bench: b, Nodes: n, Seed: 42})
		if err != nil {
			fmt.Printf("  %2d nodes: %v\n", n, err)
			continue
		}
		pe := base.Runtime / jp.Runtime / float64(n)
		mode := 0.0
		if jp.NodeTotal.HasMode {
			mode = jp.NodeTotal.HighMode.X
		}
		fmt.Printf("  %2d nodes: runtime %7.1fs  PE %5.1f%%  nodeMode %6.0f W  energy %6.2f MJ\n",
			n, jp.Runtime, pe*100, mode, jp.EnergyJ/1e6)
	}
}
