package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"vasppower/internal/core"
	"vasppower/internal/hw/platform"
	"vasppower/internal/workloads"
)

// nodeTargets are the paper's published highest-power node modes at
// one node (Fig. 5 / §IV), the landing points calibration drives
// toward.
var nodeTargets = map[string]float64{
	"Si256_hse": 1810, "B.hR105_hse": 1430, "PdO4": 1150, "PdO2": 1000,
	"GaAsBi-64": 766, "CuC_vdw": 950, "Si128_acfdtr": 1814,
}

// capSweepBenches are the benchmarks whose cap response the report
// measures, at their optimal node counts (Figs. 10, 12).
var capSweepBenches = []string{"Si256_hse", "Si128_acfdtr", "GaAsBi-64", "PdO2"}

// capSweepCaps are the power-cap settings of the paper's sweep.
var capSweepCaps = []float64{400, 300, 200, 100}

// Tolerances is the checked-in drift budget (calibration-tolerances.json
// at the repo root): how far each landing point may move before CI
// fails the calibration-drift job.
type Tolerances struct {
	// DefaultTolerance is the allowed relative drift |mode−target|/target
	// for node-mode landing points without a per-benchmark override.
	DefaultTolerance float64            `json:"default_tolerance"`
	Benchmarks       map[string]float64 `json:"benchmarks,omitempty"`
	CapChecks        []CapTolerance     `json:"cap_checks,omitempty"`
}

// CapTolerance bounds the relative slowdown of one (benchmark, cap)
// point of the cap sweep.
type CapTolerance struct {
	Bench string  `json:"bench"`
	CapW  float64 `json:"cap_w"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
}

func defaultTolerances() Tolerances {
	return Tolerances{DefaultTolerance: 0.15}
}

func loadTolerances(path string) (Tolerances, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return Tolerances{}, err
	}
	var t Tolerances
	if err := json.Unmarshal(blob, &t); err != nil {
		return Tolerances{}, fmt.Errorf("%s: %w", path, err)
	}
	if t.DefaultTolerance <= 0 {
		return Tolerances{}, fmt.Errorf("%s: default_tolerance must be positive", path)
	}
	return t, nil
}

func (t Tolerances) forBench(name string) float64 {
	if tol, ok := t.Benchmarks[name]; ok {
		return tol
	}
	return t.DefaultTolerance
}

func (t Tolerances) forCap(bench string, capW float64) (CapTolerance, bool) {
	for _, c := range t.CapChecks {
		if c.Bench == bench && c.CapW == capW {
			return c, true
		}
	}
	return CapTolerance{}, false
}

// BenchPoint is one benchmark's landing point against its published
// target.
type BenchPoint struct {
	Name      string  `json:"name"`
	Nodes     int     `json:"nodes"`
	RuntimeS  float64 `json:"runtime_s"`
	NodeModeW float64 `json:"node_mode_w"`
	TargetW   float64 `json:"target_w"`
	Drift     float64 `json:"drift"` // (mode − target)/target
	Tolerance float64 `json:"tolerance"`
	GPUModeW  float64 `json:"gpu_mode_w"`
	GPUShare  float64 `json:"gpu_share"`
	MeanNodeW float64 `json:"mean_node_w"`
	Pass      bool    `json:"pass"`
}

// CapCheck is one point of the cap sweep. Checked marks points with a
// tolerance bound; unchecked points are informational and always pass.
type CapCheck struct {
	Bench    string  `json:"bench"`
	Nodes    int     `json:"nodes"`
	CapW     float64 `json:"cap_w"`
	Slowdown float64 `json:"slowdown"` // runtime(cap)/runtime(uncapped) − 1
	GPUModeW float64 `json:"gpu_mode_w"`
	Checked  bool    `json:"checked"`
	Min      float64 `json:"min,omitempty"`
	Max      float64 `json:"max,omitempty"`
	Pass     bool    `json:"pass"`
}

// Report is the machine-readable calibration status: where the model
// lands against the paper's published targets, and whether every point
// is inside its drift budget.
type Report struct {
	Platform         string       `json:"platform"`
	TableHash        string       `json:"table_hash"`
	Seed             uint64       `json:"seed"`
	DefaultTolerance float64      `json:"default_tolerance"`
	Benchmarks       []BenchPoint `json:"benchmarks"`
	CapChecks        []CapCheck   `json:"cap_checks"`
	Pass             bool         `json:"pass"`
}

// buildReport measures every landing point through the given measure
// function (the cached path) and judges it against the tolerances.
func buildReport(measure func(core.MeasureSpec) (core.JobProfile, error), p platform.Platform, tol Tolerances, seed uint64) (Report, error) {
	rep := Report{
		Platform:         p.Name,
		Seed:             seed,
		DefaultTolerance: tol.DefaultTolerance,
		Pass:             true,
	}
	if p.Efficiency != nil {
		rep.TableHash = p.Efficiency.Hash()
	}
	for _, b := range workloads.TableI() {
		jp, err := measure(core.MeasureSpec{Bench: b, Platform: p, Nodes: 1, Seed: seed})
		if err != nil {
			return Report{}, fmt.Errorf("%s: %w", b.Name, err)
		}
		pt := BenchPoint{
			Name: b.Name, Nodes: 1,
			RuntimeS:  jp.Runtime,
			TargetW:   nodeTargets[b.Name],
			Tolerance: tol.forBench(b.Name),
			GPUShare:  jp.GPUShareOfNode(),
			MeanNodeW: jp.NodeTotal.Summary.Mean,
		}
		if jp.NodeTotal.HasMode {
			pt.NodeModeW = jp.NodeTotal.HighMode.X
		}
		if len(jp.GPUs) > 0 && jp.GPUs[0].HasMode {
			pt.GPUModeW = jp.GPUs[0].HighMode.X
		}
		if pt.TargetW > 0 {
			pt.Drift = (pt.NodeModeW - pt.TargetW) / pt.TargetW
			pt.Pass = pt.Drift >= -pt.Tolerance && pt.Drift <= pt.Tolerance
		} else {
			pt.Pass = true // no published target for this benchmark
		}
		if !pt.Pass {
			rep.Pass = false
		}
		rep.Benchmarks = append(rep.Benchmarks, pt)
	}
	tdp := p.GPU.TDP
	for _, name := range capSweepBenches {
		b, ok := workloads.ByName(name)
		if !ok {
			return Report{}, fmt.Errorf("unknown cap-sweep benchmark %q", name)
		}
		base, err := measure(core.MeasureSpec{Bench: b, Platform: p, Nodes: b.OptimalNodes, Seed: seed})
		if err != nil {
			return Report{}, fmt.Errorf("%s: %w", name, err)
		}
		for _, capW := range capSweepCaps {
			jp := base
			if capW > 0 && capW < tdp {
				jp, err = measure(core.MeasureSpec{Bench: b, Platform: p, Nodes: b.OptimalNodes, CapW: capW, Seed: seed})
				if err != nil {
					return Report{}, fmt.Errorf("%s @%v W: %w", name, capW, err)
				}
			}
			cc := CapCheck{
				Bench: name, Nodes: b.OptimalNodes, CapW: capW,
				Slowdown: jp.Runtime/base.Runtime - 1,
				GPUModeW: meanGPUMode(jp),
				Pass:     true,
			}
			if bound, ok := tol.forCap(name, capW); ok {
				cc.Checked = true
				cc.Min, cc.Max = bound.Min, bound.Max
				cc.Pass = cc.Slowdown >= bound.Min && cc.Slowdown <= bound.Max
				if !cc.Pass {
					rep.Pass = false
				}
			}
			rep.CapChecks = append(rep.CapChecks, cc)
		}
	}
	return rep, nil
}

func meanGPUMode(jp core.JobProfile) float64 {
	mode, cnt := 0.0, 0
	for _, g := range jp.GPUs {
		if g.HasMode {
			mode += g.HighMode.X
			cnt++
		}
	}
	if cnt == 0 {
		return 0
	}
	return mode / float64(cnt)
}

// writeJSON emits the report as indented JSON.
func (r Report) writeJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// writeText renders the human-readable calibration summary the tool
// has always printed.
func (r Report) writeText(w io.Writer) {
	fmt.Fprintf(w, "=== Table I benchmarks @ 1 node (platform %s, table %s) ===\n", r.Platform, r.TableHash)
	fmt.Fprintf(w, "%-14s %9s %9s %9s %8s %9s %6s\n",
		"bench", "runtime", "nodeMode", "gpuMode", "gpuShare", "meanNode", "drift")
	for _, pt := range r.Benchmarks {
		status := ""
		if !pt.Pass {
			status = "  DRIFT"
		}
		fmt.Fprintf(w, "%-14s %8.0fs %6.0f W (tgt %4.0f) %6.0f W %7.1f%% %7.0f W %+5.1f%%%s\n",
			pt.Name, pt.RuntimeS, pt.NodeModeW, pt.TargetW, pt.GPUModeW,
			pt.GPUShare*100, pt.MeanNodeW, pt.Drift*100, status)
	}
	fmt.Fprintf(w, "\n=== Cap response (targets: 300W ~0%%, 200W ~9%% hungry, 100W ~60%% hungry / <5%% GaAsBi,PdO2) ===\n")
	last := ""
	for _, cc := range r.CapChecks {
		if cc.Bench != last {
			if last != "" {
				fmt.Fprintln(w)
			}
			fmt.Fprintf(w, "%-14s @%d nodes:", cc.Bench, cc.Nodes)
			last = cc.Bench
		}
		status := ""
		if cc.Checked && !cc.Pass {
			status = "!"
		}
		fmt.Fprintf(w, " %3.0fW:%+5.1f%%(mode %3.0f)%s", cc.CapW, cc.Slowdown*100, cc.GPUModeW, status)
	}
	fmt.Fprintln(w)
	if r.Pass {
		fmt.Fprintln(w, "\ncalibration: PASS (all landing points inside tolerance)")
	} else {
		fmt.Fprintln(w, "\ncalibration: DRIFT (one or more landing points outside tolerance)")
	}
}
