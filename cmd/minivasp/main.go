// Command minivasp runs one simulated VASP job and prints its
// performance and power profile — the equivalent of a single
// instrumented batch job on the real system.
//
// The job can be selected three ways:
//
//	minivasp -bench Si256_hse [-nodes 2] [-cap 200] [-repeats 5]
//	minivasp -incar INCAR [-kpoints KPOINTS] -si-atoms 256 [-nodes 1]
//	minivasp -milc [-nodes 2] [-cap 200]        (the MILC application)
//
// VASP measurements run through the process-wide two-tier result
// cache; with -cache-dir set, re-running the same job (same inputs,
// nodes, cap, seed) serves its profile from disk instead of
// re-simulating. The MILC path keeps its own raw-trace pipeline and is
// not cached.
//
// The second form parses real VASP input files (INCAR and optionally
// KPOINTS) and applies them to a silicon supercell of the given size,
// deriving FFT grids, plane-wave counts, and default band counts the
// way VASP would.
package main

import (
	"flag"
	"fmt"
	"os"

	"vasppower"
	"vasppower/internal/dft/incar"
	"vasppower/internal/dft/lattice"
	"vasppower/internal/dft/method"
	"vasppower/internal/experiments"
	"vasppower/internal/obs"
	"vasppower/internal/report"
	"vasppower/internal/workloads"
)

func main() {
	benchName := flag.String("bench", "", "Table I benchmark name (see -list)")
	milc := flag.Bool("milc", false, "run the MILC lattice-QCD workload instead of VASP")
	list := flag.Bool("list", false, "list available benchmarks and exit")
	incarPath := flag.String("incar", "", "path to an INCAR file")
	kpointsPath := flag.String("kpoints", "", "path to a KPOINTS file (default Γ-only)")
	siAtoms := flag.Int("si-atoms", 0, "silicon supercell size for -incar runs")
	nodes := flag.Int("nodes", 1, "node count")
	cap := flag.Float64("cap", 0, "GPU power cap in watts (0 = the GPU's default TDP limit)")
	repeats := flag.Int("repeats", 1, "repeats (min-runtime selection)")
	seed := flag.Uint64("seed", 42, "random seed")
	cacheDir := flag.String("cache-dir", "", "persistent measurement-cache directory (empty = in-memory only)")
	cacheMaxBytes := flag.Int64("cache-max-bytes", 1<<30, "persistent cache size bound in bytes, LRU-evicted (0 = unbounded)")
	version := flag.Bool("version", false, "print module version, VCS revision, and dirty flag, then exit")
	flag.Parse()

	if *version {
		fmt.Println(obs.VersionString("minivasp"))
		return
	}

	if *cacheDir != "" {
		if _, err := experiments.EnableDiskCache(*cacheDir, *cacheMaxBytes); err != nil {
			fatalf("%v", err)
		}
	}

	if *list {
		for _, b := range vasppower.Benchmarks() {
			fmt.Printf("%-14s %s\n", b.Name, b.Description)
		}
		fmt.Printf("%-14s %s\n", "-milc", "32³×64 staggered lattice QCD (the second application)")
		return
	}

	if *milc {
		runMILC(*nodes, *cap, *repeats, *seed)
		return
	}

	var bench vasppower.Benchmark
	switch {
	case *benchName != "":
		b, ok := vasppower.BenchmarkByName(*benchName)
		if !ok {
			fatalf("unknown benchmark %q (use -list)", *benchName)
		}
		bench = b
	case *incarPath != "":
		b, err := benchmarkFromFiles(*incarPath, *kpointsPath, *siAtoms)
		if err != nil {
			fatalf("%v", err)
		}
		bench = b
	default:
		fatalf("need -bench or -incar (try -list)")
	}

	fmt.Printf("running %s on %d node(s), %d repeat(s)", bench.Name, *nodes, *repeats)
	if *cap > 0 {
		fmt.Printf(", GPU cap %.0f W", *cap)
	}
	fmt.Println()

	jp, err := experiments.CachedMeasureSpec(vasppower.MeasureSpec{
		Bench: bench, Nodes: *nodes, Repeats: *repeats, CapW: *cap, Seed: *seed,
	})
	if err != nil {
		fatalf("%v", err)
	}

	fmt.Printf("\nruntime   %s\n", report.Seconds(jp.Runtime))
	fmt.Printf("energy    %.2f MJ\n", jp.EnergyJ/1e6)
	if jp.NodeTotal.HasMode {
		fmt.Printf("node high power mode  %.0f W (FWHM %.0f W)\n",
			jp.NodeTotal.HighMode.X, jp.NodeTotal.HighMode.FWHM)
	}
	fmt.Printf("node power  min %.0f  median %.0f  mean %.0f  max %.0f W\n",
		jp.NodeTotal.Summary.Min, jp.NodeTotal.Summary.Median,
		jp.NodeTotal.Summary.Mean, jp.NodeTotal.Summary.Max)
	fmt.Printf("GPU share %.0f%% of node power; CPU+memory %.0f%%\n",
		jp.GPUShareOfNode()*100, jp.CPUMemShareOfNode()*100)
	fmt.Println("\nnode power timeline (2 s telemetry):")
	fmt.Println(report.SeriesLine("node", jp.NodeTotal.Series, 70))
	for i := range jp.GPUs {
		fmt.Println(report.SeriesLine(fmt.Sprintf("gpu%d", i), jp.GPUs[i].Series, 70))
	}
}

// runMILC executes the MILC workload and prints its profile.
func runMILC(nodes int, cap float64, repeats int, seed uint64) {
	spec := workloads.DefaultMILC()
	fmt.Printf("running %s (%d³×%d lattice) on %d node(s)", spec.Name,
		spec.Lattice[0], spec.Lattice[3], nodes)
	if cap > 0 {
		fmt.Printf(", GPU cap %.0f W", cap)
	}
	fmt.Println()
	out, err := workloads.RunMILC(workloads.MILCRunSpec{
		Spec: spec, Nodes: nodes, GPUPowerLimit: cap, Repeats: repeats, Seed: seed,
	})
	if err != nil {
		fatalf("%v", err)
	}
	n := out.Nodes[0]
	fmt.Printf("\nruntime   %s\n", report.Seconds(out.BestResult.Runtime))
	fmt.Printf("energy    %.2f MJ\n", out.BestResult.EnergyJ/1e6)
	s := n.TotalTrace().Sample(2).Slice(out.VASPStart, out.VASPEnd)
	fmt.Println(report.SeriesLine("node", s, 70))
	for i := 0; i < n.NumGPUs(); i++ {
		g := n.GPUTrace(i).Sample(2).Slice(out.VASPStart, out.VASPEnd)
		fmt.Println(report.SeriesLine(fmt.Sprintf("gpu%d", i), g, 70))
	}
}

// benchmarkFromFiles builds a runnable workload from VASP input files
// applied to a silicon supercell.
func benchmarkFromFiles(incarPath, kpointsPath string, siAtoms int) (vasppower.Benchmark, error) {
	var bench vasppower.Benchmark
	if siAtoms <= 0 {
		return bench, fmt.Errorf("-incar runs need -si-atoms")
	}
	text, err := os.ReadFile(incarPath)
	if err != nil {
		return bench, err
	}
	f, err := incar.Parse(string(text))
	if err != nil {
		return bench, err
	}
	params, err := f.TypedParams()
	if err != nil {
		return bench, err
	}
	kind, err := method.FromParams(params)
	if err != nil {
		return bench, err
	}
	kp := incar.GammaOnly()
	if kpointsPath != "" {
		ktext, err := os.ReadFile(kpointsPath)
		if err != nil {
			return bench, err
		}
		if kp, err = incar.ParseKPoints(string(ktext)); err != nil {
			return bench, err
		}
	}
	s, err := lattice.SiliconSupercell(siAtoms)
	if err != nil {
		return bench, err
	}
	encut := params.ENCUT
	if encut <= 0 {
		encut = lattice.SiEncutDefault
	}
	grid, err := lattice.FFTGrid(s, encut, params.Prec)
	if err != nil {
		return bench, err
	}
	nbands := params.NBands
	if nbands == 0 {
		nbands = lattice.DefaultNBands(s.Electrons, s.NumIons, 8)
	}
	bench = workloads.Benchmark{
		Name:         params.System,
		Description:  "user INCAR on a silicon supercell",
		Structure:    s,
		Method:       kind,
		Functional:   string(params.Algo),
		AlgoName:     string(params.Algo),
		NELM:         params.NELM,
		NBands:       nbands,
		NBandsExact:  params.NBandsExact,
		FFTGrid:      grid,
		KPoints:      kp,
		KPar:         params.KPar,
		ENCUT:        encut,
		OptimalNodes: 1,
	}
	if kind == method.ACFDTR && bench.NBandsExact == 0 {
		bench.NBandsExact = bench.NPW()
	}
	return bench, bench.Validate()
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "minivasp: "+format+"\n", args...)
	os.Exit(1)
}
