// Command omniquery demonstrates the telemetry path end to end: it
// runs an instrumented benchmark job, ingests every node's sensors
// into an OMNI-like store through the LDMS sampling pipeline (1 s
// nominal, ~2 s effective after drops), registers the job, and then
// answers power queries against the store — the workflow of the
// paper's §II-B infrastructure and its querying scripts.
//
// Usage:
//
//	omniquery [-bench PdO2] [-nodes 2] [-metric node|cpu|memory|gpu0..gpu3]
//	          [-cache-dir DIR] [-cache-max-bytes N]
//
// After answering the store queries, the tool cross-checks them
// against a reference profile of the same job produced by the
// measurement pipeline. That reference goes through the process-wide
// two-tier result cache, so with -cache-dir set, repeated queries of
// the same benchmark reuse one simulation.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"vasppower"
	"vasppower/internal/experiments"
	"vasppower/internal/monitor"
	"vasppower/internal/obs"
	"vasppower/internal/omni"
	"vasppower/internal/report"
	"vasppower/internal/serve"
	"vasppower/internal/stats"
	"vasppower/internal/telemetry"
	"vasppower/internal/telemetry/promexp"
)

func main() {
	benchName := flag.String("bench", "PdO2", "benchmark to run and ingest")
	nodes := flag.Int("nodes", 2, "node count")
	metric := flag.String("metric", "node", "metric to query (node, cpu, memory, gpu0..gpu3)")
	seed := flag.Uint64("seed", 42, "random seed")
	cacheDir := flag.String("cache-dir", "", "persistent measurement-cache directory (empty = in-memory only)")
	cacheMaxBytes := flag.Int64("cache-max-bytes", 1<<30, "persistent cache size bound in bytes, LRU-evicted (0 = unbounded)")
	telemetryAddr := flag.String("telemetry-addr", "",
		"stream per-host per-domain power samples, pump them into the store as power.<domain> metrics, and serve Prometheus text at /metrics on this address")
	hold := flag.Duration("hold", 0,
		"keep the /metrics endpoint serving after the queries complete: a duration, or negative (e.g. -1s) to serve until SIGINT/SIGTERM (a signal always ends the hold early)")
	telemetryHold := flag.Duration("telemetry-hold", 0,
		"deprecated alias for -hold")
	version := flag.Bool("version", false, "print module version, VCS revision, and dirty flag, then exit")
	flag.Parse()

	if *version {
		fmt.Println(obs.VersionString("omniquery"))
		return
	}
	if *cacheDir != "" {
		if _, err := experiments.EnableDiskCache(*cacheDir, *cacheMaxBytes); err != nil {
			fmt.Fprintln(os.Stderr, "omniquery:", err)
			os.Exit(2)
		}
	}

	bench, ok := vasppower.BenchmarkByName(*benchName)
	if !ok {
		fmt.Fprintf(os.Stderr, "omniquery: unknown benchmark %q\n", *benchName)
		os.Exit(1)
	}

	store := omni.NewStore()

	// 0. Streaming telemetry, when asked for: the run below publishes
	// its traces into a hub; one subscriber pumps them into the store as
	// power.<domain> metrics, another feeds the Prometheus exporter.
	// Everything is set up before the run so no sample is missed.
	var streamSub *telemetry.Subscription
	pumpDone := make(chan struct{})
	var pumped int
	if *telemetryAddr != "" {
		reg := obs.NewRegistry()
		experiments.Instrument(reg)
		hub := telemetry.NewHub()
		smp, err := telemetry.NewSampler(hub, 1.0)
		if err != nil {
			fmt.Fprintln(os.Stderr, "omniquery:", err)
			os.Exit(2)
		}
		telemetry.SetDefault(smp)
		col, err := promexp.NewCollector(hub, reg, 1<<16)
		if err != nil {
			fmt.Fprintln(os.Stderr, "omniquery:", err)
			os.Exit(2)
		}
		defer col.Close()
		ds, err := obs.ServeDebug(*telemetryAddr, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "omniquery:", err)
			os.Exit(2)
		}
		defer ds.Close()
		ds.Handle("/metrics", col)
		fmt.Fprintf(os.Stderr, "omniquery: telemetry endpoint on http://%s/metrics\n", ds.Addr)
		if *hold == 0 {
			*hold = *telemetryHold // deprecated spelling
		}
		if *hold != 0 {
			holdFor := *hold
			defer func() {
				fmt.Fprintf(os.Stderr, "omniquery: holding /metrics open for %s\n", holdFor)
				reason := serve.WaitForShutdown(holdFor)
				fmt.Fprintf(os.Stderr, "omniquery: hold ended (%s)\n", reason)
			}()
		}
		streamSub, err = hub.Subscribe("", 1<<16)
		if err != nil {
			fmt.Fprintln(os.Stderr, "omniquery:", err)
			os.Exit(2)
		}
		go func() {
			defer close(pumpDone)
			n, err := telemetry.Pump(streamSub, store)
			if err != nil {
				fmt.Fprintln(os.Stderr, "omniquery: pump:", err)
			}
			pumped = n
		}()
	}

	// 1. Run the job (with the burn-in prelude, as production jobs do).
	out, err := vasppower.Run(vasppower.RunSpec{
		Bench: bench, Nodes: *nodes, Repeats: 1, Prelude: true, Seed: *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "omniquery:", err)
		os.Exit(1)
	}

	// The run has published everything it will; close the pump's
	// subscription, let it drain, and report what streamed in.
	if streamSub != nil {
		streamSub.Close()
		<-pumpDone
		fmt.Printf("streaming ingest: %d power.<domain> samples pumped into the store\n", pumped)
	}

	// 2. Ingest every node's sensors through the LDMS pipeline.
	cfg := monitor.LDMSDefault()
	cfg.Seed = *seed
	for _, n := range out.Nodes {
		series, err := monitor.SampleNode(n, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "omniquery:", err)
			os.Exit(1)
		}
		for m, s := range series {
			if err := store.Insert(n.Name, m, s); err != nil {
				fmt.Fprintln(os.Stderr, "omniquery:", err)
				os.Exit(1)
			}
		}
	}

	// 3. Register the job window (the VASP portion).
	var hostnames []string
	for _, n := range out.Nodes {
		hostnames = append(hostnames, n.Name)
	}
	job := omni.JobRecord{
		ID: "1", User: "materials-user", App: bench.Name,
		Nodes: hostnames, Start: out.VASPStart, End: out.VASPEnd,
	}
	if err := store.RegisterJob(job); err != nil {
		fmt.Fprintln(os.Stderr, "omniquery:", err)
		os.Exit(1)
	}

	// 4. Query it back.
	fmt.Printf("store: %d hosts, metrics per host: %v\n",
		len(store.Hosts()), store.MetricsOf(store.Hosts()[0]))
	perNode, err := store.JobPower(job.ID, *metric)
	if err != nil {
		fmt.Fprintln(os.Stderr, "omniquery:", err)
		os.Exit(1)
	}
	var names []string
	for h := range perNode {
		names = append(names, h)
	}
	sort.Strings(names)
	fmt.Printf("\njob %s (%s, %d nodes), metric %q over [%.0f, %.0f] s:\n\n",
		job.ID, job.App, len(names), *metric, job.Start, job.End)
	for _, h := range names {
		s := perNode[h]
		fmt.Println(report.SeriesLine(h, s, 64))
		if hm, ok := stats.HighPowerModeOf(s.Values); ok {
			fmt.Printf("%-14s high power mode %.0f W (FWHM %.0f), effective interval %.1f s, max gap %.1f s\n",
				"", hm.X, hm.FWHM, s.Interval(), s.MaxGap())
		}
	}
	if e, err := store.JobEnergy(job.ID); err == nil {
		fmt.Printf("\njob node-level energy (trapezoidal from telemetry): %.2f MJ\n", e/1e6)
	}

	// 5. Cross-check against the measurement pipeline's profile of the
	// same (benchmark, nodes, seed) — served from the two-tier result
	// cache, so repeated queries skip the second simulation.
	jp, err := experiments.CachedMeasureSpec(vasppower.MeasureSpec{
		Bench: bench, Nodes: *nodes, Repeats: 1, Seed: *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "omniquery:", err)
		os.Exit(1)
	}
	fmt.Printf("\nreference profile (measurement pipeline, cached): ")
	if jp.NodeTotal.HasMode {
		fmt.Printf("node high power mode %.0f W (FWHM %.0f), ", jp.NodeTotal.HighMode.X, jp.NodeTotal.HighMode.FWHM)
	}
	fmt.Printf("runtime %.0f s, energy %.2f MJ\n", jp.Runtime, jp.EnergyJ/1e6)
}
