// Command pmsched runs the power-aware scheduling simulation of the
// paper's §VI proposal: a batch queue of VASP jobs packed under a
// facility power budget, with per-class GPU power caps chosen from
// measured profiles, compared against no capping and a uniform cap.
//
// Usage:
//
//	pmsched [-nodes 8] [-budget-kw 8.8] [-jobs 24] [-arrival 90] [-seed 2024]
//	        [-preset facility] [-envelope T:KW,T:KW,...] [-manifest PATH]
//	        [-cache-dir DIR] [-cache-max-bytes N]
//
// -preset facility selects the Perlmutter-like GPU partition scale —
// 1,800 nodes, 100k jobs, 5 s mean inter-arrival, 2 MW budget — for
// any of -nodes/-jobs/-arrival/-budget-kw not given explicitly. Jobs
// stream through the simulator in arrival order, so facility-scale
// mixes never materialize in memory.
//
// -envelope imposes a time-varying facility power envelope on top of
// the base budget: a comma-separated list of start:budget-kW phases
// (e.g. "3600:1500,7200:2000" drops the budget to 1.5 MW after one
// hour and restores 2 MW after two). Budget 0 means unconstrained
// from that point on.
//
// The profile catalog's measurements run through the process-wide
// two-tier result cache; with -cache-dir set, repeated scheduler
// studies (budget sweeps, policy comparisons) reuse each other's
// measured profiles instead of re-simulating them. With -manifest set,
// the run writes a provenance manifest including the sched.* metrics
// (packing passes, starts, drops, head-of-line stalls, peak reserved
// power).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"vasppower"
	"vasppower/internal/experiments"
	"vasppower/internal/hw/platform"
	"vasppower/internal/obs"
	"vasppower/internal/report"
)

func main() {
	nodes := flag.Int("nodes", 8, "cluster size (GPU nodes)")
	budgetKW := flag.Float64("budget-kw", 8.8, "facility power budget for the partition, kW (0 = unconstrained)")
	jobsN := flag.Int("jobs", 24, "number of jobs in the mix")
	arrival := flag.Float64("arrival", 90, "mean inter-arrival time, seconds")
	seed := flag.Uint64("seed", 2024, "random seed")
	preset := flag.String("preset", "", "scale preset: 'facility' = 1800 nodes, 100k jobs, 5 s arrivals, 2 MW budget (explicit flags win)")
	envelope := flag.String("envelope", "", "time-varying budget phases as start-seconds:budget-kW, comma-separated")
	manifestPath := flag.String("manifest", "", "write a run manifest (provenance + sched.* metrics) to this path")
	cacheDir := flag.String("cache-dir", "", "persistent measurement-cache directory (empty = in-memory only)")
	cacheMaxBytes := flag.Int64("cache-max-bytes", 1<<30, "persistent cache size bound in bytes, LRU-evicted (0 = unbounded)")
	version := flag.Bool("version", false, "print module version, VCS revision, and dirty flag, then exit")
	flag.Parse()

	if *version {
		fmt.Println(obs.VersionString("pmsched"))
		return
	}
	if err := applyPreset(*preset, nodes, budgetKW, jobsN, arrival); err != nil {
		fmt.Fprintln(os.Stderr, "pmsched:", err)
		os.Exit(2)
	}
	schedule, err := parseEnvelope(*envelope)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmsched:", err)
		os.Exit(2)
	}
	if *cacheDir != "" {
		if _, err := experiments.EnableDiskCache(*cacheDir, *cacheMaxBytes); err != nil {
			fmt.Fprintln(os.Stderr, "pmsched:", err)
			os.Exit(2)
		}
	}
	var reg *obs.Registry
	if *manifestPath != "" {
		reg = obs.NewRegistry()
		experiments.Instrument(reg)
	}
	started := time.Now()

	fmt.Printf("job mix: %d VASP jobs over ~%.0f s of arrivals on %d nodes, budget %.1f kW\n",
		*jobsN, float64(*jobsN)*(*arrival), *nodes, *budgetKW)
	if len(schedule) > 0 {
		fmt.Printf("envelope: %d budget phases (first at t=%.0f s)\n", len(schedule), schedule[0].Start)
	}
	fmt.Println()

	policies := []vasppower.SchedulerPolicy{
		vasppower.PolicyNoCap,
		vasppower.PolicyUniform200,
		vasppower.PolicyProfileAware,
	}
	t := report.NewTable("policy", "makespan", "mean wait", "max wait",
		"peak power", "energy", "mean perf loss", "throughput", "dropped")
	var droppedIDs []string
	for _, p := range policies {
		// Catalog measurements go through the shared two-tier cache, so
		// the three policies (and later invocations, with -cache-dir)
		// reuse one set of profile measurements. Jobs stream through the
		// simulator; the mix is never materialized.
		cat := vasppower.NewSchedulerCatalog(*seed)
		cat.SetMeasure(experiments.CachedMeasureSpec)
		res, err := vasppower.SimulateSchedulerStream(vasppower.SchedulerConfig{
			ClusterNodes:   *nodes,
			BudgetW:        *budgetKW * 1000,
			BudgetSchedule: schedule,
			IdleNodeW:      460,
			Policy:         p,
			Catalog:        cat,
		}, vasppower.SyntheticJobStream(*jobsN, *arrival, *seed))
		if err != nil {
			fmt.Fprintln(os.Stderr, "pmsched:", err)
			os.Exit(1)
		}
		t.AddRow(
			res.Policy,
			report.Seconds(res.Makespan),
			report.Seconds(res.MeanWait),
			report.Seconds(res.MaxWait),
			fmt.Sprintf("%.1f kW", res.PeakPowerW/1000),
			fmt.Sprintf("%.1f MJ", res.TotalEnergyJ/1e6),
			report.Percent(res.MeanPerfLoss),
			fmt.Sprintf("%.1f jobs/h", res.Throughput),
			fmt.Sprintf("%d", res.Dropped),
		)
		if res.Dropped > 0 && droppedIDs == nil {
			droppedIDs = res.DroppedIDs
		}
	}
	fmt.Println(t.String())
	if droppedIDs != nil {
		const show = 8
		ids := droppedIDs
		if len(ids) > show {
			ids = ids[:show]
		}
		fmt.Printf("warning: jobs dropped (unprofilable configuration): %s", strings.Join(ids, ", "))
		if len(droppedIDs) > show {
			fmt.Printf(", … (%d total)", len(droppedIDs))
		}
		fmt.Println()
	}
	fmt.Println("profile-aware capping reserves measured power instead of TDP, so more jobs")
	fmt.Println("fit under the budget at a per-job cost the study bounds below 10% (§V-C).")

	if *manifestPath != "" {
		snap := reg.Snapshot()
		err := obs.Manifest{
			Tool:        "pmsched",
			Build:       obs.GetBuildInfo(),
			Platform:    platform.DefaultName,
			Seed:        *seed,
			Workers:     1,
			Started:     started.UTC(),
			WallSeconds: time.Since(started).Seconds(),
			Metrics:     &snap,
		}.Write(*manifestPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pmsched:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "pmsched: run manifest written to %s\n", *manifestPath)
	}
}

// applyPreset overwrites scale parameters the user did not set
// explicitly with the preset's values (explicit flags always win).
func applyPreset(name string, nodes *int, budgetKW *float64, jobsN *int, arrival *float64) error {
	switch name {
	case "":
		return nil
	case "facility":
	default:
		return fmt.Errorf("unknown preset %q (have: facility)", name)
	}
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if !set["nodes"] {
		*nodes = 1800
	}
	if !set["budget-kw"] {
		*budgetKW = 2000
	}
	if !set["jobs"] {
		*jobsN = 100000
	}
	if !set["arrival"] {
		*arrival = 5
	}
	return nil
}

// parseEnvelope parses "start:budget-kW,start:budget-kW,..." into a
// budget schedule (watts), e.g. "3600:1500,7200:0".
func parseEnvelope(s string) ([]vasppower.SchedulerBudgetPhase, error) {
	if s == "" {
		return nil, nil
	}
	var phases []vasppower.SchedulerBudgetPhase
	for _, part := range strings.Split(s, ",") {
		at, kw, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok {
			return nil, fmt.Errorf("envelope phase %q: want start-seconds:budget-kW", part)
		}
		start, err := strconv.ParseFloat(at, 64)
		if err != nil {
			return nil, fmt.Errorf("envelope phase %q: %v", part, err)
		}
		budget, err := strconv.ParseFloat(kw, 64)
		if err != nil {
			return nil, fmt.Errorf("envelope phase %q: %v", part, err)
		}
		phases = append(phases, vasppower.SchedulerBudgetPhase{Start: start, BudgetW: budget * 1000})
	}
	return phases, nil
}
