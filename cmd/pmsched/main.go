// Command pmsched runs the power-aware scheduling simulation of the
// paper's §VI proposal: a batch queue of VASP jobs packed under a
// facility power budget, with per-class GPU power caps chosen from
// measured profiles, compared against no capping and a uniform cap.
//
// Usage:
//
//	pmsched [-nodes 8] [-budget-kw 8.8] [-jobs 24] [-arrival 90] [-seed 2024]
//	        [-cache-dir DIR] [-cache-max-bytes N]
//
// The profile catalog's measurements run through the process-wide
// two-tier result cache; with -cache-dir set, repeated scheduler
// studies (budget sweeps, policy comparisons) reuse each other's
// measured profiles instead of re-simulating them.
package main

import (
	"flag"
	"fmt"
	"os"

	"vasppower"
	"vasppower/internal/experiments"
	"vasppower/internal/obs"
	"vasppower/internal/report"
)

func main() {
	nodes := flag.Int("nodes", 8, "cluster size (GPU nodes)")
	budgetKW := flag.Float64("budget-kw", 8.8, "facility power budget for the partition, kW (0 = unconstrained)")
	jobsN := flag.Int("jobs", 24, "number of jobs in the mix")
	arrival := flag.Float64("arrival", 90, "mean inter-arrival time, seconds")
	seed := flag.Uint64("seed", 2024, "random seed")
	cacheDir := flag.String("cache-dir", "", "persistent measurement-cache directory (empty = in-memory only)")
	cacheMaxBytes := flag.Int64("cache-max-bytes", 1<<30, "persistent cache size bound in bytes, LRU-evicted (0 = unbounded)")
	version := flag.Bool("version", false, "print module version, VCS revision, and dirty flag, then exit")
	flag.Parse()

	if *version {
		fmt.Println(obs.VersionString("pmsched"))
		return
	}
	if *cacheDir != "" {
		if _, err := experiments.EnableDiskCache(*cacheDir, *cacheMaxBytes); err != nil {
			fmt.Fprintln(os.Stderr, "pmsched:", err)
			os.Exit(2)
		}
	}

	jobs := vasppower.SyntheticJobMix(*jobsN, *arrival, *seed)
	fmt.Printf("job mix: %d VASP jobs over ~%.0f s of arrivals on %d nodes, budget %.1f kW\n\n",
		len(jobs), jobs[len(jobs)-1].Arrival, *nodes, *budgetKW)

	policies := []vasppower.SchedulerPolicy{
		vasppower.PolicyNoCap,
		vasppower.PolicyUniform200,
		vasppower.PolicyProfileAware,
	}
	t := report.NewTable("policy", "makespan", "mean wait", "max wait",
		"peak power", "energy", "mean perf loss", "throughput")
	for _, p := range policies {
		// Catalog measurements go through the shared two-tier cache, so
		// the three policies (and later invocations, with -cache-dir)
		// reuse one set of profile measurements.
		cat := vasppower.NewSchedulerCatalog(*seed)
		cat.SetMeasure(experiments.CachedMeasureSpec)
		res, err := vasppower.SimulateScheduler(vasppower.SchedulerConfig{
			ClusterNodes: *nodes,
			BudgetW:      *budgetKW * 1000,
			IdleNodeW:    460,
			Policy:       p,
			Catalog:      cat,
		}, jobs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pmsched:", err)
			os.Exit(1)
		}
		t.AddRow(
			res.Policy,
			report.Seconds(res.Makespan),
			report.Seconds(res.MeanWait),
			report.Seconds(res.MaxWait),
			fmt.Sprintf("%.1f kW", res.PeakPowerW/1000),
			fmt.Sprintf("%.1f MJ", res.TotalEnergyJ/1e6),
			report.Percent(res.MeanPerfLoss),
			fmt.Sprintf("%.1f jobs/h", res.Throughput),
		)
	}
	fmt.Println(t.String())
	fmt.Println("profile-aware capping reserves measured power instead of TDP, so more jobs")
	fmt.Println("fit under the budget at a per-job cost the study bounds below 10% (§V-C).")
}
