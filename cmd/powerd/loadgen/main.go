// Command loadgen drives a running powerd and reports what it
// sustained. It is the CI load harness for the serving layer:
//
//	loadgen -addr 127.0.0.1:8080 [-spec JSON] [-burst 64] [-duration 3s] [-conns 8] [-out FILE]
//
// Two phases, mirroring the serving layer's two performance claims:
//
//  1. Cold burst: -burst concurrent identical requests against the
//     fresh spec. The server must return one byte-identical body to
//     all of them while evaluating only once (the run manifest's
//     serve.coalesced > 0 afterwards is the CI assertion).
//  2. Warm sustain: -conns workers hammer the now-cached spec for
//     -duration over keep-alive connections. Every response must be a
//     cache hit byte-identical to the burst's; the phase yields the
//     req/s and latency-percentile numbers.
//
// The report is printed as JSON (and written to -out when given):
//
//	{"burst":N,"warm_requests":N,"warm_seconds":S,"warm_rps":R,
//	 "p50_ms":...,"p99_ms":...,"errors":0,
//	 "cold_ns_op":...,"cold_b_op":...,"cold_allocs_op":...}
//
// The cold_* fields come from an in-process microbenchmark of the
// handler's miss path (decode → validate → key → encode → alias, stub
// evaluator) — the per-request cost the HTTP phases cannot isolate,
// recorded in the same artifact so cold-path regressions are visible
// next to the throughput numbers.
//
// loadgen exits non-zero on any non-200 response, body mismatch, or
// transport error — load that corrupts answers is not load survived.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vasppower/internal/core"
	"vasppower/internal/serve"
)

type report struct {
	Burst        int     `json:"burst"`
	WarmRequests int64   `json:"warm_requests"`
	WarmSeconds  float64 `json:"warm_seconds"`
	WarmRPS      float64 `json:"warm_rps"`
	P50Ms        float64 `json:"p50_ms"`
	P99Ms        float64 `json:"p99_ms"`
	Errors       int64   `json:"errors"`

	// Cold-path microbenchmark (in-process, stub evaluator).
	ColdNsOp     int64 `json:"cold_ns_op"`
	ColdBOp      int64 `json:"cold_b_op"`
	ColdAllocsOp int64 `json:"cold_allocs_op"`
}

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "powerd address (host:port)")
	spec := flag.String("spec", `{"bench":"Si256_hse","nodes":1,"cap_w":250}`, "request body for /v1/measure")
	burst := flag.Int("burst", 64, "cold-phase concurrent identical requests")
	duration := flag.Duration("duration", 3*time.Second, "warm-phase length")
	conns := flag.Int("conns", 8, "warm-phase worker connections")
	out := flag.String("out", "", "also write the JSON report to this file")
	flag.Parse()

	url := "http://" + *addr + "/v1/measure"
	client := &http.Client{
		Transport: &http.Transport{
			MaxIdleConns:        *conns + *burst,
			MaxIdleConnsPerHost: *conns + *burst,
		},
		Timeout: 2 * time.Minute,
	}

	rep, err := drive(client, url, *spec, *burst, *conns, *duration)
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
	rep.ColdNsOp, rep.ColdBOp, rep.ColdAllocsOp = coldPath()
	enc, _ := json.MarshalIndent(rep, "", "  ")
	fmt.Println(string(enc))
	if *out != "" {
		if err := os.WriteFile(*out, append(enc, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			os.Exit(1)
		}
	}
}

func drive(client *http.Client, url, spec string, burst, conns int, duration time.Duration) (report, error) {
	rep := report{Burst: burst}

	// Phase 1: cold coalescing burst. All requests identical; the
	// canonical body every later response must match comes back here.
	bodies := make([][]byte, burst)
	errs := make([]error, burst)
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			bodies[i], errs[i] = post(client, url, spec)
		}(i)
	}
	wg.Wait()
	for i := 0; i < burst; i++ {
		if errs[i] != nil {
			return rep, fmt.Errorf("burst request %d: %w", i, errs[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			return rep, fmt.Errorf("burst request %d: body differs under concurrency", i)
		}
	}
	canonical := bodies[0]

	// Phase 2: warm sustain on keep-alive connections.
	var total, errCount atomic.Int64
	lat := make([][]float64, conns)
	stop := time.Now().Add(duration)
	wg = sync.WaitGroup{}
	for c := 0; c < conns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for time.Now().Before(stop) {
				t0 := time.Now()
				body, err := post(client, url, spec)
				d := time.Since(t0)
				if err != nil || !bytes.Equal(body, canonical) {
					errCount.Add(1)
					continue
				}
				lat[c] = append(lat[c], float64(d)/1e6)
				total.Add(1)
			}
		}(c)
	}
	start := time.Now()
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	if d := duration.Seconds(); elapsed < d {
		elapsed = d
	}

	var all []float64
	for _, l := range lat {
		all = append(all, l...)
	}
	sort.Float64s(all)
	rep.WarmRequests = total.Load()
	rep.WarmSeconds = elapsed
	rep.WarmRPS = float64(total.Load()) / elapsed
	rep.Errors = errCount.Load()
	if len(all) > 0 {
		rep.P50Ms = all[len(all)/2]
		rep.P99Ms = all[len(all)*99/100]
	}
	if rep.Errors > 0 {
		return rep, fmt.Errorf("%d warm requests failed or mismatched", rep.Errors)
	}
	if rep.WarmRequests == 0 {
		return rep, fmt.Errorf("warm phase completed no requests")
	}
	return rep, nil
}

// coldPath benchmarks the handler's cold request path in process: a
// fresh serve pipeline with a stub evaluator, driven with a rotating
// set of distinct binding caps so every request misses both cache
// indexes (the tiny entry bound keeps the LRU churning). The numbers
// isolate the serving layer's own per-miss cost — body read, strict
// decode, validation, canonical keying, encode, alias registration —
// which the HTTP phases cannot separate from transport and evaluation.
func coldPath() (nsOp, bOp, allocsOp int64) {
	s := serve.New(serve.Config{
		Measure:      func(core.MeasureSpec) (core.JobProfile, error) { return core.JobProfile{}, nil },
		BatchWindow:  -1,
		CacheEntries: 64,
	})
	h := s.Handler()
	bodies := make([][]byte, 512)
	for i := range bodies {
		// Caps stay strictly below the TDP: at or above it they
		// canonicalize to uncapped and would share one warm entry.
		bodies[i] = []byte(`{"bench":"Si256_hse","cap_w":` +
			strconv.FormatFloat(100+float64(i)/2, 'g', -1, 64) + `}`)
	}
	body := &replayBody{}
	req := &http.Request{Method: http.MethodPost, URL: &url.URL{Path: "/v1/measure"}, Body: body}
	w := &discardWriter{h: make(http.Header, 4)}
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			body.r.Reset(bodies[i%len(bodies)])
			h.ServeHTTP(w, req)
			w.reset()
		}
	})
	return res.NsPerOp(), res.AllocedBytesPerOp(), res.AllocsPerOp()
}

// replayBody replays a request body from a resettable reader without
// reallocating; discardWriter swallows responses reusing one header
// map — together they keep the harness out of the measurement.
type replayBody struct{ r bytes.Reader }

func (b *replayBody) Read(p []byte) (int, error) { return b.r.Read(p) }
func (b *replayBody) Close() error               { return nil }

type discardWriter struct{ h http.Header }

func (d *discardWriter) Header() http.Header         { return d.h }
func (d *discardWriter) WriteHeader(int)             {}
func (d *discardWriter) Write(p []byte) (int, error) { return len(p), nil }
func (d *discardWriter) reset() {
	for k := range d.h {
		delete(d.h, k)
	}
}

func post(client *http.Client, url, spec string) ([]byte, error) {
	resp, err := client.Post(url, "application/json", strings.NewReader(spec))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d: %s", resp.StatusCode, body)
	}
	return body, nil
}
