// Command powerd serves the measurement engine over HTTP: a
// long-running daemon exposing the core queries as JSON endpoints so
// dashboards, schedulers, and batch scripts can share one warm
// measurement cache instead of each paying cold simulation.
//
// Usage:
//
//	powerd [-addr localhost:8080] [-platform NAME]
//	       [-cache-dir DIR] [-cache-max-bytes N]
//	       [-max-in-flight N] [-max-queue N] [-batch-window D]
//	       [-max-sweep-points N] [-timeout D]
//	       [-telemetry] [-hold D] [-manifest FILE]
//	       [-oneshot JSON] [-version]
//
// Endpoints:
//
//	POST /v1/measure    one MeasureSpec → profile summary JSON
//	POST /v1/sweep      cap or scaling sweep (batched; "stream":true → NDJSON)
//	POST /v1/schedule   facility what-if under a capping policy
//	GET  /v1/omni/...   read-only telemetry-store queries
//	GET  /v1/telemetry  drain a host's live power samples
//	GET  /healthz       liveness + cache occupancy
//	GET  /metrics       Prometheus text (with -telemetry)
//	GET  /debug/pprof/  profiles; /debug/vars metrics snapshot
//
// The server coalesces identical concurrent requests onto one
// evaluation, micro-batches sweep points across clients, and sheds
// load with 429 + Retry-After once the admission queue fills. A warm
// repeat of any request is served from pre-serialized canonical bytes
// without parsing, evaluating, or allocating.
//
// -hold bounds the serving lifetime: the default -1 serves until
// SIGINT/SIGTERM; a positive duration exits after that long (or on an
// earlier signal). Shutdown is graceful either way: the listener
// closes, in-flight requests finish, then the -manifest file (with
// the final serve.* metrics) is written.
//
// -oneshot JSON evaluates one /v1/measure request through the same
// pipeline without listening and prints the response body to stdout —
// byte-identical to the served response for the same spec, which CI
// uses to cross-check the HTTP path against the CLI path.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"vasppower/internal/experiments"
	"vasppower/internal/hw/platform"
	"vasppower/internal/obs"
	"vasppower/internal/omni"
	"vasppower/internal/par"
	"vasppower/internal/serve"
	"vasppower/internal/telemetry"
	"vasppower/internal/telemetry/promexp"
)

type options struct {
	addr          string
	hold          time.Duration
	oneshot       string
	cacheDir      string
	cacheMaxBytes int64
	manifestPath  string
	maxInFlight   int
	maxQueue      int
	batchWindow   time.Duration
	maxSweep      int
	timeout       time.Duration
	workers       int
	telemetry     bool
	drainTimeout  time.Duration

	// ready, when non-nil, receives the bound address once the server
	// is listening (the tests' startup synchronization).
	ready chan<- string
}

func main() {
	var opts options
	flag.StringVar(&opts.addr, "addr", "localhost:8080", "listen address (host:port; :0 picks a free port)")
	flag.DurationVar(&opts.hold, "hold", -1, "serving lifetime: negative (e.g. -1s, the default) = until SIGINT/SIGTERM, >0 = exit after this long (a signal still exits early)")
	flag.StringVar(&opts.oneshot, "oneshot", "", "evaluate one /v1/measure request body and print the response to stdout (no listener)")
	flag.StringVar(&opts.cacheDir, "cache-dir", "", "persistent measurement-cache directory (empty = in-memory only)")
	flag.Int64Var(&opts.cacheMaxBytes, "cache-max-bytes", 1<<30, "persistent cache size bound in bytes, LRU-evicted (0 = unbounded)")
	flag.StringVar(&opts.manifestPath, "manifest", "", "write a run manifest (JSON, with final serve.* metrics) at exit")
	flag.IntVar(&opts.maxInFlight, "max-in-flight", 0, "admission capacity in weight units (0 = default)")
	flag.IntVar(&opts.maxQueue, "max-queue", 0, "admission queue bound; beyond it requests get 429 (0 = default, -1 = no queue)")
	flag.DurationVar(&opts.batchWindow, "batch-window", 0, "sweep micro-batch window (0 = default 2ms)")
	flag.IntVar(&opts.maxSweep, "max-sweep-points", 0, "largest accepted sweep, in points (0 = default)")
	flag.DurationVar(&opts.timeout, "timeout", 0, "per-measure evaluation budget (0 = default 30s)")
	flag.IntVar(&opts.workers, "parallel", 0, "batch fan-out pool size (0 = one per CPU)")
	flag.BoolVar(&opts.telemetry, "telemetry", false, "stream measurement power samples and serve Prometheus text at /metrics")
	flag.DurationVar(&opts.drainTimeout, "drain-timeout", 30*time.Second, "grace period for in-flight requests at shutdown")
	version := flag.Bool("version", false, "print module version, VCS revision, and dirty flag, then exit")
	flag.Parse()

	if *version {
		fmt.Println(obs.VersionString("powerd"))
		return
	}
	if err := run(opts, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "powerd:", err)
		os.Exit(1)
	}
}

// run is the whole daemon behind flag parsing, so tests can drive it
// with a ready channel and a signal.
func run(opts options, stdout, stderr io.Writer) error {
	reg := obs.NewRegistry()
	experiments.Instrument(reg)

	if opts.cacheDir != "" {
		st, err := experiments.EnableDiskCache(opts.cacheDir, opts.cacheMaxBytes)
		if err != nil {
			return err
		}
		fmt.Fprintf(stderr, "powerd: persistent measurement cache at %s (%d entries)\n", st.Dir(), st.Len())
	}

	cfg := serve.Config{
		Workers:        opts.workers,
		MaxInFlight:    opts.maxInFlight,
		MaxQueue:       opts.maxQueue,
		Timeout:        opts.timeout,
		MaxSweepPoints: opts.maxSweep,
		BatchWindow:    opts.batchWindow,
		Reg:            reg,
	}

	var col *promexp.Collector
	if opts.telemetry {
		hub := telemetry.NewHub()
		smp, err := telemetry.NewSampler(hub, 1.0)
		if err != nil {
			return err
		}
		telemetry.SetDefault(smp)
		c, err := promexp.NewCollector(hub, reg, 1<<16)
		if err != nil {
			return err
		}
		col = c
		store := omni.NewStore()
		sub, err := hub.Subscribe("", 1<<16)
		if err != nil {
			return err
		}
		go telemetry.Pump(sub, store) // ends when the hub's subs close
		cfg.Hub = hub
		cfg.Store = store
	}

	srv := serve.New(cfg)

	if opts.oneshot != "" {
		status, body := srv.OneShot("POST", "/v1/measure", []byte(opts.oneshot))
		stdout.Write(body)
		if status != 200 {
			return fmt.Errorf("oneshot: status %d", status)
		}
		return writeManifest(opts, reg, time.Now())
	}

	started := time.Now()
	ds, err := obs.ServeDebug(opts.addr, reg)
	if err != nil {
		return err
	}
	srv.Mount(ds)
	if col != nil {
		ds.Handle("/metrics", col)
	}
	fmt.Fprintf(stderr, "powerd: serving on http://%s (/v1/measure, /v1/sweep, /v1/schedule, /v1/omni/*, /healthz)\n", ds.Addr)
	if opts.ready != nil {
		opts.ready <- ds.Addr
	}

	reason := serve.WaitForShutdown(opts.hold)
	fmt.Fprintf(stderr, "powerd: shutting down (%s); draining in-flight requests\n", reason)
	ctx, cancel := context.WithTimeout(context.Background(), opts.drainTimeout)
	defer cancel()
	if err := ds.Shutdown(ctx); err != nil {
		fmt.Fprintf(stderr, "powerd: drain incomplete: %v\n", err)
	}
	if col != nil {
		col.Close()
	}
	if err := writeManifest(opts, reg, started); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "powerd: served %d requests (%d cache hits, %d coalesced) over %s\n",
		srv.Metrics().Requests.Value(), srv.Metrics().Hits.Value(),
		srv.Metrics().Coalesced.Value(), time.Since(started).Round(time.Millisecond))
	return nil
}

func writeManifest(opts options, reg *obs.Registry, started time.Time) error {
	if opts.manifestPath == "" {
		return nil
	}
	snap := reg.Snapshot()
	err := obs.Manifest{
		Tool:        "powerd",
		Build:       obs.GetBuildInfo(),
		Platform:    platform.DefaultName,
		Workers:     par.Workers(opts.workers),
		Started:     started.UTC(),
		WallSeconds: time.Since(started).Seconds(),
		Metrics:     &snap,
	}.Write(opts.manifestPath)
	if err != nil {
		return err
	}
	return nil
}
