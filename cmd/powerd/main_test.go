package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

const testSpec = `{"bench":"Si256_hse","nodes":1,"cap_w":250}`

// startDaemon runs the daemon in the background and returns its bound
// address plus a channel carrying run's error after shutdown.
func startDaemon(t *testing.T, opts options) (string, chan error) {
	t.Helper()
	ready := make(chan string, 1)
	opts.ready = ready
	if opts.addr == "" {
		opts.addr = "127.0.0.1:0"
	}
	errc := make(chan error, 1)
	go func() { errc <- run(opts, io.Discard, io.Discard) }()
	select {
	case addr := <-ready:
		return addr, errc
	case err := <-errc:
		t.Fatalf("daemon exited before listening: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never came up")
	}
	return "", nil
}

func sigterm(t *testing.T) {
	t.Helper()
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
}

func waitExit(t *testing.T, errc chan error) {
	t.Helper()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("daemon exit: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}
}

// TestGracefulShutdown: the daemon serves real measurements, then a
// SIGTERM drains it cleanly and the manifest lands with serve.*
// metrics filled in.
func TestGracefulShutdown(t *testing.T) {
	manifest := filepath.Join(t.TempDir(), "manifest.json")
	addr, errc := startDaemon(t, options{hold: -1, manifestPath: manifest, drainTimeout: 30 * time.Second})

	// One real measurement, then a warm repeat.
	var bodies [2][]byte
	for i := range bodies {
		resp, err := http.Post("http://"+addr+"/v1/measure", "application/json", strings.NewReader(testSpec))
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("request %d: status %d body %s", i, resp.StatusCode, b)
		}
		bodies[i] = b
	}
	if !bytes.Equal(bodies[0], bodies[1]) {
		t.Fatal("warm repeat returned different bytes")
	}
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	sigterm(t)
	waitExit(t, errc)

	raw, err := os.ReadFile(manifest)
	if err != nil {
		t.Fatalf("manifest not written: %v", err)
	}
	var m struct {
		Tool    string `json:"tool"`
		Metrics struct {
			Counters map[string]int64 `json:"counters"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("manifest not JSON: %v", err)
	}
	if m.Tool != "powerd" {
		t.Fatalf("manifest tool %q", m.Tool)
	}
	if m.Metrics.Counters["serve.requests"] < 2 {
		t.Fatalf("serve.requests = %d, want >= 2", m.Metrics.Counters["serve.requests"])
	}
	if m.Metrics.Counters["serve.hits"] < 1 {
		t.Fatalf("serve.hits = %d, want >= 1 (the warm repeat)", m.Metrics.Counters["serve.hits"])
	}

	// After shutdown the listener is gone.
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Fatal("listener still accepting after graceful shutdown")
	}
}

// TestOneshotMatchesHTTP pins the CLI↔HTTP determinism contract: the
// -oneshot body for a spec is byte-identical to the served response.
func TestOneshotMatchesHTTP(t *testing.T) {
	addr, errc := startDaemon(t, options{hold: -1, drainTimeout: 10 * time.Second})
	resp, err := http.Post("http://"+addr+"/v1/measure", "application/json", strings.NewReader(testSpec))
	if err != nil {
		t.Fatal(err)
	}
	served, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d body %s", resp.StatusCode, served)
	}
	sigterm(t)
	waitExit(t, errc)

	var stdout bytes.Buffer
	if err := run(options{oneshot: testSpec}, &stdout, io.Discard); err != nil {
		t.Fatalf("oneshot: %v", err)
	}
	if !bytes.Equal(stdout.Bytes(), served) {
		t.Fatalf("oneshot bytes differ from served bytes:\n%s\n%s", stdout.Bytes(), served)
	}
}

// TestOneshotInvalidSpec: a bad spec exits non-zero with the error
// JSON on stdout.
func TestOneshotInvalidSpec(t *testing.T) {
	var stdout bytes.Buffer
	err := run(options{oneshot: `{"bench":"NoSuchBench"}`}, &stdout, io.Discard)
	if err == nil {
		t.Fatal("invalid oneshot spec succeeded")
	}
	if !strings.Contains(stdout.String(), "unknown benchmark") {
		t.Fatalf("stdout %q missing error body", stdout.String())
	}
}

// TestHoldElapses: a positive -hold returns without any signal.
func TestHoldElapses(t *testing.T) {
	_, errc := startDaemon(t, options{hold: 50 * time.Millisecond, drainTimeout: 10 * time.Second})
	waitExit(t, errc)
}
