package main

import (
	"bytes"
	"os"
	"regexp"
	"strings"
	"testing"

	"vasppower/internal/experiments"
)

var timingLine = regexp.MustCompile(`regenerated in [0-9]+\.[0-9]+s`)

// normalize strips the only nondeterministic content of the output:
// wall-clock timing lines.
func normalize(s string) string {
	return timingLine.ReplaceAllString(s, "regenerated in _s")
}

// TestQuickOutputGolden pins the complete -quick output on the default
// platform, byte for byte. The golden file was captured before the
// platform layer existed, so this test is the proof that making the
// hardware pluggable changed nothing on the machine the paper
// measured. Regenerate after an intentional change with:
//
//	go run ./cmd/powerstudy -quick | sed -E \
//	  's/regenerated in [0-9]+\.[0-9]+s/regenerated in _s/' \
//	  > cmd/powerstudy/testdata/quick_perlmutter-a100.golden
func TestQuickOutputGolden(t *testing.T) {
	want, err := os.ReadFile("testdata/quick_perlmutter-a100.golden")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	cfg := experiments.Config{Seed: 2024, Quick: true}
	if _, err := run(cfg, "", "", &buf); err != nil {
		t.Fatal(err)
	}
	got := normalize(buf.String())
	if got == string(want) {
		return
	}
	gl, wl := strings.Split(got, "\n"), strings.Split(string(want), "\n")
	for i := 0; i < len(gl) && i < len(wl); i++ {
		if gl[i] != wl[i] {
			t.Fatalf("quick output diverged from golden at line %d:\n got: %q\nwant: %q", i+1, gl[i], wl[i])
		}
	}
	t.Fatalf("quick output diverged from golden: %d lines vs %d", len(gl), len(wl))
}

// TestQuickRunsOnEveryPlatform smoke-tests the non-default platforms
// end to end through the same entry point the CLI uses, and checks the
// extrapolations actually produce different numbers than the measured
// machine.
func TestQuickRunsOnEveryPlatform(t *testing.T) {
	outputs := map[string]string{}
	for _, name := range []string{"perlmutter-a100", "a100-80gb-500w", "h100-sxm"} {
		var buf bytes.Buffer
		cfg := experiments.Config{Platform: name, Seed: 2024, Quick: true}
		if _, err := run(cfg, "table1,fig6", "", &buf); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		outputs[name] = normalize(buf.String())
	}
	for _, name := range []string{"a100-80gb-500w", "h100-sxm"} {
		if outputs[name] == outputs["perlmutter-a100"] {
			t.Fatalf("%s produced byte-identical output to perlmutter-a100; the platform is not being threaded through", name)
		}
	}
}
