// Command powerstudy regenerates every table and figure of the paper
// from the simulation, printing each as terminal text and optionally
// exporting the underlying data as CSV (the artifact bundle).
//
// Usage:
//
//	powerstudy [-quick] [-seed N] [-repeats N] [-only table1,fig3,...] [-artifact DIR]
//
// Experiment names: table1, fig1..fig13, exta (scheduler ablation),
// extb (repeat protocol), extc (DVFS vs capping), extd (power
// prediction), exte (MILC, the second application), extf (top-down
// signature clustering), extg (metric ablation).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"vasppower/internal/artifact"
	"vasppower/internal/experiments"
)

type result interface {
	Render() string
	CSV() artifact.Table
}

func main() {
	quick := flag.Bool("quick", false, "trimmed sweeps and single repeats (seconds instead of minutes)")
	seed := flag.Uint64("seed", 2024, "root random seed")
	repeats := flag.Int("repeats", 0, "repeats per measurement (0 = paper default of 5, or 1 in quick mode)")
	only := flag.String("only", "", "comma-separated experiment list (default: all)")
	artifactDir := flag.String("artifact", "", "directory for CSV data exports (empty = no export)")
	flag.Parse()

	cfg := experiments.Config{Seed: *seed, Repeats: *repeats, Quick: *quick}

	selected := map[string]bool{}
	if *only != "" {
		for _, name := range strings.Split(*only, ",") {
			selected[strings.TrimSpace(strings.ToLower(name))] = true
		}
	}
	want := func(name string) bool { return len(selected) == 0 || selected[name] }

	var tables []artifact.Table
	emit := func(name string, r result, elapsed time.Duration) {
		fmt.Println(strings.Repeat("=", 78))
		fmt.Println(r.Render())
		fmt.Printf("[%s regenerated in %.1fs]\n\n", name, elapsed.Seconds())
		if *artifactDir != "" {
			tables = append(tables, r.CSV())
		}
	}
	run := func(name string, f func() (result, error)) {
		if !want(name) {
			return
		}
		start := time.Now()
		r, err := f()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		emit(name, r, time.Since(start))
	}

	run("table1", func() (result, error) { r, err := experiments.RunTableI(cfg); return r, err })
	run("fig1", func() (result, error) { r, err := experiments.RunFig1(cfg); return r, err })
	run("fig2", func() (result, error) { r, err := experiments.RunFig2(cfg); return r, err })
	run("fig3", func() (result, error) { r, err := experiments.RunFig3(cfg); return r, err })

	if want("fig4") || want("fig5") {
		start := time.Now()
		sc, err := experiments.RunScaling(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fig4/5: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(strings.Repeat("=", 78))
		if want("fig4") {
			fmt.Println(sc.Fig4Render())
		}
		if want("fig5") {
			fmt.Println(sc.Fig5Render())
		}
		lo, hi := sc.ModeRange()
		fmt.Printf("[fig4+fig5 regenerated in %.1fs; 1-node mode range %.0f–%.0f W (paper: 766–1814 W)]\n\n",
			time.Since(start).Seconds(), lo, hi)
		if *artifactDir != "" {
			tables = append(tables, sc.CSV())
		}
	}

	run("fig6", func() (result, error) { r, err := experiments.RunFig6(cfg); return r, err })
	run("fig7", func() (result, error) { r, err := experiments.RunFig7(cfg); return r, err })
	run("fig8", func() (result, error) { r, err := experiments.RunFig8(cfg); return r, err })
	run("fig9", func() (result, error) { r, err := experiments.RunFig9(cfg); return r, err })

	if want("fig10") || want("fig12") {
		start := time.Now()
		cs, err := experiments.RunCapStudy(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fig10/12: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(strings.Repeat("=", 78))
		if want("fig10") {
			fmt.Println(cs.Fig10Render())
		}
		if want("fig12") {
			fmt.Println(cs.Fig12Render())
		}
		fmt.Printf("[fig10+fig12 regenerated in %.1fs]\n\n", time.Since(start).Seconds())
		if *artifactDir != "" {
			tables = append(tables, cs.CSV())
		}
	}

	run("fig11", func() (result, error) { r, err := experiments.RunFig11(cfg); return r, err })
	run("fig13", func() (result, error) { r, err := experiments.RunFig13(cfg); return r, err })
	run("exta", func() (result, error) { r, err := experiments.RunExtScheduler(cfg); return r, err })
	run("extb", func() (result, error) { r, err := experiments.RunExtRepeats(cfg); return r, err })
	run("extc", func() (result, error) { r, err := experiments.RunExtC(cfg); return r, err })
	run("extd", func() (result, error) { r, err := experiments.RunExtD(cfg); return r, err })
	run("exte", func() (result, error) { r, err := experiments.RunExtE(cfg); return r, err })
	run("extf", func() (result, error) { r, err := experiments.RunExtF(cfg); return r, err })
	run("extg", func() (result, error) { r, err := experiments.RunExtG(cfg); return r, err })

	if *artifactDir != "" && len(tables) > 0 {
		paths, err := artifact.Write(*artifactDir, tables...)
		if err != nil {
			fmt.Fprintf(os.Stderr, "artifact export: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("artifact bundle: %d CSV files under %s\n", len(paths), *artifactDir)
	}
}
