// Command powerstudy regenerates every table and figure of the paper
// from the simulation, printing each as terminal text and optionally
// exporting the underlying data as CSV (the artifact bundle).
//
// Usage:
//
//	powerstudy [-quick] [-platform NAME] [-seed N] [-repeats N] [-parallel N] [-only table1,fig3,...] [-artifact DIR]
//	           [-cache-dir DIR] [-cache-max-bytes N]
//	           [-trace FILE] [-manifest FILE] [-debug-addr ADDR] [-version]
//
// Experiment names: table1, fig1..fig13, exta (scheduler ablation),
// extb (repeat protocol), extc (DVFS vs capping), extd (power
// prediction), exte (MILC, the second application), extf (top-down
// signature clustering), extg (metric ablation).
//
// -platform selects the hardware platform measurements run on. The
// default, perlmutter-a100, is the machine the paper measured; every
// other registered platform is a shape-faithful extrapolation.
//
// -parallel N runs the experiment list (and each experiment's internal
// sweeps) through a worker pool of N goroutines (0 = one per CPU,
// 1 = serial). Results are identical for every value: all randomness
// is seed-derived, never order-derived, and output stays in experiment
// order.
//
// -cache-dir DIR enables the persistent measurement cache: every
// MeasureSpec result is stored content-addressed, checksummed, and
// atomically written under DIR, so a second run of the same sweep
// serves its measurements from disk instead of re-simulating — a warm
// -quick run skips essentially all simulation and its stdout stays
// byte-identical to the cold run that populated the cache.
// -cache-max-bytes bounds the directory (LRU eviction; 0 = unbounded).
// The cache never touches stdout either.
//
// The observability flags never touch stdout, so the byte-identical
// golden output holds with or without them: -trace FILE appends one
// JSON line per span (each experiment, each measurement) to FILE,
// -manifest FILE writes a self-describing run record (build info,
// platform, knobs, per-experiment wall time, metrics snapshot) at
// exit, and -debug-addr ADDR serves net/http/pprof plus a JSON
// metrics dump for live inspection of long sweeps.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"vasppower/internal/artifact"
	"vasppower/internal/experiments"
	"vasppower/internal/hw/platform"
	"vasppower/internal/obs"
	"vasppower/internal/par"
	"vasppower/internal/serve"
	"vasppower/internal/telemetry"
	"vasppower/internal/telemetry/promexp"
)

type result interface {
	Render() string
	CSV() artifact.Table
}

// unit is one independently-runnable entry of the experiment list.
type unit struct {
	name string
	run  func() (string, []artifact.Table, error)
}

// output is a completed unit's contribution, printed strictly in list
// order regardless of completion order.
type output struct {
	text   string
	tables []artifact.Table
	err    error
}

func main() {
	quick := flag.Bool("quick", false, "trimmed sweeps and single repeats (seconds instead of minutes)")
	platName := flag.String("platform", "",
		fmt.Sprintf("hardware platform to run on (default %s; registered: %s)",
			platform.DefaultName, strings.Join(platform.List(), ", ")))
	seed := flag.Uint64("seed", 2024, "root random seed")
	repeats := flag.Int("repeats", 0, "repeats per measurement (0 = paper default of 5, or 1 in quick mode)")
	parallel := flag.Int("parallel", 0, "worker pool size for experiments and their sweeps (0 = one per CPU, 1 = serial)")
	only := flag.String("only", "", "comma-separated experiment list (default: all)")
	artifactDir := flag.String("artifact", "", "directory for CSV data exports (empty = no export)")
	cacheDir := flag.String("cache-dir", "", "persistent measurement-cache directory (empty = in-memory only)")
	cacheMaxBytes := flag.Int64("cache-max-bytes", 1<<30, "persistent cache size bound in bytes, LRU-evicted (0 = unbounded)")
	tracePath := flag.String("trace", "", "append spans as JSON lines to this file (empty = no tracing)")
	manifestPath := flag.String("manifest", "", "write a self-describing run manifest (JSON) to this file at exit")
	debugAddr := flag.String("debug-addr", "", "serve /debug/pprof and /debug/vars on this address (e.g. localhost:6060)")
	telemetryAddr := flag.String("telemetry-addr", "",
		"stream per-host per-domain power samples and serve them as Prometheus text at /metrics on this address (e.g. localhost:9100)")
	hold := flag.Duration("hold", 0,
		"keep the /metrics endpoint serving after the run completes: a duration, or negative (e.g. -1s) to serve until SIGINT/SIGTERM (a signal always ends the hold early)")
	telemetryHold := flag.Duration("telemetry-hold", 0,
		"deprecated alias for -hold")
	version := flag.Bool("version", false, "print module version, VCS revision, and dirty flag, then exit")
	flag.Parse()

	if *version {
		fmt.Println(obs.VersionString("powerstudy"))
		return
	}
	if *platName != "" {
		if _, err := platform.Get(*platName); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	cfg := experiments.Config{
		Platform: *platName, Seed: *seed, Repeats: *repeats,
		Quick: *quick, Workers: *parallel,
	}

	// Observability: any of the four flags turns the recorder on; all
	// off leaves every hot path on its nil no-op default.
	if *tracePath != "" || *manifestPath != "" || *debugAddr != "" || *telemetryAddr != "" {
		cfg.Obs = obs.New()
		experiments.Instrument(cfg.Obs.Metrics)
		if *tracePath != "" {
			f, err := os.Create(*tracePath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "powerstudy: trace:", err)
				os.Exit(2)
			}
			defer f.Close()
			cfg.Obs.Tracer = obs.NewTracer(f)
		}
		var ds *obs.DebugServer
		if *debugAddr != "" {
			srv, err := obs.ServeDebug(*debugAddr, cfg.Obs.Metrics)
			if err != nil {
				fmt.Fprintln(os.Stderr, "powerstudy:", err)
				os.Exit(2)
			}
			ds = srv
			defer ds.Close()
			fmt.Fprintf(os.Stderr, "powerstudy: debug endpoint on http://%s (pprof, /debug/vars)\n", ds.Addr)
		}
		if *telemetryAddr != "" {
			hub := telemetry.NewHub()
			smp, err := telemetry.NewSampler(hub, 1.0)
			if err != nil {
				fmt.Fprintln(os.Stderr, "powerstudy:", err)
				os.Exit(2)
			}
			telemetry.SetDefault(smp)
			col, err := promexp.NewCollector(hub, cfg.Obs.Reg(), 1<<16)
			if err != nil {
				fmt.Fprintln(os.Stderr, "powerstudy:", err)
				os.Exit(2)
			}
			defer col.Close()
			// Reuse the debug server when both flags name the same
			// address; otherwise the telemetry endpoint gets its own.
			tds := ds
			if tds == nil || *telemetryAddr != *debugAddr {
				srv, err := obs.ServeDebug(*telemetryAddr, cfg.Obs.Metrics)
				if err != nil {
					fmt.Fprintln(os.Stderr, "powerstudy:", err)
					os.Exit(2)
				}
				tds = srv
				defer tds.Close()
			}
			tds.Handle("/metrics", col)
			fmt.Fprintf(os.Stderr, "powerstudy: telemetry endpoint on http://%s/metrics\n", tds.Addr)
			if *hold == 0 {
				*hold = *telemetryHold // deprecated spelling
			}
			if *hold != 0 {
				holdFor := *hold
				defer func() {
					fmt.Fprintf(os.Stderr, "powerstudy: holding /metrics open for %s\n", holdFor)
					reason := serve.WaitForShutdown(holdFor)
					fmt.Fprintf(os.Stderr, "powerstudy: hold ended (%s)\n", reason)
				}()
			}
		}
	}

	if *cacheDir != "" {
		st, err := experiments.EnableDiskCache(*cacheDir, *cacheMaxBytes)
		if err != nil {
			fmt.Fprintln(os.Stderr, "powerstudy:", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "powerstudy: persistent measurement cache at %s (%d entries)\n",
			st.Dir(), st.Len())
	}

	started := time.Now()
	timings, err := run(cfg, *only, *artifactDir, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *manifestPath != "" {
		if err := writeManifest(*manifestPath, cfg, started, timings); err != nil {
			fmt.Fprintln(os.Stderr, "powerstudy:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "powerstudy: run manifest written to %s\n", *manifestPath)
	}
}

// platformName resolves the platform label recorded in spans and the
// manifest.
func platformName(cfg experiments.Config) string {
	if cfg.Platform != "" {
		return cfg.Platform
	}
	return platform.DefaultName
}

// writeManifest captures the run the way the paper's OMNI job records
// capture a batch job: provenance, configuration, per-experiment wall
// time, and the final metrics snapshot.
func writeManifest(path string, cfg experiments.Config, started time.Time, timings []obs.ExperimentTiming) error {
	var snap *obs.Snapshot
	if reg := cfg.Obs.Reg(); reg != nil {
		s := reg.Snapshot()
		snap = &s
	}
	return obs.Manifest{
		Tool:        "powerstudy",
		Build:       obs.GetBuildInfo(),
		Platform:    platformName(cfg),
		Seed:        cfg.Seed,
		Workers:     par.Workers(cfg.Workers),
		Quick:       cfg.Quick,
		Started:     started.UTC(),
		WallSeconds: time.Since(started).Seconds(),
		Experiments: timings,
		Metrics:     snap,
	}.Write(path)
}

// run executes the selected experiments against cfg and writes their
// rendered output to w in list order, returning each experiment's wall
// time for the manifest. It is the whole CLI behind flag parsing, so
// tests can drive it directly.
func run(cfg experiments.Config, only, artifactDir string, w io.Writer) ([]obs.ExperimentTiming, error) {
	selected := map[string]bool{}
	if only != "" {
		for _, name := range strings.Split(only, ",") {
			selected[strings.TrimSpace(strings.ToLower(name))] = true
		}
	}
	want := func(name string) bool { return len(selected) == 0 || selected[name] }

	exportCSV := artifactDir != ""
	sep := strings.Repeat("=", 78)
	// simple wraps a single-result experiment in the standard emit
	// format (separator, render, timing line).
	simple := func(name string, f func() (result, error)) unit {
		return unit{name: name, run: func() (string, []artifact.Table, error) {
			start := time.Now()
			r, err := f()
			if err != nil {
				return "", nil, err
			}
			var sb strings.Builder
			fmt.Fprintln(&sb, sep)
			fmt.Fprintln(&sb, r.Render())
			fmt.Fprintf(&sb, "[%s regenerated in %.1fs]\n\n", name, time.Since(start).Seconds())
			var tabs []artifact.Table
			if exportCSV {
				tabs = append(tabs, r.CSV())
			}
			return sb.String(), tabs, nil
		}}
	}

	var units []unit
	add := func(name string, f func() (result, error)) {
		if want(name) {
			units = append(units, simple(name, f))
		}
	}

	add("table1", func() (result, error) { r, err := experiments.RunTableI(cfg); return r, err })
	add("fig1", func() (result, error) { r, err := experiments.RunFig1(cfg); return r, err })
	add("fig2", func() (result, error) { r, err := experiments.RunFig2(cfg); return r, err })

	// fig2smi is strictly opt-in (-only must name it): it adds the
	// nvidia-smi sampling-pathology pipeline on top of the Fig. 2 run,
	// and the default stdout is pinned byte-identical by the golden
	// test, so it never joins the default list.
	if selected["fig2smi"] {
		units = append(units, unit{name: "fig2smi", run: func() (string, []artifact.Table, error) {
			start := time.Now()
			r, err := experiments.RunFig2(cfg)
			if err != nil {
				return "", nil, err
			}
			var sb strings.Builder
			fmt.Fprintln(&sb, sep)
			fmt.Fprintln(&sb, r.RenderPipelines())
			fmt.Fprintf(&sb, "[fig2smi regenerated in %.1fs]\n\n", time.Since(start).Seconds())
			var tabs []artifact.Table
			if exportCSV {
				tabs = append(tabs, r.PipelinesCSV())
			}
			return sb.String(), tabs, nil
		}})
	}
	add("fig3", func() (result, error) { r, err := experiments.RunFig3(cfg); return r, err })

	if want("fig4") || want("fig5") {
		units = append(units, unit{name: "fig4/5", run: func() (string, []artifact.Table, error) {
			start := time.Now()
			sc, err := experiments.RunScaling(cfg)
			if err != nil {
				return "", nil, err
			}
			var sb strings.Builder
			fmt.Fprintln(&sb, sep)
			if want("fig4") {
				fmt.Fprintln(&sb, sc.Fig4Render())
			}
			if want("fig5") {
				fmt.Fprintln(&sb, sc.Fig5Render())
			}
			lo, hi := sc.ModeRange()
			fmt.Fprintf(&sb, "[fig4+fig5 regenerated in %.1fs; 1-node mode range %.0f–%.0f W (paper: 766–1814 W)]\n\n",
				time.Since(start).Seconds(), lo, hi)
			var tabs []artifact.Table
			if exportCSV {
				tabs = append(tabs, sc.CSV())
			}
			return sb.String(), tabs, nil
		}})
	}

	add("fig6", func() (result, error) { r, err := experiments.RunFig6(cfg); return r, err })
	add("fig7", func() (result, error) { r, err := experiments.RunFig7(cfg); return r, err })
	add("fig8", func() (result, error) { r, err := experiments.RunFig8(cfg); return r, err })
	add("fig9", func() (result, error) { r, err := experiments.RunFig9(cfg); return r, err })

	if want("fig10") || want("fig12") {
		units = append(units, unit{name: "fig10/12", run: func() (string, []artifact.Table, error) {
			start := time.Now()
			cs, err := experiments.RunCapStudy(cfg)
			if err != nil {
				return "", nil, err
			}
			var sb strings.Builder
			fmt.Fprintln(&sb, sep)
			if want("fig10") {
				fmt.Fprintln(&sb, cs.Fig10Render())
			}
			if want("fig12") {
				fmt.Fprintln(&sb, cs.Fig12Render())
			}
			fmt.Fprintf(&sb, "[fig10+fig12 regenerated in %.1fs]\n\n", time.Since(start).Seconds())
			var tabs []artifact.Table
			if exportCSV {
				tabs = append(tabs, cs.CSV())
			}
			return sb.String(), tabs, nil
		}})
	}

	add("fig11", func() (result, error) { r, err := experiments.RunFig11(cfg); return r, err })
	add("fig13", func() (result, error) { r, err := experiments.RunFig13(cfg); return r, err })
	add("exta", func() (result, error) { r, err := experiments.RunExtScheduler(cfg); return r, err })
	add("extb", func() (result, error) { r, err := experiments.RunExtRepeats(cfg); return r, err })
	add("extc", func() (result, error) { r, err := experiments.RunExtC(cfg); return r, err })
	add("extd", func() (result, error) { r, err := experiments.RunExtD(cfg); return r, err })
	add("exte", func() (result, error) { r, err := experiments.RunExtE(cfg); return r, err })
	add("extf", func() (result, error) { r, err := experiments.RunExtF(cfg); return r, err })
	add("extg", func() (result, error) { r, err := experiments.RunExtG(cfg); return r, err })

	// The experiment list itself goes through the pool: each unit's
	// output lands in its slot and is printed strictly in list order as
	// it becomes ready. A failed unit surfaces its own error, at its
	// position in the list, exactly like the serial CLI did. Each unit
	// gets an "experiment" span and a manifest timing entry; neither
	// touches the rendered output.
	outputs := make([]output, len(units))
	seconds := make([]float64, len(units))
	done := make([]chan struct{}, len(units))
	for i := range done {
		done[i] = make(chan struct{})
	}
	platName := platformName(cfg)
	go par.ForEach(context.Background(), par.Workers(cfg.Workers), len(units),
		func(_ context.Context, i int) error {
			sp := cfg.Obs.Span("experiment")
			start := time.Now()
			outputs[i].text, outputs[i].tables, outputs[i].err = units[i].run()
			seconds[i] = time.Since(start).Seconds()
			sp.Set("name", units[i].name).Set("platform", platName).
				Set("error", outputs[i].err != nil)
			sp.End()
			close(done[i])
			return nil // errors surface in list order below
		})

	var tables []artifact.Table
	timings := make([]obs.ExperimentTiming, 0, len(units))
	for i := range units {
		<-done[i]
		if err := outputs[i].err; err != nil {
			return nil, fmt.Errorf("%s: %w", units[i].name, err)
		}
		fmt.Fprint(w, outputs[i].text)
		tables = append(tables, outputs[i].tables...)
		timings = append(timings, obs.ExperimentTiming{Name: units[i].name, Seconds: seconds[i]})
	}

	if exportCSV && len(tables) > 0 {
		paths, err := artifact.Write(artifactDir, tables...)
		if err != nil {
			return nil, fmt.Errorf("artifact export: %w", err)
		}
		fmt.Fprintf(w, "artifact bundle: %d CSV files under %s\n", len(paths), artifactDir)
	}
	return timings, nil
}
