package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"vasppower/internal/experiments"
	"vasppower/internal/obs"
)

// TestObservabilityRun drives the full -quick suite exactly as
// `powerstudy -quick -parallel 4 -trace t -manifest m` would and pins
// the acceptance contract: stdout stays byte-identical to the golden
// file, the trace carries one "experiment" span per unit plus
// "measure" spans with cache-hit status, and the manifest is
// parseable JSON with build info, per-experiment wall time, and a
// nonzero memo hit count at Workers > 1.
func TestObservabilityRun(t *testing.T) {
	var trace bytes.Buffer
	o := obs.New()
	o.Tracer = obs.NewTracer(&trace)
	experiments.Instrument(o.Metrics)
	defer experiments.Instrument(nil)

	cfg := experiments.Config{Seed: 2024, Quick: true, Workers: 4, Obs: o}
	var out bytes.Buffer
	started := time.Now()
	timings, err := run(cfg, "", "", &out)
	if err != nil {
		t.Fatal(err)
	}

	// 1. Telemetry must not leak into the rendered output.
	want, err := os.ReadFile("testdata/quick_perlmutter-a100.golden")
	if err != nil {
		t.Fatal(err)
	}
	if got := normalize(out.String()); got != string(want) {
		t.Error("stdout with observability on diverged from the golden file")
	}

	// 2. One "experiment" span per unit, "measure" spans with
	// cache-hit status, every line valid JSON.
	expSpans := map[string]bool{}
	measures, cacheHits := 0, 0
	for _, line := range strings.Split(strings.TrimSuffix(trace.String(), "\n"), "\n") {
		var span map[string]any
		if err := json.Unmarshal([]byte(line), &span); err != nil {
			t.Fatalf("trace line is not JSON: %v\n%q", err, line)
		}
		if _, ok := span["ms"].(float64); !ok {
			t.Fatalf("span without duration: %q", line)
		}
		switch span["span"] {
		case "experiment":
			expSpans[span["name"].(string)] = true
		case "measure":
			measures++
			hit, ok := span["cache_hit"].(bool)
			if !ok {
				t.Fatalf("measure span without cache_hit: %q", line)
			}
			if hit {
				cacheHits++
			}
		}
	}
	if len(timings) == 0 || len(expSpans) != len(timings) {
		t.Fatalf("experiment spans = %d, want one per unit (%d): %v",
			len(expSpans), len(timings), expSpans)
	}
	for _, tm := range timings {
		if !expSpans[tm.Name] {
			t.Fatalf("no span for experiment %q", tm.Name)
		}
	}
	if measures == 0 {
		t.Fatal("no measure spans in trace")
	}
	if cacheHits == 0 {
		t.Fatal("no cache-hit measure spans; the memo cache is not being observed")
	}

	// 3. The manifest round-trips with provenance and metrics.
	path := filepath.Join(t.TempDir(), "manifest.json")
	if err := writeManifest(path, cfg, started, timings); err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var m obs.Manifest
	if err := json.Unmarshal(buf, &m); err != nil {
		t.Fatalf("manifest is not parseable JSON: %v", err)
	}
	if m.Tool != "powerstudy" || m.Platform != "perlmutter-a100" || m.Seed != 2024 {
		t.Fatalf("manifest header wrong: %+v", m)
	}
	if m.Build.Module != "vasppower" || m.Build.GoVersion == "" {
		t.Fatalf("manifest build info missing: %+v", m.Build)
	}
	if m.Workers < 2 {
		t.Fatalf("manifest workers = %d, want the resolved pool size", m.Workers)
	}
	if len(m.Experiments) != len(timings) {
		t.Fatalf("manifest has %d experiment timings, want %d", len(m.Experiments), len(timings))
	}
	if m.Metrics == nil {
		t.Fatal("manifest has no metrics snapshot")
	}
	if m.Metrics.Counters["memo.hits"] == 0 {
		t.Fatalf("memo.hits = 0 in manifest; counters: %v", m.Metrics.Counters)
	}
	if m.Metrics.Counters["memo.hits"]+m.Metrics.Counters["memo.misses"] != m.Metrics.Counters["memo.lookups"] {
		t.Fatalf("memo ledger unbalanced in manifest: %v", m.Metrics.Counters)
	}
	if m.Metrics.Counters["sim.steps"] == 0 {
		t.Fatal("sim.steps = 0; the simulation engine is not being observed")
	}
	if m.Metrics.Counters["par.items_started"] == 0 {
		t.Fatal("par.items_started = 0; the worker pool is not being observed")
	}
	if m.Metrics.Counters["timeseries.sum_segments"] == 0 {
		t.Fatal("timeseries.sum_segments = 0; trace summation is not being observed")
	}
	if m.Metrics.Counters["timeseries.samples"] == 0 {
		t.Fatal("timeseries.samples = 0; the sampling pipeline is not being observed")
	}
}
