package main

import (
	"bytes"
	"os"
	"testing"

	"vasppower/internal/experiments"
	"vasppower/internal/obs"
)

// TestWarmQuickRunFromDisk is the tentpole's acceptance test: a -quick
// run against a populated disk cache performs zero MeasureSpec
// computations (every lookup is a disk hit) and renders stdout
// byte-identical to both the cold run that populated the cache and the
// pinned golden file.
func TestWarmQuickRunFromDisk(t *testing.T) {
	// Earlier tests in this package leave the memory tier warm; drop it
	// so the cold run below actually writes every entry to disk.
	experiments.ResetCache()
	if _, err := experiments.EnableDiskCache(t.TempDir(), 0); err != nil {
		t.Fatal(err)
	}
	defer experiments.DisableDiskCache()

	var cold bytes.Buffer
	if _, err := run(experiments.Config{Seed: 2024, Quick: true}, "", "", &cold); err != nil {
		t.Fatal(err)
	}

	// Warm run: memory tier cold again (a fresh process), disk tier
	// populated, counters attached so we can prove where lookups landed.
	experiments.ResetCache()
	o := obs.New()
	experiments.Instrument(o.Metrics)
	defer experiments.Instrument(nil)
	var warm bytes.Buffer
	if _, err := run(experiments.Config{Seed: 2024, Quick: true, Obs: o}, "", "", &warm); err != nil {
		t.Fatal(err)
	}

	if normalize(cold.String()) != normalize(warm.String()) {
		t.Error("warm run output diverged from the cold run that populated the cache")
	}
	want, err := os.ReadFile("testdata/quick_perlmutter-a100.golden")
	if err != nil {
		t.Fatal(err)
	}
	if normalize(warm.String()) != string(want) {
		t.Error("warm run output diverged from the pinned golden file")
	}

	c := o.Metrics.Snapshot().Counters
	if c["diskcache.hits"] == 0 {
		t.Fatalf("diskcache.hits = 0 on the warm run; counters: %v", c)
	}
	if c["diskcache.misses"] != 0 {
		t.Fatalf("diskcache.misses = %d on the warm run, want 0 (a miss means a recomputation)", c["diskcache.misses"])
	}
	if c["diskcache.corrupt"] != 0 || c["diskcache.errors"] != 0 {
		t.Fatalf("disk tier reported corruption or errors on a clean warm run: %v", c)
	}
	// Every memory-tier miss was absorbed by the disk tier.
	if c["memo.misses"] != c["diskcache.hits"] {
		t.Fatalf("memo.misses = %d but diskcache.hits = %d; some lookup bypassed the disk tier",
			c["memo.misses"], c["diskcache.hits"])
	}
}
