package vasppower_test

// Godoc examples for the public API. Output blocks make them part of
// the test suite; everything is deterministic given the seeds.

import (
	"fmt"

	"vasppower"
)

// ExampleBenchmarkByName shows how the Table I suite is addressed.
func ExampleBenchmarkByName() {
	b, ok := vasppower.BenchmarkByName("Si256_hse")
	if !ok {
		panic("missing benchmark")
	}
	fmt.Println(b.Name, b.Structure.Electrons, b.NBands, b.NPLWV())
	// Output: Si256_hse 1020 640 512000
}

// ExampleHighPowerMode computes the paper's headline metric from raw
// power samples.
func ExampleHighPowerMode() {
	var watts []float64
	for i := 0; i < 3000; i++ {
		if i%4 == 0 {
			watts = append(watts, 1800+float64(i%5))
		} else {
			watts = append(watts, 900+float64(i%9))
		}
	}
	mode, ok := vasppower.HighPowerMode(watts)
	fmt.Println(ok, mode.X > 1750 && mode.X < 1850)
	// Output: true true
}

// ExampleMeasure profiles one benchmark end to end.
func ExampleMeasure() {
	b, _ := vasppower.BenchmarkByName("B.hR105_hse")
	jp, err := vasppower.Measure(vasppower.MeasureSpec{Bench: b, Nodes: 1, Repeats: 1, CapW: 0, Seed: 42})
	if err != nil {
		panic(err)
	}
	fmt.Println(jp.Runtime > 0, jp.NodeTotal.HasMode,
		jp.NodeTotal.HighMode.X > 1000, jp.GPUShareOfNode() > 0.5)
	// Output: true true true true
}

// ExampleMeasureCapResponse reproduces the 50%-TDP headline on one
// workload.
func ExampleMeasureCapResponse() {
	b, _ := vasppower.BenchmarkByName("GaAsBi-64")
	cr, err := vasppower.MeasureCapResponse(vasppower.MeasureSpec{Bench: b, Nodes: 1, Repeats: 1, Seed: 42}, []float64{400, 200})
	if err != nil {
		panic(err)
	}
	slow, _ := cr.SlowdownAt(200)
	fmt.Printf("slowdown at 50%% TDP below 10%%: %v\n", slow < 0.10)
	// Output: slowdown at 50% TDP below 10%: true
}

// ExampleSiliconBenchmark builds the §IV synthetic family.
func ExampleSiliconBenchmark() {
	b, err := vasppower.SiliconBenchmark(256, vasppower.MethodDFTBD)
	if err != nil {
		panic(err)
	}
	fmt.Println(b.Structure.NumIons, b.Structure.Electrons, b.NBands)
	// Output: 256 1024 640
}
