// Capsweep: reproduce the paper's headline finding on two contrasting
// workloads — capping A100s to 50% of TDP (200 W) costs most VASP
// workloads less than 10% performance, and light workloads tolerate
// even the 100 W floor.
package main

import (
	"fmt"
	"log"

	"vasppower"
)

func main() {
	caps := []float64{400, 300, 200, 100}
	for _, name := range []string{"B.hR105_hse", "GaAsBi-64"} {
		bench, ok := vasppower.BenchmarkByName(name)
		if !ok {
			log.Fatalf("benchmark %s not found", name)
		}
		cr, err := vasppower.MeasureCapResponse(vasppower.MeasureSpec{
			Bench: bench, Nodes: bench.OptimalNodes, Repeats: 3, Seed: 42,
		}, caps)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s @ %d node(s), baseline %.0f s:\n", name, bench.OptimalNodes, cr.Baseline)
		for _, p := range cr.Points {
			slow, _ := cr.SlowdownAt(p.CapW)
			fmt.Printf("  cap %3.0f W: runtime %6.0f s (%+5.1f%%), GPU mode %3.0f W (%.2f of cap), energy %.2f MJ\n",
				p.CapW, p.Runtime, slow*100, p.GPUHighMode, p.ModeOverCap, p.EnergyJ/1e6)
		}
		fmt.Println()
	}
	fmt.Println("hybrid-functional jobs feel a 200 W cap mildly and a 100 W cap badly;")
	fmt.Println("small DFT jobs barely notice either — the basis for per-class capping.")
}
