// Quickstart: measure the power profile of one VASP benchmark on a
// simulated Perlmutter GPU node, the way the paper characterizes
// every workload — run it, sample the telemetry, and report the high
// power mode rather than the mean or max.
package main

import (
	"fmt"
	"log"

	"vasppower"
)

func main() {
	bench, ok := vasppower.BenchmarkByName("PdO4")
	if !ok {
		log.Fatal("benchmark not found")
	}
	fmt.Printf("benchmark: %s — %s\n", bench.Name, bench.Description)
	fmt.Printf("system: %d ions, %d electrons, NBANDS %d, NPLWV %d\n\n",
		bench.Structure.NumIons, bench.Structure.Electrons, bench.NBands, bench.NPLWV())

	// Five repeats with minimum-runtime selection, default power
	// limits, one node of the default platform (four A100s).
	profile, err := vasppower.Measure(vasppower.MeasureSpec{Bench: bench, Repeats: 5, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("runtime: %.0f s, energy to solution: %.2f MJ\n",
		profile.Runtime, profile.EnergyJ/1e6)
	if profile.NodeTotal.HasMode {
		fmt.Printf("node high power mode: %.0f W (FWHM %.0f W)\n",
			profile.NodeTotal.HighMode.X, profile.NodeTotal.HighMode.FWHM)
	}
	fmt.Printf("node power: min %.0f / median %.0f / mean %.0f / max %.0f W\n",
		profile.NodeTotal.Summary.Min, profile.NodeTotal.Summary.Median,
		profile.NodeTotal.Summary.Mean, profile.NodeTotal.Summary.Max)
	fmt.Printf("the GPUs draw %.0f%% of node power; CPU+memory %.0f%%\n",
		profile.GPUShareOfNode()*100, profile.CPUMemShareOfNode()*100)

	// The same analysis works on any power sample.
	mode, ok := vasppower.HighPowerMode(profile.GPUs[0].Series.Values)
	if ok {
		fmt.Printf("GPU 0 high power mode: %.0f W\n", mode.X)
	}
}
