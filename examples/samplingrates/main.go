// Samplingrates: the paper's Fig. 2 methodology through the public
// API — sample one GPU's power at 0.1 s, down-sample to coarser
// telemetry intervals, and watch the high power mode stay put while
// the distribution's width grows and fine timeline detail vanishes.
package main

import (
	"fmt"
	"log"

	"vasppower"
)

func main() {
	bench, _ := vasppower.BenchmarkByName("GaAsBi-64")
	out, err := vasppower.Run(vasppower.RunSpec{
		Bench: bench, Nodes: 1, Repeats: 1, Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Lossless 0.1 s sampling of GPU 0 over the job window.
	base := out.Nodes[0].GPUTrace(0).Sample(0.1).Slice(out.VASPStart, out.VASPEnd)
	fmt.Printf("%s, 1 node: %d samples at 0.1 s\n\n", bench.Name, base.Len())
	fmt.Printf("%-10s %8s %8s %8s %11s %8s\n",
		"interval", "min", "median", "max", "high mode", "FWHM")

	for _, interval := range []float64{0.1, 0.5, 1, 2, 5, 10} {
		s := base
		if interval > 0.1 {
			s = base.Downsample(interval)
		}
		p := vasppower.ProfileSeries(s)
		if !p.HasMode {
			fmt.Printf("%7.1f s  (no mode)\n", interval)
			continue
		}
		fmt.Printf("%7.1f s  %6.0f W %6.0f W %6.0f W %8.0f W %6.0f W\n",
			interval, p.Summary.Min, p.Summary.Median, p.Summary.Max,
			p.HighMode.X, p.HighMode.FWHM)
	}

	fmt.Println("\nany interval up to 10 s recovers the high power mode; capturing the")
	fmt.Println("timeline's structure needs 5 s or finer (the paper's conclusion).")
}
