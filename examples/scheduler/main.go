// Scheduler: deploy the paper's §VI proposal — a batch scheduler that
// classifies VASP jobs from their inputs and applies profile-derived
// GPU power caps — and compare it with scheduling at face-value TDP
// under a facility power budget.
package main

import (
	"fmt"
	"log"

	"vasppower"
)

func main() {
	const nodes = 8
	budget := nodes * 1100.0 // watts — well under nodes × 2350 W TDP

	jobs := vasppower.SyntheticJobMix(16, 120, 7)
	fmt.Printf("%d VASP jobs queued on a %d-node partition with a %.1f kW budget\n\n",
		len(jobs), nodes, budget/1000)

	for _, policy := range []vasppower.SchedulerPolicy{
		vasppower.PolicyNoCap,
		vasppower.PolicyProfileAware,
	} {
		res, err := vasppower.SimulateScheduler(vasppower.SchedulerConfig{
			ClusterNodes: nodes,
			BudgetW:      budget,
			IdleNodeW:    460,
			Policy:       policy,
			Catalog:      vasppower.NewSchedulerCatalog(7),
		}, jobs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s makespan %6.0f s | mean wait %5.0f s | peak %4.1f kW | energy %.1f MJ | mean perf loss %.1f%%\n",
			res.Policy, res.Makespan, res.MeanWait, res.PeakPowerW/1000,
			res.TotalEnergyJ/1e6, res.MeanPerfLoss*100)
	}

	fmt.Println("\nwithout profiles the scheduler must reserve 2350 W per node and can barely")
	fmt.Println("overlap jobs; with profile-aware caps the same budget runs the queue far")
	fmt.Println("sooner at a per-job cost below 10%.")
}
