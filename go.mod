module vasppower

go 1.22
