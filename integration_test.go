package vasppower_test

// Integration tests: cross-module flows exercised end to end, the way
// the CLIs drive them — run → telemetry → store → analysis, INCAR →
// workload → profile, and control-plane round trips.

import (
	"math"
	"strings"
	"testing"

	"vasppower"
	"vasppower/internal/dft/incar"
	"vasppower/internal/dft/lattice"
	"vasppower/internal/dft/method"
	"vasppower/internal/dft/parallel"
	"vasppower/internal/dft/solver"
	"vasppower/internal/hw/node"
	"vasppower/internal/hw/platform"
	"vasppower/internal/interconnect"
	"vasppower/internal/monitor"
	"vasppower/internal/nvsmi"
	"vasppower/internal/omni"
	"vasppower/internal/stats"
	"vasppower/internal/workloads"
)

// TestTelemetryPipelineEndToEnd mirrors cmd/omniquery: run a job,
// sample every sensor through the lossy LDMS pipeline, store in OMNI,
// register the job, query it back, and analyze the result.
func TestTelemetryPipelineEndToEnd(t *testing.T) {
	bench, _ := workloads.ByName("PdO2")
	out, err := workloads.Run(workloads.RunSpec{
		Bench: bench, Nodes: 2, Repeats: 1, Prelude: true, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	store := omni.NewStore()
	cfg := monitor.LDMSDefault()
	for _, n := range out.Nodes {
		series, err := monitor.SampleNode(n, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for m, s := range series {
			if err := store.Insert(n.Name, m, s); err != nil {
				t.Fatal(err)
			}
		}
	}
	var hosts []string
	for _, n := range out.Nodes {
		hosts = append(hosts, n.Name)
	}
	job := omni.JobRecord{ID: "42", App: bench.Name, Nodes: hosts,
		Start: out.VASPStart, End: out.VASPEnd}
	if err := store.RegisterJob(job); err != nil {
		t.Fatal(err)
	}

	// Per-node power through the store: mode detection still works on
	// the lossy 2 s data.
	perNode, err := store.JobPower("42", monitor.MetricNode)
	if err != nil {
		t.Fatal(err)
	}
	if len(perNode) != 2 {
		t.Fatalf("nodes = %d", len(perNode))
	}
	for host, s := range perNode {
		if s.Len() < 10 {
			t.Fatalf("%s: only %d samples", host, s.Len())
		}
		hm, ok := stats.HighPowerModeOf(s.Values)
		if !ok {
			t.Fatalf("%s: no mode through pipeline", host)
		}
		// Mode from lossy telemetry ≈ mode from the exact trace.
		exact := out.Nodes[0].TotalTrace().Sample(2).Slice(out.VASPStart, out.VASPEnd)
		exactMode, _ := stats.HighPowerModeOf(exact.Values)
		if math.Abs(hm.X-exactMode.X) > 0.1*exactMode.X {
			t.Fatalf("%s: pipeline mode %v far from exact %v", host, hm.X, exactMode.X)
		}
	}
	// Job energy from telemetry ≈ exact energy.
	e, err := store.JobEnergy("42")
	if err != nil {
		t.Fatal(err)
	}
	var exact float64
	for _, n := range out.Nodes {
		exact += n.TotalTrace().EnergyBetween(out.VASPStart, out.VASPEnd)
	}
	if math.Abs(e-exact)/exact > 0.05 {
		t.Fatalf("telemetry energy %v vs exact %v", e, exact)
	}
}

// TestINCARToProfile mirrors cmd/minivasp's -incar path: parse real
// input text, derive the workload, run it, and profile it.
func TestINCARToProfile(t *testing.T) {
	const incarText = `
SYSTEM = integration hybrid
ALGO = Damped ; LHFCALC = .TRUE.
NELM = 6
ENCUT = 245
`
	f, err := incar.Parse(incarText)
	if err != nil {
		t.Fatal(err)
	}
	p, err := f.TypedParams()
	if err != nil {
		t.Fatal(err)
	}
	kind, err := method.FromParams(p)
	if err != nil {
		t.Fatal(err)
	}
	if kind != method.HSE {
		t.Fatalf("kind = %v", kind)
	}
	s, err := lattice.SiliconSupercell(128)
	if err != nil {
		t.Fatal(err)
	}
	grid, err := lattice.FFTGrid(s, p.ENCUT, p.Prec)
	if err != nil {
		t.Fatal(err)
	}
	bench := workloads.Benchmark{
		Name: "integration", Description: "INCAR round trip",
		Structure: s, Method: kind, Functional: "HSE", AlgoName: "Damped",
		NELM: p.NELM, NBands: lattice.DefaultNBands(s.Electrons, s.NumIons, 8),
		FFTGrid: grid, KPoints: incar.GammaOnly(), KPar: 1,
		ENCUT: p.ENCUT, OptimalNodes: 1,
	}
	jp, err := vasppower.Measure(vasppower.MeasureSpec{Bench: bench, Nodes: 1, Repeats: 1, CapW: 0, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !jp.NodeTotal.HasMode || jp.Runtime <= 0 {
		t.Fatal("profile empty")
	}
	// A hybrid run on Si128 should sit clearly above plain DFT.
	if jp.NodeTotal.HighMode.X < 1000 {
		t.Fatalf("HSE mode %v too low", jp.NodeTotal.HighMode.X)
	}
}

// TestControlPlaneRoundTrip drives power limits through the nvsmi
// interface and observes the effect in the recorded traces.
func TestControlPlaneRoundTrip(t *testing.T) {
	bench, _ := workloads.ByName("B.hR105_hse")
	cfgM, err := bench.Config(platform.Platform{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := method.Build(cfgM)
	if err != nil {
		t.Fatal(err)
	}
	n := node.New("nid000001", platform.Default(), nil)
	smi := nvsmi.New()
	if err := smi.Register(n); err != nil {
		t.Fatal(err)
	}
	if err := smi.SetPowerLimit("nid000001", nvsmi.AllGPUs, 250); err != nil {
		t.Fatal(err)
	}
	_, err = solver.Run(solver.Job{
		Name: "ctl", Schedule: sched, Nodes: []*node.Node{n},
		Decomp: cfgM.Decomp, Fabric: interconnect.Slingshot(),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n.NumGPUs(); i++ {
		if max := n.GPUTrace(i).MaxPower(); max > 250.01 {
			t.Fatalf("gpu %d exceeded the nvsmi-set cap: %v", i, max)
		}
	}
	info, err := smi.Query("nid000001")
	if err != nil {
		t.Fatal(err)
	}
	if info[0].PowerLimitW != 250 {
		t.Fatal("query does not reflect the set limit")
	}
}

// TestDecompositionConsistency: the same benchmark decomposed at
// different KPAR values does the same physical work — runtimes vary,
// but the number of SCF iterations (density all-reduces) must not.
func TestDecompositionConsistency(t *testing.T) {
	bench, _ := workloads.ByName("GaAsBi-64")
	count := func(kpar int) int {
		b := bench
		b.KPar = kpar
		cfg, err := b.Config(platform.Platform{}, 1)
		if err != nil {
			t.Fatal(err)
		}
		sched, err := method.Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for _, st := range sched.Steps {
			if st.Kind == method.StepComm && strings.Contains(st.Label, "density") {
				n++
			}
		}
		return n
	}
	if a, b := count(1), count(2); a != b {
		t.Fatalf("density all-reduces differ across KPAR: %d vs %d", a, b)
	}
	// And the decomposition math holds: ranks per group × groups = ranks.
	d, err := parallel.Decompose(bench.NBands, bench.KPoints.Reduced(), 2, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d.RanksPerGroup*d.KPar != d.Ranks {
		t.Fatalf("decomposition inconsistent: %+v", d)
	}
}

// TestMILCAndVASPShareTheStack: the MILC workload runs through the
// identical solver/telemetry stack and lands in its own power band.
func TestMILCAndVASPShareTheStack(t *testing.T) {
	milc, err := workloads.RunMILC(workloads.MILCRunSpec{
		Spec: workloads.DefaultMILC(), Nodes: 1, Repeats: 1, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	vasp, err := workloads.Run(workloads.RunSpec{
		Bench: mustBench(t, "B.hR105_hse"), Nodes: 1, Repeats: 1, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	milcSeries := milc.Nodes[0].GPUTrace(0).Sample(2).Slice(milc.VASPStart, milc.VASPEnd)
	vaspSeries := vasp.Nodes[0].GPUTrace(0).Sample(2).Slice(vasp.VASPStart, vasp.VASPEnd)
	mMode, ok1 := stats.HighPowerModeOf(milcSeries.Values)
	vMode, ok2 := stats.HighPowerModeOf(vaspSeries.Values)
	if !ok1 || !ok2 {
		t.Fatal("missing modes")
	}
	// Distinct applications, distinct signatures.
	if math.Abs(mMode.X-vMode.X) < 20 {
		t.Fatalf("MILC (%v W) and HSE-VASP (%v W) indistinguishable", mMode.X, vMode.X)
	}
}

func mustBench(t *testing.T, name string) workloads.Benchmark {
	t.Helper()
	b, ok := workloads.ByName(name)
	if !ok {
		t.Fatalf("benchmark %s missing", name)
	}
	return b
}
