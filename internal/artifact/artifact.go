// Package artifact exports experiment results as CSV files — the
// equivalent of the paper's artifact-description bundle ("the data
// and scripts used to generate the figures", §VIII/Zenodo). Every
// figure's underlying numbers can be written to disk for independent
// replotting.
package artifact

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Table is one exportable dataset.
type Table struct {
	// Name becomes the file name (sanitized, .csv appended).
	Name   string
	Header []string
	Rows   [][]string
}

// Validate checks structural consistency.
func (t Table) Validate() error {
	if t.Name == "" {
		return fmt.Errorf("artifact: table with empty name")
	}
	if len(t.Header) == 0 {
		return fmt.Errorf("artifact: table %q has no header", t.Name)
	}
	for i, row := range t.Rows {
		if len(row) != len(t.Header) {
			return fmt.Errorf("artifact: table %q row %d has %d cells, header has %d",
				t.Name, i, len(row), len(t.Header))
		}
	}
	return nil
}

// fileName sanitizes the table name into a CSV file name.
func (t Table) fileName() string {
	name := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
			return r
		default:
			return '_'
		}
	}, t.Name)
	return name + ".csv"
}

// Write writes each table as <dir>/<name>.csv, creating dir if
// needed. It returns the written paths.
func Write(dir string, tables ...Table) ([]string, error) {
	if dir == "" {
		return nil, fmt.Errorf("artifact: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("artifact: %w", err)
	}
	var paths []string
	for _, t := range tables {
		if err := t.Validate(); err != nil {
			return paths, err
		}
		path := filepath.Join(dir, t.fileName())
		f, err := os.Create(path)
		if err != nil {
			return paths, fmt.Errorf("artifact: %w", err)
		}
		w := csv.NewWriter(f)
		if err := w.Write(t.Header); err != nil {
			f.Close()
			return paths, fmt.Errorf("artifact: %q: %w", t.Name, err)
		}
		if err := w.WriteAll(t.Rows); err != nil {
			f.Close()
			return paths, fmt.Errorf("artifact: %q: %w", t.Name, err)
		}
		w.Flush()
		if err := w.Error(); err != nil {
			f.Close()
			return paths, fmt.Errorf("artifact: %q: %w", t.Name, err)
		}
		if err := f.Close(); err != nil {
			return paths, fmt.Errorf("artifact: %q: %w", t.Name, err)
		}
		paths = append(paths, path)
	}
	return paths, nil
}

// F formats a float for CSV output.
func F(v float64) string { return fmt.Sprintf("%g", v) }

// I formats an int for CSV output.
func I(v int) string { return fmt.Sprintf("%d", v) }
