package artifact

import (
	"encoding/csv"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteAndReadBack(t *testing.T) {
	dir := t.TempDir()
	tab := Table{
		Name:   "fig5_modes",
		Header: []string{"benchmark", "nodes", "mode_w"},
		Rows: [][]string{
			{"Si256_hse", "1", "1855"},
			{"GaAsBi-64", "2", "753"},
		},
	}
	paths, err := Write(dir, tab)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 || filepath.Base(paths[0]) != "fig5_modes.csv" {
		t.Fatalf("paths = %v", paths)
	}
	f, err := os.Open(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	records, err := csv.NewReader(f).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 3 || records[0][0] != "benchmark" || records[2][2] != "753" {
		t.Fatalf("round trip wrong: %v", records)
	}
}

func TestWriteMultiple(t *testing.T) {
	dir := t.TempDir()
	a := Table{Name: "a", Header: []string{"x"}, Rows: [][]string{{"1"}}}
	b := Table{Name: "b", Header: []string{"y"}, Rows: nil}
	paths, err := Write(dir, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("paths = %v", paths)
	}
}

func TestNameSanitization(t *testing.T) {
	tab := Table{Name: "fig 5/modes (W)", Header: []string{"x"}}
	fn := tab.fileName()
	if strings.ContainsAny(fn, " /()") {
		t.Fatalf("unsanitized name %q", fn)
	}
	if !strings.HasSuffix(fn, ".csv") {
		t.Fatalf("missing extension: %q", fn)
	}
}

func TestValidate(t *testing.T) {
	bad := []Table{
		{Name: "", Header: []string{"x"}},
		{Name: "x", Header: nil},
		{Name: "x", Header: []string{"a", "b"}, Rows: [][]string{{"1"}}},
	}
	for i, tab := range bad {
		if err := tab.Validate(); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
	dir := t.TempDir()
	if _, err := Write(dir, bad[0]); err == nil {
		t.Fatal("invalid table written")
	}
}

func TestWriteEmptyDir(t *testing.T) {
	if _, err := Write(""); err == nil {
		t.Fatal("empty dir accepted")
	}
}

func TestWriteCreatesNestedDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "a", "b")
	tab := Table{Name: "t", Header: []string{"x"}}
	if _, err := Write(dir, tab); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "t.csv")); err != nil {
		t.Fatal(err)
	}
}

func TestFormatters(t *testing.T) {
	if F(1.5) != "1.5" || F(1855) != "1855" {
		t.Fatalf("F wrong: %q %q", F(1.5), F(1855))
	}
	if I(42) != "42" {
		t.Fatalf("I wrong: %q", I(42))
	}
}
