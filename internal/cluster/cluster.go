// Package cluster models a pool of GPU nodes of one platform with
// per-node manufacturing variability and a simple allocator. Node
// identity (the "nid######" name) deterministically seeds each node's
// variability, so any experiment that lands on the same nodes sees the
// same hardware — which is what lets the paper's DGEMM/STREAM burn-in
// protocol detect underperforming nodes.
package cluster

import (
	"fmt"
	"sort"

	"vasppower/internal/hw/node"
	"vasppower/internal/hw/platform"
	"vasppower/internal/interconnect"
	"vasppower/internal/rng"
)

// Cluster is a pool of GPU nodes plus the fabric connecting them.
type Cluster struct {
	Fabric interconnect.Fabric

	platform platform.Platform
	root     *rng.Stream
	nodes    map[string]*node.Node
	free     map[string]bool
	names    []string // sorted, for deterministic allocation order
}

// New builds a cluster of n GPU nodes of platform p seeded from seed.
// A zero p resolves to the default platform.
func New(p platform.Platform, n int, seed uint64) *Cluster {
	if n <= 0 {
		panic("cluster: non-positive node count")
	}
	p = platform.OrDefault(p)
	c := &Cluster{
		Fabric:   interconnect.Slingshot(),
		platform: p,
		root:     rng.New(seed),
		nodes:    make(map[string]*node.Node, n),
		free:     make(map[string]bool, n),
	}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("nid%06d", i+1)
		c.nodes[name] = node.New(name, c.platform, c.root.Split(name))
		c.free[name] = true
		c.names = append(c.names, name)
	}
	sort.Strings(c.names)
	return c
}

// Platform returns the platform the cluster's nodes are built from.
func (c *Cluster) Platform() platform.Platform { return c.platform }

// Size returns the total node count.
func (c *Cluster) Size() int { return len(c.nodes) }

// FreeCount returns the number of unallocated nodes.
func (c *Cluster) FreeCount() int {
	n := 0
	for _, f := range c.free {
		if f {
			n++
		}
	}
	return n
}

// Node returns the node with the given name, or nil.
func (c *Cluster) Node(name string) *node.Node { return c.nodes[name] }

// Names returns all node names in sorted order.
func (c *Cluster) Names() []string { return append([]string(nil), c.names...) }

// Allocate reserves k free nodes (lowest names first, like a packed
// scheduler) and returns them. It returns an error when fewer than k
// nodes are free.
func (c *Cluster) Allocate(k int) ([]*node.Node, error) {
	if k <= 0 {
		return nil, fmt.Errorf("cluster: invalid allocation size %d", k)
	}
	var picked []*node.Node
	for _, name := range c.names {
		if c.free[name] {
			picked = append(picked, c.nodes[name])
			if len(picked) == k {
				break
			}
		}
	}
	if len(picked) < k {
		return nil, fmt.Errorf("cluster: %d nodes requested, %d free", k, len(picked))
	}
	for _, n := range picked {
		c.free[n.Name] = false
	}
	return picked, nil
}

// Release returns nodes to the free pool, resetting their traces and
// power limits (as the batch epilog would).
func (c *Cluster) Release(nodes []*node.Node) {
	for _, n := range nodes {
		if _, ok := c.nodes[n.Name]; !ok {
			panic(fmt.Sprintf("cluster: releasing foreign node %q", n.Name))
		}
		n.ResetTraces()
		n.ResetGPUPowerLimits()
		c.free[n.Name] = true
	}
}

// TotalTDP returns the aggregate node TDP of the cluster, the number a
// facility compares against its power budget.
func (c *Cluster) TotalTDP() float64 {
	return float64(len(c.nodes)) * c.platform.Node.TDP
}

// TotalIdlePower returns the sum of per-node idle power.
func (c *Cluster) TotalIdlePower() float64 {
	var p float64
	for _, n := range c.nodes {
		p += n.IdlePower()
	}
	return p
}
