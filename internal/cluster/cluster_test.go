package cluster

import (
	"testing"

	"vasppower/internal/hw/platform"
)

func TestAllocateAndRelease(t *testing.T) {
	c := New(platform.Platform{}, 8, 1)
	if c.Size() != 8 || c.FreeCount() != 8 {
		t.Fatalf("size/free = %d/%d", c.Size(), c.FreeCount())
	}
	nodes, err := c.Allocate(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 4 || c.FreeCount() != 4 {
		t.Fatalf("allocation wrong: %d nodes, %d free", len(nodes), c.FreeCount())
	}
	// Deterministic packed order.
	if nodes[0].Name != "nid000001" || nodes[3].Name != "nid000004" {
		t.Fatalf("allocation order wrong: %s..%s", nodes[0].Name, nodes[3].Name)
	}
	c.Release(nodes)
	if c.FreeCount() != 8 {
		t.Fatal("release did not free nodes")
	}
}

func TestAllocateTooMany(t *testing.T) {
	c := New(platform.Platform{}, 2, 1)
	if _, err := c.Allocate(3); err == nil {
		t.Fatal("over-allocation accepted")
	}
	if c.FreeCount() != 2 {
		t.Fatal("failed allocation leaked reservations")
	}
	if _, err := c.Allocate(0); err == nil {
		t.Fatal("zero allocation accepted")
	}
}

func TestReleaseResetsState(t *testing.T) {
	c := New(platform.Platform{}, 2, 1)
	nodes, _ := c.Allocate(1)
	n := nodes[0]
	n.RecordIdle(10)
	_ = n.SetGPUPowerLimits(200)
	c.Release(nodes)
	if n.TraceDuration() != 0 {
		t.Fatal("release did not clear traces")
	}
	if n.GPUs[0].PowerLimit() != 400 {
		t.Fatal("release did not reset power limits")
	}
}

func TestNodeVariabilityStableAcrossClusters(t *testing.T) {
	a := New(platform.Platform{}, 4, 42)
	b := New(platform.Platform{}, 4, 42)
	for _, name := range a.Names() {
		if a.Node(name).IdlePower() != b.Node(name).IdlePower() {
			t.Fatalf("node %s differs across identically-seeded clusters", name)
		}
	}
	// Different nodes differ from each other.
	if a.Node("nid000001").IdlePower() == a.Node("nid000002").IdlePower() {
		t.Fatal("distinct nodes have identical idle power (no variability)")
	}
}

func TestTotalTDP(t *testing.T) {
	c := New(platform.Platform{}, 10, 1)
	if got := c.TotalTDP(); got != 23500 {
		t.Fatalf("TotalTDP = %v, want 23500", got)
	}
	idle := c.TotalIdlePower()
	if idle < 10*390 || idle > 10*530 {
		t.Fatalf("TotalIdlePower = %v implausible", idle)
	}
}

func TestReleaseForeignNodePanics(t *testing.T) {
	a := New(platform.Platform{}, 2, 1)
	b := New(platform.Platform{}, 2, 2)
	nodes, _ := b.Allocate(1)
	// Rename so it's not found in a.
	nodes[0].Name = "rogue"
	defer func() {
		if recover() == nil {
			t.Fatal("releasing a foreign node did not panic")
		}
	}()
	a.Release(nodes)
}
