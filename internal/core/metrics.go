package core

import (
	"fmt"
	"math"
)

// Energy/performance trade-off metrics (§VII cites Gonzalez &
// Horowitz's energy-delay product and Martin et al.'s ET² as the
// standard ways to weigh a cap's energy savings against its slowdown).

// Tradeoff is one (energy, runtime) operating point.
type Tradeoff struct {
	EnergyJ  float64
	RuntimeS float64
}

// Validate checks the point.
func (t Tradeoff) Validate() error {
	if t.EnergyJ <= 0 || t.RuntimeS <= 0 {
		return fmt.Errorf("core: degenerate trade-off point %+v", t)
	}
	return nil
}

// EDP returns the energy-delay product (J·s).
func (t Tradeoff) EDP() float64 { return t.EnergyJ * t.RuntimeS }

// ET2 returns Martin's voltage-independent metric E·T² (J·s²).
func (t Tradeoff) ET2() float64 { return t.EnergyJ * t.RuntimeS * t.RuntimeS }

// TradeoffOf extracts the point from a measured profile.
func TradeoffOf(jp JobProfile) Tradeoff {
	return Tradeoff{EnergyJ: jp.EnergyJ, RuntimeS: jp.Runtime}
}

// BestCapByEDP returns the index of the cap point minimizing EDP in a
// cap response (an energy-aware operator's pick), or an error when the
// response is empty or degenerate.
func BestCapByEDP(cr CapResponse) (int, error) {
	if len(cr.Points) == 0 {
		return 0, fmt.Errorf("core: empty cap response")
	}
	best, bestEDP := -1, math.Inf(1)
	for i, p := range cr.Points {
		t := Tradeoff{EnergyJ: p.EnergyJ, RuntimeS: p.Runtime}
		if t.Validate() != nil {
			continue
		}
		if edp := t.EDP(); edp < bestEDP {
			best, bestEDP = i, edp
		}
	}
	if best < 0 {
		return 0, fmt.Errorf("core: no valid points in cap response")
	}
	return best, nil
}
