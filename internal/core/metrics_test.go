package core

import (
	"testing"

	"vasppower/internal/workloads"
)

func TestTradeoffMetrics(t *testing.T) {
	p := Tradeoff{EnergyJ: 100, RuntimeS: 10}
	if p.EDP() != 1000 {
		t.Fatalf("EDP = %v", p.EDP())
	}
	if p.ET2() != 10000 {
		t.Fatalf("ET2 = %v", p.ET2())
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Tradeoff{}).Validate(); err == nil {
		t.Fatal("degenerate point accepted")
	}
}

func TestBestCapByEDP(t *testing.T) {
	// A cap that saves real energy at mild slowdown should beat the
	// uncapped point on EDP for a heavy workload.
	b, _ := workloads.ByName("B.hR105_hse")
	cr, err := MeasureCapResponse(MeasureSpec{Bench: b, Nodes: 1, Repeats: 1, Seed: 11}, []float64{400, 300, 200})
	if err != nil {
		t.Fatal(err)
	}
	idx, err := BestCapByEDP(cr)
	if err != nil {
		t.Fatal(err)
	}
	if cr.Points[idx].CapW >= 400 {
		t.Fatalf("EDP-optimal cap is the default (%v W); capping should win on EDP", cr.Points[idx].CapW)
	}
	if _, err := BestCapByEDP(CapResponse{}); err == nil {
		t.Fatal("empty response accepted")
	}
}

func TestTradeoffOf(t *testing.T) {
	b, _ := workloads.ByName("B.hR105_hse")
	jp, err := Measure(MeasureSpec{Bench: b, Nodes: 1, Repeats: 1, CapW: 0, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	tr := TradeoffOf(jp)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.RuntimeS != jp.Runtime || tr.EnergyJ != jp.EnergyJ {
		t.Fatal("trade-off point does not match profile")
	}
}
