// Package core implements the paper's central contribution as a
// reusable pipeline: run a workload, sample its power telemetry,
// characterize the distribution (high power mode + FWHM, the paper's
// preferred metrics over mean/max, §III-B.3), and assess the
// performance/power response to GPU power caps (§V).
package core

import (
	"fmt"
	"math"

	"vasppower/internal/hw/node"
	"vasppower/internal/stats"
	"vasppower/internal/timeseries"
	"vasppower/internal/workloads"
)

// DefaultSamplingInterval is the effective telemetry interval of the
// paper's LDMS pipeline (nominal 1 s, effective 2 s after drops).
const DefaultSamplingInterval = 2.0

// Profile characterizes one power signal.
type Profile struct {
	Series   timeseries.Series
	Summary  stats.Summary
	Modes    []stats.Mode // all modes, low → high power
	HighMode stats.Mode   // the paper's "high power mode"
	HasMode  bool
}

// ProfileSeries builds a Profile from a sampled series.
func ProfileSeries(s timeseries.Series) Profile {
	p := Profile{Series: s}
	if s.Len() == 0 {
		return p
	}
	p.Summary, _ = stats.Describe(s.Values)
	k := stats.NewKDE(s.Values, 0, 512)
	p.Modes = k.Modes(stats.DefaultModeThreshold)
	if len(p.Modes) > 0 {
		p.HighMode = p.Modes[len(p.Modes)-1]
		p.HasMode = true
	}
	return p
}

// JobProfile holds per-component profiles of one executed job window.
type JobProfile struct {
	Name             string
	SamplingInterval float64
	Runtime          float64
	EnergyJ          float64

	NodeTotal Profile // node-level sensor (components + peripherals)
	CPU       Profile
	Mem       Profile
	GPUs      [node.GPUsPerNode]Profile
	GPUSum    Profile // four GPUs combined
}

// GPUShareOfNode returns the fraction of mean node power drawn by the
// four GPUs (the paper reports >70% for the heavy benchmarks).
func (jp JobProfile) GPUShareOfNode() float64 {
	if jp.NodeTotal.Summary.Mean == 0 {
		return 0
	}
	return jp.GPUSum.Summary.Mean / jp.NodeTotal.Summary.Mean
}

// CPUMemShareOfNode returns the CPU+memory fraction of mean node
// power (<10% for the heavy benchmarks, §III-C).
func (jp JobProfile) CPUMemShareOfNode() float64 {
	if jp.NodeTotal.Summary.Mean == 0 {
		return 0
	}
	return (jp.CPU.Summary.Mean + jp.Mem.Summary.Mean) / jp.NodeTotal.Summary.Mean
}

// ProfileWindow profiles one node's traces over [start, end] at the
// given sampling interval.
func ProfileWindow(n *node.Node, start, end, interval float64) JobProfile {
	jp := JobProfile{Name: n.Name, SamplingInterval: interval, Runtime: end - start}
	sample := func(tr *timeseries.Trace) Profile {
		s := tr.Sample(interval)
		return ProfileSeries(s.Slice(start, end))
	}
	jp.NodeTotal = ProfileSeries(n.TotalTrace().Sample(interval).Slice(start, end))
	jp.CPU = sample(n.CPUTrace())
	jp.Mem = sample(n.MemTrace())
	for i := 0; i < node.GPUsPerNode; i++ {
		jp.GPUs[i] = sample(n.GPUTrace(i))
	}
	jp.GPUSum = ProfileSeries(n.GPUSumTrace().Sample(interval).Slice(start, end))
	jp.EnergyJ = n.TotalTrace().EnergyBetween(start, end)
	return jp
}

// ProfileRun profiles the selected VASP repeat of a measurement run
// (node 0's view, as the benchmarks are node-balanced).
func ProfileRun(out workloads.RunOutput, interval float64) JobProfile {
	if len(out.Nodes) == 0 {
		return JobProfile{}
	}
	jp := ProfileWindow(out.Nodes[0], out.VASPStart, out.VASPEnd, interval)
	jp.Runtime = out.BestResult.Runtime
	// Aggregate energy across all nodes for energy-to-solution.
	jp.EnergyJ = 0
	for _, n := range out.Nodes {
		jp.EnergyJ += n.TotalTrace().EnergyBetween(out.VASPStart, out.VASPEnd)
	}
	return jp
}

// MeasureBenchmark runs a benchmark with the paper's protocol and
// returns its profile.
func MeasureBenchmark(b workloads.Benchmark, nodes, repeats int, capW float64, seed uint64) (JobProfile, error) {
	out, err := workloads.Run(workloads.RunSpec{
		Bench:         b,
		Nodes:         nodes,
		GPUPowerLimit: capW,
		Repeats:       repeats,
		Seed:          seed,
	})
	if err != nil {
		return JobProfile{}, err
	}
	jp := ProfileRun(out, DefaultSamplingInterval)
	jp.Name = b.Name
	return jp, nil
}

// CapPoint is one power-cap measurement.
type CapPoint struct {
	CapW        float64
	Runtime     float64
	RelPerf     float64 // runtime(default) / runtime(cap), ≤ 1 under caps
	GPUHighMode float64 // high power mode per GPU, W
	ModeOverCap float64 // high power mode as a fraction of the cap (Fig. 10)
	EnergyJ     float64
}

// CapResponse is a benchmark's response across caps (Figs. 10, 12).
type CapResponse struct {
	Bench    string
	Nodes    int
	Baseline float64 // runtime at the default 400 W limit
	Points   []CapPoint
}

// MeasureCapResponse runs the benchmark under each cap (0 or 400 =
// default first) and returns the response.
func MeasureCapResponse(b workloads.Benchmark, nodes int, caps []float64, repeats int, seed uint64) (CapResponse, error) {
	cr := CapResponse{Bench: b.Name, Nodes: nodes}
	base, err := MeasureBenchmark(b, nodes, repeats, 0, seed)
	if err != nil {
		return cr, err
	}
	cr.Baseline = base.Runtime
	for _, cap := range caps {
		jp := base
		if cap > 0 && cap < 400 {
			jp, err = MeasureBenchmark(b, nodes, repeats, cap, seed)
			if err != nil {
				return cr, err
			}
		}
		pt := CapPoint{
			CapW:    cap,
			Runtime: jp.Runtime,
			RelPerf: cr.Baseline / jp.Runtime,
			EnergyJ: jp.EnergyJ,
		}
		if cap <= 0 {
			pt.CapW = 400
		}
		// Per-GPU high power mode: average over the four devices.
		var sum float64
		cnt := 0
		for _, g := range jp.GPUs {
			if g.HasMode {
				sum += g.HighMode.X
				cnt++
			}
		}
		if cnt > 0 {
			pt.GPUHighMode = sum / float64(cnt)
			pt.ModeOverCap = pt.GPUHighMode / pt.CapW
		}
		cr.Points = append(cr.Points, pt)
	}
	return cr, nil
}

// SlowdownAt returns the fractional slowdown (runtime increase) at the
// given cap, or an error if the cap was not measured.
func (cr CapResponse) SlowdownAt(capW float64) (float64, error) {
	for _, p := range cr.Points {
		if math.Abs(p.CapW-capW) < 1e-9 {
			return p.Runtime/cr.Baseline - 1, nil
		}
	}
	return 0, fmt.Errorf("core: cap %v W not measured for %s", capW, cr.Bench)
}
