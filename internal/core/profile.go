// Package core implements the paper's central contribution as a
// reusable pipeline: run a workload, sample its power telemetry,
// characterize the distribution (high power mode + FWHM, the paper's
// preferred metrics over mean/max, §III-B.3), and assess the
// performance/power response to GPU power caps (§V).
package core

import (
	"context"
	"fmt"
	"math"

	"vasppower/internal/hw/node"
	"vasppower/internal/hw/platform"
	"vasppower/internal/par"
	"vasppower/internal/stats"
	"vasppower/internal/timeseries"
	"vasppower/internal/workloads"
)

// DefaultSamplingInterval is the effective telemetry interval of the
// paper's LDMS pipeline (nominal 1 s, effective 2 s after drops).
const DefaultSamplingInterval = 2.0

// Profile characterizes one power signal.
type Profile struct {
	Series   timeseries.Series
	Summary  stats.Summary
	Modes    []stats.Mode // all modes, low → high power
	HighMode stats.Mode   // the paper's "high power mode"
	HasMode  bool
}

// ProfileSeries builds a Profile from a sampled series.
func ProfileSeries(s timeseries.Series) Profile {
	p := Profile{Series: s}
	if s.Len() == 0 {
		return p
	}
	p.Summary, _ = stats.Describe(s.Values)
	k := stats.NewKDE(s.Values, 0, 512)
	p.Modes = k.Modes(stats.DefaultModeThreshold)
	if len(p.Modes) > 0 {
		p.HighMode = p.Modes[len(p.Modes)-1]
		p.HasMode = true
	}
	return p
}

// JobProfile holds per-component profiles of one executed job window.
type JobProfile struct {
	Name             string
	SamplingInterval float64
	Runtime          float64
	EnergyJ          float64

	NodeTotal Profile // node-level sensor (components + peripherals)
	CPU       Profile
	Mem       Profile
	GPUs      []Profile // one per device on the node
	GPUSum    Profile   // all GPUs combined
}

// GPUShareOfNode returns the fraction of mean node power drawn by the
// GPUs (the paper reports >70% for the heavy benchmarks).
func (jp JobProfile) GPUShareOfNode() float64 {
	if jp.NodeTotal.Summary.Mean == 0 {
		return 0
	}
	return jp.GPUSum.Summary.Mean / jp.NodeTotal.Summary.Mean
}

// CPUMemShareOfNode returns the CPU+memory fraction of mean node
// power (<10% for the heavy benchmarks, §III-C).
func (jp JobProfile) CPUMemShareOfNode() float64 {
	if jp.NodeTotal.Summary.Mean == 0 {
		return 0
	}
	return (jp.CPU.Summary.Mean + jp.Mem.Summary.Mean) / jp.NodeTotal.Summary.Mean
}

// ProfileWindow profiles one node's traces over [start, end] at the
// given sampling interval.
func ProfileWindow(n *node.Node, start, end, interval float64) JobProfile {
	jp := JobProfile{Name: n.Name, SamplingInterval: interval, Runtime: end - start}
	sample := func(tr *timeseries.Trace) Profile {
		s := tr.Sample(interval)
		return ProfileSeries(s.Slice(start, end))
	}
	jp.NodeTotal = ProfileSeries(n.TotalTrace().Sample(interval).Slice(start, end))
	jp.CPU = sample(n.CPUTrace())
	jp.Mem = sample(n.MemTrace())
	jp.GPUs = make([]Profile, n.NumGPUs())
	for i := 0; i < n.NumGPUs(); i++ {
		jp.GPUs[i] = sample(n.GPUTrace(i))
	}
	jp.GPUSum = ProfileSeries(n.GPUSumTrace().Sample(interval).Slice(start, end))
	jp.EnergyJ = n.TotalTrace().EnergyBetween(start, end)
	return jp
}

// ProfileRun profiles the selected VASP repeat of a measurement run
// (node 0's view, as the benchmarks are node-balanced).
func ProfileRun(out workloads.RunOutput, interval float64) JobProfile {
	if len(out.Nodes) == 0 {
		return JobProfile{}
	}
	jp := ProfileWindow(out.Nodes[0], out.VASPStart, out.VASPEnd, interval)
	jp.Runtime = out.BestResult.Runtime
	// Aggregate energy across all nodes for energy-to-solution.
	jp.EnergyJ = 0
	for _, n := range out.Nodes {
		jp.EnergyJ += n.TotalTrace().EnergyBetween(out.VASPStart, out.VASPEnd)
	}
	return jp
}

// MeasureSpec configures one measurement: which benchmark, on which
// platform, at what scale, under which GPU power cap. It is the single
// entry point's options struct; zero fields take the paper's protocol
// defaults (default platform, 1 node, 1 repeat, uncapped, serial).
type MeasureSpec struct {
	Bench    workloads.Benchmark
	Platform platform.Platform // zero = default platform
	Nodes    int               // 0 = 1
	Repeats  int               // 0 = 1; best (min-runtime) repeat is profiled
	CapW     float64           // GPU power cap, W; <= 0 or >= GPU TDP = uncapped
	Seed     uint64
	// Workers fans the repeat loop out over goroutines (0 = one per
	// CPU, 1 = serial). The profile is identical for every worker
	// count: each repeat draws from its own seed-split noise stream and
	// the minimum-runtime repeat is selected by index.
	Workers int
	// Entropy stamps every GPU kernel in the schedule with this operand
	// entropy in [0,1]; 0 leaves kernels at the platform table's
	// reference (no power shift).
	Entropy float64
}

func (spec MeasureSpec) withDefaults() MeasureSpec {
	spec.Platform = platform.OrDefault(spec.Platform)
	if spec.Nodes <= 0 {
		spec.Nodes = 1
	}
	if spec.Repeats <= 0 {
		spec.Repeats = 1
	}
	if spec.Workers == 0 {
		spec.Workers = 1
	}
	// Non-binding caps normalize to the uncapped default: on the real
	// machine the TDP is the default limit, so CapW 0, TDP, and
	// anything above it are one measurement (and one cache identity —
	// experiments.SpecKey applies the same rule).
	if spec.CapW <= 0 || spec.CapW >= spec.Platform.GPU.TDP {
		spec.CapW = 0
	}
	return spec
}

// Measure runs a benchmark with the paper's protocol (prelude burn-in,
// repeats, min-runtime selection) and returns its profile.
func Measure(spec MeasureSpec) (JobProfile, error) {
	spec = spec.withDefaults()
	out, err := workloads.Run(workloads.RunSpec{
		Bench:          spec.Bench,
		Platform:       spec.Platform,
		Nodes:          spec.Nodes,
		GPUPowerLimit:  spec.CapW,
		Repeats:        spec.Repeats,
		Seed:           spec.Seed,
		Workers:        spec.Workers,
		OperandEntropy: spec.Entropy,
	})
	if err != nil {
		return JobProfile{}, err
	}
	jp := ProfileRun(out, DefaultSamplingInterval)
	jp.Name = spec.Bench.Name
	return jp, nil
}

// CapPoint is one power-cap measurement.
type CapPoint struct {
	CapW        float64
	Runtime     float64
	RelPerf     float64 // runtime(default) / runtime(cap), ≤ 1 under caps
	GPUHighMode float64 // high power mode per GPU, W
	ModeOverCap float64 // high power mode as a fraction of the cap (Fig. 10)
	EnergyJ     float64
}

// CapResponse is a benchmark's response across caps (Figs. 10, 12).
type CapResponse struct {
	Bench    string
	Nodes    int
	Baseline float64 // runtime at the default (TDP) limit
	Points   []CapPoint
}

// MeasureCapResponse measures the uncapped baseline and every
// effective cap (below the platform GPU's TDP) and assembles the
// response in cap order (spec.CapW is ignored; the caps argument
// drives the sweep). The needed points are sharded across up to
// spec.Workers sweep contexts, each of which resolves the schedule
// once and re-runs only the cap solver per point; every point is
// bit-identical to an independent run at the same seed (the retained
// oracle, pinned by the differential tests), so the response is
// identical for every worker count. Caps of 0 or ≥ TDP reuse the
// baseline measurement, as on the real machine where the TDP is the
// default limit.
func MeasureCapResponse(spec MeasureSpec, caps []float64) (CapResponse, error) {
	spec = spec.withDefaults()
	tdp := spec.Platform.GPU.TDP
	cr := CapResponse{Bench: spec.Bench.Name, Nodes: spec.Nodes}
	// Slot 0 is the uncapped baseline; slot i+1 is caps[i], measured
	// only when the cap actually binds.
	profiles := make([]JobProfile, len(caps)+1)
	need := make([]bool, len(caps)+1)
	need[0] = true
	for i, cap := range caps {
		if cap > 0 && cap < tdp {
			need[i+1] = true
		}
	}
	var idxs []int
	for i, n := range need {
		if n {
			idxs = append(idxs, i)
		}
	}
	workers := spec.Workers
	if workers <= 0 || workers > len(idxs) {
		workers = len(idxs)
	}
	err := par.ForEach(context.Background(), par.Workers(workers), workers,
		func(_ context.Context, shard int) error {
			sctx := NewSweepContext(spec)
			defer sctx.Close()
			for j := shard; j < len(idxs); j += workers {
				i := idxs[j]
				capW := 0.0
				if i > 0 {
					capW = caps[i-1]
				}
				jp, err := sctx.MeasureCap(capW)
				if err != nil {
					return err
				}
				profiles[i] = jp
			}
			return nil
		})
	if err != nil {
		return cr, err
	}
	base := profiles[0]
	cr.Baseline = base.Runtime
	for i, cap := range caps {
		jp := base
		if need[i+1] {
			jp = profiles[i+1]
		}
		pt := CapPoint{
			CapW:    cap,
			Runtime: jp.Runtime,
			RelPerf: cr.Baseline / jp.Runtime,
			EnergyJ: jp.EnergyJ,
		}
		if cap <= 0 {
			pt.CapW = tdp
		}
		// Per-GPU high power mode: average over the node's devices.
		var sum float64
		cnt := 0
		for _, g := range jp.GPUs {
			if g.HasMode {
				sum += g.HighMode.X
				cnt++
			}
		}
		if cnt > 0 {
			pt.GPUHighMode = sum / float64(cnt)
			pt.ModeOverCap = pt.GPUHighMode / pt.CapW
		}
		cr.Points = append(cr.Points, pt)
	}
	return cr, nil
}

// SlowdownAt returns the fractional slowdown (runtime increase) at the
// given cap, or an error if the cap was not measured.
func (cr CapResponse) SlowdownAt(capW float64) (float64, error) {
	for _, p := range cr.Points {
		if math.Abs(p.CapW-capW) < 1e-9 {
			return p.Runtime/cr.Baseline - 1, nil
		}
	}
	return 0, fmt.Errorf("core: cap %v W not measured for %s", capW, cr.Bench)
}
