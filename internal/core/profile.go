// Package core implements the paper's central contribution as a
// reusable pipeline: run a workload, sample its power telemetry,
// characterize the distribution (high power mode + FWHM, the paper's
// preferred metrics over mean/max, §III-B.3), and assess the
// performance/power response to GPU power caps (§V).
package core

import (
	"context"
	"fmt"
	"math"

	"vasppower/internal/hw/node"
	"vasppower/internal/par"
	"vasppower/internal/stats"
	"vasppower/internal/timeseries"
	"vasppower/internal/workloads"
)

// DefaultSamplingInterval is the effective telemetry interval of the
// paper's LDMS pipeline (nominal 1 s, effective 2 s after drops).
const DefaultSamplingInterval = 2.0

// Profile characterizes one power signal.
type Profile struct {
	Series   timeseries.Series
	Summary  stats.Summary
	Modes    []stats.Mode // all modes, low → high power
	HighMode stats.Mode   // the paper's "high power mode"
	HasMode  bool
}

// ProfileSeries builds a Profile from a sampled series.
func ProfileSeries(s timeseries.Series) Profile {
	p := Profile{Series: s}
	if s.Len() == 0 {
		return p
	}
	p.Summary, _ = stats.Describe(s.Values)
	k := stats.NewKDE(s.Values, 0, 512)
	p.Modes = k.Modes(stats.DefaultModeThreshold)
	if len(p.Modes) > 0 {
		p.HighMode = p.Modes[len(p.Modes)-1]
		p.HasMode = true
	}
	return p
}

// JobProfile holds per-component profiles of one executed job window.
type JobProfile struct {
	Name             string
	SamplingInterval float64
	Runtime          float64
	EnergyJ          float64

	NodeTotal Profile // node-level sensor (components + peripherals)
	CPU       Profile
	Mem       Profile
	GPUs      [node.GPUsPerNode]Profile
	GPUSum    Profile // four GPUs combined
}

// GPUShareOfNode returns the fraction of mean node power drawn by the
// four GPUs (the paper reports >70% for the heavy benchmarks).
func (jp JobProfile) GPUShareOfNode() float64 {
	if jp.NodeTotal.Summary.Mean == 0 {
		return 0
	}
	return jp.GPUSum.Summary.Mean / jp.NodeTotal.Summary.Mean
}

// CPUMemShareOfNode returns the CPU+memory fraction of mean node
// power (<10% for the heavy benchmarks, §III-C).
func (jp JobProfile) CPUMemShareOfNode() float64 {
	if jp.NodeTotal.Summary.Mean == 0 {
		return 0
	}
	return (jp.CPU.Summary.Mean + jp.Mem.Summary.Mean) / jp.NodeTotal.Summary.Mean
}

// ProfileWindow profiles one node's traces over [start, end] at the
// given sampling interval.
func ProfileWindow(n *node.Node, start, end, interval float64) JobProfile {
	jp := JobProfile{Name: n.Name, SamplingInterval: interval, Runtime: end - start}
	sample := func(tr *timeseries.Trace) Profile {
		s := tr.Sample(interval)
		return ProfileSeries(s.Slice(start, end))
	}
	jp.NodeTotal = ProfileSeries(n.TotalTrace().Sample(interval).Slice(start, end))
	jp.CPU = sample(n.CPUTrace())
	jp.Mem = sample(n.MemTrace())
	for i := 0; i < node.GPUsPerNode; i++ {
		jp.GPUs[i] = sample(n.GPUTrace(i))
	}
	jp.GPUSum = ProfileSeries(n.GPUSumTrace().Sample(interval).Slice(start, end))
	jp.EnergyJ = n.TotalTrace().EnergyBetween(start, end)
	return jp
}

// ProfileRun profiles the selected VASP repeat of a measurement run
// (node 0's view, as the benchmarks are node-balanced).
func ProfileRun(out workloads.RunOutput, interval float64) JobProfile {
	if len(out.Nodes) == 0 {
		return JobProfile{}
	}
	jp := ProfileWindow(out.Nodes[0], out.VASPStart, out.VASPEnd, interval)
	jp.Runtime = out.BestResult.Runtime
	// Aggregate energy across all nodes for energy-to-solution.
	jp.EnergyJ = 0
	for _, n := range out.Nodes {
		jp.EnergyJ += n.TotalTrace().EnergyBetween(out.VASPStart, out.VASPEnd)
	}
	return jp
}

// MeasureBenchmark runs a benchmark with the paper's protocol and
// returns its profile. Repeats run serially; use
// MeasureBenchmarkWorkers to fan them out.
func MeasureBenchmark(b workloads.Benchmark, nodes, repeats int, capW float64, seed uint64) (JobProfile, error) {
	return MeasureBenchmarkWorkers(b, nodes, repeats, capW, seed, 1)
}

// MeasureBenchmarkWorkers is MeasureBenchmark with the repeat loop fanned
// out over `workers` goroutines (0 = one per CPU, 1 = serial). The
// profile is identical for every worker count: each repeat draws from
// its own seed-split noise stream and the minimum-runtime repeat is
// selected by index.
func MeasureBenchmarkWorkers(b workloads.Benchmark, nodes, repeats int, capW float64, seed uint64, workers int) (JobProfile, error) {
	out, err := workloads.Run(workloads.RunSpec{
		Bench:         b,
		Nodes:         nodes,
		GPUPowerLimit: capW,
		Repeats:       repeats,
		Seed:          seed,
		Workers:       workers,
	})
	if err != nil {
		return JobProfile{}, err
	}
	jp := ProfileRun(out, DefaultSamplingInterval)
	jp.Name = b.Name
	return jp, nil
}

// CapPoint is one power-cap measurement.
type CapPoint struct {
	CapW        float64
	Runtime     float64
	RelPerf     float64 // runtime(default) / runtime(cap), ≤ 1 under caps
	GPUHighMode float64 // high power mode per GPU, W
	ModeOverCap float64 // high power mode as a fraction of the cap (Fig. 10)
	EnergyJ     float64
}

// CapResponse is a benchmark's response across caps (Figs. 10, 12).
type CapResponse struct {
	Bench    string
	Nodes    int
	Baseline float64 // runtime at the default 400 W limit
	Points   []CapPoint
}

// MeasureCapResponse runs the benchmark under each cap (0 or 400 =
// default first) and returns the response. Measurements run serially;
// use MeasureCapResponseWorkers to fan the cap points out.
func MeasureCapResponse(b workloads.Benchmark, nodes int, caps []float64, repeats int, seed uint64) (CapResponse, error) {
	return MeasureCapResponseWorkers(b, nodes, caps, repeats, seed, 1)
}

// MeasureCapResponseWorkers measures the uncapped baseline and every
// effective cap (< 400 W) concurrently across `workers` goroutines
// (0 = one per CPU, 1 = serial) and assembles the response in cap
// order. Each cap point is an independent run at the same seed, so the
// response is identical for every worker count. Caps of 0 or ≥ 400 W
// reuse the baseline measurement, as on the real machine where 400 W
// is the default limit.
func MeasureCapResponseWorkers(b workloads.Benchmark, nodes int, caps []float64, repeats int, seed uint64, workers int) (CapResponse, error) {
	cr := CapResponse{Bench: b.Name, Nodes: nodes}
	// Slot 0 is the uncapped baseline; slot i+1 is caps[i], measured
	// only when the cap actually binds.
	profiles := make([]JobProfile, len(caps)+1)
	need := make([]bool, len(caps)+1)
	need[0] = true
	for i, cap := range caps {
		if cap > 0 && cap < 400 {
			need[i+1] = true
		}
	}
	err := par.ForEach(context.Background(), par.Workers(workers), len(profiles),
		func(_ context.Context, i int) error {
			if !need[i] {
				return nil
			}
			capW := 0.0
			if i > 0 {
				capW = caps[i-1]
			}
			jp, err := MeasureBenchmark(b, nodes, repeats, capW, seed)
			if err != nil {
				return err
			}
			profiles[i] = jp
			return nil
		})
	if err != nil {
		return cr, err
	}
	base := profiles[0]
	cr.Baseline = base.Runtime
	for i, cap := range caps {
		jp := base
		if need[i+1] {
			jp = profiles[i+1]
		}
		pt := CapPoint{
			CapW:    cap,
			Runtime: jp.Runtime,
			RelPerf: cr.Baseline / jp.Runtime,
			EnergyJ: jp.EnergyJ,
		}
		if cap <= 0 {
			pt.CapW = 400
		}
		// Per-GPU high power mode: average over the four devices.
		var sum float64
		cnt := 0
		for _, g := range jp.GPUs {
			if g.HasMode {
				sum += g.HighMode.X
				cnt++
			}
		}
		if cnt > 0 {
			pt.GPUHighMode = sum / float64(cnt)
			pt.ModeOverCap = pt.GPUHighMode / pt.CapW
		}
		cr.Points = append(cr.Points, pt)
	}
	return cr, nil
}

// SlowdownAt returns the fractional slowdown (runtime increase) at the
// given cap, or an error if the cap was not measured.
func (cr CapResponse) SlowdownAt(capW float64) (float64, error) {
	for _, p := range cr.Points {
		if math.Abs(p.CapW-capW) < 1e-9 {
			return p.Runtime/cr.Baseline - 1, nil
		}
	}
	return 0, fmt.Errorf("core: cap %v W not measured for %s", capW, cr.Bench)
}
