package core

import (
	"math"
	"testing"

	"vasppower/internal/timeseries"
	"vasppower/internal/workloads"
)

func TestProfileSeriesBasics(t *testing.T) {
	var s timeseries.Series
	for i := 1; i <= 500; i++ {
		s.Times = append(s.Times, float64(i)*2)
		v := 700.0
		if i%10 < 3 {
			v = 1500
		}
		s.Values = append(s.Values, v)
	}
	p := ProfileSeries(s)
	if !p.HasMode {
		t.Fatal("no mode found")
	}
	if math.Abs(p.HighMode.X-1500) > 30 {
		t.Fatalf("high mode at %v, want ≈ 1500", p.HighMode.X)
	}
	if len(p.Modes) < 2 {
		t.Fatal("bimodal series should yield two modes")
	}
	if p.Summary.N != 500 {
		t.Fatalf("summary N = %d", p.Summary.N)
	}
}

func TestProfileSeriesEmpty(t *testing.T) {
	p := ProfileSeries(timeseries.Series{})
	if p.HasMode || p.Summary.N != 0 {
		t.Fatal("empty profile should be empty")
	}
}

func TestMeasureBenchmarkProfile(t *testing.T) {
	b, _ := workloads.ByName("B.hR105_hse")
	jp, err := Measure(MeasureSpec{Bench: b, Nodes: 1, Repeats: 2, CapW: 0, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if jp.Runtime <= 0 || jp.EnergyJ <= 0 {
		t.Fatalf("degenerate profile: %+v", jp)
	}
	if !jp.NodeTotal.HasMode {
		t.Fatal("node profile has no mode")
	}
	// Energy ≈ mean node power × runtime (single node).
	approx := jp.NodeTotal.Summary.Mean * jp.Runtime
	if math.Abs(jp.EnergyJ-approx)/approx > 0.05 {
		t.Fatalf("energy %.0f J vs mean×time %.0f J", jp.EnergyJ, approx)
	}
	// Shares are sane fractions.
	if s := jp.GPUShareOfNode(); s <= 0.2 || s >= 1 {
		t.Fatalf("GPU share %v", s)
	}
	if s := jp.CPUMemShareOfNode(); s <= 0 || s >= 0.5 {
		t.Fatalf("CPU+mem share %v", s)
	}
}

func TestMeasureBenchmarkCapReducesMode(t *testing.T) {
	b, _ := workloads.ByName("B.hR105_hse")
	base, err := Measure(MeasureSpec{Bench: b, Nodes: 1, Repeats: 1, CapW: 0, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	capped, err := Measure(MeasureSpec{Bench: b, Nodes: 1, Repeats: 1, CapW: 200, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !capped.GPUs[0].HasMode || !base.GPUs[0].HasMode {
		t.Fatal("missing GPU modes")
	}
	if capped.GPUs[0].HighMode.X >= base.GPUs[0].HighMode.X {
		t.Fatalf("cap did not reduce GPU mode: %v vs %v",
			capped.GPUs[0].HighMode.X, base.GPUs[0].HighMode.X)
	}
	if capped.GPUs[0].HighMode.X > 200.01 {
		t.Fatalf("GPU mode %v exceeds 200 W cap", capped.GPUs[0].HighMode.X)
	}
}

func TestMeasureCapResponse(t *testing.T) {
	b, _ := workloads.ByName("B.hR105_hse")
	cr, err := MeasureCapResponse(MeasureSpec{Bench: b, Nodes: 1, Repeats: 1, Seed: 7}, []float64{400, 300, 200})
	if err != nil {
		t.Fatal(err)
	}
	if len(cr.Points) != 3 {
		t.Fatalf("points = %d", len(cr.Points))
	}
	if cr.Points[0].RelPerf != 1 {
		t.Fatalf("uncapped RelPerf = %v", cr.Points[0].RelPerf)
	}
	// Deeper caps never speed things up.
	for i := 1; i < len(cr.Points); i++ {
		if cr.Points[i].RelPerf > cr.Points[i-1].RelPerf+1e-9 {
			t.Fatal("RelPerf increased under a deeper cap")
		}
	}
	slow, err := cr.SlowdownAt(200)
	if err != nil {
		t.Fatal(err)
	}
	if slow < 0 {
		t.Fatalf("negative slowdown %v", slow)
	}
	if _, err := cr.SlowdownAt(123); err == nil {
		t.Fatal("unmeasured cap accepted")
	}
}

func TestProfileRunUsesVASPWindow(t *testing.T) {
	b, _ := workloads.ByName("B.hR105_hse")
	out, err := workloads.Run(workloads.RunSpec{
		Bench: b, Nodes: 1, Repeats: 1, Prelude: true, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	jp := ProfileRun(out, DefaultSamplingInterval)
	// The profile covers the VASP window only: its runtime must match
	// the solver result, not the whole trace (which includes DGEMM).
	if math.Abs(jp.Runtime-out.BestResult.Runtime) > 1e-6 {
		t.Fatalf("profile runtime %v vs solver %v", jp.Runtime, out.BestResult.Runtime)
	}
	if jp.NodeTotal.Series.Len() == 0 {
		t.Fatal("empty profile series")
	}
	// First profiled sample must start after the prelude.
	if jp.NodeTotal.Series.Times[0] < out.VASPStart {
		t.Fatal("profile includes prelude samples")
	}
}

func TestProfileRunEmpty(t *testing.T) {
	jp := ProfileRun(workloads.RunOutput{}, 2)
	if jp.Runtime != 0 {
		t.Fatal("empty run output should yield empty profile")
	}
}
