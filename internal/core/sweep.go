// The two-phase measurement split: a SweepContext freezes everything a
// measurement does that cannot depend on the GPU power cap (schedule
// construction, kernel resolution through the platform efficiency
// table, node allocation, noise-stream derivation), so a sweep pays
// for it once and re-runs only the cap solver and trace recording per
// point. The invariant the retained oracle (Measure, one full run per
// point) enforces through the differential tests: a cap may change
// kernel clocks, powers, and durations — never which kernels run,
// which nodes they run on, or which noise they see.
package core

import (
	"fmt"
	"sync"

	"vasppower/internal/workloads"
)

// SweepContext is the reusable cap-independent state of one
// measurement spec. Build it once per sweep, call MeasureCap per
// point, and Close it to release the node arena. The first MeasureCap
// call performs the resolution phase lazily, so a sweep whose points
// are all served from a cache never allocates an arena at all.
//
// When the incremental engine is unavailable — a telemetry sink is
// streaming (arena reuse would corrupt its cursors), or the spec needs
// a path the engine does not cover — every point transparently falls
// back to the retained oracle, Measure, which also reproduces any
// construction error exactly where the old per-point path raised it.
//
// MeasureCap is safe for concurrent use (calls serialize on the
// context's mutex; points are independent, so order does not matter).
type SweepContext struct {
	mu     sync.Mutex
	spec   MeasureSpec
	sw     *workloads.Sweep
	oracle bool
	inited bool
	closed bool
}

// NewSweepContext prepares a context for sweeping spec across caps
// (spec.CapW is ignored; each MeasureCap call supplies the cap).
func NewSweepContext(spec MeasureSpec) *SweepContext {
	spec = spec.withDefaults()
	spec.CapW = 0
	spec.Workers = 1 // parallelism belongs across points, repeats stay serial
	return &SweepContext{spec: spec}
}

// MeasureCap measures the context's spec under one GPU power cap,
// bit-identical to Measure with CapW: capW. Non-binding caps (<= 0 or
// >= the platform GPU's TDP) run uncapped, matching MeasureSpec
// normalization.
func (c *SweepContext) MeasureCap(capW float64) (JobProfile, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return JobProfile{}, fmt.Errorf("core: sweep context is closed")
	}
	if capW <= 0 || capW >= c.spec.Platform.GPU.TDP {
		capW = 0
	}
	if !c.inited {
		c.inited = true
		sw, err := workloads.NewSweep(workloads.RunSpec{
			Bench:          c.spec.Bench,
			Platform:       c.spec.Platform,
			Nodes:          c.spec.Nodes,
			Repeats:        c.spec.Repeats,
			Seed:           c.spec.Seed,
			Workers:        1,
			OperandEntropy: c.spec.Entropy,
		})
		if err != nil {
			// Oracle fallback: behavior-identical, including errors —
			// whatever stopped the resolution phase (invalid bench,
			// unresolvable kernel) stops the oracle at the same place
			// with the same message, per point.
			c.oracle = true
		} else {
			c.sw = sw
		}
	}
	if c.oracle {
		pt := c.spec
		pt.CapW = capW
		return Measure(pt)
	}
	out, err := c.sw.RunCap(capW)
	if err != nil {
		return JobProfile{}, err
	}
	// The profile deep-copies everything it keeps (sampled series,
	// summaries), so it stays valid after the arena is reused or
	// released.
	jp := ProfileRun(out, DefaultSamplingInterval)
	jp.Name = c.spec.Bench.Name
	return jp, nil
}

// Close releases the context's node arena (a no-op if the resolution
// phase never ran, e.g. every point was a cache hit). Idempotent.
func (c *SweepContext) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	if c.sw != nil {
		c.sw.Close()
		c.sw = nil
	}
}
