package core

import (
	"fmt"
	"reflect"
	"testing"

	"vasppower/internal/hw/platform"
	"vasppower/internal/workloads"
)

func benchByName(t testing.TB, name string) workloads.Benchmark {
	t.Helper()
	b, ok := workloads.ByName(name)
	if !ok {
		t.Fatalf("benchmark %q not found", name)
	}
	return b
}

// TestSweepContextMatchesMeasure is the tentpole's differential
// contract at the profile level: MeasureCap on one reusable context is
// deep-equal to an independent Measure per point — across platforms,
// methods, entropy, and repeats, in arbitrary point order.
func TestSweepContextMatchesMeasure(t *testing.T) {
	cases := []struct {
		name     string
		platform string // "" = default
		bench    string
		repeats  int
		entropy  float64
		caps     []float64
	}{
		{"default-hse", "", "B.hR105_hse", 1, 0, []float64{0, 250, 400, 250}},
		{"default-rmm-repeats", "", "PdO2", 2, 0, []float64{0, 300}},
		{"default-entropy", "", "B.hR105_hse", 1, 0.6, []float64{0, 350}},
		{"500w-board", "a100-80gb-500w", "GaAsBi-64", 1, 0, []float64{0, 320}},
		{"h100", "h100-sxm", "B.hR105_hse", 2, 0.3, []float64{0, 450}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := MeasureSpec{
				Bench:   benchByName(t, tc.bench),
				Nodes:   1,
				Repeats: tc.repeats,
				Seed:    7,
				Entropy: tc.entropy,
			}
			if tc.platform != "" {
				p, err := platform.Get(tc.platform)
				if err != nil {
					t.Fatal(err)
				}
				spec.Platform = p
			}
			sctx := NewSweepContext(spec)
			defer sctx.Close()
			for _, capW := range tc.caps {
				pt := spec
				pt.CapW = capW
				want, err := Measure(pt)
				if err != nil {
					t.Fatal(err)
				}
				got, err := sctx.MeasureCap(capW)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("cap %v W: profile diverges from Measure\n got runtime %v energy %v\nwant runtime %v energy %v",
						capW, got.Runtime, got.EnergyJ, want.Runtime, want.EnergyJ)
				}
			}
		})
	}
}

// TestSweepContextOracleFallback: specs the incremental engine rejects
// still measure correctly (and reproduce Measure's errors exactly).
func TestSweepContextOracleFallback(t *testing.T) {
	// Invalid bench: the context must surface the same error Measure
	// returns, not panic or mask it.
	bad := MeasureSpec{}
	sctx := NewSweepContext(bad)
	defer sctx.Close()
	_, errCtx := sctx.MeasureCap(0)
	_, errMeasure := Measure(bad)
	if errMeasure == nil || errCtx == nil {
		t.Fatal("invalid spec accepted")
	}
	if errCtx.Error() != errMeasure.Error() {
		t.Fatalf("fallback error %q, oracle %q", errCtx, errMeasure)
	}
}

// TestSweepContextClosed: MeasureCap after Close fails; Close is
// idempotent.
func TestSweepContextClosed(t *testing.T) {
	sctx := NewSweepContext(MeasureSpec{Bench: benchByName(t, "PdO2")})
	sctx.Close()
	sctx.Close()
	if _, err := sctx.MeasureCap(0); err == nil {
		t.Fatal("closed context measured")
	}
}

// TestNonBindingCapNormalization pins the cache-identity rule: CapW 0,
// TDP, and above-TDP are one measurement.
func TestNonBindingCapNormalization(t *testing.T) {
	tdp := platform.Default().GPU.TDP
	spec := MeasureSpec{Bench: benchByName(t, "PdO2"), Seed: 3}
	want, err := Measure(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, capW := range []float64{tdp, tdp + 100, 1e12} {
		pt := spec
		pt.CapW = capW
		got, err := Measure(pt)
		if err != nil {
			t.Fatalf("cap %v W: %v", capW, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("cap %v W not normalized to uncapped", capW)
		}
	}
	// A binding cap still binds.
	pt := spec
	pt.CapW = tdp - 50
	got, err := Measure(pt)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(want, got) {
		t.Fatalf("cap %v W should differ from uncapped", pt.CapW)
	}
}

// TestMeasureCapResponseWorkerInvariance: the sharded sweep assembles
// the same response for every worker count (each shard owns its own
// context; points are bit-identical regardless of which shard runs
// them).
func TestMeasureCapResponseWorkerInvariance(t *testing.T) {
	spec := MeasureSpec{Bench: benchByName(t, "B.hR105_hse"), Seed: 7}
	caps := []float64{400, 300, 250, 200}
	base, err := MeasureCapResponse(spec, caps)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		sp := spec
		sp.Workers = workers
		got, err := MeasureCapResponse(sp, caps)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(base, got) {
			t.Fatalf("workers=%d response differs from serial", workers)
		}
	}
}

// BenchmarkCapSweep is the tentpole's headline grid: a cold 16-point
// cap sweep through the oracle (full run per point) versus the
// incremental engine (resolve once, re-cap per point), at single-shot
// and at the paper's 5-repeat measurement protocol, plus the
// solve-only steady state whose allocations must stay at zero.
func BenchmarkCapSweep(b *testing.B) {
	caps := make([]float64, 16)
	for i := range caps {
		caps[i] = 180 + 14*float64(i) // 180..390 W, all binding on A100
	}
	specFor := func(repeats int) MeasureSpec {
		return MeasureSpec{Bench: benchByName(b, "B.hR105_hse"), Seed: 7, Repeats: repeats}
	}

	for _, repeats := range []int{1, 5} {
		spec := specFor(repeats)
		b.Run(fmt.Sprintf("points=16/repeats=%d/engine=oracle", repeats), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, capW := range caps {
					pt := spec
					pt.CapW = capW
					if _, err := Measure(pt); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
		b.Run(fmt.Sprintf("points=16/repeats=%d/engine=incremental", repeats), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sctx := NewSweepContext(spec)
				for _, capW := range caps {
					if _, err := sctx.MeasureCap(capW); err != nil {
						b.Fatal(err)
					}
				}
				sctx.Close()
			}
		})
	}
	spec := specFor(0)

	// The cap solve + trace recording alone, without the profiling pass
	// (KDE, sampling): this is the arena's zero-allocation claim.
	b.Run("phase=solve-only/profile=off", func(b *testing.B) {
		sw, err := workloads.NewSweep(workloads.RunSpec{Bench: spec.Bench, Nodes: 1, Repeats: 1, Seed: 7})
		if err != nil {
			b.Fatal(err)
		}
		defer sw.Close()
		if _, err := sw.RunCap(caps[0]); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sw.RunCap(caps[i%len(caps)]); err != nil {
				b.Fatal(err)
			}
		}
	})

	// The per-point marginal cost once the context is warm: cap solve +
	// trace recording + profiling only.
	b.Run("phase=solve-only", func(b *testing.B) {
		sctx := NewSweepContext(spec)
		defer sctx.Close()
		if _, err := sctx.MeasureCap(caps[0]); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sctx.MeasureCap(caps[i%len(caps)]); err != nil {
				b.Fatal(err)
			}
		}
	})
}
