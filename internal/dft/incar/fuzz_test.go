package incar

import (
	"testing"
)

// Fuzz targets for the input parsers. `go test` runs the seed corpus;
// `go test -fuzz=FuzzParseINCAR ./internal/dft/incar` explores further.

func FuzzParseINCAR(f *testing.F) {
	seeds := []string{
		"",
		"SYSTEM = x",
		"ALGO = Damped ; NELM = 41\nLHFCALC = .TRUE.",
		"NELM = -3\nNELMDL = -12",
		"! comment only\n# another",
		"EDIFF = 1.0D-6 ; ENCUT = 245",
		"A = = =",
		"=",
		"TAG =\nTAG2 = v ; ; ;",
		"LREAL auto", // no '='
		"\x00\xff weird bytes = ok?",
		"KPAR = 999999999999999999999999", // overflow
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		file, err := Parse(text)
		if err != nil {
			return // rejection is fine; panics are not
		}
		// Accepted input must behave consistently.
		for _, tag := range file.Tags() {
			if tag == "" {
				t.Fatalf("empty tag accepted from %q", text)
			}
			if !file.Has(tag) {
				t.Fatalf("listed tag %q not retrievable", tag)
			}
		}
		// Typed extraction must never panic, only error.
		_, _ = file.TypedParams()
	})
}

func FuzzParseKPOINTS(f *testing.F) {
	seeds := []string{
		"",
		"mesh\n0\nGamma\n4 4 4\n0 0 0\n",
		"mesh\n0\nMonkhorst\n3 3 1\n",
		"mesh\n1\nGamma\n4 4 4\n",
		"mesh\n0\nGamma\n-1 0 4\n",
		"mesh\n0\nGamma\n4 4\n",
		"x\n0\nG\n1 1 1\nnot a shift\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		kp, err := ParseKPoints(text)
		if err != nil {
			return
		}
		if kp.Count() <= 0 {
			t.Fatalf("accepted mesh with count %d from %q", kp.Count(), text)
		}
		if r := kp.Reduced(); r < 1 || r > kp.Count() {
			t.Fatalf("reduced count %d out of [1,%d]", r, kp.Count())
		}
	})
}
