// Package incar parses the VASP input files our workload model
// consumes: INCAR (tag = value pairs) and KPOINTS (k-point mesh).
// Only the subset of tags that influence power/performance behavior in
// the paper is interpreted, but the parser accepts any syntactically
// valid INCAR, so the real benchmark inputs can be used unmodified.
//
// INCAR syntax handled: `TAG = value` assignments, `!` and `#`
// comments (full-line and trailing), blank lines, multiple assignments
// per line separated by `;`, and Fortran-style logicals
// (.TRUE./.FALSE./T/F).
package incar

import (
	"bufio"
	"fmt"
	"strconv"
	"strings"
)

// File is a parsed INCAR: ordered tags with raw string values plus
// typed access.
type File struct {
	tags  map[string]string
	order []string
}

// Parse reads INCAR text.
func Parse(text string) (*File, error) {
	f := &File{tags: make(map[string]string)}
	sc := bufio.NewScanner(strings.NewReader(text))
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		// Strip comments. VASP treats both '!' and '#' as comment
		// leaders anywhere on the line.
		if i := strings.IndexAny(line, "!#"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		for _, assign := range strings.Split(line, ";") {
			assign = strings.TrimSpace(assign)
			if assign == "" {
				continue
			}
			eq := strings.Index(assign, "=")
			if eq < 0 {
				return nil, fmt.Errorf("incar: line %d: %q is not a TAG = value assignment", lineNo, assign)
			}
			tag := strings.ToUpper(strings.TrimSpace(assign[:eq]))
			val := strings.TrimSpace(assign[eq+1:])
			if tag == "" {
				return nil, fmt.Errorf("incar: line %d: empty tag", lineNo)
			}
			if _, dup := f.tags[tag]; !dup {
				f.order = append(f.order, tag)
			}
			f.tags[tag] = val
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("incar: %w", err)
	}
	return f, nil
}

// Tags returns the tag names in first-appearance order.
func (f *File) Tags() []string { return append([]string(nil), f.order...) }

// Has reports whether the tag is present.
func (f *File) Has(tag string) bool {
	_, ok := f.tags[strings.ToUpper(tag)]
	return ok
}

// String returns the raw value of tag, or def when absent.
func (f *File) String(tag, def string) string {
	if v, ok := f.tags[strings.ToUpper(tag)]; ok {
		return v
	}
	return def
}

// Int returns the tag parsed as an integer.
func (f *File) Int(tag string, def int) (int, error) {
	v, ok := f.tags[strings.ToUpper(tag)]
	if !ok {
		return def, nil
	}
	n, err := strconv.Atoi(strings.Fields(v)[0])
	if err != nil {
		return 0, fmt.Errorf("incar: tag %s: %q is not an integer", strings.ToUpper(tag), v)
	}
	return n, nil
}

// Float returns the tag parsed as a float. Fortran 'D' exponents are
// accepted (1.0D-4).
func (f *File) Float(tag string, def float64) (float64, error) {
	v, ok := f.tags[strings.ToUpper(tag)]
	if !ok {
		return def, nil
	}
	s := strings.Fields(v)[0]
	s = strings.ReplaceAll(strings.ReplaceAll(s, "D", "E"), "d", "e")
	x, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("incar: tag %s: %q is not a number", strings.ToUpper(tag), v)
	}
	return x, nil
}

// Bool returns the tag parsed as a Fortran logical.
func (f *File) Bool(tag string, def bool) (bool, error) {
	v, ok := f.tags[strings.ToUpper(tag)]
	if !ok {
		return def, nil
	}
	switch strings.ToUpper(strings.TrimSpace(v)) {
	case ".TRUE.", "T", "TRUE", ".T.":
		return true, nil
	case ".FALSE.", "F", "FALSE", ".F.":
		return false, nil
	}
	return false, fmt.Errorf("incar: tag %s: %q is not a logical", strings.ToUpper(tag), v)
}

// Algo identifies VASP's electronic minimization algorithm (the ALGO
// tag), which selects the iteration scheme and with it the kernel mix
// (Table I's "Algo" row).
type Algo string

// Algorithms appearing in the paper's benchmarks.
const (
	AlgoNormal   Algo = "Normal"   // blocked Davidson
	AlgoVeryFast Algo = "VeryFast" // RMM-DIIS
	AlgoFast     Algo = "Fast"     // Davidson + RMM-DIIS
	AlgoDamped   Algo = "Damped"   // damped MD / CG, used for hybrids
	AlgoAll      Algo = "All"      // conjugate gradient over all bands
	AlgoACFDT    Algo = "ACFDT"    // RPA correlation energy
	AlgoACFDTR   Algo = "ACFDTR"   // low-scaling RPA
	AlgoExact    Algo = "Exact"    // exact diagonalization
)

// ParseAlgo canonicalizes an ALGO value.
func ParseAlgo(s string) (Algo, error) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "NORMAL", "N":
		return AlgoNormal, nil
	case "VERYFAST", "VF", "V":
		return AlgoVeryFast, nil
	case "FAST", "F":
		return AlgoFast, nil
	case "DAMPED", "D":
		return AlgoDamped, nil
	case "ALL", "A":
		return AlgoAll, nil
	case "ACFDT":
		return AlgoACFDT, nil
	case "ACFDTR":
		return AlgoACFDTR, nil
	case "EXACT", "E":
		return AlgoExact, nil
	}
	return "", fmt.Errorf("incar: unknown ALGO %q", s)
}

// Params is the typed view of the tags our model interprets.
type Params struct {
	System      string
	Algo        Algo
	NELM        int     // max SCF iterations
	NELMDL      int     // initial non-selfconsistent iterations
	NBands      int     // 0 = derive from electron count
	NBandsExact int     // RPA exact-diagonalization band count
	ENCUT       float64 // plane-wave cutoff, eV (0 = POTCAR default)
	KPar        int     // k-point parallelism groups
	NSim        int     // bands blocked per RMM-DIIS step
	LHFCalc     bool    // hybrid functional (HSE)
	HFScreen    float64 // screening parameter (0.2 for HSE06)
	IVDW        int     // van der Waals correction scheme (0 = off)
	Prec        string  // precision mode
	ISpin       int
}

// Defaults returns VASP-like defaults.
func Defaults() Params {
	return Params{
		Algo:   AlgoNormal,
		NELM:   60,
		NELMDL: 0,
		KPar:   1,
		NSim:   4,
		Prec:   "Normal",
		ISpin:  1,
	}
}

// TypedParams interprets the file into Params, applying defaults for
// absent tags.
func (f *File) TypedParams() (Params, error) {
	p := Defaults()
	p.System = f.String("SYSTEM", "unknown system")
	var err error
	if f.Has("ALGO") {
		if p.Algo, err = ParseAlgo(f.String("ALGO", "")); err != nil {
			return p, err
		}
	}
	if p.NELM, err = f.Int("NELM", p.NELM); err != nil {
		return p, err
	}
	if p.NELMDL, err = f.Int("NELMDL", p.NELMDL); err != nil {
		return p, err
	}
	// NELMDL is conventionally negative in VASP inputs (negative means
	// "only on the first ionic step"); magnitude is what matters here.
	if p.NELMDL < 0 {
		p.NELMDL = -p.NELMDL
	}
	if p.NBands, err = f.Int("NBANDS", 0); err != nil {
		return p, err
	}
	if p.NBandsExact, err = f.Int("NBANDSEXACT", 0); err != nil {
		return p, err
	}
	if p.ENCUT, err = f.Float("ENCUT", 0); err != nil {
		return p, err
	}
	if p.KPar, err = f.Int("KPAR", 1); err != nil {
		return p, err
	}
	if p.NSim, err = f.Int("NSIM", 4); err != nil {
		return p, err
	}
	if p.LHFCalc, err = f.Bool("LHFCALC", false); err != nil {
		return p, err
	}
	if p.HFScreen, err = f.Float("HFSCREEN", 0); err != nil {
		return p, err
	}
	if p.IVDW, err = f.Int("IVDW", 0); err != nil {
		return p, err
	}
	if p.ISpin, err = f.Int("ISPIN", 1); err != nil {
		return p, err
	}
	p.Prec = f.String("PREC", "Normal")
	return p, p.Validate()
}

// Validate rejects parameter combinations the model cannot run.
func (p Params) Validate() error {
	if p.NELM <= 0 {
		return fmt.Errorf("incar: NELM must be positive, got %d", p.NELM)
	}
	if p.KPar <= 0 {
		return fmt.Errorf("incar: KPAR must be positive, got %d", p.KPar)
	}
	if p.NSim <= 0 {
		return fmt.Errorf("incar: NSIM must be positive, got %d", p.NSim)
	}
	if p.NBands < 0 || p.NBandsExact < 0 {
		return fmt.Errorf("incar: negative band count")
	}
	if p.ENCUT < 0 {
		return fmt.Errorf("incar: negative ENCUT")
	}
	return nil
}
