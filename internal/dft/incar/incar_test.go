package incar

import (
	"strings"
	"testing"
)

const sampleINCAR = `
SYSTEM = Si256 supercell with vacancy  ! HSE benchmark
! electronic minimization
ALGO   = Damped
NELM   = 41 ; NELMDL = 0
NBANDS = 640
LHFCALC = .TRUE.
HFSCREEN = 0.2
ENCUT = 245.0
KPAR = 1
NSIM = 4
# precision
PREC = Normal
TIME = 0.4
`

func TestParseBasic(t *testing.T) {
	f, err := Parse(sampleINCAR)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.String("SYSTEM", ""); got != "Si256 supercell with vacancy" {
		t.Fatalf("SYSTEM = %q", got)
	}
	if n, _ := f.Int("NBANDS", 0); n != 640 {
		t.Fatalf("NBANDS = %d", n)
	}
	if n, _ := f.Int("NELM", 0); n != 41 {
		t.Fatalf("NELM = %d (semicolon assignment broken)", n)
	}
	if b, _ := f.Bool("LHFCALC", false); !b {
		t.Fatal("LHFCALC not parsed")
	}
	if v, _ := f.Float("HFSCREEN", 0); v != 0.2 {
		t.Fatalf("HFSCREEN = %v", v)
	}
	if !f.Has("time") { // case-insensitive
		t.Fatal("case-insensitive Has failed")
	}
}

func TestParseCommentsAndBlankLines(t *testing.T) {
	f, err := Parse("\n! whole line comment\n# another\nNELM = 10 # trailing\n\n")
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := f.Int("NELM", 0); n != 10 {
		t.Fatalf("NELM = %d", n)
	}
	if len(f.Tags()) != 1 {
		t.Fatalf("tags = %v", f.Tags())
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	if _, err := Parse("THIS IS NOT AN ASSIGNMENT"); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Parse(" = 5"); err == nil {
		t.Fatal("empty tag accepted")
	}
}

func TestTypeErrors(t *testing.T) {
	f, _ := Parse("NELM = abc\nENCUT = xyz\nLHFCALC = maybe")
	if _, err := f.Int("NELM", 0); err == nil {
		t.Fatal("bad int accepted")
	}
	if _, err := f.Float("ENCUT", 0); err == nil {
		t.Fatal("bad float accepted")
	}
	if _, err := f.Bool("LHFCALC", false); err == nil {
		t.Fatal("bad bool accepted")
	}
}

func TestFortranNumericForms(t *testing.T) {
	f, _ := Parse("EDIFF = 1.0D-6\nLREAL = T\nLWAVE = .FALSE.")
	if v, err := f.Float("EDIFF", 0); err != nil || v != 1e-6 {
		t.Fatalf("EDIFF = %v, %v", v, err)
	}
	if b, err := f.Bool("LREAL", false); err != nil || !b {
		t.Fatalf("LREAL = %v, %v", b, err)
	}
	if b, err := f.Bool("LWAVE", true); err != nil || b {
		t.Fatalf("LWAVE = %v, %v", b, err)
	}
}

func TestDefaultsWhenAbsent(t *testing.T) {
	f, _ := Parse("SYSTEM = empty")
	if n, _ := f.Int("NBANDS", 123); n != 123 {
		t.Fatal("default not honored")
	}
	p, err := f.TypedParams()
	if err != nil {
		t.Fatal(err)
	}
	if p.Algo != AlgoNormal || p.NELM != 60 || p.KPar != 1 {
		t.Fatalf("defaults wrong: %+v", p)
	}
}

func TestTypedParamsFull(t *testing.T) {
	f, err := Parse(sampleINCAR)
	if err != nil {
		t.Fatal(err)
	}
	p, err := f.TypedParams()
	if err != nil {
		t.Fatal(err)
	}
	if p.Algo != AlgoDamped {
		t.Fatalf("Algo = %v", p.Algo)
	}
	if !p.LHFCalc || p.NBands != 640 || p.NELM != 41 || p.ENCUT != 245 {
		t.Fatalf("params wrong: %+v", p)
	}
}

func TestNegativeNELMDLNormalized(t *testing.T) {
	f, _ := Parse("NELMDL = -5")
	p, err := f.TypedParams()
	if err != nil {
		t.Fatal(err)
	}
	if p.NELMDL != 5 {
		t.Fatalf("NELMDL = %d, want 5", p.NELMDL)
	}
}

func TestParamsValidate(t *testing.T) {
	bad := []Params{
		{NELM: 0, KPar: 1, NSim: 1},
		{NELM: 1, KPar: 0, NSim: 1},
		{NELM: 1, KPar: 1, NSim: 0},
		{NELM: 1, KPar: 1, NSim: 1, NBands: -1},
		{NELM: 1, KPar: 1, NSim: 1, ENCUT: -10},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("case %d should fail: %+v", i, p)
		}
	}
	if err := Defaults().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParseAlgoVariants(t *testing.T) {
	cases := map[string]Algo{
		"Normal": AlgoNormal, "N": AlgoNormal,
		"VeryFast": AlgoVeryFast, "VF": AlgoVeryFast,
		"fast": AlgoFast, "Damped": AlgoDamped, "All": AlgoAll,
		"ACFDT": AlgoACFDT, "ACFDTR": AlgoACFDTR, "Exact": AlgoExact,
	}
	for in, want := range cases {
		got, err := ParseAlgo(in)
		if err != nil || got != want {
			t.Fatalf("ParseAlgo(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseAlgo("Turbo"); err == nil {
		t.Fatal("unknown algo accepted")
	}
}

const sampleKPOINTS = `Automatic mesh
0
Gamma
4 4 4
0 0 0
`

func TestParseKPoints(t *testing.T) {
	kp, err := ParseKPoints(sampleKPOINTS)
	if err != nil {
		t.Fatal(err)
	}
	if kp.Scheme != "Gamma" || kp.Mesh != [3]int{4, 4, 4} {
		t.Fatalf("kpoints = %+v", kp)
	}
	if kp.Count() != 64 {
		t.Fatalf("Count = %d", kp.Count())
	}
	if r := kp.Reduced(); r != 16 {
		t.Fatalf("Reduced = %d, want 16", r)
	}
}

func TestParseKPointsMonkhorst(t *testing.T) {
	kp, err := ParseKPoints("mesh\n0\nMonkhorst-Pack\n3 3 1\n")
	if err != nil {
		t.Fatal(err)
	}
	if kp.Scheme != "Monkhorst-Pack" || kp.Count() != 9 {
		t.Fatalf("kpoints = %+v", kp)
	}
	if kp.Reduced() != 3 {
		t.Fatalf("Reduced = %d, want 3", kp.Reduced())
	}
}

func TestParseKPointsErrors(t *testing.T) {
	bad := []string{
		"too\nshort",
		"c\n7\nGamma\n4 4 4\n",    // non-automatic
		"c\n0\nLinear\n4 4 4\n",   // unknown scheme
		"c\n0\nGamma\n4 4\n",      // short mesh
		"c\n0\nGamma\n4 4 -1\n",   // bad dimension
		"c\n0\nGamma\n4 4 4\nx\n", // bad shift
	}
	for _, text := range bad {
		if _, err := ParseKPoints(text); err == nil {
			t.Fatalf("accepted bad KPOINTS: %q", strings.Split(text, "\n"))
		}
	}
}

func TestGammaOnlyAndMesh(t *testing.T) {
	if GammaOnly().Reduced() != 1 {
		t.Fatal("gamma-only should reduce to 1")
	}
	m := Mesh(3, 3, 1)
	if m.Count() != 9 {
		t.Fatal("mesh count wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("invalid mesh did not panic")
		}
	}()
	Mesh(0, 1, 1)
}
