package incar

import (
	"bufio"
	"fmt"
	"strconv"
	"strings"
)

// KPoints is a parsed KPOINTS file describing an automatic k-point
// mesh (the only flavor the benchmarks use).
type KPoints struct {
	Comment string
	Scheme  string // "Gamma" or "Monkhorst-Pack"
	Mesh    [3]int
	Shift   [3]float64
}

// Count returns the raw mesh point count Nx·Ny·Nz. (VASP reduces this
// by symmetry; Reduced applies the approximation used in our cost
// model.)
func (k KPoints) Count() int { return k.Mesh[0] * k.Mesh[1] * k.Mesh[2] }

// Reduced estimates the number of irreducible k-points. For a
// Γ-centered mesh on a reasonably symmetric cell roughly 1/4 of the
// raw mesh survives (with a floor of 1); Γ-only meshes return 1.
// The benchmarks' GaAsBi 4×4×4 mesh reduces to ≈ 16 points, and the
// 3×3×1 CuC mesh to ≈ 5 — this estimate lands close enough for the
// load model.
func (k KPoints) Reduced() int {
	n := k.Count()
	if n <= 1 {
		return 1
	}
	r := (n + 3) / 4
	if r < 1 {
		r = 1
	}
	return r
}

// ParseKPoints reads KPOINTS text:
//
//	line 1: comment
//	line 2: 0 (automatic generation)
//	line 3: Gamma | Monkhorst-Pack (first letter decides)
//	line 4: Nx Ny Nz
//	line 5: optional shift sx sy sz
func ParseKPoints(text string) (KPoints, error) {
	var kp KPoints
	sc := bufio.NewScanner(strings.NewReader(text))
	var lines []string
	for sc.Scan() {
		lines = append(lines, strings.TrimSpace(sc.Text()))
	}
	if len(lines) < 4 {
		return kp, fmt.Errorf("kpoints: need at least 4 lines, got %d", len(lines))
	}
	kp.Comment = lines[0]
	nAuto, err := strconv.Atoi(strings.Fields(lines[1])[0])
	if err != nil || nAuto != 0 {
		return kp, fmt.Errorf("kpoints: line 2 must be 0 (automatic mesh), got %q", lines[1])
	}
	switch {
	case lines[2] == "":
		return kp, fmt.Errorf("kpoints: empty scheme line")
	case strings.HasPrefix(strings.ToUpper(lines[2]), "G"):
		kp.Scheme = "Gamma"
	case strings.HasPrefix(strings.ToUpper(lines[2]), "M"):
		kp.Scheme = "Monkhorst-Pack"
	default:
		return kp, fmt.Errorf("kpoints: unknown scheme %q", lines[2])
	}
	mesh := strings.Fields(lines[3])
	if len(mesh) < 3 {
		return kp, fmt.Errorf("kpoints: mesh line %q needs 3 integers", lines[3])
	}
	for i := 0; i < 3; i++ {
		v, err := strconv.Atoi(mesh[i])
		if err != nil || v <= 0 {
			return kp, fmt.Errorf("kpoints: bad mesh dimension %q", mesh[i])
		}
		kp.Mesh[i] = v
	}
	if len(lines) >= 5 && lines[4] != "" {
		shift := strings.Fields(lines[4])
		for i := 0; i < 3 && i < len(shift); i++ {
			v, err := strconv.ParseFloat(shift[i], 64)
			if err != nil {
				return kp, fmt.Errorf("kpoints: bad shift %q", shift[i])
			}
			kp.Shift[i] = v
		}
	}
	return kp, nil
}

// GammaOnly returns the 1×1×1 Γ-point mesh.
func GammaOnly() KPoints {
	return KPoints{Comment: "gamma only", Scheme: "Gamma", Mesh: [3]int{1, 1, 1}}
}

// Mesh returns a Γ-centered mesh of the given dimensions.
func Mesh(nx, ny, nz int) KPoints {
	if nx <= 0 || ny <= 0 || nz <= 0 {
		panic(fmt.Sprintf("kpoints: invalid mesh %dx%dx%d", nx, ny, nz))
	}
	return KPoints{Comment: "mesh", Scheme: "Gamma", Mesh: [3]int{nx, ny, nz}}
}
