package incar

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

// Property: any typed Params we can render as INCAR text parses back
// to the same values (print/parse round trip).
func TestParamsRoundTripProperty(t *testing.T) {
	algos := []Algo{AlgoNormal, AlgoVeryFast, AlgoFast, AlgoDamped, AlgoAll, AlgoACFDTR}
	f := func(nelmRaw, nbandsRaw, kparRaw, algoRaw uint8, hf bool, encutRaw uint16) bool {
		p := Defaults()
		p.System = "round trip"
		p.Algo = algos[int(algoRaw)%len(algos)]
		p.NELM = 1 + int(nelmRaw)%200
		p.NBands = int(nbandsRaw) * 8
		p.KPar = 1 + int(kparRaw)%8
		p.LHFCalc = hf
		p.ENCUT = float64(encutRaw%1000) + 100
		var sb strings.Builder
		fmt.Fprintf(&sb, "SYSTEM = %s\n", p.System)
		fmt.Fprintf(&sb, "ALGO = %s ; NELM = %d\n", p.Algo, p.NELM)
		if p.NBands > 0 {
			fmt.Fprintf(&sb, "NBANDS = %d\n", p.NBands)
		}
		fmt.Fprintf(&sb, "KPAR = %d\nENCUT = %.1f\n", p.KPar, p.ENCUT)
		if p.LHFCalc {
			sb.WriteString("LHFCALC = .TRUE.\n")
		}
		file, err := Parse(sb.String())
		if err != nil {
			return false
		}
		q, err := file.TypedParams()
		if err != nil {
			return false
		}
		return q.System == p.System && q.Algo == p.Algo && q.NELM == p.NELM &&
			q.NBands == p.NBands && q.KPar == p.KPar &&
			q.LHFCalc == p.LHFCalc && q.ENCUT == p.ENCUT
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// Property: the parser never panics on arbitrary input; it either
// errors or returns a consistent File.
func TestParseNeverPanicsProperty(t *testing.T) {
	f := func(text string) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		file, err := Parse(text)
		if err != nil {
			return true
		}
		// Every reported tag must be retrievable.
		for _, tag := range file.Tags() {
			if !file.Has(tag) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// Property: KPOINTS meshes round trip through render/parse.
func TestKPointsRoundTripProperty(t *testing.T) {
	f := func(nx, ny, nz uint8) bool {
		mesh := Mesh(1+int(nx)%12, 1+int(ny)%12, 1+int(nz)%12)
		text := fmt.Sprintf("c\n0\nGamma\n%d %d %d\n0 0 0\n",
			mesh.Mesh[0], mesh.Mesh[1], mesh.Mesh[2])
		kp, err := ParseKPoints(text)
		if err != nil {
			return false
		}
		return kp.Mesh == mesh.Mesh && kp.Count() == mesh.Count() &&
			kp.Reduced() >= 1 && kp.Reduced() <= kp.Count()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
