// Package lattice provides the crystal-structure layer of the
// workload model: structures with ion/electron counts and cell
// dimensions, the silicon-supercell family used in the paper's
// controlled experiments (§IV), and the derivation of computational
// sizes from physical ones — FFT grids, dense grid point counts
// (NPLWV), plane waves per band, and default band counts (NBANDS).
//
// The derivations are calibrated against Table I: the Si256 supercell
// (21.72 Å cube) gets an 80×80×80 grid (NPLWV 512000) and 640 bands
// for 1020 electrons, exactly as published.
package lattice

import (
	"fmt"
	"math"
)

// Structure describes a periodic atomic system.
type Structure struct {
	Name      string
	Formula   string  // human-readable composition, e.g. "Si255"
	NumIons   int     // atoms in the cell
	Electrons int     // valence electrons (what DFT actually solves for)
	A, B, C   float64 // orthorhombic cell edges, Å
}

// Validate checks structural invariants.
func (s Structure) Validate() error {
	if s.NumIons <= 0 {
		return fmt.Errorf("lattice: %s has %d ions", s.Name, s.NumIons)
	}
	if s.Electrons <= 0 {
		return fmt.Errorf("lattice: %s has %d electrons", s.Name, s.Electrons)
	}
	if s.A <= 0 || s.B <= 0 || s.C <= 0 {
		return fmt.Errorf("lattice: %s has non-positive cell edge", s.Name)
	}
	return nil
}

// Volume returns the cell volume in Å³.
func (s Structure) Volume() float64 { return s.A * s.B * s.C }

// SiLatticeConst is the conventional silicon lattice constant in Å.
const SiLatticeConst = 5.431

// SiEncutDefault is the default plane-wave cutoff of the silicon
// POTCAR (ENMAX), in eV.
const SiEncutDefault = 245.0

// SiliconSupercell builds an n-atom silicon supercell. The cell is the
// cube holding n atoms at bulk silicon density (edge
// (n/8)^(1/3)·a₀), which is how the paper's §IV size-sweep supercells
// scale: every size keeps the same atomic density, so computational
// size grows strictly with atom count.
func SiliconSupercell(nAtoms int) (Structure, error) {
	if nAtoms < 2 || nAtoms%2 != 0 {
		return Structure{}, fmt.Errorf("lattice: silicon supercell needs an even atom count ≥ 2, got %d", nAtoms)
	}
	edge := SiLatticeConst * math.Cbrt(float64(nAtoms)/8)
	return Structure{
		Name:      fmt.Sprintf("Si%d", nAtoms),
		Formula:   fmt.Sprintf("Si%d", nAtoms),
		NumIons:   nAtoms,
		Electrons: 4 * nAtoms, // 4 valence electrons per Si
		A:         edge,
		B:         edge,
		C:         edge,
	}, nil
}

// SiliconVacancySupercell builds an n-atom supercell with one vacancy
// (n−1 ions), as in the Si256_hse benchmark (255 ions, 1020
// electrons).
func SiliconVacancySupercell(nAtoms int) (Structure, error) {
	s, err := SiliconSupercell(nAtoms)
	if err != nil {
		return s, err
	}
	s.Name = fmt.Sprintf("Si%d_vac", nAtoms)
	s.Formula = fmt.Sprintf("Si%d", nAtoms-1)
	s.NumIons = nAtoms - 1
	s.Electrons = 4 * (nAtoms - 1)
	return s, nil
}

// FFTGrid derives the dense FFT grid for a structure at the given
// plane-wave cutoff (eV): each dimension must resolve the
// wavefunction cutoff sphere with the precision-dependent wrap-around
// margin, then rounds up to an FFT-friendly size (prime factors in
// {2, 3, 5, 7}).
//
// Points per edge = factor·Gcut·a/π with Gcut = sqrt(2·m·ENCUT)/ħ
// (0.5123·sqrt(E[eV]) in Å⁻¹) and factor 1.40 at PREC=Normal
// (VASP's 3/2 grid with friendly rounding). This reproduces Table I:
// a 21.72 Å silicon cell at ENCUT=245 eV gets an 80-point edge.
func FFTGrid(s Structure, encut float64, prec string) ([3]int, error) {
	if err := s.Validate(); err != nil {
		return [3]int{}, err
	}
	if encut <= 0 {
		return [3]int{}, fmt.Errorf("lattice: non-positive ENCUT %v", encut)
	}
	gcut := 0.5123 * math.Sqrt(encut)
	var factor float64
	switch prec {
	case "", "Normal", "normal", "Med", "Medium":
		factor = 1.40
	case "Accurate", "accurate", "High", "high":
		factor = 1.87 // full 2·Gcut grid, no wrap-around
	case "Low", "low":
		factor = 1.05
	default:
		return [3]int{}, fmt.Errorf("lattice: unknown PREC %q", prec)
	}
	var grid [3]int
	for i, a := range []float64{s.A, s.B, s.C} {
		raw := factor * gcut * a / math.Pi
		grid[i] = fftFriendly(int(math.Ceil(raw - 1e-9)))
	}
	return grid, nil
}

// fftFriendly rounds n up to the next integer whose prime factors are
// all in {2, 3, 5, 7}.
func fftFriendly(n int) int {
	if n < 2 {
		return 2
	}
	for m := n; ; m++ {
		k := m
		for _, p := range []int{2, 3, 5, 7} {
			for k%p == 0 {
				k /= p
			}
		}
		if k == 1 {
			return m
		}
	}
}

// NPLWV returns the dense grid point count for a grid.
func NPLWV(grid [3]int) int { return grid[0] * grid[1] * grid[2] }

// PlaneWavesPerBand estimates the number of plane-wave coefficients in
// one orbital: the wavefunction cutoff sphere (radius Gcut) holds
// (4π/3)·Gcut³ / ((2π)³/V) vectors — about 1/16 of the dense NPLWV
// grid at PREC=Normal. VASP reports this as the "number of plane
// waves" per band.
func PlaneWavesPerBand(nplwv int) int {
	npw := int(float64(nplwv) * 0.065)
	if npw < 1 {
		npw = 1
	}
	return npw
}

// DefaultNBands returns VASP's default band count: nelect/2 + nions/2,
// rounded up to a multiple of `granularity` (the paper's inputs round
// to rank-count multiples; pass 8 for a 2-node default).
func DefaultNBands(electrons, ions, granularity int) int {
	if granularity <= 0 {
		granularity = 1
	}
	nb := electrons/2 + ions/2
	if nb < 1 {
		nb = 1
	}
	if r := nb % granularity; r != 0 {
		nb += granularity - r
	}
	return nb
}
