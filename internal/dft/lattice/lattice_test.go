package lattice

import (
	"math"
	"testing"
)

func TestSiliconSupercellBasics(t *testing.T) {
	s, err := SiliconSupercell(256)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumIons != 256 || s.Electrons != 1024 {
		t.Fatalf("Si256: %d ions, %d electrons", s.NumIons, s.Electrons)
	}
	// Bulk density: cube edge (256/8)^(1/3)·5.431 ≈ 17.24 Å.
	if math.Abs(s.A-17.243) > 0.01 || s.A != s.B || s.B != s.C {
		t.Fatalf("Si256 cell = %v×%v×%v", s.A, s.B, s.C)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSiliconSupercellDensityInvariant(t *testing.T) {
	// Atoms per Å³ must be constant across the family.
	ref, _ := SiliconSupercell(64)
	refDensity := float64(ref.NumIons) / ref.Volume()
	for _, n := range []int{8, 32, 128, 512, 2048, 4096} {
		s, err := SiliconSupercell(n)
		if err != nil {
			t.Fatal(err)
		}
		d := float64(s.NumIons) / s.Volume()
		if math.Abs(d-refDensity)/refDensity > 1e-9 {
			t.Fatalf("Si%d density %v differs from reference %v", n, d, refDensity)
		}
	}
}

func TestSiliconSupercellRejectsBadCounts(t *testing.T) {
	for _, n := range []int{0, -8, 3, 7} {
		if _, err := SiliconSupercell(n); err == nil {
			t.Fatalf("SiliconSupercell(%d) accepted", n)
		}
	}
}

func TestVacancySupercell(t *testing.T) {
	s, err := SiliconVacancySupercell(256)
	if err != nil {
		t.Fatal(err)
	}
	// Si256_hse: 255 ions, 1020 electrons (Table I).
	if s.NumIons != 255 || s.Electrons != 1020 {
		t.Fatalf("vacancy cell: %d ions, %d electrons; want 255/1020", s.NumIons, s.Electrons)
	}
}

func TestFFTGridMatchesTableISi256(t *testing.T) {
	// Si256_hse: 80×80×80 grid, NPLWV 512000 at the benchmark cutoff.
	s, _ := SiliconVacancySupercell(256)
	grid, err := FFTGrid(s, 410, "Normal")
	if err != nil {
		t.Fatal(err)
	}
	if grid != [3]int{80, 80, 80} {
		t.Fatalf("Si256 grid = %v, want 80³", grid)
	}
	if NPLWV(grid) != 512000 {
		t.Fatalf("NPLWV = %d, want 512000", NPLWV(grid))
	}
}

func TestFFTGridMatchesTableISi128(t *testing.T) {
	// Si128_acfdtr: 60×60×60 grid, NPLWV 216000.
	s, _ := SiliconSupercell(128)
	grid, err := FFTGrid(s, 367, "Normal")
	if err != nil {
		t.Fatal(err)
	}
	if grid != [3]int{60, 60, 60} {
		t.Fatalf("Si128 grid = %v, want 60³", grid)
	}
	if NPLWV(grid) != 216000 {
		t.Fatalf("NPLWV = %d, want 216000", NPLWV(grid))
	}
}

func TestFFTGridGrowsWithSizeAndCutoff(t *testing.T) {
	small, _ := SiliconSupercell(64)
	big, _ := SiliconSupercell(512)
	gSmall, _ := FFTGrid(small, 245, "Normal")
	gBig, _ := FFTGrid(big, 245, "Normal")
	if NPLWV(gBig) <= NPLWV(gSmall) {
		t.Fatal("grid does not grow with system size")
	}
	gLow, _ := FFTGrid(big, 245, "Normal")
	gHigh, _ := FFTGrid(big, 400, "Normal")
	if NPLWV(gHigh) <= NPLWV(gLow) {
		t.Fatal("grid does not grow with cutoff")
	}
	gAcc, _ := FFTGrid(big, 245, "Accurate")
	if NPLWV(gAcc) <= NPLWV(gLow) {
		t.Fatal("Accurate grid not denser than Normal")
	}
}

func TestFFTGridErrors(t *testing.T) {
	s, _ := SiliconSupercell(64)
	if _, err := FFTGrid(s, 0, "Normal"); err == nil {
		t.Fatal("zero ENCUT accepted")
	}
	if _, err := FFTGrid(s, 245, "Bogus"); err == nil {
		t.Fatal("unknown PREC accepted")
	}
	if _, err := FFTGrid(Structure{}, 245, "Normal"); err == nil {
		t.Fatal("invalid structure accepted")
	}
}

func TestFFTFriendly(t *testing.T) {
	cases := map[int]int{
		1: 2, 2: 2, 59: 60, 60: 60, 61: 63, 79: 80, 80: 80,
		97: 98, 121: 125, 127: 128,
	}
	for in, want := range cases {
		if got := fftFriendly(in); got != want {
			t.Fatalf("fftFriendly(%d) = %d, want %d", in, got, want)
		}
	}
	// All results factor into {2,3,5,7}.
	for n := 2; n < 500; n++ {
		v := fftFriendly(n)
		if v < n {
			t.Fatalf("fftFriendly(%d) = %d rounds down", n, v)
		}
		k := v
		for _, p := range []int{2, 3, 5, 7} {
			for k%p == 0 {
				k /= p
			}
		}
		if k != 1 {
			t.Fatalf("fftFriendly(%d) = %d is not 7-smooth", n, v)
		}
	}
}

func TestPlaneWavesPerBand(t *testing.T) {
	if got := PlaneWavesPerBand(512000); got != 33280 {
		t.Fatalf("npw(512000) = %d, want 33280", got)
	}
	if got := PlaneWavesPerBand(1); got != 1 {
		t.Fatalf("npw floor broken: %d", got)
	}
}

func TestDefaultNBands(t *testing.T) {
	// Si256_hse: 1020 electrons, 255 ions → 510+127 = 637 → 640 at
	// granularity 8 (Table I's NBANDS).
	if got := DefaultNBands(1020, 255, 8); got != 640 {
		t.Fatalf("NBANDS(Si256_hse) = %d, want 640", got)
	}
	if got := DefaultNBands(4, 1, 1); got != 2 {
		t.Fatalf("NBANDS small = %d", got)
	}
	if got := DefaultNBands(0, 0, 8); got != 8 {
		t.Fatalf("NBANDS floor = %d", got)
	}
	// Scales ~2.5× atoms for silicon.
	for _, n := range []int{64, 256, 1024} {
		got := DefaultNBands(4*n, n, 8)
		want := 2.5 * float64(n)
		if math.Abs(float64(got)-want) > 10 {
			t.Fatalf("NBANDS(Si%d) = %d, want ≈ %v", n, got, want)
		}
	}
}

func TestVolume(t *testing.T) {
	s := Structure{Name: "x", Formula: "X", NumIons: 1, Electrons: 1, A: 2, B: 3, C: 4}
	if s.Volume() != 24 {
		t.Fatalf("volume = %v", s.Volume())
	}
}

func TestStructureValidate(t *testing.T) {
	bad := []Structure{
		{Name: "noions", Electrons: 1, A: 1, B: 1, C: 1},
		{Name: "noelec", NumIons: 1, A: 1, B: 1, C: 1},
		{Name: "nocell", NumIons: 1, Electrons: 1},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Fatalf("structure %q should be invalid", s.Name)
		}
	}
}
