package method

import (
	"fmt"

	"vasppower/internal/hw/cpu"
	"vasppower/internal/hw/gpu"
)

// Memory-activity levels per step flavor (fraction of full DDR load).
const (
	memFFT  = 0.70
	memGEMM = 0.35
	memEig  = 0.30
	memNL   = 0.50
	memComm = 0.25
	memHost = 0.15
	memCPU  = 0.95
)

// hApplications returns the number of H·ψ applications per band per
// SCF iteration for each iteration scheme (VASP-typical counts).
func hApplications(k Kind, iter int) int {
	switch k {
	case DFTRMM, VDW:
		return 5 // RMM-DIIS residual minimization sweeps
	case DFTBD:
		return 6 // Davidson subspace expansions
	case DFTBDRMM:
		if iter < 5 {
			return 6 // initial Davidson iterations
		}
		return 5 // then RMM-DIIS
	case DFTCG, HSE:
		return 4 // (damped) conjugate gradient steps
	}
	return 5
}

type builder struct {
	cfg   Config
	steps []Step
}

func (b *builder) add(s Step) { b.steps = append(b.steps, s) }

func (b *builder) gpuStep(label, phase string, k gpu.Kernel, mem float64) {
	b.add(Step{Label: label, Kind: StepGPU, GPU: k, MemActivity: mem, Phase: phase})
}

func (b *builder) commStep(label, phase string, op CommOp, bytes float64, scope CommScope) {
	b.add(Step{Label: label, Kind: StepComm, Comm: Comm{Op: op, Bytes: bytes, Scope: scope},
		MemActivity: memComm, Phase: phase})
}

func (b *builder) hostStep(label, phase string, dur float64) {
	b.add(Step{Label: label, Kind: StepHost, HostSeconds: dur, MemActivity: memHost, Phase: phase})
}

func (b *builder) cpuStep(label, phase string, t cpu.Task) {
	b.add(Step{Label: label, Kind: StepCPU, CPU: t, MemActivity: memCPU, Phase: phase})
}

// hostPerKpt is the serial host time per k-point per iteration:
// orbital bookkeeping, occupancy updates, launch queue stalls. Small
// systems spend relatively more time here, which is one of the two
// mechanisms (with low occupancy) behind their low GPU power.
func (b *builder) hostPerKpt() float64 {
	c := b.cfg
	return 0.006 + float64(c.NPLWV)*2e-9 + float64(c.Decomp.BandsPerRank)*3e-5
}

// hostMix is the per-iteration charge-mixing and setup host time.
func (b *builder) hostMix() float64 {
	return 0.02 + float64(b.cfg.NPLWV)*4e-9
}

// scfIteration emits the steps of one SCF iteration of the plain-DFT
// flavors (and the non-exchange part of HSE iterations).
func (b *builder) scfIteration(kind Kind, iter int, phase string) {
	c := b.cfg
	d := c.Decomp
	bpr := d.BandsPerRank
	nH := hApplications(kind, iter)
	for kp := 0; kp < d.KPointsPerGroup; kp++ {
		pfx := fmt.Sprintf("it%02d.k%d", iter, kp)
		// H·ψ: transform every local band to real space and back for
		// each H application.
		b.gpuStep(pfx+".fft-hpsi", phase,
			fftBatchKernel(pfx+".fft-hpsi", bpr*nH*2, c.NPLWV, c.NSim, bpr), memFFT)
		// Nonlocal pseudopotential projection (real space).
		b.gpuStep(pfx+".nonlocal", phase,
			nonlocalKernel(pfx+".nonlocal", c.NIons, bpr, nH), memNL)
		// Subspace matrix build: S = Ψ†·(HΨ), distributed over bands.
		b.gpuStep(pfx+".subspace-gemm", phase,
			gemmKernel(pfx+".subspace-gemm", c.NBands, bpr, c.NPW), memGEMM)
		// Subspace matrix all-reduce within the KPAR group.
		b.commStep(pfx+".subspace-allreduce", phase, CommAllReduce,
			float64(c.NBands)*float64(c.NBands)*complexBytes, ScopeGroup)
		// Subspace diagonalization (replicated on each GPU).
		b.gpuStep(pfx+".subspace-eig", phase, eigKernel(pfx+".subspace-eig", c.NBands), memEig)
		// Rotation: Ψ ← Ψ·U.
		b.gpuStep(pfx+".rotate-gemm", phase,
			gemmKernel(pfx+".rotate-gemm", c.NPW, bpr, c.NBands), memGEMM)
		// New density contribution: one transform per local band.
		b.gpuStep(pfx+".fft-density", phase,
			fftBatchKernel(pfx+".fft-density", bpr, c.NPLWV, c.NSim, bpr), memFFT)
		b.hostStep(pfx+".host", phase, b.hostPerKpt())
	}
	// Density all-reduce across the whole job (sums over bands and
	// k-point groups); the density is real-valued.
	b.commStep(fmt.Sprintf("it%02d.density-allreduce", iter), phase,
		CommAllReduce, float64(c.NPLWV)*8, ScopeAll)
	if kind == VDW {
		b.gpuStep(fmt.Sprintf("it%02d.vdw", iter), phase, vdwKernel(c.NIons), 0.2)
	}
	b.hostStep(fmt.Sprintf("it%02d.mix", iter), phase, b.hostMix())
}

// buildSCF emits a plain-DFT job: setup, NELM iterations, wrap-up.
func (b *builder) buildSCF(kind Kind) {
	b.hostStep("setup", "setup", b.setupTime())
	for it := 0; it < b.cfg.NELM; it++ {
		b.scfIteration(kind, it, "scf")
	}
	b.hostStep("finalize", "finalize", 0.5)
}

// setupTime covers reading inputs, symmetry analysis, and wavefunction
// initialization.
func (b *builder) setupTime() float64 {
	return 1.0 + float64(b.cfg.NPLWV)*2e-8
}

// buildHSE emits a hybrid-functional job: damped-CG SCF where every
// H·ψ application also applies exact exchange — band-pair FFTs on the
// exchange grid plus a large accumulation GEMM. The GEMM dominates
// iteration time, which is why HSE shows the highest, flattest GPU
// power of all methods (Figs. 3, 9).
func (b *builder) buildHSE() {
	c := b.cfg
	d := c.Decomp
	bpr := d.BandsPerRank
	nocc := c.NElectrons / 2
	if nocc < 1 {
		nocc = 1
	}
	// Exchange operates on the wavefunction grid (half the linear
	// dimensions of the dense grid in each direction would give /8;
	// augmentation keeps the effective transform at about half the
	// dense point count).
	npwx := c.NPLWV / 2
	if npwx < 512 {
		npwx = 512
	}
	b.hostStep("setup", "setup", b.setupTime()*1.5)
	const nHx = 2 // exchange applications per band per iteration
	for it := 0; it < c.NELM; it++ {
		for kp := 0; kp < d.KPointsPerGroup; kp++ {
			pfx := fmt.Sprintf("it%02d.k%d", it, kp)
			for h := 0; h < nHx; h++ {
				hp := fmt.Sprintf("%s.x%d", pfx, h)
				// Pair FFTs: each local band against every occupied
				// band, forward and back, batched aggressively.
				b.gpuStep(hp+".exch-fft", "scf",
					exchangeFFTKernel(hp+".exch-fft", bpr*nocc, 2, npwx), memFFT)
				// Exchange accumulation/ACE-projection GEMM passes.
				b.gpuStep(hp+".exch-gemm", "scf",
					exchangeGemmKernel(hp+".exch-gemm", npwx, bpr, nocc), memGEMM)
			}
		}
		// The non-exchange part of the iteration (local H, subspace,
		// rotation, density).
		b.scfIteration(HSE, it, "scf")
	}
	b.hostStep("finalize", "finalize", 0.5)
}

// buildACFDTR emits an RPA job, the three-phase structure behind the
// paper's most dramatic power timeline (Figs. 3, 11):
//
//  1. a short DFT ground-state SCF (GPU, moderate power);
//  2. exact diagonalization to NBANDSEXACT bands — CPU-only in VASP
//     6.4.1 ("due to VASP 6.4.1 not yet porting the exact
//     diagonalization step to GPUs", §III-C): a long flat valley where
//     GPUs idle;
//  3. the RPA polarizability/frequency-integration sweep: near-peak
//     GEMM bursts separated by host/communication gaps — high peaks,
//     deep troughs.
func (b *builder) buildACFDTR() {
	c := b.cfg
	d := c.Decomp
	b.hostStep("setup", "setup", b.setupTime()*2)

	// Phase 1: ground-state DFT (blocked Davidson, ~14 iterations).
	scfIters := 14
	if c.NELM < scfIters {
		scfIters = c.NELM
	}
	for it := 0; it < scfIters; it++ {
		b.scfIteration(DFTBD, it, "scf")
	}

	// Phase 2: exact diagonalization on the host.
	b.hostStep("exact-diag.setup", "exact-diag", 2.0)
	b.cpuStep("exact-diag.eigensolve", "exact-diag", rpaEigensolveTask(c.NBandsExact))
	// Redistribute the full orbital set to the GPUs afterwards.
	b.commStep("exact-diag.scatter", "exact-diag", CommBroadcast,
		float64(c.NPW)*float64(min(c.NBandsExact, 4*c.NBands))*complexBytes, ScopeAll)

	// Phase 3: frequency sweep. Each frequency point: a host/transform
	// gap, an orbital-block broadcast, then the polarizability GEMM.
	const nFreq = 24
	for f := 0; f < nFreq; f++ {
		pfx := fmt.Sprintf("rpa.f%02d", f)
		b.hostStep(pfx+".transform", "rpa", 1.2+float64(c.NPLWV)*1.5e-9)
		b.commStep(pfx+".bcast", "rpa", CommBroadcast,
			float64(c.NPW)*float64(c.NBands)*complexBytes/4, ScopeAll)
		// χ₀ accumulation: the rank-local slab of a npw×npw update
		// contracted over occupied bands × imaginary-time points.
		b.gpuStep(pfx+".chi0-gemm", "rpa",
			chi0Kernel(pfx+".chi0-gemm", c.NPW, d.Ranks, c.NElectrons/2), memGEMM)
	}
	b.hostStep("finalize", "finalize", 1.0)
}

// rpaEigensolveTask sizes the CPU-only exact diagonalization. The
// efficiency is deliberately low: ScaLAPACK eigensolves on a single
// host socket reach a small fraction of peak, which is what makes the
// phase long enough to dominate the timeline's valley.
func rpaEigensolveTask(nBandsExact int) cpu.Task {
	t := cpu.EigensolveTask(nBandsExact)
	t.Efficiency = 0.18
	return t
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
