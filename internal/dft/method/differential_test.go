package method_test

import (
	"testing"

	"vasppower/internal/dft/method"
	"vasppower/internal/hw/platform"
	"vasppower/internal/workloads"
)

// TestTableResolutionMatchesLegacyOracle is the refactor's safety net:
// every kernel any Table I benchmark can emit, under every method kind,
// must resolve through the default platform's efficiency table to the
// bit-exact profile the pre-refactor inline constants produced. This is
// what keeps the default-platform golden output byte-identical.
func TestTableResolutionMatchesLegacyOracle(t *testing.T) {
	p := platform.Default()
	if p.Efficiency == nil {
		t.Fatal("default platform carries no efficiency table")
	}
	kernels := 0
	for _, bench := range workloads.TableI() {
		for _, kind := range method.Kinds() {
			cfg, err := bench.Config(p, bench.OptimalNodes)
			if err != nil {
				t.Fatalf("%s: %v", bench.Name, err)
			}
			cfg.Kind = kind
			if kind == method.ACFDTR && cfg.NBandsExact == 0 {
				cfg.NBandsExact = 8000
			}
			sched, err := method.Build(cfg)
			if err != nil {
				t.Fatalf("%s/%s: %v", bench.Name, kind, err)
			}
			for _, st := range sched.Steps {
				if st.Kind != method.StepGPU {
					continue
				}
				got, err := p.Efficiency.Resolve(st.GPU)
				if err != nil {
					t.Fatalf("%s/%s step %q: %v", bench.Name, kind, st.Label, err)
				}
				want, ok := method.LegacyResolve(st.GPU)
				if !ok {
					t.Fatalf("%s/%s step %q: class %q unknown to the oracle",
						bench.Name, kind, st.Label, st.GPU.Class)
				}
				if got != want {
					t.Fatalf("%s/%s step %q (class %q): table %+v != oracle %+v",
						bench.Name, kind, st.Label, st.GPU.Class, got, want)
				}
				kernels++
			}
		}
	}
	if kernels < 1000 {
		t.Fatalf("differential sweep covered only %d kernels", kernels)
	}
}
