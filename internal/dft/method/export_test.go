package method

// LegacyResolve exposes the retained pre-table oracle to the external
// differential test package (method_test), which needs to import
// workloads and platform without creating an import cycle.
var LegacyResolve = legacyResolve
