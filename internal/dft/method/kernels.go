package method

import (
	"fmt"
	"math"

	"vasppower/internal/hw/gpu"
)

// Work-accounting constants. Flop/byte formulas are the textbook
// counts for each algorithm; every constant here is a statement about
// the *amount* of algorithmic work. How efficiently a platform runs
// that work — occupancy caps, saturation sizes, SM activity — lives in
// the platform's gpu.EfficiencyModel, not here: the builders emit pure
// work descriptors and never touch an efficiency number.
const (
	// coarseGrain scales kernel work (flops AND bytes, so sustained
	// power is unchanged) to account for everything the skeleton
	// schedule leaves out of each SCF iteration: orthonormalization
	// sub-steps, preconditioner applications, augmentation-charge
	// handling, forces, symmetrization. Calibrated so benchmark
	// runtimes land at the minutes scale of the real runs.
	coarseGrain = 12.0

	// fftFlopFactor inflates the textbook 5·N·log2(N) FFT flop count
	// for twiddle arithmetic and transposes. Together with the
	// platform's FFT efficiency response it fixes the
	// compute/memory-critical clock ratio of FFT kernels (≈0.22),
	// which controls how much a deep power cap can slow them.
	fftFlopFactor = 1.2
	// fftBytesPasses is the effective number of full-array DRAM
	// passes of a batched 3-D complex FFT.
	fftBytesPasses = 2.6

	// exchGemmSweeps is the number of blocked accumulation passes the
	// exchange operator makes per pair batch (spin channels,
	// augmentation contributions, ACE projection) — the compute-bound
	// share of an HSE iteration.
	exchGemmSweeps = 55.0

	// gemmBytesFactor inflates the operand footprint of a blocked
	// complex GEMM for partial-tile re-reads.
	gemmBytesFactor = 1.2

	// eigFlopFactor is the flop prefactor of a dense complex
	// eigensolve (reduction + QR iteration + backtransform), flops ≈
	// eigFlopFactor·n³.
	eigFlopFactor = 25.0

	// Real-space nonlocal projection.
	nlRealPoints     = 450.0
	projectorsPerIon = 9.0

	// rpaTimePoints is the imaginary-time/frequency compression rank
	// of the low-scaling RPA polarizability accumulation.
	rpaTimePoints = 64.0

	// complexBytes is the size of one wavefunction coefficient.
	complexBytes = 16.0
)

// coarse applies the schedule coarse-graining factor: more total work
// at identical sustained rates (power unchanged, duration scaled).
// The launch sequence is replayed coarseGrain times, so the fixed
// launch latency scales identically.
func coarse(k gpu.Kernel) gpu.Kernel {
	k.Flops *= coarseGrain
	k.Bytes *= coarseGrain
	k.LatencyScale = coarseGrain
	return k
}

// fftBatchKernel models `count` complex 3-D FFTs on an nplwv-point
// grid performed on band blocks of nsim, with bpr bands resident per
// GPU. GPU fill — and with it SM activity, achieved bandwidth, and
// therefore power — is governed by points-in-flight (nsim·nplwv) and
// band availability (bpr): the mechanism by which small workloads
// (GaAsBi-64) draw far less power than large ones (PdO4) on identical
// hardware (Fig. 5). Both are size axes of the platform's FFT
// efficiency response.
func fftBatchKernel(label string, count, nplwv, nsim, bpr int) gpu.Kernel {
	if count <= 0 || nplwv <= 0 || nsim <= 0 || bpr <= 0 {
		panic(fmt.Sprintf("method: invalid FFT batch %s", label))
	}
	n := float64(nplwv)
	perFFTFlops := 5 * n * math.Log2(n) * fftFlopFactor
	perFFTBytes := complexBytes * n * fftBytesPasses
	return coarse(gpu.Kernel{
		Name:     label,
		Class:    gpu.ClassFFT,
		Flops:    float64(count) * perFFTFlops,
		Bytes:    float64(count) * perFFTBytes,
		Axes:     [3]float64{float64(nsim) * n, float64(bpr)},
		Launches: math.Ceil(float64(count) / float64(nsim)),
	})
}

// exchangeFFTKernel models the HSE pair transforms: `pairs` band
// pairs, each needing `transformsPerPair` FFTs on the npwx-point
// exchange grid. Pair parallelism is enormous (bands × occupied), so
// even small systems batch thousands of transforms — which is why
// hybrid calculations run hot on systems whose plain-DFT kernels
// would idle half the GPU (B.hR105_hse vs GaAsBi-64).
func exchangeFFTKernel(label string, pairs, transformsPerPair, npwx int) gpu.Kernel {
	if pairs <= 0 || transformsPerPair <= 0 || npwx <= 0 {
		panic(fmt.Sprintf("method: invalid exchange FFT %s", label))
	}
	n := float64(npwx)
	count := float64(pairs) * float64(transformsPerPair)
	return coarse(gpu.Kernel{
		Name:     label,
		Class:    gpu.ClassExchangeFFT,
		Flops:    count * 5 * n * math.Log2(n) * fftFlopFactor,
		Bytes:    count * complexBytes * n * fftBytesPasses,
		Axes:     [3]float64{float64(pairs) * n},
		Launches: math.Ceil(count / 512),
	})
}

// gemmKernel models a complex GEMM C(m×n) += A(m×k)·B(k×n). The
// platform's GEMM response saturates per dimension, so the descriptor
// carries m, n, k as its size axes.
func gemmKernel(label string, m, n, k int) gpu.Kernel {
	if m <= 0 || n <= 0 || k <= 0 {
		panic(fmt.Sprintf("method: invalid GEMM %s (%d×%d×%d)", label, m, n, k))
	}
	fm, fn, fk := float64(m), float64(n), float64(k)
	return coarse(gpu.Kernel{
		Name:     label,
		Class:    gpu.ClassGEMM,
		Flops:    8 * fm * fn * fk,
		Bytes:    complexBytes * (fm*fn + fm*fk + fn*fk) * gemmBytesFactor,
		Axes:     [3]float64{fm, fn, fk},
		Launches: 1,
	})
}

// exchangeGemmKernel models the exchange accumulation/ACE-projection
// GEMM passes of one H·ψ application (exchGemmSweeps blocked passes
// over spin and augmentation channels).
func exchangeGemmKernel(label string, npwx, bpr, nocc int) gpu.Kernel {
	k := gemmKernel(label, npwx, bpr, nocc)
	k.Flops *= exchGemmSweeps
	k.Bytes *= exchGemmSweeps / 4 // blocked passes re-read operands from cache
	return k
}

// eigKernel models a dense complex eigensolve of an n×n subspace
// matrix on the GPU: heavily serialized panels, so the efficiency
// response saturates with the total flop count (axis 0).
func eigKernel(label string, n int) gpu.Kernel {
	if n <= 0 {
		panic("method: invalid eigensolve size")
	}
	fn := float64(n)
	flops := eigFlopFactor * fn * fn * fn
	return coarse(gpu.Kernel{
		Name:     label,
		Class:    gpu.ClassEig,
		Flops:    flops,
		Bytes:    complexBytes * fn * fn * 12,
		Axes:     [3]float64{flops},
		Launches: math.Ceil(fn / 64),
	})
}

// nonlocalKernel models real-space nonlocal projection for all local
// bands in one H·ψ application set. Compute saturates with the total
// projection work (axis 0); bandwidth and SM activity with the
// resident band count (axis 1).
func nonlocalKernel(label string, nions, bands, nApply int) gpu.Kernel {
	proj := projectorsPerIon * float64(nions)
	work := 8 * proj * float64(bands) * nlRealPoints * float64(nApply)
	return coarse(gpu.Kernel{
		Name:     label,
		Class:    gpu.ClassNonlocal,
		Flops:    work,
		Bytes:    work / 4,
		Axes:     [3]float64{work, float64(bands)},
		Launches: float64(nApply),
	})
}

// vdwKernel models the pairwise dispersion-correction kernel (DFT-D3
// style): O(nions²) with a small prefactor, latency-dominated for all
// benchmark sizes.
func vdwKernel(nions int) gpu.Kernel {
	fi := float64(nions)
	return coarse(gpu.Kernel{
		Name:     "vdw-dispersion",
		Class:    gpu.ClassVdW,
		Flops:    600 * fi * fi,
		Bytes:    64 * fi * fi,
		Axes:     [3]float64{600 * fi * fi},
		Launches: 40,
	})
}

// chi0Kernel models the low-scaling RPA polarizability accumulation
// for one frequency point: a rank-local slab of the npw×npw update
// contracted over occupied bands × imaginary-time points. Near-peak
// GEMM work — the power peaks of the ACFDTR timeline (Figs. 3, 11).
func chi0Kernel(label string, npw, ranks, nocc int) gpu.Kernel {
	n := npw / ranks
	if n < 64 {
		n = 64
	}
	k := int(float64(nocc) * rpaTimePoints)
	return gemmKernel(label, npw, n, k)
}
