package method

import (
	"fmt"
	"math"

	"vasppower/internal/hw/gpu"
)

// Model constants — the calibration surface of the workload model.
// Flop/byte formulas are the textbook counts for each algorithm; the
// efficiency and activity curves below are fitted so the simulated
// benchmarks land in the power bands the paper publishes (DESIGN.md
// §4.3). Every constant is a statement about achievable efficiency,
// not about the amount of algorithmic work.
const (
	// coarseGrain scales kernel work (flops AND bytes, so sustained
	// power is unchanged) to account for everything the skeleton
	// schedule leaves out of each SCF iteration: orthonormalization
	// sub-steps, preconditioner applications, augmentation-charge
	// handling, forces, symmetrization. Calibrated so benchmark
	// runtimes land at the minutes scale of the real runs.
	coarseGrain = 12.0

	// fftFlopFactor inflates the textbook 5·N·log2(N) FFT flop count
	// for twiddle arithmetic and transposes. Together with the
	// occupancy caps below it fixes the compute/memory-critical clock
	// ratio of FFT kernels (≈0.22), which controls how much a deep
	// power cap can slow them.
	fftFlopFactor = 1.2
	// fftBytesPasses is the effective number of full-array DRAM
	// passes of a batched 3-D complex FFT.
	fftBytesPasses = 2.6
	// Efficiency/activity caps for band-FFT batches.
	fftCompOccCap = 0.60
	fftMemOccCap  = 0.85
	fftSMACap     = 0.92
	// Band FFTs can only batch NSIM bands (algorithmic dependency),
	// so their GPU fill is governed by NSIM·NPLWV points in flight
	// and by the number of resident bands per GPU.
	fftPointsHalfSat = 2.5e6
	bandsHalfSat     = 240.0
	// occFloor keeps degenerate cases from dividing by ~zero.
	occFloor = 0.05

	// Exchange (HSE) pair transforms batch across all band pairs:
	// their fill is governed by pairs·grid points in flight.
	exchSMACap        = 0.76
	exchMemOccCap     = 0.55
	exchCompOccCap    = 0.60
	exchPointsHalfSat = 3.7e8
	// exchGemmSweeps is the number of blocked accumulation passes the
	// exchange operator makes per pair batch (spin channels,
	// augmentation contributions, ACE projection) — the compute-bound
	// share of an HSE iteration.
	exchGemmSweeps = 55.0

	// GEMM efficiency: per-dimension half-saturation sizes.
	gemmOccCap      = 0.96
	gemmM0          = 300.0
	gemmN0          = 12.0
	gemmK0          = 24.0
	gemmBytesFactor = 1.2

	// Dense eigensolver on the GPU: heavily serialized panels.
	eigOccCap     = 0.45
	eigHalfSat    = 6e10
	eigFlopFactor = 25.0
	eigSMA        = 0.15

	// Real-space nonlocal projection.
	nlRealPoints     = 450.0
	projectorsPerIon = 9.0

	// launchLatency is the per-launch fixed cost, seconds.
	launchLatency = 6e-6

	// rpaTimePoints is the imaginary-time/frequency compression rank
	// of the low-scaling RPA polarizability accumulation.
	rpaTimePoints = 64.0

	// complexBytes is the size of one wavefunction coefficient.
	complexBytes = 16.0
)

// sat is the saturating efficiency curve work/(work+half).
func sat(work, half float64) float64 {
	if work <= 0 {
		return 0
	}
	return work / (work + half)
}

// floorOcc clamps an occupancy to [occFloor, 1].
func floorOcc(x float64) float64 {
	if x < occFloor {
		return occFloor
	}
	if x > 1 {
		return 1
	}
	return x
}

// coarse applies the schedule coarse-graining factor: more total work
// at identical sustained rates (power unchanged, duration scaled).
func coarse(k gpu.Kernel) gpu.Kernel {
	k.Flops *= coarseGrain
	k.Bytes *= coarseGrain
	k.Latency *= coarseGrain
	return k
}

// fftBatchKernel models `count` complex 3-D FFTs on an nplwv-point
// grid performed on band blocks of nsim, with bpr bands resident per
// GPU. GPU fill — and with it SM activity, achieved bandwidth, and
// therefore power — is governed by points-in-flight (nsim·nplwv) and
// band availability (bpr): the mechanism by which small workloads
// (GaAsBi-64) draw far less power than large ones (PdO4) on identical
// hardware (Fig. 5).
func fftBatchKernel(label string, count, nplwv, nsim, bpr int) gpu.Kernel {
	if count <= 0 || nplwv <= 0 || nsim <= 0 || bpr <= 0 {
		panic(fmt.Sprintf("method: invalid FFT batch %s", label))
	}
	n := float64(nplwv)
	fill := sat(float64(nsim)*n, fftPointsHalfSat) * sat(float64(bpr), bandsHalfSat)
	perFFTFlops := 5 * n * math.Log2(n) * fftFlopFactor
	perFFTBytes := complexBytes * n * fftBytesPasses
	launches := math.Ceil(float64(count) / float64(nsim))
	return coarse(gpu.Kernel{
		Name:       label,
		Flops:      float64(count) * perFFTFlops,
		Bytes:      float64(count) * perFFTBytes,
		ComputeOcc: floorOcc(fftCompOccCap * fill),
		MemOcc:     floorOcc(fftMemOccCap * fill),
		SMActivity: fftSMACap * fill,
		Latency:    launches * launchLatency,
	})
}

// exchangeFFTKernel models the HSE pair transforms: `pairs` band
// pairs, each needing `transformsPerPair` FFTs on the npwx-point
// exchange grid. Pair parallelism is enormous (bands × occupied), so
// even small systems batch thousands of transforms — which is why
// hybrid calculations run hot on systems whose plain-DFT kernels
// would idle half the GPU (B.hR105_hse vs GaAsBi-64).
func exchangeFFTKernel(label string, pairs, transformsPerPair, npwx int) gpu.Kernel {
	if pairs <= 0 || transformsPerPair <= 0 || npwx <= 0 {
		panic(fmt.Sprintf("method: invalid exchange FFT %s", label))
	}
	n := float64(npwx)
	fill := sat(float64(pairs)*n, exchPointsHalfSat)
	count := float64(pairs) * float64(transformsPerPair)
	return coarse(gpu.Kernel{
		Name:       label,
		Flops:      count * 5 * n * math.Log2(n) * fftFlopFactor,
		Bytes:      count * complexBytes * n * fftBytesPasses,
		ComputeOcc: floorOcc(exchCompOccCap * fill),
		MemOcc:     floorOcc(exchMemOccCap * fill),
		SMActivity: exchSMACap * fill,
		Latency:    math.Ceil(count/512) * launchLatency,
	})
}

// gemmKernel models a complex GEMM C(m×n) += A(m×k)·B(k×n). GEMMs are
// compute-bound: SM activity follows the achieved efficiency.
func gemmKernel(label string, m, n, k int) gpu.Kernel {
	if m <= 0 || n <= 0 || k <= 0 {
		panic(fmt.Sprintf("method: invalid GEMM %s (%d×%d×%d)", label, m, n, k))
	}
	fm, fn, fk := float64(m), float64(n), float64(k)
	occ := gemmOccCap * sat(fm, gemmM0) * sat(fn, gemmN0) * sat(fk, gemmK0)
	return coarse(gpu.Kernel{
		Name:       label,
		Flops:      8 * fm * fn * fk,
		Bytes:      complexBytes * (fm*fn + fm*fk + fn*fk) * gemmBytesFactor,
		ComputeOcc: floorOcc(occ),
		MemOcc:     0.70,
		Latency:    launchLatency,
	})
}

// exchangeGemmKernel models the exchange accumulation/ACE-projection
// GEMM passes of one H·ψ application (exchGemmSweeps blocked passes
// over spin and augmentation channels).
func exchangeGemmKernel(label string, npwx, bpr, nocc int) gpu.Kernel {
	k := gemmKernel(label, npwx, bpr, nocc)
	k.Flops *= exchGemmSweeps
	k.Bytes *= exchGemmSweeps / 4 // blocked passes re-read operands from cache
	return k
}

// eigKernel models a dense complex eigensolve of an n×n subspace
// matrix on the GPU.
func eigKernel(label string, n int) gpu.Kernel {
	if n <= 0 {
		panic("method: invalid eigensolve size")
	}
	fn := float64(n)
	flops := eigFlopFactor * fn * fn * fn
	return coarse(gpu.Kernel{
		Name:       label,
		Flops:      flops,
		Bytes:      complexBytes * fn * fn * 12,
		ComputeOcc: floorOcc(eigOccCap * sat(flops, eigHalfSat)),
		MemOcc:     0.5,
		SMActivity: eigSMA,
		Latency:    math.Ceil(fn/64) * launchLatency * 4,
	})
}

// nonlocalKernel models real-space nonlocal projection for all local
// bands in one H·ψ application set.
func nonlocalKernel(label string, nions, bands, nApply int) gpu.Kernel {
	proj := projectorsPerIon * float64(nions)
	work := 8 * proj * float64(bands) * nlRealPoints * float64(nApply)
	fill := sat(float64(bands), bandsHalfSat)
	return coarse(gpu.Kernel{
		Name:       label,
		Flops:      work,
		Bytes:      work / 4,
		ComputeOcc: floorOcc(0.5 * sat(work, 5e9)),
		MemOcc:     floorOcc(0.45 * fill),
		SMActivity: 0.5 * fill,
		Latency:    float64(nApply) * launchLatency * 2,
	})
}

// vdwKernel models the pairwise dispersion-correction kernel (DFT-D3
// style): O(nions²) with a small prefactor, latency-dominated for all
// benchmark sizes.
func vdwKernel(nions int) gpu.Kernel {
	fi := float64(nions)
	return coarse(gpu.Kernel{
		Name:       "vdw-dispersion",
		Flops:      600 * fi * fi,
		Bytes:      64 * fi * fi,
		ComputeOcc: floorOcc(0.25 * sat(600*fi*fi, 1e9)),
		MemOcc:     0.3,
		SMActivity: 0.12,
		Latency:    40 * launchLatency,
	})
}

// chi0Kernel models the low-scaling RPA polarizability accumulation
// for one frequency point: a rank-local slab of the npw×npw update
// contracted over occupied bands × imaginary-time points. Near-peak
// GEMM work — the power peaks of the ACFDTR timeline (Figs. 3, 11).
func chi0Kernel(label string, npw, ranks, nocc int) gpu.Kernel {
	n := npw / ranks
	if n < 64 {
		n = 64
	}
	k := int(float64(nocc) * rpaTimePoints)
	return gemmKernel(label, npw, n, k)
}
