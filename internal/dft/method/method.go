// Package method builds per-method execution schedules for the
// miniVASP workload model: the ordered sequence of GPU kernels, CPU
// tasks, communication operations, and host gaps that one job
// executes. The paper's §IV-D examines seven methods; each maps to a
// distinct kernel mix and therefore a distinct power signature:
//
//   - dft_rmm   (ALGO=VeryFast)  RMM-DIIS                — FFT-heavy
//   - dft_bd    (ALGO=Normal)    blocked Davidson        — FFT+GEMM
//   - dft_bdrmm (ALGO=Fast)      Davidson then RMM-DIIS  — mix
//   - dft_cg    (ALGO=All/Damped) conjugate gradient     — mix
//   - vdw       (IVDW>0)         RMM-DIIS + dispersion   — + small kernel
//   - hse       (LHFCALC)        damped CG + exact exchange — GEMM-dominated,
//     the highest sustained GPU power
//   - acfdtr    (ALGO=ACFDTR)    RPA: DFT ground state, CPU-only exact
//     diagonalization (not GPU-ported in VASP 6.4.1), then
//     polarizability GEMM sweeps — the multi-modal, high-swing
//     timeline of Figs. 3 and 11
package method

import (
	"fmt"

	"vasppower/internal/dft/incar"
	"vasppower/internal/dft/parallel"
	"vasppower/internal/hw/cpu"
	"vasppower/internal/hw/gpu"
)

// Kind identifies one of the modeled methods.
type Kind int

// The seven methods of the paper's Fig. 9, in its naming.
const (
	DFTRMM Kind = iota
	DFTBD
	DFTBDRMM
	DFTCG
	VDW
	HSE
	ACFDTR
)

// Kinds lists all methods in display order.
func Kinds() []Kind { return []Kind{DFTRMM, DFTBD, DFTBDRMM, DFTCG, VDW, HSE, ACFDTR} }

func (k Kind) String() string {
	switch k {
	case DFTRMM:
		return "dft_rmm"
	case DFTBD:
		return "dft_bd"
	case DFTBDRMM:
		return "dft_bdrmm"
	case DFTCG:
		return "dft_cg"
	case VDW:
		return "vdw"
	case HSE:
		return "hse"
	case ACFDTR:
		return "acfdtr"
	}
	return fmt.Sprintf("method(%d)", int(k))
}

// FromParams derives the method from INCAR parameters, mirroring how
// VASP dispatches on ALGO/LHFCALC/IVDW.
func FromParams(p incar.Params) (Kind, error) {
	switch {
	case p.Algo == incar.AlgoACFDT || p.Algo == incar.AlgoACFDTR:
		return ACFDTR, nil
	case p.LHFCalc:
		return HSE, nil
	case p.IVDW > 0:
		return VDW, nil
	}
	switch p.Algo {
	case incar.AlgoNormal:
		return DFTBD, nil
	case incar.AlgoVeryFast:
		return DFTRMM, nil
	case incar.AlgoFast:
		return DFTBDRMM, nil
	case incar.AlgoDamped, incar.AlgoAll:
		return DFTCG, nil
	case incar.AlgoExact:
		return ACFDTR, nil
	}
	return 0, fmt.Errorf("method: cannot map ALGO=%s", p.Algo)
}

// StepKind distinguishes what a schedule step occupies.
type StepKind int

// Step kinds.
const (
	StepGPU  StepKind = iota // all GPUs run Kernel concurrently
	StepCPU                  // host computes, GPUs idle
	StepComm                 // collective communication
	StepHost                 // serial host work / launch gaps, all quiet
)

// CommOp is a collective kind.
type CommOp int

// Collective operations used by the schedules.
const (
	CommAllReduce CommOp = iota
	CommAllToAll
	CommBroadcast
)

// CommScope selects which ranks participate.
type CommScope int

// Scopes: one KPAR group, or the whole job.
const (
	ScopeGroup CommScope = iota
	ScopeAll
)

// Comm describes one collective.
type Comm struct {
	Op    CommOp
	Bytes float64
	Scope CommScope
}

// Step is one entry of a schedule.
type Step struct {
	Label       string
	Kind        StepKind
	GPU         gpu.Kernel // StepGPU
	CPU         cpu.Task   // StepCPU
	Comm        Comm       // StepComm
	HostSeconds float64    // StepHost
	MemActivity float64    // DDR activity ∈ [0,1] during the step
	Phase       string     // coarse phase label ("scf", "exact-diag", "rpa")
}

// Schedule is the full ordered step list of one job (all SCF
// iterations flattened).
type Schedule struct {
	Name  string
	Steps []Step
}

// Config carries everything a schedule builder needs.
type Config struct {
	Kind        Kind
	NBands      int
	NPW         int // plane waves per band
	NPLWV       int // dense grid points
	NElectrons  int
	NIons       int
	NELM        int // SCF iterations to run
	NSim        int // band blocking
	NBandsExact int // ACFDTR only
	Decomp      parallel.Decomposition
}

// Validate rejects inconsistent configurations.
func (c Config) Validate() error {
	switch {
	case c.NBands <= 0 || c.NPW <= 0 || c.NPLWV <= 0:
		return fmt.Errorf("method: non-positive problem size (nbands=%d npw=%d nplwv=%d)", c.NBands, c.NPW, c.NPLWV)
	case c.NElectrons <= 0 || c.NIons <= 0:
		return fmt.Errorf("method: non-positive system size")
	case c.NELM <= 0:
		return fmt.Errorf("method: NELM %d", c.NELM)
	case c.NSim <= 0:
		return fmt.Errorf("method: NSIM %d", c.NSim)
	case c.Decomp.Ranks <= 0:
		return fmt.Errorf("method: unresolved decomposition")
	case c.NBands < c.NElectrons/2:
		return fmt.Errorf("method: NBANDS %d below occupied count %d", c.NBands, c.NElectrons/2)
	}
	if c.Kind == ACFDTR && c.NBandsExact <= 0 {
		return fmt.Errorf("method: ACFDTR requires NBANDSEXACT")
	}
	return nil
}

// Build constructs the schedule for the configuration.
func Build(c Config) (*Schedule, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	b := &builder{cfg: c}
	switch c.Kind {
	case DFTRMM, DFTBD, DFTBDRMM, DFTCG, VDW:
		b.buildSCF(c.Kind)
	case HSE:
		b.buildHSE()
	case ACFDTR:
		b.buildACFDTR()
	default:
		return nil, fmt.Errorf("method: unknown kind %v", c.Kind)
	}
	return &Schedule{Name: c.Kind.String(), Steps: b.steps}, nil
}

// GPUSeconds returns the summed uncapped-roofline estimate of GPU step
// durations (diagnostic; the solver computes real durations).
func (s *Schedule) GPUSeconds(g *gpu.GPU) float64 {
	var t float64
	for _, st := range s.Steps {
		if st.Kind == StepGPU {
			t += g.UncappedDuration(st.GPU)
		}
	}
	return t
}

// CountKind returns how many steps have the given kind.
func (s *Schedule) CountKind(k StepKind) int {
	n := 0
	for _, st := range s.Steps {
		if st.Kind == k {
			n++
		}
	}
	return n
}

// MemoryPerGPU estimates the per-GPU HBM footprint of the
// configuration, in bytes: the local band block (orbitals plus their
// H-applications), the dense grids, plus method-specific extras — the
// replicated occupied-orbital set for exact exchange and the
// polarizability slab and exact-orbital block for RPA. This is what
// decides whether a job fits the 40 GB devices the paper studies.
func (c Config) MemoryPerGPU() float64 {
	const complexB = 16.0
	bpr := float64(c.Decomp.BandsPerRank)
	npw := float64(c.NPW)
	mem := 2 * bpr * npw * complexB  // ψ and Hψ blocks
	mem += 12 * float64(c.NPLWV) * 8 // density, potentials, work grids
	switch c.Kind {
	case HSE:
		// The occupied set is kept resident (real-space, exchange grid)
		// on every GPU of the group.
		npwx := float64(c.NPLWV) / 2
		mem += float64(c.NElectrons/2) * npwx * complexB
	case ACFDTR:
		// Polarizability slab (npw × npw/ranks) plus the exact-orbital
		// block streamed through each rank.
		ranks := float64(c.Decomp.Ranks)
		mem += npw * (npw / ranks) * complexB
		mem += float64(c.NBandsExact) * npw * complexB / ranks
	}
	return mem
}
