package method

import (
	"testing"

	"vasppower/internal/dft/incar"
	"vasppower/internal/dft/parallel"
	"vasppower/internal/hw/gpu"
)

func testConfig(kind Kind) Config {
	d, err := parallel.Decompose(640, 1, 1, 4, 1)
	if err != nil {
		panic(err)
	}
	c := Config{
		Kind:       kind,
		NBands:     640,
		NPW:        33280,
		NPLWV:      512000,
		NElectrons: 1020,
		NIons:      255,
		NELM:       5,
		NSim:       4,
		Decomp:     d,
	}
	if kind == ACFDTR {
		c.NBandsExact = 8000
	}
	return c
}

func TestBuildAllKinds(t *testing.T) {
	for _, k := range Kinds() {
		s, err := Build(testConfig(k))
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if len(s.Steps) == 0 {
			t.Fatalf("%v: empty schedule", k)
		}
		if s.Name != k.String() {
			t.Fatalf("%v: name %q", k, s.Name)
		}
		// Every GPU step carries a valid kernel.
		for _, st := range s.Steps {
			switch st.Kind {
			case StepGPU:
				if err := st.GPU.Validate(); err != nil {
					t.Fatalf("%v: step %q: %v", k, st.Label, err)
				}
			case StepComm:
				if st.Comm.Bytes <= 0 {
					t.Fatalf("%v: comm step %q has no bytes", k, st.Label)
				}
			case StepHost:
				if st.HostSeconds <= 0 {
					t.Fatalf("%v: host step %q has no duration", k, st.Label)
				}
			}
			if st.MemActivity < 0 || st.MemActivity > 1 {
				t.Fatalf("%v: step %q mem activity %v", k, st.Label, st.MemActivity)
			}
		}
	}
}

func TestScheduleScalesWithNELM(t *testing.T) {
	c := testConfig(DFTRMM)
	c.NELM = 5
	s5, _ := Build(c)
	c.NELM = 10
	s10, _ := Build(c)
	if len(s10.Steps) <= len(s5.Steps) {
		t.Fatal("schedule does not grow with NELM")
	}
	// Step count per iteration is constant for the plain SCF methods.
	d10 := len(s10.Steps) - 2 // minus setup/finalize
	d5 := len(s5.Steps) - 2
	if d10 != 2*d5 {
		t.Fatalf("steps per iteration not constant: %d vs %d", d5, d10)
	}
}

func TestScheduleScalesWithKPoints(t *testing.T) {
	c := testConfig(DFTRMM)
	d, err := parallel.Decompose(640, 16, 1, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	c.Decomp = d
	s, _ := Build(c)
	base, _ := Build(testConfig(DFTRMM))
	if len(s.Steps) <= len(base.Steps) {
		t.Fatal("multi-k-point schedule not longer")
	}
}

func TestHSEContainsExchangeSteps(t *testing.T) {
	s, err := Build(testConfig(HSE))
	if err != nil {
		t.Fatal(err)
	}
	exch := 0
	for _, st := range s.Steps {
		if st.Kind == StepGPU && containsSub(st.Label, "exch") {
			exch++
		}
	}
	if exch == 0 {
		t.Fatal("HSE schedule has no exchange steps")
	}
}

func TestHSEHeavierThanDFT(t *testing.T) {
	g := gpu.New(gpu.A100SXM40GB(), nil, 0, nil, gpu.DefaultVariability())
	dft, _ := Build(testConfig(DFTCG))
	hse, _ := Build(testConfig(HSE))
	if hse.GPUSeconds(g) < 5*dft.GPUSeconds(g) {
		t.Fatalf("HSE GPU time (%v) should dwarf plain DFT (%v)",
			hse.GPUSeconds(g), dft.GPUSeconds(g))
	}
}

func TestACFDTRHasThreePhases(t *testing.T) {
	s, err := Build(testConfig(ACFDTR))
	if err != nil {
		t.Fatal(err)
	}
	phases := map[string]bool{}
	cpuSteps := 0
	for _, st := range s.Steps {
		phases[st.Phase] = true
		if st.Kind == StepCPU {
			cpuSteps++
			if st.CPU.Flops <= 0 {
				t.Fatal("CPU step has no work")
			}
		}
	}
	for _, want := range []string{"scf", "exact-diag", "rpa"} {
		if !phases[want] {
			t.Fatalf("ACFDTR missing phase %q (have %v)", want, phases)
		}
	}
	if cpuSteps == 0 {
		t.Fatal("ACFDTR has no CPU-only exact-diagonalization step")
	}
}

func TestVDWAddsDispersionKernel(t *testing.T) {
	s, _ := Build(testConfig(VDW))
	found := false
	for _, st := range s.Steps {
		if st.Kind == StepGPU && st.GPU.Name == "vdw-dispersion" {
			found = true
		}
	}
	if !found {
		t.Fatal("VDW schedule lacks the dispersion kernel")
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	good := testConfig(DFTRMM)
	cases := []func(*Config){
		func(c *Config) { c.NBands = 0 },
		func(c *Config) { c.NPW = 0 },
		func(c *Config) { c.NPLWV = 0 },
		func(c *Config) { c.NElectrons = 0 },
		func(c *Config) { c.NIons = 0 },
		func(c *Config) { c.NELM = 0 },
		func(c *Config) { c.NSim = 0 },
		func(c *Config) { c.Decomp = parallel.Decomposition{} },
		func(c *Config) { c.NBands = c.NElectrons/2 - 10 },
		func(c *Config) { c.Kind = ACFDTR; c.NBandsExact = 0 },
	}
	for i, mutate := range cases {
		c := good
		mutate(&c)
		if _, err := Build(c); err == nil {
			t.Fatalf("case %d accepted invalid config", i)
		}
	}
}

func TestFromParams(t *testing.T) {
	cases := []struct {
		p    incar.Params
		want Kind
	}{
		{incar.Params{Algo: incar.AlgoVeryFast}, DFTRMM},
		{incar.Params{Algo: incar.AlgoNormal}, DFTBD},
		{incar.Params{Algo: incar.AlgoFast}, DFTBDRMM},
		{incar.Params{Algo: incar.AlgoDamped}, DFTCG},
		{incar.Params{Algo: incar.AlgoAll}, DFTCG},
		{incar.Params{Algo: incar.AlgoDamped, LHFCalc: true}, HSE},
		{incar.Params{Algo: incar.AlgoVeryFast, IVDW: 11}, VDW},
		{incar.Params{Algo: incar.AlgoACFDTR}, ACFDTR},
		{incar.Params{Algo: incar.AlgoACFDT}, ACFDTR},
		{incar.Params{Algo: incar.AlgoExact}, ACFDTR},
	}
	for _, c := range cases {
		got, err := FromParams(c.p)
		if err != nil || got != c.want {
			t.Fatalf("FromParams(%+v) = %v, %v; want %v", c.p, got, err, c.want)
		}
	}
	if _, err := FromParams(incar.Params{Algo: "Bogus"}); err == nil {
		t.Fatal("bogus algo accepted")
	}
}

func TestKindStrings(t *testing.T) {
	want := map[Kind]string{
		DFTRMM: "dft_rmm", DFTBD: "dft_bd", DFTBDRMM: "dft_bdrmm",
		DFTCG: "dft_cg", VDW: "vdw", HSE: "hse", ACFDTR: "acfdtr",
	}
	for k, s := range want {
		if k.String() != s {
			t.Fatalf("%d.String() = %q, want %q", int(k), k.String(), s)
		}
	}
	if Kind(99).String() == "" {
		t.Fatal("unknown kind should still render")
	}
}

func TestKernelBuildersScale(t *testing.T) {
	small := fftBatchKernel("s", 10, 100000, 4, 100)
	big := fftBatchKernel("b", 10, 800000, 4, 100)
	if big.Flops <= small.Flops || big.Bytes <= small.Bytes {
		t.Fatal("FFT kernel does not scale with grid")
	}
	model := gpu.DefaultEfficiency()
	p1, err := model.Resolve(gemmKernel("g1", 100, 100, 100))
	if err != nil {
		t.Fatal(err)
	}
	p2, err := model.Resolve(gemmKernel("g2", 1000, 1000, 1000))
	if err != nil {
		t.Fatal(err)
	}
	if p2.ComputeOcc <= p1.ComputeOcc {
		t.Fatal("GEMM occupancy does not grow with size")
	}
	if p2.ComputeOcc > model.Classes[gpu.ClassGEMM].Compute.Cap {
		t.Fatal("GEMM occupancy exceeds cap")
	}
}

func TestCountKind(t *testing.T) {
	s, _ := Build(testConfig(DFTRMM))
	if s.CountKind(StepGPU) == 0 || s.CountKind(StepComm) == 0 || s.CountKind(StepHost) == 0 {
		t.Fatal("expected GPU, comm, and host steps")
	}
	if s.CountKind(StepCPU) != 0 {
		t.Fatal("plain DFT should have no CPU-only steps")
	}
}

func containsSub(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestMemoryPerGPU(t *testing.T) {
	dft := testConfig(DFTRMM)
	hse := testConfig(HSE)
	rpa := testConfig(ACFDTR)
	if dft.MemoryPerGPU() <= 0 {
		t.Fatal("zero footprint")
	}
	// Exchange keeps the occupied set resident: HSE needs much more
	// memory than plain DFT on the same system (the paper notes
	// higher-order methods "require more memory", §IV-D).
	if hse.MemoryPerGPU() < 2*dft.MemoryPerGPU() {
		t.Fatalf("HSE footprint %e not ≫ DFT %e", hse.MemoryPerGPU(), dft.MemoryPerGPU())
	}
	if rpa.MemoryPerGPU() <= dft.MemoryPerGPU() {
		t.Fatal("RPA footprint should exceed plain DFT")
	}
	// More ranks shrink the band block.
	d8, err := parallel.Decompose(640, 1, 8, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	wide := dft
	wide.Decomp = d8
	if wide.MemoryPerGPU() >= dft.MemoryPerGPU() {
		t.Fatal("footprint did not shrink with ranks")
	}
}
