package method

import "vasppower/internal/hw/gpu"

// Retained reference resolution: the efficiency constants that lived
// inline in the kernel builders before the platform-owned table
// existed, preserved verbatim (values, evaluation order, floor sites)
// as an oracle for the differential tests. The production path never
// touches these — they exist so `go test` proves the default
// perlmutter-a100 table reproduces the calibrated pre-refactor
// resolution bit-for-bit on every schedule the model can emit.
const (
	legacyFFTCompOccCap    = 0.60
	legacyFFTMemOccCap     = 0.85
	legacyFFTSMACap        = 0.92
	legacyFFTPointsHalfSat = 2.5e6
	legacyBandsHalfSat     = 240.0
	legacyOccFloor         = 0.05

	legacyExchSMACap        = 0.76
	legacyExchMemOccCap     = 0.55
	legacyExchCompOccCap    = 0.60
	legacyExchPointsHalfSat = 3.7e8

	legacyGemmOccCap = 0.96
	legacyGemmM0     = 300.0
	legacyGemmN0     = 12.0
	legacyGemmK0     = 24.0

	legacyEigOccCap  = 0.45
	legacyEigHalfSat = 6e10
	legacyEigSMA     = 0.15

	legacyLaunchLatency = 6e-6
)

// legacySat is the saturating efficiency curve work/(work+half).
func legacySat(work, half float64) float64 {
	if work <= 0 {
		return 0
	}
	return work / (work + half)
}

// legacyFloorOcc clamps an occupancy to [legacyOccFloor, 1].
func legacyFloorOcc(x float64) float64 {
	if x < legacyOccFloor {
		return legacyOccFloor
	}
	if x > 1 {
		return 1
	}
	return x
}

// legacyResolve maps a work descriptor to an execution profile using
// the pre-table constants, reproducing the original builders'
// arithmetic exactly: the same saturation inputs (the descriptor's
// Axes carry what the builders fed to sat), the same multiplication
// order, floorOcc applied only where the builders applied it, and the
// same latency chain (launches × 6 µs × per-class factor × the
// schedule coarse-graining). Returns false for classes the old
// builders never emitted.
func legacyResolve(k gpu.Kernel) (gpu.ExecProfile, bool) {
	lat := k.Launches * legacyLaunchLatency
	scale := func(factor float64) float64 {
		l := lat
		if factor != 0 {
			l *= factor
		}
		if k.LatencyScale != 0 {
			l *= k.LatencyScale
		}
		return l
	}
	switch k.Class {
	case gpu.ClassFFT:
		fill := legacySat(k.Axes[0], legacyFFTPointsHalfSat) * legacySat(k.Axes[1], legacyBandsHalfSat)
		return gpu.ExecProfile{
			ComputeOcc: legacyFloorOcc(legacyFFTCompOccCap * fill),
			MemOcc:     legacyFloorOcc(legacyFFTMemOccCap * fill),
			SMActivity: legacyFFTSMACap * fill,
			Latency:    scale(0),
			PowerScale: 1,
		}, true
	case gpu.ClassExchangeFFT:
		fill := legacySat(k.Axes[0], legacyExchPointsHalfSat)
		return gpu.ExecProfile{
			ComputeOcc: legacyFloorOcc(legacyExchCompOccCap * fill),
			MemOcc:     legacyFloorOcc(legacyExchMemOccCap * fill),
			SMActivity: legacyExchSMACap * fill,
			Latency:    scale(0),
			PowerScale: 1,
		}, true
	case gpu.ClassGEMM:
		occ := legacyGemmOccCap * legacySat(k.Axes[0], legacyGemmM0) *
			legacySat(k.Axes[1], legacyGemmN0) * legacySat(k.Axes[2], legacyGemmK0)
		return gpu.ExecProfile{
			ComputeOcc: legacyFloorOcc(occ),
			MemOcc:     0.70,
			Latency:    scale(0),
			PowerScale: 1,
		}, true
	case gpu.ClassEig:
		return gpu.ExecProfile{
			ComputeOcc: legacyFloorOcc(legacyEigOccCap * legacySat(k.Axes[0], legacyEigHalfSat)),
			MemOcc:     0.5,
			SMActivity: legacyEigSMA,
			Latency:    scale(4),
			PowerScale: 1,
		}, true
	case gpu.ClassNonlocal:
		fill := legacySat(k.Axes[1], legacyBandsHalfSat)
		return gpu.ExecProfile{
			ComputeOcc: legacyFloorOcc(0.5 * legacySat(k.Axes[0], 5e9)),
			MemOcc:     legacyFloorOcc(0.45 * fill),
			SMActivity: 0.5 * fill,
			Latency:    scale(2),
			PowerScale: 1,
		}, true
	case gpu.ClassVdW:
		return gpu.ExecProfile{
			ComputeOcc: legacyFloorOcc(0.25 * legacySat(k.Axes[0], 1e9)),
			MemOcc:     0.3,
			SMActivity: 0.12,
			Latency:    scale(0),
			PowerScale: 1,
		}, true
	}
	return gpu.ExecProfile{}, false
}
