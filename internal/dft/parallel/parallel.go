// Package parallel models VASP's parallel decomposition (§IV-C):
// the primary level distributes bands (NBANDS) across MPI ranks — one
// rank per GPU — optionally split first into KPAR k-point groups; the
// secondary level distributes plane waves across the cores of each
// GPU. Increasing node count therefore shrinks bands-per-GPU while
// leaving per-band plane-wave work unchanged, which is why power stays
// flat with concurrency until communication time erodes computational
// intensity (Figs. 4, 5, 8).
package parallel

import (
	"fmt"

	"vasppower/internal/interconnect"
)

// Decomposition is the resolved parallel layout of one job.
type Decomposition struct {
	Nodes        int
	RanksPerNode int
	Ranks        int // total MPI ranks (= GPUs)

	KPar            int // number of k-point groups
	RanksPerGroup   int
	KPointsPerGroup int // k-points each group processes sequentially
	BandsPerRank    int // bands owned by each rank within its group

	// Topology spans the whole job (density all-reduce); GroupTopology
	// spans one KPAR group (subspace all-reduces).
	Topology      interconnect.Topology
	GroupTopology interconnect.Topology
}

// Decompose resolves the layout for nbands bands and nkpts (reduced)
// k-points over the given nodes. ranksPerNode is 4 on Perlmutter (one
// rank per GPU).
func Decompose(nbands, nkpts, nodes, ranksPerNode, kpar int) (Decomposition, error) {
	switch {
	case nbands <= 0:
		return Decomposition{}, fmt.Errorf("parallel: nbands %d", nbands)
	case nkpts <= 0:
		return Decomposition{}, fmt.Errorf("parallel: nkpts %d", nkpts)
	case nodes <= 0 || ranksPerNode <= 0:
		return Decomposition{}, fmt.Errorf("parallel: invalid layout %d nodes × %d ranks", nodes, ranksPerNode)
	case kpar <= 0:
		return Decomposition{}, fmt.Errorf("parallel: KPAR %d", kpar)
	}
	ranks := nodes * ranksPerNode
	if kpar > ranks {
		return Decomposition{}, fmt.Errorf("parallel: KPAR %d exceeds %d ranks", kpar, ranks)
	}
	if ranks%kpar != 0 {
		return Decomposition{}, fmt.Errorf("parallel: KPAR %d does not divide %d ranks", kpar, ranks)
	}
	if kpar > nkpts {
		return Decomposition{}, fmt.Errorf("parallel: KPAR %d exceeds %d k-points", kpar, nkpts)
	}
	rpg := ranks / kpar
	if nbands < rpg {
		return Decomposition{}, fmt.Errorf("parallel: %d bands cannot occupy %d ranks per group", nbands, rpg)
	}
	d := Decomposition{
		Nodes:           nodes,
		RanksPerNode:    ranksPerNode,
		Ranks:           ranks,
		KPar:            kpar,
		RanksPerGroup:   rpg,
		KPointsPerGroup: ceilDiv(nkpts, kpar),
		BandsPerRank:    ceilDiv(nbands, rpg),
		Topology:        interconnect.Topology{Nodes: nodes, RanksPerNode: ranksPerNode},
	}
	// A KPAR group occupies rpg consecutive ranks: within a node when
	// rpg ≤ ranksPerNode, across ceil(rpg/ranksPerNode) nodes otherwise.
	if rpg <= ranksPerNode {
		d.GroupTopology = interconnect.Topology{Nodes: 1, RanksPerNode: rpg}
	} else {
		d.GroupTopology = interconnect.Topology{
			Nodes:        ceilDiv(rpg, ranksPerNode),
			RanksPerNode: ranksPerNode,
		}
	}
	return d, nil
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// String renders the layout compactly.
func (d Decomposition) String() string {
	return fmt.Sprintf("%d nodes × %d ranks, KPAR=%d (%d ranks/group, %d kpts/group, %d bands/rank)",
		d.Nodes, d.RanksPerNode, d.KPar, d.RanksPerGroup, d.KPointsPerGroup, d.BandsPerRank)
}
