package parallel

import (
	"strings"
	"testing"
)

func TestDecomposeSingleNodeGamma(t *testing.T) {
	d, err := Decompose(640, 1, 1, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d.Ranks != 4 || d.RanksPerGroup != 4 || d.BandsPerRank != 160 {
		t.Fatalf("decomposition wrong: %+v", d)
	}
	if d.KPointsPerGroup != 1 {
		t.Fatalf("kpts per group = %d", d.KPointsPerGroup)
	}
	if d.GroupTopology.Nodes != 1 || d.GroupTopology.RanksPerNode != 4 {
		t.Fatalf("group topology wrong: %+v", d.GroupTopology)
	}
}

func TestDecomposeKPar(t *testing.T) {
	// GaAsBi-64 layout: 192 bands, 16 reduced k-points, KPAR=2, 1 node.
	d, err := Decompose(192, 16, 1, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d.RanksPerGroup != 2 || d.BandsPerRank != 96 || d.KPointsPerGroup != 8 {
		t.Fatalf("GaAsBi layout wrong: %+v", d)
	}
	if d.GroupTopology.Nodes != 1 || d.GroupTopology.RanksPerNode != 2 {
		t.Fatalf("group topology wrong: %+v", d.GroupTopology)
	}
}

func TestDecomposeMultiNodeGroups(t *testing.T) {
	// 4 nodes, KPAR=2: each group spans 2 nodes.
	d, err := Decompose(640, 4, 4, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d.RanksPerGroup != 8 || d.GroupTopology.Nodes != 2 {
		t.Fatalf("multi-node group wrong: %+v", d)
	}
	if d.Topology.Nodes != 4 {
		t.Fatalf("full topology wrong: %+v", d.Topology)
	}
}

func TestBandsPerRankShrinksWithNodes(t *testing.T) {
	prev := 1 << 30
	for _, nodes := range []int{1, 2, 4, 8, 16} {
		d, err := Decompose(640, 1, nodes, 4, 1)
		if err != nil {
			t.Fatal(err)
		}
		if d.BandsPerRank >= prev {
			t.Fatalf("bands per rank did not shrink at %d nodes", nodes)
		}
		prev = d.BandsPerRank
	}
}

func TestDecomposeErrors(t *testing.T) {
	cases := []struct {
		name                              string
		nb, nk, nodes, ranksPerNode, kpar int
	}{
		{"no bands", 0, 1, 1, 4, 1},
		{"no kpts", 64, 0, 1, 4, 1},
		{"no nodes", 64, 1, 0, 4, 1},
		{"no kpar", 64, 1, 1, 4, 0},
		{"kpar > ranks", 64, 64, 1, 4, 8},
		{"kpar not dividing", 64, 4, 1, 4, 3},
		{"kpar > kpts", 64, 1, 1, 4, 2},
		{"bands < ranks per group", 2, 1, 1, 4, 1},
	}
	for _, c := range cases {
		if _, err := Decompose(c.nb, c.nk, c.nodes, c.ranksPerNode, c.kpar); err == nil {
			t.Fatalf("case %q accepted", c.name)
		}
	}
}

func TestCeilingBehavior(t *testing.T) {
	// 100 bands over 8 ranks: 13 each (ceiling).
	d, err := Decompose(100, 1, 2, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d.BandsPerRank != 13 {
		t.Fatalf("bands per rank = %d, want 13", d.BandsPerRank)
	}
	// 5 k-points over 2 groups: 3 each.
	d, err = Decompose(100, 5, 2, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d.KPointsPerGroup != 3 {
		t.Fatalf("kpts per group = %d, want 3", d.KPointsPerGroup)
	}
}

func TestString(t *testing.T) {
	d, _ := Decompose(640, 1, 2, 4, 1)
	s := d.String()
	if !strings.Contains(s, "2 nodes") || !strings.Contains(s, "KPAR=1") {
		t.Fatalf("String output unhelpful: %s", s)
	}
}
