package solver

import (
	"fmt"

	"vasppower/internal/dft/method"
	"vasppower/internal/hw/gpu"
	"vasppower/internal/hw/node"
	"vasppower/internal/interconnect"
	"vasppower/internal/rng"
	"vasppower/internal/timeseries"
)

// Prepared is the cap-independent half of a job, split out so a sweep
// can pay for it once: the validated schedule, every unique GPU work
// descriptor resolved to its ExecProfile through the (shared) platform
// efficiency table, CPU-step executions, collective durations priced
// on the fabric, and the per-step component powers that do not depend
// on the GPUs' cap state. What remains per Run is exactly the
// cap-dependent part — the cap solver's clock decision per unique
// (kernel, device) pair, the jitter draws, and trace recording.
//
// The split leans on a structural fact of the oracle (Run): a step's
// wall time and recorded powers depend on the cap only through
// gpu.Execution values, and those depend only on (kernel, device,
// device cap state) — never on trace history or step position. So a
// table of executions per unique kernel × device, rebuilt when the cap
// changes, reproduces the oracle's arithmetic exactly; the
// differential tests in prepared_test.go pin every float.
//
// A Prepared is not safe for concurrent use.
type Prepared struct {
	job Job

	// Unique GPU work descriptors of the schedule and their resolved
	// profiles (the platform efficiency table is shared by every device
	// of a run, so one resolution per kernel serves them all).
	kernels  []gpu.Kernel
	profiles []gpu.ExecProfile

	steps []prepStep

	// Per-node cap-independent constants.
	hostOrchW []float64   // CPU host-orchestration power
	gpuIdle   [][]float64 // per-device board idle power
	hbmIdle   [][]float64 // per-device HBM-domain idle share
	commGPUs  [][]float64 // gpuIdle + commGPUPower, precomputed

	// solvers[k][ni][gi] carries kernel k's hoisted cap-solver
	// constants for node ni's device gi; execs[k][ni][gi] is the
	// corresponding Execution under the current cap/clock state,
	// rebuilt lazily after a Set* call.
	solvers    [][][]gpu.CapSolver
	execs      [][][]gpu.Execution
	execsValid bool

	// Reusable scratch, so steady-state Run calls allocate nothing.
	gpuCP        []node.ComponentPowers // per node, slices preallocated
	phases       map[string]float64
	sumScratch   timeseries.Trace
	totalScratch timeseries.Trace
	ptrScratch   []*timeseries.Trace
}

// prepStep is one schedule step with its cap-independent work done.
type prepStep struct {
	kind   method.StepKind
	phase  string
	kernel int     // GPU steps: index into kernels/profiles/execs
	preDur float64 // pre-jitter wall duration (CPU barrier max, comm, host)
	// memW is the per-node DDR power of a GPU step (the rest of a GPU
	// step's powers are cap-dependent and assembled per Run).
	memW []float64
	// cps carries the per-node component powers of CPU/comm/host
	// steps, which are fully cap-independent. Record copies values, so
	// sharing these across Run calls is safe.
	cps []node.ComponentPowers
}

// Prepare validates the job and performs every cap-independent piece
// of its execution. The job's Noise field is ignored — each Run call
// takes its own stream, which is what lets one Prepared serve many
// repeats and cap points.
func Prepare(job Job) (*Prepared, error) {
	if job.Schedule == nil || len(job.Schedule.Steps) == 0 {
		return nil, fmt.Errorf("solver: empty schedule")
	}
	if len(job.Nodes) == 0 {
		return nil, fmt.Errorf("solver: no nodes")
	}
	if job.Decomp.Nodes != len(job.Nodes) {
		return nil, fmt.Errorf("solver: decomposition spans %d nodes but %d allocated",
			job.Decomp.Nodes, len(job.Nodes))
	}
	job.Noise = nil
	p := &Prepared{job: job}
	nn := len(job.Nodes)
	p.hostOrchW = make([]float64, nn)
	p.gpuIdle = make([][]float64, nn)
	p.hbmIdle = make([][]float64, nn)
	p.commGPUs = make([][]float64, nn)
	p.gpuCP = make([]node.ComponentPowers, nn)

	// One efficiency table must serve every device: the per-kernel
	// resolution below is hoisted out of the per-device loop on that
	// basis.
	var model *gpu.EfficiencyModel
	for ni, n := range job.Nodes {
		p.hostOrchW[ni] = n.CPU.HostOrchestrationPower()
		g := n.NumGPUs()
		p.gpuIdle[ni] = make([]float64, g)
		p.hbmIdle[ni] = make([]float64, g)
		p.commGPUs[ni] = make([]float64, g)
		for gi, dev := range n.GPUs {
			p.gpuIdle[ni][gi] = dev.IdlePower()
			p.hbmIdle[ni][gi] = dev.HBMIdlePower()
			p.commGPUs[ni][gi] = dev.IdlePower() + commGPUPower
			if model == nil {
				model = dev.Model()
			} else if dev.Model() != model {
				return nil, fmt.Errorf("solver: nodes mix efficiency tables (prepare requires one table per job)")
			}
		}
		p.gpuCP[ni] = node.ComponentPowers{
			GPUs:    make([]float64, g),
			GPUMems: make([]float64, g),
		}
	}

	kernelIdx := make(map[gpu.Kernel]int)
	p.steps = make([]prepStep, 0, len(job.Schedule.Steps))
	for _, st := range job.Schedule.Steps {
		ps := prepStep{kind: st.Kind, phase: st.Phase, kernel: -1}
		switch st.Kind {
		case method.StepGPU:
			ki, ok := kernelIdx[st.GPU]
			if !ok {
				if err := st.GPU.Validate(); err != nil {
					return nil, err
				}
				if model == nil {
					return nil, fmt.Errorf("solver: GPU step %q on a job with no GPUs", st.Label)
				}
				prof, err := model.Resolve(st.GPU)
				if err != nil {
					return nil, err
				}
				ki = len(p.kernels)
				kernelIdx[st.GPU] = ki
				p.kernels = append(p.kernels, st.GPU)
				p.profiles = append(p.profiles, prof)
			}
			ps.kernel = ki
			ps.memW = make([]float64, nn)
			for ni, n := range job.Nodes {
				ps.memW[ni] = memPower(n, st.MemActivity)
			}
		case method.StepCPU:
			ps.cps = make([]node.ComponentPowers, nn)
			maxDur := 0.0
			for ni, n := range job.Nodes {
				ex := n.CPU.Run(st.CPU)
				if ex.Duration > maxDur {
					maxDur = ex.Duration
				}
				ps.cps[ni] = node.ComponentPowers{
					CPU:  ex.Power,
					Mem:  memPower(n, st.MemActivity),
					GPUs: p.gpuIdle[ni],
				}
			}
			ps.preDur = maxDur
		case method.StepComm:
			var topo interconnect.Topology
			switch st.Comm.Scope {
			case method.ScopeGroup:
				topo = job.Decomp.GroupTopology
			default:
				topo = job.Decomp.Topology
			}
			switch st.Comm.Op {
			case method.CommAllReduce:
				ps.preDur = job.Fabric.AllReduce(st.Comm.Bytes, topo)
			case method.CommAllToAll:
				ps.preDur = job.Fabric.AllToAll(st.Comm.Bytes/float64(topo.Ranks()), topo)
			case method.CommBroadcast:
				ps.preDur = job.Fabric.Broadcast(st.Comm.Bytes, topo)
			default:
				return nil, fmt.Errorf("solver: unknown comm op %v", st.Comm.Op)
			}
			ps.cps = make([]node.ComponentPowers, nn)
			for ni, n := range job.Nodes {
				ps.cps[ni] = node.ComponentPowers{
					CPU:  p.hostOrchW[ni],
					Mem:  memPower(n, st.MemActivity),
					GPUs: p.commGPUs[ni],
				}
			}
		case method.StepHost:
			ps.preDur = st.HostSeconds
			ps.cps = make([]node.ComponentPowers, nn)
			for ni, n := range job.Nodes {
				ps.cps[ni] = node.ComponentPowers{
					CPU:  p.hostOrchW[ni],
					Mem:  memPower(n, st.MemActivity),
					GPUs: p.gpuIdle[ni],
				}
			}
		default:
			return nil, fmt.Errorf("solver: unknown step kind %v", st.Kind)
		}
		p.steps = append(p.steps, ps)
	}

	if len(p.kernels) > 0 {
		p.solvers = make([][][]gpu.CapSolver, len(p.kernels))
		p.execs = make([][][]gpu.Execution, len(p.kernels))
		for ki := range p.execs {
			p.solvers[ki] = make([][]gpu.CapSolver, nn)
			p.execs[ki] = make([][]gpu.Execution, nn)
			for ni, n := range job.Nodes {
				srow := make([]gpu.CapSolver, n.NumGPUs())
				for gi, dev := range n.GPUs {
					srow[gi] = dev.NewCapSolver(p.kernels[ki], p.profiles[ki])
				}
				p.solvers[ki][ni] = srow
				p.execs[ki][ni] = make([]gpu.Execution, n.NumGPUs())
			}
		}
	}
	return p, nil
}

// Kernels returns how many unique GPU work descriptors the schedule
// resolves to — the per-point solve cost is proportional to this, not
// to the step count.
func (p *Prepared) Kernels() int { return len(p.kernels) }

// SetGPUPowerLimit applies one board power cap to every GPU of the
// job's nodes (w <= 0 restores the default TDP limit) and invalidates
// the execution table. Errors mirror the per-device SetPowerLimit
// range check.
func (p *Prepared) SetGPUPowerLimit(w float64) error {
	p.execsValid = false
	for _, n := range p.job.Nodes {
		if w <= 0 {
			n.ResetGPUPowerLimits()
			continue
		}
		if err := n.SetGPUPowerLimits(w); err != nil {
			return err
		}
	}
	return nil
}

// SetGPUClockLimitMHz locks one maximum SM clock on every GPU
// (mhz <= 0 unlocks) and invalidates the execution table — the DVFS
// axis of the sweep engine.
func (p *Prepared) SetGPUClockLimitMHz(mhz float64) error {
	p.execsValid = false
	for _, n := range p.job.Nodes {
		if mhz <= 0 {
			n.ResetGPUClockLimits()
			continue
		}
		if err := n.SetGPUClockLimits(mhz); err != nil {
			return err
		}
	}
	return nil
}

// buildExecs runs the cap solver once per unique kernel on every
// device under the current cap/clock state — the only cap-dependent
// computation of a run besides jitter and recording. Each solve goes
// through the kernel's hoisted CapSolver rather than the full
// resolve-and-bisect path; the result is bit-identical (pinned by
// gpu's capsolver_test.go and the differential tests here).
func (p *Prepared) buildExecs() {
	for ki := range p.kernels {
		for ni := range p.job.Nodes {
			srow := p.solvers[ki][ni]
			row := p.execs[ki][ni]
			for gi := range srow {
				row[gi] = srow[gi].Solve()
			}
		}
	}
	p.execsValid = true
}

// Run executes the prepared job once, appending to each node's traces
// (callers reset traces between repeats), drawing jitter from noise
// (nil runs noise-free), and returns the summary. The jitter draw
// order matches the oracle exactly: one whole-run factor, then one
// per-step factor in step order.
//
// The returned Result's PhaseDurations map is reused by the next Run
// call on this Prepared; callers keeping it across runs must copy it.
func (p *Prepared) Run(noise *rng.Stream) Result {
	start := p.job.Nodes[0].TraceDuration()
	res := p.RunNoEnergy(noise)
	res.EnergyJ = p.Energy(start)
	return res
}

// RunNoEnergy is Run without the node-sensor energy epilogue: the
// returned Result carries EnergyJ == 0. A repeat loop that only ever
// reports the winning repeat's energy (the sweep engine) uses this
// per repeat and calls Energy once on the surviving traces — the
// merge arithmetic runs on the same trace content either way, so the
// deferred value is bit-identical to the eager one.
func (p *Prepared) RunNoEnergy(noise *rng.Stream) Result {
	if !p.execsValid {
		p.buildExecs()
	}
	if p.phases == nil {
		p.phases = make(map[string]float64, 8)
	}
	clear(p.phases)
	res := Result{PhaseDurations: p.phases}
	runScale := 1.0
	if noise != nil {
		runScale = noise.LogNormal(0, runJitterSigma)
	}
	nodes := p.job.Nodes
	start := nodes[0].TraceDuration()
	for si := range p.steps {
		st := &p.steps[si]
		j := 1.0
		if noise != nil {
			j = runScale * noise.LogNormal(0, stepJitterSigma)
		}
		var dur float64
		switch st.kind {
		case method.StepGPU:
			execs := p.execs[st.kernel]
			maxDur := 0.0
			for _, row := range execs {
				for gi := range row {
					if row[gi].Duration > maxDur {
						maxDur = row[gi].Duration
					}
				}
			}
			maxDur *= j
			for ni, n := range nodes {
				cp := &p.gpuCP[ni]
				cp.CPU = p.hostOrchW[ni]
				cp.Mem = st.memW[ni]
				row := execs[ni]
				idle := p.gpuIdle[ni]
				hbm := p.hbmIdle[ni]
				for i := range row {
					busy := row[i].Duration / maxDur
					if busy > 1 {
						busy = 1
					}
					cp.GPUs[i] = row[i].Power*busy + idle[i]*(1-busy)
					cp.GPUMems[i] = row[i].MemPower*busy + hbm[i]*(1-busy)
				}
				n.Record(maxDur, *cp)
			}
			dur = maxDur
		default:
			dur = st.preDur * j
			for ni, n := range nodes {
				n.Record(dur, st.cps[ni])
			}
		}
		res.PhaseDurations[st.phase] += dur
		res.Steps++
	}
	res.Runtime = nodes[0].TraceDuration() - start
	return res
}

// Energy computes the summed node-sensor energy of the traces
// currently on the job's nodes, from start to each node's trace end —
// Run's epilogue as a standalone pass. It merges into reusable
// scratch with the same cursor arithmetic the memoized TotalTrace
// uses — values identical, allocations zero in steady state. The
// nodes' own memo caches are left untouched for the eventual
// profiling pass.
func (p *Prepared) Energy(start float64) float64 {
	var energy float64
	for _, n := range p.job.Nodes {
		ptrs := append(p.ptrScratch[:0], n.CPUTrace(), n.MemTrace())
		for gi := 0; gi < n.NumGPUs(); gi++ {
			ptrs = append(ptrs, n.GPUTrace(gi))
		}
		p.ptrScratch = ptrs
		sum := timeseries.SumInto(&p.sumScratch, ptrs...)
		total := sum.AddConstantInto(&p.totalScratch, n.PeripheralPower())
		energy += total.EnergyBetween(start, n.TraceDuration())
	}
	return energy
}
