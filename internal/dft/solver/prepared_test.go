package solver

import (
	"testing"

	"vasppower/internal/dft/method"
	"vasppower/internal/hw/node"
	"vasppower/internal/rng"
	"vasppower/internal/timeseries"
)

// tracesEqual compares two traces segment-for-segment with exact
// float equality — the differential contract is bit-identity, not
// tolerance.
func tracesEqual(t *testing.T, label string, a, b *timeseries.Trace) {
	t.Helper()
	sa, sb := a.Segments(), b.Segments()
	if len(sa) != len(sb) {
		t.Fatalf("%s: %d segments vs %d", label, len(sa), len(sb))
	}
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("%s: segment %d differs: %+v vs %+v", label, i, sa[i], sb[i])
		}
	}
}

// nodesEqual asserts every component trace of each node pair is
// bit-identical.
func nodesEqual(t *testing.T, a, b []*node.Node) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("node counts differ: %d vs %d", len(a), len(b))
	}
	for ni := range a {
		tracesEqual(t, "cpu", a[ni].CPUTrace(), b[ni].CPUTrace())
		tracesEqual(t, "mem", a[ni].MemTrace(), b[ni].MemTrace())
		for gi := 0; gi < a[ni].NumGPUs(); gi++ {
			tracesEqual(t, "gpu", a[ni].GPUTrace(gi), b[ni].GPUTrace(gi))
			tracesEqual(t, "gpumem", a[ni].GPUMemTrace(gi), b[ni].GPUMemTrace(gi))
		}
		tracesEqual(t, "total", a[ni].TotalTrace(), b[ni].TotalTrace())
	}
}

func resultsEqual(t *testing.T, oracle, prep Result) {
	t.Helper()
	if oracle.Runtime != prep.Runtime {
		t.Fatalf("runtime %v vs oracle %v", prep.Runtime, oracle.Runtime)
	}
	if oracle.EnergyJ != prep.EnergyJ {
		t.Fatalf("energy %v vs oracle %v", prep.EnergyJ, oracle.EnergyJ)
	}
	if oracle.Steps != prep.Steps {
		t.Fatalf("steps %d vs oracle %d", prep.Steps, oracle.Steps)
	}
	if len(oracle.PhaseDurations) != len(prep.PhaseDurations) {
		t.Fatalf("phases %v vs oracle %v", prep.PhaseDurations, oracle.PhaseDurations)
	}
	for k, v := range oracle.PhaseDurations {
		if prep.PhaseDurations[k] != v {
			t.Fatalf("phase %q: %v vs oracle %v", k, prep.PhaseDurations[k], v)
		}
	}
}

// TestPreparedMatchesRunExactly pins the prepared engine to the oracle
// across methods, node counts, device variability, and noise: every
// float of every trace must be bit-identical.
func TestPreparedMatchesRunExactly(t *testing.T) {
	for _, kind := range []method.Kind{method.DFTRMM, method.DFTBDRMM, method.HSE, method.ACFDTR} {
		for _, nodes := range []int{1, 2} {
			for _, noisy := range []bool{false, true} {
				oracleJob := testJob(t, kind, nodes, true)
				prepJob := testJob(t, kind, nodes, true)
				if noisy {
					oracleJob.Noise = rng.New(42)
				}
				want, err := Run(oracleJob)
				if err != nil {
					t.Fatal(err)
				}
				prep, err := Prepare(prepJob)
				if err != nil {
					t.Fatal(err)
				}
				var noise *rng.Stream
				if noisy {
					noise = rng.New(42)
				}
				got := prep.Run(noise)
				resultsEqual(t, want, got)
				nodesEqual(t, oracleJob.Nodes, prepJob.Nodes)
			}
		}
	}
}

// TestPreparedSweepMatchesOracle reuses one Prepared across cap and
// clock points — the incremental engine's whole reason to exist — and
// checks each point against a fresh full oracle run.
func TestPreparedSweepMatchesOracle(t *testing.T) {
	prepJob := testJob(t, method.HSE, 2, true)
	prep, err := Prepare(prepJob)
	if err != nil {
		t.Fatal(err)
	}
	points := []struct {
		capW float64
		mhz  float64
	}{
		{0, 0}, {400, 0}, {250, 0}, {0, 0}, {0, 1200}, {0, 900}, {300, 0},
	}
	for _, pt := range points {
		oracleJob := testJob(t, method.HSE, 2, true)
		for _, n := range oracleJob.Nodes {
			if pt.capW > 0 {
				if err := n.SetGPUPowerLimits(pt.capW); err != nil {
					t.Fatal(err)
				}
			}
			if pt.mhz > 0 {
				if err := n.SetGPUClockLimits(pt.mhz); err != nil {
					t.Fatal(err)
				}
			}
		}
		oracleJob.Noise = rng.New(7)
		want, err := Run(oracleJob)
		if err != nil {
			t.Fatal(err)
		}

		for _, n := range prepJob.Nodes {
			n.ResetTracesReuse()
		}
		if err := prep.SetGPUClockLimitMHz(pt.mhz); err != nil {
			t.Fatal(err)
		}
		if err := prep.SetGPUPowerLimit(pt.capW); err != nil {
			t.Fatal(err)
		}
		got := prep.Run(rng.New(7))
		resultsEqual(t, want, got)
		nodesEqual(t, oracleJob.Nodes, prepJob.Nodes)
	}
}

// TestPreparedPhaseMapReused documents the scratch contract: the next
// Run overwrites the previous Result's PhaseDurations.
func TestPreparedPhaseMapReused(t *testing.T) {
	prep, err := Prepare(testJob(t, method.DFTRMM, 1, false))
	if err != nil {
		t.Fatal(err)
	}
	r1 := prep.Run(nil)
	m1 := r1.PhaseDurations
	for _, n := range prep.job.Nodes {
		n.ResetTracesReuse()
	}
	r2 := prep.Run(nil)
	if &m1 == &r2.PhaseDurations {
	} // same map is expected; the assertion is aliasing, below
	m1["sentinel"] = 1
	if r2.PhaseDurations["sentinel"] != 1 {
		t.Fatal("PhaseDurations no longer aliases the prepared scratch map (update the doc contract)")
	}
}

// TestPreparedSetLimitErrors mirrors the per-device range checks.
func TestPreparedSetLimitErrors(t *testing.T) {
	prep, err := Prepare(testJob(t, method.DFTRMM, 1, false))
	if err != nil {
		t.Fatal(err)
	}
	if err := prep.SetGPUPowerLimit(1); err == nil {
		t.Fatal("1 W cap accepted")
	}
	if err := prep.SetGPUPowerLimit(0); err != nil {
		t.Fatal(err)
	}
	if err := prep.SetGPUClockLimitMHz(1); err == nil {
		t.Fatal("1 MHz clock accepted")
	}
	if err := prep.SetGPUClockLimitMHz(0); err != nil {
		t.Fatal(err)
	}
}

// TestPreparedValidation matches the oracle's construction errors.
func TestPreparedValidation(t *testing.T) {
	job := testJob(t, method.DFTRMM, 1, false)
	bad := job
	bad.Schedule = &method.Schedule{}
	if _, err := Prepare(bad); err == nil {
		t.Fatal("empty schedule accepted")
	}
	bad = job
	bad.Nodes = nil
	if _, err := Prepare(bad); err == nil {
		t.Fatal("no nodes accepted")
	}
}

// TestPreparedRunSteadyStateAllocs is the arena claim: after the first
// point, a solve allocates nothing.
func TestPreparedRunSteadyStateAllocs(t *testing.T) {
	job := testJob(t, method.HSE, 1, true)
	prep, err := Prepare(job)
	if err != nil {
		t.Fatal(err)
	}
	reset := func() {
		for _, n := range job.Nodes {
			n.ResetTracesReuse()
		}
	}
	noise := rng.New(3)
	init := *noise
	// Warm the arena: first run grows trace and scratch capacity.
	prep.Run(noise)
	allocs := testing.AllocsPerRun(10, func() {
		reset()
		*noise = init
		prep.Run(noise)
	})
	if allocs > 0 {
		t.Fatalf("steady-state Run allocates %v objects/op, want 0", allocs)
	}
}
