// Package solver executes a method schedule on simulated hardware: it
// walks the step list in virtual time, runs each GPU kernel on every
// allocated GPU (under whatever power limit is currently set), prices
// collectives on the fabric, runs CPU-only phases on the host, and
// records synchronized per-component power traces on every node —
// exactly the data the paper's telemetry pipeline collects.
package solver

import (
	"fmt"

	"vasppower/internal/dft/method"
	"vasppower/internal/dft/parallel"
	"vasppower/internal/hw/node"
	"vasppower/internal/interconnect"
	"vasppower/internal/rng"
)

// commGPUPower is the extra per-GPU draw above idle while NCCL moves
// data (copy engines + NIC DMA).
const commGPUPower = 18

// stepJitterSigma is the multiplicative log-normal noise on every
// step duration (OS noise, congestion). Independent per step, it
// averages out over thousands of steps, so a correlated whole-run
// factor (runJitterSigma) models the slower disturbances — thermal
// state, neighbor congestion, straggling components — that make whole
// runs differ by a few percent. The combination is what the paper's
// five-repeat/min-runtime protocol exists to tame (§III-B.1).
const (
	stepJitterSigma = 0.008
	runJitterSigma  = 0.012
)

// Job binds a schedule to hardware.
type Job struct {
	Name     string
	Schedule *method.Schedule
	Nodes    []*node.Node
	Decomp   parallel.Decomposition
	Fabric   interconnect.Fabric
	// Noise drives run-to-run jitter; nil runs noise-free.
	Noise *rng.Stream

	// runScale is the correlated whole-run jitter factor, drawn once
	// per Run call.
	runScale float64
}

// Result summarizes one executed job.
type Result struct {
	Runtime        float64            // wall seconds
	EnergyJ        float64            // node-level energy over all nodes
	PhaseDurations map[string]float64 // wall seconds per phase label
	Steps          int
}

// Run executes the job, appending to each node's traces (callers reset
// traces between repeats), and returns the summary.
func Run(job Job) (Result, error) {
	if job.Schedule == nil || len(job.Schedule.Steps) == 0 {
		return Result{}, fmt.Errorf("solver: empty schedule")
	}
	if len(job.Nodes) == 0 {
		return Result{}, fmt.Errorf("solver: no nodes")
	}
	if job.Decomp.Nodes != len(job.Nodes) {
		return Result{}, fmt.Errorf("solver: decomposition spans %d nodes but %d allocated",
			job.Decomp.Nodes, len(job.Nodes))
	}
	res := Result{PhaseDurations: make(map[string]float64)}
	if job.Noise != nil {
		job.runScale = job.Noise.LogNormal(0, runJitterSigma)
	} else {
		job.runScale = 1
	}
	start := job.Nodes[0].TraceDuration()
	for _, st := range job.Schedule.Steps {
		dur := executeStep(job, st)
		res.PhaseDurations[st.Phase] += dur
		res.Steps++
	}
	res.Runtime = job.Nodes[0].TraceDuration() - start
	for _, n := range job.Nodes {
		res.EnergyJ += n.TotalTrace().EnergyBetween(start, n.TraceDuration())
	}
	return res, nil
}

// jitter returns the multiplicative noise factor for one step: the
// run-correlated factor times independent per-step noise.
func jitter(job Job) float64 {
	if job.Noise == nil {
		return 1
	}
	return job.runScale * job.Noise.LogNormal(0, stepJitterSigma)
}

// executeStep runs one step across all nodes (which proceed in
// lockstep — the benchmarks are load-balanced by construction, §III-A)
// and returns its wall duration.
func executeStep(job Job, st method.Step) float64 {
	switch st.Kind {
	case method.StepGPU:
		return executeGPUStep(job, st)
	case method.StepCPU:
		return executeCPUStep(job, st)
	case method.StepComm:
		return executeCommStep(job, st)
	case method.StepHost:
		return executeHostStep(job, st)
	}
	panic(fmt.Sprintf("solver: unknown step kind %v", st.Kind))
}

func executeGPUStep(job Job, st method.Step) float64 {
	type exec struct {
		dur   float64
		power float64
		memW  float64
	}
	// Every GPU runs the same kernel; durations differ only through
	// cap solving against device-specific power curves. The step ends
	// at the slowest device (implicit barrier).
	var execs [][]exec
	maxDur := 0.0
	for _, n := range job.Nodes {
		row := make([]exec, n.NumGPUs())
		for i, g := range n.GPUs {
			ex := g.Run(st.GPU)
			row[i] = exec{dur: ex.Duration, power: ex.Power, memW: ex.MemPower}
			if ex.Duration > maxDur {
				maxDur = ex.Duration
			}
		}
		execs = append(execs, row)
	}
	maxDur *= jitter(job)
	for ni, n := range job.Nodes {
		cp := node.ComponentPowers{
			CPU:     n.CPU.HostOrchestrationPower(),
			Mem:     memPower(n, st.MemActivity),
			GPUs:    make([]float64, n.NumGPUs()),
			GPUMems: make([]float64, n.NumGPUs()),
		}
		for i := range n.GPUs {
			// Devices that finish early wait at the barrier near idle;
			// fold that into a duty-cycled average power. The HBM
			// domain duty-cycles the same way (self-refresh while
			// waiting).
			e := execs[ni][i]
			busy := e.dur / maxDur
			if busy > 1 {
				busy = 1
			}
			cp.GPUs[i] = e.power*busy + n.GPUs[i].IdlePower()*(1-busy)
			cp.GPUMems[i] = e.memW*busy + n.GPUs[i].HBMIdlePower()*(1-busy)
		}
		n.Record(maxDur, cp)
	}
	return maxDur
}

func executeCPUStep(job Job, st method.Step) float64 {
	maxDur := 0.0
	type exec struct{ dur, power float64 }
	var execs []exec
	for _, n := range job.Nodes {
		ex := n.CPU.Run(st.CPU)
		execs = append(execs, exec{ex.Duration, ex.Power})
		if ex.Duration > maxDur {
			maxDur = ex.Duration
		}
	}
	maxDur *= jitter(job)
	for ni, n := range job.Nodes {
		cp := n.Idle()
		cp.CPU = execs[ni].power
		cp.Mem = memPower(n, st.MemActivity)
		n.Record(maxDur, cp)
	}
	return maxDur
}

func executeCommStep(job Job, st method.Step) float64 {
	var topo interconnect.Topology
	switch st.Comm.Scope {
	case method.ScopeGroup:
		topo = job.Decomp.GroupTopology
	default:
		topo = job.Decomp.Topology
	}
	var dur float64
	switch st.Comm.Op {
	case method.CommAllReduce:
		dur = job.Fabric.AllReduce(st.Comm.Bytes, topo)
	case method.CommAllToAll:
		dur = job.Fabric.AllToAll(st.Comm.Bytes/float64(topo.Ranks()), topo)
	case method.CommBroadcast:
		dur = job.Fabric.Broadcast(st.Comm.Bytes, topo)
	default:
		panic(fmt.Sprintf("solver: unknown comm op %v", st.Comm.Op))
	}
	dur *= jitter(job)
	for _, n := range job.Nodes {
		cp := n.Idle()
		cp.CPU = n.CPU.HostOrchestrationPower()
		cp.Mem = memPower(n, st.MemActivity)
		for i := range cp.GPUs {
			cp.GPUs[i] += commGPUPower
		}
		n.Record(dur, cp)
	}
	return dur
}

func executeHostStep(job Job, st method.Step) float64 {
	dur := st.HostSeconds * jitter(job)
	for _, n := range job.Nodes {
		cp := n.Idle()
		cp.CPU = n.CPU.HostOrchestrationPower()
		cp.Mem = memPower(n, st.MemActivity)
		n.Record(dur, cp)
	}
	return dur
}

// memPower interpolates DDR power between idle and active with the
// step's memory-activity level.
func memPower(n *node.Node, activity float64) float64 {
	return n.MemIdlePower() + (n.MemActivePower()-n.MemIdlePower())*activity
}
