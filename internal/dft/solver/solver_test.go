package solver

import (
	"math"
	"testing"

	"vasppower/internal/dft/method"
	"vasppower/internal/dft/parallel"
	"vasppower/internal/hw/node"
	"vasppower/internal/hw/platform"
	"vasppower/internal/interconnect"
	"vasppower/internal/rng"
)

func testJob(t *testing.T, kind method.Kind, nodes int, seedNodes bool) Job {
	t.Helper()
	d, err := parallel.Decompose(640, 1, nodes, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := method.Config{
		Kind:       kind,
		NBands:     640,
		NPW:        33280,
		NPLWV:      512000,
		NElectrons: 1020,
		NIons:      255,
		NELM:       3,
		NSim:       4,
		Decomp:     d,
	}
	if kind == method.ACFDTR {
		cfg.NBandsExact = 4000
	}
	sched, err := method.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var ns []*node.Node
	root := rng.New(11)
	for i := 0; i < nodes; i++ {
		var r *rng.Stream
		if seedNodes {
			r = root.Split(string(rune('a' + i)))
		}
		ns = append(ns, node.New("n", platform.Default(), r))
	}
	return Job{
		Name:     "test",
		Schedule: sched,
		Nodes:    ns,
		Decomp:   d,
		Fabric:   interconnect.Slingshot(),
	}
}

func TestRunProducesAlignedTraces(t *testing.T) {
	job := testJob(t, method.DFTRMM, 2, true)
	res, err := Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if res.Runtime <= 0 {
		t.Fatal("no runtime")
	}
	for _, n := range job.Nodes {
		if math.Abs(n.TraceDuration()-res.Runtime) > 1e-9 {
			t.Fatalf("node trace %v != runtime %v", n.TraceDuration(), res.Runtime)
		}
		for i := 0; i < n.NumGPUs(); i++ {
			if math.Abs(n.GPUTrace(i).Duration()-res.Runtime) > 1e-9 {
				t.Fatal("GPU trace misaligned")
			}
		}
	}
	if res.EnergyJ <= 0 {
		t.Fatal("no energy")
	}
	if res.Steps != len(job.Schedule.Steps) {
		t.Fatalf("steps = %d, want %d", res.Steps, len(job.Schedule.Steps))
	}
}

func TestRunDeterministicWithoutNoise(t *testing.T) {
	a := testJob(t, method.DFTRMM, 1, false)
	b := testJob(t, method.DFTRMM, 1, false)
	ra, _ := Run(a)
	rb, _ := Run(b)
	if ra.Runtime != rb.Runtime || ra.EnergyJ != rb.EnergyJ {
		t.Fatalf("noise-free runs differ: %+v vs %+v", ra, rb)
	}
}

func TestNoiseVariesRuntime(t *testing.T) {
	a := testJob(t, method.DFTRMM, 1, false)
	a.Noise = rng.New(1)
	b := testJob(t, method.DFTRMM, 1, false)
	b.Noise = rng.New(2)
	ra, _ := Run(a)
	rb, _ := Run(b)
	if ra.Runtime == rb.Runtime {
		t.Fatal("noisy runs identical")
	}
	// Jitter is small: within 5%.
	if math.Abs(ra.Runtime-rb.Runtime)/ra.Runtime > 0.05 {
		t.Fatalf("jitter too large: %v vs %v", ra.Runtime, rb.Runtime)
	}
}

func TestPowerCapSlowsJob(t *testing.T) {
	base := testJob(t, method.HSE, 1, false)
	rBase, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	capped := testJob(t, method.HSE, 1, false)
	for _, n := range capped.Nodes {
		if err := n.SetGPUPowerLimits(200); err != nil {
			t.Fatal(err)
		}
	}
	rCap, err := Run(capped)
	if err != nil {
		t.Fatal(err)
	}
	if rCap.Runtime <= rBase.Runtime {
		t.Fatalf("200 W cap did not slow HSE: %v vs %v", rCap.Runtime, rBase.Runtime)
	}
	// And the GPU trace must respect the cap.
	if max := capped.Nodes[0].GPUTrace(0).MaxPower(); max > 200+1e-6 {
		t.Fatalf("GPU trace exceeds cap: %v", max)
	}
}

func TestACFDTRHasCPUPhase(t *testing.T) {
	job := testJob(t, method.ACFDTR, 1, false)
	res, err := Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if res.PhaseDurations["exact-diag"] <= 0 {
		t.Fatalf("no exact-diag phase time: %+v", res.PhaseDurations)
	}
	if res.PhaseDurations["rpa"] <= 0 || res.PhaseDurations["scf"] <= 0 {
		t.Fatalf("missing phases: %+v", res.PhaseDurations)
	}
	// During the CPU phase the GPUs idle: the GPU trace minimum must
	// be near idle power.
	n := job.Nodes[0]
	if min := n.GPUTrace(0).MinPower(); min > 60 {
		t.Fatalf("GPU never idles during CPU phase: min %v W", min)
	}
	// And the CPU trace must reach eigensolve power.
	if max := n.CPUTrace().MaxPower(); max < 200 {
		t.Fatalf("CPU phase never runs hot: max %v W", max)
	}
}

func TestRunValidation(t *testing.T) {
	job := testJob(t, method.DFTRMM, 1, false)
	bad := job
	bad.Schedule = &method.Schedule{}
	if _, err := Run(bad); err == nil {
		t.Fatal("empty schedule accepted")
	}
	bad = job
	bad.Nodes = nil
	if _, err := Run(bad); err == nil {
		t.Fatal("no nodes accepted")
	}
	bad = job
	d, _ := parallel.Decompose(640, 1, 2, 4, 1)
	bad.Decomp = d
	if _, err := Run(bad); err == nil {
		t.Fatal("node-count mismatch accepted")
	}
}

func TestMoreNodesFasterButLessEfficient(t *testing.T) {
	r1, err := Run(testJob(t, method.HSE, 1, false))
	if err != nil {
		t.Fatal(err)
	}
	r4, err := Run(testJob(t, method.HSE, 4, false))
	if err != nil {
		t.Fatal(err)
	}
	if r4.Runtime >= r1.Runtime {
		t.Fatalf("4 nodes (%v s) not faster than 1 (%v s)", r4.Runtime, r1.Runtime)
	}
	speedup := r1.Runtime / r4.Runtime
	if speedup > 4 {
		t.Fatalf("superlinear speedup %v", speedup)
	}
	// Energy to solution grows with concurrency (paper §IV-C).
	if r4.EnergyJ <= r1.EnergyJ {
		t.Fatalf("energy should grow with nodes: %v vs %v", r4.EnergyJ, r1.EnergyJ)
	}
}

func TestCommScopesDiffer(t *testing.T) {
	// A group-scoped collective on a single node must be cheaper than
	// the same bytes across the whole multi-node job.
	d, err := parallel.Decompose(640, 4, 4, 4, 4) // groups fit in one node
	if err != nil {
		t.Fatal(err)
	}
	fabric := interconnect.Slingshot()
	group := fabric.AllReduce(64e6, d.GroupTopology)
	all := fabric.AllReduce(64e6, d.Topology)
	if group >= all {
		t.Fatalf("group collective (%v) should beat job-wide (%v)", group, all)
	}
}

func TestGPUVariabilityShowsInTraces(t *testing.T) {
	// Seeded nodes: the four GPUs of a node record slightly different
	// power for identical kernels (§III-B.2's DGEMM observation).
	job := testJob(t, method.DFTRMM, 1, true)
	if _, err := Run(job); err != nil {
		t.Fatal(err)
	}
	n := job.Nodes[0]
	p0 := n.GPUTrace(0).MaxPower()
	same := true
	for i := 1; i < 4; i++ {
		if n.GPUTrace(i).MaxPower() != p0 {
			same = false
		}
	}
	if same {
		t.Fatal("all GPUs identical despite per-device variability")
	}
}

func TestPhaseDurationsSumToRuntime(t *testing.T) {
	job := testJob(t, method.ACFDTR, 1, false)
	res, err := Run(job)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, d := range res.PhaseDurations {
		sum += d
	}
	if math.Abs(sum-res.Runtime) > 1e-6 {
		t.Fatalf("phase durations sum %v != runtime %v", sum, res.Runtime)
	}
}

func TestRunAppendsToExistingTraces(t *testing.T) {
	// Two sequential runs on the same nodes accumulate (the repeat
	// protocol relies on this).
	job := testJob(t, method.DFTRMM, 1, false)
	r1, err := Run(job)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(job)
	if err != nil {
		t.Fatal(err)
	}
	want := r1.Runtime + r2.Runtime
	if math.Abs(job.Nodes[0].TraceDuration()-want) > 1e-6 {
		t.Fatalf("trace duration %v, want %v", job.Nodes[0].TraceDuration(), want)
	}
}
