package experiments

import (
	"io/fs"
	"path/filepath"
	"strings"
	"testing"

	"vasppower/internal/core"
	"vasppower/internal/workloads"
)

// countTempFiles walks a disk-cache directory for tmp-* files — the
// in-progress atomic writes a clean shutdown never leaves behind.
func countTempFiles(t *testing.T, dir string) int {
	t.Helper()
	n := 0
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasPrefix(d.Name(), "tmp-") {
			n++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestCachedMeasureGroupMidSweepFailure: a sweep that dies mid-way (a
// cap below the GPU's settable range fails the third point here) must
// release its SweepContext arena and leave the disk cache with only
// whole, committed entries — the completed points' writes are atomic
// and no temp files remain.
func TestCachedMeasureGroupMidSweepFailure(t *testing.T) {
	dir := t.TempDir()
	if _, err := EnableDiskCache(dir, 0); err != nil {
		t.Fatal(err)
	}
	defer DisableDiskCache()
	ResetCache()
	defer ResetCache()

	b, ok := workloads.ByName("B.hR105_hse")
	if !ok {
		t.Fatal("B.hR105_hse missing")
	}
	spec := core.MeasureSpec{Bench: b, Nodes: 1, Repeats: 1, Seed: 3}
	before := workloads.ActiveSweeps()
	badCap := quickCfg().platform().GPU.MinPowerLimit / 2
	_, err := CachedMeasureGroup(spec, []float64{0, 250, badCap})
	if err == nil {
		t.Fatalf("cap %g W below the settable range did not fail the sweep", badCap)
	}
	if got := workloads.ActiveSweeps(); got != before {
		t.Fatalf("ActiveSweeps = %d, want %d (arena leaked after mid-sweep failure)", got, before)
	}
	if n := countTempFiles(t, dir); n != 0 {
		t.Fatalf("%d tmp-* files left in the disk cache after a failed sweep", n)
	}

	// The points that completed before the failure are committed whole:
	// a fresh measurement of either must be a cache hit bit-identical
	// to what the failed sweep stored.
	for _, capW := range []float64{0, 250} {
		pt := spec
		pt.CapW = capW
		if _, err := CachedMeasureSpec(pt); err != nil {
			t.Fatalf("completed point cap=%g unreadable after failed sweep: %v", capW, err)
		}
	}
}
