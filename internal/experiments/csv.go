package experiments

import (
	"fmt"
	"sort"

	"vasppower/internal/artifact"
	"vasppower/internal/workloads"
)

// CSV exports of the figure datasets (the paper's artifact bundle).

// CSV returns Table I as a dataset.
func (r TableIResult) CSV() artifact.Table {
	t := artifact.Table{
		Name: "table1_benchmarks",
		Header: []string{"benchmark", "electrons", "ions", "functional", "algo",
			"nelm", "nbands", "nbands_exact", "fft_x", "fft_y", "fft_z", "nplwv",
			"kx", "ky", "kz", "kpar"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			row.Name, artifact.I(row.Electrons), artifact.I(row.Ions),
			row.Functional, row.Algo, artifact.I(row.NELM), artifact.I(row.NBands),
			artifact.I(row.NBandsExact),
			artifact.I(row.FFTGrid[0]), artifact.I(row.FFTGrid[1]), artifact.I(row.FFTGrid[2]),
			artifact.I(row.NPLWV),
			artifact.I(row.KPoints[0]), artifact.I(row.KPoints[1]), artifact.I(row.KPoints[2]),
			artifact.I(row.KPar),
		})
	}
	return t
}

// CSV returns the per-node phase means of Fig. 1.
func (r Fig1Result) CSV() artifact.Table {
	t := artifact.Table{
		Name:   "fig1_node_phase_means",
		Header: []string{"node", "phase", "mean_watts"},
	}
	var nodes []string
	for n := range r.PhaseMeans {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	for _, n := range nodes {
		for _, phase := range Fig1Phases() {
			t.Rows = append(t.Rows, []string{n, phase, artifact.F(r.PhaseMeans[n][phase])})
		}
	}
	return t
}

// CSV returns the sampling-rate summary of Fig. 2.
func (r Fig2Result) CSV() artifact.Table {
	t := artifact.Table{
		Name:   "fig2_sampling_rates",
		Header: []string{"interval_s", "samples", "min_w", "median_w", "max_w", "high_mode_w", "fwhm_w", "modes"},
	}
	for _, p := range r.Points {
		t.Rows = append(t.Rows, []string{
			artifact.F(p.IntervalS), artifact.I(p.Samples),
			artifact.F(p.Min), artifact.F(p.Median), artifact.F(p.Max),
			artifact.F(p.HighMode), artifact.F(p.FWHM), artifact.I(p.NumModes),
		})
	}
	return t
}

// CSV returns the Fig. 3 component summary.
func (r Fig3Result) CSV() artifact.Table {
	t := artifact.Table{
		Name: "fig3_profiles",
		Header: []string{"benchmark", "runtime_s", "energy_mj", "node_min_w", "node_median_w",
			"node_max_w", "node_high_mode_w", "gpu_share", "cpumem_share", "multimodal"},
	}
	for _, e := range r.Entries {
		t.Rows = append(t.Rows, []string{
			e.Bench, artifact.F(e.Profile.Runtime), artifact.F(e.Profile.EnergyJ / 1e6),
			artifact.F(e.Min), artifact.F(e.Median), artifact.F(e.Max), artifact.F(e.HighMode),
			artifact.F(e.Profile.GPUShareOfNode()), artifact.F(e.Profile.CPUMemShareOfNode()),
			fmt.Sprintf("%v", e.MultiModal),
		})
	}
	return t
}

// CSV returns the scaling dataset behind Figs. 4 and 5.
func (r ScalingResult) CSV() artifact.Table {
	t := artifact.Table{
		Name:   "fig4_fig5_scaling",
		Header: []string{"benchmark", "nodes", "runtime_s", "parallel_efficiency", "node_high_mode_w", "energy_j"},
	}
	for _, name := range workloads.Names() {
		for _, p := range r.Series[name] {
			t.Rows = append(t.Rows, []string{
				name, artifact.I(p.Nodes), artifact.F(p.Runtime),
				artifact.F(p.ParEff), artifact.F(p.NodeMode), artifact.F(p.EnergyJ),
			})
		}
	}
	return t
}

// CSV returns the size sweep of Fig. 6.
func (r Fig6Result) CSV() artifact.Table {
	t := artifact.Table{
		Name: "fig6_size_sweep",
		Header: []string{"atoms", "nplwv", "nbands", "node_mode_w", "node_fwhm_w",
			"gpusum_mode_w", "gpusum_fwhm_w", "runtime_s"},
	}
	for _, p := range r.Points {
		t.Rows = append(t.Rows, []string{
			artifact.I(p.Atoms), artifact.I(p.NPLWV), artifact.I(p.NBands),
			artifact.F(p.NodeMode), artifact.F(p.NodeFWHM),
			artifact.F(p.GPUSumMode), artifact.F(p.GPUSumFWHM), artifact.F(p.Runtime),
		})
	}
	return t
}

// CSV returns both parameter sweeps of Fig. 7.
func (r Fig7Result) CSV() artifact.Table {
	t := artifact.Table{
		Name:   "fig7_parameter_sweeps",
		Header: []string{"sweep", "nplwv", "nbands", "node_mode_w", "node_mean_w", "energy_mj", "runtime_s"},
	}
	add := func(sweep string, pts []Fig7Point) {
		for _, p := range pts {
			t.Rows = append(t.Rows, []string{
				sweep, artifact.I(p.NPLWV), artifact.I(p.NBands),
				artifact.F(p.NodeMode), artifact.F(p.NodeMean),
				artifact.F(p.EnergyMJ), artifact.F(p.Runtime),
			})
		}
	}
	add("nplwv", r.NPLWVSweep)
	add("nbands", r.NBandsSweep)
	return t
}

// CSV returns the concurrency sweep of Fig. 8.
func (r Fig8Result) CSV() artifact.Table {
	t := artifact.Table{
		Name:   "fig8_concurrency",
		Header: []string{"nodes", "parallel_efficiency", "node_mode_w", "node_mean_w", "energy_mj", "runtime_s"},
	}
	for _, p := range r.Points {
		t.Rows = append(t.Rows, []string{
			artifact.I(p.Nodes), artifact.F(p.ParEff), artifact.F(p.NodeMode),
			artifact.F(p.NodeMean), artifact.F(p.EnergyMJ), artifact.F(p.Runtime),
		})
	}
	return t
}

// CSV returns the method-violin summary of Fig. 9.
func (r Fig9Result) CSV() artifact.Table {
	t := artifact.Table{
		Name:   "fig9_methods",
		Header: []string{"method", "atoms", "high_mode_w", "median_w", "q1_w", "q3_w", "multimodal"},
	}
	for _, e := range r.Entries {
		if e.Violin == nil {
			continue
		}
		s := e.Violin.Summary
		t.Rows = append(t.Rows, []string{
			e.Method, artifact.I(e.Atoms), artifact.F(e.HighMode),
			artifact.F(s.Median), artifact.F(s.Q1), artifact.F(s.Q3),
			fmt.Sprintf("%v", e.Violin.IsMultiModal()),
		})
	}
	return t
}

// CSV returns the cap study behind Figs. 10 and 12.
func (r CapStudyResult) CSV() artifact.Table {
	t := artifact.Table{
		Name:   "fig10_fig12_cap_study",
		Header: []string{"benchmark", "nodes", "cap_w", "runtime_s", "rel_perf", "gpu_mode_w", "mode_over_cap"},
	}
	for _, name := range workloads.Names() {
		for _, p := range r.Series[name] {
			t.Rows = append(t.Rows, []string{
				name, artifact.I(r.Nodes[name]), artifact.F(p.CapW), artifact.F(p.Runtime),
				artifact.F(p.RelPerf), artifact.F(p.GPUMode), artifact.F(p.ModeOverCap),
			})
		}
	}
	return t
}

// CSV returns the capped-vs-uncapped summary of Fig. 11.
func (r Fig11Result) CSV() artifact.Table {
	return artifact.Table{
		Name:   "fig11_cap_timeline",
		Header: []string{"variant", "runtime_s", "node_max_w", "node_min_w"},
		Rows: [][]string{
			{"uncapped", artifact.F(r.Uncapped.Runtime),
				artifact.F(r.Uncapped.NodeTotal.Summary.Max), artifact.F(r.Uncapped.NodeTotal.Summary.Min)},
			{fmt.Sprintf("capped_%.0fW", r.CapW), artifact.F(r.Capped.Runtime),
				artifact.F(r.Capped.NodeTotal.Summary.Max), artifact.F(r.Capped.NodeTotal.Summary.Min)},
		},
	}
}

// CSV returns the cap × concurrency grid of Fig. 13.
func (r Fig13Result) CSV() artifact.Table {
	t := artifact.Table{
		Name:   "fig13_caps_by_nodes",
		Header: []string{"nodes", "cap_w", "rel_perf"},
	}
	for _, n := range r.Counts {
		rels := r.RelPerf[n]
		for i, cap := range r.Caps {
			if i < len(rels) {
				t.Rows = append(t.Rows, []string{artifact.I(n), artifact.F(cap), artifact.F(rels[i])})
			}
		}
	}
	return t
}

// CSV returns the scheduler ablation of Extension A.
func (r ExtSchedulerResult) CSV() artifact.Table {
	t := artifact.Table{
		Name: "exta_scheduler",
		Header: []string{"policy", "makespan_s", "mean_wait_s", "peak_power_w",
			"energy_j", "mean_perf_loss", "throughput_jobs_per_h"},
	}
	for _, res := range r.Results {
		t.Rows = append(t.Rows, []string{
			res.Policy, artifact.F(res.Makespan), artifact.F(res.MeanWait),
			artifact.F(res.PeakPowerW), artifact.F(res.TotalEnergyJ),
			artifact.F(res.MeanPerfLoss), artifact.F(res.Throughput),
		})
	}
	return t
}

// CSV returns the repeat-protocol data of Extension B.
func (r ExtRepeatsResult) CSV() artifact.Table {
	t := artifact.Table{
		Name:   "extb_repeats",
		Header: []string{"repeat", "runtime_s", "node_high_mode_w"},
	}
	for i, rt := range r.Runtimes {
		mode := ""
		if i < len(r.ModePerRun) {
			mode = artifact.F(r.ModePerRun[i])
		}
		t.Rows = append(t.Rows, []string{artifact.I(i + 1), artifact.F(rt), mode})
	}
	return t
}

// CSV returns the DVFS-vs-capping comparison of Extension C.
func (r ExtCResult) CSV() artifact.Table {
	t := artifact.Table{
		Name: "extc_dvfs_vs_capping",
		Header: []string{"benchmark", "mechanism", "setting", "runtime_s",
			"baseline_runtime_s", "max_gpu_w", "mean_gpu_w"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			row.Bench, "powercap", artifact.F(r.TargetW), artifact.F(row.CapRuntime),
			artifact.F(row.BaseRuntime), artifact.F(row.CapMaxGPUW), artifact.F(row.CapMeanGPU),
		})
		t.Rows = append(t.Rows, []string{
			row.Bench, "dvfs", artifact.F(row.DVFSClockMHz), artifact.F(row.DVFSRuntime),
			artifact.F(row.BaseRuntime), artifact.F(row.DVFSMaxGPUW), artifact.F(row.DVFSMeanGPU),
		})
	}
	return t
}

// CSV returns the predictor evaluation of Extension D.
func (r ExtDResult) CSV() artifact.Table {
	t := artifact.Table{
		Name:   "extd_prediction",
		Header: []string{"benchmark", "nodes", "measured_mode_w", "predicted_mode_w", "error_pct"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			row.Bench, artifact.I(row.Nodes), artifact.F(row.Measured),
			artifact.F(row.Predicted), artifact.F(row.ErrPct),
		})
	}
	return t
}
