package experiments

import (
	"reflect"
	"sync"
	"testing"

	"vasppower/internal/core"
	"vasppower/internal/workloads"
)

// The parallel engine's contract: worker count is invisible in the
// results. Every random draw comes from a seed-split stream and every
// result lands in a slot chosen by index, so Workers:8 must reproduce
// Workers:1 bit for bit — including with Repeats > 1, where the
// repeats themselves fan out.

func TestRunScalingParallelMatchesSerial(t *testing.T) {
	serialCfg := Config{Seed: 42, Quick: true, Repeats: 2, Workers: 1}
	parallelCfg := serialCfg
	parallelCfg.Workers = 8

	ResetCache()
	serial, err := RunScaling(serialCfg)
	if err != nil {
		t.Fatal(err)
	}
	ResetCache()
	parallel, err := RunScaling(parallelCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("RunScaling: Workers:8 result differs from Workers:1 at the same seed")
	}
}

func TestRunCapStudyParallelMatchesSerial(t *testing.T) {
	serialCfg := Config{Seed: 42, Quick: true, Repeats: 2, Workers: 1}
	parallelCfg := serialCfg
	parallelCfg.Workers = 8

	ResetCache()
	serial, err := RunCapStudy(serialCfg)
	if err != nil {
		t.Fatal(err)
	}
	ResetCache()
	parallel, err := RunCapStudy(parallelCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("RunCapStudy: Workers:8 result differs from Workers:1 at the same seed")
	}
}

// TestSpecKeyCapNormalization: a cap at or above the platform's GPU
// TDP is the stock power limit, so it must key identically to
// uncapped, while a binding cap keys distinctly.
func TestSpecKeyCapNormalization(t *testing.T) {
	b, ok := workloads.ByName("Si256_hse")
	if !ok {
		t.Fatal("Si256_hse missing")
	}
	base := core.MeasureSpec{Bench: b}
	uncapped := SpecKey(base)
	tdp := quickCfg().platform().GPU.TDP
	for _, capW := range []float64{tdp, tdp + 50, tdp * 10} {
		s := base
		s.CapW = capW
		if got := SpecKey(s); got != uncapped {
			t.Fatalf("cap %g W keys as %q, want uncapped key %q", capW, got, uncapped)
		}
	}
	s := base
	s.CapW = tdp - 150
	if SpecKey(s) == uncapped {
		t.Fatalf("binding %g W cap keys as uncapped", s.CapW)
	}
}

// TestCachedMeasureGroupMatchesSpec: the group path (one shared
// incremental sweep context) must be bit-identical to independent
// CachedMeasureSpec calls, including a non-binding cap point that
// shares the uncapped point's cache entry.
func TestCachedMeasureGroupMatchesSpec(t *testing.T) {
	b, ok := workloads.ByName("B.hR105_hse")
	if !ok {
		t.Fatal("B.hR105_hse missing")
	}
	spec := core.MeasureSpec{Bench: b, Nodes: 1, Repeats: 1, Seed: 11}
	tdp := quickCfg().platform().GPU.TDP
	caps := []float64{0, 250, tdp + 100}
	ResetCache()
	got, err := CachedMeasureGroup(spec, caps)
	if err != nil {
		t.Fatal(err)
	}
	ResetCache()
	for i, capW := range caps {
		pt := spec
		pt.CapW = capW
		want, err := CachedMeasureSpec(pt)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got[i], want) {
			t.Fatalf("cap %g W: group profile differs from per-point profile", capW)
		}
	}
}

// Hammer the shared measurement cache from many goroutines asking for
// a handful of overlapping keys. Under -race this is the proof that
// the singleflight cache and the measurement path are data-race free;
// in any mode it checks that concurrent callers of the same key all
// observe the same profile.
func TestConcurrentMeasureConsistency(t *testing.T) {
	ResetCache()
	benches := workloads.TableI()[:3]

	// Reference profiles, measured serially on a fresh cache.
	want := make([]core.JobProfile, len(benches))
	for i, b := range benches {
		jp, err := measure(Config{Seed: 42}, b, 1, 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = jp
	}
	ResetCache()

	const goroutines = 16
	const iters = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				i := (g + it) % len(benches)
				jp, err := measure(Config{Seed: 42}, benches[i], 1, 1, 0)
				if err != nil {
					errs <- err
					return
				}
				if !reflect.DeepEqual(jp, want[i]) {
					t.Errorf("goroutine %d: %s profile differs from serial reference", g, benches[i].Name)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
