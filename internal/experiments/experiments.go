// Package experiments contains one runner per table and figure of the
// paper's evaluation, plus two extension studies. Every runner
// returns a typed result with a Render method that reproduces the
// figure's content as terminal text; EXPERIMENTS.md records the
// paper-vs-measured comparison.
package experiments

import (
	"bytes"
	"context"
	"encoding/gob"
	"strconv"
	"sync"

	"vasppower/internal/core"
	"vasppower/internal/hw/platform"
	"vasppower/internal/memo"
	"vasppower/internal/memo/diskcache"
	"vasppower/internal/obs"
	"vasppower/internal/omni"
	"vasppower/internal/par"
	"vasppower/internal/sched"
	"vasppower/internal/sim"
	"vasppower/internal/telemetry"
	"vasppower/internal/timeseries"
	"vasppower/internal/workloads"
)

// Config controls experiment execution.
type Config struct {
	// Platform names the registered hardware platform measurements run
	// on; empty means the default (the paper's perlmutter-a100).
	Platform string
	// Seed drives all stochastic elements (node variability, jitter).
	Seed uint64
	// Repeats per measurement; the paper uses 5. Zero means 5, or 1
	// in Quick mode.
	Repeats int
	// Quick trims sweeps and repeats so the full suite runs in
	// seconds (used by tests; the defaults reproduce the paper).
	Quick bool
	// Workers bounds how many measurements a runner executes
	// concurrently (0 = one per available CPU, 1 = serial). Every
	// measurement is seeded independently of execution order and every
	// sweep assembles by index, so results are identical for all
	// values.
	Workers int
	// Obs carries the run's telemetry sinks (metrics and span tracer).
	// Nil — the default — disables telemetry entirely; metrics and
	// spans never influence results or rendered output either way.
	Obs *obs.Obs
}

// DefaultConfig returns the paper-faithful configuration.
func DefaultConfig() Config { return Config{Seed: 2024, Repeats: 5} }

func (c Config) repeats() int {
	if c.Repeats > 0 {
		return c.Repeats
	}
	if c.Quick {
		return 1
	}
	return 5
}

func (c Config) seed() uint64 {
	if c.Seed == 0 {
		return 2024
	}
	return c.Seed
}

// workers resolves Config.Workers to an effective pool size.
func (c Config) workers() int { return par.Workers(c.Workers) }

// platform resolves Config.Platform against the registry; an unknown
// name panics, since runners have no error path for configuration
// mistakes and the CLI validates the flag before building a Config.
func (c Config) platform() platform.Platform {
	if c.Platform == "" {
		return platform.Default()
	}
	p, err := platform.Get(c.Platform)
	if err != nil {
		panic(err)
	}
	return p
}

// measurement cache: the scaling, capping, and profiling figures share
// many runs; each (benchmark, nodes, cap, repeats, seed) is measured
// once per process. The sharded singleflight cache deduplicates
// concurrent misses — when parallel runners race to the same key, one
// computes and the rest wait for its result. EnableDiskCache attaches
// a persistent second tier that carries results across processes.
var cache = memo.New[core.JobProfile]()

// CacheEpoch versions the persistent tier's value schema. It is mixed
// into every disk entry's content address and header, so entries from
// another epoch simply never match. Bump it whenever (a) the
// core.JobProfile shape changes, (b) the gob encoding of any nested
// type changes, or (c) the simulation's semantics change such that an
// old result would be wrong for the same key (anything that would
// change the golden -quick output). The key itself already carries the
// platform name, benchmark size parameters, nodes, repeats, cap, and
// seed at full precision, so ordinary configuration changes need no
// bump.
const CacheEpoch = "jobprofile-gob-v1"

// profileCodec translates JobProfiles for the byte-level disk tier.
// gob round-trips every field exactly (float64s bit-for-bit), which is
// what makes a warm run's rendered output byte-identical to the cold
// run that populated the cache.
func profileCodec() memo.Codec[core.JobProfile] {
	return memo.Codec[core.JobProfile]{
		Encode: func(jp core.JobProfile) ([]byte, error) {
			var buf bytes.Buffer
			if err := gob.NewEncoder(&buf).Encode(jp); err != nil {
				return nil, err
			}
			return buf.Bytes(), nil
		},
		Decode: func(data []byte) (core.JobProfile, error) {
			var jp core.JobProfile
			err := gob.NewDecoder(bytes.NewReader(data)).Decode(&jp)
			return jp, err
		},
	}
}

// diskMu guards the EnableDiskCache/Instrument handshake: whichever
// runs second must still connect the store to the registry.
var (
	diskMu    sync.Mutex
	diskStore *diskcache.Store
	diskReg   *obs.Registry
)

// EnableDiskCache attaches a persistent content-addressed result cache
// under dir as the measurement cache's second tier (memory → disk →
// compute), bounded to maxBytes by LRU eviction (0 = unbounded). It
// returns the opened store so callers can inspect it. If Instrument
// has installed (or later installs) a registry, the store's counters
// register under "diskcache." and land in the run manifest.
func EnableDiskCache(dir string, maxBytes int64) (*diskcache.Store, error) {
	st, err := diskcache.Open(diskcache.Options{Dir: dir, MaxBytes: maxBytes, Epoch: CacheEpoch})
	if err != nil {
		return nil, err
	}
	diskMu.Lock()
	diskStore = st
	if diskReg != nil {
		st.Instrument(diskcache.NewMetrics(diskReg, "diskcache"))
	}
	diskMu.Unlock()
	cache.SetStore(st, profileCodec())
	return st, nil
}

// DisableDiskCache detaches the persistent tier (entries on disk are
// kept). Tests use it to restore the memory-only configuration.
func DisableDiskCache() {
	diskMu.Lock()
	diskStore = nil
	diskMu.Unlock()
	cache.SetStore(nil, memo.Codec[core.JobProfile]{})
}

// measureKey builds the cache key for one measurement. It includes
// the size parameters so same-named variants (e.g. a synthetic
// Si128_acfdtr next to the Table I one) never collide, the platform
// name AND its efficiency-table hash so two platforms — or the same
// platform with an edited table — never share a profile, the operand
// entropy (which shifts sustained power), and renders every float at
// full precision — %.0f would alias ENCUT 410.4 with 410 and cap
// 149.6 with 150.
func measureKey(p platform.Platform, b workloads.Benchmark, nodes, repeats int, capW float64, seed uint64, entropy float64) string {
	return string(appendMeasureKey(nil, p, b, nodes, repeats, capW, seed, entropy))
}

// appendMeasureKey is measureKey into a caller-owned buffer — the
// serving layer keys every request this way without allocating. A cap
// at or above the GPU's TDP is the stock power limit, not a distinct
// measurement, so it keys as uncapped (core.Measure normalizes the
// spec the same way before running).
func appendMeasureKey(dst []byte, p platform.Platform, b workloads.Benchmark, nodes, repeats int, capW float64, seed uint64, entropy float64) []byte {
	if capW <= 0 || capW >= p.GPU.TDP {
		capW = 0
	}
	dst = append(dst, p.Name...)
	dst = append(dst, '|')
	if p.Efficiency != nil {
		dst = append(dst, p.Efficiency.Hash()...)
	}
	dst = append(dst, '|')
	dst = append(dst, b.Name...)
	dst = append(dst, '|')
	dst = strconv.AppendInt(dst, int64(b.NPLWV()), 10)
	dst = append(dst, '|')
	dst = strconv.AppendInt(dst, int64(b.NBands), 10)
	dst = append(dst, '|')
	dst = strconv.AppendInt(dst, int64(b.NBandsExact), 10)
	dst = append(dst, '|')
	dst = strconv.AppendInt(dst, int64(b.NELM), 10)
	dst = append(dst, '|')
	dst = strconv.AppendFloat(dst, b.ENCUT, 'g', -1, 64)
	dst = append(dst, '|')
	dst = strconv.AppendInt(dst, int64(nodes), 10)
	dst = append(dst, '|')
	dst = strconv.AppendFloat(dst, capW, 'g', -1, 64)
	dst = append(dst, '|')
	dst = strconv.AppendInt(dst, int64(repeats), 10)
	dst = append(dst, '|')
	dst = strconv.AppendUint(dst, seed, 10)
	dst = append(dst, '|')
	dst = strconv.AppendFloat(dst, entropy, 'g', -1, 64)
	return dst
}

// Instrument threads reg through every hot path the measurement
// engine owns: the measurement cache, the worker pools, the simulation
// engine, the OMNI store, and the trace pipeline. Call once at startup
// (a nil reg detaches everything); telemetry is process-wide from then
// on.
func Instrument(reg *obs.Registry) {
	diskMu.Lock()
	diskReg = reg
	st := diskStore
	diskMu.Unlock()
	if reg == nil {
		cache.Instrument(nil)
		if st != nil {
			st.Instrument(nil)
		}
		par.SetMetrics(nil)
		sched.SetMetrics(nil)
		sim.SetMetrics(nil)
		omni.SetMetrics(nil)
		timeseries.SetMetrics(nil)
		telemetry.SetMetrics(nil)
		return
	}
	cache.Instrument(memo.NewMetrics(reg, "memo"))
	if st != nil {
		st.Instrument(diskcache.NewMetrics(reg, "diskcache"))
	}
	par.SetMetrics(par.NewMetrics(reg))
	sched.SetMetrics(sched.NewMetrics(reg))
	sim.SetMetrics(sim.NewMetrics(reg))
	omni.SetMetrics(omni.NewMetrics(reg))
	timeseries.SetMetrics(timeseries.NewMetrics(reg))
	telemetry.SetMetrics(telemetry.NewMetrics(reg))
}

// SpecKey returns the canonical cache identity of spec: the string the
// measurement cache keys it under, after applying the same defaults
// CachedMeasureSpec applies. Two specs with equal SpecKeys are the
// same measurement — the serving layer's response cache leans on this
// to give semantically identical requests (reordered JSON fields,
// explicit-vs-implicit defaults) one pre-serialized response.
func SpecKey(spec core.MeasureSpec) string {
	return string(AppendSpecKey(nil, spec))
}

// AppendSpecKey appends SpecKey(spec) to dst and returns the extended
// buffer — byte-identical to SpecKey, for callers (powerd's request
// path, the sweep micro-batcher) that key requests without
// allocating.
func AppendSpecKey(dst []byte, spec core.MeasureSpec) []byte {
	spec.Platform = platform.OrDefault(spec.Platform)
	if spec.Nodes <= 0 {
		spec.Nodes = 1
	}
	if spec.Repeats <= 0 {
		spec.Repeats = 1
	}
	return appendMeasureKey(dst, spec.Platform, spec.Bench, spec.Nodes, spec.Repeats, spec.CapW, spec.Seed, spec.Entropy)
}

// CachedMeasureSpec runs spec through the process-wide two-tier
// measurement cache: memory, then the disk tier when EnableDiskCache
// has attached one, then core.Measure. It is the entry point the CLIs
// outside powerstudy share, so a profile measured by any tool warms
// every other tool's sweep. Zero spec fields take core.Measure's
// protocol defaults before keying, so equivalent specs hit the same
// entry.
func CachedMeasureSpec(spec core.MeasureSpec) (core.JobProfile, error) {
	jp, _, err := cachedDo(SpecKey(spec), spec)
	return jp, err
}

// CachedMeasureGroup measures spec at each cap point through the same
// two-tier cache as CachedMeasureSpec, but shares one incremental
// sweep context (the cap-independent resolution phase) across every
// point that actually computes. The context is built lazily on the
// first cache miss, so a fully warm group touches only the cache; each
// point still goes through cache.Do individually, keeping singleflight
// dedup and disk write-back per point. Results are bit-identical to
// per-point CachedMeasureSpec calls.
func CachedMeasureGroup(spec core.MeasureSpec, caps []float64) ([]core.JobProfile, error) {
	out := make([]core.JobProfile, len(caps))
	var sctx *core.SweepContext
	defer func() {
		if sctx != nil {
			sctx.Close()
		}
	}()
	for i, capW := range caps {
		pt := spec
		pt.CapW = capW
		jp, err := cache.Do(context.Background(), SpecKey(pt), func() (core.JobProfile, error) {
			if sctx == nil {
				base := spec
				base.CapW = 0
				sctx = core.NewSweepContext(base)
			}
			return sctx.MeasureCap(capW)
		})
		if err != nil {
			return nil, err
		}
		out[i] = jp
	}
	return out, nil
}

// cachedDo is the shared lookup: memory → disk → compute, reporting
// whether this caller's flight ran the computation.
func cachedDo(key string, spec core.MeasureSpec) (core.JobProfile, bool, error) {
	computed := false
	jp, err := cache.Do(context.Background(), key, func() (core.JobProfile, error) {
		computed = true
		return core.Measure(spec)
	})
	return jp, computed, err
}

// measure runs (or recalls) one benchmark measurement on cfg's
// platform at cfg's seed. Every evaluation opens a "measure" span
// (when cfg.Obs carries a tracer) recording the spec, the wall time,
// and whether the cache — either tier — served it without computing.
func measure(cfg Config, b workloads.Benchmark, nodes, repeats int, capW float64) (core.JobProfile, error) {
	p := cfg.platform()
	key := measureKey(p, b, nodes, repeats, capW, cfg.seed(), 0)
	sp := cfg.Obs.Span("measure")
	jp, computed, err := cachedDo(key, core.MeasureSpec{
		Bench: b, Platform: p, Nodes: nodes, Repeats: repeats,
		CapW: capW, Seed: cfg.seed(),
	})
	sp.Set("bench", b.Name).Set("platform", p.Name).Set("nodes", nodes).
		Set("repeats", repeats).Set("cap_w", capW).
		Set("cache_hit", !computed).Set("error", err != nil)
	sp.End()
	return jp, err
}

// measureGroup is measure across a cap sweep of one benchmark: the
// same per-point cache keys and "measure" spans, but points that miss
// the cache share one incremental sweep context (built lazily on the
// first miss, so a warm sweep never pays the resolution phase).
// Results are bit-identical to per-point measure calls.
func measureGroup(cfg Config, b workloads.Benchmark, nodes, repeats int, caps []float64) ([]core.JobProfile, error) {
	p := cfg.platform()
	out := make([]core.JobProfile, len(caps))
	var sctx *core.SweepContext
	defer func() {
		if sctx != nil {
			sctx.Close()
		}
	}()
	for i, capW := range caps {
		key := measureKey(p, b, nodes, repeats, capW, cfg.seed(), 0)
		sp := cfg.Obs.Span("measure")
		computed := false
		jp, err := cache.Do(context.Background(), key, func() (core.JobProfile, error) {
			computed = true
			if sctx == nil {
				sctx = core.NewSweepContext(core.MeasureSpec{
					Bench: b, Platform: p, Nodes: nodes, Repeats: repeats,
					Seed: cfg.seed(),
				})
			}
			return sctx.MeasureCap(capW)
		})
		sp.Set("bench", b.Name).Set("platform", p.Name).Set("nodes", nodes).
			Set("repeats", repeats).Set("cap_w", capW).
			Set("cache_hit", !computed).Set("error", err != nil)
		sp.End()
		if err != nil {
			return nil, err
		}
		out[i] = jp
	}
	return out, nil
}

// ResetCache clears the measurement cache's memory tier (tests use it
// to force fresh in-process runs). With a disk tier attached the next
// lookup hits disk, not a recomputation; ResetCacheAll clears both
// tiers for a truly cold start.
func ResetCache() { cache.Reset() }

// ResetCacheAll clears both the memory tier and, when attached, every
// entry in the disk tier.
func ResetCacheAll() error { return cache.ResetAll() }

// highMode extracts the node-level high power mode (0 when absent).
func highMode(jp core.JobProfile) float64 {
	if jp.NodeTotal.HasMode {
		return jp.NodeTotal.HighMode.X
	}
	return 0
}

// gpuMode extracts the mean per-GPU high power mode.
func gpuMode(jp core.JobProfile) float64 {
	var sum float64
	n := 0
	for _, g := range jp.GPUs {
		if g.HasMode {
			sum += g.HighMode.X
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
