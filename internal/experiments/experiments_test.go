package experiments

import (
	"strings"
	"testing"
)

func quickCfg() Config { return Config{Seed: 42, Quick: true, Repeats: 1} }

func TestTableI(t *testing.T) {
	res, err := RunTableI(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 7 {
		t.Fatalf("rows = %d, want 7", len(res.Rows))
	}
	// Spot-check published values.
	for _, row := range res.Rows {
		switch row.Name {
		case "Si256_hse":
			if row.Electrons != 1020 || row.Ions != 255 || row.NBands != 640 ||
				row.NPLWV != 512000 || row.NELM != 41 {
				t.Fatalf("Si256_hse row wrong: %+v", row)
			}
		case "PdO4":
			if row.Electrons != 3288 || row.NBands != 2048 || row.NPLWV != 518400 {
				t.Fatalf("PdO4 row wrong: %+v", row)
			}
		case "Si128_acfdtr":
			if row.NBandsExact != 23506 || row.NPLWV != 216000 {
				t.Fatalf("Si128_acfdtr row wrong: %+v", row)
			}
		}
	}
	out := res.Render()
	if !strings.Contains(out, "Si256_hse") || !strings.Contains(out, "80x80x80") {
		t.Fatal("render missing content")
	}
}

func TestFig1NodeVariability(t *testing.T) {
	res, err := RunFig1(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerNode) != res.Nodes {
		t.Fatalf("per-node series = %d", len(res.PerNode))
	}
	// Identical DGEMM work still shows node-to-node power spread
	// (manufacturing variability, §III-B.2).
	if res.Spread["dgemm"] <= 0 {
		t.Fatal("no node-to-node variability in DGEMM phase")
	}
	// Idle is the lowest phase; DGEMM the highest.
	for node, means := range res.PhaseMeans {
		if means["idle"] >= means["dgemm"] {
			t.Fatalf("node %s: idle %.0f not below dgemm %.0f", node, means["idle"], means["dgemm"])
		}
		if means["idle"] < 390 || means["idle"] > 530 {
			t.Fatalf("node %s idle %.0f outside published 410-510 W band", node, means["idle"])
		}
	}
	if !strings.Contains(res.Render(), "dgemm") {
		t.Fatal("render missing phases")
	}
}

func TestFig2SamplingStudy(t *testing.T) {
	res, err := RunFig2(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != len(Fig2Intervals()) {
		t.Fatalf("points = %d", len(res.Points))
	}
	// Paper finding: the high power mode is stable at every interval.
	if !res.HighModeStable(25) {
		t.Fatalf("high power mode not stable across intervals: %+v", res.Points)
	}
	// Max power can only decrease (averaging) as intervals coarsen.
	for i := 1; i < len(res.Points); i++ {
		if res.Points[i].Max > res.Points[0].Max+1e-6 {
			t.Fatal("max power increased under averaging")
		}
	}
	if !strings.Contains(res.Render(), "high mode") {
		t.Fatal("render missing content")
	}
}

func TestFig3Profiles(t *testing.T) {
	res, err := RunFig3(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) == 0 {
		t.Fatal("no entries")
	}
	for _, e := range res.Entries {
		if e.HighMode <= 0 || e.Max < e.HighMode || e.Min > e.Median {
			t.Fatalf("%s: inconsistent stats %+v", e.Bench, e)
		}
		if e.Bench == "Si128_acfdtr" {
			// Multi-modal (GPU bursts vs CPU-only valley).
			if !e.MultiModal {
				t.Fatal("ACFDTR profile should be multi-modal")
			}
		}
	}
	if !strings.Contains(res.Render(), "histogram") {
		t.Fatal("render missing content")
	}
}

func TestScalingFigs4And5(t *testing.T) {
	res, err := RunScaling(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for name, pts := range res.Series {
		if len(pts) == 0 {
			t.Fatalf("%s: empty series", name)
		}
		// Parallel efficiency decreases with node count.
		for i := 1; i < len(pts); i++ {
			if pts[i].ParEff > pts[i-1].ParEff+1e-9 {
				t.Fatalf("%s: PE increased with nodes", name)
			}
		}
		// 1-node PE is 100% by construction.
		if pts[0].ParEff < 0.999 {
			t.Fatalf("%s: base PE %v", name, pts[0].ParEff)
		}
	}
	lo, hi := res.ModeRange()
	if hi-lo < 200 {
		t.Fatalf("workload power range too narrow: %.0f–%.0f W", lo, hi)
	}
	if !strings.Contains(res.Fig4Render(), "%") || !strings.Contains(res.Fig5Render(), "W") {
		t.Fatal("renders missing content")
	}
}

func TestFig6SizeSweep(t *testing.T) {
	res, err := RunFig6(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) < 3 {
		t.Fatal("too few points")
	}
	// Power rises with system size.
	for i := 1; i < len(res.Points); i++ {
		if res.Points[i].GPUSumMode <= res.Points[i-1].GPUSumMode {
			t.Fatalf("4-GPU mode not increasing: %+v", res.Points)
		}
	}
	// And stays below the node TDP.
	for _, p := range res.Points {
		if p.NodeMode >= res.NodeTDP {
			t.Fatalf("node mode %v exceeds TDP", p.NodeMode)
		}
	}
	if !strings.Contains(res.Render(), "atoms") {
		t.Fatal("render missing content")
	}
}

func TestFig7ParameterSweeps(t *testing.T) {
	res, err := RunFig7(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// NPLWV sweep: power rises with plane waves.
	first, last := res.NPLWVSweep[0], res.NPLWVSweep[len(res.NPLWVSweep)-1]
	if last.NodeMode <= first.NodeMode {
		t.Fatalf("power did not rise with NPLWV: %.0f -> %.0f", first.NodeMode, last.NodeMode)
	}
	// NBANDS sweep: power stays flat (<6% variation) while energy and
	// runtime grow.
	nb := res.NBandsSweep
	if len(nb) < 2 {
		t.Fatal("bands sweep too short")
	}
	for _, p := range nb[1:] {
		rel := p.NodeMode/nb[0].NodeMode - 1
		if rel > 0.06 || rel < -0.06 {
			t.Fatalf("power moved %.1f%% with NBANDS", rel*100)
		}
	}
	if nb[len(nb)-1].EnergyMJ <= nb[0].EnergyMJ {
		t.Fatal("energy did not grow with NBANDS")
	}
	if nb[len(nb)-1].Runtime <= nb[0].Runtime {
		t.Fatal("runtime did not grow with NBANDS")
	}
	if !strings.Contains(res.Render(), "NBANDS") {
		t.Fatal("render missing content")
	}
}

func TestFig8ConcurrencySweep(t *testing.T) {
	res, err := RunFig8(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if !res.EnergyMonotone() {
		t.Fatalf("energy to solution not monotone: %+v", res.Points)
	}
	// Power holds within 10% while PE ≥ 70%.
	base := res.Points[0].NodeMode
	for _, p := range res.Points {
		if p.ParEff >= 0.70 {
			rel := p.NodeMode/base - 1
			if rel < -0.10 || rel > 0.10 {
				t.Fatalf("node mode moved %.1f%% at PE %.0f%%", rel*100, p.ParEff*100)
			}
		}
	}
	if !strings.Contains(res.Render(), "energy") {
		t.Fatal("render missing content")
	}
}

func TestFig9MethodViolins(t *testing.T) {
	res, err := RunFig9(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// HSE ≫ plain DFT on the same structure.
	var hse, dft float64
	for _, e := range res.Entries {
		if e.Atoms != 128 {
			continue
		}
		switch e.Method {
		case "hse":
			hse = e.HighMode
		case "dft_rmm":
			dft = e.HighMode
		}
	}
	if hse == 0 || dft == 0 {
		t.Fatalf("missing modes: hse=%v dft=%v", hse, dft)
	}
	if hse-dft < 300 {
		t.Fatalf("HSE-DFT gap only %.0f W; paper reports >600 W on average", hse-dft)
	}
	if !strings.Contains(res.Render(), "hse") {
		t.Fatal("render missing content")
	}
}

func TestCapStudyFigs10And12(t *testing.T) {
	res, err := RunCapStudy(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for name, pts := range res.Series {
		for _, p := range pts {
			// Caps respected except at 100 W (overshoot allowed).
			if p.CapW > 150 && p.ModeOverCap > 1.01 {
				t.Fatalf("%s: cap %v overshot (%.2f)", name, p.CapW, p.ModeOverCap)
			}
			if p.RelPerf > 1.001 {
				t.Fatalf("%s: capped run faster than baseline", name)
			}
		}
	}
	// GaAsBi-64 is insensitive even at 100 W (<5%).
	if slow, err := res.SlowdownAt("GaAsBi-64", 100); err != nil || slow > 0.05 {
		t.Fatalf("GaAsBi-64 at 100 W: %.1f%% (%v)", slow*100, err)
	}
	// The hybrid benchmark barely moves at 300 W.
	if slow, err := res.SlowdownAt("B.hR105_hse", 300); err != nil || slow > 0.05 {
		t.Fatalf("B.hR105_hse at 300 W: %.1f%% (%v)", slow*100, err)
	}
	if !strings.Contains(res.Fig10Render(), "fraction") ||
		!strings.Contains(res.Fig12Render(), "1.00") {
		t.Fatal("renders missing content")
	}
}

func TestFig11CapTimeline(t *testing.T) {
	res, err := RunFig11(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Peaks clipped substantially; troughs (CPU phase) ~unchanged.
	if res.PeakReduction < 0.2 {
		t.Fatalf("peak reduction only %.0f%%", res.PeakReduction*100)
	}
	if res.TroughChange > 50 || res.TroughChange < -50 {
		t.Fatalf("trough moved %.0f W; should be untouched", res.TroughChange)
	}
	if res.RuntimeStretch <= 0 {
		t.Fatal("capping should stretch the runtime")
	}
	if !strings.Contains(res.Render(), "capped") {
		t.Fatal("render missing content")
	}
}

func TestFig13ConcurrencyIndependence(t *testing.T) {
	res, err := RunFig13(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// The cap response is similar at every node count.
	for _, cap := range res.Caps {
		if spread := res.MaxSpreadAt(cap); spread > 0.15 {
			t.Fatalf("cap %v W: response spread %.2f across node counts", cap, spread)
		}
	}
	if !strings.Contains(res.Render(), "nodes") {
		t.Fatal("render missing content")
	}
}

func TestExtScheduler(t *testing.T) {
	res, err := RunExtScheduler(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != 3 {
		t.Fatalf("policies = %d", len(res.Results))
	}
	byName := map[string]int{}
	for i, r := range res.Results {
		byName[r.Policy] = i
		if r.Completed != res.Jobs {
			t.Fatalf("%s completed %d of %d", r.Policy, r.Completed, res.Jobs)
		}
		if r.PeakPowerW > res.BudgetW+1e-6 {
			t.Fatalf("%s violated the budget", r.Policy)
		}
	}
	aware := res.Results[byName["profile-aware"]]
	nocap := res.Results[byName["nocap"]]
	if aware.MeanWait > nocap.MeanWait {
		t.Fatalf("profile-aware wait %v worse than nocap %v", aware.MeanWait, nocap.MeanWait)
	}
	if aware.MeanPerfLoss > 0.10 {
		t.Fatalf("profile-aware mean loss %.1f%%", aware.MeanPerfLoss*100)
	}
	if !strings.Contains(res.Render(), "profile-aware") {
		t.Fatal("render missing content")
	}
}

func TestExtRepeats(t *testing.T) {
	res, err := RunExtRepeats(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runtimes) < 3 {
		t.Fatal("too few repeats")
	}
	if res.BestRuntime > res.MeanRuntime {
		t.Fatal("best runtime exceeds mean")
	}
	// Runtime varies; the power mode is stable across repeats.
	if res.ModeSpreadW > 40 {
		t.Fatalf("mode spread %.0f W too large", res.ModeSpreadW)
	}
	if !strings.Contains(res.Render(), "repeat") {
		t.Fatal("render missing content")
	}
}

func TestExtCCappingBeatsDVFS(t *testing.T) {
	res, err := RunExtC(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, row := range res.Rows {
		// Both mechanisms honor the target (within sampling noise).
		if row.CapMaxGPUW > res.TargetW*1.02 {
			t.Fatalf("%s: cap missed target (%.0f W)", row.Bench, row.CapMaxGPUW)
		}
		if row.DVFSMaxGPUW > res.TargetW*1.02 {
			t.Fatalf("%s: DVFS missed target (%.0f W)", row.Bench, row.DVFSMaxGPUW)
		}
		// Capping loses no more performance than DVFS at equal targets.
		if row.CapRuntime > row.DVFSRuntime*1.001 {
			t.Fatalf("%s: capping (%.1f s) slower than DVFS (%.1f s)",
				row.Bench, row.CapRuntime, row.DVFSRuntime)
		}
	}
	if !res.CappingWins() {
		t.Fatal("CappingWins should hold")
	}
	if !strings.Contains(res.Render(), "DVFS") {
		t.Fatal("render missing content")
	}
}

func TestExtDPredictor(t *testing.T) {
	res, err := RunExtD(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.TrainSamples < 10 {
		t.Fatalf("only %d training samples", res.TrainSamples)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no held-out predictions")
	}
	// Predictions should be useful for scheduling: within ~25% on
	// held-out production benchmarks.
	if res.MAPE > 0.25 {
		t.Fatalf("MAPE %.1f%% too large", res.MAPE*100)
	}
	if !strings.Contains(res.Render(), "MAPE") {
		t.Fatal("render missing content")
	}
}

func TestExtEMILC(t *testing.T) {
	res, err := RunExtE(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 4 {
		t.Fatalf("points = %d", len(res.Points))
	}
	// MILC tolerates 200 W nearly for free.
	for _, p := range res.Points {
		if p.CapW >= 200 && p.RelPerf < 0.95 {
			t.Fatalf("MILC lost %.0f%% at %v W", (1-p.RelPerf)*100, p.CapW)
		}
	}
	// Its GPU mode sits in the bandwidth-bound band, far from both
	// idle and TDP.
	if m := res.Points[0].GPUMode; m < 180 || m > 320 {
		t.Fatalf("MILC GPU mode %v W", m)
	}
	if !strings.Contains(res.Render(), "MILC") {
		t.Fatal("render missing content")
	}
	if err := res.CSV().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestExtFSignatureClustering(t *testing.T) {
	res, err := RunExtF(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) < 8 {
		t.Fatalf("fleet too small: %d jobs", len(res.Jobs))
	}
	// Telemetry-only signatures should largely recover the classes.
	if res.Purity < 0.75 {
		t.Fatalf("cluster purity %.0f%% too low", res.Purity*100)
	}
	// MILC jobs land in the same cluster as each other.
	var milcClusters []int
	for _, j := range res.Jobs {
		if j.TrueClass == "milc" {
			milcClusters = append(milcClusters, j.Cluster)
		}
	}
	if len(milcClusters) < 2 {
		t.Fatal("missing MILC jobs")
	}
	for _, c := range milcClusters[1:] {
		if c != milcClusters[0] {
			t.Fatalf("MILC jobs split across clusters: %v", milcClusters)
		}
	}
	if !strings.Contains(res.Render(), "purity") {
		t.Fatal("render missing content")
	}
	if err := res.CSV().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestExtGMetricAblation(t *testing.T) {
	res, err := RunExtG(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	// On the multi-modal ACFDTR profile: reserving by the mean leaves
	// the job over budget for a large share of its runtime; reserving
	// by the high power mode does not.
	meanCell, ok1 := res.Cell("Si128_acfdtr", "mean")
	modeCell, ok2 := res.Cell("Si128_acfdtr", "high-mode")
	maxCell, ok3 := res.Cell("Si128_acfdtr", "max")
	if !ok1 || !ok2 || !ok3 {
		t.Fatal("missing cells")
	}
	if meanCell.Violation < 0.2 {
		t.Fatalf("mean reservation should be violated often: %v", meanCell.Violation)
	}
	if modeCell.Violation > 0.15 {
		t.Fatalf("mode reservation violated too often: %v", modeCell.Violation)
	}
	// Max never violates but wastes more headroom than the mode.
	if maxCell.Violation != 0 {
		t.Fatalf("max reservation violated: %v", maxCell.Violation)
	}
	if maxCell.HeadroomW <= modeCell.HeadroomW {
		t.Fatalf("max headroom %v should exceed mode headroom %v",
			maxCell.HeadroomW, modeCell.HeadroomW)
	}
	if !strings.Contains(res.Render(), "headroom") {
		t.Fatal("render missing content")
	}
	if err := res.CSV().Validate(); err != nil {
		t.Fatal(err)
	}
}
