package experiments

import (
	"context"
	"fmt"
	"strings"

	"vasppower/internal/par"
	"vasppower/internal/report"
	"vasppower/internal/sched"
	"vasppower/internal/stats"
	"vasppower/internal/workloads"
)

// ExtSchedulerResult is the §VI extension study: the proposed
// profile-aware power capping deployed in a batch scheduler, compared
// against no capping and a uniform cap, under a facility power
// budget.
type ExtSchedulerResult struct {
	ClusterNodes int
	BudgetW      float64
	Jobs         int
	Results      []sched.Result
}

// RunExtScheduler simulates the three policies over one job mix.
func RunExtScheduler(cfg Config) (ExtSchedulerResult, error) {
	nodes := 8
	jobsN := 24
	if cfg.Quick {
		jobsN = 8
	}
	budget := float64(nodes) * 1100
	res := ExtSchedulerResult{ClusterNodes: nodes, BudgetW: budget, Jobs: jobsN}
	jobs := sched.SyntheticJobMix(jobsN, 90, cfg.seed())
	policies := []sched.Policy{
		sched.NoCap{NodeTDP: 2350},
		sched.UniformCap{Watts: 200, HostWatts: 350},
		sched.DefaultProfileAware(),
	}
	// Simulate copies the job list and each policy gets its own
	// catalog, so the three policies run concurrently.
	results := make([]sched.Result, len(policies))
	err := par.ForEach(context.Background(), cfg.workers(), len(policies),
		func(_ context.Context, i int) error {
			r, err := sched.Simulate(sched.SimConfig{
				ClusterNodes: nodes,
				BudgetW:      budget,
				IdleNodeW:    460,
				Policy:       policies[i],
				Catalog:      sched.NewCatalogOn(cfg.platform(), cfg.seed()),
			}, jobs)
			if err != nil {
				return err
			}
			results[i] = r
			return nil
		})
	if err != nil {
		return res, err
	}
	res.Results = results
	return res, nil
}

// Render draws the policy comparison.
func (r ExtSchedulerResult) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Extension A — power-aware scheduling ablation (%d nodes, %.0f kW budget, %d jobs)\n\n",
		r.ClusterNodes, r.BudgetW/1000, r.Jobs)
	t := report.NewTable("policy", "makespan", "mean wait", "peak power", "energy", "mean perf loss", "throughput", "budget util.")
	for _, res := range r.Results {
		t.AddRow(
			res.Policy,
			report.Seconds(res.Makespan),
			report.Seconds(res.MeanWait),
			fmt.Sprintf("%.1f kW", res.PeakPowerW/1000),
			fmt.Sprintf("%.1f MJ", res.TotalEnergyJ/1e6),
			report.Percent(res.MeanPerfLoss),
			fmt.Sprintf("%.1f jobs/h", res.Throughput),
			report.Percent(res.BudgetUtilization(460)),
		)
	}
	sb.WriteString(t.String())
	sb.WriteString("\ncluster power over the schedule (reserved vs actually drawn):\n")
	for _, res := range r.Results {
		reserved, actual := res.Timelines(460)
		sb.WriteString(report.SeriesLine(res.Policy+" rsv", reserved.Sample(reserved.Duration()/64), 64) + "\n")
		sb.WriteString(report.SeriesLine(res.Policy+" act", actual.Sample(actual.Duration()/64), 64) + "\n")
	}
	sb.WriteString("(profile-aware capping packs more jobs under the budget at <10% per-job cost;\nits reservations track real draw instead of face-value TDP)\n")
	return sb.String()
}

// ExtRepeatsResult is the protocol ablation (§III-B.1): what the
// five-repeat / minimum-runtime selection buys over a single run.
type ExtRepeatsResult struct {
	Bench       string
	Runtimes    []float64
	BestRuntime float64
	MeanRuntime float64
	SpreadPct   float64 // (max−min)/min
	ModePerRun  []float64
	ModeSpreadW float64
}

// RunExtRepeats runs the protocol study.
func RunExtRepeats(cfg Config) (ExtRepeatsResult, error) {
	bench, _ := workloads.ByName("GaAsBi-64")
	res := ExtRepeatsResult{Bench: bench.Name}
	repeats := 5
	if cfg.Quick {
		repeats = 3
	}
	// Run each repeat separately so per-repeat power modes can be
	// compared (the protocol's premise: runtime varies, power modes
	// don't). Each repeat has its own seed, so they fan out freely.
	type rep struct {
		runtime float64
		mode    float64
		hasMode bool
	}
	reps := make([]rep, repeats)
	err := par.ForEach(context.Background(), cfg.workers(), repeats,
		func(_ context.Context, i int) error {
			out, err := workloads.Run(workloads.RunSpec{
				Bench:    bench,
				Platform: cfg.platform(),
				Nodes:    1,
				Repeats:  1,
				Seed:     cfg.seed() + uint64(i)*7919,
			})
			if err != nil {
				return err
			}
			reps[i].runtime = out.BestResult.Runtime
			s := out.Nodes[0].TotalTrace().Sample(2).Slice(out.VASPStart, out.VASPEnd)
			if hm, ok := stats.HighPowerModeOf(s.Values); ok {
				reps[i].mode = hm.X
				reps[i].hasMode = true
			}
			return nil
		})
	if err != nil {
		return res, err
	}
	for _, r := range reps {
		res.Runtimes = append(res.Runtimes, r.runtime)
		if r.hasMode {
			res.ModePerRun = append(res.ModePerRun, r.mode)
		}
	}
	sum, _ := stats.Describe(res.Runtimes)
	res.BestRuntime = sum.Min
	res.MeanRuntime = sum.Mean
	if sum.Min > 0 {
		res.SpreadPct = (sum.Max - sum.Min) / sum.Min * 100
	}
	if len(res.ModePerRun) > 1 {
		ms, _ := stats.Describe(res.ModePerRun)
		res.ModeSpreadW = ms.Max - ms.Min
	}
	return res, nil
}

// Render draws the protocol study.
func (r ExtRepeatsResult) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Extension B — five-repeat protocol (%s, 1 node)\n\n", r.Bench)
	t := report.NewTable("repeat", "runtime", "node high mode")
	for i, rt := range r.Runtimes {
		mode := "-"
		if i < len(r.ModePerRun) {
			mode = fmt.Sprintf("%.0f W", r.ModePerRun[i])
		}
		t.AddRow(fmt.Sprintf("%d", i+1), report.Seconds(rt), mode)
	}
	sb.WriteString(t.String())
	fmt.Fprintf(&sb, "\nbest %.1f s, mean %.1f s, runtime spread %.1f%%, mode spread %.0f W\n",
		r.BestRuntime, r.MeanRuntime, r.SpreadPct, r.ModeSpreadW)
	sb.WriteString("(runtimes jitter run to run; the power mode is stable — hence min-runtime selection)\n")
	return sb.String()
}
