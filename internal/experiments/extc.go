package experiments

import (
	"context"
	"fmt"
	"strings"

	"vasppower/internal/core"
	"vasppower/internal/par"
	"vasppower/internal/report"
	"vasppower/internal/workloads"
)

// ExtCRow compares the two control mechanisms on one benchmark, both
// tuned to keep every GPU at or below the same power target.
type ExtCRow struct {
	Bench string
	// Power capping at TargetW.
	CapRuntime float64
	CapMaxGPUW float64
	CapMeanGPU float64
	// DVFS: the highest static clock whose worst-case GPU power stays
	// within TargetW.
	DVFSClockMHz float64
	DVFSRuntime  float64
	DVFSMaxGPUW  float64
	DVFSMeanGPU  float64
	// Baseline (uncapped, unlocked).
	BaseRuntime float64
}

// ExtCResult is the §V control-mechanism ablation: the paper chooses
// power capping over DVFS because it is "more efficient and accurate
// in power control" (Imes & Zhang [31]). Reproduced mechanism: a
// static clock must be chosen for the worst (most power-hungry)
// kernel, so every lighter kernel runs needlessly slow clocks, while
// a power cap throttles each kernel exactly as much as its own draw
// requires — same worst-case power, less performance lost, and the
// bound is exact rather than indirect.
type ExtCResult struct {
	TargetW float64
	Rows    []ExtCRow
}

// RunExtC measures both mechanisms at a 200 W (50% TDP) per-GPU
// target.
func RunExtC(cfg Config) (ExtCResult, error) {
	res := ExtCResult{TargetW: 200}
	names := []string{"Si256_hse", "Si128_acfdtr", "PdO4"}
	if cfg.Quick {
		names = []string{"B.hR105_hse"}
	}
	// The DVFS bisection inside each row is inherently serial (every
	// step depends on the previous interval), so fan out at the row
	// level: one worker per benchmark.
	rows := make([]ExtCRow, len(names))
	err := par.ForEach(context.Background(), cfg.workers(), len(names),
		func(_ context.Context, ri int) error {
			name := names[ri]
			b, ok := workloads.ByName(name)
			if !ok {
				return fmt.Errorf("experiments: unknown benchmark %s", name)
			}
			row := ExtCRow{Bench: name}

			base, err := measure(cfg, b, 1, cfg.repeats(), 0)
			if err != nil {
				return err
			}
			row.BaseRuntime = base.Runtime

			capped, err := measure(cfg, b, 1, cfg.repeats(), res.TargetW)
			if err != nil {
				return err
			}
			row.CapRuntime = capped.Runtime
			row.CapMaxGPUW = maxGPU(capped)
			row.CapMeanGPU = meanGPU(capped)

			// Find the highest clock whose instantaneous per-GPU power fits
			// the target: bisection over the clock range, evaluating real
			// runs and checking the exact trace maximum (DVFS gives no
			// hardware guarantee, so compliance must hold at every instant,
			// not just on 2 s averages). The nine evaluations re-solve the
			// same resolved schedule, so they ride one incremental sweep
			// context; if the engine declines the spec (e.g. an active
			// telemetry sink), each point falls back to the oracle Run —
			// either path is bit-identical.
			gspec := cfg.platform().GPU
			loMHz, hiMHz := gspec.MinClockFrac*gspec.MaxClockMHz, gspec.MaxClockMHz
			spec := workloads.RunSpec{
				Bench: b, Platform: cfg.platform(), Nodes: 1,
				Repeats: cfg.repeats(), Seed: cfg.seed(),
			}
			sw, swErr := workloads.NewSweep(spec)
			if swErr == nil {
				defer sw.Close()
			}
			runAt := func(mhz float64) (workloads.RunOutput, error) {
				if swErr == nil {
					return sw.RunClockMHz(mhz)
				}
				pt := spec
				pt.GPUClockLimitMHz = mhz
				return workloads.Run(pt)
			}
			eval := func(mhz float64) (core.JobProfile, float64, error) {
				out, err := runAt(mhz)
				if err != nil {
					return core.JobProfile{}, 0, err
				}
				traceMax := 0.0
				for i := 0; i < out.Nodes[0].NumGPUs(); i++ {
					if m := out.Nodes[0].GPUTrace(i).MaxPower(); m > traceMax {
						traceMax = m
					}
				}
				return core.ProfileRun(out, core.DefaultSamplingInterval), traceMax, nil
			}
			for i := 0; i < 8; i++ {
				mid := (loMHz + hiMHz) / 2
				_, traceMax, err := eval(mid)
				if err != nil {
					return err
				}
				if traceMax <= res.TargetW {
					loMHz = mid
				} else {
					hiMHz = mid
				}
			}
			row.DVFSClockMHz = loMHz
			jp, traceMax, err := eval(loMHz)
			if err != nil {
				return err
			}
			row.DVFSRuntime = jp.Runtime
			row.DVFSMaxGPUW = traceMax
			row.DVFSMeanGPU = meanGPU(jp)
			rows[ri] = row
			return nil
		})
	if err != nil {
		return res, err
	}
	res.Rows = rows
	return res, nil
}

// maxGPU returns the maximum sampled per-GPU power.
func maxGPU(jp core.JobProfile) float64 {
	m := 0.0
	for _, g := range jp.GPUs {
		if g.Summary.Max > m {
			m = g.Summary.Max
		}
	}
	return m
}

// meanGPU returns the mean per-GPU power (averaged over devices).
func meanGPU(jp core.JobProfile) float64 {
	var s float64
	for _, g := range jp.GPUs {
		s += g.Summary.Mean
	}
	return s / 4
}

// CappingWins reports whether power capping met the target with less
// slowdown than DVFS on every row.
func (r ExtCResult) CappingWins() bool {
	if len(r.Rows) == 0 {
		return false
	}
	for _, row := range r.Rows {
		if row.CapRuntime > row.DVFSRuntime {
			return false
		}
	}
	return true
}

// Render draws the comparison.
func (r ExtCResult) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Extension C — power capping vs DVFS at a %.0f W per-GPU target (1 node)\n\n", r.TargetW)
	t := report.NewTable("benchmark", "control", "setting", "runtime", "slowdown", "max GPU", "mean GPU")
	for _, row := range r.Rows {
		t.AddRow(row.Bench, "power cap", fmt.Sprintf("%.0f W", r.TargetW),
			report.Seconds(row.CapRuntime),
			report.Percent(row.CapRuntime/row.BaseRuntime-1),
			fmt.Sprintf("%.0f W", row.CapMaxGPUW),
			fmt.Sprintf("%.0f W", row.CapMeanGPU))
		t.AddRow("", "DVFS", fmt.Sprintf("%.0f MHz", row.DVFSClockMHz),
			report.Seconds(row.DVFSRuntime),
			report.Percent(row.DVFSRuntime/row.BaseRuntime-1),
			fmt.Sprintf("%.0f W", row.DVFSMaxGPUW),
			fmt.Sprintf("%.0f W", row.DVFSMeanGPU))
	}
	sb.WriteString(t.String())
	sb.WriteString("\n(a static clock must satisfy the hungriest kernel; the cap throttles each\nkernel only as much as its own draw requires — §V's rationale, after [31])\n")
	return sb.String()
}
