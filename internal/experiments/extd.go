package experiments

import (
	"context"
	"fmt"
	"strings"

	"vasppower/internal/dft/incar"
	"vasppower/internal/dft/lattice"
	"vasppower/internal/dft/method"
	"vasppower/internal/par"
	"vasppower/internal/predict"
	"vasppower/internal/report"
	"vasppower/internal/workloads"
)

// ExtDRow is one held-out prediction.
type ExtDRow struct {
	Bench     string
	Nodes     int
	Measured  float64
	Predicted float64
	ErrPct    float64
}

// ExtDResult is the §VI-C extension: a power predictor trained purely
// on synthetic silicon-supercell profiles (features a scheduler can
// read from the INCAR: workload class, NPLWV, bands/GPU, electrons,
// nodes) and evaluated on the held-out Table I production benchmarks.
type ExtDResult struct {
	TrainSamples int
	Rows         []ExtDRow
	MAPE         float64
	MaxErr       float64
}

// RunExtD trains and evaluates the predictor.
func RunExtD(cfg Config) (ExtDResult, error) {
	var res ExtDResult

	// Training corpus: silicon supercells across methods, sizes, and
	// concurrencies. None of the Table I benchmarks appear here.
	type combo struct {
		kind  method.Kind
		sizes []int
	}
	combos := []combo{
		{method.DFTRMM, []int{64, 128, 256, 512, 1024}},
		{method.DFTBD, []int{64, 128, 256, 512, 1024}},
		{method.VDW, []int{64, 128, 256, 512, 1024}},
		{method.DFTBDRMM, []int{64, 256, 1024}},
		{method.DFTCG, []int{64, 256, 1024}},
		{method.HSE, []int{32, 64, 128, 256, 512}},
		{method.ACFDTR, []int{32, 64, 128, 256}},
	}
	nodeCounts := []int{1, 2}
	if cfg.Quick {
		combos = []combo{
			{method.DFTRMM, []int{64, 128, 256, 512}},
			{method.DFTBD, []int{64, 256}},
			{method.VDW, []int{128, 512}},
			{method.HSE, []int{32, 64, 128, 256, 512, 700}},
			{method.ACFDTR, []int{32, 64, 128, 256, 400, 512}},
		}
		nodeCounts = []int{1}
	}
	// Each size contributes several variants so that plane waves,
	// bands, and k-points vary independently of the atom count —
	// without this the silicon family is collinear in log space and
	// the fit cannot extrapolate to other chemistries.
	variants := func(b workloads.Benchmark, kind method.Kind) []workloads.Benchmark {
		out := []workloads.Benchmark{b}
		// Higher cutoff: denser grid at the same electron count.
		hi := b
		hi.ENCUT = b.ENCUT * 1.6
		if grid, err := lattice.FFTGrid(b.Structure, hi.ENCUT, "Normal"); err == nil {
			hi.FFTGrid = grid
			hi.Name = b.Name + "_encut"
			out = append(out, hi)
		}
		// More bands at the same grid.
		nb := b
		nb.NBands = b.NBands * 2
		nb.Name = b.Name + "_nbands"
		out = append(out, nb)
		// A k-point mesh for the plain-DFT kinds (hybrids in the suite
		// are Γ-only).
		if kind != method.HSE && kind != method.ACFDTR {
			kp := b
			kp.KPoints = incar.Mesh(2, 2, 2)
			kp.Name = b.Name + "_kpts"
			out = append(out, kp)
		}
		return out
	}
	// Flatten the training grid into index-addressed tasks, then fan
	// the measurements out. Measurement errors are benign (a size that
	// does not decompose at a node count contributes no sample), so fn
	// never fails; assembly below keeps the serial corpus order.
	type task struct {
		bench workloads.Benchmark
		nodes int
	}
	var tasks []task
	for _, c := range combos {
		for _, atoms := range c.sizes {
			base, err := workloads.SiliconBenchmark(atoms, c.kind)
			if err != nil {
				return res, err
			}
			for _, b := range variants(base, c.kind) {
				for _, nodes := range nodeCounts {
					tasks = append(tasks, task{bench: b, nodes: nodes})
				}
			}
		}
	}
	modes := make([]float64, len(tasks))
	par.ForEach(context.Background(), cfg.workers(), len(tasks),
		func(_ context.Context, i int) error {
			jp, err := measure(cfg, tasks[i].bench, tasks[i].nodes, 1, 0)
			if err != nil {
				return nil // size does not decompose at this count
			}
			modes[i] = highMode(jp)
			return nil
		})
	var train []predict.Sample
	for i, t := range tasks {
		if modes[i] <= 0 {
			continue
		}
		train = append(train, predict.Sample{Bench: t.bench, Nodes: t.nodes, NodeMode: modes[i]})
	}
	res.TrainSamples = len(train)
	model, err := predict.Fit(train, 1e-3)
	if err != nil {
		return res, err
	}

	// Held-out evaluation: the production benchmarks.
	benches := workloads.TableI()
	if cfg.Quick {
		benches = benches[:0]
		for _, name := range []string{"B.hR105_hse", "GaAsBi-64", "Si128_acfdtr"} {
			b, _ := workloads.ByName(name)
			benches = append(benches, b)
		}
	}
	type cell struct {
		mode float64
		err  error
	}
	cells := make([]cell, len(benches))
	par.ForEach(context.Background(), cfg.workers(), len(benches),
		func(_ context.Context, i int) error {
			jp, err := measure(cfg, benches[i], 1, cfg.repeats(), 0)
			if err != nil {
				cells[i].err = err
				return err
			}
			cells[i].mode = highMode(jp)
			return nil
		})
	var test []predict.Sample
	for i, b := range benches {
		if cells[i].err != nil {
			return res, cells[i].err
		}
		if cells[i].mode > 0 {
			test = append(test, predict.Sample{Bench: b, Nodes: 1, NodeMode: cells[i].mode})
		}
	}
	for _, s := range test {
		pred, err := model.Predict(s.Bench, s.Nodes)
		if err != nil {
			return res, err
		}
		errPct := (pred/s.NodeMode - 1) * 100
		res.Rows = append(res.Rows, ExtDRow{
			Bench: s.Bench.Name, Nodes: s.Nodes,
			Measured: s.NodeMode, Predicted: pred, ErrPct: errPct,
		})
	}
	ev, err := model.Evaluate(test)
	if err != nil {
		return res, err
	}
	res.MAPE = ev.MAPE
	res.MaxErr = ev.Max
	return res, nil
}

// Render draws the predicted-vs-measured table.
func (r ExtDResult) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Extension D — §VI-C power prediction from INCAR-visible features\n")
	fmt.Fprintf(&sb, "(trained on %d synthetic silicon profiles; evaluated on held-out Table I jobs)\n\n", r.TrainSamples)
	t := report.NewTable("benchmark", "nodes", "measured mode", "predicted", "error")
	for _, row := range r.Rows {
		t.AddRow(row.Bench,
			fmt.Sprintf("%d", row.Nodes),
			fmt.Sprintf("%.0f W", row.Measured),
			fmt.Sprintf("%.0f W", row.Predicted),
			fmt.Sprintf("%+.1f%%", row.ErrPct))
	}
	sb.WriteString(t.String())
	fmt.Fprintf(&sb, "\nMAPE %.1f%%, worst error %.1f%%\n", r.MAPE*100, r.MaxErr*100)
	sb.WriteString("(accurate enough for the scheduler's power reservations, supporting §VI-C)\n")
	return sb.String()
}
