package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"vasppower/internal/artifact"
	"vasppower/internal/core"
	"vasppower/internal/dft/method"
	"vasppower/internal/par"
	"vasppower/internal/report"
	"vasppower/internal/sched"
	"vasppower/internal/stats"
	"vasppower/internal/workloads"
)

// ExtEPoint is one MILC cap measurement.
type ExtEPoint struct {
	CapW     float64
	Runtime  float64
	RelPerf  float64
	GPUMode  float64
	NodeMode float64
}

// ExtEResult extends the study to NERSC's second application, as
// §VI-B reports was done next ("recently applied to NERSC's second
// top application, MILC" [35]): lattice QCD's bandwidth-bound CG
// solves give a flat, moderate power profile that tolerates even deep
// caps — a different class from every VASP workload, strengthening
// the case for per-application profiles.
type ExtEResult struct {
	Spec     workloads.MILCSpec
	Nodes    int
	Points   []ExtEPoint
	NodeFWHM float64
}

// RunExtE profiles MILC under the cap sweep.
func RunExtE(cfg Config) (ExtEResult, error) {
	spec := workloads.DefaultMILC()
	if cfg.Quick {
		spec.Trajectories = 2
		spec.MDSteps = 10
	}
	res := ExtEResult{Spec: spec, Nodes: 1}
	caps := StudyCapsFor(cfg.platform())
	// Every cap point is an independent MILC run at the same seed.
	profiles := make([]core.JobProfile, len(caps))
	err := par.ForEach(context.Background(), cfg.workers(), len(caps),
		func(_ context.Context, i int) error {
			out, err := workloads.RunMILC(workloads.MILCRunSpec{
				Spec: spec, Platform: cfg.platform(), Nodes: res.Nodes,
				Repeats: cfg.repeats(), GPUPowerLimit: capOrZero(caps[i], cfg.platform().GPU.TDP),
				Seed: cfg.seed(),
			})
			if err != nil {
				return err
			}
			profiles[i] = core.ProfileRun(out, core.DefaultSamplingInterval)
			return nil
		})
	if err != nil {
		return res, err
	}
	var baseRuntime float64
	for i, cap := range caps {
		jp := profiles[i]
		pt := ExtEPoint{CapW: cap, Runtime: jp.Runtime, GPUMode: gpuMode(jp), NodeMode: highMode(jp)}
		if i == 0 {
			baseRuntime = jp.Runtime
			if jp.NodeTotal.HasMode {
				res.NodeFWHM = jp.NodeTotal.HighMode.FWHM
			}
		}
		if jp.Runtime > 0 {
			pt.RelPerf = baseRuntime / jp.Runtime
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// capOrZero maps caps at or above the platform GPU's TDP to 0 (the
// default limit).
func capOrZero(cap, tdp float64) float64 {
	if cap >= tdp {
		return 0
	}
	return cap
}

// Render draws the MILC study.
func (r ExtEResult) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Extension E — beyond VASP: MILC (%s, %d³×%d lattice, %d node)\n\n",
		r.Spec.Name, r.Spec.Lattice[0], r.Spec.Lattice[3], r.Nodes)
	t := report.NewTable("cap", "runtime", "rel. perf", "GPU mode", "node mode")
	for _, p := range r.Points {
		t.AddRow(
			fmt.Sprintf("%.0f W", p.CapW),
			report.Seconds(p.Runtime),
			fmt.Sprintf("%.2f", p.RelPerf),
			fmt.Sprintf("%.0f W", p.GPUMode),
			fmt.Sprintf("%.0f W", p.NodeMode),
		)
	}
	sb.WriteString(t.String())
	fmt.Fprintf(&sb, "\nnode-mode FWHM %.0f W — a flat, bandwidth-bound signature unlike any VASP\nworkload; caps down to 200 W are essentially free ([35]'s finding)\n", r.NodeFWHM)
	return sb.String()
}

// CSV exports the MILC cap study.
func (r ExtEResult) CSV() artifact.Table {
	t := artifact.Table{
		Name:   "exte_milc",
		Header: []string{"cap_w", "runtime_s", "rel_perf", "gpu_mode_w", "node_mode_w"},
	}
	for _, p := range r.Points {
		t.Rows = append(t.Rows, []string{
			artifact.F(p.CapW), artifact.F(p.Runtime), artifact.F(p.RelPerf),
			artifact.F(p.GPUMode), artifact.F(p.NodeMode),
		})
	}
	return t
}

// ExtFJob is one fleet job's power signature.
type ExtFJob struct {
	Name      string
	TrueClass string
	Cluster   int
	Features  []float64
}

// ExtFResult is the §VI-B "top-down" study: instead of a dedicated
// deep-dive per application, jobs are clustered by telemetry-derived
// power signatures alone (no knowledge of their inputs). High purity
// against the true workload classes shows a scheduler could assign
// cap policies statistically for the long tail of applications.
type ExtFResult struct {
	Jobs     []ExtFJob
	K        int
	Purity   float64
	Features []string
}

// signatureFeatures derives the clustering features from a profile:
// everything is telemetry-only (shares, mode position, robust
// spread). Robust statistics (IQR, mode−median) rather than range
// keep brief setup/teardown transients from masking a job's steady
// signature.
func signatureFeatures(jp core.JobProfile) []float64 {
	mode := highMode(jp)
	if mode <= 0 {
		mode = jp.NodeTotal.Summary.Mean
	}
	s := jp.NodeTotal.Summary
	iqr, skew := 0.0, 0.0
	if mode > 0 {
		iqr = (s.Q3 - s.Q1) / mode
		skew = (mode - s.Median) / mode
	}
	return []float64{
		mode / 2350.0, // mode as fraction of node TDP
		jp.GPUShareOfNode(),
		jp.CPUMemShareOfNode(),
		iqr,  // flat (MILC, DFT) vs oscillating (HSE exchange cycles)
		skew, // multi-phase jobs (RPA's CPU valley) sit far below their mode
	}
}

// RunExtF builds the fleet, clusters the signatures, and scores them.
func RunExtF(cfg Config) (ExtFResult, error) {
	res := ExtFResult{
		K:        4,
		Features: []string{"mode/TDP", "gpu-share", "cpumem-share", "iqr/mode", "(mode-median)/mode"},
	}
	if !cfg.Quick {
		// The full fleet is larger and the DFT class spans a wide
		// power range (the paper's own Fig. 5 point); one extra
		// cluster absorbs that spread.
		res.K = 5
	}
	// VASP fleet: every Table I benchmark (its true class from the
	// INCAR), at one node.
	benches := workloads.TableI()
	if cfg.Quick {
		benches = benches[:0]
		for _, name := range []string{"B.hR105_hse", "GaAsBi-64", "PdO2", "Si128_acfdtr"} {
			b, _ := workloads.ByName(name)
			benches = append(benches, b)
		}
	}
	// Flatten the fleet — Table I jobs, silicon synthetics, MILC — into
	// one index-addressed task list and fan the profiling out.
	spec := workloads.DefaultMILC()
	if cfg.Quick {
		spec.Trajectories = 2
		spec.MDSteps = 10
	}
	var tasks []func() (ExtFJob, error)
	for _, b := range benches {
		b := b
		tasks = append(tasks, func() (ExtFJob, error) {
			jp, err := measure(cfg, b, 1, cfg.repeats(), 0)
			if err != nil {
				return ExtFJob{}, err
			}
			return ExtFJob{
				Name:      b.Name,
				TrueClass: sched.Classify(b.Method).String(),
				Features:  signatureFeatures(jp),
			}, nil
		})
	}
	// Silicon synthetics widen each class's membership.
	for _, atoms := range []int{128, 512} {
		for _, kind := range kindsForExtF(cfg) {
			atoms, kind := atoms, kind
			tasks = append(tasks, func() (ExtFJob, error) {
				b, err := workloads.SiliconBenchmark(atoms, kind)
				if err != nil {
					return ExtFJob{}, err
				}
				jp, err := measure(cfg, b, 1, 1, 0)
				if err != nil {
					return ExtFJob{}, err
				}
				return ExtFJob{
					Name:      "syn:" + b.Name,
					TrueClass: sched.Classify(kind).String(),
					Features:  signatureFeatures(jp),
				}, nil
			})
		}
	}
	// MILC: a fourth class the scheduler has never profiled.
	for _, nodes := range []int{1, 2} {
		nodes := nodes
		tasks = append(tasks, func() (ExtFJob, error) {
			out, err := workloads.RunMILC(workloads.MILCRunSpec{
				Spec: spec, Platform: cfg.platform(), Nodes: nodes,
				Repeats: 1, Seed: cfg.seed(),
			})
			if err != nil {
				return ExtFJob{}, err
			}
			jp := core.ProfileRun(out, core.DefaultSamplingInterval)
			return ExtFJob{
				Name:      fmt.Sprintf("%s@%d", spec.Name, nodes),
				TrueClass: "milc",
				Features:  signatureFeatures(jp),
			}, nil
		})
	}
	jobs := make([]ExtFJob, len(tasks))
	if err := par.ForEach(context.Background(), cfg.workers(), len(tasks),
		func(_ context.Context, i int) error {
			j, err := tasks[i]()
			if err != nil {
				return err
			}
			jobs[i] = j
			return nil
		}); err != nil {
		return res, err
	}
	res.Jobs = jobs

	points := make([][]float64, len(res.Jobs))
	labels := make([]string, len(res.Jobs))
	for i, j := range res.Jobs {
		points[i] = j.Features
		labels[i] = j.TrueClass
	}
	km, err := stats.KMeansFit(stats.Standardize(points), res.K, cfg.seed(), 200)
	if err != nil {
		return res, err
	}
	for i := range res.Jobs {
		res.Jobs[i].Cluster = km.Assignments[i]
	}
	res.Purity, err = stats.ClusterPurity(km.Assignments, labels)
	return res, err
}

func kindsForExtF(cfg Config) []method.Kind {
	if cfg.Quick {
		return []method.Kind{method.DFTRMM, method.HSE}
	}
	return []method.Kind{method.DFTRMM, method.DFTBD, method.HSE, method.ACFDTR}
}

// Render draws the clustering.
func (r ExtFResult) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Extension F — §VI-B top-down workload classification from power signatures\n")
	fmt.Fprintf(&sb, "(k-means, k=%d, features: %s)\n\n", r.K, strings.Join(r.Features, ", "))
	jobs := append([]ExtFJob(nil), r.Jobs...)
	sort.Slice(jobs, func(i, k int) bool {
		if jobs[i].Cluster != jobs[k].Cluster {
			return jobs[i].Cluster < jobs[k].Cluster
		}
		return jobs[i].Name < jobs[k].Name
	})
	t := report.NewTable("cluster", "job", "true class", "mode/TDP", "gpu-share")
	for _, j := range jobs {
		t.AddRow(
			fmt.Sprintf("%d", j.Cluster),
			j.Name,
			j.TrueClass,
			fmt.Sprintf("%.2f", j.Features[0]),
			fmt.Sprintf("%.2f", j.Features[1]),
		)
	}
	sb.WriteString(t.String())
	fmt.Fprintf(&sb, "\ncluster purity vs true classes: %.0f%%\n", r.Purity*100)
	sb.WriteString("(telemetry-only signatures largely recover the workload classes; residual\nmixing reflects genuine overlap — a heavy DFT job draws hybrid-like power,\nwhich is exactly why the paper argues for profile- rather than name-based\npolicies. This is the statistical route for the long tail of applications.)\n")
	return sb.String()
}

// CSV exports the clustering.
func (r ExtFResult) CSV() artifact.Table {
	t := artifact.Table{
		Name:   "extf_signature_clusters",
		Header: []string{"job", "true_class", "cluster", "mode_over_tdp", "gpu_share", "cpumem_share", "range_over_mode", "fwhm_over_mode"},
	}
	for _, j := range r.Jobs {
		row := []string{j.Name, j.TrueClass, artifact.I(j.Cluster)}
		for _, f := range j.Features {
			row = append(row, artifact.F(f))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}
