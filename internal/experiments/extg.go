package experiments

import (
	"context"
	"fmt"
	"strings"

	"vasppower/internal/artifact"
	"vasppower/internal/core"
	"vasppower/internal/par"
	"vasppower/internal/report"
	"vasppower/internal/workloads"
)

// ExtGCell scores one representation metric for one benchmark, from
// the standpoint of a scheduler that reserves that many watts per
// node for the job (§III-B.3's argument, quantified):
//
//   - Violation: fraction of telemetry samples whose node power
//     exceeds the reservation by more than the 2% enforcement margin
//     — time spent meaningfully over budget.
//   - Excess: mean overshoot (W) during violations — how badly.
//   - Headroom: mean reserved-but-unused power (W) — how wastefully.
type ExtGCell struct {
	Metric    string
	ValueW    float64
	Violation float64
	ExcessW   float64
	HeadroomW float64
}

// ExtGRow is one benchmark's metric comparison.
type ExtGRow struct {
	Bench string
	Cells []ExtGCell
}

// ExtGResult is the metric ablation: mean power under-reserves for
// multi-modal jobs, max power over-reserves for spiky ones, and the
// high power mode balances both — the quantitative version of the
// paper's justification for its headline metric.
type ExtGResult struct {
	Rows []ExtGRow
	// Summary[metric] aggregates violation and headroom across the
	// suite.
	Summary map[string][2]float64 // metric → {mean violation, mean headroom W}
}

// ExtGMetrics lists the compared representations.
func ExtGMetrics() []string { return []string{"mean", "median", "high-mode", "max"} }

// RunExtG scores the metrics over the Table I suite.
func RunExtG(cfg Config) (ExtGResult, error) {
	res := ExtGResult{Summary: map[string][2]float64{}}
	benches := workloads.TableI()
	if cfg.Quick {
		benches = benches[:0]
		for _, name := range []string{"B.hR105_hse", "GaAsBi-64", "Si128_acfdtr"} {
			b, _ := workloads.ByName(name)
			benches = append(benches, b)
		}
	}
	profiles := make([]core.JobProfile, len(benches))
	if err := par.ForEach(context.Background(), cfg.workers(), len(benches),
		func(_ context.Context, i int) error {
			jp, err := measure(cfg, benches[i], 1, cfg.repeats(), 0)
			if err != nil {
				return err
			}
			profiles[i] = jp
			return nil
		}); err != nil {
		return res, err
	}
	counts := map[string]int{}
	for bi, b := range benches {
		jp := profiles[bi]
		samples := jp.NodeTotal.Series.Values
		if len(samples) == 0 {
			continue
		}
		values := map[string]float64{
			"mean":      jp.NodeTotal.Summary.Mean,
			"median":    jp.NodeTotal.Summary.Median,
			"high-mode": highMode(jp),
			"max":       jp.NodeTotal.Summary.Max,
		}
		row := ExtGRow{Bench: b.Name}
		for _, metric := range ExtGMetrics() {
			m := values[metric]
			cell := ExtGCell{Metric: metric, ValueW: m}
			// A reservation is enforced with a small margin; only
			// samples beyond it count as violations.
			margin := 1.02 * m
			var over, overSum, head float64
			for _, p := range samples {
				if p > margin {
					over++
					overSum += p - m
				} else if p < m {
					head += m - p
				}
			}
			n := float64(len(samples))
			cell.Violation = over / n
			if over > 0 {
				cell.ExcessW = overSum / over
			}
			cell.HeadroomW = head / n
			row.Cells = append(row.Cells, cell)
			s := res.Summary[metric]
			s[0] += cell.Violation
			s[1] += cell.HeadroomW
			res.Summary[metric] = s
			counts[metric]++
		}
		res.Rows = append(res.Rows, row)
	}
	for metric, s := range res.Summary {
		if c := counts[metric]; c > 0 {
			res.Summary[metric] = [2]float64{s[0] / float64(c), s[1] / float64(c)}
		}
	}
	return res, nil
}

// Cell returns one benchmark's cell for a metric.
func (r ExtGResult) Cell(bench, metric string) (ExtGCell, bool) {
	for _, row := range r.Rows {
		if row.Bench != bench {
			continue
		}
		for _, c := range row.Cells {
			if c.Metric == metric {
				return c, true
			}
		}
	}
	return ExtGCell{}, false
}

// Render draws the ablation.
func (r ExtGResult) Render() string {
	var sb strings.Builder
	sb.WriteString("Extension G — §III-B.3 metric ablation: reserve power by mean, median,\nhigh power mode, or max, and score time-over-budget vs wasted headroom\n\n")
	t := report.NewTable("benchmark", "metric", "reserve", "time over", "mean excess", "wasted headroom")
	for _, row := range r.Rows {
		for i, c := range row.Cells {
			name := ""
			if i == 0 {
				name = row.Bench
			}
			t.AddRow(name, c.Metric,
				fmt.Sprintf("%.0f W", c.ValueW),
				report.Percent(c.Violation),
				fmt.Sprintf("%.0f W", c.ExcessW),
				fmt.Sprintf("%.0f W", c.HeadroomW))
		}
	}
	sb.WriteString(t.String())
	sb.WriteString("\nsuite averages:\n")
	for _, metric := range ExtGMetrics() {
		s := r.Summary[metric]
		fmt.Fprintf(&sb, "  %-10s time over budget %5.1f%%   wasted headroom %4.0f W\n",
			metric, s[0]*100, s[1])
	}
	sb.WriteString("(the high power mode is the only representation that is rarely exceeded\nwithout reserving far more than the job ever uses — the paper's §III-B.3 case)\n")
	return sb.String()
}

// CSV exports the ablation.
func (r ExtGResult) CSV() artifact.Table {
	t := artifact.Table{
		Name:   "extg_metric_ablation",
		Header: []string{"benchmark", "metric", "reserve_w", "violation_frac", "excess_w", "headroom_w"},
	}
	for _, row := range r.Rows {
		for _, c := range row.Cells {
			t.Rows = append(t.Rows, []string{
				row.Bench, c.Metric, artifact.F(c.ValueW),
				artifact.F(c.Violation), artifact.F(c.ExcessW), artifact.F(c.HeadroomW),
			})
		}
	}
	return t
}
