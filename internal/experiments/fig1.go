package experiments

import (
	"fmt"
	"sort"
	"strings"

	"vasppower/internal/report"
	"vasppower/internal/timeseries"
	"vasppower/internal/workloads"
)

// Fig1Result reproduces Figure 1: per-node power of a multi-node
// Si256_hse job whose script runs STREAM, DGEMM, and an idle window
// before VASP, exposing node-to-node manufacturing variability.
type Fig1Result struct {
	Bench string
	Nodes int
	// PerNode holds each node's node-level power series (effective
	// 2 s telemetry).
	PerNode map[string]timeseries.Series
	// PhaseMeans[node][phase] is the mean node power per phase.
	PhaseMeans map[string]map[string]float64
	// Spread[phase] is the max−min across nodes of the phase mean —
	// the variability the paper attributes to manufacturing
	// differences (§III-B.2).
	Spread map[string]float64
	// Windows records each phase's [start, end).
	Windows map[string][2]float64
}

// Fig1Phases lists the job-script phases in execution order.
func Fig1Phases() []string { return []string{"dgemm", "stream", "idle", "vasp"} }

// RunFig1 executes the protocol run and measures it.
func RunFig1(cfg Config) (Fig1Result, error) {
	bench, _ := workloads.ByName("Si256_hse")
	nodes := 4
	if cfg.Quick {
		bench, _ = workloads.ByName("B.hR105_hse")
		nodes = 2
	}
	out, err := workloads.Run(workloads.RunSpec{
		Bench:    bench,
		Platform: cfg.platform(),
		Nodes:    nodes,
		Repeats:  1,
		Prelude:  true,
		Seed:     cfg.seed(),
	})
	if err != nil {
		return Fig1Result{}, err
	}
	res := Fig1Result{
		Bench:      bench.Name,
		Nodes:      nodes,
		PerNode:    map[string]timeseries.Series{},
		PhaseMeans: map[string]map[string]float64{},
		Spread:     map[string]float64{},
		Windows:    map[string][2]float64{},
	}
	for phase, w := range out.PhaseWindows {
		res.Windows[phase] = w
	}
	for _, n := range out.Nodes {
		tr := n.TotalTrace()
		res.PerNode[n.Name] = tr.Sample(2.0)
		res.PhaseMeans[n.Name] = map[string]float64{}
		for phase, w := range res.Windows {
			// Exact window means from the trace (no sampling bleed at
			// phase boundaries).
			res.PhaseMeans[n.Name][phase] = tr.MeanBetween(w[0], w[1])
		}
	}
	for _, phase := range Fig1Phases() {
		lo, hi := 1e18, -1e18
		for _, n := range out.Nodes {
			v := res.PhaseMeans[n.Name][phase]
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		res.Spread[phase] = hi - lo
	}
	return res, nil
}

// Render draws the per-node timelines and the phase table.
func (r Fig1Result) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 1 — per-node power, %d-node %s job (DGEMM, STREAM, idle, then VASP)\n\n",
		r.Nodes, r.Bench)
	var names []string
	for n := range r.PerNode {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		sb.WriteString(report.SeriesLine(n, r.PerNode[n], 70))
		sb.WriteString("\n")
	}
	sb.WriteString("\n")
	t := report.NewTable(append([]string{"node"}, Fig1Phases()...)...)
	for _, n := range names {
		row := []string{n}
		for _, p := range Fig1Phases() {
			row = append(row, fmt.Sprintf("%.0f W", r.PhaseMeans[n][p]))
		}
		t.AddRow(row...)
	}
	row := []string{"spread"}
	for _, p := range Fig1Phases() {
		row = append(row, fmt.Sprintf("%.0f W", r.Spread[p]))
	}
	t.AddRow(row...)
	sb.WriteString(t.String())
	return sb.String()
}
