package experiments

import (
	"context"
	"fmt"
	"strings"

	"vasppower/internal/core"
	"vasppower/internal/hw/platform"
	"vasppower/internal/par"
	"vasppower/internal/report"
	"vasppower/internal/workloads"
)

// CapPoint is one (benchmark, cap) measurement.
type CapPoint struct {
	CapW        float64
	Runtime     float64
	RelPerf     float64 // baseline runtime / capped runtime
	GPUMode     float64 // mean per-GPU high power mode
	ModeOverCap float64
}

// CapStudyResult backs Figures 10 and 12: every Table I benchmark run
// at its optimal node count under 400/300/200/100 W GPU caps.
type CapStudyResult struct {
	// Series maps benchmark → points in decreasing-cap order.
	Series map[string][]CapPoint
	Nodes  map[string]int
	Caps   []float64
}

// StudyCapsFor lists the applied power caps (W) for a platform: the
// paper's sweep expressed as TDP fractions (100/75/50/25%), with any
// point below the GPU's settable floor raised to that floor. On
// perlmutter-a100 this is exactly the paper's 400/300/200/100 W.
func StudyCapsFor(p platform.Platform) []float64 {
	var caps []float64
	for _, frac := range []float64{1, 0.75, 0.5, 0.25} {
		c := p.GPU.TDP * frac
		if c < p.GPU.MinPowerLimit {
			c = p.GPU.MinPowerLimit
		}
		if n := len(caps); n > 0 && caps[n-1] == c {
			continue
		}
		caps = append(caps, c)
	}
	return caps
}

// RunCapStudy measures the cap sweep.
func RunCapStudy(cfg Config) (CapStudyResult, error) {
	res := CapStudyResult{
		Series: map[string][]CapPoint{},
		Nodes:  map[string]int{},
		Caps:   StudyCapsFor(cfg.platform()),
	}
	benches := workloads.TableI()
	if cfg.Quick {
		benches = benches[:0]
		for _, name := range []string{"B.hR105_hse", "GaAsBi-64"} {
			b, _ := workloads.ByName(name)
			benches = append(benches, b)
		}
	}
	// Per benchmark: one cap sweep — the uncapped baseline (slot 0)
	// plus every binding cap — shares one incremental sweep context via
	// measureGroup (a cap at or above the platform GPU's TDP is the
	// default limit and reuses the baseline). The parallel shards go
	// per benchmark so each group's resolution phase is paid once.
	tdp := cfg.platform().GPU.TDP
	var binding []float64
	for _, cap := range res.Caps {
		if cap < tdp {
			binding = append(binding, cap)
		}
	}
	benchNodes := func(b workloads.Benchmark) int {
		if cfg.Quick {
			return 1
		}
		return b.OptimalNodes
	}
	type sweep struct {
		jps []core.JobProfile
		err error
	}
	sweeps := make([]sweep, len(benches))
	par.ForEach(context.Background(), cfg.workers(), len(benches),
		func(_ context.Context, bi int) error {
			caps := append([]float64{0}, binding...)
			sweeps[bi].jps, sweeps[bi].err = measureGroup(
				cfg, benches[bi], benchNodes(benches[bi]), cfg.repeats(), caps)
			return sweeps[bi].err
		})
	for bi, b := range benches {
		res.Nodes[b.Name] = benchNodes(b)
		if sweeps[bi].err != nil {
			return res, sweeps[bi].err
		}
		jps := sweeps[bi].jps
		base := jps[0]
		bindIdx := 0
		for _, cap := range res.Caps {
			jp := base
			if cap < tdp {
				bindIdx++
				jp = jps[bindIdx]
			}
			pt := CapPoint{
				CapW:    cap,
				Runtime: jp.Runtime,
				GPUMode: gpuMode(jp),
			}
			if jp.Runtime > 0 {
				pt.RelPerf = base.Runtime / jp.Runtime
			}
			if cap > 0 {
				pt.ModeOverCap = pt.GPUMode / cap
			}
			res.Series[b.Name] = append(res.Series[b.Name], pt)
		}
	}
	return res, nil
}

// SlowdownAt returns the fractional slowdown of a benchmark at a cap.
func (r CapStudyResult) SlowdownAt(bench string, capW float64) (float64, error) {
	pts, ok := r.Series[bench]
	if !ok {
		return 0, fmt.Errorf("experiments: no cap series for %s", bench)
	}
	for _, p := range pts {
		if p.CapW == capW {
			if p.RelPerf <= 0 {
				return 0, fmt.Errorf("experiments: degenerate point")
			}
			return 1/p.RelPerf - 1, nil
		}
	}
	return 0, fmt.Errorf("experiments: cap %v not measured", capW)
}

// Fig10Render renders the cap-efficacy view (Figure 10): high power
// mode per GPU as a fraction of the applied cap.
func (r CapStudyResult) Fig10Render() string {
	var sb strings.Builder
	sb.WriteString("Figure 10 — power per GPU under caps, as fraction of the applied cap\n")
	sb.WriteString("(1.00 = exactly at the cap; >1 = overshoot — expected only at 100 W)\n\n")
	header := []string{"benchmark (nodes)"}
	for _, c := range r.Caps {
		header = append(header, fmt.Sprintf("%.0f W", c))
	}
	t := report.NewTable(header...)
	for _, name := range workloads.Names() {
		pts, ok := r.Series[name]
		if !ok {
			continue
		}
		row := []string{fmt.Sprintf("%s (%d)", name, r.Nodes[name])}
		for _, c := range r.Caps {
			cell := "-"
			for _, p := range pts {
				if p.CapW == c {
					cell = fmt.Sprintf("%.2f (%.0f W)", p.ModeOverCap, p.GPUMode)
				}
			}
			row = append(row, cell)
		}
		t.AddRow(row...)
	}
	sb.WriteString(t.String())
	return sb.String()
}

// Fig12Render renders the performance-response view (Figure 12):
// performance normalized to the default 400 W limit.
func (r CapStudyResult) Fig12Render() string {
	var sb strings.Builder
	sb.WriteString("Figure 12 — VASP performance under GPU power caps (1.00 = uncapped)\n\n")
	header := []string{"benchmark (nodes)"}
	for _, c := range r.Caps {
		header = append(header, fmt.Sprintf("%.0f W", c))
	}
	t := report.NewTable(header...)
	for _, name := range workloads.Names() {
		pts, ok := r.Series[name]
		if !ok {
			continue
		}
		row := []string{fmt.Sprintf("%s (%d)", name, r.Nodes[name])}
		for _, c := range r.Caps {
			cell := "-"
			for _, p := range pts {
				if p.CapW == c {
					cell = fmt.Sprintf("%.2f", p.RelPerf)
				}
			}
			row = append(row, cell)
		}
		t.AddRow(row...)
	}
	sb.WriteString(t.String())
	sb.WriteString("\n(the paper's headline: 200 W = 50% TDP costs <10% for every workload)\n")
	return sb.String()
}
