package experiments

import (
	"fmt"
	"strings"

	"vasppower/internal/core"
	"vasppower/internal/report"
	"vasppower/internal/workloads"
)

// Fig11Result reproduces Figure 11: the Si128_acfdtr timeline with
// and without a 200 W GPU cap. Reproduced findings: the power peaks
// are clipped by roughly half, the troughs (CPU-only exact
// diagonalization) are untouched, and the high-power segments stretch
// out in time.
type Fig11Result struct {
	Bench          string
	CapW           float64
	Uncapped       core.JobProfile
	Capped         core.JobProfile
	PeakReduction  float64 // 1 − cappedMax/uncappedMax (node level)
	TroughChange   float64 // |cappedMin − uncappedMin| (node level)
	RuntimeStretch float64 // cappedRuntime/uncappedRuntime − 1
}

// RunFig11 measures both runs.
func RunFig11(cfg Config) (Fig11Result, error) {
	bench, _ := workloads.ByName("Si128_acfdtr")
	// The paper's Fig. 11 cap is 200 W = half the A100 TDP; keep the
	// same fraction on other platforms.
	res := Fig11Result{Bench: bench.Name, CapW: cfg.platform().GPU.TDP / 2}
	// Both points solve the same resolved schedule, so they share one
	// incremental sweep context through the group path.
	jps, err := measureGroup(cfg, bench, 1, cfg.repeats(), []float64{0, res.CapW})
	if err != nil {
		return res, err
	}
	res.Uncapped, res.Capped = jps[0], jps[1]
	un, cp := res.Uncapped.NodeTotal.Summary, res.Capped.NodeTotal.Summary
	if un.Max > 0 {
		res.PeakReduction = 1 - cp.Max/un.Max
	}
	res.TroughChange = cp.Min - un.Min
	if res.Uncapped.Runtime > 0 {
		res.RuntimeStretch = res.Capped.Runtime/res.Uncapped.Runtime - 1
	}
	return res, nil
}

// Render draws both timelines.
func (r Fig11Result) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 11 — effect of a %.0f W GPU cap on %s (1 node)\n\n", r.CapW, r.Bench)
	sb.WriteString("uncapped:\n")
	sb.WriteString(report.SeriesLine("node", r.Uncapped.NodeTotal.Series, 70) + "\n")
	sb.WriteString(report.SeriesLine("gpu0", r.Uncapped.GPUs[0].Series, 70) + "\n")
	fmt.Fprintf(&sb, "capped at %.0f W:\n", r.CapW)
	sb.WriteString(report.SeriesLine("node", r.Capped.NodeTotal.Series, 70) + "\n")
	sb.WriteString(report.SeriesLine("gpu0", r.Capped.GPUs[0].Series, 70) + "\n")
	fmt.Fprintf(&sb, "\npeak node power reduced %.0f%%; trough moved %+.0f W; runtime %+.0f%%\n",
		r.PeakReduction*100, r.TroughChange, r.RuntimeStretch*100)
	return sb.String()
}
