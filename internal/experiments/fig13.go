package experiments

import (
	"context"
	"fmt"
	"strings"

	"vasppower/internal/core"
	"vasppower/internal/par"
	"vasppower/internal/report"
	"vasppower/internal/workloads"
)

// Fig13Result reproduces Figure 13: Si256_hse performance under GPU
// caps at several node counts, normalized per node count. Reproduced
// finding: the response is essentially concurrency-independent —
// unaffected at 300 W, ~9% at 200 W, drastic at 100 W — so a
// scheduler can cap without knowing the job's node count.
type Fig13Result struct {
	Bench string
	Caps  []float64
	// RelPerf[nodes][i] is performance at Caps[i] normalized to that
	// node count's uncapped run.
	RelPerf map[int][]float64
	Counts  []int
}

// RunFig13 measures the cap × concurrency grid.
func RunFig13(cfg Config) (Fig13Result, error) {
	bench, _ := workloads.ByName("Si256_hse")
	counts := []int{1, 2, 4, 8}
	if cfg.Quick {
		bench, _ = workloads.ByName("B.hR105_hse")
		counts = []int{1, 2}
	}
	res := Fig13Result{
		Bench:   bench.Name,
		Caps:    StudyCapsFor(cfg.platform()),
		RelPerf: map[int][]float64{},
		Counts:  counts,
	}
	// Per node count: slot 0 is the uncapped baseline, slot 1+ci is
	// Caps[ci] when it binds (below the platform GPU's TDP).
	type cell struct {
		jp  core.JobProfile
		err error
	}
	tdp := cfg.platform().GPU.TDP
	stride := 1 + len(res.Caps)
	cells := make([]cell, len(counts)*stride)
	need := make([]bool, len(cells))
	for ni := range counts {
		need[ni*stride] = true
		for ci, cap := range res.Caps {
			if cap < tdp {
				need[ni*stride+1+ci] = true
			}
		}
	}
	par.ForEach(context.Background(), cfg.workers(), len(cells),
		func(_ context.Context, i int) error {
			if !need[i] {
				return nil
			}
			n := counts[i/stride]
			capW := 0.0
			if r := i % stride; r > 0 {
				capW = res.Caps[r-1]
			}
			cells[i].jp, cells[i].err = measure(cfg, bench, n, cfg.repeats(), capW)
			return cells[i].err
		})
	for ni, n := range counts {
		base := cells[ni*stride]
		if base.err != nil {
			return res, base.err
		}
		var rels []float64
		for ci, cap := range res.Caps {
			jp := base.jp
			if cap < tdp {
				c := cells[ni*stride+1+ci]
				if c.err != nil {
					return res, c.err
				}
				jp = c.jp
			}
			rels = append(rels, base.jp.Runtime/jp.Runtime)
		}
		res.RelPerf[n] = rels
	}
	return res, nil
}

// MaxSpreadAt returns the max−min relative performance across node
// counts at the given cap (small = concurrency-independent response).
func (r Fig13Result) MaxSpreadAt(capW float64) float64 {
	idx := -1
	for i, c := range r.Caps {
		if c == capW {
			idx = i
		}
	}
	if idx < 0 {
		return 0
	}
	lo, hi := 1e18, -1e18
	for _, n := range r.Counts {
		rels, ok := r.RelPerf[n]
		if !ok || idx >= len(rels) {
			continue
		}
		v := rels[idx]
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi < lo {
		return 0
	}
	return hi - lo
}

// Render draws the grid.
func (r Fig13Result) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 13 — %s performance under caps at varied node counts (1.00 = uncapped at that count)\n\n", r.Bench)
	header := []string{"nodes"}
	for _, c := range r.Caps {
		header = append(header, fmt.Sprintf("%.0f W", c))
	}
	t := report.NewTable(header...)
	for _, n := range r.Counts {
		row := []string{fmt.Sprintf("%d", n)}
		for i := range r.Caps {
			if rels, ok := r.RelPerf[n]; ok && i < len(rels) {
				row = append(row, fmt.Sprintf("%.2f", rels[i]))
			} else {
				row = append(row, "-")
			}
		}
		t.AddRow(row...)
	}
	sb.WriteString(t.String())
	return sb.String()
}
