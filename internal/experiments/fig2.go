package experiments

import (
	"fmt"
	"strings"

	"vasppower/internal/report"
	"vasppower/internal/stats"
	"vasppower/internal/timeseries"
	"vasppower/internal/workloads"
)

// Fig2Point is one sampling rate's distribution summary.
type Fig2Point struct {
	IntervalS float64
	Samples   int
	Max       float64
	Median    float64
	Min       float64
	HighMode  float64
	FWHM      float64
	NumModes  int
}

// Fig2Result reproduces Figure 2: per-GPU power distributions at
// sampling intervals from 0.1 s to 10 s (0.1 s data down-sampled by
// window averaging, as the paper does). The finding to reproduce: the
// high power mode is stable at every interval up to 10 s, while FWHM
// widens and secondary modes disappear at coarse intervals.
type Fig2Result struct {
	Bench     string
	Points    []Fig2Point
	BaseTrace timeseries.Series // the 0.1 s series (GPU 0)
}

// Fig2Intervals lists the studied sampling intervals in seconds.
func Fig2Intervals() []float64 { return []float64{0.1, 0.2, 0.5, 1, 2, 5, 10} }

// RunFig2 measures the sampling-granularity study.
func RunFig2(cfg Config) (Fig2Result, error) {
	bench, _ := workloads.ByName("Si256_hse")
	if cfg.Quick {
		// GaAsBi-64 runs long enough (hundreds of seconds) for the
		// 10 s windows to hold many samples, unlike B.hR105_hse.
		bench, _ = workloads.ByName("GaAsBi-64")
	}
	out, err := workloads.Run(workloads.RunSpec{
		Bench:    bench,
		Platform: cfg.platform(),
		Nodes:    1,
		Repeats:  1,
		Seed:     cfg.seed(),
	})
	if err != nil {
		return Fig2Result{}, err
	}
	// 0.1 s lossless sampling of GPU 0, as in the paper's experiment.
	base := out.Nodes[0].GPUTrace(0).Sample(0.1).Slice(out.VASPStart, out.VASPEnd)
	res := Fig2Result{Bench: bench.Name, BaseTrace: base}
	for _, iv := range Fig2Intervals() {
		s := base
		if iv > 0.1 {
			s = base.Downsample(iv)
		}
		pt := Fig2Point{IntervalS: iv, Samples: s.Len()}
		pt.Max, pt.Min, pt.Median = s.Max(), s.Min(), s.Median()
		k := stats.NewKDE(s.Values, 0, 512)
		modes := k.Modes(stats.DefaultModeThreshold)
		pt.NumModes = len(modes)
		if len(modes) > 0 {
			hm := modes[len(modes)-1]
			pt.HighMode = hm.X
			pt.FWHM = hm.FWHM
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// HighModeStable reports whether the high power mode stayed within
// tol watts of the 0.1 s reference at every interval.
func (r Fig2Result) HighModeStable(tol float64) bool {
	if len(r.Points) == 0 {
		return false
	}
	ref := r.Points[0].HighMode
	for _, p := range r.Points {
		if p.HighMode == 0 || p.HighMode < ref-tol || p.HighMode > ref+tol {
			return false
		}
	}
	return true
}

// Render draws the per-interval distribution summary.
func (r Fig2Result) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 2 — GPU power distribution vs sampling interval (%s, 1 node, GPU 0)\n\n", r.Bench)
	t := report.NewTable("interval", "samples", "min", "median", "max", "high mode", "FWHM", "#modes")
	for _, p := range r.Points {
		t.AddRow(
			fmt.Sprintf("%.1f s", p.IntervalS),
			fmt.Sprintf("%d", p.Samples),
			fmt.Sprintf("%.0f W", p.Min),
			fmt.Sprintf("%.0f W", p.Median),
			fmt.Sprintf("%.0f W", p.Max),
			fmt.Sprintf("%.0f W", p.HighMode),
			fmt.Sprintf("%.0f W", p.FWHM),
			fmt.Sprintf("%d", p.NumModes),
		)
	}
	sb.WriteString(t.String())
	sb.WriteString("\n0.1 s timeline: ")
	sb.WriteString(report.Sparkline(r.BaseTrace.Values, 70))
	sb.WriteString("\n")
	return sb.String()
}
