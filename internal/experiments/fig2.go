package experiments

import (
	"fmt"
	"math"
	"strings"

	"vasppower/internal/artifact"
	"vasppower/internal/monitor"
	"vasppower/internal/report"
	"vasppower/internal/stats"
	"vasppower/internal/timeseries"
	"vasppower/internal/workloads"
)

// Fig2Point is one sampling rate's distribution summary.
type Fig2Point struct {
	IntervalS float64
	Samples   int
	Max       float64
	Median    float64
	Min       float64
	HighMode  float64
	FWHM      float64
	NumModes  int
}

// Fig2Result reproduces Figure 2: per-GPU power distributions at
// sampling intervals from 0.1 s to 10 s (0.1 s data down-sampled by
// window averaging, as the paper does). The finding to reproduce: the
// high power mode is stable at every interval up to 10 s, while FWHM
// widens and secondary modes disappear at coarse intervals.
type Fig2Result struct {
	Bench     string
	Points    []Fig2Point
	BaseTrace timeseries.Series // the 0.1 s series (GPU 0)

	// TrueMeanW and TrueEnergyJ are GPU 0's exact mean power and
	// energy over the VASP window, integrated from the trace itself —
	// the ground truth the pipeline comparison is scored against.
	TrueMeanW   float64
	TrueEnergyJ float64
	// Pipelines compares three telemetry pipelines' views of the same
	// run: the production LDMS path (1 s window-averaged, 50% drops),
	// the lossless 0.1 s HighRate path, and polling nvidia-smi
	// (point-sampled stale register reads — the pathology axis).
	// Rendered by RenderPipelines, not Render, so the default Fig. 2
	// output is unchanged.
	Pipelines []Fig2Pipeline
}

// Fig2Pipeline is one telemetry pipeline's view of the Fig. 2 run.
type Fig2Pipeline struct {
	Name         string
	Samples      int
	MeanW        float64
	HighMode     float64
	EnergyErrPct float64 // signed energy error vs the trace integral
}

// Fig2Intervals lists the studied sampling intervals in seconds.
func Fig2Intervals() []float64 { return []float64{0.1, 0.2, 0.5, 1, 2, 5, 10} }

// RunFig2 measures the sampling-granularity study.
func RunFig2(cfg Config) (Fig2Result, error) {
	bench, _ := workloads.ByName("Si256_hse")
	if cfg.Quick {
		// GaAsBi-64 runs long enough (hundreds of seconds) for the
		// 10 s windows to hold many samples, unlike B.hR105_hse.
		bench, _ = workloads.ByName("GaAsBi-64")
	}
	out, err := workloads.Run(workloads.RunSpec{
		Bench:    bench,
		Platform: cfg.platform(),
		Nodes:    1,
		Repeats:  1,
		Seed:     cfg.seed(),
	})
	if err != nil {
		return Fig2Result{}, err
	}
	// 0.1 s lossless sampling of GPU 0, as in the paper's experiment.
	base := out.Nodes[0].GPUTrace(0).Sample(0.1).Slice(out.VASPStart, out.VASPEnd)
	res := Fig2Result{Bench: bench.Name, BaseTrace: base}
	for _, iv := range Fig2Intervals() {
		s := base
		if iv > 0.1 {
			s = base.Downsample(iv)
		}
		pt := Fig2Point{IntervalS: iv, Samples: s.Len()}
		pt.Max, pt.Min, pt.Median = s.Max(), s.Min(), s.Median()
		k := stats.NewKDE(s.Values, 0, 512)
		modes := k.Modes(stats.DefaultModeThreshold)
		pt.NumModes = len(modes)
		if len(modes) > 0 {
			hm := modes[len(modes)-1]
			pt.HighMode = hm.X
			pt.FWHM = hm.FWHM
		}
		res.Points = append(res.Points, pt)
	}
	if err := res.comparePipelines(out.Nodes[0].GPUTrace(0), out.VASPStart, out.VASPEnd, cfg.seed()); err != nil {
		return Fig2Result{}, err
	}
	return res, nil
}

// comparePipelines scores three telemetry pipelines against the exact
// trace integral of GPU 0 over the VASP window [start, end]: the
// production LDMS path, the lossless HighRate path, and polling
// nvidia-smi (SMIDefault — 1 s polls of a 100 ms point-sampled
// register). Each pipeline's energy estimate is its sample mean times
// the window, the estimate a practitioner forms from the series alone.
func (r *Fig2Result) comparePipelines(tr *timeseries.Trace, start, end float64, seed uint64) error {
	window := end - start
	if window <= 0 {
		return fmt.Errorf("fig2: empty VASP window [%v,%v]", start, end)
	}
	r.TrueMeanW = tr.MeanBetween(start, end)
	r.TrueEnergyJ = r.TrueMeanW * window

	ldms := monitor.LDMSDefault()
	ldms.Seed = seed
	run := func(name string, sample func() (timeseries.Series, error)) error {
		s, err := sample()
		if err != nil {
			return fmt.Errorf("fig2: %s pipeline: %w", name, err)
		}
		s = s.Slice(start, end)
		p := Fig2Pipeline{Name: name, Samples: s.Len()}
		if s.Len() > 0 {
			p.MeanW = s.Mean()
			p.EnergyErrPct = 100 * (p.MeanW*window - r.TrueEnergyJ) / r.TrueEnergyJ
			k := stats.NewKDE(s.Values, 0, 512)
			if modes := k.Modes(stats.DefaultModeThreshold); len(modes) > 0 {
				p.HighMode = modes[len(modes)-1].X
			}
		}
		r.Pipelines = append(r.Pipelines, p)
		return nil
	}
	if err := run("ldms", func() (timeseries.Series, error) { return monitor.Sample(tr, ldms) }); err != nil {
		return err
	}
	if err := run("highrate", func() (timeseries.Series, error) { return monitor.Sample(tr, monitor.HighRate()) }); err != nil {
		return err
	}
	return run("nvidia-smi", func() (timeseries.Series, error) { return monitor.SampleSMI(tr, monitor.SMIDefault()) })
}

// RenderPipelines draws the pipeline-pathology comparison (the
// opt-in fig2smi experiment; Render's golden-pinned output is
// untouched).
func (r Fig2Result) RenderPipelines() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 2 (SMI axis) — telemetry pipelines vs ground truth (%s, 1 node, GPU 0)\n\n", r.Bench)
	fmt.Fprintf(&sb, "trace integral: mean %.1f W, energy %.3f MJ over the VASP window\n\n",
		r.TrueMeanW, r.TrueEnergyJ/1e6)
	t := report.NewTable("pipeline", "samples", "mean", "high mode", "energy err")
	for _, p := range r.Pipelines {
		t.AddRow(
			p.Name,
			fmt.Sprintf("%d", p.Samples),
			fmt.Sprintf("%.1f W", p.MeanW),
			fmt.Sprintf("%.0f W", p.HighMode),
			fmt.Sprintf("%+.2f%%", p.EnergyErrPct),
		)
	}
	sb.WriteString(t.String())
	sb.WriteString("\nnvidia-smi reads a stale point-sampled register: transients between its\n")
	sb.WriteString("update ticks never land in any sample, while the PM counters integrate them.\n")
	return sb.String()
}

// PipelinesCSV exports the pipeline comparison.
func (r Fig2Result) PipelinesCSV() artifact.Table {
	t := artifact.Table{
		Name:   "fig2_smi_pipelines",
		Header: []string{"pipeline", "samples", "mean_w", "high_mode_w", "energy_err_pct", "true_mean_w", "true_energy_j"},
	}
	for _, p := range r.Pipelines {
		t.Rows = append(t.Rows, []string{
			p.Name, artifact.I(p.Samples), artifact.F(p.MeanW), artifact.F(p.HighMode),
			artifact.F(p.EnergyErrPct), artifact.F(r.TrueMeanW), artifact.F(r.TrueEnergyJ),
		})
	}
	return t
}

// MaxAbsEnergyErrPct returns the worst pipeline energy error by
// magnitude, keyed by name.
func (r Fig2Result) MaxAbsEnergyErrPct() (string, float64) {
	name, worst := "", 0.0
	for _, p := range r.Pipelines {
		if a := math.Abs(p.EnergyErrPct); a >= worst {
			name, worst = p.Name, a
		}
	}
	return name, worst
}

// HighModeStable reports whether the high power mode stayed within
// tol watts of the 0.1 s reference at every interval.
func (r Fig2Result) HighModeStable(tol float64) bool {
	if len(r.Points) == 0 {
		return false
	}
	ref := r.Points[0].HighMode
	for _, p := range r.Points {
		if p.HighMode == 0 || p.HighMode < ref-tol || p.HighMode > ref+tol {
			return false
		}
	}
	return true
}

// Render draws the per-interval distribution summary.
func (r Fig2Result) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 2 — GPU power distribution vs sampling interval (%s, 1 node, GPU 0)\n\n", r.Bench)
	t := report.NewTable("interval", "samples", "min", "median", "max", "high mode", "FWHM", "#modes")
	for _, p := range r.Points {
		t.AddRow(
			fmt.Sprintf("%.1f s", p.IntervalS),
			fmt.Sprintf("%d", p.Samples),
			fmt.Sprintf("%.0f W", p.Min),
			fmt.Sprintf("%.0f W", p.Median),
			fmt.Sprintf("%.0f W", p.Max),
			fmt.Sprintf("%.0f W", p.HighMode),
			fmt.Sprintf("%.0f W", p.FWHM),
			fmt.Sprintf("%d", p.NumModes),
		)
	}
	sb.WriteString(t.String())
	sb.WriteString("\n0.1 s timeline: ")
	sb.WriteString(report.Sparkline(r.BaseTrace.Values, 70))
	sb.WriteString("\n")
	return sb.String()
}
