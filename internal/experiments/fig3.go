package experiments

import (
	"context"
	"fmt"
	"strings"

	"vasppower/internal/core"
	"vasppower/internal/par"
	"vasppower/internal/report"
	"vasppower/internal/stats"
	"vasppower/internal/workloads"
)

// Fig3Entry is one benchmark's single-node component-power profile.
type Fig3Entry struct {
	Bench   string
	Profile core.JobProfile
	// Node-level distribution summary (text box of the figure).
	Max, Median, Min, HighMode float64
	MultiModal                 bool
}

// Fig3Result reproduces Figure 3: component power timelines and node
// power histograms for Si256_hse, GaAsBi-64, and Si128_acfdtr on one
// node. Findings reproduced: flat vs highly-variable timelines, the
// CPU-only valley of ACFDTR, GPUs >70% of node power for the heavy
// benchmarks with CPU+memory <10%, node modes spanning ≈766–1814 W,
// and non-normal, at-least-bimodal distributions.
type Fig3Result struct {
	Entries []Fig3Entry
}

// Fig3Benchmarks lists the figure's benchmarks.
func Fig3Benchmarks() []string { return []string{"Si256_hse", "GaAsBi-64", "Si128_acfdtr"} }

// RunFig3 measures the three profiles.
func RunFig3(cfg Config) (Fig3Result, error) {
	var res Fig3Result
	names := Fig3Benchmarks()
	if cfg.Quick {
		names = []string{"GaAsBi-64", "Si128_acfdtr"}
	}
	entries := make([]Fig3Entry, len(names))
	err := par.ForEach(context.Background(), cfg.workers(), len(names),
		func(_ context.Context, i int) error {
			name := names[i]
			b, ok := workloads.ByName(name)
			if !ok {
				return fmt.Errorf("experiments: unknown benchmark %s", name)
			}
			jp, err := measure(cfg, b, 1, cfg.repeats(), 0)
			if err != nil {
				return err
			}
			e := Fig3Entry{Bench: name, Profile: jp}
			e.Max = jp.NodeTotal.Summary.Max
			e.Median = jp.NodeTotal.Summary.Median
			e.Min = jp.NodeTotal.Summary.Min
			e.HighMode = highMode(jp)
			e.MultiModal = len(jp.NodeTotal.Modes) >= 2
			entries[i] = e
			return nil
		})
	if err != nil {
		return res, err
	}
	res.Entries = entries
	return res, nil
}

// Render draws the timelines, component breakdown, and histograms.
func (r Fig3Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Figure 3 — component power timelines and node power distributions (1 node)\n")
	for _, e := range r.Entries {
		jp := e.Profile
		fmt.Fprintf(&sb, "\n%s  (runtime %s, energy %.2f MJ)\n", e.Bench,
			report.Seconds(jp.Runtime), jp.EnergyJ/1e6)
		sb.WriteString(report.SeriesLine("node", jp.NodeTotal.Series, 70) + "\n")
		sb.WriteString(report.SeriesLine("gpu0", jp.GPUs[0].Series, 70) + "\n")
		sb.WriteString(report.SeriesLine("cpu", jp.CPU.Series, 70) + "\n")
		sb.WriteString(report.SeriesLine("memory", jp.Mem.Series, 70) + "\n")
		fmt.Fprintf(&sb, "max %.0f  median %.0f  min %.0f  high-mode %.0f W  (GPUs %.0f%% of node, CPU+mem %.0f%%)\n",
			e.Max, e.Median, e.Min, e.HighMode,
			jp.GPUShareOfNode()*100, jp.CPUMemShareOfNode()*100)
		if s := jp.NodeTotal.Summary; jp.NodeTotal.Series.Len() > 1 && s.Max > s.Min {
			h := stats.NewHistogram(jp.NodeTotal.Series.Values, 18, s.Min, s.Max)
			sb.WriteString("node power histogram:\n")
			sb.WriteString(report.HistogramText(h, 40))
		}
	}
	return sb.String()
}
