package experiments

import (
	"context"
	"fmt"
	"strings"

	"vasppower/internal/core"
	"vasppower/internal/par"
	"vasppower/internal/report"
	"vasppower/internal/workloads"
)

// ScalingPoint is one (benchmark, node count) measurement.
type ScalingPoint struct {
	Nodes    int
	Runtime  float64
	Speedup  float64 // vs the 1-node run
	ParEff   float64 // speedup / nodes
	NodeMode float64 // high power mode per node
	EnergyJ  float64
}

// ScalingResult holds the node-count sweep shared by Figures 4 and 5.
type ScalingResult struct {
	// Series maps benchmark name → points in increasing node order.
	Series map[string][]ScalingPoint
	Counts []int
}

// scalingCounts returns the studied node counts.
func scalingCounts(cfg Config) []int {
	if cfg.Quick {
		return []int{1, 2, 4}
	}
	return []int{1, 2, 4, 8, 16}
}

// RunScaling measures every Table I benchmark across node counts; the
// result backs both Fig. 4 (parallel efficiency) and Fig. 5 (high
// power mode per node vs concurrency).
func RunScaling(cfg Config) (ScalingResult, error) {
	res := ScalingResult{Series: map[string][]ScalingPoint{}, Counts: scalingCounts(cfg)}
	benches := workloads.TableI()
	if cfg.Quick {
		benches = benches[:0]
		for _, name := range []string{"B.hR105_hse", "GaAsBi-64", "PdO2"} {
			b, _ := workloads.ByName(name)
			benches = append(benches, b)
		}
	}
	// Fan the whole (benchmark × node count) grid through the pool.
	// A measurement error is benign here — some benchmarks cannot
	// scale to every node count (too few bands) and their series just
	// stops there, as a user's would — so fn never fails; per-cell
	// errors land in the grid and ordered assembly truncates each
	// series exactly where the serial loop did.
	type cell struct {
		jp  core.JobProfile
		err error
	}
	cells := make([]cell, len(benches)*len(res.Counts))
	par.ForEach(context.Background(), cfg.workers(), len(cells),
		func(_ context.Context, i int) error {
			b := benches[i/len(res.Counts)]
			n := res.Counts[i%len(res.Counts)]
			cells[i].jp, cells[i].err = measure(cfg, b, n, cfg.repeats(), 0)
			return nil
		})
	for bi, b := range benches {
		var base float64
		for ci, n := range res.Counts {
			c := cells[bi*len(res.Counts)+ci]
			if c.err != nil {
				break
			}
			jp := c.jp
			if n == res.Counts[0] {
				base = jp.Runtime * float64(res.Counts[0])
			}
			pt := ScalingPoint{
				Nodes:    n,
				Runtime:  jp.Runtime,
				NodeMode: highMode(jp),
				EnergyJ:  jp.EnergyJ,
			}
			if jp.Runtime > 0 {
				pt.Speedup = base / jp.Runtime
				pt.ParEff = pt.Speedup / float64(n)
			}
			res.Series[b.Name] = append(res.Series[b.Name], pt)
		}
	}
	return res, nil
}

// Fig4Render renders the parallel-efficiency view (Figure 4).
func (r ScalingResult) Fig4Render() string {
	var sb strings.Builder
	sb.WriteString("Figure 4 — parallel efficiency of VASP\n\n")
	header := []string{"benchmark"}
	for _, n := range r.Counts {
		header = append(header, fmt.Sprintf("%d node(s)", n))
	}
	t := report.NewTable(header...)
	for _, name := range workloads.Names() {
		pts, ok := r.Series[name]
		if !ok {
			continue
		}
		row := []string{name}
		for _, n := range r.Counts {
			cell := "-"
			for _, p := range pts {
				if p.Nodes == n {
					cell = fmt.Sprintf("%.0f%%", p.ParEff*100)
				}
			}
			row = append(row, cell)
		}
		t.AddRow(row...)
	}
	sb.WriteString(t.String())
	sb.WriteString("\n(70% and up is recommended for efficient use of compute resources)\n")
	return sb.String()
}

// Fig5Render renders the power-vs-concurrency view (Figure 5).
func (r ScalingResult) Fig5Render() string {
	var sb strings.Builder
	sb.WriteString("Figure 5 — high power mode per node vs concurrency\n\n")
	header := []string{"benchmark"}
	for _, n := range r.Counts {
		header = append(header, fmt.Sprintf("%d node(s)", n))
	}
	t := report.NewTable(header...)
	for _, name := range workloads.Names() {
		pts, ok := r.Series[name]
		if !ok {
			continue
		}
		row := []string{name}
		for _, n := range r.Counts {
			cell := "-"
			for _, p := range pts {
				if p.Nodes == n {
					cell = fmt.Sprintf("%.0f W", p.NodeMode)
				}
			}
			row = append(row, cell)
		}
		t.AddRow(row...)
	}
	sb.WriteString(t.String())
	sb.WriteString("\n(workload-to-workload variation dwarfs concurrency variation while PE ≥ 70%)\n")
	return sb.String()
}

// ModeRange returns the lowest and highest node high power mode seen
// across all benchmarks at their 1-node runs (the paper's 766–1814 W
// span).
func (r ScalingResult) ModeRange() (lo, hi float64) {
	lo, hi = 1e18, -1e18
	for _, pts := range r.Series {
		if len(pts) == 0 {
			continue
		}
		m := pts[0].NodeMode
		if m < lo {
			lo = m
		}
		if m > hi {
			hi = m
		}
	}
	return lo, hi
}
