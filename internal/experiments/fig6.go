package experiments

import (
	"context"
	"fmt"
	"strings"

	"vasppower/internal/dft/method"
	"vasppower/internal/par"
	"vasppower/internal/report"
	"vasppower/internal/workloads"
)

// Fig6Point is one supercell size's measurement.
type Fig6Point struct {
	Atoms      int
	NPLWV      int
	NBands     int
	NodeMode   float64
	NodeFWHM   float64
	GPUSumMode float64 // high power mode of the four GPUs combined
	GPUSumFWHM float64
	Runtime    float64
}

// Fig6Result reproduces Figure 6: power vs system size for silicon
// supercells under the plain-DFT default scheme on one node. The
// reproduced shape: power rises with atom count and plateaus when the
// combined GPU draw approaches 4×TDP (≈2048 atoms in the paper).
type Fig6Result struct {
	Points    []Fig6Point
	NodeTDP   float64
	GPUTDPSum float64
}

// fig6Sizes returns the swept supercell sizes.
func fig6Sizes(cfg Config) []int {
	if cfg.Quick {
		return []int{64, 256, 1024}
	}
	return []int{16, 32, 64, 128, 256, 512, 1024, 2048, 3456}
}

// RunFig6 sweeps the supercell family.
func RunFig6(cfg Config) (Fig6Result, error) {
	res := Fig6Result{NodeTDP: 2350, GPUTDPSum: 1600}
	sizes := fig6Sizes(cfg)
	pts := make([]Fig6Point, len(sizes))
	err := par.ForEach(context.Background(), cfg.workers(), len(sizes),
		func(_ context.Context, i int) error {
			b, err := workloads.SiliconBenchmark(sizes[i], method.DFTBD)
			if err != nil {
				return err
			}
			jp, err := measure(cfg, b, 1, cfg.repeats(), 0)
			if err != nil {
				return err
			}
			pt := Fig6Point{
				Atoms:   sizes[i],
				NPLWV:   b.NPLWV(),
				NBands:  b.NBands,
				Runtime: jp.Runtime,
			}
			if jp.NodeTotal.HasMode {
				pt.NodeMode = jp.NodeTotal.HighMode.X
				pt.NodeFWHM = jp.NodeTotal.HighMode.FWHM
			}
			if jp.GPUSum.HasMode {
				pt.GPUSumMode = jp.GPUSum.HighMode.X
				pt.GPUSumFWHM = jp.GPUSum.HighMode.FWHM
			}
			pts[i] = pt
			return nil
		})
	if err != nil {
		return res, err
	}
	res.Points = pts
	return res, nil
}

// SaturationAtoms returns the smallest size whose combined-GPU mode
// reaches frac of 4×TDP (0 when never reached).
func (r Fig6Result) SaturationAtoms(frac float64) int {
	for _, p := range r.Points {
		if p.GPUSumMode >= frac*r.GPUTDPSum {
			return p.Atoms
		}
	}
	return 0
}

// Render draws the size sweep.
func (r Fig6Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Figure 6 — power vs system size (silicon supercells, DFT, 1 node)\n\n")
	t := report.NewTable("atoms", "NPLWV", "NBANDS", "node mode ± FWHM", "4-GPU mode ± FWHM", "runtime")
	for _, p := range r.Points {
		t.AddRow(
			fmt.Sprintf("%d", p.Atoms),
			fmt.Sprintf("%d", p.NPLWV),
			fmt.Sprintf("%d", p.NBands),
			fmt.Sprintf("%.0f ± %.0f W", p.NodeMode, p.NodeFWHM),
			fmt.Sprintf("%.0f ± %.0f W", p.GPUSumMode, p.GPUSumFWHM),
			report.Seconds(p.Runtime),
		)
	}
	sb.WriteString(t.String())
	fmt.Fprintf(&sb, "\nnode TDP %.0f W; combined GPU TDP %.0f W\n", r.NodeTDP, r.GPUTDPSum)
	var modes []float64
	for _, p := range r.Points {
		modes = append(modes, p.GPUSumMode)
	}
	sb.WriteString("4-GPU mode vs size: " + report.Sparkline(modes, len(modes)) + "\n")
	return sb.String()
}
