package experiments

import (
	"context"
	"fmt"
	"strings"

	"vasppower/internal/par"
	"vasppower/internal/report"
	"vasppower/internal/workloads"
)

// Fig7Point is one parameter setting's measurement.
type Fig7Point struct {
	NPLWV    int
	NBands   int
	NodeMode float64
	NodeMean float64
	EnergyMJ float64
	Runtime  float64
}

// Fig7Result reproduces Figure 7: Si256_hse on one node with (left)
// the number of plane waves varied at fixed bands, and (right) the
// number of bands varied at fixed plane waves. Reproduced findings:
// the high power mode rises with NPLWV (more simultaneous work per
// GPU) but stays flat with NBANDS (bands are processed sequentially —
// longer runtime and higher energy, same power).
type Fig7Result struct {
	Bench       string
	NPLWVSweep  []Fig7Point
	NBandsSweep []Fig7Point
	RefNPLWV    int
	RefNBands   int
}

// RunFig7 runs both sweeps.
func RunFig7(cfg Config) (Fig7Result, error) {
	base, _ := workloads.ByName("Si256_hse")
	res := Fig7Result{Bench: base.Name, RefNPLWV: base.NPLWV(), RefNBands: base.NBands}

	grids := [][3]int{{40, 40, 40}, {48, 48, 48}, {56, 56, 56}, {64, 64, 64}, {72, 72, 72}, base.FFTGrid, {90, 90, 90}}
	bandCounts := []int{base.NBands * 4 / 5, base.NBands, base.NBands * 6 / 5, base.NBands * 8 / 5}
	if cfg.Quick {
		// Same benchmark (the paper's choice), trimmed sweep: the
		// band-flatness finding only holds where exchange dominates.
		grids = [][3]int{{56, 56, 56}, base.FFTGrid, {90, 90, 90}}
		bandCounts = []int{base.NBands, base.NBands * 8 / 5}
	}

	// Both sweeps are one flat list of independent variants.
	variants := make([]workloads.Benchmark, 0, len(grids)+len(bandCounts))
	for _, g := range grids {
		b := base
		b.FFTGrid = g
		b.Name = fmt.Sprintf("%s_nplwv%d", base.Name, b.NPLWV())
		variants = append(variants, b)
	}
	for _, nb := range bandCounts {
		b := base
		b.NBands = nb
		b.Name = fmt.Sprintf("%s_nb%d", base.Name, nb)
		variants = append(variants, b)
	}
	pts := make([]Fig7Point, len(variants))
	err := par.ForEach(context.Background(), cfg.workers(), len(variants),
		func(_ context.Context, i int) error {
			b := variants[i]
			jp, err := measure(cfg, b, 1, cfg.repeats(), 0)
			if err != nil {
				return err
			}
			pts[i] = Fig7Point{
				NPLWV: b.NPLWV(), NBands: b.NBands,
				NodeMode: highMode(jp), NodeMean: jp.NodeTotal.Summary.Mean,
				EnergyMJ: jp.EnergyJ / 1e6, Runtime: jp.Runtime,
			}
			return nil
		})
	if err != nil {
		return res, err
	}
	res.NPLWVSweep = pts[:len(grids)]
	res.NBandsSweep = pts[len(grids):]
	return res, nil
}

// Render draws both panels.
func (r Fig7Result) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 7 — power vs internal parameters (%s, 1 node)\n", r.Bench)
	sb.WriteString("\nLeft panel: varying NPLWV (plane waves) at fixed NBANDS\n")
	t := report.NewTable("NPLWV", "node mode", "node mean", "energy", "runtime")
	for _, p := range r.NPLWVSweep {
		t.AddRow(
			fmt.Sprintf("%d", p.NPLWV),
			fmt.Sprintf("%.0f W", p.NodeMode),
			fmt.Sprintf("%.0f W", p.NodeMean),
			fmt.Sprintf("%.2f MJ", p.EnergyMJ),
			report.Seconds(p.Runtime),
		)
	}
	sb.WriteString(t.String())
	sb.WriteString("\nRight panel: varying NBANDS at fixed NPLWV\n")
	t2 := report.NewTable("NBANDS", "node mode", "node mean", "energy", "runtime")
	for _, p := range r.NBandsSweep {
		t2.AddRow(
			fmt.Sprintf("%d", p.NBands),
			fmt.Sprintf("%.0f W", p.NodeMode),
			fmt.Sprintf("%.0f W", p.NodeMean),
			fmt.Sprintf("%.2f MJ", p.EnergyMJ),
			report.Seconds(p.Runtime),
		)
	}
	sb.WriteString(t2.String())
	return sb.String()
}
