package experiments

import (
	"context"
	"fmt"
	"strings"

	"vasppower/internal/core"
	"vasppower/internal/par"
	"vasppower/internal/report"
	"vasppower/internal/workloads"
)

// Fig8Point is one concurrency measurement.
type Fig8Point struct {
	Nodes    int
	NodeMode float64
	NodeMean float64
	EnergyMJ float64
	Runtime  float64
	ParEff   float64
}

// Fig8Result reproduces Figure 8: Si256_hse power per node (left
// axis) and energy to solution (right axis) across concurrencies.
// Reproduced findings: the per-node high power mode holds steady
// while parallel efficiency stays ≥ ~70%, drops at higher node
// counts, and energy to solution rises monotonically with
// concurrency.
type Fig8Result struct {
	Bench  string
	Points []Fig8Point
}

// RunFig8 measures the concurrency sweep.
func RunFig8(cfg Config) (Fig8Result, error) {
	bench, _ := workloads.ByName("Si256_hse")
	counts := []int{1, 2, 4, 8, 16, 32}
	if cfg.Quick {
		counts = []int{1, 2, 4}
	}
	res := Fig8Result{Bench: bench.Name}
	// Per-count errors are benign (the series stops at the count that
	// cannot run), so fn never fails; assembly below truncates exactly
	// where the serial sweep did.
	type cell struct {
		jp  core.JobProfile
		err error
	}
	cells := make([]cell, len(counts))
	par.ForEach(context.Background(), cfg.workers(), len(counts),
		func(_ context.Context, i int) error {
			cells[i].jp, cells[i].err = measure(cfg, bench, counts[i], cfg.repeats(), 0)
			return nil
		})
	var baseRuntime float64
	for i, n := range counts {
		if cells[i].err != nil {
			break
		}
		jp := cells[i].jp
		if i == 0 {
			baseRuntime = jp.Runtime * float64(counts[0])
		}
		pt := Fig8Point{
			Nodes:    n,
			NodeMode: highMode(jp),
			NodeMean: jp.NodeTotal.Summary.Mean,
			EnergyMJ: jp.EnergyJ / 1e6,
			Runtime:  jp.Runtime,
		}
		if jp.Runtime > 0 {
			pt.ParEff = baseRuntime / jp.Runtime / float64(n)
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// EnergyMonotone reports whether energy to solution increases with
// node count (the paper's observation).
func (r Fig8Result) EnergyMonotone() bool {
	for i := 1; i < len(r.Points); i++ {
		if r.Points[i].EnergyMJ <= r.Points[i-1].EnergyMJ {
			return false
		}
	}
	return len(r.Points) > 1
}

// Render draws the sweep.
func (r Fig8Result) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 8 — power and energy-to-solution vs concurrency (%s)\n\n", r.Bench)
	t := report.NewTable("nodes", "par. eff.", "node mode", "node mean", "energy", "runtime")
	for _, p := range r.Points {
		t.AddRow(
			fmt.Sprintf("%d", p.Nodes),
			fmt.Sprintf("%.0f%%", p.ParEff*100),
			fmt.Sprintf("%.0f W", p.NodeMode),
			fmt.Sprintf("%.0f W", p.NodeMean),
			fmt.Sprintf("%.2f MJ", p.EnergyMJ),
			report.Seconds(p.Runtime),
		)
	}
	sb.WriteString(t.String())
	return sb.String()
}
