package experiments

import (
	"context"
	"fmt"
	"strings"

	"vasppower/internal/dft/method"
	"vasppower/internal/par"
	"vasppower/internal/report"
	"vasppower/internal/stats"
	"vasppower/internal/workloads"
)

// Fig9Entry is one (method, supercell) violin.
type Fig9Entry struct {
	Method   string
	Atoms    int
	Violin   *stats.Violin
	HighMode float64
}

// Fig9Result reproduces Figure 9: violin plots of node power for the
// seven methods applied to Si128 and Si256 supercells on one node.
// Reproduced findings: HSE and ACFDTR run >600 W/node above the DFT
// methods, every method draws more power on the larger cell, and the
// distributions are multi-modal.
type Fig9Result struct {
	Entries []Fig9Entry
	Sizes   []int
}

// RunFig9 measures all method × size combinations.
func RunFig9(cfg Config) (Fig9Result, error) {
	res := Fig9Result{Sizes: []int{128, 256}}
	kinds := method.Kinds()
	if cfg.Quick {
		res.Sizes = []int{128}
		kinds = []method.Kind{method.DFTRMM, method.HSE, method.ACFDTR}
	}
	entries := make([]Fig9Entry, len(res.Sizes)*len(kinds))
	err := par.ForEach(context.Background(), cfg.workers(), len(entries),
		func(_ context.Context, i int) error {
			atoms := res.Sizes[i/len(kinds)]
			k := kinds[i%len(kinds)]
			b, err := workloads.SiliconBenchmark(atoms, k)
			if err != nil {
				return err
			}
			jp, err := measure(cfg, b, 1, cfg.repeats(), 0)
			if err != nil {
				return err
			}
			v := stats.NewViolin(fmt.Sprintf("%s/Si%d", k, atoms), jp.NodeTotal.Series.Values)
			e := Fig9Entry{Method: k.String(), Atoms: atoms, Violin: v}
			if hm, ok := v.HighPowerMode(); ok {
				e.HighMode = hm.X
			}
			entries[i] = e
			return nil
		})
	if err != nil {
		return res, err
	}
	res.Entries = entries
	return res, nil
}

// MethodGap returns the mean high-mode difference between the
// higher-order methods (hse, acfdtr) and the plain-DFT methods for
// the given size (the paper reports >600 W/node).
func (r Fig9Result) MethodGap(atoms int) float64 {
	var hi, lo float64
	var nHi, nLo int
	for _, e := range r.Entries {
		if e.Atoms != atoms || e.HighMode == 0 {
			continue
		}
		if e.Method == "hse" || e.Method == "acfdtr" {
			hi += e.HighMode
			nHi++
		} else {
			lo += e.HighMode
			nLo++
		}
	}
	if nHi == 0 || nLo == 0 {
		return 0
	}
	return hi/float64(nHi) - lo/float64(nLo)
}

// Render draws the violins.
func (r Fig9Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Figure 9 — power distributions by method (violin data, 1 node)\n\n")
	for _, atoms := range r.Sizes {
		fmt.Fprintf(&sb, "Si%d supercell:\n", atoms)
		for _, e := range r.Entries {
			if e.Atoms == atoms {
				sb.WriteString(report.ViolinText(e.Violin, 48))
			}
		}
		if gap := r.MethodGap(atoms); gap > 0 {
			fmt.Fprintf(&sb, "higher-order vs DFT high-mode gap: %.0f W/node\n\n", gap)
		}
	}
	return sb.String()
}
