package experiments

import (
	"fmt"

	"vasppower/internal/report"
	"vasppower/internal/workloads"
)

// TableIRow is one column of the paper's Table I (the paper lays
// benchmarks out as columns; we render them as rows).
type TableIRow struct {
	Name        string
	Electrons   int
	Ions        int
	Functional  string
	Algo        string
	NELM        int
	NBands      int
	NBandsExact int
	FFTGrid     [3]int
	NPLWV       int
	KPoints     [3]int
	KPar        int
}

// TableIResult reproduces Table I from the benchmark definitions.
type TableIResult struct {
	Rows []TableIRow
}

// RunTableI builds the table.
func RunTableI(cfg Config) (TableIResult, error) {
	var res TableIResult
	for _, b := range workloads.TableI() {
		if err := b.Validate(); err != nil {
			return res, err
		}
		res.Rows = append(res.Rows, TableIRow{
			Name:        b.Name,
			Electrons:   b.Structure.Electrons,
			Ions:        b.Structure.NumIons,
			Functional:  b.Functional,
			Algo:        b.AlgoName,
			NELM:        b.NELM,
			NBands:      b.NBands,
			NBandsExact: b.NBandsExact,
			FFTGrid:     b.FFTGrid,
			NPLWV:       b.NPLWV(),
			KPoints:     b.KPoints.Mesh,
			KPar:        b.KPar,
		})
	}
	return res, nil
}

// Render reproduces Table I as text.
func (r TableIResult) Render() string {
	t := report.NewTable("benchmark", "electrons(ions)", "functional", "algo",
		"NELM", "NBANDS", "FFT grid", "NPLWV", "KPOINTS(KPAR)")
	for _, row := range r.Rows {
		nb := fmt.Sprintf("%d", row.NBands)
		if row.NBandsExact > 0 {
			nb += fmt.Sprintf(" (exact %d)", row.NBandsExact)
		}
		t.AddRow(
			row.Name,
			fmt.Sprintf("%d (%d)", row.Electrons, row.Ions),
			row.Functional,
			row.Algo,
			fmt.Sprintf("%d", row.NELM),
			nb,
			fmt.Sprintf("%dx%dx%d", row.FFTGrid[0], row.FFTGrid[1], row.FFTGrid[2]),
			fmt.Sprintf("%d", row.NPLWV),
			fmt.Sprintf("%d %d %d (%d)", row.KPoints[0], row.KPoints[1], row.KPoints[2], row.KPar),
		)
	}
	return "Table I — benchmark suite\n" + t.String()
}
