// Package cpu models the host processor of a Perlmutter GPU node: one
// AMD EPYC 7763 "Milan" (64 cores, 280 W TDP). For this study the CPU
// matters in three regimes the paper distinguishes (§III-C):
//
//   - idle / near-idle while GPUs compute (VASP's GPU port leaves the
//     host mostly orchestrating — CPU+memory below 10% of node power),
//   - host-orchestration load (kernel launches, MPI progress),
//   - full compute phases, e.g. the exact-diagonalization step of
//     ACFDT/RPA that VASP 6.4.1 had not yet ported to GPUs, which
//     produces the flat CPU-bound valley in Si128_acfdtr's timeline.
package cpu

import (
	"fmt"
	"math"

	"vasppower/internal/rng"
)

// Spec holds the CPU model parameters.
type Spec struct {
	Name      string
	TDP       float64 // W (EPYC 7763: 280)
	IdleWatts float64 // package idle power
	Cores     int
	PeakFlops float64 // all-core FP64 peak, flop/s
}

// EPYC7763 returns the Milan spec used in Perlmutter GPU nodes.
func EPYC7763() Spec {
	return Spec{
		Name:      "EPYC-7763",
		TDP:       280,
		IdleWatts: 85,
		Cores:     64,
		PeakFlops: 3.58e12, // 64 cores × 2.45 GHz × 16 flop/cycle + boost margin
	}
}

// Variability holds the per-package manufacturing-spread parameters,
// carried by the platform and threaded in by the node layer.
type Variability struct {
	// IdleSigma is the relative spread of package idle power.
	IdleSigma float64
	// EffSigma is the relative spread of dynamic power.
	EffSigma float64
}

// DefaultVariability returns the spread used for the paper's fleet.
func DefaultVariability() Variability {
	return Variability{IdleSigma: 0.04, EffSigma: 0.02}
}

// CPU is one processor instance with manufacturing variability.
type CPU struct {
	Spec      Spec
	idleScale float64
	effScale  float64
}

// New creates a CPU with variability drawn from r using the given
// spread; pass nil for r for a nominal device.
func New(spec Spec, r *rng.Stream, v Variability) *CPU {
	c := &CPU{Spec: spec, idleScale: 1, effScale: 1}
	if r != nil {
		c.idleScale = clamp(r.Normal(1, v.IdleSigma), 0.88, 1.12)
		c.effScale = clamp(r.Normal(1, v.EffSigma), 0.94, 1.06)
	}
	return c
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// IdlePower returns the package idle draw.
func (c *CPU) IdlePower() float64 { return c.Spec.IdleWatts * c.idleScale }

// PowerAt returns the package power at a given utilization u ∈ [0,1]
// (fraction of all-core peak activity). The curve is mildly concave:
// the uncore and memory controllers power up quickly with any
// activity, after which power grows with load.
func (c *CPU) PowerAt(u float64) float64 {
	if u < 0 || u > 1 {
		panic(fmt.Sprintf("cpu: utilization %v out of [0,1]", u))
	}
	dynamic := (c.Spec.TDP - c.Spec.IdleWatts) * c.effScale
	// 35% of dynamic power arrives by u=0.1 (uncore wake-up), the rest
	// linearly.
	var f float64
	if u <= 0.1 {
		f = 0.35 * (u / 0.1)
	} else {
		f = 0.35 + 0.65*(u-0.1)/0.9
	}
	return c.Spec.IdleWatts*c.idleScale + dynamic*f
}

// HostOrchestrationPower returns the package power while the CPU is
// only driving GPUs (launch queues, MPI progress threads): one busy
// core per GPU plus OS noise, ≈ 12% utilization on a 64-core part.
func (c *CPU) HostOrchestrationPower() float64 { return c.PowerAt(0.12) }

// Task is a CPU-side computation (e.g. a ScaLAPACK eigensolve).
type Task struct {
	Name  string
	Flops float64 // total FP work
	// Efficiency is the achieved fraction of all-core peak (parallel
	// efficiency × vectorization efficiency), ∈ (0, 1].
	Efficiency float64
	// Utilization is the package activity level while the task runs
	// (drives power), ∈ (0, 1].
	Utilization float64
}

// Execution describes a completed CPU task.
type Execution struct {
	Duration float64
	Power    float64
}

// Run executes the task and returns its duration and sustained power.
func (c *CPU) Run(t Task) Execution {
	if t.Flops < 0 || t.Efficiency <= 0 || t.Efficiency > 1 ||
		t.Utilization <= 0 || t.Utilization > 1 {
		panic(fmt.Sprintf("cpu: invalid task %+v", t))
	}
	dur := t.Flops / (t.Efficiency * c.Spec.PeakFlops)
	return Execution{Duration: dur, Power: c.PowerAt(t.Utilization)}
}

// EigensolveTask models a dense symmetric eigensolve of an n×n matrix
// on the host (the RPA exact-diagonalization step): ~(10/3)·n³ flops
// at modest parallel efficiency, running the package near full tilt.
func EigensolveTask(n int) Task {
	return Task{
		Name:        fmt.Sprintf("eigensolve-%d", n),
		Flops:       (10.0 / 3.0) * math.Pow(float64(n), 3),
		Efficiency:  0.25, // eigensolvers are far from GEMM efficiency
		Utilization: 0.75,
	}
}
