package cpu

import (
	"math"
	"testing"

	"vasppower/internal/rng"
)

func TestIdleAndPeakPower(t *testing.T) {
	c := New(EPYC7763(), nil, DefaultVariability())
	if got := c.IdlePower(); got != 85 {
		t.Fatalf("idle = %v, want 85", got)
	}
	if got := c.PowerAt(1); math.Abs(got-280) > 1e-9 {
		t.Fatalf("full-load power = %v, want 280 (TDP)", got)
	}
}

func TestPowerMonotoneInUtilization(t *testing.T) {
	c := New(EPYC7763(), nil, DefaultVariability())
	prev := -1.0
	for u := 0.0; u <= 1.0; u += 0.01 {
		p := c.PowerAt(u)
		if p < prev {
			t.Fatalf("power not monotone at u=%v", u)
		}
		prev = p
	}
}

func TestPowerAtPanicsOutOfRange(t *testing.T) {
	c := New(EPYC7763(), nil, DefaultVariability())
	for _, u := range []float64{-0.1, 1.1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("PowerAt(%v) did not panic", u)
				}
			}()
			c.PowerAt(u)
		}()
	}
}

func TestHostOrchestrationPowerLow(t *testing.T) {
	// While GPUs compute, the host should sit well below half TDP —
	// the paper reports CPU+memory below 10% of node power (§III-C).
	c := New(EPYC7763(), nil, DefaultVariability())
	p := c.HostOrchestrationPower()
	if p < c.IdlePower() || p > 170 {
		t.Fatalf("host orchestration power = %v, want in [85, 170]", p)
	}
}

func TestRunEigensolve(t *testing.T) {
	c := New(EPYC7763(), nil, DefaultVariability())
	small := c.Run(EigensolveTask(2000))
	big := c.Run(EigensolveTask(4000))
	if big.Duration < 7.5*small.Duration || big.Duration > 8.5*small.Duration {
		t.Fatalf("eigensolve should scale ~n³: %v vs %v", small.Duration, big.Duration)
	}
	if big.Power < 200 || big.Power > 280 {
		t.Fatalf("eigensolve power = %v, want near-TDP", big.Power)
	}
}

func TestRunPanicsOnInvalidTask(t *testing.T) {
	c := New(EPYC7763(), nil, DefaultVariability())
	defer func() {
		if recover() == nil {
			t.Fatal("invalid task did not panic")
		}
	}()
	c.Run(Task{Flops: 1, Efficiency: 0, Utilization: 0.5})
}

func TestVariabilityDeterministicAndBounded(t *testing.T) {
	a := New(EPYC7763(), rng.New(3).Split("cpu"), DefaultVariability())
	b := New(EPYC7763(), rng.New(3).Split("cpu"), DefaultVariability())
	if a.IdlePower() != b.IdlePower() {
		t.Fatal("variability not deterministic")
	}
	root := rng.New(7)
	for i := 0; i < 100; i++ {
		c := New(EPYC7763(), root.Split(string(rune('a'+i%26))+"x"), DefaultVariability())
		if c.IdlePower() < 85*0.88-1e-9 || c.IdlePower() > 85*1.12+1e-9 {
			t.Fatalf("idle variability out of clamp: %v", c.IdlePower())
		}
	}
}
