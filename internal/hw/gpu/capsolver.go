package gpu

import "math"

// CapSolver is the cap-independent half of one (device, kernel)
// execution, built once per sweep by the incremental engine: every
// constant of powerAt/timeAt/memPowerAt that does not depend on the
// clock — resolved-profile products, the memory-side duration, the
// static power base — hoisted out of the cap solver's bisection loop.
// Solve then re-runs only the clock decision under the device's
// current power and clock limits.
//
// Every hoisted value is a contiguous subtree of the original
// expression, evaluated in the same order on the same inputs, so
// Solve's Execution is bit-identical to Run's (pinned by the
// differential tests in capsolver_test.go). The big win is the
// memory-bound case — common across the VASP methods' FFT-heavy
// schedules — where the kernel duration does not depend on the clock
// at all and the bisection predicate collapses to a handful of flops.
type CapSolver struct {
	g *GPU
	k Kernel
	p ExecProfile

	// Hoisted subtrees of timeAt.
	latency float64
	fcDen   float64 // ComputeOcc·PeakFlops (tc = Flops/(fcDen·c))
	tm      float64 // memory-side duration, clock-independent

	// Hoisted subtrees of powerAt.
	base    float64 // IdleWatts·idleScale + ActiveBase·idleScale
	eff     float64 // effScale (· PowerScale)
	cs      float64 // CompPowerFull·smActivity(p)
	gamma   float64 // Gamma
	gamma3  float64 // 1−Gamma
	idleP   float64 // powerAt's t ≤ 0 fallback
	hbmIdle float64 // memPowerAt's t ≤ 0 fallback
	effMemF float64 // eff·MemPowerFull (memPowerAt's dynamic factor)

	// memBound: the kernel is memory-bound at every clock the device
	// can run (tc(MinClockFrac) ≤ tm, and tc only shrinks as the clock
	// rises), so duration, byte rate, and the SM duty cycle are all
	// clock-independent and fold into constants.
	memBound bool
	tConst   float64 // latency + tm
	csActive float64 // cs·active at the constant duration
	memTerm  float64 // MemPowerFull·(byteRate/PeakMemBW), powerAt's tree
	memPowC  float64 // memPowerAt at the constant duration
}

// NewCapSolver hoists the cap-independent constants of running k on g
// under its resolved profile p. The profile must be g's own
// Model().Resolve(k) result; given that, Solve is bit-identical to
// g.Run(k) under every power and clock limit.
func (g *GPU) NewCapSolver(k Kernel, p ExecProfile) CapSolver {
	sp := g.Spec
	s := CapSolver{
		g:       g,
		k:       k,
		p:       p,
		latency: p.Latency,
		base:    sp.IdleWatts*g.idleScale + sp.ActiveBase*g.idleScale,
		eff:     g.effScale,
		cs:      sp.CompPowerFull * smActivity(p),
		gamma:   sp.Gamma,
		gamma3:  1 - sp.Gamma,
		idleP:   g.IdlePower(),
		hbmIdle: g.HBMIdlePower(),
	}
	if p.PowerScale != 0 {
		s.eff *= p.PowerScale
	}
	s.effMemF = s.eff * sp.MemPowerFull
	if k.Flops > 0 {
		s.fcDen = p.ComputeOcc * sp.PeakFlops
	}
	if k.Bytes > 0 {
		s.tm = k.Bytes / (p.MemOcc * sp.PeakMemBW)
	}
	// Memory-bound at the lowest clock ⇒ memory-bound everywhere: the
	// compute-side duration only shrinks as the clock rises, so
	// math.Max picks tm at every clock the bisection can visit.
	tcMax := 0.0
	if k.Flops > 0 {
		tcMax = k.Flops / (s.fcDen * sp.MinClockFrac)
	}
	if tcMax <= s.tm {
		s.memBound = true
		t := s.latency + math.Max(tcMax, s.tm) // = latency + tm, Max kept for the tc == tm tie
		s.tConst = t
		if t > 0 {
			byteRate := k.Bytes / t
			active := 1.0
			if p.Latency > 0 {
				active = (t - p.Latency) / t
				if active < 0 {
					active = 0
				}
			}
			s.csActive = s.cs * active
			s.memTerm = sp.MemPowerFull * (byteRate / sp.PeakMemBW)
			s.memPowC = s.hbmIdle + s.effMemF*(byteRate/sp.PeakMemBW)
		}
	}
	return s
}

// powerAt mirrors (*GPU).powerAt with the hoisted constants.
func (s *CapSolver) powerAt(c float64) float64 {
	if s.memBound {
		if s.tConst <= 0 {
			return s.idleP
		}
		cf := s.gamma*c + s.gamma3*c*c*c
		return s.base + s.eff*(s.csActive*cf+s.memTerm)
	}
	t := s.timeAt(c)
	if t <= 0 {
		return s.idleP
	}
	byteRate := s.k.Bytes / t
	cf := s.gamma*c + s.gamma3*c*c*c
	active := 1.0
	if s.latency > 0 && t > 0 {
		active = (t - s.latency) / t
		if active < 0 {
			active = 0
		}
	}
	return s.base + s.eff*(s.cs*active*cf+
		s.g.Spec.MemPowerFull*(byteRate/s.g.Spec.PeakMemBW))
}

// timeAt mirrors (*GPU).timeAt with the hoisted constants.
func (s *CapSolver) timeAt(c float64) float64 {
	if s.memBound {
		return s.tConst
	}
	var tc float64
	if s.k.Flops > 0 {
		tc = s.k.Flops / (s.fcDen * c)
	}
	return s.latency + math.Max(tc, s.tm)
}

// memPowerAt mirrors (*GPU).memPowerAt with the hoisted constants.
func (s *CapSolver) memPowerAt(c float64) float64 {
	if s.memBound {
		if s.tConst <= 0 {
			return s.hbmIdle
		}
		return s.memPowC
	}
	t := s.timeAt(c)
	if t <= 0 {
		return s.hbmIdle
	}
	byteRate := s.k.Bytes / t
	return s.hbmIdle + s.effMemF*(byteRate/s.g.Spec.PeakMemBW)
}

// Solve runs the cap solver under the device's current power and clock
// limits — the same uncapped fast path, floor overshoot, and
// 48-iteration bisection as (*GPU).runResolved, with the per-iteration
// predicate reduced to the hoisted arithmetic.
func (s *CapSolver) Solve() Execution {
	g := s.g
	cap := g.effectiveCap()
	cMin := g.Spec.MinClockFrac
	cMax := g.clockLimit
	if pw := s.powerAt(cMax); pw <= cap {
		return Execution{Duration: s.timeAt(cMax), Power: pw,
			MemPower: s.memPowerAt(cMax), ClockFrac: cMax, Capped: cMax < 1}
	}
	if pw := s.powerAt(cMin); pw > cap {
		return Execution{Duration: s.timeAt(cMin), Power: pw,
			MemPower: s.memPowerAt(cMin), ClockFrac: cMin, Capped: true}
	}
	lo, hi := cMin, cMax
	for i := 0; i < 48; i++ {
		mid := (lo + hi) / 2
		if s.powerAt(mid) <= cap {
			lo = mid
		} else {
			hi = mid
		}
	}
	return Execution{Duration: s.timeAt(lo), Power: s.powerAt(lo),
		MemPower: s.memPowerAt(lo), ClockFrac: lo, Capped: true}
}
