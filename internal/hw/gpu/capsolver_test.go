package gpu

import (
	"testing"

	"vasppower/internal/rng"
)

// execsEqual demands exact float equality on every Execution field —
// the CapSolver contract is bit-identity with Run, not tolerance.
func execsEqual(t *testing.T, label string, want, got Execution) {
	t.Helper()
	if want != got {
		t.Fatalf("%s: solver %+v vs Run %+v", label, got, want)
	}
}

// capSolverDevices spans the spec × variability grid the incremental
// engine sees in practice: nominal boards of both A100 flavors plus
// seeded-variability devices whose idle/efficiency scales differ.
func capSolverDevices() []*GPU {
	devs := []*GPU{
		New(A100SXM40GB(), nil, 0, nil, DefaultVariability()),
		New(A100SXM80GB(), nil, 0, nil, DefaultVariability()),
	}
	r := rng.New(99)
	for i := 0; i < 4; i++ {
		devs = append(devs, New(A100SXM40GB(), nil, i, r.Split("var"), DefaultVariability()))
		devs = append(devs, New(A100SXM80GB(), nil, i, r.Split("var80"), DefaultVariability()))
	}
	return devs
}

// TestCapSolverMatchesRun pins NewCapSolver(k, p).Solve() to g.Run(k)
// bit-for-bit across kernels (fixed compute- and memory-bound plus a
// random draw from every class), devices with seeded variability, and
// the full power- and clock-limit grid — uncapped, binding, and floor.
func TestCapSolverMatchesRun(t *testing.T) {
	kr := rng.New(41)
	kernels := []Kernel{dgemmKernel(), streamKernel()}
	for i := 0; i < 24; i++ {
		kernels = append(kernels, randomKernel(kr))
	}

	for di, g := range capSolverDevices() {
		caps := []float64{0, g.Spec.TDP, g.Spec.MinPowerLimit,
			g.Spec.MinPowerLimit + 30, 200, 250, 330}
		clocks := []float64{0, g.Spec.MaxClockMHz,
			g.Spec.MinClockFrac * g.Spec.MaxClockMHz, 1100}
		for ki, k := range kernels {
			p, err := g.Resolve(k)
			if err != nil {
				t.Fatal(err)
			}
			s := g.NewCapSolver(k, p)
			for _, capW := range caps {
				for _, mhz := range clocks {
					if capW == 0 {
						g.ResetPowerLimit()
					} else if err := g.SetPowerLimit(capW); err != nil {
						t.Fatal(err)
					}
					if mhz == 0 {
						g.ResetClockLimit()
					} else if err := g.SetClockLimitMHz(mhz); err != nil {
						t.Fatal(err)
					}
					want := g.Run(k)
					got := s.Solve()
					execsEqual(t, // label carries the failing grid point
						// (device, kernel, cap, clock)
						kernelGridLabel(di, ki, capW, mhz), want, got)
				}
			}
			g.ResetPowerLimit()
			g.ResetClockLimit()
		}
	}
}

func kernelGridLabel(di, ki int, capW, mhz float64) string {
	return "dev=" + itoa(di) + " kernel=" + itoa(ki) +
		" cap=" + itoa(int(capW)) + "W clock=" + itoa(int(mhz)) + "MHz"
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// TestCapSolverMemBoundFastPath checks the collapsed predicate really
// engages for a memory-bound kernel and stays off for a compute-bound
// one — the structural speedup the incremental engine relies on.
func TestCapSolverMemBoundFastPath(t *testing.T) {
	g := nominal()
	sk := streamKernel()
	s := g.NewCapSolver(sk, resolve(t, g, sk))
	if !s.memBound {
		t.Fatal("STREAM kernel not detected as memory-bound")
	}
	dk := dgemmKernel()
	s = g.NewCapSolver(dk, resolve(t, g, dk))
	if s.memBound {
		t.Fatal("DGEMM kernel mis-detected as memory-bound")
	}
}

// BenchmarkCapSolverSolve measures the per-point bisection cost the
// prepared engine pays, against the oracle's resolve-and-bisect.
func BenchmarkCapSolverSolve(b *testing.B) {
	g := nominal()
	if err := g.SetPowerLimit(250); err != nil {
		b.Fatal(err)
	}
	for _, bc := range []struct {
		name string
		k    Kernel
	}{{"compute", dgemmKernel()}, {"memory", streamKernel()}} {
		p, err := g.Resolve(bc.k)
		if err != nil {
			b.Fatal(err)
		}
		s := g.NewCapSolver(bc.k, p)
		b.Run(bc.name+"/oracle", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				g.Run(bc.k)
			}
		})
		b.Run(bc.name+"/capsolver", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s.Solve()
			}
		})
	}
	g.ResetPowerLimit()
}
