package gpu

import (
	"math"
	"testing"

	"vasppower/internal/rng"
)

func TestHBMIdlePowerShare(t *testing.T) {
	g := nominal()
	want := HBMIdleFrac * g.Spec.IdleWatts
	if got := g.HBMIdlePower(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("HBMIdlePower = %v, want %v", got, want)
	}
	if g.HBMIdlePower() >= g.IdlePower() {
		t.Fatal("memory domain at idle must be a strict share of board idle")
	}
}

func TestCoreDomainPowerClamp(t *testing.T) {
	// Normal split: core = (1-vr)·module - mem.
	if got, want := CoreDomainPower(400, 100), 400*(1-ModuleVRFrac)-100; math.Abs(got-want) > 1e-9 {
		t.Fatalf("CoreDomainPower(400,100) = %v, want %v", got, want)
	}
	// A memory reading that (numerically) exceeds the VR-corrected
	// board power clamps to zero rather than going negative.
	if got := CoreDomainPower(100, 100); got != 0 {
		t.Fatalf("CoreDomainPower clamp = %v, want 0", got)
	}
}

// Property: the HBM-domain share never exceeds board power, for
// classic and random kernels under random caps and clock limits, and
// stays at or above the HBM idle floor.
func TestMemPowerWithinBoardPower(t *testing.T) {
	root := rng.New(2025)
	for trial := 0; trial < 300; trial++ {
		r := rng.New(root.Uint64())
		g := New(A100SXM40GB(), nil, 0, r.Split("gpu"), DefaultVariability())
		k := randomKernel(r.Split("kernel"))
		if k.Flops == 0 && k.Bytes == 0 && k.Launches == 0 {
			continue
		}
		if r.Float64() < 0.5 {
			_ = g.SetPowerLimit(100 + r.Float64()*300)
		}
		ex := g.Run(k)
		if ex.MemPower > ex.Power+1e-9 {
			t.Fatalf("trial %d: MemPower %.2f exceeds board power %.2f", trial, ex.MemPower, ex.Power)
		}
		if ex.MemPower < g.HBMIdlePower()-1e-9 {
			t.Fatalf("trial %d: MemPower %.2f below HBM idle floor %.2f", trial, ex.MemPower, g.HBMIdlePower())
		}
		if got := CoreDomainPower(ex.Power, ex.MemPower); got < 0 {
			t.Fatalf("trial %d: negative core domain", trial)
		}
	}
}

func TestMemPowerTracksBandwidthBoundKernels(t *testing.T) {
	g := nominal()
	dg := g.Run(dgemmKernel())
	st := g.Run(streamKernel())
	// STREAM saturates HBM: its memory-domain share of board power
	// must far exceed DGEMM's (which burns its budget in the SMs).
	if st.MemPower/st.Power <= dg.MemPower/dg.Power {
		t.Fatalf("memory-domain share: stream %.2f ≤ dgemm %.2f",
			st.MemPower/st.Power, dg.MemPower/dg.Power)
	}
	// And a deep power cap leaves HBM draw (nearly) untouched — the
	// HBM clock does not throttle with SM clocks.
	_ = g.SetPowerLimit(100)
	capped := g.Run(streamKernel())
	if capped.MemPower < st.MemPower*0.9 {
		t.Fatalf("HBM power collapsed under SM cap: %.1f vs %.1f", capped.MemPower, st.MemPower)
	}
}
