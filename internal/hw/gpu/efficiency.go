// Efficiency tables: the platform-owned resolution from a pure work
// descriptor (Kernel) to an execution profile (ExecProfile).
//
// The paper's power profiles hinge on *achieved* efficiency — how far
// each kernel sits from peak flops and peak bandwidth. Before this
// table existed, that knowledge lived as ~30 occupancy/activity
// constants scattered through the dft/method kernel builders and the
// workloads schedules, invisible to the platform registry. Now a
// Kernel carries only work (flops, bytes, size axes, launches,
// operand entropy) and the platform's EfficiencyModel owns how that
// work lands on the hardware: per-kernel-class MFU/MBU/SM-activity
// response tables keyed by saturating size axes, plus an
// entropy→dynamic-power factor per "Understanding the Impact of Input
// Entropy on FPU, CPU, and GPU Power". Two platforms resolve the same
// descriptor differently by carrying different tables — which is what
// turns an extrapolated platform into one you can actually edit.
package gpu

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"sync"
)

// KernelClass names a family of kernels that share an efficiency
// response: same hardware, same class, same achieved-efficiency curve.
type KernelClass string

// The kernel classes of the VASP workload model (internal/dft/method)
// and the microbenchmark/MILC schedules (internal/workloads).
const (
	// ClassFFT is the batched band-FFT of the plain-DFT SCF loop.
	ClassFFT KernelClass = "fft"
	// ClassExchangeFFT is the HSE exact-exchange pair transform.
	ClassExchangeFFT KernelClass = "exch-fft"
	// ClassGEMM is a complex GEMM (subspace rotation, orthonormalization,
	// exchange accumulation, RPA polarizability).
	ClassGEMM KernelClass = "gemm"
	// ClassEig is the dense GPU eigensolve of a subspace matrix.
	ClassEig KernelClass = "eig"
	// ClassNonlocal is real-space nonlocal projection.
	ClassNonlocal KernelClass = "nonlocal"
	// ClassVdW is the pairwise dispersion-correction kernel.
	ClassVdW KernelClass = "vdw"
	// ClassDGEMMPeak is the near-peak DGEMM burn-in microbenchmark.
	ClassDGEMMPeak KernelClass = "dgemm-peak"
	// ClassStreamTriad is the STREAM triad bandwidth microbenchmark.
	ClassStreamTriad KernelClass = "stream-triad"
	// ClassStencil is the MILC staggered-dslash stencil.
	ClassStencil KernelClass = "stencil"
	// ClassSU3Force is the MILC SU(3) force/link-update kernel.
	ClassSU3Force KernelClass = "su3-force"
)

// ExecProfile is a resolved execution profile: how a work descriptor
// actually lands on a specific device, as decided by the platform's
// EfficiencyModel. The roofline/power solver consumes this, never the
// table itself.
type ExecProfile struct {
	// ComputeOcc ∈ (0,1] is the fraction of peak flop throughput
	// achieved at full clock (MFU: occupancy × pipe efficiency).
	ComputeOcc float64
	// MemOcc ∈ (0,1] is the fraction of peak bandwidth achieved (MBU).
	MemOcc float64
	// SMActivity ∈ [0,1] is SM issue-slot busyness while the kernel
	// runs; it drives SM power independently of the flop rate.
	// Zero means "derive from ComputeOcc".
	SMActivity float64
	// Latency is fixed time not overlapped with the roofline terms.
	Latency float64
	// PowerScale multiplies dynamic power (the operand-entropy factor;
	// zero means 1).
	PowerScale float64
}

// Response is one efficiency response curve: a ceiling scaled by
// saturating functions of the kernel's size axes,
//
//	value = Cap · ∏_{i: Half[i]>0} axes[i]/(axes[i]+Half[i])
//
// A zero Half entry ignores that axis; a Response with no active
// halves is the constant Cap.
type Response struct {
	Cap  float64    `json:"cap"`
	Half [3]float64 `json:"half"`
}

// eval chains the response's own per-axis saturations onto its cap.
func (r Response) eval(axes [3]float64) float64 {
	v := r.Cap
	for i, h := range r.Half {
		if h > 0 {
			v *= sat(axes[i], h)
		}
	}
	return v
}

// ClassEfficiency is the response table for one kernel class.
type ClassEfficiency struct {
	// Fill, when any element is nonzero, defines a shared GPU-fill
	// factor ∏_{i: Fill[i]>0} sat(axes[i], Fill[i]) that scales every
	// response cap together (the per-response Half entries are then
	// ignored). This models classes whose compute, bandwidth, and SM
	// activity all track one physical fill level — e.g. band FFTs
	// governed by points-in-flight. When Fill is all zero, each
	// response chains its own per-axis saturations independently.
	Fill [3]float64 `json:"fill"`
	// Compute is the MFU response (fraction of peak flops).
	Compute Response `json:"compute"`
	// Memory is the MBU response (fraction of peak bandwidth).
	Memory Response `json:"memory"`
	// SMActivity is the issue-slot busyness response. A zero cap with
	// no halves means "derive from the compute occupancy".
	SMActivity Response `json:"sm_activity"`
	// LaunchFactor scales the model's per-launch latency for this
	// class (0 = 1): serialized panel solvers pay more per launch.
	LaunchFactor float64 `json:"launch_factor,omitempty"`
}

// EntropyModel maps operand entropy (0..1, fraction of switching bits
// in the data stream) to a dynamic-power factor. Per the entropy
// study, the same kernel on different data draws measurably different
// power: low-entropy operands toggle fewer wires.
type EntropyModel struct {
	// Ref is the entropy of the calibration data (power factor 1).
	Ref float64 `json:"ref"`
	// Sensitivity is the relative dynamic-power swing across the full
	// entropy range: scale = 1 + Sensitivity·(entropy − Ref).
	Sensitivity float64 `json:"sensitivity"`
}

// Scale returns the dynamic-power factor for the given operand
// entropy. Zero entropy means "unspecified" and returns exactly 1,
// so descriptors that never state an entropy reproduce the reference
// calibration bit-for-bit.
func (e EntropyModel) Scale(entropy float64) float64 {
	if entropy == 0 {
		return 1
	}
	return 1 + e.Sensitivity*(entropy-e.Ref)
}

// EfficiencyModel is a platform's complete achieved-efficiency table:
// per-class MFU/MBU/SM-activity responses plus the shared launch
// latency, occupancy floor, and entropy factor. Models are treated as
// immutable once in use (they are shared by pointer across a
// platform's devices and hashed into cache keys); edit a Clone.
type EfficiencyModel struct {
	Name string `json:"name"`
	// OccFloor clamps resolved compute/memory occupancies from below,
	// keeping degenerate descriptors from dividing by ~zero.
	OccFloor float64 `json:"occ_floor"`
	// LaunchLatency is the fixed cost per kernel launch, seconds.
	LaunchLatency float64 `json:"launch_latency"`
	// Entropy maps operand entropy to a dynamic-power factor.
	Entropy EntropyModel `json:"entropy"`
	// Classes holds one response table per kernel class.
	Classes map[KernelClass]ClassEfficiency `json:"classes"`
}

// sat is the saturating response curve work/(work+half).
func sat(work, half float64) float64 {
	if work <= 0 {
		return 0
	}
	return work / (work + half)
}

// floorOcc clamps an occupancy to [floor, 1].
func floorOcc(x, floor float64) float64 {
	if x < floor {
		return floor
	}
	if x > 1 {
		return 1
	}
	return x
}

// Resolve maps a work descriptor to its execution profile under this
// table. It returns an error for classes the table does not know —
// a descriptor emitted for hardware the platform never calibrated.
func (m *EfficiencyModel) Resolve(k Kernel) (ExecProfile, error) {
	ce, ok := m.Classes[k.Class]
	if !ok {
		return ExecProfile{}, fmt.Errorf("gpu: efficiency table %q has no class %q (kernel %q)", m.Name, k.Class, k.Name)
	}
	var comp, mem, sma float64
	if ce.Fill != ([3]float64{}) {
		fill := 1.0
		for i, h := range ce.Fill {
			if h > 0 {
				fill *= sat(k.Axes[i], h)
			}
		}
		comp = ce.Compute.Cap * fill
		mem = ce.Memory.Cap * fill
		sma = ce.SMActivity.Cap * fill
	} else {
		comp = ce.Compute.eval(k.Axes)
		mem = ce.Memory.eval(k.Axes)
		sma = ce.SMActivity.eval(k.Axes)
	}
	lat := k.Launches * m.LaunchLatency
	if ce.LaunchFactor != 0 {
		lat *= ce.LaunchFactor
	}
	if k.LatencyScale != 0 {
		lat *= k.LatencyScale
	}
	return ExecProfile{
		ComputeOcc: floorOcc(comp, m.OccFloor),
		MemOcc:     floorOcc(mem, m.OccFloor),
		SMActivity: sma,
		Latency:    lat,
		PowerScale: m.Entropy.Scale(k.Entropy),
	}, nil
}

// Validate checks the table's internal consistency.
func (m *EfficiencyModel) Validate() error {
	if m.Name == "" {
		return fmt.Errorf("gpu: efficiency table has no name")
	}
	if nonfinite(m.OccFloor) || m.OccFloor <= 0 || m.OccFloor > 1 {
		return fmt.Errorf("gpu: table %q OccFloor %v out of (0,1]", m.Name, m.OccFloor)
	}
	if nonfinite(m.LaunchLatency) || m.LaunchLatency < 0 {
		return fmt.Errorf("gpu: table %q LaunchLatency %v", m.Name, m.LaunchLatency)
	}
	if nonfinite(m.Entropy.Ref) || m.Entropy.Ref < 0 || m.Entropy.Ref > 1 {
		return fmt.Errorf("gpu: table %q entropy reference %v out of [0,1]", m.Name, m.Entropy.Ref)
	}
	if nonfinite(m.Entropy.Sensitivity) {
		return fmt.Errorf("gpu: table %q entropy sensitivity %v", m.Name, m.Entropy.Sensitivity)
	}
	if len(m.Classes) == 0 {
		return fmt.Errorf("gpu: table %q has no classes", m.Name)
	}
	for class, ce := range m.Classes {
		if err := ce.validate(); err != nil {
			return fmt.Errorf("gpu: table %q class %q: %w", m.Name, class, err)
		}
	}
	return nil
}

func (ce ClassEfficiency) validate() error {
	for _, h := range ce.Fill {
		if nonfinite(h) || h < 0 {
			return fmt.Errorf("fill half-saturation %v", h)
		}
	}
	if err := ce.Compute.validate("compute", 0); err != nil {
		return err
	}
	if err := ce.Memory.validate("memory", 0); err != nil {
		return err
	}
	// A zero SM-activity cap is legal: "derive from compute".
	if err := ce.SMActivity.validate("sm_activity", -1); err != nil {
		return err
	}
	if nonfinite(ce.LaunchFactor) || ce.LaunchFactor < 0 {
		return fmt.Errorf("launch factor %v", ce.LaunchFactor)
	}
	return nil
}

func (r Response) validate(name string, minCap float64) error {
	if nonfinite(r.Cap) || r.Cap <= minCap || r.Cap > 1 {
		return fmt.Errorf("%s cap %v out of range", name, r.Cap)
	}
	for _, h := range r.Half {
		if nonfinite(h) || h < 0 {
			return fmt.Errorf("%s half-saturation %v", name, h)
		}
	}
	return nil
}

// Clone returns a deep copy safe to edit (the class map is copied).
func (m *EfficiencyModel) Clone() *EfficiencyModel {
	c := *m
	c.Classes = make(map[KernelClass]ClassEfficiency, len(m.Classes))
	for class, ce := range m.Classes {
		c.Classes[class] = ce
	}
	return &c
}

// modelHashes memoizes Hash by pointer: tables are immutable once in
// use, and the hash sits on the measurement cache-key hot path.
var modelHashes sync.Map // *EfficiencyModel → string

// Hash returns a short content hash of the table, suitable for cache
// keys: two platforms with byte-identical tables hash equally, and any
// edited response changes the hash (invalidating cached measurements
// taken under the old table).
func (m *EfficiencyModel) Hash() string {
	if v, ok := modelHashes.Load(m); ok {
		return v.(string)
	}
	b, err := json.Marshal(m) // map keys marshal in sorted order
	if err != nil {
		panic(fmt.Sprintf("gpu: hashing efficiency table %q: %v", m.Name, err))
	}
	sum := sha256.Sum256(b)
	h := hex.EncodeToString(sum[:8])
	modelHashes.Store(m, h)
	return h
}

func nonfinite(x float64) bool {
	return math.IsNaN(x) || math.IsInf(x, 0)
}

// DefaultEfficiency returns the calibrated perlmutter-a100 table: the
// exact response surface that previously lived as inline constants in
// the dft/method kernel builders and the workloads schedules, now in
// one place. `calibrate -fit-tables` recovers this table black-box
// from microbenchmark probes (duration and power only); the retained
// constant-based oracle in dft/method's differential tests pins it.
func DefaultEfficiency() *EfficiencyModel {
	return &EfficiencyModel{
		Name:          "perlmutter-a100",
		OccFloor:      0.05,
		LaunchLatency: 6e-6,
		// Reference data is mixed-sign double-precision wavefunction
		// coefficients (entropy ≈ 0.5); the sensitivity follows the
		// entropy study's GPU FP64 dynamic-power swing.
		Entropy: EntropyModel{Ref: 0.5, Sensitivity: 0.24},
		Classes: map[KernelClass]ClassEfficiency{
			// Band FFTs batch NSIM bands: fill — and with it achieved
			// bandwidth and SM activity — is governed by points in
			// flight (axis 0: NSIM·NPLWV) and resident bands (axis 1).
			ClassFFT: {
				Fill:       [3]float64{2.5e6, 240, 0},
				Compute:    Response{Cap: 0.60},
				Memory:     Response{Cap: 0.85},
				SMActivity: Response{Cap: 0.92},
			},
			// Exchange pair transforms batch across band pairs: fill is
			// governed by pairs·grid points in flight (axis 0).
			ClassExchangeFFT: {
				Fill:       [3]float64{3.7e8, 0, 0},
				Compute:    Response{Cap: 0.60},
				Memory:     Response{Cap: 0.55},
				SMActivity: Response{Cap: 0.76},
			},
			// GEMM efficiency saturates per dimension (m, n, k); SM
			// activity follows the achieved efficiency (derived).
			ClassGEMM: {
				Compute: Response{Cap: 0.96, Half: [3]float64{300, 12, 24}},
				Memory:  Response{Cap: 0.70},
			},
			// Dense eigensolver: heavily serialized panels (axis 0 is
			// the flop count), long launch chains.
			ClassEig: {
				Compute:      Response{Cap: 0.45, Half: [3]float64{6e10, 0, 0}},
				Memory:       Response{Cap: 0.5},
				SMActivity:   Response{Cap: 0.15},
				LaunchFactor: 4,
			},
			// Real-space nonlocal projection: compute saturates with
			// total work (axis 0), bandwidth and activity with resident
			// bands (axis 1).
			ClassNonlocal: {
				Compute:      Response{Cap: 0.5, Half: [3]float64{5e9, 0, 0}},
				Memory:       Response{Cap: 0.45, Half: [3]float64{0, 240, 0}},
				SMActivity:   Response{Cap: 0.5, Half: [3]float64{0, 240, 0}},
				LaunchFactor: 2,
			},
			// Pairwise dispersion: latency-dominated at benchmark sizes.
			ClassVdW: {
				Compute:    Response{Cap: 0.25, Half: [3]float64{1e9, 0, 0}},
				Memory:     Response{Cap: 0.3},
				SMActivity: Response{Cap: 0.12},
			},
			// Burn-in microbenchmarks (Fig. 1 prelude).
			ClassDGEMMPeak: {
				Compute: Response{Cap: 0.95},
				Memory:  Response{Cap: 0.85},
			},
			ClassStreamTriad: {
				Compute:    Response{Cap: 0.9},
				Memory:     Response{Cap: 0.92},
				SMActivity: Response{Cap: 0.30}, // SMs mostly stalled on HBM
			},
			// MILC lattice QCD (§VI-B).
			ClassStencil: {
				Compute:    Response{Cap: 0.60},
				Memory:     Response{Cap: 0.75},
				SMActivity: Response{Cap: 0.42},
			},
			ClassSU3Force: {
				Compute:    Response{Cap: 0.55},
				Memory:     Response{Cap: 0.60},
				SMActivity: Response{Cap: 0.62},
			},
		},
	}
}
