package gpu

import (
	"encoding/json"
	"math"
	"testing"
)

func TestResolveUnknownClass(t *testing.T) {
	m := DefaultEfficiency()
	if _, err := m.Resolve(Kernel{Name: "x", Class: "no-such-class", Flops: 1}); err == nil {
		t.Fatal("unknown class resolved")
	}
}

func TestResolveSharedFillScalesAllResponses(t *testing.T) {
	m := DefaultEfficiency()
	small := Kernel{Name: "s", Class: ClassFFT, Flops: 1e9, Bytes: 1e9, Axes: [3]float64{1e5, 10}}
	big := Kernel{Name: "b", Class: ClassFFT, Flops: 1e9, Bytes: 1e9, Axes: [3]float64{1e9, 1e5}}
	ps, err := m.Resolve(small)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := m.Resolve(big)
	if err != nil {
		t.Fatal(err)
	}
	if !(pb.ComputeOcc > ps.ComputeOcc && pb.MemOcc > ps.MemOcc && pb.SMActivity > ps.SMActivity) {
		t.Fatalf("fill did not scale every response: small %+v big %+v", ps, pb)
	}
	// The saturated responses approach the class caps.
	ce := m.Classes[ClassFFT]
	if pb.MemOcc > ce.Memory.Cap || pb.SMActivity > ce.SMActivity.Cap {
		t.Fatalf("responses exceeded caps: %+v", pb)
	}
}

func TestResolveChainedAxes(t *testing.T) {
	// GEMM: each dimension saturates independently; shrinking any one
	// axis lowers the compute occupancy.
	m := DefaultEfficiency()
	base := Kernel{Name: "g", Class: ClassGEMM, Flops: 1, Axes: [3]float64{5000, 640, 640}}
	pb, err := m.Resolve(base)
	if err != nil {
		t.Fatal(err)
	}
	for axis := 0; axis < 3; axis++ {
		k := base
		k.Axes[axis] = base.Axes[axis] / 100
		p, err := m.Resolve(k)
		if err != nil {
			t.Fatal(err)
		}
		if p.ComputeOcc >= pb.ComputeOcc {
			t.Fatalf("shrinking axis %d did not lower occupancy", axis)
		}
	}
	// Memory has no active axes: constant.
	if pb.MemOcc != m.Classes[ClassGEMM].Memory.Cap {
		t.Fatalf("GEMM MemOcc %v, want the constant cap", pb.MemOcc)
	}
	// SM activity derives from compute (zero in the profile).
	if pb.SMActivity != 0 {
		t.Fatalf("GEMM SMActivity %v, want 0 (derive)", pb.SMActivity)
	}
}

func TestResolveOccFloor(t *testing.T) {
	m := DefaultEfficiency()
	k := Kernel{Name: "tiny", Class: ClassGEMM, Flops: 1, Axes: [3]float64{1, 1, 1}}
	p, err := m.Resolve(k)
	if err != nil {
		t.Fatal(err)
	}
	if p.ComputeOcc != m.OccFloor {
		t.Fatalf("degenerate occupancy %v, want floored to %v", p.ComputeOcc, m.OccFloor)
	}
}

func TestResolveLatencyChain(t *testing.T) {
	m := DefaultEfficiency()
	k := Kernel{Name: "eig", Class: ClassEig, Flops: 1, Launches: 10, LatencyScale: 12}
	p, err := m.Resolve(k)
	if err != nil {
		t.Fatal(err)
	}
	// launches × launch latency × class factor (eig: 4) × kernel scale.
	want := 10 * m.LaunchLatency * 4 * 12
	if math.Abs(p.Latency-want) > 1e-15 {
		t.Fatalf("latency %v, want %v", p.Latency, want)
	}
}

func TestEntropyScaleReference(t *testing.T) {
	e := EntropyModel{Ref: 0.5, Sensitivity: 0.24}
	if e.Scale(0) != 1 {
		t.Fatal("unspecified entropy must scale by exactly 1")
	}
	if s := e.Scale(0.5); s != 1 {
		t.Fatalf("reference entropy scales by %v, want 1", s)
	}
	lo, hi := e.Scale(0.1), e.Scale(0.9)
	if !(lo < 1 && 1 < hi) {
		t.Fatalf("entropy scale not monotone around the reference: %v, %v", lo, hi)
	}
}

// TestEntropyShiftsPower is the acceptance check for the entropy axis:
// a fixed work descriptor draws measurably different sustained power
// as only its operand entropy changes.
func TestEntropyShiftsPower(t *testing.T) {
	g := nominal()
	k := dgemmKernel()
	ref := g.UncappedPower(k)
	k.Entropy = 0.1 // low-entropy operands: fewer switching wires
	low := g.UncappedPower(k)
	k.Entropy = 0.9
	high := g.UncappedPower(k)
	if !(low < ref && ref < high) {
		t.Fatalf("entropy did not shift power: low %.1f ref %.1f high %.1f", low, ref, high)
	}
	// The shift is dynamic power only: several percent of the board,
	// not a static offset.
	if high-low < 10 || high-low > 120 {
		t.Fatalf("entropy swing %.1f W implausible", high-low)
	}
	// Duration is untouched: entropy changes watts, not work.
	k.Entropy = 0.1
	dLow := g.UncappedDuration(k)
	k.Entropy = 0.9
	dHigh := g.UncappedDuration(k)
	if dLow != dHigh {
		t.Fatal("entropy changed uncapped duration")
	}
}

func TestModelHashDistinguishesTables(t *testing.T) {
	a := DefaultEfficiency()
	b := DefaultEfficiency()
	if a.Hash() != b.Hash() {
		t.Fatal("identical tables hash differently")
	}
	c := DefaultEfficiency()
	ce := c.Classes[ClassGEMM]
	ce.Compute.Cap = 0.97
	c.Classes[ClassGEMM] = ce
	if c.Hash() == a.Hash() {
		t.Fatal("edited response did not change the hash")
	}
	d := DefaultEfficiency()
	d.Name = "other"
	if d.Hash() == a.Hash() {
		t.Fatal("renamed table did not change the hash")
	}
}

func TestModelCloneIsIndependent(t *testing.T) {
	a := DefaultEfficiency()
	b := a.Clone()
	ce := b.Classes[ClassGEMM]
	ce.Compute.Cap = 0.5
	b.Classes[ClassGEMM] = ce
	if a.Classes[ClassGEMM].Compute.Cap == 0.5 {
		t.Fatal("clone shares the class map")
	}
}

func TestModelJSONRoundTrip(t *testing.T) {
	a := DefaultEfficiency()
	blob, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	var b EfficiencyModel
	if err := json.Unmarshal(blob, &b); err != nil {
		t.Fatal(err)
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	// Behavioral equality on a spread of descriptors.
	r := []Kernel{
		{Name: "f", Class: ClassFFT, Flops: 1e12, Bytes: 1e11, Axes: [3]float64{2e6, 128}, Launches: 50, LatencyScale: 12},
		{Name: "g", Class: ClassGEMM, Flops: 1e12, Bytes: 1e10, Axes: [3]float64{512, 64, 96}, Launches: 1, LatencyScale: 12},
		{Name: "n", Class: ClassNonlocal, Flops: 1e10, Bytes: 2.5e9, Axes: [3]float64{1e10, 200}, Launches: 8, LatencyScale: 12, Entropy: 0.7},
	}
	for _, k := range r {
		pa, err := a.Resolve(k)
		if err != nil {
			t.Fatal(err)
		}
		pb, err := b.Resolve(k)
		if err != nil {
			t.Fatal(err)
		}
		if pa != pb {
			t.Fatalf("round-tripped table resolves %q differently: %+v vs %+v", k.Name, pa, pb)
		}
	}
}

func TestModelValidate(t *testing.T) {
	if err := DefaultEfficiency().Validate(); err != nil {
		t.Fatal(err)
	}
	breakers := []func(*EfficiencyModel){
		func(m *EfficiencyModel) { m.Name = "" },
		func(m *EfficiencyModel) { m.OccFloor = 0 },
		func(m *EfficiencyModel) { m.OccFloor = math.NaN() },
		func(m *EfficiencyModel) { m.LaunchLatency = -1 },
		func(m *EfficiencyModel) { m.Entropy.Ref = 1.5 },
		func(m *EfficiencyModel) { m.Entropy.Sensitivity = math.Inf(1) },
		func(m *EfficiencyModel) { m.Classes = nil },
		func(m *EfficiencyModel) {
			ce := m.Classes[ClassFFT]
			ce.Compute.Cap = 0
			m.Classes[ClassFFT] = ce
		},
		func(m *EfficiencyModel) {
			ce := m.Classes[ClassFFT]
			ce.Memory.Cap = 1.5
			m.Classes[ClassFFT] = ce
		},
		func(m *EfficiencyModel) {
			ce := m.Classes[ClassGEMM]
			ce.Compute.Half[0] = math.NaN()
			m.Classes[ClassGEMM] = ce
		},
		func(m *EfficiencyModel) {
			ce := m.Classes[ClassEig]
			ce.LaunchFactor = -2
			m.Classes[ClassEig] = ce
		},
	}
	for i, brk := range breakers {
		m := DefaultEfficiency()
		brk(m)
		if err := m.Validate(); err == nil {
			t.Fatalf("breaker %d produced a valid table", i)
		}
	}
}
