// Package gpu models an NVIDIA A100-class accelerator at the level the
// paper's experiments need: a roofline kernel-timing model, a
// clock-dependent power model, and a power-cap solver that reproduces
// how `nvidia-smi -pl` caps behave on real boards (clock throttling
// with a hard floor, hence overshoot at the 100 W minimum cap).
//
// # Model
//
// A Kernel is a pure work descriptor: {Class, Flops, Bytes, Axes,
// Launches, Entropy}. How that work lands on the hardware — achieved
// compute/bandwidth fractions, SM activity, launch latency — is owned
// by the device's EfficiencyModel (see efficiency.go), which resolves
// the descriptor into an ExecProfile {ComputeOcc, MemOcc, SMActivity,
// Latency, PowerScale}. At SM clock fraction c ∈ [MinClockFrac, 1]:
//
//	F(c) = PeakFlops · c       — SM throughput scales with clock
//	B    = PeakMemBW           — HBM clock is not governed by the cap
//	t(c) = Latency + max(Flops/(ComputeOcc·F(c)), Bytes/(MemOcc·B))
//
// Power while the kernel runs separates SM power from memory power:
//
//	P(c) = Idle + ActiveBase
//	     + CompPowerFull · SMActivity · duty · (γ·c + (1−γ)·c³) · eff
//	     + MemPowerFull  · (byteRate/PeakMemBW) · eff
//
// where duty = (t − Latency)/t quiets the SMs during the fixed-latency
// portion of the kernel (launch gaps, serial chains), and eff folds the
// profile's operand-entropy PowerScale into the device's dynamic
// efficiency — same kernel, different data, different watts.
//
// SMActivity is how busy the SMs are while the kernel runs (issue-slot
// occupancy) — a bandwidth-bound FFT with full thread occupancy keeps
// the SMs hot even though its flop rate is far from tensor peak, which
// is how VASP's hybrid-functional kernels sustain near-TDP power.
// When SMActivity is zero it defaults to ComputeOcc (a pure roofline
// kernel like DGEMM is exactly as hot as it is efficient).
//
// The γ·c + (1−γ)·c³ term models dynamic power ∝ V²f with V ∝ f near
// the top of the DVFS curve: cutting SM power in half costs only ~25%
// clock, and a memory-bound kernel loses no time at all until the
// clock drops below the point where compute becomes critical. These
// two effects are the physical reason behind the paper's headline
// result — a 50% TDP cap costs most VASP workloads <10% performance
// (Fig. 12) — and behind the 100 W floor overshoot (memory power does
// not throttle, Fig. 10).
//
// P is monotone in c, so the largest cap-respecting clock is found by
// bisection. When even the minimum clock exceeds the cap, the kernel
// runs at minimum clock and the cap is overshot.
package gpu

import (
	"fmt"
	"math"

	"vasppower/internal/rng"
)

// Spec holds the architectural and power parameters of a GPU model.
type Spec struct {
	Name          string
	TDP           float64 // board power limit default/max, W (A100 40GB: 400)
	MinPowerLimit float64 // lowest settable power limit, W (100)
	IdleWatts     float64 // board power when no kernel is resident
	ActiveBase    float64 // static adder while a kernel is resident, W

	PeakFlops float64 // FP64 tensor-core peak at max clock, flop/s
	PeakMemBW float64 // HBM bandwidth, B/s
	HBMBytes  float64 // HBM capacity, bytes (40 GB on the studied nodes)

	MaxClockMHz  float64
	MinClockFrac float64 // lowest clock as a fraction of max

	CompPowerFull float64 // SM power at full activity & clock, W
	MemPowerFull  float64 // HBM+controller power at full bandwidth, W
	Gamma         float64 // linear (non-cubed) fraction of SM dynamic power
}

// A100SXM40GB returns the spec used throughout the study: the 40 GB
// A100 in 1,536 of Perlmutter's GPU nodes ("This work uses only the
// 40 GB GPU-accelerated nodes", §II-A). Power constants are
// calibrated so a near-peak DGEMM draws ≈ TDP and the VASP kernel
// mixes land in the paper's published per-GPU power ranges.
func A100SXM40GB() Spec {
	return Spec{
		Name:          "A100-SXM4-40GB",
		TDP:           400,
		MinPowerLimit: 100,
		IdleWatts:     52,
		ActiveBase:    28,
		PeakFlops:     19.5e12, // FP64 via tensor cores
		PeakMemBW:     1.555e12,
		HBMBytes:      40 << 30,
		MaxClockMHz:   1410,
		MinClockFrac:  210.0 / 1410.0,
		CompPowerFull: 330,
		MemPowerFull:  95,
		Gamma:         0.15,
	}
}

// A100SXM80GB returns the 80 GB variant found in 256 of Perlmutter's
// GPU nodes (§II-A): same board power envelope, twice the HBM
// capacity, slightly higher bandwidth (HBM2e). The study excludes
// these nodes; the spec exists so memory-gated configurations can be
// explored.
func A100SXM80GB() Spec {
	s := A100SXM40GB()
	s.Name = "A100-SXM4-80GB"
	s.HBMBytes = 80 << 30
	s.PeakMemBW = 2.039e12
	s.MemPowerFull = 110
	return s
}

// Variability holds the per-device manufacturing-spread parameters.
// Platforms carry these alongside the architectural spec; the node
// layer threads them into New.
type Variability struct {
	// IdleSigma is the relative spread of static power (idle + base).
	IdleSigma float64
	// EffSigma is the relative spread of dynamic-power efficiency.
	EffSigma float64
}

// DefaultVariability returns the spread calibrated to the paper's
// observed device-to-device differences (§III-B.2).
func DefaultVariability() Variability {
	return Variability{IdleSigma: 0.03, EffSigma: 0.02}
}

// Kernel is a pure work descriptor for one GPU kernel launch (or a
// fused batch of identical launches). It states what the kernel does
// — never how well the hardware runs it; that resolution belongs to
// the platform's EfficiencyModel.
type Kernel struct {
	Name string
	// Class selects the efficiency responses in the platform table.
	Class KernelClass
	// Flops is the total floating-point work, in flop.
	Flops float64
	// Bytes is the total DRAM traffic, in bytes.
	Bytes float64
	// Axes are the class-specific size axes the efficiency responses
	// saturate over (e.g. points in flight and resident bands for an
	// FFT batch; m, n, k for a GEMM). Unused axes stay zero.
	Axes [3]float64
	// Launches is the number of kernel launches the batch decomposes
	// into; fixed launch latency scales with it. Zero means the launch
	// cost is negligible (amortized microbenchmark loops).
	Launches float64
	// LatencyScale multiplies the resolved launch latency (0 = 1) —
	// the schedule coarse-graining factor applies here, since it
	// replays the whole launch sequence.
	LatencyScale float64
	// Entropy is the operand entropy of the kernel's data stream in
	// [0,1] (fraction of switching bits). Zero means "unspecified":
	// the platform's reference calibration data.
	Entropy float64
}

// Validate checks that the descriptor is physical: finite,
// non-negative, classed, and non-empty. Non-finite work would
// silently poison the cap-solver bisection, so NaN/±Inf are rejected
// explicitly.
func (k Kernel) Validate() error {
	if err := k.checkField("Flops", k.Flops); err != nil {
		return err
	}
	if err := k.checkField("Bytes", k.Bytes); err != nil {
		return err
	}
	if err := k.checkField("Launches", k.Launches); err != nil {
		return err
	}
	if err := k.checkField("LatencyScale", k.LatencyScale); err != nil {
		return err
	}
	if err := k.checkField("Entropy", k.Entropy); err != nil {
		return err
	}
	for i, a := range k.Axes {
		if nonfinite(a) || a < 0 {
			return fmt.Errorf("gpu: kernel %q Axes[%d] = %v", k.Name, i, a)
		}
	}
	switch {
	case k.Entropy > 1:
		return fmt.Errorf("gpu: kernel %q Entropy %v out of [0,1]", k.Name, k.Entropy)
	case k.Class == "":
		return fmt.Errorf("gpu: kernel %q has no class", k.Name)
	case k.Flops == 0 && k.Bytes == 0 && k.Launches == 0:
		return fmt.Errorf("gpu: kernel %q is empty", k.Name)
	}
	return nil
}

func (k Kernel) checkField(field string, v float64) error {
	if nonfinite(v) {
		return fmt.Errorf("gpu: kernel %q %s is not finite (%v)", k.Name, field, v)
	}
	if v < 0 {
		return fmt.Errorf("gpu: kernel %q %s is negative (%v)", k.Name, field, v)
	}
	return nil
}

// Execution is the outcome of running a kernel under the device's
// current power limit.
type Execution struct {
	Duration  float64 // seconds
	Power     float64 // sustained board power during the kernel, W
	MemPower  float64 // HBM-domain share of Power (stacks + controllers), W
	ClockFrac float64 // clock the cap solver settled on
	Capped    bool    // true if the cap forced a clock below max
}

// NVML power-domain decomposition. A board sensor (the module scope)
// reads the whole package: SM array + caches (the GPU scope), the HBM
// stacks and their controllers (the memory scope), and the on-board
// voltage-regulator conversion losses, which NVML attributes to the
// module but to neither sub-scope. The model splits the board power it
// already computes along those seams; the constants below are the two
// seam parameters.
const (
	// HBMIdleFrac is the fraction of the board's idle draw spent in the
	// memory domain (HBM refresh, standby, controller clocks). The
	// A100's ~52 W idle holds the stacks in self-refresh; teardown
	// measurements put that share near a quarter of the board floor.
	HBMIdleFrac = 0.25
	// ModuleVRFrac is the voltage-regulator conversion loss as a
	// fraction of board power: the module sensor reads it, the GPU and
	// memory scopes do not, which is why gpu + memory < module on real
	// boards.
	ModuleVRFrac = 0.06
)

// HBMIdlePower returns the memory domain's share of the device's idle
// draw (with the device's static-power variability).
func (g *GPU) HBMIdlePower() float64 {
	return HBMIdleFrac * g.Spec.IdleWatts * g.idleScale
}

// CoreDomainPower splits one board-power reading into the NVML GPU
// scope: module power minus VR losses minus the memory domain.
// Clamped at zero so a decomposition fed inconsistent values stays
// physical.
func CoreDomainPower(moduleW, memW float64) float64 {
	core := moduleW*(1-ModuleVRFrac) - memW
	if core < 0 {
		return 0
	}
	return core
}

// GPU is one device instance. Manufacturing variability (the paper
// reports up to 100 W idle spread across nodes and visible differences
// between identical DGEMM runs, §III-B.2) is captured by per-device
// scale factors drawn at construction.
type GPU struct {
	Spec       Spec
	Index      int // position within the node (0..3)
	model      *EfficiencyModel
	powerLimit float64
	clockLimit float64 // max clock fraction (DVFS, nvidia-smi -lgc)
	idleScale  float64 // multiplies idle + static power
	effScale   float64 // multiplies dynamic power
}

// defaultModel is the shared fallback table for devices constructed
// without one (tests, standalone tools). Treated as immutable.
var defaultModel = DefaultEfficiency()

// New creates a device resolving kernels through the given efficiency
// table (nil = the calibrated default), with variability drawn from r
// using the given spread parameters. Pass nil for r for a nominal
// (no-variability) device.
func New(spec Spec, model *EfficiencyModel, index int, r *rng.Stream, v Variability) *GPU {
	if model == nil {
		model = defaultModel
	}
	g := &GPU{Spec: spec, Index: index, model: model, powerLimit: spec.TDP, clockLimit: 1, idleScale: 1, effScale: 1}
	if r != nil {
		// Static and dynamic spreads, clamped to stay physical.
		g.idleScale = clamp(r.Normal(1, v.IdleSigma), 0.9, 1.1)
		g.effScale = clamp(r.Normal(1, v.EffSigma), 0.94, 1.06)
	}
	return g
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Model returns the efficiency table this device resolves kernels
// through.
func (g *GPU) Model() *EfficiencyModel { return g.model }

// Resolve maps a work descriptor to its execution profile under the
// device's efficiency table.
func (g *GPU) Resolve(k Kernel) (ExecProfile, error) { return g.model.Resolve(k) }

// PowerLimit returns the current power cap in watts.
func (g *GPU) PowerLimit() float64 { return g.powerLimit }

// SetPowerLimit sets the board power cap. Values outside
// [MinPowerLimit, TDP] are rejected, mirroring nvidia-smi -pl.
func (g *GPU) SetPowerLimit(w float64) error {
	if w < g.Spec.MinPowerLimit || w > g.Spec.TDP {
		return fmt.Errorf("gpu: power limit %.0f W outside [%.0f, %.0f]",
			w, g.Spec.MinPowerLimit, g.Spec.TDP)
	}
	g.powerLimit = w
	return nil
}

// ResetPowerLimit restores the default (TDP) limit.
func (g *GPU) ResetPowerLimit() { g.powerLimit = g.Spec.TDP }

// ClockLimit returns the current DVFS clock ceiling as a fraction of
// the maximum clock (1 = unlocked).
func (g *GPU) ClockLimit() float64 { return g.clockLimit }

// SetClockLimitMHz locks the maximum SM clock (nvidia-smi -lgc), the
// DVFS alternative to power capping discussed in §V. Values outside
// the device's clock range are rejected.
func (g *GPU) SetClockLimitMHz(mhz float64) error {
	frac := mhz / g.Spec.MaxClockMHz
	if frac < g.Spec.MinClockFrac-1e-9 || frac > 1+1e-9 {
		return fmt.Errorf("gpu: clock %.0f MHz outside [%.0f, %.0f]",
			mhz, g.Spec.MinClockFrac*g.Spec.MaxClockMHz, g.Spec.MaxClockMHz)
	}
	g.clockLimit = math.Min(frac, 1)
	return nil
}

// ResetClockLimit unlocks the SM clock.
func (g *GPU) ResetClockLimit() { g.clockLimit = 1 }

// IdlePower returns the device's idle draw (with variability).
func (g *GPU) IdlePower() float64 { return g.Spec.IdleWatts * g.idleScale }

// timeAt returns the kernel duration at clock fraction c under the
// resolved profile. Memory bandwidth is clock-independent: the power
// cap governs SM clocks only, as on real A100s.
func (g *GPU) timeAt(k Kernel, p ExecProfile, c float64) float64 {
	t := p.Latency
	var tc, tm float64
	if k.Flops > 0 {
		tc = k.Flops / (p.ComputeOcc * g.Spec.PeakFlops * c)
	}
	if k.Bytes > 0 {
		tm = k.Bytes / (p.MemOcc * g.Spec.PeakMemBW)
	}
	return t + math.Max(tc, tm)
}

// smActivity resolves the profile's SM busyness.
func smActivity(p ExecProfile) float64 {
	if p.SMActivity > 0 {
		return p.SMActivity
	}
	return p.ComputeOcc
}

// powerAt returns sustained board power while running k at clock c
// under the resolved profile.
func (g *GPU) powerAt(k Kernel, p ExecProfile, c float64) float64 {
	t := g.timeAt(k, p, c)
	if t <= 0 {
		return g.IdlePower()
	}
	byteRate := k.Bytes / t
	sp := g.Spec
	// Dynamic SM power ∝ V²f ≈ γ·c + (1−γ)·c³.
	clockFactor := sp.Gamma*c + (1-sp.Gamma)*c*c*c
	// During the fixed-latency portion (launch gaps, serial chains)
	// the SMs are quiet: duty-cycle the SM term.
	active := 1.0
	if p.Latency > 0 && t > 0 {
		active = (t - p.Latency) / t
		if active < 0 {
			active = 0
		}
	}
	// The operand-entropy factor scales dynamic power only: static
	// draw does not depend on what the wires carry.
	eff := g.effScale
	if p.PowerScale != 0 {
		eff *= p.PowerScale
	}
	pw := sp.IdleWatts*g.idleScale + sp.ActiveBase*g.idleScale +
		eff*(sp.CompPowerFull*smActivity(p)*active*clockFactor+
			sp.MemPowerFull*(byteRate/sp.PeakMemBW))
	return pw
}

// memPowerAt returns the memory-domain share of powerAt(k, p, c): the
// HBM idle share plus the dynamic bandwidth term. Both terms also
// appear inside powerAt, so memPowerAt(…) ≤ powerAt(…) at every clock
// (the rest of the board — SMs, base, the non-HBM idle share — is
// non-negative), which is what keeps the domain decomposition
// consistent with the board total.
func (g *GPU) memPowerAt(k Kernel, p ExecProfile, c float64) float64 {
	t := g.timeAt(k, p, c)
	if t <= 0 {
		return g.HBMIdlePower()
	}
	eff := g.effScale
	if p.PowerScale != 0 {
		eff *= p.PowerScale
	}
	byteRate := k.Bytes / t
	return g.HBMIdlePower() + eff*g.Spec.MemPowerFull*(byteRate/g.Spec.PeakMemBW)
}

// Run executes the kernel under the current power limit and returns
// the resulting duration and sustained power. The descriptor is first
// resolved through the device's efficiency table; the cap solver then
// bisects for the highest clock whose power fits the cap. If even the
// minimum clock exceeds the cap, the kernel runs at minimum clock and
// the returned power overshoots the cap (the 100 W floor behavior).
func (g *GPU) Run(k Kernel) Execution {
	if err := k.Validate(); err != nil {
		panic(err)
	}
	p, err := g.model.Resolve(k)
	if err != nil {
		panic(err)
	}
	return g.runResolved(k, p)
}

func (g *GPU) runResolved(k Kernel, p ExecProfile) Execution {
	cap := g.effectiveCap()
	cMin := g.Spec.MinClockFrac
	cMax := g.clockLimit // DVFS ceiling (1 when unlocked)
	if pw := g.powerAt(k, p, cMax); pw <= cap {
		return Execution{Duration: g.timeAt(k, p, cMax), Power: pw,
			MemPower: g.memPowerAt(k, p, cMax), ClockFrac: cMax, Capped: cMax < 1}
	}
	if pw := g.powerAt(k, p, cMin); pw > cap {
		// Cap unachievable: run at the floor, overshooting.
		return Execution{Duration: g.timeAt(k, p, cMin), Power: pw,
			MemPower: g.memPowerAt(k, p, cMin), ClockFrac: cMin, Capped: true}
	}
	lo, hi := cMin, cMax
	for i := 0; i < 48; i++ {
		mid := (lo + hi) / 2
		if g.powerAt(k, p, mid) <= cap {
			lo = mid
		} else {
			hi = mid
		}
	}
	return Execution{Duration: g.timeAt(k, p, lo), Power: g.powerAt(k, p, lo),
		MemPower: g.memPowerAt(k, p, lo), ClockFrac: lo, Capped: true}
}

// lowCapThreshold is the cap below which the board's power-management
// control loop can no longer hold the limit tightly. Real A100s
// enforce caps by reacting to measured power; near the 100 W floor the
// reaction time exceeds kernel burst timescales and sustained power
// overshoots the setting. The paper observes exactly this: "At this
// cap [100 W], a larger error is observed" (§V-A, Fig. 10). The
// threshold scales with the board's settable floor (1.5×100 W = 150 W
// on the A100), so boards with higher floors misbehave near *their*
// floor rather than near the A100's.
func (g *GPU) lowCapThreshold() float64 { return 1.5 * g.Spec.MinPowerLimit }

// effectiveCap returns the power level the control loop actually
// holds: the nominal limit plus overshoot slack below lowCapThreshold.
func (g *GPU) effectiveCap() float64 {
	cap := g.powerLimit
	if t := g.lowCapThreshold(); cap < t {
		cap += 0.25 * (t - cap)
	}
	return cap
}

// UncappedPower returns the power the kernel would draw at full clock,
// regardless of the current limit. Useful for calibration and tests.
func (g *GPU) UncappedPower(k Kernel) float64 {
	p, err := g.model.Resolve(k)
	if err != nil {
		panic(err)
	}
	return g.powerAt(k, p, 1)
}

// UncappedDuration returns the kernel duration at full clock.
func (g *GPU) UncappedDuration(k Kernel) float64 {
	p, err := g.model.Resolve(k)
	if err != nil {
		panic(err)
	}
	return g.timeAt(k, p, 1)
}
