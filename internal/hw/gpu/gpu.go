// Package gpu models an NVIDIA A100-class accelerator at the level the
// paper's experiments need: a roofline kernel-timing model, a
// clock-dependent power model, and a power-cap solver that reproduces
// how `nvidia-smi -pl` caps behave on real boards (clock throttling
// with a hard floor, hence overshoot at the 100 W minimum cap).
//
// # Model
//
// A kernel is {Flops, Bytes, ComputeOcc, MemOcc, SMActivity, Latency}.
// At SM clock fraction c ∈ [MinClockFrac, 1]:
//
//	F(c) = PeakFlops · c       — SM throughput scales with clock
//	B    = PeakMemBW           — HBM clock is not governed by the cap
//	t(c) = Latency + max(Flops/(ComputeOcc·F(c)), Bytes/(MemOcc·B))
//
// Power while the kernel runs separates SM power from memory power:
//
//	P(c) = Idle + ActiveBase
//	     + CompPowerFull · SMActivity · duty · (γ·c + (1−γ)·c³) · eff
//	     + MemPowerFull  · (byteRate/PeakMemBW) · eff
//
// where duty = (t − Latency)/t quiets the SMs during the fixed-latency
// portion of the kernel (launch gaps, serial chains).
//
// SMActivity is how busy the SMs are while the kernel runs (issue-slot
// occupancy) — a bandwidth-bound FFT with full thread occupancy keeps
// the SMs hot even though its flop rate is far from tensor peak, which
// is how VASP's hybrid-functional kernels sustain near-TDP power.
// When SMActivity is zero it defaults to ComputeOcc (a pure roofline
// kernel like DGEMM is exactly as hot as it is efficient).
//
// The γ·c + (1−γ)·c³ term models dynamic power ∝ V²f with V ∝ f near
// the top of the DVFS curve: cutting SM power in half costs only ~25%
// clock, and a memory-bound kernel loses no time at all until the
// clock drops below the point where compute becomes critical. These
// two effects are the physical reason behind the paper's headline
// result — a 50% TDP cap costs most VASP workloads <10% performance
// (Fig. 12) — and behind the 100 W floor overshoot (memory power does
// not throttle, Fig. 10).
//
// P is monotone in c, so the largest cap-respecting clock is found by
// bisection. When even the minimum clock exceeds the cap, the kernel
// runs at minimum clock and the cap is overshot.
package gpu

import (
	"fmt"
	"math"

	"vasppower/internal/rng"
)

// Spec holds the architectural and power parameters of a GPU model.
type Spec struct {
	Name          string
	TDP           float64 // board power limit default/max, W (A100 40GB: 400)
	MinPowerLimit float64 // lowest settable power limit, W (100)
	IdleWatts     float64 // board power when no kernel is resident
	ActiveBase    float64 // static adder while a kernel is resident, W

	PeakFlops float64 // FP64 tensor-core peak at max clock, flop/s
	PeakMemBW float64 // HBM bandwidth, B/s
	HBMBytes  float64 // HBM capacity, bytes (40 GB on the studied nodes)

	MaxClockMHz  float64
	MinClockFrac float64 // lowest clock as a fraction of max

	CompPowerFull float64 // SM power at full activity & clock, W
	MemPowerFull  float64 // HBM+controller power at full bandwidth, W
	Gamma         float64 // linear (non-cubed) fraction of SM dynamic power
}

// A100SXM40GB returns the spec used throughout the study: the 40 GB
// A100 in 1,536 of Perlmutter's GPU nodes ("This work uses only the
// 40 GB GPU-accelerated nodes", §II-A). Power constants are
// calibrated so a near-peak DGEMM draws ≈ TDP and the VASP kernel
// mixes land in the paper's published per-GPU power ranges.
func A100SXM40GB() Spec {
	return Spec{
		Name:          "A100-SXM4-40GB",
		TDP:           400,
		MinPowerLimit: 100,
		IdleWatts:     52,
		ActiveBase:    28,
		PeakFlops:     19.5e12, // FP64 via tensor cores
		PeakMemBW:     1.555e12,
		HBMBytes:      40 << 30,
		MaxClockMHz:   1410,
		MinClockFrac:  210.0 / 1410.0,
		CompPowerFull: 330,
		MemPowerFull:  95,
		Gamma:         0.15,
	}
}

// A100SXM80GB returns the 80 GB variant found in 256 of Perlmutter's
// GPU nodes (§II-A): same board power envelope, twice the HBM
// capacity, slightly higher bandwidth (HBM2e). The study excludes
// these nodes; the spec exists so memory-gated configurations can be
// explored.
func A100SXM80GB() Spec {
	s := A100SXM40GB()
	s.Name = "A100-SXM4-80GB"
	s.HBMBytes = 80 << 30
	s.PeakMemBW = 2.039e12
	s.MemPowerFull = 110
	return s
}

// Variability holds the per-device manufacturing-spread parameters.
// Platforms carry these alongside the architectural spec; the node
// layer threads them into New.
type Variability struct {
	// IdleSigma is the relative spread of static power (idle + base).
	IdleSigma float64
	// EffSigma is the relative spread of dynamic-power efficiency.
	EffSigma float64
}

// DefaultVariability returns the spread calibrated to the paper's
// observed device-to-device differences (§III-B.2).
func DefaultVariability() Variability {
	return Variability{IdleSigma: 0.03, EffSigma: 0.02}
}

// Kernel describes one GPU kernel launch (or a fused batch of
// identical launches) for the roofline model.
type Kernel struct {
	Name string
	// Flops is the total floating-point work, in flop.
	Flops float64
	// Bytes is the total DRAM traffic, in bytes.
	Bytes float64
	// ComputeOcc ∈ (0,1] is the fraction of peak flop throughput the
	// kernel can achieve at full clock (occupancy × pipe efficiency).
	ComputeOcc float64
	// MemOcc ∈ (0,1] is the fraction of peak bandwidth achievable.
	MemOcc float64
	// SMActivity ∈ [0,1] is the SM issue-slot busyness while the
	// kernel runs; it drives SM power independently of the flop rate.
	// Zero means "derive from ComputeOcc".
	SMActivity float64
	// Latency is fixed time not overlapped with the roofline terms:
	// launch overhead, serial dependency chains, host round-trips.
	// Latency-dominated kernels draw little power and barely respond
	// to clock changes — the mechanism behind small workloads'
	// insensitivity to even a 100 W cap (GaAsBi-64, PdO2 in Fig. 12).
	Latency float64
}

// Validate checks kernel parameters.
func (k Kernel) Validate() error {
	switch {
	case k.Flops < 0 || k.Bytes < 0 || k.Latency < 0:
		return fmt.Errorf("gpu: kernel %q has negative work", k.Name)
	case k.Flops > 0 && (k.ComputeOcc <= 0 || k.ComputeOcc > 1):
		return fmt.Errorf("gpu: kernel %q ComputeOcc %v out of (0,1]", k.Name, k.ComputeOcc)
	case k.SMActivity < 0 || k.SMActivity > 1:
		return fmt.Errorf("gpu: kernel %q SMActivity %v out of [0,1]", k.Name, k.SMActivity)
	case k.Bytes > 0 && (k.MemOcc <= 0 || k.MemOcc > 1):
		return fmt.Errorf("gpu: kernel %q MemOcc %v out of (0,1]", k.Name, k.MemOcc)
	case k.Flops == 0 && k.Bytes == 0 && k.Latency == 0:
		return fmt.Errorf("gpu: kernel %q is empty", k.Name)
	}
	return nil
}

// Execution is the outcome of running a kernel under the device's
// current power limit.
type Execution struct {
	Duration  float64 // seconds
	Power     float64 // sustained board power during the kernel, W
	ClockFrac float64 // clock the cap solver settled on
	Capped    bool    // true if the cap forced a clock below max
}

// GPU is one device instance. Manufacturing variability (the paper
// reports up to 100 W idle spread across nodes and visible differences
// between identical DGEMM runs, §III-B.2) is captured by per-device
// scale factors drawn at construction.
type GPU struct {
	Spec       Spec
	Index      int // position within the node (0..3)
	powerLimit float64
	clockLimit float64 // max clock fraction (DVFS, nvidia-smi -lgc)
	idleScale  float64 // multiplies idle + static power
	effScale   float64 // multiplies dynamic power
}

// New creates a device with variability drawn from r using the given
// spread parameters. Pass nil for r for a nominal (no-variability)
// device.
func New(spec Spec, index int, r *rng.Stream, v Variability) *GPU {
	g := &GPU{Spec: spec, Index: index, powerLimit: spec.TDP, clockLimit: 1, idleScale: 1, effScale: 1}
	if r != nil {
		// Static and dynamic spreads, clamped to stay physical.
		g.idleScale = clamp(r.Normal(1, v.IdleSigma), 0.9, 1.1)
		g.effScale = clamp(r.Normal(1, v.EffSigma), 0.94, 1.06)
	}
	return g
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// PowerLimit returns the current power cap in watts.
func (g *GPU) PowerLimit() float64 { return g.powerLimit }

// SetPowerLimit sets the board power cap. Values outside
// [MinPowerLimit, TDP] are rejected, mirroring nvidia-smi -pl.
func (g *GPU) SetPowerLimit(w float64) error {
	if w < g.Spec.MinPowerLimit || w > g.Spec.TDP {
		return fmt.Errorf("gpu: power limit %.0f W outside [%.0f, %.0f]",
			w, g.Spec.MinPowerLimit, g.Spec.TDP)
	}
	g.powerLimit = w
	return nil
}

// ResetPowerLimit restores the default (TDP) limit.
func (g *GPU) ResetPowerLimit() { g.powerLimit = g.Spec.TDP }

// ClockLimit returns the current DVFS clock ceiling as a fraction of
// the maximum clock (1 = unlocked).
func (g *GPU) ClockLimit() float64 { return g.clockLimit }

// SetClockLimitMHz locks the maximum SM clock (nvidia-smi -lgc), the
// DVFS alternative to power capping discussed in §V. Values outside
// the device's clock range are rejected.
func (g *GPU) SetClockLimitMHz(mhz float64) error {
	frac := mhz / g.Spec.MaxClockMHz
	if frac < g.Spec.MinClockFrac-1e-9 || frac > 1+1e-9 {
		return fmt.Errorf("gpu: clock %.0f MHz outside [%.0f, %.0f]",
			mhz, g.Spec.MinClockFrac*g.Spec.MaxClockMHz, g.Spec.MaxClockMHz)
	}
	g.clockLimit = math.Min(frac, 1)
	return nil
}

// ResetClockLimit unlocks the SM clock.
func (g *GPU) ResetClockLimit() { g.clockLimit = 1 }

// IdlePower returns the device's idle draw (with variability).
func (g *GPU) IdlePower() float64 { return g.Spec.IdleWatts * g.idleScale }

// timeAt returns the kernel duration at clock fraction c. Memory
// bandwidth is clock-independent: the power cap governs SM clocks
// only, as on real A100s.
func (g *GPU) timeAt(k Kernel, c float64) float64 {
	t := k.Latency
	var tc, tm float64
	if k.Flops > 0 {
		tc = k.Flops / (k.ComputeOcc * g.Spec.PeakFlops * c)
	}
	if k.Bytes > 0 {
		tm = k.Bytes / (k.MemOcc * g.Spec.PeakMemBW)
	}
	return t + math.Max(tc, tm)
}

// smActivity resolves the kernel's SM busyness.
func smActivity(k Kernel) float64 {
	if k.SMActivity > 0 {
		return k.SMActivity
	}
	return k.ComputeOcc
}

// powerAt returns sustained board power while running k at clock c.
func (g *GPU) powerAt(k Kernel, c float64) float64 {
	t := g.timeAt(k, c)
	if t <= 0 {
		return g.IdlePower()
	}
	byteRate := k.Bytes / t
	sp := g.Spec
	// Dynamic SM power ∝ V²f ≈ γ·c + (1−γ)·c³.
	clockFactor := sp.Gamma*c + (1-sp.Gamma)*c*c*c
	// During the fixed-latency portion (launch gaps, serial chains)
	// the SMs are quiet: duty-cycle the SM term.
	active := 1.0
	if k.Latency > 0 && t > 0 {
		active = (t - k.Latency) / t
		if active < 0 {
			active = 0
		}
	}
	p := sp.IdleWatts*g.idleScale + sp.ActiveBase*g.idleScale +
		g.effScale*(sp.CompPowerFull*smActivity(k)*active*clockFactor+
			sp.MemPowerFull*(byteRate/sp.PeakMemBW))
	return p
}

// Run executes the kernel under the current power limit and returns
// the resulting duration and sustained power. The cap solver bisects
// for the highest clock whose power fits the cap; if even the minimum
// clock exceeds the cap, the kernel runs at minimum clock and the
// returned power overshoots the cap (the 100 W floor behavior).
func (g *GPU) Run(k Kernel) Execution {
	if err := k.Validate(); err != nil {
		panic(err)
	}
	cap := g.effectiveCap()
	cMin := g.Spec.MinClockFrac
	cMax := g.clockLimit // DVFS ceiling (1 when unlocked)
	if p := g.powerAt(k, cMax); p <= cap {
		return Execution{Duration: g.timeAt(k, cMax), Power: p, ClockFrac: cMax, Capped: cMax < 1}
	}
	if p := g.powerAt(k, cMin); p > cap {
		// Cap unachievable: run at the floor, overshooting.
		return Execution{Duration: g.timeAt(k, cMin), Power: p, ClockFrac: cMin, Capped: true}
	}
	lo, hi := cMin, cMax
	for i := 0; i < 48; i++ {
		mid := (lo + hi) / 2
		if g.powerAt(k, mid) <= cap {
			lo = mid
		} else {
			hi = mid
		}
	}
	return Execution{Duration: g.timeAt(k, lo), Power: g.powerAt(k, lo), ClockFrac: lo, Capped: true}
}

// lowCapThreshold is the cap below which the board's power-management
// control loop can no longer hold the limit tightly. Real A100s
// enforce caps by reacting to measured power; near the 100 W floor the
// reaction time exceeds kernel burst timescales and sustained power
// overshoots the setting. The paper observes exactly this: "At this
// cap [100 W], a larger error is observed" (§V-A, Fig. 10). The
// threshold scales with the board's settable floor (1.5×100 W = 150 W
// on the A100), so boards with higher floors misbehave near *their*
// floor rather than near the A100's.
func (g *GPU) lowCapThreshold() float64 { return 1.5 * g.Spec.MinPowerLimit }

// effectiveCap returns the power level the control loop actually
// holds: the nominal limit plus overshoot slack below lowCapThreshold.
func (g *GPU) effectiveCap() float64 {
	cap := g.powerLimit
	if t := g.lowCapThreshold(); cap < t {
		cap += 0.25 * (t - cap)
	}
	return cap
}

// UncappedPower returns the power the kernel would draw at full clock,
// regardless of the current limit. Useful for calibration and tests.
func (g *GPU) UncappedPower(k Kernel) float64 { return g.powerAt(k, 1) }

// UncappedDuration returns the kernel duration at full clock.
func (g *GPU) UncappedDuration(k Kernel) float64 { return g.timeAt(k, 1) }
