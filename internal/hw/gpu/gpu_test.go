package gpu

import (
	"math"
	"testing"

	"vasppower/internal/rng"
)

// dgemmKernel is a near-peak compute-bound kernel (large matrix
// multiply), the classic burn-in test the paper runs before VASP.
func dgemmKernel() Kernel {
	n := 8192.0
	return Kernel{
		Name:       "dgemm",
		Flops:      2 * n * n * n,
		Bytes:      3 * n * n * 8,
		ComputeOcc: 0.95,
		MemOcc:     0.85,
	}
}

// streamKernel is a pure bandwidth-bound kernel (triad).
func streamKernel() Kernel {
	n := 4e8 // elements
	return Kernel{
		Name:  "stream",
		Flops: 2 * n,
		Bytes: 3 * n * 8,
		// At 24 bytes and 2 flops per element the arithmetic intensity
		// is 1/12 flop/byte — deeply memory-bound; SMs spend most
		// issue slots waiting on HBM.
		ComputeOcc: 0.9,
		MemOcc:     0.92,
		SMActivity: 0.30,
	}
}

func nominal() *GPU { return New(A100SXM40GB(), 0, nil, DefaultVariability()) }

func TestDGEMMNearTDP(t *testing.T) {
	g := nominal()
	ex := g.Run(dgemmKernel())
	if ex.Power < 380 || ex.Power > 400.0001 {
		t.Fatalf("DGEMM power = %.1f W, want ≈ TDP (380-400)", ex.Power)
	}
}

func TestStreamModeratePower(t *testing.T) {
	g := nominal()
	ex := g.Run(streamKernel())
	if ex.Power < 150 || ex.Power > 300 {
		t.Fatalf("STREAM power = %.1f W, want moderate (150-300)", ex.Power)
	}
	if ex.Capped {
		t.Fatal("STREAM should not hit the default cap")
	}
}

func TestIdlePowerNominal(t *testing.T) {
	g := nominal()
	if got := g.IdlePower(); math.Abs(got-52) > 1e-9 {
		t.Fatalf("idle power = %v, want 52", got)
	}
}

func TestSetPowerLimitValidation(t *testing.T) {
	g := nominal()
	if err := g.SetPowerLimit(250); err != nil {
		t.Fatal(err)
	}
	if g.PowerLimit() != 250 {
		t.Fatal("limit not applied")
	}
	if err := g.SetPowerLimit(99); err == nil {
		t.Fatal("limit below floor accepted")
	}
	if err := g.SetPowerLimit(401); err == nil {
		t.Fatal("limit above TDP accepted")
	}
	g.ResetPowerLimit()
	if g.PowerLimit() != 400 {
		t.Fatal("reset failed")
	}
}

func TestCapReducesPowerAndSlowsComputeBound(t *testing.T) {
	g := nominal()
	k := dgemmKernel()
	base := g.Run(k)
	for _, cap := range []float64{300, 200, 100} {
		if err := g.SetPowerLimit(cap); err != nil {
			t.Fatal(err)
		}
		ex := g.Run(k)
		if cap > 110 && ex.Power > cap+1e-6 {
			t.Fatalf("cap %v: power %v exceeds cap", cap, ex.Power)
		}
		if ex.Duration <= base.Duration {
			t.Fatalf("cap %v: compute-bound kernel did not slow (%.4f vs %.4f)",
				cap, ex.Duration, base.Duration)
		}
	}
}

func TestCapNonLinearity(t *testing.T) {
	// Halving power must cost much less than half the performance —
	// the paper's central observation. For a pure DGEMM, a 200 W cap
	// (50% of 400) should cost well under 50% performance.
	g := nominal()
	k := dgemmKernel()
	base := g.Run(k)
	_ = g.SetPowerLimit(200)
	capped := g.Run(k)
	slowdown := capped.Duration/base.Duration - 1
	if slowdown <= 0.05 || slowdown >= 0.5 {
		t.Fatalf("DGEMM at 200 W: slowdown %.1f%%, want in (5%%, 50%%)", slowdown*100)
	}
}

func TestMemoryBoundInsensitiveToModerateCap(t *testing.T) {
	g := nominal()
	k := streamKernel()
	base := g.Run(k)
	_ = g.SetPowerLimit(250)
	capped := g.Run(k)
	if capped.Duration > base.Duration*1.02 {
		t.Fatalf("memory-bound kernel slowed %.2f%% under a 250 W cap",
			(capped.Duration/base.Duration-1)*100)
	}
}

func TestHundredWattFloorOvershoot(t *testing.T) {
	// At the 100 W minimum cap, a heavy kernel cannot fit even at
	// minimum clock: power overshoots the cap (Fig. 10's 100 W bars).
	g := nominal()
	_ = g.SetPowerLimit(100)
	ex := g.Run(dgemmKernel())
	if ex.Power <= 100 || ex.Power > 120 {
		t.Fatalf("expected mild overshoot above 100 W, got %.1f", ex.Power)
	}
	if !ex.Capped {
		t.Fatal("expected the kernel to be throttled")
	}
	// A 300 W cap, by contrast, is held exactly.
	_ = g.SetPowerLimit(300)
	ex300 := g.Run(dgemmKernel())
	if ex300.Power > 300+1e-6 {
		t.Fatalf("300 W cap overshot: %.2f", ex300.Power)
	}
}

func TestLatencyBoundKernelCapInsensitive(t *testing.T) {
	// A tiny kernel dominated by launch latency: low power and almost
	// no response to a deep cap (the GaAsBi-64 mechanism).
	g := nominal()
	k := Kernel{
		Name:       "tiny-fft",
		Flops:      5e7,
		Bytes:      4e6,
		ComputeOcc: 0.2,
		MemOcc:     0.3,
		Latency:    100e-6,
	}
	base := g.Run(k)
	if base.Power > 150 {
		t.Fatalf("latency-bound kernel draws %.1f W, want low", base.Power)
	}
	_ = g.SetPowerLimit(100)
	capped := g.Run(k)
	if capped.Duration > base.Duration*1.05 {
		t.Fatalf("latency-bound kernel slowed %.2f%% at 100 W",
			(capped.Duration/base.Duration-1)*100)
	}
}

func TestPowerMonotoneInClock(t *testing.T) {
	g := nominal()
	for _, k := range []Kernel{dgemmKernel(), streamKernel()} {
		prev := -1.0
		for c := g.Spec.MinClockFrac; c <= 1.0; c += 0.01 {
			p := g.powerAt(k, c)
			if p < prev-1e-9 {
				t.Fatalf("power not monotone in clock for %s at c=%v", k.Name, c)
			}
			prev = p
		}
	}
}

func TestDurationMonotoneInClock(t *testing.T) {
	g := nominal()
	for _, k := range []Kernel{dgemmKernel(), streamKernel()} {
		prev := math.Inf(1)
		for c := g.Spec.MinClockFrac; c <= 1.0; c += 0.01 {
			d := g.timeAt(k, c)
			if d > prev+1e-12 {
				t.Fatalf("duration not non-increasing in clock for %s", k.Name)
			}
			prev = d
		}
	}
}

// Property: for random kernels and caps, Run never exceeds the cap
// unless it settled at minimum clock, and duration never beats the
// uncapped duration.
func TestRunCapInvariantProperty(t *testing.T) {
	root := rng.New(2024)
	for trial := 0; trial < 500; trial++ {
		r := rng.New(root.Uint64())
		g := New(A100SXM40GB(), 0, r.Split("gpu"), DefaultVariability())
		k := Kernel{
			Name:       "rand",
			Flops:      r.Float64() * 1e13,
			Bytes:      r.Float64() * 1e11,
			ComputeOcc: 0.05 + 0.95*r.Float64(),
			MemOcc:     0.05 + 0.95*r.Float64(),
			Latency:    r.Float64() * 1e-3,
		}
		if k.Flops == 0 && k.Bytes == 0 && k.Latency == 0 {
			continue
		}
		base := g.Run(k)
		cap := 100 + r.Float64()*300
		if err := g.SetPowerLimit(cap); err != nil {
			t.Fatal(err)
		}
		ex := g.Run(k)
		if ex.Duration < base.Duration-1e-12 {
			t.Fatalf("trial %d: capped run faster than uncapped", trial)
		}
		effCap := cap
		if cap < 150 {
			effCap += 0.25 * (150 - cap) // control-loop slack at low caps
		}
		if ex.Power > effCap+1e-6 && ex.ClockFrac > g.Spec.MinClockFrac+1e-9 {
			t.Fatalf("trial %d: cap %v exceeded (%.2f W) above min clock", trial, cap, ex.Power)
		}
		if ex.ClockFrac < g.Spec.MinClockFrac-1e-12 || ex.ClockFrac > 1 {
			t.Fatalf("trial %d: clock %v out of range", trial, ex.ClockFrac)
		}
	}
}

func TestVariabilityBounds(t *testing.T) {
	root := rng.New(5)
	for i := 0; i < 200; i++ {
		g := New(A100SXM40GB(), i%4, root.Split("g"+string(rune('a'+i%26))+"x"), DefaultVariability())
		idle := g.IdlePower()
		if idle < 52*0.9-1e-9 || idle > 52*1.1+1e-9 {
			t.Fatalf("idle power %v outside variability clamp", idle)
		}
	}
}

func TestVariabilityIsDeterministic(t *testing.T) {
	a := New(A100SXM40GB(), 0, rng.New(9).Split("gpu0"), DefaultVariability())
	b := New(A100SXM40GB(), 0, rng.New(9).Split("gpu0"), DefaultVariability())
	if a.IdlePower() != b.IdlePower() {
		t.Fatal("same seed produced different devices")
	}
}

func TestKernelValidate(t *testing.T) {
	bad := []Kernel{
		{Name: "neg", Flops: -1},
		{Name: "occ", Flops: 1, ComputeOcc: 0},
		{Name: "occ2", Flops: 1, ComputeOcc: 1.5},
		{Name: "mem", Bytes: 1, MemOcc: -0.5},
		{Name: "empty"},
	}
	for _, k := range bad {
		if err := k.Validate(); err == nil {
			t.Fatalf("kernel %q should be invalid", k.Name)
		}
	}
	good := Kernel{Name: "ok", Flops: 1, ComputeOcc: 0.5}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRunPanicsOnInvalidKernel(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid kernel did not panic")
		}
	}()
	nominal().Run(Kernel{Name: "bad", Flops: 1, ComputeOcc: 2})
}

func TestMemoryBoundOvershootsDeepCap(t *testing.T) {
	// HBM power does not throttle with SM clocks: a bandwidth-bound
	// kernel under a 100 W cap keeps (almost) its full speed but
	// overshoots the cap — the "larger error" the paper reports at
	// the 100 W setting (§V-A).
	g := nominal()
	k := streamKernel()
	base := g.Run(k)
	_ = g.SetPowerLimit(100)
	capped := g.Run(k)
	if capped.Duration > base.Duration*1.05 {
		t.Fatalf("memory-bound kernel slowed %.1f%% at 100 W; HBM clock is cap-independent",
			(capped.Duration/base.Duration-1)*100)
	}
	if capped.Power < 130 {
		t.Fatalf("expected overshoot above 130 W, got %.1f", capped.Power)
	}
}

func BenchmarkRunCapped(b *testing.B) {
	g := nominal()
	_ = g.SetPowerLimit(200)
	k := dgemmKernel()
	for i := 0; i < b.N; i++ {
		g.Run(k)
	}
}

func TestClockLimitValidation(t *testing.T) {
	g := nominal()
	if err := g.SetClockLimitMHz(1000); err != nil {
		t.Fatal(err)
	}
	if got := g.ClockLimit(); math.Abs(got-1000.0/1410.0) > 1e-9 {
		t.Fatalf("clock limit = %v", got)
	}
	if err := g.SetClockLimitMHz(100); err == nil {
		t.Fatal("below-minimum clock accepted")
	}
	if err := g.SetClockLimitMHz(2000); err == nil {
		t.Fatal("above-maximum clock accepted")
	}
	g.ResetClockLimit()
	if g.ClockLimit() != 1 {
		t.Fatal("reset failed")
	}
}

func TestDVFSSlowsComputeBoundOnly(t *testing.T) {
	g := nominal()
	dg := g.Run(dgemmKernel())
	st := g.Run(streamKernel())
	if err := g.SetClockLimitMHz(1000); err != nil {
		t.Fatal(err)
	}
	dgLocked := g.Run(dgemmKernel())
	stLocked := g.Run(streamKernel())
	// Compute-bound work slows ∝ 1/clock.
	wantSlow := 1410.0 / 1000.0
	ratio := dgLocked.Duration / dg.Duration
	if math.Abs(ratio-wantSlow) > 0.02 {
		t.Fatalf("DGEMM slowdown %v, want ≈ %v", ratio, wantSlow)
	}
	// Memory-bound work barely moves (HBM clock untouched).
	if stLocked.Duration > st.Duration*1.02 {
		t.Fatalf("STREAM slowed %v under DVFS", stLocked.Duration/st.Duration)
	}
	// And power drops below the uncapped draw.
	if dgLocked.Power >= dg.Power {
		t.Fatal("DVFS did not reduce DGEMM power")
	}
}

func TestDVFSComposesWithPowerCap(t *testing.T) {
	// A power cap below what the locked clock draws still throttles
	// further; the solver works inside the DVFS ceiling.
	g := nominal()
	if err := g.SetClockLimitMHz(1200); err != nil {
		t.Fatal(err)
	}
	if err := g.SetPowerLimit(150); err != nil {
		t.Fatal(err)
	}
	ex := g.Run(dgemmKernel())
	if ex.Power > 151 {
		t.Fatalf("cap not honored under DVFS: %.1f W", ex.Power)
	}
	if ex.ClockFrac > g.ClockLimit()+1e-9 {
		t.Fatal("solver exceeded the DVFS ceiling")
	}
}

func TestDVFSPowerVariesAcrossKernels(t *testing.T) {
	// The §V point (Imes & Zhang [31]): a locked clock fixes
	// frequency, not power — different kernels still draw very
	// different power, so DVFS controls power only loosely, while a
	// power cap bounds it exactly.
	g := nominal()
	_ = g.SetClockLimitMHz(1200)
	dg := g.Run(dgemmKernel())
	st := g.Run(streamKernel())
	if math.Abs(dg.Power-st.Power) < 30 {
		t.Fatalf("expected divergent power under DVFS: %v vs %v", dg.Power, st.Power)
	}
}

func TestA10080GBVariant(t *testing.T) {
	s40, s80 := A100SXM40GB(), A100SXM80GB()
	if s80.HBMBytes != 2*s40.HBMBytes {
		t.Fatal("80 GB variant capacity wrong")
	}
	if s80.PeakMemBW <= s40.PeakMemBW {
		t.Fatal("HBM2e bandwidth should exceed the 40 GB part")
	}
	if s80.TDP != s40.TDP {
		t.Fatal("board power envelope should match")
	}
	// A bandwidth-bound kernel finishes faster on the 80 GB part.
	g40 := New(s40, 0, nil, DefaultVariability())
	g80 := New(s80, 0, nil, DefaultVariability())
	k := streamKernel()
	if g80.Run(k).Duration >= g40.Run(k).Duration {
		t.Fatal("HBM2e should speed up STREAM")
	}
}
