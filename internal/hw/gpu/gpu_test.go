package gpu

import (
	"math"
	"testing"

	"vasppower/internal/rng"
)

// dgemmKernel is a near-peak compute-bound work descriptor (large
// matrix multiply), the classic burn-in test the paper runs before
// VASP. The default table resolves dgemm-peak at 0.95/0.85.
func dgemmKernel() Kernel {
	n := 8192.0
	return Kernel{
		Name:  "dgemm",
		Class: ClassDGEMMPeak,
		Flops: 2 * n * n * n,
		Bytes: 3 * n * n * 8,
	}
}

// streamKernel is a pure bandwidth-bound descriptor (triad). At 24
// bytes and 2 flops per element the arithmetic intensity is 1/12
// flop/byte — deeply memory-bound; the table's stream-triad response
// keeps the SMs at 0.30 activity (mostly waiting on HBM).
func streamKernel() Kernel {
	n := 4e8 // elements
	return Kernel{
		Name:  "stream",
		Class: ClassStreamTriad,
		Flops: 2 * n,
		Bytes: 3 * n * 8,
	}
}

func nominal() *GPU { return New(A100SXM40GB(), nil, 0, nil, DefaultVariability()) }

// resolve is a test helper: profile or t.Fatal.
func resolve(t *testing.T, g *GPU, k Kernel) ExecProfile {
	t.Helper()
	p, err := g.Resolve(k)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// allClasses lists every class of the default table, for property
// tests that draw random descriptors.
var allClasses = []KernelClass{
	ClassFFT, ClassExchangeFFT, ClassGEMM, ClassEig, ClassNonlocal,
	ClassVdW, ClassDGEMMPeak, ClassStreamTriad, ClassStencil, ClassSU3Force,
}

// randomKernel draws a random but valid work descriptor.
func randomKernel(r *rng.Stream) Kernel {
	return Kernel{
		Name:     "rand",
		Class:    allClasses[int(r.Uint64()%uint64(len(allClasses)))],
		Flops:    r.Float64() * 1e13,
		Bytes:    r.Float64() * 1e11,
		Axes:     [3]float64{r.Float64() * 1e7, r.Float64() * 500, r.Float64() * 100},
		Launches: math.Floor(r.Float64() * 1000),
		Entropy:  r.Float64(),
	}
}

func TestDGEMMNearTDP(t *testing.T) {
	g := nominal()
	ex := g.Run(dgemmKernel())
	if ex.Power < 380 || ex.Power > 400.0001 {
		t.Fatalf("DGEMM power = %.1f W, want ≈ TDP (380-400)", ex.Power)
	}
}

func TestStreamModeratePower(t *testing.T) {
	g := nominal()
	ex := g.Run(streamKernel())
	if ex.Power < 150 || ex.Power > 300 {
		t.Fatalf("STREAM power = %.1f W, want moderate (150-300)", ex.Power)
	}
	if ex.Capped {
		t.Fatal("STREAM should not hit the default cap")
	}
}

func TestIdlePowerNominal(t *testing.T) {
	g := nominal()
	if got := g.IdlePower(); math.Abs(got-52) > 1e-9 {
		t.Fatalf("idle power = %v, want 52", got)
	}
}

func TestSetPowerLimitValidation(t *testing.T) {
	g := nominal()
	if err := g.SetPowerLimit(250); err != nil {
		t.Fatal(err)
	}
	if g.PowerLimit() != 250 {
		t.Fatal("limit not applied")
	}
	if err := g.SetPowerLimit(99); err == nil {
		t.Fatal("limit below floor accepted")
	}
	if err := g.SetPowerLimit(401); err == nil {
		t.Fatal("limit above TDP accepted")
	}
	g.ResetPowerLimit()
	if g.PowerLimit() != 400 {
		t.Fatal("reset failed")
	}
}

func TestCapReducesPowerAndSlowsComputeBound(t *testing.T) {
	g := nominal()
	k := dgemmKernel()
	base := g.Run(k)
	for _, cap := range []float64{300, 200, 100} {
		if err := g.SetPowerLimit(cap); err != nil {
			t.Fatal(err)
		}
		ex := g.Run(k)
		if cap > 110 && ex.Power > cap+1e-6 {
			t.Fatalf("cap %v: power %v exceeds cap", cap, ex.Power)
		}
		if ex.Duration <= base.Duration {
			t.Fatalf("cap %v: compute-bound kernel did not slow (%.4f vs %.4f)",
				cap, ex.Duration, base.Duration)
		}
	}
}

func TestCapNonLinearity(t *testing.T) {
	// Halving power must cost much less than half the performance —
	// the paper's central observation. For a pure DGEMM, a 200 W cap
	// (50% of 400) should cost well under 50% performance.
	g := nominal()
	k := dgemmKernel()
	base := g.Run(k)
	_ = g.SetPowerLimit(200)
	capped := g.Run(k)
	slowdown := capped.Duration/base.Duration - 1
	if slowdown <= 0.05 || slowdown >= 0.5 {
		t.Fatalf("DGEMM at 200 W: slowdown %.1f%%, want in (5%%, 50%%)", slowdown*100)
	}
}

func TestMemoryBoundInsensitiveToModerateCap(t *testing.T) {
	g := nominal()
	k := streamKernel()
	base := g.Run(k)
	_ = g.SetPowerLimit(250)
	capped := g.Run(k)
	if capped.Duration > base.Duration*1.02 {
		t.Fatalf("memory-bound kernel slowed %.2f%% under a 250 W cap",
			(capped.Duration/base.Duration-1)*100)
	}
}

func TestHundredWattFloorOvershoot(t *testing.T) {
	// At the 100 W minimum cap, a heavy kernel cannot fit even at
	// minimum clock: power overshoots the cap (Fig. 10's 100 W bars).
	g := nominal()
	_ = g.SetPowerLimit(100)
	ex := g.Run(dgemmKernel())
	if ex.Power <= 100 || ex.Power > 120 {
		t.Fatalf("expected mild overshoot above 100 W, got %.1f", ex.Power)
	}
	if !ex.Capped {
		t.Fatal("expected the kernel to be throttled")
	}
	// A 300 W cap, by contrast, is held exactly.
	_ = g.SetPowerLimit(300)
	ex300 := g.Run(dgemmKernel())
	if ex300.Power > 300+1e-6 {
		t.Fatalf("300 W cap overshot: %.2f", ex300.Power)
	}
}

func TestLatencyBoundKernelCapInsensitive(t *testing.T) {
	// A tiny kernel dominated by launch latency: low power and almost
	// no response to a deep cap (the GaAsBi-64 mechanism). The launch
	// count puts ~100 µs of fixed latency against ~50 ns of work.
	g := nominal()
	k := Kernel{
		Name:     "tiny-vdw",
		Class:    ClassVdW,
		Flops:    5e7,
		Bytes:    4e6,
		Axes:     [3]float64{5e7},
		Launches: 100.0 / 6.0,
	}
	base := g.Run(k)
	if base.Power > 150 {
		t.Fatalf("latency-bound kernel draws %.1f W, want low", base.Power)
	}
	_ = g.SetPowerLimit(100)
	capped := g.Run(k)
	if capped.Duration > base.Duration*1.05 {
		t.Fatalf("latency-bound kernel slowed %.2f%% at 100 W",
			(capped.Duration/base.Duration-1)*100)
	}
}

// Property: resolved-kernel power is monotone non-decreasing in clock
// fraction, for the classic kernels and for random descriptors across
// every class of the default table.
func TestPowerMonotoneInClock(t *testing.T) {
	g := nominal()
	kernels := []Kernel{dgemmKernel(), streamKernel()}
	r := rng.New(71)
	for i := 0; i < 60; i++ {
		kernels = append(kernels, randomKernel(r))
	}
	for _, k := range kernels {
		if k.Flops == 0 && k.Bytes == 0 && k.Launches == 0 {
			continue
		}
		p := resolve(t, g, k)
		prev := -1.0
		for c := g.Spec.MinClockFrac; c <= 1.0; c += 0.01 {
			pw := g.powerAt(k, p, c)
			if pw < prev-1e-9 {
				t.Fatalf("power not monotone in clock for %s (%s) at c=%v", k.Name, k.Class, c)
			}
			prev = pw
		}
	}
}

// Property: duration is non-increasing in clock fraction.
func TestDurationMonotoneInClock(t *testing.T) {
	g := nominal()
	kernels := []Kernel{dgemmKernel(), streamKernel()}
	r := rng.New(72)
	for i := 0; i < 60; i++ {
		kernels = append(kernels, randomKernel(r))
	}
	for _, k := range kernels {
		if k.Flops == 0 && k.Bytes == 0 && k.Launches == 0 {
			continue
		}
		p := resolve(t, g, k)
		prev := math.Inf(1)
		for c := g.Spec.MinClockFrac; c <= 1.0; c += 0.01 {
			d := g.timeAt(k, p, c)
			if d > prev+1e-12 {
				t.Fatalf("duration not non-increasing in clock for %s (%s)", k.Name, k.Class)
			}
			prev = d
		}
	}
}

// Property: for random descriptors and caps, Run never exceeds the
// effective cap unless it settled at minimum clock — and above
// lowCapThreshold the effective cap IS the nominal cap, so any cap
// ≥ 150 W that Run satisfies away from the clock floor is satisfied
// exactly. Duration never beats the uncapped duration.
func TestRunCapInvariantProperty(t *testing.T) {
	root := rng.New(2024)
	for trial := 0; trial < 500; trial++ {
		r := rng.New(root.Uint64())
		g := New(A100SXM40GB(), nil, 0, r.Split("gpu"), DefaultVariability())
		k := randomKernel(r.Split("kernel"))
		if k.Flops == 0 && k.Bytes == 0 && k.Launches == 0 {
			continue
		}
		base := g.Run(k)
		cap := 100 + r.Float64()*300
		if err := g.SetPowerLimit(cap); err != nil {
			t.Fatal(err)
		}
		ex := g.Run(k)
		if ex.Duration < base.Duration-1e-12 {
			t.Fatalf("trial %d: capped run faster than uncapped", trial)
		}
		effCap := cap
		if thr := g.lowCapThreshold(); cap < thr {
			effCap += 0.25 * (thr - cap) // control-loop slack at low caps
		} else if effCap != cap {
			t.Fatalf("trial %d: effective cap %v differs from nominal %v above lowCapThreshold", trial, effCap, cap)
		}
		if ex.Power > effCap+1e-6 && ex.ClockFrac > g.Spec.MinClockFrac+1e-9 {
			t.Fatalf("trial %d: cap %v exceeded (%.2f W) above min clock", trial, cap, ex.Power)
		}
		if ex.ClockFrac < g.Spec.MinClockFrac-1e-12 || ex.ClockFrac > 1 {
			t.Fatalf("trial %d: clock %v out of range", trial, ex.ClockFrac)
		}
	}
}

func TestVariabilityBounds(t *testing.T) {
	root := rng.New(5)
	for i := 0; i < 200; i++ {
		g := New(A100SXM40GB(), nil, i%4, root.Split("g"+string(rune('a'+i%26))+"x"), DefaultVariability())
		idle := g.IdlePower()
		if idle < 52*0.9-1e-9 || idle > 52*1.1+1e-9 {
			t.Fatalf("idle power %v outside variability clamp", idle)
		}
	}
}

func TestVariabilityIsDeterministic(t *testing.T) {
	a := New(A100SXM40GB(), nil, 0, rng.New(9).Split("gpu0"), DefaultVariability())
	b := New(A100SXM40GB(), nil, 0, rng.New(9).Split("gpu0"), DefaultVariability())
	if a.IdlePower() != b.IdlePower() {
		t.Fatal("same seed produced different devices")
	}
}

func TestKernelValidate(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	bad := []Kernel{
		{Name: "neg", Class: ClassGEMM, Flops: -1},
		{Name: "nan-flops", Class: ClassGEMM, Flops: nan},
		{Name: "inf-flops", Class: ClassGEMM, Flops: inf},
		{Name: "nan-bytes", Class: ClassGEMM, Flops: 1, Bytes: nan},
		{Name: "neg-inf-bytes", Class: ClassGEMM, Flops: 1, Bytes: math.Inf(-1)},
		{Name: "nan-launches", Class: ClassGEMM, Flops: 1, Launches: nan},
		{Name: "nan-axis", Class: ClassGEMM, Flops: 1, Axes: [3]float64{1, nan, 1}},
		{Name: "inf-axis", Class: ClassGEMM, Flops: 1, Axes: [3]float64{inf}},
		{Name: "neg-axis", Class: ClassGEMM, Flops: 1, Axes: [3]float64{-1}},
		{Name: "nan-scale", Class: ClassGEMM, Flops: 1, LatencyScale: nan},
		{Name: "nan-entropy", Class: ClassGEMM, Flops: 1, Entropy: nan},
		{Name: "big-entropy", Class: ClassGEMM, Flops: 1, Entropy: 1.5},
		{Name: "neg-entropy", Class: ClassGEMM, Flops: 1, Entropy: -0.1},
		{Name: "classless", Flops: 1},
		{Name: "empty", Class: ClassGEMM},
	}
	for _, k := range bad {
		if err := k.Validate(); err == nil {
			t.Fatalf("kernel %q should be invalid", k.Name)
		}
	}
	good := Kernel{Name: "ok", Class: ClassGEMM, Flops: 1, Axes: [3]float64{1, 1, 1}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRunPanicsOnInvalidKernel(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid kernel did not panic")
		}
	}()
	nominal().Run(Kernel{Name: "bad", Class: ClassGEMM, Flops: math.NaN()})
}

func TestRunPanicsOnUnknownClass(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown class did not panic")
		}
	}()
	nominal().Run(Kernel{Name: "mystery", Class: "warp-drive", Flops: 1})
}

func TestMemoryBoundOvershootsDeepCap(t *testing.T) {
	// HBM power does not throttle with SM clocks: a bandwidth-bound
	// kernel under a 100 W cap keeps (almost) its full speed but
	// overshoots the cap — the "larger error" the paper reports at
	// the 100 W setting (§V-A).
	g := nominal()
	k := streamKernel()
	base := g.Run(k)
	_ = g.SetPowerLimit(100)
	capped := g.Run(k)
	if capped.Duration > base.Duration*1.05 {
		t.Fatalf("memory-bound kernel slowed %.1f%% at 100 W; HBM clock is cap-independent",
			(capped.Duration/base.Duration-1)*100)
	}
	if capped.Power < 130 {
		t.Fatalf("expected overshoot above 130 W, got %.1f", capped.Power)
	}
}

func BenchmarkRunCapped(b *testing.B) {
	g := nominal()
	_ = g.SetPowerLimit(200)
	k := dgemmKernel()
	for i := 0; i < b.N; i++ {
		g.Run(k)
	}
}

func TestClockLimitValidation(t *testing.T) {
	g := nominal()
	if err := g.SetClockLimitMHz(1000); err != nil {
		t.Fatal(err)
	}
	if got := g.ClockLimit(); math.Abs(got-1000.0/1410.0) > 1e-9 {
		t.Fatalf("clock limit = %v", got)
	}
	if err := g.SetClockLimitMHz(100); err == nil {
		t.Fatal("below-minimum clock accepted")
	}
	if err := g.SetClockLimitMHz(2000); err == nil {
		t.Fatal("above-maximum clock accepted")
	}
	g.ResetClockLimit()
	if g.ClockLimit() != 1 {
		t.Fatal("reset failed")
	}
}

func TestDVFSSlowsComputeBoundOnly(t *testing.T) {
	g := nominal()
	dg := g.Run(dgemmKernel())
	st := g.Run(streamKernel())
	if err := g.SetClockLimitMHz(1000); err != nil {
		t.Fatal(err)
	}
	dgLocked := g.Run(dgemmKernel())
	stLocked := g.Run(streamKernel())
	// Compute-bound work slows ∝ 1/clock.
	wantSlow := 1410.0 / 1000.0
	ratio := dgLocked.Duration / dg.Duration
	if math.Abs(ratio-wantSlow) > 0.02 {
		t.Fatalf("DGEMM slowdown %v, want ≈ %v", ratio, wantSlow)
	}
	// Memory-bound work barely moves (HBM clock untouched).
	if stLocked.Duration > st.Duration*1.02 {
		t.Fatalf("STREAM slowed %v under DVFS", stLocked.Duration/st.Duration)
	}
	// And power drops below the uncapped draw.
	if dgLocked.Power >= dg.Power {
		t.Fatal("DVFS did not reduce DGEMM power")
	}
}

func TestDVFSComposesWithPowerCap(t *testing.T) {
	// A power cap below what the locked clock draws still throttles
	// further; the solver works inside the DVFS ceiling.
	g := nominal()
	if err := g.SetClockLimitMHz(1200); err != nil {
		t.Fatal(err)
	}
	if err := g.SetPowerLimit(150); err != nil {
		t.Fatal(err)
	}
	ex := g.Run(dgemmKernel())
	if ex.Power > 151 {
		t.Fatalf("cap not honored under DVFS: %.1f W", ex.Power)
	}
	if ex.ClockFrac > g.ClockLimit()+1e-9 {
		t.Fatal("solver exceeded the DVFS ceiling")
	}
}

func TestDVFSPowerVariesAcrossKernels(t *testing.T) {
	// The §V point (Imes & Zhang [31]): a locked clock fixes
	// frequency, not power — different kernels still draw very
	// different power, so DVFS controls power only loosely, while a
	// power cap bounds it exactly.
	g := nominal()
	_ = g.SetClockLimitMHz(1200)
	dg := g.Run(dgemmKernel())
	st := g.Run(streamKernel())
	if math.Abs(dg.Power-st.Power) < 30 {
		t.Fatalf("expected divergent power under DVFS: %v vs %v", dg.Power, st.Power)
	}
}

func TestA10080GBVariant(t *testing.T) {
	s40, s80 := A100SXM40GB(), A100SXM80GB()
	if s80.HBMBytes != 2*s40.HBMBytes {
		t.Fatal("80 GB variant capacity wrong")
	}
	if s80.PeakMemBW <= s40.PeakMemBW {
		t.Fatal("HBM2e bandwidth should exceed the 40 GB part")
	}
	if s80.TDP != s40.TDP {
		t.Fatal("board power envelope should match")
	}
	// A bandwidth-bound kernel finishes faster on the 80 GB part.
	g40 := New(s40, nil, 0, nil, DefaultVariability())
	g80 := New(s80, nil, 0, nil, DefaultVariability())
	k := streamKernel()
	if g80.Run(k).Duration >= g40.Run(k).Duration {
		t.Fatal("HBM2e should speed up STREAM")
	}
}
