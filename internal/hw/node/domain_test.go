package node

import (
	"math"
	"testing"

	"vasppower/internal/hw/gpu"
	"vasppower/internal/hw/platform"
	"vasppower/internal/rng"
)

func TestDomainsAndValidDomain(t *testing.T) {
	ds := Domains()
	if len(ds) != 4 {
		t.Fatalf("Domains() = %v, want 4 scopes", ds)
	}
	for _, d := range ds {
		if !ValidDomain(d) {
			t.Fatalf("ValidDomain(%q) = false", d)
		}
	}
	if ValidDomain("board") {
		t.Fatal("unknown domain accepted")
	}
}

func TestRecordGPUMems(t *testing.T) {
	n := New("nid001", platform.Default(), nil)
	p := n.Idle()
	p.GPUs = []float64{300, 300, 300, 300}
	p.GPUMems = []float64{80, 70, 60, 50}
	n.Record(4, p)
	for i := 0; i < n.NumGPUs(); i++ {
		if got := n.GPUMemTrace(i).PowerAt(2); !almostEq(got, p.GPUMems[i]) {
			t.Fatalf("gpu %d mem trace = %v, want %v", i, got, p.GPUMems[i])
		}
		core := n.GPUCoreTrace(i).PowerAt(2)
		want := 300*(1-gpu.ModuleVRFrac) - p.GPUMems[i]
		if !almostEq(core, want) {
			t.Fatalf("gpu %d core trace = %v, want %v", i, core, want)
		}
	}
}

func TestRecordNilGPUMemsDefaultsToHBMIdle(t *testing.T) {
	n := New("nid001", platform.Default(), nil)
	n.RecordIdle(5)
	for i := 0; i < n.NumGPUs(); i++ {
		if got, want := n.GPUMemTrace(i).PowerAt(1), n.GPUs[i].HBMIdlePower(); !almostEq(got, want) {
			t.Fatalf("gpu %d idle mem trace = %v, want HBM idle %v", i, got, want)
		}
	}
}

func TestRecordGPUMemsLengthMismatchPanics(t *testing.T) {
	n := New("nid001", platform.Default(), nil)
	p := n.Idle()
	p.GPUMems = []float64{1, 2}
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched GPUMems did not panic")
		}
	}()
	n.Record(1, p)
}

func TestDomainTraceAggregates(t *testing.T) {
	n := New("nid001", platform.Default(), nil)
	p := n.Idle()
	p.GPUs = []float64{350, 320, 310, 300}
	p.GPUMems = []float64{90, 85, 80, 75}
	n.Record(3, p)

	wantMem, wantModule, wantGPU := 0.0, 0.0, 0.0
	for i := range p.GPUs {
		wantMem += p.GPUMems[i]
		wantModule += p.GPUs[i]
		wantGPU += gpu.CoreDomainPower(p.GPUs[i], p.GPUMems[i])
	}
	checks := []struct {
		d    Domain
		want float64
	}{
		{DomainMemory, wantMem},
		{DomainModule, wantModule},
		{DomainGPU, wantGPU},
		{DomainNode, n.TotalTrace().PowerAt(1)},
	}
	for _, c := range checks {
		if got := n.DomainTrace(c.d).PowerAt(1); !almostEq(got, c.want) {
			t.Fatalf("DomainTrace(%s) = %v, want %v", c.d, got, c.want)
		}
	}
}

func TestDomainTraceMemoizedAndInvalidated(t *testing.T) {
	n := New("nid001", platform.Default(), nil)
	n.RecordIdle(2)
	first := n.DomainTrace(DomainMemory)
	if n.DomainTrace(DomainMemory) != first {
		t.Fatal("DomainTrace not memoized between records")
	}
	n.RecordIdle(2)
	again := n.DomainTrace(DomainMemory)
	if again == first {
		t.Fatal("Record did not invalidate the domain cache")
	}
	if d := again.Duration(); !almostEq(d, 4) {
		t.Fatalf("rebuilt domain trace duration = %v, want 4", d)
	}
	n.ResetTraces()
	if d := n.DomainTrace(DomainMemory).Duration(); d != 0 {
		t.Fatalf("domain trace after reset = %v, want empty", d)
	}
}

func TestDomainTraceUnknownPanics(t *testing.T) {
	n := New("nid001", platform.Default(), nil)
	defer func() {
		if recover() == nil {
			t.Fatal("unknown domain did not panic")
		}
	}()
	n.DomainTrace("board")
}

// Property: gpu + memory ≤ module ≤ node pointwise, for random
// recorded segments (including ones with GPUMems omitted).
func TestDomainInvariantProperty(t *testing.T) {
	root := rng.New(88)
	for trial := 0; trial < 30; trial++ {
		r := rng.New(root.Uint64())
		n := New("nid001", platform.Default(), r.Split("node"))
		for s := 0; s < 20; s++ {
			p := n.Idle()
			for i := range p.GPUs {
				p.GPUs[i] = 60 + r.Float64()*340
			}
			if r.Float64() < 0.7 {
				p.GPUMems = make([]float64, len(p.GPUs))
				for i := range p.GPUMems {
					// Anything up to the board draw; coreTrace clamps.
					p.GPUMems[i] = r.Float64() * p.GPUs[i]
				}
			}
			n.Record(0.1+r.Float64(), p)
		}
		gt := n.DomainTrace(DomainGPU)
		mem := n.DomainTrace(DomainMemory)
		mod := n.DomainTrace(DomainModule)
		nodeTr := n.DomainTrace(DomainNode)
		for x := 0.05; x < n.TraceDuration(); x += 0.21 {
			g, m, md, nd := gt.PowerAt(x), mem.PowerAt(x), mod.PowerAt(x), nodeTr.PowerAt(x)
			if g+m > md+1e-6 {
				t.Fatalf("trial %d t=%v: gpu %v + memory %v > module %v", trial, x, g, m, md)
			}
			if md > nd+1e-6 {
				t.Fatalf("trial %d t=%v: module %v > node %v", trial, x, md, nd)
			}
		}
	}
}

func almostEq(a, b float64) bool { return math.Abs(a-b) <= 1e-6 }
