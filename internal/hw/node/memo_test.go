package node

import (
	"math"
	"testing"

	"vasppower/internal/hw/platform"
)

// The derived-trace caches must serve repeated sensor reads without
// recomputation, and must never serve stale data after the traces
// change.

func TestTotalTraceMemoized(t *testing.T) {
	n := New("nid001", platform.Default(), nil)
	n.RecordIdle(10)
	a := n.TotalTrace()
	if b := n.TotalTrace(); b != a {
		t.Fatal("TotalTrace recomputed between records; expected the memoized trace")
	}
	if g := n.GPUSumTrace(); g != n.GPUSumTrace() {
		t.Fatal("GPUSumTrace recomputed between records; expected the memoized trace")
	}
}

func TestTotalTraceInvalidatedByRecord(t *testing.T) {
	n := New("nid001", platform.Default(), nil)
	n.RecordIdle(10)
	before := n.TotalTrace()
	beforeGPU := n.GPUSumTrace()

	p := n.Idle()
	p.CPU = 250
	for i := range p.GPUs {
		p.GPUs[i] = 390
	}
	n.Record(5, p)

	after := n.TotalTrace()
	if after == before {
		t.Fatal("Record did not invalidate the TotalTrace cache")
	}
	if d := after.Duration(); math.Abs(d-15) > 1e-9 {
		t.Fatalf("post-record total duration = %v, want 15", d)
	}
	wantLate := 250 + n.MemIdlePower() + 4*390 + n.PeripheralPower()
	if got := after.PowerAt(12); math.Abs(got-wantLate) > 1e-6 {
		t.Fatalf("post-record total power = %v, want %v", got, wantLate)
	}
	afterGPU := n.GPUSumTrace()
	if afterGPU == beforeGPU {
		t.Fatal("Record did not invalidate the GPUSumTrace cache")
	}
	if got := afterGPU.PowerAt(12); math.Abs(got-4*390) > 1e-6 {
		t.Fatalf("post-record GPU sum = %v, want %v", got, 4*390.0)
	}
}

func TestTotalTraceInvalidatedByReset(t *testing.T) {
	n := New("nid001", platform.Default(), nil)
	n.RecordIdle(10)
	_ = n.TotalTrace()
	_ = n.GPUSumTrace()
	n.ResetTraces()
	if n.TotalTrace().Len() != 0 {
		t.Fatal("ResetTraces left a stale TotalTrace cache")
	}
	if n.GPUSumTrace().Len() != 0 {
		t.Fatal("ResetTraces left a stale GPUSumTrace cache")
	}
	// Recording after a reset rebuilds from scratch.
	n.RecordIdle(3)
	if d := n.TotalTrace().Duration(); math.Abs(d-3) > 1e-9 {
		t.Fatalf("post-reset total duration = %v, want 3", d)
	}
}

func TestZeroDurationRecordKeepsCache(t *testing.T) {
	n := New("nid001", platform.Default(), nil)
	n.RecordIdle(10)
	a := n.TotalTrace()
	n.RecordIdle(0) // ignored by Record; must not thrash the cache
	if b := n.TotalTrace(); b != a {
		t.Fatal("zero-duration record invalidated the cache")
	}
}

func BenchmarkTotalTrace(b *testing.B) {
	n := New("nid001", platform.Default(), nil)
	p := n.Idle()
	for i := 0; i < 2500; i++ {
		// Alternate powers so Append cannot merge segments away.
		q := p
		q.CPU = 100 + float64(i%7)*20
		q.GPUs = append([]float64(nil), p.GPUs...)
		for g := range q.GPUs {
			q.GPUs[g] = 80 + float64((i+g)%5)*60
		}
		n.Record(0.1, q)
	}
	b.Run("memoized", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = n.TotalTrace()
		}
	})
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			n.totalCache = nil
			_ = n.TotalTrace()
		}
	})
}
