// Package node models one GPU compute node of a platform: a host CPU,
// a platform-determined number of GPUs, DDR memory, and peripherals
// (NICs, fans, VRM losses). The node records synchronized
// per-component power traces as the workload executes, mirroring the
// Cray Power Monitoring counters the paper reads (CPU, each GPU,
// memory, and total node power including peripherals, §II-B).
//
// Which hardware populates the node comes entirely from the
// hw/platform layer; this package hard-codes no machine. On the
// default perlmutter-a100 platform the model reproduces the published
// reference points:
//   - node TDP 2350 W = 280 (CPU) + 4×400 (GPUs) + 470 (peripherals,
//     primarily DDR and NICs);
//   - idle node power 410–510 W across nodes (manufacturing
//     variability, §III-B.2);
//   - the node sensor reads higher than the sum of component sensors
//     (peripherals are not individually metered, Fig. 3).
package node

import (
	"fmt"

	"vasppower/internal/hw/cpu"
	"vasppower/internal/hw/gpu"
	"vasppower/internal/hw/platform"
	"vasppower/internal/rng"
	"vasppower/internal/timeseries"
)

// Node is one node instance. It owns its components and the aligned
// power traces produced during simulation.
type Node struct {
	Name     string
	Platform platform.Platform
	CPU      *cpu.CPU
	GPUs     []*gpu.GPU

	peripheralWatts float64 // with per-node variability
	memScale        float64

	cpuTrace     timeseries.Trace
	memTrace     timeseries.Trace
	gpuTraces    []timeseries.Trace
	gpuMemTraces []timeseries.Trace // HBM-domain share of each gpuTrace

	// Memoized derived traces. TotalTrace and GPUSumTrace are read
	// once per metric by the telemetry pipeline and again by the
	// analysis layer; recomputing the k-way sum on every sensor read
	// dominated profile assembly. Record and ResetTraces invalidate
	// all of them. The cached traces are shared across callers, which
	// must treat them as read-only (the same contract Segments already
	// states).
	totalCache   *timeseries.Trace
	gpuSumCache  *timeseries.Trace
	domainCaches map[Domain]*timeseries.Trace
}

// New builds a node of the given platform. r seeds per-node
// manufacturing variability; nil gives a nominal node. Component
// variability is derived from labeled substreams so node identity
// fully determines device behavior.
func New(name string, p platform.Platform, r *rng.Stream) *Node {
	p = platform.OrDefault(p)
	if err := p.Validate(); err != nil {
		panic(err)
	}
	n := &Node{
		Name:            name,
		Platform:        p,
		GPUs:            make([]*gpu.GPU, p.GPUsPerNode),
		peripheralWatts: p.Node.PeripheralWatts,
		memScale:        1,
		gpuTraces:       make([]timeseries.Trace, p.GPUsPerNode),
		gpuMemTraces:    make([]timeseries.Trace, p.GPUsPerNode),
	}
	v := p.Variability
	var cpuR, memR *rng.Stream
	gpuR := make([]*rng.Stream, p.GPUsPerNode)
	if r != nil {
		cpuR = r.Split("cpu")
		memR = r.Split("mem")
		for i := range gpuR {
			gpuR[i] = r.Split(fmt.Sprintf("gpu%d", i))
		}
		// Peripheral draw varies the most between nodes (fan curves,
		// VRM efficiency): ±25% spread drives the paper's 410–510 W
		// idle range together with component spreads.
		pr := r.Split("peripherals")
		n.peripheralWatts = clamp(pr.Normal(p.Node.PeripheralWatts, v.PeripheralSigmaW),
			p.Node.PeripheralWatts*0.75, p.Node.PeripheralWatts*1.25)
		n.memScale = clamp(memR.Normal(1, v.MemSigma), 0.85, 1.15)
	}
	n.CPU = cpu.New(p.CPU, cpuR, v.CPU)
	for i := range n.GPUs {
		n.GPUs[i] = gpu.New(p.GPU, p.Efficiency, i, gpuR[i], v.GPU)
	}
	return n
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// NumGPUs returns how many GPUs the node carries.
func (n *Node) NumGPUs() int { return len(n.GPUs) }

// MemIdlePower returns the DDR background power with variability.
func (n *Node) MemIdlePower() float64 { return n.Platform.Node.MemIdleWatts * n.memScale }

// MemActivePower returns the DDR power under load with variability.
func (n *Node) MemActivePower() float64 { return n.Platform.Node.MemActiveWatts * n.memScale }

// PeripheralPower returns this node's (constant) peripheral draw.
func (n *Node) PeripheralPower() float64 { return n.peripheralWatts }

// IdlePower returns the node's total idle draw.
func (n *Node) IdlePower() float64 {
	p := n.CPU.IdlePower() + n.MemIdlePower() + n.peripheralWatts
	for _, g := range n.GPUs {
		p += g.IdlePower()
	}
	return p
}

// ComponentPowers is a snapshot of per-component power for one
// recorded segment. GPUs has one entry per device on the node.
//
// GPUMems optionally carries each GPU's HBM-domain share of the
// corresponding GPUs entry (the NVML memory scope — distinct from Mem,
// which is the node's DDR). Nil means "not decomposed": Record falls
// back to each device's HBM idle share, which is correct for every
// segment where the GPUs are not streaming (idle, CPU phases, comm
// waits).
type ComponentPowers struct {
	CPU     float64
	Mem     float64
	GPUs    []float64
	GPUMems []float64
}

// Idle returns the node's idle component powers.
func (n *Node) Idle() ComponentPowers {
	cp := ComponentPowers{
		CPU:  n.CPU.IdlePower(),
		Mem:  n.MemIdlePower(),
		GPUs: make([]float64, len(n.GPUs)),
	}
	for i, g := range n.GPUs {
		cp.GPUs[i] = g.IdlePower()
	}
	return cp
}

// Record appends one synchronized segment of the given duration to all
// component traces. The workload drivers call this as virtual time
// advances; all traces stay aligned by construction.
func (n *Node) Record(dur float64, p ComponentPowers) {
	if dur < 0 {
		panic("node: negative record duration")
	}
	if len(p.GPUs) != len(n.gpuTraces) {
		panic(fmt.Sprintf("node: recording %d GPU powers on a %d-GPU node",
			len(p.GPUs), len(n.gpuTraces)))
	}
	if p.GPUMems != nil && len(p.GPUMems) != len(n.gpuTraces) {
		panic(fmt.Sprintf("node: recording %d GPU memory powers on a %d-GPU node",
			len(p.GPUMems), len(n.gpuTraces)))
	}
	if dur == 0 {
		return
	}
	n.totalCache, n.gpuSumCache, n.domainCaches = nil, nil, nil
	n.cpuTrace.Append(dur, p.CPU)
	n.memTrace.Append(dur, p.Mem)
	for i := range n.gpuTraces {
		n.gpuTraces[i].Append(dur, p.GPUs[i])
		memW := n.GPUs[i].HBMIdlePower()
		if p.GPUMems != nil {
			memW = p.GPUMems[i]
		}
		n.gpuMemTraces[i].Append(dur, memW)
	}
}

// RecordIdle appends an idle segment of the given duration.
func (n *Node) RecordIdle(dur float64) { n.Record(dur, n.Idle()) }

// CPUTrace returns the CPU power trace.
func (n *Node) CPUTrace() *timeseries.Trace { return &n.cpuTrace }

// MemTrace returns the memory power trace.
func (n *Node) MemTrace() *timeseries.Trace { return &n.memTrace }

// GPUTrace returns GPU i's power trace.
func (n *Node) GPUTrace(i int) *timeseries.Trace { return &n.gpuTraces[i] }

// GPUSumTrace returns the pointwise sum of all GPU traces. The result
// is memoized until the next Record or ResetTraces; callers must not
// mutate it.
func (n *Node) GPUSumTrace() *timeseries.Trace {
	if n.gpuSumCache == nil {
		traces := make([]*timeseries.Trace, len(n.gpuTraces))
		for i := range n.gpuTraces {
			traces[i] = &n.gpuTraces[i]
		}
		n.gpuSumCache = timeseries.Sum(traces...)
	}
	return n.gpuSumCache
}

// TotalTrace returns the node power trace: all components plus the
// constant peripheral draw. This is what the node-level sensor reads.
// The result is memoized until the next Record or ResetTraces;
// callers must not mutate it.
func (n *Node) TotalTrace() *timeseries.Trace {
	if n.totalCache == nil {
		traces := []*timeseries.Trace{&n.cpuTrace, &n.memTrace}
		for i := range n.gpuTraces {
			traces = append(traces, &n.gpuTraces[i])
		}
		n.totalCache = timeseries.Sum(traces...).AddConstant(n.peripheralWatts)
	}
	return n.totalCache
}

// Domain is an NVML-style power scope over the node's accelerators,
// plus the whole-node scope the Cray PM node sensor reads. The GPU
// scopes aggregate over all devices on the host (the per-device view
// is GPUCoreTrace/GPUMemTrace/GPUTrace).
type Domain string

const (
	// DomainGPU is NVML_POWER_SCOPE_GPU: the GPU dies alone — SM
	// arrays, caches, controllers — summed over the node's devices.
	DomainGPU Domain = "gpu"
	// DomainMemory is NVML_POWER_SCOPE_MEMORY: the HBM stacks and
	// their controllers, summed over the node's devices. Distinct from
	// the Cray PM "memory" metric, which is the host's DDR.
	DomainMemory Domain = "memory"
	// DomainModule is NVML_POWER_SCOPE_MODULE: the whole SXM modules
	// (die + HBM + voltage-regulator losses) — what the board sensor
	// and the Cray PM per-GPU counters read.
	DomainModule Domain = "module"
	// DomainNode is the node-level sensor: every component plus
	// unmetered peripherals.
	DomainNode Domain = "node"
)

// Domains lists every power domain, in decomposition order.
func Domains() []Domain { return []Domain{DomainGPU, DomainMemory, DomainModule, DomainNode} }

// ValidDomain reports whether d names a power domain.
func ValidDomain(d Domain) bool {
	switch d {
	case DomainGPU, DomainMemory, DomainModule, DomainNode:
		return true
	}
	return false
}

// GPUMemTrace returns GPU i's HBM-domain (NVML memory scope) power
// trace, recorded in lockstep with GPUTrace(i).
func (n *Node) GPUMemTrace(i int) *timeseries.Trace { return &n.gpuMemTraces[i] }

// GPUCoreTrace returns GPU i's core-domain (NVML GPU scope) power
// trace, derived segment-wise from the board and HBM traces:
// board·(1−VR losses) − HBM, floored at zero. Not memoized — callers
// wanting the per-host aggregate should use DomainTrace(DomainGPU),
// which is.
func (n *Node) GPUCoreTrace(i int) *timeseries.Trace {
	return coreTrace(&n.gpuTraces[i], &n.gpuMemTraces[i])
}

// coreTrace derives the core-domain trace from a module (board) trace
// and its memory-domain share. The two traces cover identical time but
// may be segmented differently (equal-power merging is per-trace), so
// they are combined through the k-way Sum.
func coreTrace(module, mem *timeseries.Trace) *timeseries.Trace {
	return timeseries.Sum(module.Scale(1-gpu.ModuleVRFrac), mem.Scale(-1)).
		Map(func(p float64) float64 {
			if p < 0 {
				return 0
			}
			return p
		})
}

// DomainTrace returns the node's power trace for one domain scope:
// DomainGPU and DomainMemory sum the per-device core and HBM traces,
// DomainModule is the board-power sum (GPUSumTrace), DomainNode is the
// node sensor (TotalTrace). Results are memoized until the next Record
// or ResetTraces and must be treated as read-only. By construction
// gpu + memory ≤ module ≤ node pointwise. Unknown domains panic.
func (n *Node) DomainTrace(d Domain) *timeseries.Trace {
	if tr, ok := n.domainCaches[d]; ok {
		return tr
	}
	var tr *timeseries.Trace
	switch d {
	case DomainModule:
		tr = n.GPUSumTrace()
	case DomainNode:
		tr = n.TotalTrace()
	case DomainMemory:
		traces := make([]*timeseries.Trace, len(n.gpuMemTraces))
		for i := range n.gpuMemTraces {
			traces[i] = &n.gpuMemTraces[i]
		}
		tr = timeseries.Sum(traces...)
	case DomainGPU:
		// Σ core_i: distribute the subtraction — Σ board_i·(1−vr) − Σ
		// hbm_i would lose the per-device zero floor, so sum the
		// per-device core traces instead.
		traces := make([]*timeseries.Trace, len(n.gpuTraces))
		for i := range n.gpuTraces {
			traces[i] = coreTrace(&n.gpuTraces[i], &n.gpuMemTraces[i])
		}
		tr = timeseries.Sum(traces...)
	default:
		panic(fmt.Sprintf("node: unknown power domain %q", d))
	}
	if n.domainCaches == nil {
		n.domainCaches = make(map[Domain]*timeseries.Trace, 4)
	}
	n.domainCaches[d] = tr
	return tr
}

// TraceDuration returns the recorded duration (identical across
// components by construction).
func (n *Node) TraceDuration() float64 { return n.cpuTrace.Duration() }

// ResetTraces clears all recorded traces (e.g. between benchmark
// repeats) without touching device state such as power limits.
func (n *Node) ResetTraces() {
	n.totalCache, n.gpuSumCache, n.domainCaches = nil, nil, nil
	n.cpuTrace = timeseries.Trace{}
	n.memTrace = timeseries.Trace{}
	for i := range n.gpuTraces {
		n.gpuTraces[i] = timeseries.Trace{}
		n.gpuMemTraces[i] = timeseries.Trace{}
	}
}

// ResetTracesReuse clears all recorded traces like ResetTraces but
// keeps each trace's segment storage — the arena reset the incremental
// sweep engine applies between repeats and cap points so steady-state
// re-solves append into already-sized backing arrays. Memoized derived
// traces handed out earlier are unaffected (they own fresh storage).
func (n *Node) ResetTracesReuse() {
	n.totalCache, n.gpuSumCache, n.domainCaches = nil, nil, nil
	n.cpuTrace.Reset()
	n.memTrace.Reset()
	for i := range n.gpuTraces {
		n.gpuTraces[i].Reset()
		n.gpuMemTraces[i].Reset()
	}
}

// TraceBank is detachable trace storage for one node: the sweep engine
// keeps the best repeat's traces in a bank while later repeats rebuild
// into the node's working set, then swaps the winner back in. The zero
// value is ready to use.
type TraceBank struct {
	cpu     timeseries.Trace
	mem     timeseries.Trace
	gpus    []timeseries.Trace
	gpuMems []timeseries.Trace
}

// SwapTraces exchanges the node's recorded traces with the bank's and
// invalidates the memoized derived traces. Device state (power and
// clock limits) is untouched. Swapping is O(1): only slice headers
// move.
func (n *Node) SwapTraces(b *TraceBank) {
	if len(b.gpus) != len(n.gpuTraces) {
		b.gpus = make([]timeseries.Trace, len(n.gpuTraces))
		b.gpuMems = make([]timeseries.Trace, len(n.gpuMemTraces))
	}
	n.totalCache, n.gpuSumCache, n.domainCaches = nil, nil, nil
	n.cpuTrace, b.cpu = b.cpu, n.cpuTrace
	n.memTrace, b.mem = b.mem, n.memTrace
	n.gpuTraces, b.gpus = b.gpus, n.gpuTraces
	n.gpuMemTraces, b.gpuMems = b.gpuMems, n.gpuMemTraces
}

// SetGPUPowerLimits applies the same cap to all GPUs, returning the
// first error.
func (n *Node) SetGPUPowerLimits(w float64) error {
	for _, g := range n.GPUs {
		if err := g.SetPowerLimit(w); err != nil {
			return err
		}
	}
	return nil
}

// ResetGPUPowerLimits restores default (TDP) limits on all GPUs.
func (n *Node) ResetGPUPowerLimits() {
	for _, g := range n.GPUs {
		g.ResetPowerLimit()
	}
}

// SetGPUClockLimits locks the same maximum SM clock on all GPUs (the
// DVFS alternative to power capping), returning the first error.
func (n *Node) SetGPUClockLimits(mhz float64) error {
	for _, g := range n.GPUs {
		if err := g.SetClockLimitMHz(mhz); err != nil {
			return err
		}
	}
	return nil
}

// ResetGPUClockLimits unlocks SM clocks on all GPUs.
func (n *Node) ResetGPUClockLimits() {
	for _, g := range n.GPUs {
		g.ResetClockLimit()
	}
}
