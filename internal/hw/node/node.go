// Package node models one Perlmutter GPU node: one EPYC 7763, four
// A100-40GB GPUs, 256 GB DDR4, and peripherals (Slingshot NICs, fans,
// VRM losses). The node records synchronized per-component power
// traces as the workload executes, mirroring the Cray Power Monitoring
// counters the paper reads (CPU, each GPU, memory, and total node
// power including peripherals, §II-B).
//
// Published reference points reproduced by the model:
//   - node TDP 2350 W = 280 (CPU) + 4×400 (GPUs) + 470 (peripherals,
//     primarily DDR and NICs);
//   - idle node power 410–510 W across nodes (manufacturing
//     variability, §III-B.2);
//   - the node sensor reads higher than the sum of component sensors
//     (peripherals are not individually metered, Fig. 3).
package node

import (
	"fmt"

	"vasppower/internal/hw/cpu"
	"vasppower/internal/hw/gpu"
	"vasppower/internal/rng"
	"vasppower/internal/timeseries"
)

// GPUsPerNode is fixed at 4 for Perlmutter GPU nodes.
const GPUsPerNode = 4

// Spec holds node-level parameters beyond the component specs.
type Spec struct {
	TDP             float64 // 2350 W
	MemIdleWatts    float64 // DDR4 background (refresh, PHY)
	MemActiveWatts  float64 // DDR4 under full streaming load
	PeripheralWatts float64 // NICs + fans + VRM, roughly constant
}

// PerlmutterGPUNode returns the 40 GB GPU-node spec.
func PerlmutterGPUNode() Spec {
	return Spec{
		TDP:             2350,
		MemIdleWatts:    22,
		MemActiveWatts:  52,
		PeripheralWatts: 150,
	}
}

// Node is one node instance. It owns its components and the aligned
// power traces produced during simulation.
type Node struct {
	Name string
	Spec Spec
	CPU  *cpu.CPU
	GPUs [GPUsPerNode]*gpu.GPU

	peripheralWatts float64 // with per-node variability
	memScale        float64

	cpuTrace  timeseries.Trace
	memTrace  timeseries.Trace
	gpuTraces [GPUsPerNode]timeseries.Trace
}

// New builds a node. r seeds per-node manufacturing variability; nil
// gives a nominal node. Component variability is derived from labeled
// substreams so node identity fully determines device behavior.
func New(name string, spec Spec, r *rng.Stream) *Node {
	n := &Node{Name: name, Spec: spec, peripheralWatts: spec.PeripheralWatts, memScale: 1}
	var cpuR, memR *rng.Stream
	var gpuR [GPUsPerNode]*rng.Stream
	if r != nil {
		cpuR = r.Split("cpu")
		memR = r.Split("mem")
		for i := range gpuR {
			gpuR[i] = r.Split(fmt.Sprintf("gpu%d", i))
		}
		// Peripheral draw varies the most between nodes (fan curves,
		// VRM efficiency): ±25% spread drives the paper's 410–510 W
		// idle range together with component spreads.
		pr := r.Split("peripherals")
		n.peripheralWatts = clamp(pr.Normal(spec.PeripheralWatts, 18),
			spec.PeripheralWatts*0.75, spec.PeripheralWatts*1.25)
		n.memScale = clamp(memR.Normal(1, 0.05), 0.85, 1.15)
	}
	n.CPU = cpu.New(cpu.EPYC7763(), cpuR)
	for i := 0; i < GPUsPerNode; i++ {
		n.GPUs[i] = gpu.New(gpu.A100SXM40GB(), i, gpuR[i])
	}
	return n
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// MemIdlePower returns the DDR background power with variability.
func (n *Node) MemIdlePower() float64 { return n.Spec.MemIdleWatts * n.memScale }

// MemActivePower returns the DDR power under load with variability.
func (n *Node) MemActivePower() float64 { return n.Spec.MemActiveWatts * n.memScale }

// PeripheralPower returns this node's (constant) peripheral draw.
func (n *Node) PeripheralPower() float64 { return n.peripheralWatts }

// IdlePower returns the node's total idle draw.
func (n *Node) IdlePower() float64 {
	p := n.CPU.IdlePower() + n.MemIdlePower() + n.peripheralWatts
	for _, g := range n.GPUs {
		p += g.IdlePower()
	}
	return p
}

// ComponentPowers is a snapshot of per-component power for one
// recorded segment.
type ComponentPowers struct {
	CPU  float64
	Mem  float64
	GPUs [GPUsPerNode]float64
}

// Idle returns the node's idle component powers.
func (n *Node) Idle() ComponentPowers {
	cp := ComponentPowers{CPU: n.CPU.IdlePower(), Mem: n.MemIdlePower()}
	for i, g := range n.GPUs {
		cp.GPUs[i] = g.IdlePower()
	}
	return cp
}

// Record appends one synchronized segment of the given duration to all
// component traces. The workload drivers call this as virtual time
// advances; all traces stay aligned by construction.
func (n *Node) Record(dur float64, p ComponentPowers) {
	if dur < 0 {
		panic("node: negative record duration")
	}
	if dur == 0 {
		return
	}
	n.cpuTrace.Append(dur, p.CPU)
	n.memTrace.Append(dur, p.Mem)
	for i := range n.gpuTraces {
		n.gpuTraces[i].Append(dur, p.GPUs[i])
	}
}

// RecordIdle appends an idle segment of the given duration.
func (n *Node) RecordIdle(dur float64) { n.Record(dur, n.Idle()) }

// CPUTrace returns the CPU power trace.
func (n *Node) CPUTrace() *timeseries.Trace { return &n.cpuTrace }

// MemTrace returns the memory power trace.
func (n *Node) MemTrace() *timeseries.Trace { return &n.memTrace }

// GPUTrace returns GPU i's power trace.
func (n *Node) GPUTrace(i int) *timeseries.Trace { return &n.gpuTraces[i] }

// GPUSumTrace returns the pointwise sum of the four GPU traces.
func (n *Node) GPUSumTrace() *timeseries.Trace {
	return timeseries.Sum(&n.gpuTraces[0], &n.gpuTraces[1], &n.gpuTraces[2], &n.gpuTraces[3])
}

// TotalTrace returns the node power trace: all components plus the
// constant peripheral draw. This is what the node-level sensor reads.
func (n *Node) TotalTrace() *timeseries.Trace {
	components := timeseries.Sum(&n.cpuTrace, &n.memTrace,
		&n.gpuTraces[0], &n.gpuTraces[1], &n.gpuTraces[2], &n.gpuTraces[3])
	out := &timeseries.Trace{}
	for _, s := range components.Segments() {
		out.Append(s.Dur, s.Power+n.peripheralWatts)
	}
	return out
}

// TraceDuration returns the recorded duration (identical across
// components by construction).
func (n *Node) TraceDuration() float64 { return n.cpuTrace.Duration() }

// ResetTraces clears all recorded traces (e.g. between benchmark
// repeats) without touching device state such as power limits.
func (n *Node) ResetTraces() {
	n.cpuTrace = timeseries.Trace{}
	n.memTrace = timeseries.Trace{}
	for i := range n.gpuTraces {
		n.gpuTraces[i] = timeseries.Trace{}
	}
}

// SetGPUPowerLimits applies the same cap to all four GPUs, returning
// the first error.
func (n *Node) SetGPUPowerLimits(w float64) error {
	for _, g := range n.GPUs {
		if err := g.SetPowerLimit(w); err != nil {
			return err
		}
	}
	return nil
}

// ResetGPUPowerLimits restores default (TDP) limits on all GPUs.
func (n *Node) ResetGPUPowerLimits() {
	for _, g := range n.GPUs {
		g.ResetPowerLimit()
	}
}

// SetGPUClockLimits locks the same maximum SM clock on all four GPUs
// (the DVFS alternative to power capping), returning the first error.
func (n *Node) SetGPUClockLimits(mhz float64) error {
	for _, g := range n.GPUs {
		if err := g.SetClockLimitMHz(mhz); err != nil {
			return err
		}
	}
	return nil
}

// ResetGPUClockLimits unlocks SM clocks on all GPUs.
func (n *Node) ResetGPUClockLimits() {
	for _, g := range n.GPUs {
		g.ResetClockLimit()
	}
}
