package node

import (
	"fmt"
	"math"
	"testing"

	"vasppower/internal/hw/platform"
	"vasppower/internal/rng"
)

func TestNodeMatchesPlatform(t *testing.T) {
	p := platform.Default()
	if p.Node.TDP != 2350 {
		t.Fatalf("node TDP = %v, want 2350", p.Node.TDP)
	}
	n := New("nid001", p, nil)
	if n.NumGPUs() != p.GPUsPerNode {
		t.Fatalf("NumGPUs = %d, want %d", n.NumGPUs(), p.GPUsPerNode)
	}
	if n.CPU.Spec.Name != p.CPU.Name || n.GPUs[0].Spec.Name != p.GPU.Name {
		t.Fatalf("node components %s/%s do not match platform %s/%s",
			n.CPU.Spec.Name, n.GPUs[0].Spec.Name, p.CPU.Name, p.GPU.Name)
	}
}

func TestNodeZeroPlatformDefaults(t *testing.T) {
	n := New("nid001", platform.Platform{}, nil)
	if n.Platform.Name != platform.DefaultName {
		t.Fatalf("zero platform resolved to %q, want %q", n.Platform.Name, platform.DefaultName)
	}
}

func TestIdlePowerInPublishedRange(t *testing.T) {
	// The paper's random check of 16 nodes found idle power between
	// 410 and 510 W (§III-B.2). Our fleet must land in (roughly) that
	// band, and must actually vary node to node.
	root := rng.New(1)
	var lo, hi float64 = math.Inf(1), math.Inf(-1)
	for i := 0; i < 64; i++ {
		n := New(fmt.Sprintf("nid%03d", i), platform.Default(), root.Split(fmt.Sprintf("nid%03d", i)))
		p := n.IdlePower()
		if p < 390 || p > 530 {
			t.Fatalf("node %d idle power %v outside plausible range", i, p)
		}
		lo = math.Min(lo, p)
		hi = math.Max(hi, p)
	}
	if hi-lo < 30 {
		t.Fatalf("idle power spread %v W too small; paper saw up to 100 W", hi-lo)
	}
	if hi-lo > 130 {
		t.Fatalf("idle power spread %v W implausibly large", hi-lo)
	}
}

func TestNodeVariabilityDeterministic(t *testing.T) {
	a := New("nid007", platform.Default(), rng.New(9).Split("nid007"))
	b := New("nid007", platform.Default(), rng.New(9).Split("nid007"))
	if a.IdlePower() != b.IdlePower() {
		t.Fatal("same node identity produced different idle power")
	}
}

func TestRecordAlignsTraces(t *testing.T) {
	n := New("nid001", platform.Default(), nil)
	p := n.Idle()
	n.Record(5, p)
	p.CPU = 200
	p.GPUs = []float64{350, 350, 350, 350}
	n.Record(10, p)
	if d := n.TraceDuration(); d != 15 {
		t.Fatalf("trace duration = %v, want 15", d)
	}
	for i := 0; i < n.NumGPUs(); i++ {
		if n.GPUTrace(i).Duration() != 15 {
			t.Fatalf("gpu %d trace misaligned", i)
		}
	}
	if n.MemTrace().Duration() != 15 {
		t.Fatal("mem trace misaligned")
	}
}

func TestTotalTraceIncludesPeripherals(t *testing.T) {
	n := New("nid001", platform.Default(), nil)
	n.RecordIdle(10)
	total := n.TotalTrace()
	components := n.CPUTrace().PowerAt(5) + n.MemTrace().PowerAt(5)
	for i := 0; i < n.NumGPUs(); i++ {
		components += n.GPUTrace(i).PowerAt(5)
	}
	gap := total.PowerAt(5) - components
	if math.Abs(gap-n.PeripheralPower()) > 1e-6 {
		t.Fatalf("node-vs-components gap = %v, want peripheral %v", gap, n.PeripheralPower())
	}
	if math.Abs(total.PowerAt(5)-n.IdlePower()) > 1e-6 {
		t.Fatalf("idle total trace = %v, want IdlePower %v", total.PowerAt(5), n.IdlePower())
	}
}

func TestGPUSumTrace(t *testing.T) {
	n := New("nid001", platform.Default(), nil)
	p := n.Idle()
	for i := range p.GPUs {
		p.GPUs[i] = 100 * float64(i+1)
	}
	n.Record(4, p)
	sum := n.GPUSumTrace()
	if got := sum.PowerAt(2); math.Abs(got-1000) > 1e-9 {
		t.Fatalf("GPU sum = %v, want 1000", got)
	}
}

func TestResetTraces(t *testing.T) {
	n := New("nid001", platform.Default(), nil)
	n.RecordIdle(5)
	_ = n.SetGPUPowerLimits(200)
	n.ResetTraces()
	if n.TraceDuration() != 0 {
		t.Fatal("traces not cleared")
	}
	// Power limits survive a trace reset.
	if n.GPUs[0].PowerLimit() != 200 {
		t.Fatal("ResetTraces clobbered power limits")
	}
}

func TestSetGPUPowerLimits(t *testing.T) {
	n := New("nid001", platform.Default(), nil)
	if err := n.SetGPUPowerLimits(300); err != nil {
		t.Fatal(err)
	}
	for i, g := range n.GPUs {
		if g.PowerLimit() != 300 {
			t.Fatalf("gpu %d limit = %v", i, g.PowerLimit())
		}
	}
	if err := n.SetGPUPowerLimits(50); err == nil {
		t.Fatal("invalid limit accepted")
	}
	n.ResetGPUPowerLimits()
	if n.GPUs[3].PowerLimit() != 400 {
		t.Fatal("reset failed")
	}
}

func TestRecordNegativePanics(t *testing.T) {
	n := New("nid001", platform.Default(), nil)
	defer func() {
		if recover() == nil {
			t.Fatal("negative duration did not panic")
		}
	}()
	n.Record(-1, n.Idle())
}

func TestRecordZeroIgnored(t *testing.T) {
	n := New("nid001", platform.Default(), nil)
	n.Record(0, n.Idle())
	if n.TraceDuration() != 0 {
		t.Fatal("zero-duration record stored")
	}
}

func TestSetGPUClockLimits(t *testing.T) {
	n := New("nid001", platform.Default(), nil)
	if err := n.SetGPUClockLimits(1200); err != nil {
		t.Fatal(err)
	}
	for i, g := range n.GPUs {
		if g.ClockLimit() >= 1 {
			t.Fatalf("gpu %d clock not locked", i)
		}
	}
	if err := n.SetGPUClockLimits(10); err == nil {
		t.Fatal("invalid clock accepted")
	}
	n.ResetGPUClockLimits()
	if n.GPUs[0].ClockLimit() != 1 {
		t.Fatal("reset failed")
	}
}
