// Package platform assembles complete hardware platforms — GPU spec,
// CPU spec, node-level power parameters, GPU count per node, and
// manufacturing-variability parameters — and names them in a registry.
// It is the single place in the codebase where a machine is described;
// every other layer (node construction, the measurement pipeline, the
// experiment runners, the CLI) consumes a Platform value and stays
// agnostic about which machine it models.
//
// The default platform, "perlmutter-a100", is the machine the paper
// characterizes: Perlmutter GPU nodes with one EPYC 7763 "Milan" and
// four A100-SXM4-40GB (node TDP 2350 W, §II-A). Every other
// registered platform is an extrapolation: shape-faithful (roofline,
// DVFS curve, power split between SMs and HBM) but not calibrated
// against published measurements.
package platform

import (
	"fmt"

	"vasppower/internal/hw/cpu"
	"vasppower/internal/hw/gpu"
)

// NodeSpec holds node-level power parameters beyond the component
// specs: the facility-facing node TDP and the draws of the parts that
// are not individually metered (DDR, NICs, fans, VRM losses).
type NodeSpec struct {
	TDP             float64 // node power budget, W
	MemIdleWatts    float64 // DDR background (refresh, PHY)
	MemActiveWatts  float64 // DDR under full streaming load
	PeripheralWatts float64 // NICs + fans + VRM, roughly constant
}

// Variability bundles the manufacturing-spread parameters the paper
// observes across nominally identical nodes (§III-B.2: up to 100 W
// idle spread, visible differences between identical DGEMM runs).
type Variability struct {
	GPU gpu.Variability
	CPU cpu.Variability
	// MemSigma is the relative spread of DDR power between nodes.
	MemSigma float64
	// PeripheralSigmaW is the absolute spread (W) of the peripheral
	// draw — fan curves and VRM efficiency vary the most.
	PeripheralSigmaW float64
}

// DefaultVariability returns the spread calibrated to reproduce the
// paper's 410–510 W idle range on the Perlmutter platform.
func DefaultVariability() Variability {
	return Variability{
		GPU:              gpu.DefaultVariability(),
		CPU:              cpu.DefaultVariability(),
		MemSigma:         0.05,
		PeripheralSigmaW: 18,
	}
}

// Platform is one fully-described machine model.
type Platform struct {
	// Name keys the registry ("perlmutter-a100").
	Name string
	// Description is a one-line human-readable summary.
	Description string
	// Calibrated is true only for the platform the paper measured;
	// everything else is a shape-faithful extrapolation.
	Calibrated bool

	GPU gpu.Spec
	// Efficiency is the platform's achieved-efficiency table: how work
	// descriptors resolve into execution profiles on this machine's
	// GPUs. Shared by pointer across the platform's devices and treated
	// as immutable (edit a Clone); keeping the pointer here keeps
	// Platform comparable. Its hash is part of every measurement cache
	// key, so editing a table invalidates stale cached results.
	Efficiency  *gpu.EfficiencyModel
	CPU         cpu.Spec
	Node        NodeSpec
	GPUsPerNode int
	Variability Variability
}

// Validate checks internal consistency: non-empty identity, at least
// one GPU, and the TDP budget invariant — the component TDPs (CPU,
// all GPUs, DDR under load, peripherals) must fit inside the node
// budget, as they do on the real machine (280 + 4×400 + 470 ≤ 2350).
func (p Platform) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("platform: empty name")
	}
	if p.GPUsPerNode <= 0 {
		return fmt.Errorf("platform %s: %d GPUs per node", p.Name, p.GPUsPerNode)
	}
	if p.GPU.TDP <= 0 || p.CPU.TDP <= 0 || p.Node.TDP <= 0 {
		return fmt.Errorf("platform %s: non-positive TDP", p.Name)
	}
	if sum := p.ComponentTDP(); sum > p.Node.TDP {
		return fmt.Errorf("platform %s: component TDPs (%.0f W) exceed node TDP (%.0f W)",
			p.Name, sum, p.Node.TDP)
	}
	if p.GPU.MinPowerLimit <= 0 || p.GPU.MinPowerLimit > p.GPU.TDP {
		return fmt.Errorf("platform %s: GPU power-limit range [%.0f, %.0f] invalid",
			p.Name, p.GPU.MinPowerLimit, p.GPU.TDP)
	}
	if p.Efficiency == nil {
		return fmt.Errorf("platform %s: no GPU efficiency table", p.Name)
	}
	if err := p.Efficiency.Validate(); err != nil {
		return fmt.Errorf("platform %s: %w", p.Name, err)
	}
	return nil
}

// ComponentTDP returns the summed worst-case component draw: CPU TDP,
// every GPU at TDP, DDR fully active, and the peripheral draw.
func (p Platform) ComponentTDP() float64 {
	return p.CPU.TDP + float64(p.GPUsPerNode)*p.GPU.TDP +
		p.Node.MemActiveWatts + p.Node.PeripheralWatts
}

// PerlmutterA100 returns the studied platform: the 40 GB GPU nodes of
// Perlmutter ("This work uses only the 40 GB GPU-accelerated nodes",
// §II-A). This is the only calibrated platform; its numbers reproduce
// the paper's published reference points.
func PerlmutterA100() Platform {
	return Platform{
		Name:        "perlmutter-a100",
		Description: "Perlmutter GPU node: EPYC 7763 + 4x A100-SXM4-40GB, node TDP 2350 W (the paper's platform)",
		Calibrated:  true,
		GPU:         gpu.A100SXM40GB(),
		Efficiency:  gpu.DefaultEfficiency(),
		CPU:         cpu.EPYC7763(),
		Node: NodeSpec{
			TDP:             2350,
			MemIdleWatts:    22,
			MemActiveWatts:  52,
			PeripheralWatts: 150,
		},
		GPUsPerNode: 4,
		Variability: DefaultVariability(),
	}
}

// extrapolatedEfficiency returns an uncalibrated platform's own copy
// of the A100 response surface: same shape, separately named and
// separately editable. Extrapolated platforms used to inherit the
// A100 efficiency constants implicitly (they were baked into the
// kernel builders); owning a table makes them something you can
// actually calibrate — edit the Clone, and the table hash in the
// measurement cache keys takes care of stale results.
func extrapolatedEfficiency(name string) *gpu.EfficiencyModel {
	m := gpu.DefaultEfficiency()
	m.Name = name
	return m
}

// A10080GB500W returns an extrapolated platform built around the
// 500 W SXM variant of the 80 GB A100 (the envelope NVIDIA ships in
// HGX "Delta" boards): same silicon as the studied part, HBM2e
// bandwidth and capacity, and a raised power ceiling that lets the SMs
// hold boost clocks a 400 W board must back off from.
func A10080GB500W() Platform {
	g := gpu.A100SXM80GB()
	g.Name = "A100-SXM4-80GB-500W"
	g.TDP = 500
	// The extra 100 W of envelope is SM headroom; HBM power is set by
	// the memory system, not the limit.
	g.CompPowerFull = 390
	g.IdleWatts = 56
	return Platform{
		Name:        "a100-80gb-500w",
		Description: "extrapolated HGX node: EPYC 7763 + 4x A100-SXM4-80GB at the 500 W envelope",
		GPU:         g,
		Efficiency:  extrapolatedEfficiency("a100-80gb-500w"),
		CPU:         cpu.EPYC7763(),
		Node: NodeSpec{
			TDP:             2800, // 280 + 4x500 + DDR/peripheral margin
			MemIdleWatts:    22,
			MemActiveWatts:  52,
			PeripheralWatts: 160,
		},
		GPUsPerNode: 4,
		Variability: DefaultVariability(),
	}
}

// H100SXM returns an extrapolated Hopper platform: FP64 tensor peak,
// HBM3 bandwidth, clocks, and the 700 W envelope scaled from NVIDIA's
// published H100-SXM5 numbers, with the power split between SMs and
// memory kept shape-faithful to the A100 calibration. The host is a
// Genoa-class EPYC. Not calibrated against measurements.
func H100SXM() Platform {
	return Platform{
		Name:        "h100-sxm",
		Description: "extrapolated Hopper node: EPYC 9454 + 4x H100-SXM5-80GB, 700 W boards",
		GPU: gpu.Spec{
			Name:          "H100-SXM5-80GB",
			TDP:           700,
			MinPowerLimit: 200, // nvidia-smi floor on SXM5 boards
			IdleWatts:     70,
			ActiveBase:    38,
			PeakFlops:     67e12, // FP64 via tensor cores
			PeakMemBW:     3.35e12,
			HBMBytes:      80 << 30,
			MaxClockMHz:   1980,
			MinClockFrac:  345.0 / 1980.0,
			CompPowerFull: 555,
			MemPowerFull:  145,
			Gamma:         0.18, // Hopper idles higher on the DVFS curve
		},
		Efficiency: extrapolatedEfficiency("h100-sxm"),
		CPU: cpu.Spec{
			Name:      "EPYC-9454",
			TDP:       290,
			IdleWatts: 90,
			Cores:     48,
			PeakFlops: 4.2e12, // 48 cores x 2.75 GHz x AVX-512 FMA
		},
		Node: NodeSpec{
			TDP:             3650, // 290 + 4x700 + DDR5/peripheral margin
			MemIdleWatts:    30,
			MemActiveWatts:  70,
			PeripheralWatts: 200,
		},
		GPUsPerNode: 4,
		Variability: DefaultVariability(),
	}
}
