package platform

import (
	"sort"
	"strings"
	"testing"
)

func TestDefaultIsThePaperPlatform(t *testing.T) {
	p := Default()
	if p.Name != DefaultName {
		t.Fatalf("default platform is %q, want %q", p.Name, DefaultName)
	}
	if !p.Calibrated {
		t.Fatal("the default platform must be the calibrated one")
	}
	// The paper's reference numbers (§II-A).
	if p.Node.TDP != 2350 || p.GPU.TDP != 400 || p.GPUsPerNode != 4 {
		t.Fatalf("perlmutter-a100 numbers drifted: %+v", p)
	}
}

func TestGetUnknownNameListsRegistered(t *testing.T) {
	_, err := Get("dgx-gh200")
	if err == nil {
		t.Fatal("unknown platform accepted")
	}
	// The error must be self-explaining: it names the typo and lists
	// every registered platform.
	msg := err.Error()
	if !strings.Contains(msg, "dgx-gh200") {
		t.Fatalf("error does not echo the requested name: %v", err)
	}
	for _, name := range List() {
		if !strings.Contains(msg, name) {
			t.Fatalf("error does not list registered platform %s: %v", name, err)
		}
	}
}

func TestListSortedAndDeterministic(t *testing.T) {
	names := List()
	if len(names) < 3 {
		t.Fatalf("expected at least 3 registered platforms, got %v", names)
	}
	if !sort.StringsAreSorted(names) {
		t.Fatalf("List() not sorted: %v", names)
	}
	for i := 0; i < 10; i++ {
		again := List()
		if len(again) != len(names) {
			t.Fatal("List() length unstable")
		}
		for k := range names {
			if again[k] != names[k] {
				t.Fatalf("List() order unstable: %v vs %v", names, again)
			}
		}
	}
}

func TestEveryRegisteredPlatformHoldsTDPBudget(t *testing.T) {
	for _, name := range List() {
		p, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// The budget invariant, stated directly: worst-case component
		// draw fits inside the facility-facing node TDP.
		if sum := p.ComponentTDP(); sum > p.Node.TDP {
			t.Fatalf("%s: component TDPs %.0f W exceed node TDP %.0f W", name, sum, p.Node.TDP)
		}
		// And the cap sweep must have room to move: the settable floor
		// sits strictly below the TDP on every platform.
		if p.GPU.MinPowerLimit >= p.GPU.TDP {
			t.Fatalf("%s: power-limit floor %.0f W at or above TDP %.0f W",
				name, p.GPU.MinPowerLimit, p.GPU.TDP)
		}
	}
}

func TestExactlyOneCalibratedPlatform(t *testing.T) {
	n := 0
	for _, name := range List() {
		p, _ := Get(name)
		if p.Calibrated {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("%d calibrated platforms; only the measured machine may claim calibration", n)
	}
}

func TestRegisterRejectsDuplicates(t *testing.T) {
	if err := Register(PerlmutterA100()); err == nil {
		t.Fatal("duplicate registration accepted")
	}
}

func TestRegisterRejectsInvalid(t *testing.T) {
	cases := map[string]func(p Platform) Platform{
		"empty name":       func(p Platform) Platform { p.Name = ""; return p },
		"zero gpus":        func(p Platform) Platform { p.GPUsPerNode = 0; return p },
		"no node tdp":      func(p Platform) Platform { p.Node.TDP = 0; return p },
		"budget violation": func(p Platform) Platform { p.Node.TDP = 1000; return p },
		"floor above tdp":  func(p Platform) Platform { p.GPU.MinPowerLimit = p.GPU.TDP + 1; return p },
	}
	for label, mutate := range cases {
		p := mutate(PerlmutterA100())
		p.Name += "-" + strings.ReplaceAll(label, " ", "-") // avoid duplicate-name rejection masking the real check
		if label == "empty name" {
			p.Name = ""
		}
		if err := Register(p); err == nil {
			t.Fatalf("%s: invalid platform accepted", label)
		}
	}
}

func TestOrDefault(t *testing.T) {
	if got := OrDefault(Platform{}); got.Name != DefaultName {
		t.Fatalf("zero value resolved to %q", got.Name)
	}
	h, err := Get("h100-sxm")
	if err != nil {
		t.Fatal(err)
	}
	if got := OrDefault(h); got.Name != "h100-sxm" {
		t.Fatalf("explicit platform overridden to %q", got.Name)
	}
}
