package platform

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// DefaultName is the platform the paper measured; it is what every
// layer falls back to when no platform is specified.
const DefaultName = "perlmutter-a100"

var (
	regMu    sync.RWMutex
	registry = map[string]Platform{}
)

func init() {
	for _, p := range []Platform{PerlmutterA100(), A10080GB500W(), H100SXM()} {
		if err := Register(p); err != nil {
			panic(err)
		}
	}
}

// Register validates and adds a platform to the registry. Duplicate
// names are rejected — a platform's numbers must have one owner.
func Register(p Platform) error {
	if err := p.Validate(); err != nil {
		return err
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[p.Name]; dup {
		return fmt.Errorf("platform: %q already registered", p.Name)
	}
	registry[p.Name] = p
	return nil
}

// Get returns the platform registered under name. The error lists the
// registered names, so a mistyped -platform flag is self-explaining.
func Get(name string) (Platform, error) {
	regMu.RLock()
	p, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return Platform{}, fmt.Errorf("platform: unknown platform %q (registered: %s)",
			name, strings.Join(List(), ", "))
	}
	return p, nil
}

// Default returns the paper's platform, perlmutter-a100.
func Default() Platform {
	p, err := Get(DefaultName)
	if err != nil {
		panic(err) // the default is registered in init
	}
	return p
}

// List returns the registered platform names in sorted order, so help
// text and CI matrices are deterministic.
func List() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// OrDefault resolves a possibly-zero Platform value: specs whose
// platform field was left unset get the default machine. It lets
// option structs (RunSpec, MeasureSpec) treat the platform like every
// other defaulted field.
func OrDefault(p Platform) Platform {
	if p.Name == "" {
		return Default()
	}
	return p
}
