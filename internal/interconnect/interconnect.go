// Package interconnect models the communication fabric of a
// Perlmutter-like system for the purposes of VASP's parallel-scaling
// behavior: NVLink within a node and Slingshot NICs between nodes,
// with NCCL-style collective cost models.
//
// VASP's GPU port communicates through NCCL (§II-C); per SCF iteration
// the dominant collectives are all-reduces of the charge density and
// of subspace matrices. The time these take relative to compute is
// what produces the parallel-efficiency roll-off in Fig. 4 and the
// power droop at low efficiency in Figs. 5 and 8.
package interconnect

import (
	"fmt"
	"math"
)

// Fabric holds the link parameters.
type Fabric struct {
	Name string
	// IntraNodeBW is the per-GPU NVLink bandwidth within a node, B/s.
	IntraNodeBW float64
	// InterNodeBW is the per-GPU network bandwidth (one Cassini NIC
	// per GPU on Perlmutter), B/s.
	InterNodeBW float64
	// IntraLatency and InterLatency are per-hop latencies, seconds.
	IntraLatency float64
	InterLatency float64
	// SoftwareOverhead is the fixed per-collective CPU/NCCL launch
	// cost, seconds.
	SoftwareOverhead float64
}

// Slingshot returns the Perlmutter-like fabric: NVLink3 (~600 GB/s
// aggregate, ~250 GB/s usable per pair) inside the node, one 200 Gb/s
// Slingshot NIC per GPU between nodes.
func Slingshot() Fabric {
	return Fabric{
		Name:             "slingshot-cassini",
		IntraNodeBW:      250e9,
		InterNodeBW:      22e9, // ~200 Gb/s minus protocol overhead
		IntraLatency:     2e-6,
		InterLatency:     2.5e-6,
		SoftwareOverhead: 12e-6,
	}
}

// Validate checks fabric parameters.
func (f Fabric) Validate() error {
	if f.IntraNodeBW <= 0 || f.InterNodeBW <= 0 {
		return fmt.Errorf("interconnect: non-positive bandwidth in %q", f.Name)
	}
	if f.IntraLatency < 0 || f.InterLatency < 0 || f.SoftwareOverhead < 0 {
		return fmt.Errorf("interconnect: negative latency in %q", f.Name)
	}
	return nil
}

// Topology describes the ranks participating in a collective.
type Topology struct {
	Nodes        int // number of nodes
	RanksPerNode int // GPUs (ranks) per node, 4 on Perlmutter
}

// Ranks returns the total rank count.
func (t Topology) Ranks() int { return t.Nodes * t.RanksPerNode }

func (t Topology) validate() {
	if t.Nodes <= 0 || t.RanksPerNode <= 0 {
		panic(fmt.Sprintf("interconnect: invalid topology %+v", t))
	}
}

// bottleneckBW returns the per-rank bandwidth that governs a ring
// collective over the topology: intra-node when single-node, the NIC
// otherwise.
func (f Fabric) bottleneckBW(t Topology) float64 {
	if t.Nodes == 1 {
		return f.IntraNodeBW
	}
	return f.InterNodeBW
}

// hopLatency returns the per-step latency for a collective spanning
// the topology.
func (f Fabric) hopLatency(t Topology) float64 {
	if t.Nodes == 1 {
		return f.IntraLatency
	}
	return f.InterLatency
}

// AllReduce returns the wall time of an all-reduce of `bytes` bytes
// across the topology, using the standard ring model:
// 2·(P−1)/P · bytes / bw, plus log2(P) latency steps and the software
// overhead.
func (f Fabric) AllReduce(bytes float64, t Topology) float64 {
	t.validate()
	p := float64(t.Ranks())
	if p == 1 || bytes <= 0 {
		if bytes < 0 {
			panic("interconnect: negative bytes")
		}
		return f.SoftwareOverhead
	}
	bw := f.bottleneckBW(t)
	transfer := 2 * (p - 1) / p * bytes / bw
	latency := math.Log2(p) * f.hopLatency(t)
	return f.SoftwareOverhead + transfer + latency
}

// ReduceScatter returns the wall time of a reduce-scatter ((P−1)/P of
// the ring all-reduce transfer).
func (f Fabric) ReduceScatter(bytes float64, t Topology) float64 {
	t.validate()
	p := float64(t.Ranks())
	if p == 1 || bytes <= 0 {
		return f.SoftwareOverhead
	}
	bw := f.bottleneckBW(t)
	return f.SoftwareOverhead + (p-1)/p*bytes/bw + math.Log2(p)*f.hopLatency(t)
}

// AllToAll returns the wall time of an all-to-all where each rank
// sends `bytesPerRank` to every other rank (the band-redistribution
// pattern). Each rank injects (P−1)·bytesPerRank through its own link.
func (f Fabric) AllToAll(bytesPerRank float64, t Topology) float64 {
	t.validate()
	p := float64(t.Ranks())
	if p == 1 || bytesPerRank <= 0 {
		return f.SoftwareOverhead
	}
	bw := f.bottleneckBW(t)
	return f.SoftwareOverhead + (p-1)*bytesPerRank/bw + (p-1)*f.hopLatency(t)
}

// Broadcast returns the wall time of a binomial-tree broadcast.
func (f Fabric) Broadcast(bytes float64, t Topology) float64 {
	t.validate()
	p := float64(t.Ranks())
	if p == 1 || bytes <= 0 {
		return f.SoftwareOverhead
	}
	bw := f.bottleneckBW(t)
	steps := math.Ceil(math.Log2(p))
	return f.SoftwareOverhead + steps*(f.hopLatency(t)+bytes/bw)
}

// PointToPoint returns the wall time of one message between two ranks.
func (f Fabric) PointToPoint(bytes float64, sameNode bool) float64 {
	if bytes < 0 {
		panic("interconnect: negative bytes")
	}
	if sameNode {
		return f.SoftwareOverhead + f.IntraLatency + bytes/f.IntraNodeBW
	}
	return f.SoftwareOverhead + f.InterLatency + bytes/f.InterNodeBW
}
