package interconnect

import (
	"testing"
)

func topo(nodes int) Topology { return Topology{Nodes: nodes, RanksPerNode: 4} }

func TestFabricValidate(t *testing.T) {
	if err := Slingshot().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Fabric{Name: "bad"}
	if err := bad.Validate(); err == nil {
		t.Fatal("zero-bandwidth fabric accepted")
	}
	neg := Slingshot()
	neg.InterLatency = -1
	if err := neg.Validate(); err == nil {
		t.Fatal("negative latency accepted")
	}
}

func TestAllReduceSingleRankIsOverheadOnly(t *testing.T) {
	f := Slingshot()
	got := f.AllReduce(1e9, Topology{Nodes: 1, RanksPerNode: 1})
	if got != f.SoftwareOverhead {
		t.Fatalf("single-rank allreduce = %v, want overhead %v", got, f.SoftwareOverhead)
	}
}

func TestAllReduceGrowsWithNodes(t *testing.T) {
	f := Slingshot()
	prev := 0.0
	for _, n := range []int{1, 2, 4, 8, 16, 32} {
		got := f.AllReduce(100e6, topo(n))
		if got <= prev {
			t.Fatalf("allreduce time not increasing at %d nodes: %v <= %v", n, got, prev)
		}
		prev = got
	}
}

func TestIntraNodeMuchFasterThanInterNode(t *testing.T) {
	f := Slingshot()
	intra := f.AllReduce(1e9, topo(1))
	inter := f.AllReduce(1e9, topo(2))
	if inter < 5*intra {
		t.Fatalf("inter-node allreduce (%v) should be ≫ intra-node (%v)", inter, intra)
	}
}

func TestAllReduceRingAsymptote(t *testing.T) {
	// For large P the ring transfer term approaches 2·bytes/bw.
	f := Slingshot()
	bytes := 1e9
	got := f.AllReduce(bytes, topo(256))
	ideal := 2 * bytes / f.InterNodeBW
	if got < ideal*0.98 || got > ideal*1.2 {
		t.Fatalf("large-P allreduce = %v, want ≈ %v", got, ideal)
	}
}

func TestAllToAllScalesWithRanks(t *testing.T) {
	f := Slingshot()
	t4 := f.AllToAll(1e6, topo(1))
	t16 := f.AllToAll(1e6, topo(4))
	if t16 < 2*t4 {
		t.Fatalf("alltoall should grow with ranks: %v vs %v", t4, t16)
	}
}

func TestBroadcastLogScaling(t *testing.T) {
	f := Slingshot()
	// Broadcast grows ~log2(P): doubling nodes adds about one step.
	t8 := f.Broadcast(1e6, topo(8))
	t16 := f.Broadcast(1e6, topo(16))
	t32 := f.Broadcast(1e6, topo(32))
	d1 := t16 - t8
	d2 := t32 - t16
	if d1 <= 0 || d2 <= 0 {
		t.Fatal("broadcast not increasing")
	}
	if d2 > 2*d1+1e-9 {
		t.Fatalf("broadcast should grow ~log: increments %v then %v", d1, d2)
	}
}

func TestReduceScatterCheaperThanAllReduce(t *testing.T) {
	f := Slingshot()
	rs := f.ReduceScatter(1e8, topo(4))
	ar := f.AllReduce(1e8, topo(4))
	if rs >= ar {
		t.Fatalf("reduce-scatter (%v) should be cheaper than allreduce (%v)", rs, ar)
	}
}

func TestPointToPoint(t *testing.T) {
	f := Slingshot()
	same := f.PointToPoint(1e8, true)
	diff := f.PointToPoint(1e8, false)
	if same >= diff {
		t.Fatalf("intra-node p2p (%v) should beat inter-node (%v)", same, diff)
	}
}

func TestZeroBytesCollectives(t *testing.T) {
	f := Slingshot()
	for name, got := range map[string]float64{
		"allreduce":     f.AllReduce(0, topo(4)),
		"alltoall":      f.AllToAll(0, topo(4)),
		"broadcast":     f.Broadcast(0, topo(4)),
		"reducescatter": f.ReduceScatter(0, topo(4)),
	} {
		if got != f.SoftwareOverhead {
			t.Fatalf("%s with 0 bytes = %v, want overhead only", name, got)
		}
	}
}

func TestNegativeBytesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative bytes did not panic")
		}
	}()
	Slingshot().AllReduce(-1, topo(2))
}

func TestInvalidTopologyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid topology did not panic")
		}
	}()
	Slingshot().AllReduce(1, Topology{Nodes: 0, RanksPerNode: 4})
}
