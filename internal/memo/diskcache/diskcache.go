// Package diskcache is a persistent, content-addressed backing store
// for memo.Cache: the second tier that makes warm-start sweeps cheap.
// Every cap sweep, platform matrix, and figure regeneration re-runs
// the same expensive MeasureSpec simulations; the in-process memo tier
// dedups them within one run, and this package carries them across
// runs.
//
// Each entry is one file whose name is the SHA-256 of (epoch, key), so
// the directory needs no manifest and two processes writing the same
// key converge on the same file. Entries are written atomically
// (temp file + rename), carry a self-describing header (magic, format
// version, epoch, full key, payload length, payload checksum), and are
// verified in full on every read: corruption, truncation, an epoch or
// format bump, or a hash collision all fail verification and are
// treated as a miss — the offending file is quarantined (renamed aside
// for post-mortem) and a counter incremented, never returned as a
// value. A size-bounded LRU garbage collector prunes the directory
// after writes.
package diskcache

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"vasppower/internal/obs"
)

// Entry file format, little-endian, with no padding or trailing slack
// (decode rejects any file that is not byte-for-byte a canonical
// encoding):
//
//	magic "VPWC" | uint32 format version | uint32 epoch length | epoch
//	| uint32 key length | key | uint64 payload length
//	| 32-byte SHA-256 of payload | payload
const (
	magic = "VPWC"
	// FormatVersion is the container format version. Bump it when this
	// header layout changes; every existing entry then misses (and is
	// quarantined) instead of being misparsed.
	FormatVersion = 1

	entryExt = ".cache"
	quarExt  = ".quar"

	// tmpPrefix names in-progress atomic writes; Open sweeps any left
	// behind by a killed process.
	tmpPrefix = "tmp-"

	// maxHeaderStr bounds the epoch and key lengths a decoder will
	// accept, so a corrupt length field cannot drive a huge allocation.
	maxHeaderStr = 1 << 20
)

// Metrics is the store's observability hook, registered under a prefix
// (conventionally "diskcache") and surfaced in the run manifest. All
// fields are nil-safe no-ops by default.
type Metrics struct {
	Hits         *obs.Counter // entries served (verified) from disk
	Misses       *obs.Counter // absent entries
	Corrupt      *obs.Counter // failed verification → quarantined
	Evictions    *obs.Counter // entries removed by the LRU GC
	Errors       *obs.Counter // I/O errors on the write path (dropped Puts)
	BytesRead    *obs.Counter // file bytes read on hits
	BytesWritten *obs.Counter // file bytes written on Puts
}

// NewMetrics registers the store metric set under prefix in reg. A nil
// registry yields a usable all-no-op Metrics.
func NewMetrics(reg *obs.Registry, prefix string) *Metrics {
	return &Metrics{
		Hits:         reg.Counter(prefix + ".hits"),
		Misses:       reg.Counter(prefix + ".misses"),
		Corrupt:      reg.Counter(prefix + ".corrupt"),
		Evictions:    reg.Counter(prefix + ".evictions"),
		Errors:       reg.Counter(prefix + ".errors"),
		BytesRead:    reg.Counter(prefix + ".bytes_read"),
		BytesWritten: reg.Counter(prefix + ".bytes_written"),
	}
}

// Options configures Open.
type Options struct {
	// Dir is the cache directory; created if absent. Entries live in
	// 256 two-hex-character shard subdirectories, git-object style.
	Dir string
	// MaxBytes bounds the total size of live entry files; 0 means
	// unbounded. The LRU GC runs after every write and evicts
	// least-recently-used entries until the total is at or under the
	// bound.
	MaxBytes int64
	// Epoch is the caller's cache-format epoch: an opaque string mixed
	// into every entry's content address and verified in its header.
	// Bump it whenever the encoded value schema or the semantics of the
	// computation change; old entries then simply never match.
	Epoch string
}

// indexEntry is the in-memory record of one live entry file.
type indexEntry struct {
	size    int64
	lastUse int64 // logical LRU clock tick of the last hit or write
}

// Store is a directory-backed memo.Store. Safe for concurrent use
// within a process; across processes, atomic writes and full
// verification keep readers safe, while the size accounting is
// per-process (each process bounds what it has seen).
type Store struct {
	dir      string
	maxBytes int64
	epoch    string
	metrics  atomic.Pointer[Metrics]

	mu    sync.Mutex
	index map[string]*indexEntry // entry name (hex digest) → state
	total int64                  // sum of live entry file sizes
	clock int64                  // logical LRU clock
}

// Open opens (creating if needed) the cache directory and scans
// existing entries into the in-memory LRU index, oldest first by file
// modification time. If the scanned total already exceeds MaxBytes the
// GC runs immediately.
func Open(opts Options) (*Store, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("diskcache: empty cache directory")
	}
	if err := os.MkdirAll(opts.Dir, 0o777); err != nil {
		return nil, fmt.Errorf("diskcache: %w", err)
	}
	s := &Store{
		dir:      opts.Dir,
		maxBytes: opts.MaxBytes,
		epoch:    opts.Epoch,
		index:    make(map[string]*indexEntry),
	}
	s.metrics.Store(&Metrics{})
	type scanned struct {
		name string
		size int64
		mod  int64
	}
	var found []scanned
	err := filepath.WalkDir(opts.Dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			// A vanished or unreadable file is not an open failure.
			return nil
		}
		if strings.HasPrefix(d.Name(), tmpPrefix) {
			// A process killed mid-write leaves an orphaned temp file
			// the rename never published. Sweep it: a cancelled sweep
			// must not accumulate partial entries on disk. (Entries
			// themselves are never partial — writes are rename-atomic.)
			os.Remove(path)
			return nil
		}
		if !strings.HasSuffix(d.Name(), entryExt) {
			return nil
		}
		info, ierr := d.Info()
		if ierr != nil {
			return nil
		}
		name := strings.TrimSuffix(d.Name(), entryExt)
		found = append(found, scanned{name: name, size: info.Size(), mod: info.ModTime().UnixNano()})
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("diskcache: scanning %s: %w", opts.Dir, err)
	}
	sort.Slice(found, func(i, j int) bool {
		if found[i].mod != found[j].mod {
			return found[i].mod < found[j].mod
		}
		return found[i].name < found[j].name
	})
	for _, f := range found {
		s.clock++
		s.index[f.name] = &indexEntry{size: f.size, lastUse: s.clock}
		s.total += f.size
	}
	s.mu.Lock()
	s.gcLocked(s.metrics.Load())
	s.mu.Unlock()
	return s, nil
}

// Instrument attaches (or, with nil, detaches) metrics. The store
// always holds a non-nil Metrics whose individual counters are nil-safe
// no-ops when detached.
func (s *Store) Instrument(m *Metrics) {
	if m == nil {
		m = &Metrics{}
	}
	s.metrics.Store(m)
}

// Dir returns the cache directory.
func (s *Store) Dir() string { return s.dir }

// entryName is the content address of key under the store's epoch.
func (s *Store) entryName(key string) string {
	h := sha256.New()
	h.Write([]byte(s.epoch))
	h.Write([]byte{0})
	h.Write([]byte(key))
	return hex.EncodeToString(h.Sum(nil))
}

// entryPath shards entries across 256 subdirectories by the digest's
// first byte so no single directory grows unboundedly.
func (s *Store) entryPath(name string) string {
	return filepath.Join(s.dir, name[:2], name+entryExt)
}

// encodeEntry builds the canonical file bytes for (epoch, key, payload).
func encodeEntry(epoch, key string, payload []byte) []byte {
	sum := sha256.Sum256(payload)
	buf := make([]byte, 0, len(magic)+4+4+len(epoch)+4+len(key)+8+len(sum)+len(payload))
	buf = append(buf, magic...)
	buf = binary.LittleEndian.AppendUint32(buf, FormatVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(epoch)))
	buf = append(buf, epoch...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(key)))
	buf = append(buf, key...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(payload)))
	buf = append(buf, sum[:]...)
	buf = append(buf, payload...)
	return buf
}

// decodeEntry verifies raw as a canonical entry for (epoch, key) and
// returns its payload. Every failure mode — short file, wrong magic or
// version, epoch or key mismatch (including hash collisions), length
// mismatch, trailing bytes, checksum mismatch — returns an error.
func decodeEntry(raw []byte, epoch, key string) ([]byte, error) {
	r := raw
	take := func(n int) ([]byte, error) {
		if n < 0 || len(r) < n {
			return nil, fmt.Errorf("diskcache: truncated entry (%d bytes short)", n-len(r))
		}
		b := r[:n]
		r = r[n:]
		return b, nil
	}
	m, err := take(len(magic))
	if err != nil {
		return nil, err
	}
	if string(m) != magic {
		return nil, fmt.Errorf("diskcache: bad magic %q", m)
	}
	vb, err := take(4)
	if err != nil {
		return nil, err
	}
	if v := binary.LittleEndian.Uint32(vb); v != FormatVersion {
		return nil, fmt.Errorf("diskcache: format version %d, want %d", v, FormatVersion)
	}
	readStr := func(what, want string) error {
		lb, err := take(4)
		if err != nil {
			return err
		}
		n := binary.LittleEndian.Uint32(lb)
		if n > maxHeaderStr {
			return fmt.Errorf("diskcache: %s length %d exceeds limit", what, n)
		}
		sb, err := take(int(n))
		if err != nil {
			return err
		}
		if string(sb) != want {
			return fmt.Errorf("diskcache: %s mismatch", what)
		}
		return nil
	}
	if err := readStr("epoch", epoch); err != nil {
		return nil, err
	}
	if err := readStr("key", key); err != nil {
		return nil, err
	}
	lb, err := take(8)
	if err != nil {
		return nil, err
	}
	plen := binary.LittleEndian.Uint64(lb)
	sumb, err := take(sha256.Size)
	if err != nil {
		return nil, err
	}
	if uint64(len(r)) != plen {
		return nil, fmt.Errorf("diskcache: payload is %d bytes, header says %d", len(r), plen)
	}
	payload := r
	if sum := sha256.Sum256(payload); !bytes.Equal(sum[:], sumb) {
		return nil, fmt.Errorf("diskcache: payload checksum mismatch")
	}
	return payload, nil
}

// Get returns the verified payload stored for key. Any file that fails
// verification is quarantined and reported as a miss — a corrupt entry
// is never returned as a value.
func (s *Store) Get(key string) ([]byte, bool) {
	name := s.entryName(key)
	path := s.entryPath(name)
	m := s.metrics.Load()
	s.mu.Lock()
	defer s.mu.Unlock()
	raw, err := os.ReadFile(path)
	if err != nil {
		m.Misses.Add(1)
		return nil, false
	}
	payload, err := decodeEntry(raw, s.epoch, key)
	if err != nil {
		s.quarantineLocked(name, m)
		m.Corrupt.Add(1)
		m.Misses.Add(1)
		return nil, false
	}
	m.Hits.Add(1)
	m.BytesRead.Add(int64(len(raw)))
	s.touchLocked(name, int64(len(raw)))
	// Best-effort mtime bump so a future process's scan rebuilds the
	// same recency order this process observed.
	now := time.Now()
	_ = os.Chtimes(path, now, now)
	return payload, true
}

// Put stores data under key, atomically (temp file + rename) so a
// crash or a concurrent reader never observes a partial entry, then
// runs the LRU GC. Best-effort: I/O failures drop the write and count
// an error.
func (s *Store) Put(key string, data []byte) {
	name := s.entryName(key)
	path := s.entryPath(name)
	entry := encodeEntry(s.epoch, key, data)
	m := s.metrics.Load()
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.writeAtomic(path, entry); err != nil {
		m.Errors.Add(1)
		return
	}
	m.BytesWritten.Add(int64(len(entry)))
	s.touchLocked(name, int64(len(entry)))
	s.gcLocked(m)
}

// writeAtomic writes data to path via a same-directory temp file and
// rename, so the entry appears all-at-once or not at all.
func (s *Store) writeAtomic(path string, data []byte) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), tmpPrefix+"*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// touchLocked records (or refreshes) an entry in the LRU index.
func (s *Store) touchLocked(name string, size int64) {
	s.clock++
	if e, ok := s.index[name]; ok {
		s.total += size - e.size
		e.size = size
		e.lastUse = s.clock
		return
	}
	s.index[name] = &indexEntry{size: size, lastUse: s.clock}
	s.total += size
}

// dropLocked forgets an entry without touching the file.
func (s *Store) dropLocked(name string) {
	if e, ok := s.index[name]; ok {
		s.total -= e.size
		delete(s.index, name)
	}
}

// quarantineLocked moves a failed entry aside (same shard directory,
// ".quar" suffix) so it stops matching lookups but survives for
// post-mortem; if even the rename fails the file is removed.
func (s *Store) quarantineLocked(name string, m *Metrics) {
	path := s.entryPath(name)
	if err := os.Rename(path, path+quarExt); err != nil {
		if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
			m.Errors.Add(1)
		}
	}
	s.dropLocked(name)
}

// MarkCorrupt implements memo.CorruptMarker: the cache's codec failed
// to decode bytes this store handed back (corruption below the
// checksum's sight is impossible, but a codec/schema mismatch within
// one epoch is not), so quarantine the entry and count it.
func (s *Store) MarkCorrupt(key string) {
	m := s.metrics.Load()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.quarantineLocked(s.entryName(key), m)
	m.Corrupt.Add(1)
}

// gcLocked evicts least-recently-used entries until the live total is
// at or under MaxBytes (when bounded).
func (s *Store) gcLocked(m *Metrics) {
	if s.maxBytes <= 0 {
		return
	}
	for s.total > s.maxBytes && len(s.index) > 0 {
		oldest, oldestUse := "", int64(0)
		for name, e := range s.index {
			if oldest == "" || e.lastUse < oldestUse {
				oldest, oldestUse = name, e.lastUse
			}
		}
		if err := os.Remove(s.entryPath(oldest)); err != nil && !os.IsNotExist(err) {
			m.Errors.Add(1)
		}
		s.dropLocked(oldest)
		m.Evictions.Add(1)
	}
}

// Len reports the number of live entries this process knows about.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// TotalBytes reports the live entry bytes this process knows about.
func (s *Store) TotalBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// Clear removes every entry and quarantined file under the cache
// directory and resets the index.
func (s *Store) Clear() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	err := filepath.WalkDir(s.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			// A vanished file is already cleared.
			return nil
		}
		if strings.HasSuffix(d.Name(), entryExt) || strings.HasSuffix(d.Name(), quarExt) {
			if rerr := os.Remove(path); rerr != nil && first == nil {
				first = rerr
			}
		}
		return nil
	})
	if err != nil && first == nil {
		first = err
	}
	s.index = make(map[string]*indexEntry)
	s.total = 0
	return first
}
