package diskcache

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"vasppower/internal/memo"
	"vasppower/internal/obs"
)

func mustOpen(t *testing.T, opts Options) *Store {
	t.Helper()
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// entryFile returns the on-disk path of key's entry.
func entryFile(s *Store, key string) string { return s.entryPath(s.entryName(key)) }

func TestRoundTripAndPersistence(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Options{Dir: dir, Epoch: "e1"})
	payload := []byte("the measured profile bytes")
	s.Put("spec-key", payload)
	got, ok := s.Get("spec-key")
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Get = %q, %v", got, ok)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.TotalBytes() <= int64(len(payload)) {
		t.Fatalf("TotalBytes = %d, want > payload (header included)", s.TotalBytes())
	}

	// A second store on the same directory — a later process — serves
	// the same entry.
	s2 := mustOpen(t, Options{Dir: dir, Epoch: "e1"})
	if s2.Len() != 1 {
		t.Fatalf("reopened Len = %d", s2.Len())
	}
	got, ok = s2.Get("spec-key")
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("reopened Get = %q, %v", got, ok)
	}
}

func TestAbsentKeyMisses(t *testing.T) {
	s := mustOpen(t, Options{Dir: t.TempDir(), Epoch: "e1"})
	if _, ok := s.Get("never-stored"); ok {
		t.Fatal("hit on an absent key")
	}
}

// TestEpochChangeMisses: a new epoch addresses different files, so old
// entries never match — the epoch-bump invalidation path.
func TestEpochChangeMisses(t *testing.T) {
	dir := t.TempDir()
	s1 := mustOpen(t, Options{Dir: dir, Epoch: "v1"})
	s1.Put("k", []byte("old-schema"))
	s2 := mustOpen(t, Options{Dir: dir, Epoch: "v2"})
	if _, ok := s2.Get("k"); ok {
		t.Fatal("entry from epoch v1 served under epoch v2")
	}
	// And the old entry is untouched (it would still serve a rollback).
	if got, ok := s1.Get("k"); !ok || string(got) != "old-schema" {
		t.Fatalf("v1 entry lost: %q, %v", got, ok)
	}
}

// TestHeaderEpochVerified plants an entry encoded under another epoch
// at the path a different epoch's key addresses (what a hash collision
// or a renamed file would look like): the header check must reject it.
func TestHeaderEpochVerified(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Options{Dir: dir, Epoch: "good"})
	path := entryFile(s, "k")
	if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, encodeEntry("evil", "k", []byte("x")), 0o666); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("k"); ok {
		t.Fatal("entry with mismatched header epoch served")
	}
	assertQuarantined(t, path)
}

// TestHeaderKeyVerified plants a valid entry for another key at this
// key's path; the embedded key must be verified.
func TestHeaderKeyVerified(t *testing.T) {
	s := mustOpen(t, Options{Dir: t.TempDir(), Epoch: "e"})
	path := entryFile(s, "k")
	if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, encodeEntry("e", "other-key", []byte("x")), 0o666); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("k"); ok {
		t.Fatal("entry with mismatched embedded key served")
	}
}

// TestVersionMismatchQuarantined bumps the on-disk format version
// field: the entry must miss and be quarantined, not misparsed.
func TestVersionMismatchQuarantined(t *testing.T) {
	s := mustOpen(t, Options{Dir: t.TempDir(), Epoch: "e"})
	s.Put("k", []byte("payload"))
	path := entryFile(s, "k")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[4]++ // first byte of the little-endian version field
	if err := os.WriteFile(path, raw, 0o666); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("k"); ok {
		t.Fatal("future-version entry served")
	}
	assertQuarantined(t, path)
}

func assertQuarantined(t *testing.T, path string) {
	t.Helper()
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("corrupt entry still live at %s (err %v)", path, err)
	}
	if _, err := os.Stat(path + quarExt); err != nil {
		t.Fatalf("no quarantine file: %v", err)
	}
}

// TestEveryTruncationDetected is the differential corruption sweep:
// every proper prefix of a valid entry file must be detected as
// corrupt — a miss, never a value.
func TestEveryTruncationDetected(t *testing.T) {
	reg := obs.NewRegistry()
	s := mustOpen(t, Options{Dir: t.TempDir(), Epoch: "epoch-1"})
	s.Instrument(NewMetrics(reg, "dc"))
	payload := []byte("truncation sweep payload: 0123456789abcdef")
	s.Put("k", payload)
	path := entryFile(s, "k")
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(full); n++ {
		if err := os.WriteFile(path, full[:n], 0o666); err != nil {
			t.Fatal(err)
		}
		if got, ok := s.Get("k"); ok {
			t.Fatalf("truncation to %d/%d bytes served a value: %q", n, len(full), got)
		}
		if _, err := os.Stat(path); !os.IsNotExist(err) {
			t.Fatalf("truncated entry (%d bytes) not quarantined", n)
		}
	}
	snap := reg.Snapshot()
	if got := snap.Counters["dc.corrupt"]; got != int64(len(full)) {
		t.Fatalf("corrupt counter = %d, want %d (one per truncation)", got, len(full))
	}
	if snap.Counters["dc.hits"] != 0 {
		t.Fatal("a truncated entry counted as a hit")
	}
}

// TestOrphanTempFilesSweptOnOpen: a process killed mid-write (a
// cancelled sweep, a crash) leaves a tmp-* file the atomic rename
// never published. Open must delete it without indexing it, and the
// published entries around it stay intact.
func TestOrphanTempFilesSweptOnOpen(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Options{Dir: dir, Epoch: "e1"})
	payload := []byte("published entry")
	s.Put("k", payload)
	shard := filepath.Dir(entryFile(s, "k"))
	orphans := []string{
		filepath.Join(shard, "tmp-123456"),
		filepath.Join(dir, "tmp-789"),
	}
	for _, p := range orphans {
		if err := os.WriteFile(p, []byte("partial write"), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	s2 := mustOpen(t, Options{Dir: dir, Epoch: "e1"})
	for _, p := range orphans {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Fatalf("orphan %s survived Open (err %v)", p, err)
		}
	}
	if s2.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (orphans must not be indexed)", s2.Len())
	}
	if got, ok := s2.Get("k"); !ok || !bytes.Equal(got, payload) {
		t.Fatalf("published entry damaged by sweep: %q, %v", got, ok)
	}
}

// TestEveryByteFlipDetected flips one bit in every byte position of a
// valid entry: each flip must miss (the checksum, structure, or header
// verification catches it), never return a wrong value.
func TestEveryByteFlipDetected(t *testing.T) {
	s := mustOpen(t, Options{Dir: t.TempDir(), Epoch: "epoch-1"})
	payload := []byte("bit flip sweep payload: the quick brown fox")
	s.Put("k", payload)
	path := entryFile(s, "k")
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(full); i++ {
		mut := append([]byte(nil), full...)
		mut[i] ^= byte(1 << (i % 8))
		if err := os.WriteFile(path, mut, 0o666); err != nil {
			t.Fatal(err)
		}
		if got, ok := s.Get("k"); ok {
			t.Fatalf("flip at byte %d/%d served a value: %q", i, len(full), got)
		}
	}
	// Restore the pristine bytes: the entry must serve again (the
	// detector rejects corruption, not the format).
	if err := os.WriteFile(path, full, 0o666); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get("k"); !ok || !bytes.Equal(got, payload) {
		t.Fatalf("pristine entry no longer serves: %q, %v", got, ok)
	}
}

// FuzzEntryDecode feeds arbitrary bytes to the entry decoder. The
// property: decoding never panics, and any accepted input is exactly
// the canonical encoding of its payload — there is no non-canonical
// byte string the decoder will vouch for.
func FuzzEntryDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(encodeEntry("e", "k", []byte("payload")))
	f.Add(encodeEntry("e", "k", nil))
	f.Add([]byte(magic))
	f.Fuzz(func(t *testing.T, raw []byte) {
		payload, err := decodeEntry(raw, "e", "k")
		if err != nil {
			return
		}
		if canon := encodeEntry("e", "k", payload); !bytes.Equal(canon, raw) {
			t.Fatalf("decoder accepted non-canonical bytes:\n raw:  %x\n canon:%x", raw, canon)
		}
	})
}

// TestLRUGC fills past the byte bound and checks the oldest entries
// are evicted, recently-used entries survive, and the total stays at
// or under the bound.
func TestLRUGC(t *testing.T) {
	reg := obs.NewRegistry()
	// Entry overhead: header + 64-hex key; payloads of 1000 bytes
	// dominate. Budget for roughly three entries.
	payload := bytes.Repeat([]byte("x"), 1000)
	probe := encodeEntry("e", "key-0", payload)
	maxBytes := int64(3*len(probe) + len(probe)/2)
	s := mustOpen(t, Options{Dir: t.TempDir(), MaxBytes: maxBytes, Epoch: "e"})
	s.Instrument(NewMetrics(reg, "dc"))

	for i := 0; i < 6; i++ {
		s.Put(fmt.Sprintf("key-%d", i), payload)
		// Keep key-0 hot so recency, not insertion order, decides.
		if i >= 1 {
			if _, ok := s.Get("key-0"); !ok {
				t.Fatalf("hot key-0 evicted after insert %d", i)
			}
		}
	}
	if got := s.TotalBytes(); got > maxBytes {
		t.Fatalf("TotalBytes = %d > bound %d after GC", got, maxBytes)
	}
	if _, ok := s.Get("key-0"); !ok {
		t.Fatal("most-recently-used entry evicted")
	}
	if _, ok := s.Get("key-5"); !ok {
		t.Fatal("newest entry evicted")
	}
	if _, ok := s.Get("key-1"); ok {
		t.Fatal("coldest entry survived GC")
	}
	if ev := reg.Snapshot().Counters["dc.evictions"]; ev == 0 {
		t.Fatal("evictions counter = 0")
	}
	// The bound also holds against the filesystem, not just the index.
	var onDisk int64
	filepath.Walk(s.Dir(), func(_ string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() && strings.HasSuffix(info.Name(), entryExt) {
			onDisk += info.Size()
		}
		return nil
	})
	if onDisk > maxBytes {
		t.Fatalf("on-disk bytes %d > bound %d", onDisk, maxBytes)
	}
}

// TestOversizeSingleEntryEvicted: one entry above the bound is itself
// evicted — the bound holds even when nothing else can be freed.
func TestOversizeSingleEntryEvicted(t *testing.T) {
	s := mustOpen(t, Options{Dir: t.TempDir(), MaxBytes: 64, Epoch: "e"})
	s.Put("big", bytes.Repeat([]byte("y"), 4096))
	if got := s.TotalBytes(); got > 64 {
		t.Fatalf("TotalBytes = %d > bound", got)
	}
	if s.Len() != 0 {
		t.Fatalf("oversize entry retained (Len = %d)", s.Len())
	}
}

func TestClearRemovesEntriesAndQuarantine(t *testing.T) {
	s := mustOpen(t, Options{Dir: t.TempDir(), Epoch: "e"})
	s.Put("a", []byte("1"))
	s.Put("b", []byte("2"))
	// Corrupt one so a quarantine file exists too.
	path := entryFile(s, "a")
	if err := os.WriteFile(path, []byte("garbage"), 0o666); err != nil {
		t.Fatal(err)
	}
	s.Get("a")
	if err := s.Clear(); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 || s.TotalBytes() != 0 {
		t.Fatalf("after Clear: Len=%d TotalBytes=%d", s.Len(), s.TotalBytes())
	}
	filepath.Walk(s.Dir(), func(p string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() {
			t.Fatalf("file survived Clear: %s", p)
		}
		return nil
	})
	if _, ok := s.Get("b"); ok {
		t.Fatal("entry served after Clear")
	}
}

// TestMetricsCounters pins the disk tier's counter ledger across a
// miss, a write, a hit, and a corruption — the set the run manifest
// reports.
func TestMetricsCounters(t *testing.T) {
	reg := obs.NewRegistry()
	s := mustOpen(t, Options{Dir: t.TempDir(), Epoch: "e"})
	s.Instrument(NewMetrics(reg, "diskcache"))

	s.Get("k") // miss
	payload := []byte("metrics payload")
	s.Put("k", payload) // write
	s.Get("k")          // hit
	path := entryFile(s, "k")
	raw, _ := os.ReadFile(path)
	raw[len(raw)-1] ^= 0xff
	os.WriteFile(path, raw, 0o666)
	s.Get("k") // corrupt → quarantined miss

	c := reg.Snapshot().Counters
	if c["diskcache.hits"] != 1 || c["diskcache.misses"] != 2 || c["diskcache.corrupt"] != 1 {
		t.Fatalf("hit/miss/corrupt = %d/%d/%d, want 1/2/1",
			c["diskcache.hits"], c["diskcache.misses"], c["diskcache.corrupt"])
	}
	if c["diskcache.bytes_written"] <= int64(len(payload)) {
		t.Fatalf("bytes_written = %d, want > payload size", c["diskcache.bytes_written"])
	}
	if c["diskcache.bytes_read"] != c["diskcache.bytes_written"] {
		t.Fatalf("bytes_read = %d, want %d (one full read of one full write)",
			c["diskcache.bytes_read"], c["diskcache.bytes_written"])
	}
	if c["diskcache.errors"] != 0 {
		t.Fatalf("errors = %d", c["diskcache.errors"])
	}
}

// TestConcurrentWarmSameKey is the tentpole's concurrency contract:
// two goroutines warming the same key through a memo.Cache backed by
// the disk tier share one computation (singleflight spans both tiers),
// and a second cache — a fresh process — then serves the key from disk
// without computing at all.
func TestConcurrentWarmSameKey(t *testing.T) {
	dir := t.TempDir()
	st := mustOpen(t, Options{Dir: dir, Epoch: "e"})
	codec := memo.Codec[string]{
		Encode: func(s string) ([]byte, error) { return []byte(s), nil },
		Decode: func(b []byte) (string, error) { return string(b), nil },
	}

	c1 := memo.New[string]()
	c1.SetStore(st, codec)
	var computes atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := c1.Do(context.Background(), "shared", func() (string, error) {
				computes.Add(1)
				return "value", nil
			})
			if err != nil || v != "value" {
				t.Errorf("Do = %q, %v", v, err)
			}
		}()
	}
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Fatalf("compute ran %d times for one key", n)
	}

	// Fresh memory tier, same directory: disk serves, compute never runs.
	c2 := memo.New[string]()
	c2.SetStore(mustOpen(t, Options{Dir: dir, Epoch: "e"}), codec)
	v, err := c2.Do(context.Background(), "shared", func() (string, error) {
		t.Error("compute ran despite a warm disk entry")
		return "", nil
	})
	if err != nil || v != "value" {
		t.Fatalf("warm Do = %q, %v", v, err)
	}
}

// TestConcurrentStoreStress hammers one store from many goroutines
// with overlapping keys, reads, writes, and clears; under -race this
// is the store's thread-safety proof.
func TestConcurrentStoreStress(t *testing.T) {
	s := mustOpen(t, Options{Dir: t.TempDir(), MaxBytes: 1 << 16, Epoch: "e"})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				key := fmt.Sprintf("key-%d", (g+i)%13)
				want := []byte(key + "-payload")
				switch {
				case i%29 == 28:
					s.Clear()
				default:
					s.Put(key, want)
					if got, ok := s.Get(key); ok && !bytes.Equal(got, want) {
						t.Errorf("Get(%s) = %q, want %q", key, got, want)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}
