// Package memo provides a sharded, singleflight-deduplicated
// memoization cache. It replaces the single-mutex measurement map the
// experiment runners used to share: under the parallel measurement
// engine many goroutines miss on the same key at once, and without
// deduplication each of them would redo the same (expensive)
// simulation — or serialize on one global lock while doing so.
//
// Keys are strings; values are computed at most once per key while the
// computation's result remains cached. Shards keep unrelated keys from
// contending on one mutex; the per-key in-flight entry makes
// concurrent misses on the *same* key compute once, with every waiter
// receiving the single result.
package memo

import (
	"context"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"vasppower/internal/obs"
)

// shardCount bounds lock contention. Power of two, sized well above
// any plausible worker count.
const shardCount = 32

// Metrics is the cache's observability hook. Every Do call counts one
// Lookup and exactly one of Hits or Misses (so hits+misses == lookups
// always holds); Dedups counts the subset of hits that arrived while
// the flight was still computing, and WaitMS records how long those
// deduplicated callers blocked. A nil *Metrics (the default) costs one
// atomic pointer load per Do.
type Metrics struct {
	Lookups *obs.Counter
	Hits    *obs.Counter
	Misses  *obs.Counter
	Dedups  *obs.Counter
	WaitMS  *obs.Histogram
}

// waitBucketsMS bounds the dedup wait-time histogram: computations
// range from sub-millisecond trimmed runs to multi-second sweeps.
var waitBucketsMS = []float64{0.1, 1, 10, 100, 1000, 10000}

// NewMetrics registers the cache metric set under prefix (e.g. "memo")
// in reg. A nil registry yields a usable all-no-op Metrics.
func NewMetrics(reg *obs.Registry, prefix string) *Metrics {
	return &Metrics{
		Lookups: reg.Counter(prefix + ".lookups"),
		Hits:    reg.Counter(prefix + ".hits"),
		Misses:  reg.Counter(prefix + ".misses"),
		Dedups:  reg.Counter(prefix + ".dedups"),
		WaitMS:  reg.Histogram(prefix+".wait_ms", waitBucketsMS),
	}
}

// Cache is a sharded singleflight memoization cache, optionally backed
// by a persistent second tier (SetStore): lookups go memory → store →
// compute, with computed values written back down. The zero value is
// not usable; call New.
type Cache[V any] struct {
	shards  [shardCount]shard[V]
	metrics atomic.Pointer[Metrics]
	backing atomic.Pointer[backing[V]]
}

type shard[V any] struct {
	mu      sync.Mutex
	entries map[string]*entry[V]
}

// entry is one key's slot. done is closed exactly once, after val/err
// are set; waiters read them only after observing the close.
type entry[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// New returns an empty cache.
func New[V any]() *Cache[V] {
	c := &Cache[V]{}
	for i := range c.shards {
		c.shards[i].entries = make(map[string]*entry[V])
	}
	return c
}

// Instrument attaches (or, with nil, detaches) metrics. Counting
// starts with the next Do; in-flight calls keep the recorder they
// loaded at entry.
func (c *Cache[V]) Instrument(m *Metrics) { c.metrics.Store(m) }

func (c *Cache[V]) shard(key string) *shard[V] {
	h := fnv.New32a()
	h.Write([]byte(key))
	return &c.shards[h.Sum32()%shardCount]
}

// Do returns the cached value for key, computing it with compute on
// the first call. Concurrent calls for the same key share one
// computation: exactly one caller runs compute, the rest block until
// it finishes (or their context is canceled) and receive the same
// result. Failed computations are not cached — the error is delivered
// to every caller of that flight, and the next call retries — matching
// the retry semantics of the serial cache this replaces.
//
// With a backing store attached (SetStore), a memory miss first
// consults the store; a store hit skips compute entirely and is
// promoted into the memory tier, and a computed value is written back
// to the store. Singleflight covers both tiers: the per-key flight is
// claimed before the store is consulted, so concurrent misses share
// one store read or one computation, never both.
func (c *Cache[V]) Do(ctx context.Context, key string, compute func() (V, error)) (V, error) {
	m := c.metrics.Load()
	s := c.shard(key)
	s.mu.Lock()
	if e, ok := s.entries[key]; ok {
		s.mu.Unlock()
		if m != nil {
			m.Lookups.Add(1)
			m.Hits.Add(1)
			select {
			case <-e.done: // completed entry: a plain hit, no wait
				return e.val, e.err
			default:
			}
			// In-flight entry: this caller is deduplicated onto the
			// running computation; time how long it blocks.
			m.Dedups.Add(1)
			start := time.Now()
			defer func() { m.WaitMS.Observe(float64(time.Since(start)) / 1e6) }()
		}
		select {
		case <-e.done:
			return e.val, e.err
		case <-ctx.Done():
			var zero V
			return zero, ctx.Err()
		}
	}
	e := &entry[V]{done: make(chan struct{})}
	s.entries[key] = e
	s.mu.Unlock()
	if m != nil {
		m.Lookups.Add(1)
		m.Misses.Add(1)
	}

	if v, ok := c.storeGet(key); ok {
		e.val = v
	} else {
		e.val, e.err = compute()
		if e.err == nil {
			c.storePut(key, e.val)
		}
	}
	if e.err != nil {
		s.mu.Lock()
		// Only evict our own entry: a concurrent Reset may have already
		// replaced the map (or a later flight may occupy the slot).
		if cur, ok := s.entries[key]; ok && cur == e {
			delete(s.entries, key)
		}
		s.mu.Unlock()
	}
	close(e.done)
	return e.val, e.err
}

// Get returns the cached value for key without computing, and whether
// a completed value was present.
func (c *Cache[V]) Get(key string) (V, bool) {
	s := c.shard(key)
	s.mu.Lock()
	e, ok := s.entries[key]
	s.mu.Unlock()
	if !ok {
		return *new(V), false
	}
	select {
	case <-e.done:
		if e.err != nil {
			return *new(V), false
		}
		return e.val, true
	default: // still computing
		return *new(V), false
	}
}

// Len returns the number of cached (or in-flight) keys in the memory
// tier only; a backing store's entry count is StoreLen. The two are
// deliberately not summed — keys present in both tiers would be
// double-counted, and the memory tier is the one that bounds live heap.
func (c *Cache[V]) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.entries)
		s.mu.Unlock()
	}
	return n
}

// Reset drops every cached entry in the memory tier only — a backing
// store keeps its entries, so the next Do on a previously computed key
// is a store hit, not a recomputation. Use ResetAll to clear both
// tiers. In-flight computations complete and deliver their result to
// waiters but are not re-cached in memory (their store write-back
// still lands).
func (c *Cache[V]) Reset() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.entries = make(map[string]*entry[V])
		s.mu.Unlock()
	}
}
