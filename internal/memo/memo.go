// Package memo provides a sharded, singleflight-deduplicated
// memoization cache. It replaces the single-mutex measurement map the
// experiment runners used to share: under the parallel measurement
// engine many goroutines miss on the same key at once, and without
// deduplication each of them would redo the same (expensive)
// simulation — or serialize on one global lock while doing so.
//
// Keys are strings; values are computed at most once per key while the
// computation's result remains cached. Shards keep unrelated keys from
// contending on one mutex; the per-key in-flight entry makes
// concurrent misses on the *same* key compute once, with every waiter
// receiving the single result.
package memo

import (
	"context"
	"hash/fnv"
	"sync"
)

// shardCount bounds lock contention. Power of two, sized well above
// any plausible worker count.
const shardCount = 32

// Cache is a sharded singleflight memoization cache. The zero value is
// not usable; call New.
type Cache[V any] struct {
	shards [shardCount]shard[V]
}

type shard[V any] struct {
	mu      sync.Mutex
	entries map[string]*entry[V]
}

// entry is one key's slot. done is closed exactly once, after val/err
// are set; waiters read them only after observing the close.
type entry[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// New returns an empty cache.
func New[V any]() *Cache[V] {
	c := &Cache[V]{}
	for i := range c.shards {
		c.shards[i].entries = make(map[string]*entry[V])
	}
	return c
}

func (c *Cache[V]) shard(key string) *shard[V] {
	h := fnv.New32a()
	h.Write([]byte(key))
	return &c.shards[h.Sum32()%shardCount]
}

// Do returns the cached value for key, computing it with compute on
// the first call. Concurrent calls for the same key share one
// computation: exactly one caller runs compute, the rest block until
// it finishes (or their context is canceled) and receive the same
// result. Failed computations are not cached — the error is delivered
// to every caller of that flight, and the next call retries — matching
// the retry semantics of the serial cache this replaces.
func (c *Cache[V]) Do(ctx context.Context, key string, compute func() (V, error)) (V, error) {
	s := c.shard(key)
	s.mu.Lock()
	if e, ok := s.entries[key]; ok {
		s.mu.Unlock()
		select {
		case <-e.done:
			return e.val, e.err
		case <-ctx.Done():
			var zero V
			return zero, ctx.Err()
		}
	}
	e := &entry[V]{done: make(chan struct{})}
	s.entries[key] = e
	s.mu.Unlock()

	e.val, e.err = compute()
	if e.err != nil {
		s.mu.Lock()
		// Only evict our own entry: a concurrent Reset may have already
		// replaced the map (or a later flight may occupy the slot).
		if cur, ok := s.entries[key]; ok && cur == e {
			delete(s.entries, key)
		}
		s.mu.Unlock()
	}
	close(e.done)
	return e.val, e.err
}

// Get returns the cached value for key without computing, and whether
// a completed value was present.
func (c *Cache[V]) Get(key string) (V, bool) {
	s := c.shard(key)
	s.mu.Lock()
	e, ok := s.entries[key]
	s.mu.Unlock()
	if !ok {
		return *new(V), false
	}
	select {
	case <-e.done:
		if e.err != nil {
			return *new(V), false
		}
		return e.val, true
	default: // still computing
		return *new(V), false
	}
}

// Len returns the number of cached (or in-flight) keys.
func (c *Cache[V]) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.entries)
		s.mu.Unlock()
	}
	return n
}

// Reset drops every cached entry. In-flight computations complete and
// deliver their result to waiters but are not re-cached.
func (c *Cache[V]) Reset() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.entries = make(map[string]*entry[V])
		s.mu.Unlock()
	}
}
