package memo

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestDoComputesOnceAndCaches(t *testing.T) {
	c := New[int]()
	calls := 0
	for i := 0; i < 3; i++ {
		v, err := c.Do(context.Background(), "k", func() (int, error) {
			calls++
			return 7, nil
		})
		if err != nil || v != 7 {
			t.Fatalf("Do = %d, %v", v, err)
		}
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times", calls)
	}
	if v, ok := c.Get("k"); !ok || v != 7 {
		t.Fatalf("Get = %d, %v", v, ok)
	}
	if _, ok := c.Get("absent"); ok {
		t.Fatal("Get hit on an absent key")
	}
}

func TestDoDistinctKeysDistinctValues(t *testing.T) {
	c := New[string]()
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("key-%d", i)
		v, err := c.Do(context.Background(), key, func() (string, error) {
			return key + "!", nil
		})
		if err != nil || v != key+"!" {
			t.Fatalf("Do(%s) = %q, %v", key, v, err)
		}
	}
	if c.Len() != 100 {
		t.Fatalf("Len = %d", c.Len())
	}
	c.Reset()
	if c.Len() != 0 {
		t.Fatalf("Len after Reset = %d", c.Len())
	}
}

func TestDoErrorNotCached(t *testing.T) {
	c := New[int]()
	boom := errors.New("boom")
	calls := 0
	_, err := c.Do(context.Background(), "k", func() (int, error) {
		calls++
		return 0, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if _, ok := c.Get("k"); ok {
		t.Fatal("failed computation was cached")
	}
	v, err := c.Do(context.Background(), "k", func() (int, error) {
		calls++
		return 9, nil
	})
	if err != nil || v != 9 {
		t.Fatalf("retry = %d, %v", v, err)
	}
	if calls != 2 {
		t.Fatalf("compute ran %d times", calls)
	}
}

// TestDoSingleflight verifies concurrent misses on one key share a
// single computation: the compute function blocks until every waiter
// has joined the flight, proving they all waited on it.
func TestDoSingleflight(t *testing.T) {
	c := New[int]()
	const waiters = 16
	var (
		calls   atomic.Int32
		joined  sync.WaitGroup
		release = make(chan struct{})
	)
	joined.Add(waiters)
	go func() {
		joined.Wait()
		close(release)
	}()
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			joined.Done()
			v, err := c.Do(context.Background(), "shared", func() (int, error) {
				calls.Add(1)
				<-release // hold the flight open until all goroutines are in Do
				return 42, nil
			})
			if err != nil || v != 42 {
				t.Errorf("Do = %d, %v", v, err)
			}
		}()
	}
	wg.Wait()
	if n := calls.Load(); n != 1 {
		t.Fatalf("compute ran %d times for one key", n)
	}
}

func TestDoWaiterHonorsContext(t *testing.T) {
	c := New[int]()
	entered := make(chan struct{})
	release := make(chan struct{})
	go func() {
		c.Do(context.Background(), "k", func() (int, error) {
			close(entered)
			<-release
			return 1, nil
		})
	}()
	<-entered
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := c.Do(ctx, "k", func() (int, error) { return 2, nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("waiter err = %v", err)
	}
	close(release)
}

// TestCacheStress hammers the cache from many goroutines with
// overlapping keys, mixed successes and failures, and concurrent
// Resets. Run under -race this is the cache's thread-safety proof.
func TestCacheStress(t *testing.T) {
	c := New[int]()
	var wg sync.WaitGroup
	const goroutines = 32
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("key-%d", i%17)
				want := (i % 17) * 3
				if i%50 == 49 {
					c.Reset()
					continue
				}
				if i%13 == 12 {
					// A failing flight must never poison the key.
					c.Do(context.Background(), key, func() (int, error) {
						return 0, errors.New("transient")
					})
					continue
				}
				v, err := c.Do(context.Background(), key, func() (int, error) {
					return want, nil
				})
				if err != nil || v != want {
					t.Errorf("g%d i%d: Do(%s) = %d, %v (want %d)", g, i, key, v, err, want)
					return
				}
				c.Get(key)
				c.Len()
			}
		}(g)
	}
	wg.Wait()
}
