package memo

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"vasppower/internal/obs"
)

// TestMetricsSingleflightDedup pins the singleflight accounting: N
// goroutines racing a cold key produce exactly 1 compute (a miss) and
// N-1 dedups, and every call is a lookup. The compute blocks until the
// dedup counter itself reports that all other callers have arrived, so
// the dedup path is exercised deterministically, not probabilistically.
func TestMetricsSingleflightDedup(t *testing.T) {
	const n = 16
	c := New[int]()
	reg := obs.NewRegistry()
	m := NewMetrics(reg, "memo")
	c.Instrument(m)

	computes := 0
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := c.Do(context.Background(), "k", func() (int, error) {
				computes++ // race detector proves single execution
				deadline := time.Now().Add(5 * time.Second)
				for m.Dedups.Value() < n-1 {
					if time.Now().After(deadline) {
						break // let the test's assertions report the shortfall
					}
					time.Sleep(50 * time.Microsecond)
				}
				return 7, nil
			})
			if err != nil || v != 7 {
				t.Errorf("Do = %d, %v", v, err)
			}
		}()
	}
	wg.Wait()

	if computes != 1 {
		t.Fatalf("compute ran %d times, want 1", computes)
	}
	if got := m.Lookups.Value(); got != n {
		t.Fatalf("lookups = %d, want %d", got, n)
	}
	if got := m.Dedups.Value(); got != n-1 {
		t.Fatalf("dedups = %d, want %d", got, n-1)
	}
	if m.Misses.Value() != 1 || m.Hits.Value() != n-1 {
		t.Fatalf("misses = %d, hits = %d, want 1 and %d", m.Misses.Value(), m.Hits.Value(), n-1)
	}
	if m.WaitMS.Count() != n-1 {
		t.Fatalf("wait_ms observations = %d, want %d", m.WaitMS.Count(), n-1)
	}

	// Warm key: all hits, no dedups.
	for i := 0; i < 3; i++ {
		if _, err := c.Do(context.Background(), "k", func() (int, error) {
			t.Error("recompute of cached key")
			return 0, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if m.Hits.Value() != n-1+3 || m.Dedups.Value() != n-1 {
		t.Fatalf("warm hits = %d, dedups = %d", m.Hits.Value(), m.Dedups.Value())
	}
}

// TestMetricsInvariantUnderStress hammers many goroutines over a small
// key space (maximizing hit/miss/dedup interleavings) and asserts the
// ledger balances: hits + misses == lookups == number of Do calls.
func TestMetricsInvariantUnderStress(t *testing.T) {
	c := New[string]()
	reg := obs.NewRegistry()
	m := NewMetrics(reg, "memo")
	c.Instrument(m)

	const workers, perWorker, keys = 8, 200, 13
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				key := fmt.Sprintf("key%d", (w*perWorker+i)%keys)
				v, err := c.Do(context.Background(), key, func() (string, error) {
					return "v:" + key, nil
				})
				if err != nil || v != "v:"+key {
					t.Errorf("Do(%s) = %q, %v", key, v, err)
				}
			}
		}(w)
	}
	wg.Wait()

	total := int64(workers * perWorker)
	if m.Lookups.Value() != total {
		t.Fatalf("lookups = %d, want %d", m.Lookups.Value(), total)
	}
	if m.Hits.Value()+m.Misses.Value() != m.Lookups.Value() {
		t.Fatalf("hits(%d) + misses(%d) != lookups(%d)",
			m.Hits.Value(), m.Misses.Value(), m.Lookups.Value())
	}
	if m.Misses.Value() < keys {
		t.Fatalf("misses = %d, want >= %d (every key computes at least once)", m.Misses.Value(), keys)
	}
	if m.Dedups.Value() > m.Hits.Value() {
		t.Fatalf("dedups(%d) exceed hits(%d)", m.Dedups.Value(), m.Hits.Value())
	}
}

// TestUninstrumentedCacheCountsNothing guards the default: a cache
// that was never instrumented must work and record nothing.
func TestUninstrumentedCacheCountsNothing(t *testing.T) {
	c := New[int]()
	if _, err := c.Do(context.Background(), "k", func() (int, error) { return 1, nil }); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Do(context.Background(), "k", func() (int, error) { return 2, nil }); err != nil {
		t.Fatal(err)
	}
	c.Instrument(NewMetrics(nil, "memo")) // nil registry: all-no-op metrics
	if _, err := c.Do(context.Background(), "k", func() (int, error) { return 3, nil }); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkDoHit is the cache-hit hot path the observability layer
// must not slow down: compare against BenchmarkDoHitInstrumented.
func BenchmarkDoHit(b *testing.B) {
	c := New[int]()
	c.Do(context.Background(), "k", func() (int, error) { return 1, nil })
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Do(ctx, "k", func() (int, error) { return 0, nil })
	}
}

func BenchmarkDoHitInstrumented(b *testing.B) {
	c := New[int]()
	c.Instrument(NewMetrics(obs.NewRegistry(), "memo"))
	c.Do(context.Background(), "k", func() (int, error) { return 1, nil })
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Do(ctx, "k", func() (int, error) { return 0, nil })
	}
}
