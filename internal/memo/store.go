package memo

// Store is a byte-level second cache tier behind a Cache: a persistent
// backing store consulted on memory misses and written back to after
// computations. Implementations own their durability, integrity
// checking, and eviction policy (see memo/diskcache); from the Cache's
// side a Store is best-effort — a Get miss or a dropped Put only costs
// a recomputation, never correctness.
//
// Implementations must be safe for concurrent use. Get returns the
// stored bytes for key, or ok=false when the key is absent (or the
// entry failed the implementation's integrity checks). Put stores data
// under key, best-effort. Clear drops every entry. Len reports the
// number of stored entries.
type Store interface {
	Get(key string) (data []byte, ok bool)
	Put(key string, data []byte)
	Clear() error
	Len() int
}

// CorruptMarker is an optional Store extension: when the Cache's codec
// fails to decode bytes the Store handed back (corruption the Store's
// own integrity checks could not see), the Cache reports the key so
// the Store can quarantine the entry and count it.
type CorruptMarker interface {
	MarkCorrupt(key string)
}

// Codec converts cached values to and from a Store's byte format. Both
// functions must be inverses over valid values; Decode must reject
// (with an error) bytes it cannot faithfully decode rather than
// returning a partial value.
type Codec[V any] struct {
	Encode func(V) ([]byte, error)
	Decode func([]byte) (V, error)
}

// backing pairs a Store with the Codec that translates values for it;
// the Cache swaps the pair atomically so SetStore is safe mid-run.
type backing[V any] struct {
	store Store
	codec Codec[V]
}

// SetStore attaches a persistent second tier: Do lookups go
// memory → store → compute, with computed values encoded and written
// back to the store, and store hits promoted into the memory tier.
// Singleflight spans both tiers — concurrent misses on one key share a
// single store read (or computation). A nil store detaches the tier.
//
// Attach at startup: entries computed before the store was attached
// live only in memory and are not backfilled.
func (c *Cache[V]) SetStore(st Store, codec Codec[V]) {
	if st == nil {
		c.backing.Store(nil)
		return
	}
	c.backing.Store(&backing[V]{store: st, codec: codec})
}

// storeGet consults the backing store for key, decoding into a value.
// Decode failures are reported back to the store (quarantine) and
// treated as misses.
func (c *Cache[V]) storeGet(key string) (V, bool) {
	var zero V
	b := c.backing.Load()
	if b == nil {
		return zero, false
	}
	data, ok := b.store.Get(key)
	if !ok {
		return zero, false
	}
	v, err := b.codec.Decode(data)
	if err != nil {
		if m, ok := b.store.(CorruptMarker); ok {
			m.MarkCorrupt(key)
		}
		return zero, false
	}
	return v, true
}

// storePut writes a computed value down to the backing store,
// best-effort: encode failures drop the write (the value still serves
// from memory).
func (c *Cache[V]) storePut(key string, v V) {
	b := c.backing.Load()
	if b == nil {
		return
	}
	data, err := b.codec.Encode(v)
	if err != nil {
		return
	}
	b.store.Put(key, data)
}

// StoreLen reports the number of entries in the backing store (0 when
// no store is attached). The memory tier's count is Len.
func (c *Cache[V]) StoreLen() int {
	b := c.backing.Load()
	if b == nil {
		return 0
	}
	return b.store.Len()
}

// ResetAll drops every cached entry in both tiers: the memory maps
// (as Reset does) and the backing store's contents. It returns the
// store's Clear error, if any. Tests use it to force truly cold runs;
// Reset alone leaves the persistent tier warm.
func (c *Cache[V]) ResetAll() error {
	c.Reset()
	if b := c.backing.Load(); b != nil {
		return b.store.Clear()
	}
	return nil
}
