package memo

import (
	"context"
	"errors"
	"strconv"
	"sync"
	"testing"

	"vasppower/internal/obs"
)

// fakeStore is an in-memory Store with call accounting and a
// MarkCorrupt recorder, for exercising the Cache's tier logic without
// a filesystem.
type fakeStore struct {
	mu       sync.Mutex
	data     map[string][]byte
	gets     int
	puts     int
	corrupts []string
}

func newFakeStore() *fakeStore { return &fakeStore{data: make(map[string][]byte)} }

func (f *fakeStore) Get(key string) ([]byte, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.gets++
	d, ok := f.data[key]
	return d, ok
}

func (f *fakeStore) Put(key string, data []byte) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.puts++
	f.data[key] = append([]byte(nil), data...)
}

func (f *fakeStore) Clear() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.data = make(map[string][]byte)
	return nil
}

func (f *fakeStore) Len() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.data)
}

func (f *fakeStore) MarkCorrupt(key string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.corrupts = append(f.corrupts, key)
	delete(f.data, key)
}

func intCodec() Codec[int] {
	return Codec[int]{
		Encode: func(v int) ([]byte, error) { return []byte(strconv.Itoa(v)), nil },
		Decode: func(b []byte) (int, error) { return strconv.Atoi(string(b)) },
	}
}

func noCompute(t *testing.T) func() (int, error) {
	return func() (int, error) {
		t.Helper()
		t.Error("compute ran when a cached tier should have served")
		return 0, nil
	}
}

// TestTierOrder pins the lookup path: memory → store → compute, with
// write-back on compute and promotion on store hits.
func TestTierOrder(t *testing.T) {
	ctx := context.Background()
	st := newFakeStore()
	c := New[int]()
	c.SetStore(st, intCodec())

	// Cold: both tiers miss, compute runs, value written back to store.
	v, err := c.Do(ctx, "k", func() (int, error) { return 41, nil })
	if v != 41 || err != nil {
		t.Fatalf("cold Do = %d, %v", v, err)
	}
	if st.gets != 1 || st.puts != 1 {
		t.Fatalf("cold gets/puts = %d/%d, want 1/1", st.gets, st.puts)
	}

	// Memory hit: the store is not consulted.
	if v, _ := c.Do(ctx, "k", noCompute(t)); v != 41 {
		t.Fatalf("memory-hit Do = %d", v)
	}
	if st.gets != 1 {
		t.Fatalf("memory hit consulted the store (gets = %d)", st.gets)
	}

	// Store hit: fresh memory tier, same store. Compute must not run,
	// and the hit is promoted so the next Do skips the store too.
	c2 := New[int]()
	c2.SetStore(st, intCodec())
	if v, err := c2.Do(ctx, "k", noCompute(t)); v != 41 || err != nil {
		t.Fatalf("store-hit Do = %d, %v", v, err)
	}
	gets := st.gets
	if v, _ := c2.Do(ctx, "k", noCompute(t)); v != 41 {
		t.Fatalf("promoted Do = %d", v)
	}
	if st.gets != gets {
		t.Fatal("store consulted again after promotion into memory")
	}
}

// TestComputeErrorNotWrittenBack: failed computations stay out of both
// tiers, preserving the retry semantics.
func TestComputeErrorNotWrittenBack(t *testing.T) {
	ctx := context.Background()
	st := newFakeStore()
	c := New[int]()
	c.SetStore(st, intCodec())
	boom := errors.New("boom")
	if _, err := c.Do(ctx, "k", func() (int, error) { return 0, boom }); err != boom {
		t.Fatalf("err = %v", err)
	}
	if st.puts != 0 || st.Len() != 0 {
		t.Fatalf("failed computation written back (puts=%d len=%d)", st.puts, st.Len())
	}
	// The retry computes again and this time persists.
	if v, err := c.Do(ctx, "k", func() (int, error) { return 7, nil }); v != 7 || err != nil {
		t.Fatalf("retry Do = %d, %v", v, err)
	}
	if st.Len() != 1 {
		t.Fatal("successful retry not written back")
	}
}

// TestDecodeFailureQuarantinesAndRecomputes: bytes the codec cannot
// decode are reported to the store (MarkCorrupt) and treated as a miss
// — never surfaced as a value.
func TestDecodeFailureQuarantinesAndRecomputes(t *testing.T) {
	ctx := context.Background()
	st := newFakeStore()
	st.data["k"] = []byte("not-an-int")
	c := New[int]()
	c.SetStore(st, intCodec())
	v, err := c.Do(ctx, "k", func() (int, error) { return 5, nil })
	if v != 5 || err != nil {
		t.Fatalf("Do = %d, %v", v, err)
	}
	if len(st.corrupts) != 1 || st.corrupts[0] != "k" {
		t.Fatalf("MarkCorrupt calls = %v, want [k]", st.corrupts)
	}
	// The recomputed value replaced the corrupt bytes.
	if string(st.data["k"]) != "5" {
		t.Fatalf("store holds %q after recompute", st.data["k"])
	}
}

// TestResetSemantics: Reset clears memory only; ResetAll clears both
// tiers; StoreLen sees the store, Len the memory tier.
func TestResetSemantics(t *testing.T) {
	ctx := context.Background()
	st := newFakeStore()
	c := New[int]()
	c.SetStore(st, intCodec())
	c.Do(ctx, "k", func() (int, error) { return 1, nil })
	if c.Len() != 1 || c.StoreLen() != 1 {
		t.Fatalf("Len/StoreLen = %d/%d", c.Len(), c.StoreLen())
	}

	c.Reset()
	if c.Len() != 0 {
		t.Fatalf("Len after Reset = %d", c.Len())
	}
	if c.StoreLen() != 1 {
		t.Fatal("Reset cleared the persistent tier")
	}
	// The store still serves the key — a warm start.
	if v, _ := c.Do(ctx, "k", noCompute(t)); v != 1 {
		t.Fatalf("warm Do = %d", v)
	}

	if err := c.ResetAll(); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 0 || c.StoreLen() != 0 {
		t.Fatalf("Len/StoreLen after ResetAll = %d/%d", c.Len(), c.StoreLen())
	}
	// Truly cold now: compute runs again.
	ran := false
	c.Do(ctx, "k", func() (int, error) { ran = true; return 1, nil })
	if !ran {
		t.Fatal("compute did not run after ResetAll")
	}
}

// TestSetStoreNilDetaches: after detaching, lookups no longer consult
// or write the store, and StoreLen reports 0.
func TestSetStoreNilDetaches(t *testing.T) {
	ctx := context.Background()
	st := newFakeStore()
	st.data["k"] = []byte("9")
	c := New[int]()
	c.SetStore(st, intCodec())
	c.SetStore(nil, Codec[int]{})
	if c.StoreLen() != 0 {
		t.Fatalf("StoreLen after detach = %d", c.StoreLen())
	}
	v, _ := c.Do(ctx, "k", func() (int, error) { return 3, nil })
	if v != 3 {
		t.Fatalf("Do = %d, want computed 3 (store must be ignored)", v)
	}
	if st.gets != 0 || st.puts != 0 {
		t.Fatalf("detached store touched: gets=%d puts=%d", st.gets, st.puts)
	}
}

// TestMetricsWithStoreTier pins the manifest ledger with a store
// attached: a store hit is still a memory-tier miss, so
// hits+misses == lookups holds regardless of which tier served.
func TestMetricsWithStoreTier(t *testing.T) {
	ctx := context.Background()
	reg := obs.NewRegistry()
	st := newFakeStore()
	st.data["warm"] = []byte("2")
	c := New[int]()
	c.SetStore(st, intCodec())
	c.Instrument(NewMetrics(reg, "memo"))

	c.Do(ctx, "cold", func() (int, error) { return 1, nil }) // miss: computed
	c.Do(ctx, "warm", noCompute(t))                          // miss: store served
	c.Do(ctx, "cold", noCompute(t))                          // hit: memory
	c.Do(ctx, "warm", noCompute(t))                          // hit: memory (promoted)

	snap := reg.Snapshot().Counters
	if snap["memo.lookups"] != 4 || snap["memo.hits"] != 2 || snap["memo.misses"] != 2 {
		t.Fatalf("lookups/hits/misses = %d/%d/%d, want 4/2/2",
			snap["memo.lookups"], snap["memo.hits"], snap["memo.misses"])
	}
}
