package monitor_test

import (
	"reflect"
	"testing"

	"vasppower/internal/monitor"
	"vasppower/internal/timeseries"
	"vasppower/internal/workloads"
)

// droppedIndices recovers which nominal samples the ingest pipeline
// lost: every index of the lossless base series whose timestamp is
// missing from the surviving series.
func droppedIndices(full, kept timeseries.Series) []int {
	have := make(map[float64]bool, kept.Len())
	for _, t := range kept.Times {
		have[t] = true
	}
	var out []int
	for i, t := range full.Times {
		if !have[t] {
			out = append(out, i)
		}
	}
	return out
}

func sampleRun(t *testing.T, workers int) map[string]timeseries.Series {
	t.Helper()
	bench, ok := workloads.ByName("B.hR105_hse")
	if !ok {
		t.Fatal("benchmark missing")
	}
	out, err := workloads.Run(workloads.RunSpec{
		Bench:   bench,
		Nodes:   1,
		Repeats: 3,
		Seed:    11,
		Workers: workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := monitor.LDMSDefault()
	cfg.Seed = 5
	got, err := monitor.SampleNode(out.Nodes[0], cfg)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

// The drop process must be a pure function of (seed, node name, metric
// name): re-running the same seeded workload — serially or through an
// 8-wide worker pool — must lose exactly the same sample indices. A
// scheduler- or map-order-dependent draw sequence would break warm
// cache reuse and make every archived run irreproducible.
func TestSampleNodeDropDeterminism(t *testing.T) {
	serial := sampleRun(t, 1)
	again := sampleRun(t, 1)
	wide := sampleRun(t, 8)

	if !reflect.DeepEqual(serial, again) {
		t.Fatal("identical seeded runs sampled differently")
	}
	if !reflect.DeepEqual(serial, wide) {
		t.Fatal("worker count changed the sampled series")
	}

	// Cross-check at the drop-index level against the lossless base
	// series, so a failure reports which samples moved.
	bench, _ := workloads.ByName("B.hR105_hse")
	out, err := workloads.Run(workloads.RunSpec{Bench: bench, Nodes: 1, Repeats: 3, Seed: 11, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	n := out.Nodes[0]
	cfg := monitor.LDMSDefault()
	cfg.Seed = 5
	anyDropped := false
	for _, metric := range monitor.Metrics(n.NumGPUs()) {
		full := n.TotalTrace().Sample(cfg.Interval)
		switch metric {
		case monitor.MetricCPU:
			full = n.CPUTrace().Sample(cfg.Interval)
		case monitor.MetricMemory:
			full = n.MemTrace().Sample(cfg.Interval)
		default:
			for i := 0; i < n.NumGPUs(); i++ {
				if metric == monitor.GPUMetric(i) {
					full = n.GPUTrace(i).Sample(cfg.Interval)
				}
			}
		}
		a := droppedIndices(full, serial[metric])
		b := droppedIndices(full, wide[metric])
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: dropped indices differ: serial %v, workers:8 %v", metric, a, b)
		}
		if len(a) > 0 {
			anyDropped = true
		}
		if serial[metric].Len()+len(a) != full.Len() {
			t.Fatalf("%s: %d kept + %d dropped != %d nominal", metric, serial[metric].Len(), len(a), full.Len())
		}
	}
	if !anyDropped {
		t.Fatal("LDMS config dropped nothing; test has no teeth")
	}
}
