// Package monitor models the telemetry pipeline of §II-B: the Cray
// Power Monitoring counters exposed on every compute node, sampled by
// LDMS at a nominal 1-second interval and forwarded to the OMNI data
// store. The aggregate data rate forces samples to be dropped in
// flight, leaving an effective 2-second interval — both the nominal
// rate and the drop process are modeled, because Fig. 2's
// sampling-granularity study depends on them.
package monitor

import (
	"fmt"
	"math"

	"vasppower/internal/hw/node"
	"vasppower/internal/rng"
	"vasppower/internal/timeseries"
)

// Config describes one sampling pipeline.
type Config struct {
	// Interval is the nominal sampling interval in seconds.
	Interval float64
	// DropProb is the probability that any individual sample is lost
	// in the ingest pipeline (independently per sample).
	DropProb float64
	// Seed drives the drop process (ignored when DropProb is 0).
	Seed uint64
}

// LDMSDefault returns the production pipeline: 1 s nominal sampling
// with half the samples dropped — an effective 2 s interval, matching
// the paper's data.
func LDMSDefault() Config { return Config{Interval: 1.0, DropProb: 0.5, Seed: 1} }

// HighRate returns the 0.1 s lossless configuration used for the
// paper's sampling-rate study (Fig. 2).
func HighRate() Config { return Config{Interval: 0.1} }

// Validate checks the configuration. The comparisons are phrased so
// NaN fails them: NaN < x and NaN >= x are both false, so a naive
// `Interval <= 0` check waves NaN through.
func (c Config) Validate() error {
	if !(c.Interval > 0) || math.IsInf(c.Interval, 0) {
		return fmt.Errorf("monitor: interval %v, want finite > 0", c.Interval)
	}
	if math.IsNaN(c.DropProb) || c.DropProb < 0 || c.DropProb >= 1 {
		return fmt.Errorf("monitor: drop probability %v out of [0,1)", c.DropProb)
	}
	return nil
}

// EffectiveInterval returns the expected spacing between surviving
// samples.
func (c Config) EffectiveInterval() float64 {
	return c.Interval / (1 - c.DropProb)
}

// Sample reads one power trace through the pipeline: window-averaged
// at the nominal interval (the PM counters accumulate energy between
// polls, so each sample is the true mean over its window), then
// subjected to the drop process.
func Sample(tr *timeseries.Trace, cfg Config) (timeseries.Series, error) {
	if err := cfg.Validate(); err != nil {
		return timeseries.Series{}, err
	}
	s := tr.Sample(cfg.Interval)
	if cfg.DropProb > 0 {
		r := rng.New(cfg.Seed)
		s = s.Drop(func(i int) bool { return !r.Bool(cfg.DropProb) })
	}
	return s, nil
}

// Component metric names, matching the Cray PM counter layout.
const (
	MetricNode   = "node"
	MetricCPU    = "cpu"
	MetricMemory = "memory"
	MetricGPU0   = "gpu0"
	MetricGPU1   = "gpu1"
	MetricGPU2   = "gpu2"
	MetricGPU3   = "gpu3"
)

// Metrics lists all per-node metric names for a node carrying the
// given number of GPUs.
func Metrics(gpus int) []string {
	out := []string{MetricNode, MetricCPU, MetricMemory}
	for i := 0; i < gpus; i++ {
		out = append(out, GPUMetric(i))
	}
	return out
}

// GPUMetric returns the metric name for GPU i.
func GPUMetric(i int) string {
	if i < 0 {
		panic(fmt.Sprintf("monitor: gpu index %d", i))
	}
	return fmt.Sprintf("gpu%d", i)
}

// SampleNode reads all of a node's sensors through the pipeline,
// returning series keyed by metric name. Distinct metrics use
// decorrelated drop streams (drops are per-sampler in LDMS), derived
// from the node name so re-sampling is reproducible.
//
// Metrics are read in the deterministic Metrics(n.NumGPUs()) order —
// not Go's randomized map order — so telemetry emitted while sampling
// (spans, timeseries.* counters) appears in a stable order across
// runs. The results themselves were always order-independent: each
// metric's drop stream is derived by label, not by draw order.
func SampleNode(n *node.Node, cfg Config) (map[string]timeseries.Series, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	traces := map[string]*timeseries.Trace{
		MetricNode:   n.TotalTrace(),
		MetricCPU:    n.CPUTrace(),
		MetricMemory: n.MemTrace(),
	}
	for i := 0; i < n.NumGPUs(); i++ {
		traces[GPUMetric(i)] = n.GPUTrace(i)
	}
	out := make(map[string]timeseries.Series, len(traces))
	root := rng.New(cfg.Seed).Split(n.Name)
	for _, metric := range Metrics(n.NumGPUs()) {
		c := cfg
		if c.DropProb > 0 {
			c.Seed = root.Split(metric).Uint64()
		}
		s, err := Sample(traces[metric], c)
		if err != nil {
			return nil, err
		}
		out[metric] = s
	}
	return out, nil
}
