package monitor

import (
	"math"
	"testing"

	"vasppower/internal/hw/node"
	"vasppower/internal/hw/platform"
	"vasppower/internal/rng"
	"vasppower/internal/timeseries"
)

func constantTrace(dur, power float64) *timeseries.Trace {
	tr := &timeseries.Trace{}
	tr.Append(dur, power)
	return tr
}

func TestConfigValidate(t *testing.T) {
	if err := LDMSDefault().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := HighRate().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Interval: 0},
		{Interval: -1},
		{Interval: 1, DropProb: -0.1},
		{Interval: 1, DropProb: 1},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("config %+v accepted", c)
		}
	}
}

func TestEffectiveInterval(t *testing.T) {
	// Nominal 1 s with 50% drops → effective 2 s, as the paper reports.
	if got := LDMSDefault().EffectiveInterval(); math.Abs(got-2) > 1e-9 {
		t.Fatalf("effective interval = %v, want 2", got)
	}
	if got := HighRate().EffectiveInterval(); math.Abs(got-0.1) > 1e-9 {
		t.Fatalf("high-rate effective interval = %v", got)
	}
}

func TestSampleNoDrops(t *testing.T) {
	s, err := Sample(constantTrace(100, 250), Config{Interval: 1})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 100 {
		t.Fatalf("samples = %d, want 100", s.Len())
	}
	for _, v := range s.Values {
		if v != 250 {
			t.Fatalf("sample = %v, want 250", v)
		}
	}
}

func TestSampleDropRate(t *testing.T) {
	s, err := Sample(constantTrace(10000, 100), LDMSDefault())
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(s.Len()) / 10000
	if frac < 0.45 || frac > 0.55 {
		t.Fatalf("survival fraction %v, want ≈ 0.5", frac)
	}
	// Median spacing ≈ effective interval.
	if iv := s.Interval(); iv < 1 || iv > 3 {
		t.Fatalf("effective spacing %v implausible", iv)
	}
}

func TestSampleDropsDeterministic(t *testing.T) {
	cfg := Config{Interval: 1, DropProb: 0.5, Seed: 7}
	a, _ := Sample(constantTrace(1000, 100), cfg)
	b, _ := Sample(constantTrace(1000, 100), cfg)
	if a.Len() != b.Len() {
		t.Fatal("same seed produced different drops")
	}
	cfg.Seed = 8
	c, _ := Sample(constantTrace(1000, 100), cfg)
	if c.Len() == a.Len() {
		// Lengths can coincide; compare timestamps.
		same := true
		for i := range a.Times {
			if i >= c.Len() || a.Times[i] != c.Times[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical drop patterns")
		}
	}
}

func TestSampleInvalidConfig(t *testing.T) {
	if _, err := Sample(constantTrace(10, 1), Config{}); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestSampleNode(t *testing.T) {
	n := node.New("nid000001", platform.Default(), rng.New(1).Split("n"))
	n.RecordIdle(50)
	out, err := SampleNode(n, Config{Interval: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3+n.NumGPUs() {
		t.Fatalf("expected %d metrics, got %d", 3+n.NumGPUs(), len(out))
	}
	for _, m := range Metrics(n.NumGPUs()) {
		s, ok := out[m]
		if !ok {
			t.Fatalf("metric %s missing", m)
		}
		if s.Len() != 25 {
			t.Fatalf("metric %s has %d samples, want 25", m, s.Len())
		}
	}
	// Node metric exceeds the sum of CPU alone (peripherals included).
	if out[MetricNode].Mean() <= out[MetricCPU].Mean() {
		t.Fatal("node power should exceed CPU power")
	}
}

func TestSampleNodeDropsDiffer(t *testing.T) {
	n := node.New("nid000001", platform.Default(), nil)
	n.RecordIdle(2000)
	out, err := SampleNode(n, LDMSDefault())
	if err != nil {
		t.Fatal(err)
	}
	// GPU0 and GPU1 should not share an identical drop pattern.
	a, b := out[MetricGPU0], out[MetricGPU1]
	if a.Len() == b.Len() {
		same := true
		for i := range a.Times {
			if a.Times[i] != b.Times[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("metrics share identical drop patterns")
		}
	}
}

func TestGPUMetric(t *testing.T) {
	if GPUMetric(2) != "gpu2" {
		t.Fatal("GPUMetric wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("bad index did not panic")
		}
	}()
	GPUMetric(-1)
}

func TestSampleEmptyTrace(t *testing.T) {
	s, err := Sample(&timeseries.Trace{}, Config{Interval: 1})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 {
		t.Fatal("empty trace produced samples")
	}
}

func TestSampleNodeInvalidConfig(t *testing.T) {
	n := node.New("nid1", platform.Default(), nil)
	if _, err := SampleNode(n, Config{}); err == nil {
		t.Fatal("invalid config accepted")
	}
}
