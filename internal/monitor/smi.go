package monitor

import (
	"fmt"
	"math"

	"vasppower/internal/timeseries"
)

// SMIConfig models nvidia-smi's sampling pathologies, following
// "Part-time Power Measurements: nvidia-smi's Lack of Attention": the
// driver refreshes an internal power register on its own fixed clock,
// and a client poll does not measure anything — it reads back the
// register's last value, however stale. Three pathologies fall out:
//
//   - point sampling: each register refresh is an instantaneous (or
//     briefly averaged) reading, not an energy-accumulating window
//     like the Cray PM counters, so power excursions between
//     refreshes are invisible (transient miss);
//   - reading age: a poll at time t returns the refresh at or before
//     t, so values are up to UpdateInterval stale;
//   - aliasing: when the poll clock and the update clock are
//     incommensurate, the reading age beats against the poll period
//     and periodic workload structure folds into spurious frequencies.
type SMIConfig struct {
	// PollInterval is the client's query spacing in seconds (how often
	// nvidia-smi is invoked).
	PollInterval float64
	// UpdateInterval is the driver's internal register refresh period
	// in seconds.
	UpdateInterval float64
	// AveragingWindow is the span the driver averages over when
	// refreshing the register; 0 is a pure point sample. (On Ampere
	// boards the reading is close to instantaneous; later generations
	// average a short window.)
	AveragingWindow float64
	// Phase offsets the update clock relative to the trace origin,
	// in [0, UpdateInterval) — two identical runs polled by identical
	// clients can still read different values because the driver's
	// clock started at a different phase.
	Phase float64
}

// SMIDefault returns an A100-like configuration: 1 s client polls of a
// register refreshed every 100 ms with (near-)instantaneous readings.
func SMIDefault() SMIConfig { return SMIConfig{PollInterval: 1.0, UpdateInterval: 0.1} }

// Validate checks the configuration, rejecting non-finite values with
// the same NaN-proof phrasing as Config.Validate.
func (c SMIConfig) Validate() error {
	if !(c.PollInterval > 0) || math.IsInf(c.PollInterval, 0) {
		return fmt.Errorf("monitor: smi poll interval %v, want finite > 0", c.PollInterval)
	}
	if !(c.UpdateInterval > 0) || math.IsInf(c.UpdateInterval, 0) {
		return fmt.Errorf("monitor: smi update interval %v, want finite > 0", c.UpdateInterval)
	}
	if !(c.AveragingWindow >= 0) || math.IsInf(c.AveragingWindow, 0) {
		return fmt.Errorf("monitor: smi averaging window %v, want finite >= 0", c.AveragingWindow)
	}
	if !(c.Phase >= 0) || !(c.Phase < c.UpdateInterval) {
		return fmt.Errorf("monitor: smi phase %v out of [0, update interval %v)", c.Phase, c.UpdateInterval)
	}
	return nil
}

// SampleSMI reads a power trace the way polling nvidia-smi does. The
// driver's register holds the reading taken at the most recent update
// tick u_k = Phase + k·UpdateInterval; a client poll at t_j =
// j·PollInterval returns that register value, timestamped t_j (the
// client cannot see the reading's true age). Update ticks before the
// trace begins read the trace's initial power.
func SampleSMI(tr *timeseries.Trace, cfg SMIConfig) (timeseries.Series, error) {
	if err := cfg.Validate(); err != nil {
		return timeseries.Series{}, err
	}
	dur := tr.Duration()
	n := int((dur + 1e-9) / cfg.PollInterval)
	if n < 0 {
		n = 0
	}
	s := timeseries.Series{
		Times:  make([]float64, 0, n),
		Values: make([]float64, 0, n),
	}
	for j := 1; float64(j)*cfg.PollInterval <= dur+1e-9; j++ {
		t := float64(j) * cfg.PollInterval
		// Latest update tick at or before the poll.
		k := math.Floor((t - cfg.Phase) / cfg.UpdateInterval)
		u := cfg.Phase + k*cfg.UpdateInterval
		if u < 0 {
			u = 0
		}
		if u > dur {
			u = dur
		}
		var v float64
		if cfg.AveragingWindow > 0 {
			a := u - cfg.AveragingWindow
			if a < 0 {
				a = 0
			}
			v = tr.MeanBetween(a, u)
		} else {
			// Point sample: nudge inside the trace so a tick landing
			// exactly on a segment boundary reads the segment that just
			// ended, matching a register latched "at" that instant.
			v = tr.PowerAt(math.Min(u, dur) - 1e-12)
		}
		s.Times = append(s.Times, t)
		s.Values = append(s.Values, v)
	}
	return s, nil
}
