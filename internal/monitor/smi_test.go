package monitor

import (
	"math"
	"testing"

	"vasppower/internal/timeseries"
)

func TestConfigValidateNonFinite(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	bad := []Config{
		{Interval: nan},
		{Interval: inf},
		{Interval: 1, DropProb: nan},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("non-finite config %+v accepted", c)
		}
	}
}

func TestSMIConfigValidate(t *testing.T) {
	if err := SMIDefault().Validate(); err != nil {
		t.Fatal(err)
	}
	nan, inf := math.NaN(), math.Inf(1)
	bad := []SMIConfig{
		{},
		{PollInterval: 1},
		{PollInterval: -1, UpdateInterval: 0.1},
		{PollInterval: nan, UpdateInterval: 0.1},
		{PollInterval: inf, UpdateInterval: 0.1},
		{PollInterval: 1, UpdateInterval: nan},
		{PollInterval: 1, UpdateInterval: inf},
		{PollInterval: 1, UpdateInterval: 0.1, AveragingWindow: -0.1},
		{PollInterval: 1, UpdateInterval: 0.1, AveragingWindow: nan},
		{PollInterval: 1, UpdateInterval: 0.1, Phase: 0.1},
		{PollInterval: 1, UpdateInterval: 0.1, Phase: -0.01},
		{PollInterval: 1, UpdateInterval: 0.1, Phase: nan},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("smi config %+v accepted", c)
		}
	}
}

func TestSampleSMIConstantTrace(t *testing.T) {
	s, err := SampleSMI(constantTrace(10, 300), SMIDefault())
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 10 {
		t.Fatalf("samples = %d, want 10", s.Len())
	}
	for i, v := range s.Values {
		if v != 300 {
			t.Fatalf("sample %d = %v, want 300", i, v)
		}
		if want := float64(i + 1); s.Times[i] != want {
			t.Fatalf("time %d = %v, want %v", i, s.Times[i], want)
		}
	}
}

// The transient-miss pathology: a spike shorter than the gap between
// the update ticks adjacent to the polls is invisible to nvidia-smi,
// while the window-averaging Cray pipeline folds it into the mean.
func TestSampleSMIMissesTransient(t *testing.T) {
	tr := &timeseries.Trace{}
	tr.Append(0.42, 100)
	tr.Append(0.05, 400) // 50 ms spike between update ticks
	tr.Append(9.53, 100)
	smi, err := SampleSMI(tr, SMIDefault())
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range smi.Values {
		if v != 100 {
			t.Fatalf("smi sample %d saw the transient (%v W)", i, v)
		}
	}
	pm, err := Sample(tr, Config{Interval: 1})
	if err != nil {
		t.Fatal(err)
	}
	if pm.Values[0] <= 100 {
		t.Fatal("window-averaged pipeline should see the transient")
	}
}

// The reading-age pathology: the register refreshed at the last update
// tick, so a poll returns power that is up to UpdateInterval old.
func TestSampleSMIReadingAge(t *testing.T) {
	tr := &timeseries.Trace{}
	tr.Append(0.95, 100)
	tr.Append(9.05, 350)
	// Update ticks every 0.5 s: the tick at t=0.5 reads 100 W; a poll
	// at t=1 (past the step at 0.95) must return the stale 100 W
	// because the next tick lands exactly at the poll — with phase 0.25
	// the latest tick before t=1 is 0.75, still 100 W.
	cfg := SMIConfig{PollInterval: 1, UpdateInterval: 0.5, Phase: 0.25}
	s, err := SampleSMI(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.Values[0] != 100 {
		t.Fatalf("poll at t=1 = %v, want stale 100", s.Values[0])
	}
	if s.Values[1] != 350 {
		t.Fatalf("poll at t=2 = %v, want 350", s.Values[1])
	}
}

// The aliasing pathology: with update and poll clocks commensurate, a
// square wave whose period divides the poll interval is sampled at the
// same phase every time — the series reports constant power and the
// oscillation disappears entirely.
func TestSampleSMIAliasesPeriodicLoad(t *testing.T) {
	tr := &timeseries.Trace{}
	for i := 0; i < 40; i++ { // 1 Hz square wave between 100 and 400 W
		tr.Append(0.5, 100)
		tr.Append(0.5, 400)
	}
	s, err := SampleSMI(tr, SMIDefault())
	if err != nil {
		t.Fatal(err)
	}
	first := s.Values[0]
	for i, v := range s.Values {
		if v != first {
			t.Fatalf("sample %d = %v; aliased sampling should pin one phase", i, v)
		}
	}
	// The true mean is 250 W; the aliased estimate is off by 150 W.
	if math.Abs(s.Mean()-250) < 100 {
		t.Fatal("aliasing should bias the mean estimate")
	}
}

func TestSampleSMIAveragingWindow(t *testing.T) {
	tr := &timeseries.Trace{}
	tr.Append(0.95, 100)
	tr.Append(9.05, 300)
	cfg := SMIConfig{PollInterval: 1, UpdateInterval: 1}
	// Point sample at u=1: nudged inside the second segment boundary,
	// reads 300? No — u=1.0 reads the power at 1.0-ε = 300 (the step
	// was at 0.95). A wide averaging window mixes in the 100 W head.
	point, err := SampleSMI(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.AveragingWindow = 1
	avg, err := SampleSMI(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if point.Values[0] != 300 {
		t.Fatalf("point sample = %v, want 300", point.Values[0])
	}
	want := 0.95*100 + 0.05*300
	if math.Abs(avg.Values[0]-want) > 1e-9 {
		t.Fatalf("averaged sample = %v, want %v", avg.Values[0], want)
	}
}

func TestSampleSMIEmptyAndInvalid(t *testing.T) {
	s, err := SampleSMI(&timeseries.Trace{}, SMIDefault())
	if err != nil || s.Len() != 0 {
		t.Fatalf("empty trace: (%d, %v)", s.Len(), err)
	}
	if _, err := SampleSMI(constantTrace(10, 1), SMIConfig{}); err == nil {
		t.Fatal("invalid config accepted")
	}
}
