// Package nvsmi models the management interface the paper uses to set
// GPU power limits (nvidia-smi -pl, §V): per-host, per-device limit
// setting with the platform GPU's validity range (the A100's
// [100, 400] W on the default platform), queries, and reset — the
// control surface a power-aware scheduler drives.
package nvsmi

import (
	"fmt"
	"sort"
	"sync"

	"vasppower/internal/hw/node"
)

// AllGPUs selects every device on a host.
const AllGPUs = -1

// Interface is a management endpoint over a set of registered nodes.
type Interface struct {
	mu    sync.RWMutex
	nodes map[string]*node.Node
}

// New returns an interface with no nodes registered.
func New() *Interface {
	return &Interface{nodes: make(map[string]*node.Node)}
}

// Register adds a node (by its name).
func (s *Interface) Register(n *node.Node) error {
	if n == nil || n.Name == "" {
		return fmt.Errorf("nvsmi: invalid node")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.nodes[n.Name]; dup {
		return fmt.Errorf("nvsmi: node %q already registered", n.Name)
	}
	s.nodes[n.Name] = n
	return nil
}

// Unregister removes a node by host name — the management endpoint
// forgetting a drained or decommissioned host. Unknown hosts are an
// error, matching Register's duplicate check, so a caller tearing down
// twice hears about it. The name is free for re-registration after.
func (s *Interface) Unregister(host string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.nodes[host]; !ok {
		return fmt.Errorf("nvsmi: unknown host %q", host)
	}
	delete(s.nodes, host)
	return nil
}

// Hosts returns registered host names, sorted.
func (s *Interface) Hosts() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.nodes))
	for h := range s.nodes {
		out = append(out, h)
	}
	sort.Strings(out)
	return out
}

func (s *Interface) host(name string) (*node.Node, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n, ok := s.nodes[name]
	if !ok {
		return nil, fmt.Errorf("nvsmi: unknown host %q", name)
	}
	return n, nil
}

// SetPowerLimit applies a power limit (watts) to one GPU of a host,
// or to all of them with AllGPUs. Out-of-range limits are rejected
// exactly as `nvidia-smi -pl` rejects them.
func (s *Interface) SetPowerLimit(host string, gpuIndex int, watts float64) error {
	n, err := s.host(host)
	if err != nil {
		return err
	}
	if gpuIndex == AllGPUs {
		return n.SetGPUPowerLimits(watts)
	}
	if gpuIndex < 0 || gpuIndex >= n.NumGPUs() {
		return fmt.Errorf("nvsmi: gpu index %d out of range", gpuIndex)
	}
	return n.GPUs[gpuIndex].SetPowerLimit(watts)
}

// ResetPowerLimit restores the default (TDP) limit.
func (s *Interface) ResetPowerLimit(host string, gpuIndex int) error {
	n, err := s.host(host)
	if err != nil {
		return err
	}
	if gpuIndex == AllGPUs {
		n.ResetGPUPowerLimits()
		return nil
	}
	if gpuIndex < 0 || gpuIndex >= n.NumGPUs() {
		return fmt.Errorf("nvsmi: gpu index %d out of range", gpuIndex)
	}
	n.GPUs[gpuIndex].ResetPowerLimit()
	return nil
}

// GPUInfo is one row of the query output.
type GPUInfo struct {
	Index       int
	Name        string
	PowerLimitW float64
	MinLimitW   float64
	MaxLimitW   float64
	IdlePowerW  float64
}

// Query lists the GPUs of a host.
func (s *Interface) Query(host string) ([]GPUInfo, error) {
	n, err := s.host(host)
	if err != nil {
		return nil, err
	}
	out := make([]GPUInfo, n.NumGPUs())
	for i, g := range n.GPUs {
		out[i] = GPUInfo{
			Index:       i,
			Name:        g.Spec.Name,
			PowerLimitW: g.PowerLimit(),
			MinLimitW:   g.Spec.MinPowerLimit,
			MaxLimitW:   g.Spec.TDP,
			IdlePowerW:  g.IdlePower(),
		}
	}
	return out, nil
}

// SetClockLimit locks the maximum SM clock (MHz) of one GPU, or all
// with AllGPUs — the `nvidia-smi -lgc` DVFS control the paper
// contrasts with power capping (§V).
func (s *Interface) SetClockLimit(host string, gpuIndex int, mhz float64) error {
	n, err := s.host(host)
	if err != nil {
		return err
	}
	if gpuIndex == AllGPUs {
		return n.SetGPUClockLimits(mhz)
	}
	if gpuIndex < 0 || gpuIndex >= n.NumGPUs() {
		return fmt.Errorf("nvsmi: gpu index %d out of range", gpuIndex)
	}
	return n.GPUs[gpuIndex].SetClockLimitMHz(mhz)
}

// ResetClockLimit unlocks SM clocks (nvidia-smi -rgc).
func (s *Interface) ResetClockLimit(host string, gpuIndex int) error {
	n, err := s.host(host)
	if err != nil {
		return err
	}
	if gpuIndex == AllGPUs {
		n.ResetGPUClockLimits()
		return nil
	}
	if gpuIndex < 0 || gpuIndex >= n.NumGPUs() {
		return fmt.Errorf("nvsmi: gpu index %d out of range", gpuIndex)
	}
	n.GPUs[gpuIndex].ResetClockLimit()
	return nil
}
