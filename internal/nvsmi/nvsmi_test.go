package nvsmi

import (
	"testing"

	"vasppower/internal/hw/node"
	"vasppower/internal/hw/platform"
)

func testIface(t *testing.T) (*Interface, *node.Node) {
	t.Helper()
	s := New()
	n := node.New("nid000001", platform.Default(), nil)
	if err := s.Register(n); err != nil {
		t.Fatal(err)
	}
	return s, n
}

func TestRegisterValidation(t *testing.T) {
	s := New()
	if err := s.Register(nil); err == nil {
		t.Fatal("nil node accepted")
	}
	n := node.New("nid1", platform.Default(), nil)
	if err := s.Register(n); err != nil {
		t.Fatal(err)
	}
	if err := s.Register(n); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	hosts := s.Hosts()
	if len(hosts) != 1 || hosts[0] != "nid1" {
		t.Fatalf("hosts = %v", hosts)
	}
}

func TestUnregister(t *testing.T) {
	s, n := testIface(t)
	if err := s.Unregister("missing"); err == nil {
		t.Fatal("unknown host accepted")
	}
	if err := s.Unregister("nid000001"); err != nil {
		t.Fatal(err)
	}
	if hosts := s.Hosts(); len(hosts) != 0 {
		t.Fatalf("hosts after unregister = %v", hosts)
	}
	if _, err := s.Query("nid000001"); err == nil {
		t.Fatal("unregistered host still queryable")
	}
	if err := s.Unregister("nid000001"); err == nil {
		t.Fatal("double unregister accepted")
	}
	// The name is free again: re-registering the same node succeeds and
	// the endpoint serves it as before.
	if err := s.Register(n); err != nil {
		t.Fatal(err)
	}
	if err := s.SetPowerLimit("nid000001", 0, 250); err != nil {
		t.Fatal(err)
	}
	if n.GPUs[0].PowerLimit() != 250 {
		t.Fatal("limit not applied after re-registration")
	}
}

func TestSetPowerLimitSingleGPU(t *testing.T) {
	s, n := testIface(t)
	if err := s.SetPowerLimit("nid000001", 2, 250); err != nil {
		t.Fatal(err)
	}
	if n.GPUs[2].PowerLimit() != 250 {
		t.Fatal("limit not applied")
	}
	if n.GPUs[0].PowerLimit() != 400 {
		t.Fatal("limit leaked to other GPUs")
	}
}

func TestSetPowerLimitAllGPUs(t *testing.T) {
	s, n := testIface(t)
	if err := s.SetPowerLimit("nid000001", AllGPUs, 300); err != nil {
		t.Fatal(err)
	}
	for _, g := range n.GPUs {
		if g.PowerLimit() != 300 {
			t.Fatal("limit not applied to all")
		}
	}
}

func TestSetPowerLimitErrors(t *testing.T) {
	s, _ := testIface(t)
	if err := s.SetPowerLimit("missing", AllGPUs, 300); err == nil {
		t.Fatal("unknown host accepted")
	}
	if err := s.SetPowerLimit("nid000001", 7, 300); err == nil {
		t.Fatal("bad index accepted")
	}
	if err := s.SetPowerLimit("nid000001", 0, 99); err == nil {
		t.Fatal("below-floor limit accepted")
	}
	if err := s.SetPowerLimit("nid000001", 0, 500); err == nil {
		t.Fatal("above-TDP limit accepted")
	}
}

func TestResetPowerLimit(t *testing.T) {
	s, n := testIface(t)
	_ = s.SetPowerLimit("nid000001", AllGPUs, 200)
	if err := s.ResetPowerLimit("nid000001", 1); err != nil {
		t.Fatal(err)
	}
	if n.GPUs[1].PowerLimit() != 400 || n.GPUs[0].PowerLimit() != 200 {
		t.Fatal("single reset wrong")
	}
	if err := s.ResetPowerLimit("nid000001", AllGPUs); err != nil {
		t.Fatal(err)
	}
	if n.GPUs[0].PowerLimit() != 400 {
		t.Fatal("reset all failed")
	}
	if err := s.ResetPowerLimit("missing", AllGPUs); err == nil {
		t.Fatal("unknown host accepted")
	}
	if err := s.ResetPowerLimit("nid000001", 9); err == nil {
		t.Fatal("bad index accepted")
	}
}

func TestQuery(t *testing.T) {
	s, n := testIface(t)
	_ = s.SetPowerLimit("nid000001", 3, 150)
	info, err := s.Query("nid000001")
	if err != nil {
		t.Fatal(err)
	}
	if len(info) != n.NumGPUs() {
		t.Fatalf("info rows = %d", len(info))
	}
	if info[3].PowerLimitW != 150 || info[0].PowerLimitW != 400 {
		t.Fatalf("limits wrong: %+v", info)
	}
	if info[0].MinLimitW != 100 || info[0].MaxLimitW != 400 {
		t.Fatalf("range wrong: %+v", info[0])
	}
	if info[0].Name == "" {
		t.Fatal("missing device name")
	}
	if _, err := s.Query("missing"); err == nil {
		t.Fatal("unknown host accepted")
	}
}

func TestSetClockLimit(t *testing.T) {
	s, n := testIface(t)
	if err := s.SetClockLimit("nid000001", AllGPUs, 1100); err != nil {
		t.Fatal(err)
	}
	if n.GPUs[2].ClockLimit() >= 1 {
		t.Fatal("clock not locked")
	}
	if err := s.SetClockLimit("missing", AllGPUs, 1100); err == nil {
		t.Fatal("unknown host accepted")
	}
	if err := s.SetClockLimit("nid000001", 9, 1100); err == nil {
		t.Fatal("bad index accepted")
	}
	if err := s.SetClockLimit("nid000001", 0, 5000); err == nil {
		t.Fatal("bad clock accepted")
	}
	if err := s.ResetClockLimit("nid000001", 0); err != nil {
		t.Fatal(err)
	}
	if n.GPUs[0].ClockLimit() != 1 {
		t.Fatal("single reset failed")
	}
	if err := s.ResetClockLimit("nid000001", AllGPUs); err != nil {
		t.Fatal(err)
	}
	if err := s.ResetClockLimit("missing", 0); err == nil {
		t.Fatal("unknown host accepted")
	}
	if err := s.ResetClockLimit("nid000001", 9); err == nil {
		t.Fatal("bad index accepted")
	}
}
