package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"sync"
	"time"
)

// DebugServer is the live-inspection endpoint for long sweeps: the
// standard pprof handlers plus an expvar-style JSON dump of the
// metrics registry. It binds eagerly (so a bad address fails fast at
// startup) and serves in the background until Close. Extra handlers —
// the telemetry exporter's /metrics — can be mounted after startup
// with Handle.
type DebugServer struct {
	// Addr is the resolved listen address (useful with ":0").
	Addr string
	srv  *http.Server
	ln   net.Listener
	mux  *http.ServeMux

	mu    sync.Mutex
	extra []string // mounted patterns, for the index page
}

// ServeDebug starts a debug HTTP server on addr exposing:
//
//	/debug/pprof/        the net/http/pprof index and profiles
//	/debug/vars          JSON snapshot of reg (zero metrics if reg is nil)
//	/                    a plain-text index of the above
func ServeDebug(addr string, reg *Registry) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(reg.Snapshot())
	})
	ds := &DebugServer{
		Addr: ln.Addr().String(),
		srv:  &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
		ln:   ln,
		mux:  mux,
	}
	mux.HandleFunc("/", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "vasppower debug endpoint")
		fmt.Fprintln(w, "  /debug/pprof/   profiles (heap, goroutine, profile?seconds=N, ...)")
		fmt.Fprintln(w, "  /debug/vars     metrics registry snapshot (JSON)")
		ds.mu.Lock()
		extra := append([]string(nil), ds.extra...)
		ds.mu.Unlock()
		sort.Strings(extra)
		for _, p := range extra {
			fmt.Fprintf(w, "  %s\n", p)
		}
	})
	go ds.srv.Serve(ln)
	return ds, nil
}

// Handle mounts h at pattern on the debug mux and lists the pattern on
// the index page. ServeMux registration is safe while serving; like
// ServeMux, Handle panics on a duplicate pattern.
func (d *DebugServer) Handle(pattern string, h http.Handler) {
	d.mux.Handle(pattern, h)
	d.mu.Lock()
	d.extra = append(d.extra, pattern)
	d.mu.Unlock()
}

// Close stops the server and its listener immediately, dropping any
// in-flight requests. Long-running services should prefer Shutdown.
func (d *DebugServer) Close() error {
	if d == nil {
		return nil
	}
	return d.srv.Close()
}

// Shutdown drains the server gracefully: the listener closes to new
// connections immediately, in-flight requests run to completion, and
// idle keep-alive connections are closed. It returns when every
// request has finished or ctx expires (whichever comes first, with
// ctx's error in the latter case) — the contract powerd's
// SIGTERM-drain leans on.
func (d *DebugServer) Shutdown(ctx context.Context) error {
	if d == nil {
		return nil
	}
	return d.srv.Shutdown(ctx)
}
