package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestServeDebug(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("sim.steps").Add(123)
	ds, err := ServeDebug("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()

	get := func(path string) []byte {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", ds.Addr, path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}

	var snap Snapshot
	if err := json.Unmarshal(get("/debug/vars"), &snap); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	if snap.Counters["sim.steps"] != 123 {
		t.Fatalf("/debug/vars counters = %v", snap.Counters)
	}
	if body := get("/debug/pprof/goroutine?debug=1"); len(body) == 0 {
		t.Fatal("pprof goroutine profile empty")
	}
	if body := get("/"); len(body) == 0 {
		t.Fatal("index page empty")
	}
}

func TestDebugServerHandle(t *testing.T) {
	ds, err := ServeDebug("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	ds.Handle("/metrics", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprint(w, "exported 1")
	}))
	get := func(path string) string {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", ds.Addr, path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return string(body)
	}
	if got := get("/metrics"); got != "exported 1" {
		t.Fatalf("/metrics = %q", got)
	}
	if idx := get("/"); !strings.Contains(idx, "/metrics") {
		t.Fatalf("index does not list mounted handler:\n%s", idx)
	}
}

func TestServeDebugBadAddrFailsFast(t *testing.T) {
	if _, err := ServeDebug("256.0.0.1:99999", nil); err == nil {
		t.Fatal("expected listen error")
	}
}
