package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime/debug"
	"time"
)

// BuildInfo is the provenance stamp every manifest (and every cmd's
// -version flag) carries: which module build produced this run, from
// which VCS revision, and whether the tree was dirty — the same role
// the paper's OMNI job records play for a batch job.
type BuildInfo struct {
	Module    string `json:"module"`
	Version   string `json:"version"`
	GoVersion string `json:"go_version"`
	Revision  string `json:"vcs_revision,omitempty"`
	VCSTime   string `json:"vcs_time,omitempty"`
	Dirty     bool   `json:"vcs_dirty,omitempty"`
}

// GetBuildInfo reads the running binary's build metadata via
// debug.ReadBuildInfo. Fields missing from the build (e.g. VCS stamps
// under plain `go test`) stay empty.
func GetBuildInfo() BuildInfo {
	b := BuildInfo{Module: "unknown", Version: "unknown"}
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return b
	}
	b.Module = info.Main.Path
	b.Version = info.Main.Version
	b.GoVersion = info.GoVersion
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			b.Revision = s.Value
		case "vcs.time":
			b.VCSTime = s.Value
		case "vcs.modified":
			b.Dirty = s.Value == "true"
		}
	}
	return b
}

// String renders the one-line form the -version flags print.
func (b BuildInfo) String() string {
	s := fmt.Sprintf("%s %s (%s", b.Module, b.Version, b.GoVersion)
	if b.Revision != "" {
		rev := b.Revision
		if len(rev) > 12 {
			rev = rev[:12]
		}
		s += ", rev " + rev
		if b.Dirty {
			s += " dirty"
		}
	}
	return s + ")"
}

// VersionString is the line `<tool> -version` prints.
func VersionString(tool string) string {
	return tool + ": " + GetBuildInfo().String()
}

// ExperimentTiming is one experiment's wall-clock contribution to a
// run, as recorded in the manifest.
type ExperimentTiming struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
}

// Manifest makes a run self-describing: what binary ran, on which
// platform, with which knobs, how long each experiment took, and the
// full metrics snapshot at exit. Written as indented JSON by Write.
type Manifest struct {
	Tool        string             `json:"tool"`
	Build       BuildInfo          `json:"build"`
	Platform    string             `json:"platform"`
	Seed        uint64             `json:"seed"`
	Workers     int                `json:"workers"`
	Quick       bool               `json:"quick"`
	Started     time.Time          `json:"started"`
	WallSeconds float64            `json:"wall_seconds"`
	Experiments []ExperimentTiming `json:"experiments,omitempty"`
	Metrics     *Snapshot          `json:"metrics,omitempty"`
}

// Write marshals the manifest to path (0644, whole-file replace).
func (m Manifest) Write(path string) error {
	buf, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("obs: marshal manifest: %w", err)
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return fmt.Errorf("obs: write manifest: %w", err)
	}
	return nil
}
