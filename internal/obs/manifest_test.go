package obs

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestGetBuildInfo(t *testing.T) {
	b := GetBuildInfo()
	if b.Module != "vasppower" {
		t.Fatalf("module = %q, want vasppower", b.Module)
	}
	if b.GoVersion == "" {
		t.Fatal("empty go version")
	}
	if !strings.Contains(b.String(), "vasppower") || !strings.Contains(b.String(), b.GoVersion) {
		t.Fatalf("String() = %q lacks module/go version", b.String())
	}
	if !strings.HasPrefix(VersionString("powerstudy"), "powerstudy: ") {
		t.Fatalf("VersionString = %q", VersionString("powerstudy"))
	}
}

func TestManifestWriteRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("memo.hits").Add(42)
	snap := reg.Snapshot()
	m := Manifest{
		Tool:        "powerstudy",
		Build:       GetBuildInfo(),
		Platform:    "perlmutter-a100",
		Seed:        2024,
		Workers:     8,
		Quick:       true,
		Started:     time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC),
		WallSeconds: 1.5,
		Experiments: []ExperimentTiming{{Name: "table1", Seconds: 0.4}},
		Metrics:     &snap,
	}
	path := filepath.Join(t.TempDir(), "manifest.json")
	if err := m.Write(path); err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got Manifest
	if err := json.Unmarshal(buf, &got); err != nil {
		t.Fatalf("manifest is not parseable JSON: %v", err)
	}
	if got.Platform != m.Platform || got.Seed != m.Seed || got.Workers != m.Workers {
		t.Fatalf("round trip lost fields: %+v", got)
	}
	if len(got.Experiments) != 1 || got.Experiments[0].Name != "table1" {
		t.Fatalf("experiments lost: %+v", got.Experiments)
	}
	if got.Metrics == nil || got.Metrics.Counters["memo.hits"] != 42 {
		t.Fatalf("metrics snapshot lost: %+v", got.Metrics)
	}
	if got.Build.Module != "vasppower" {
		t.Fatalf("build info lost: %+v", got.Build)
	}
}
