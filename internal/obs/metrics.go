package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic int64. All methods are
// safe on a nil receiver (they no-op / return zero), which is how
// instrumented code stays zero-cost when observability is off.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by d.
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.v.Add(d)
}

// Inc increments the counter by 1.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous atomic int64 level (queue depths, pool
// sizes). Nil-safe like Counter.
type Gauge struct {
	v atomic.Int64
}

// Set stores an absolute level.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the level by d (negative to decrease).
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// Value returns the current level (0 on a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket histogram: observations are counted into
// the first bucket whose upper bound is >= the value, with an implicit
// +Inf overflow bucket, plus a total count and sum. Nil-safe.
type Histogram struct {
	bounds []float64      // sorted upper bounds, one per finite bucket
	counts []atomic.Int64 // len(bounds)+1; last is +Inf
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Registry is a named collection of metrics. Lookups are get-or-create
// and safe for concurrent use; a nil registry hands out nil metrics,
// so the whole chain no-ops when observability is off.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket upper bounds on first use (later calls reuse the existing
// buckets regardless of the bounds argument).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = newHistogram(bounds)
		r.histograms[name] = h
	}
	return h
}

// BucketCount is one histogram bucket in a snapshot: the count of
// observations at or below LE (non-cumulative; LE is +Inf-encoded as
// the JSON string "inf" would be lossy, so the overflow bucket is
// reported under the Overflow field of HistogramSnapshot instead).
type BucketCount struct {
	LE    float64 `json:"le"`
	Count int64   `json:"count"`
}

// HistogramSnapshot is a histogram's state at snapshot time.
type HistogramSnapshot struct {
	Count    int64         `json:"count"`
	Sum      float64       `json:"sum"`
	Buckets  []BucketCount `json:"buckets,omitempty"`
	Overflow int64         `json:"overflow,omitempty"` // observations above the last bound
}

// Snapshot is a point-in-time copy of every metric in a registry,
// shaped for JSON (the manifest's metrics section and /debug/vars).
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies the registry's current state. Individual metric
// reads are atomic; the snapshot as a whole is not (concurrent writers
// may land between reads), which is fine for reporting. A nil registry
// yields the zero Snapshot.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(r.histograms) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.histograms))
		for name, h := range r.histograms {
			hs := HistogramSnapshot{Count: h.Count(), Sum: h.Sum()}
			for i, le := range h.bounds {
				hs.Buckets = append(hs.Buckets, BucketCount{LE: le, Count: h.counts[i].Load()})
			}
			hs.Overflow = h.counts[len(h.bounds)].Load()
			s.Histograms[name] = hs
		}
	}
	return s
}
