package obs

import (
	"sync"
	"testing"
)

func TestNilSafety(t *testing.T) {
	// Every recorder must no-op on nil: this is the zero-cost-when-off
	// contract the hot paths rely on.
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("x")
	h := r.Histogram("x", []float64{1})
	if c != nil || g != nil || h != nil {
		t.Fatalf("nil registry handed out non-nil metrics: %v %v %v", c, g, h)
	}
	c.Add(1)
	c.Inc()
	g.Set(2)
	g.Add(1)
	h.Observe(3)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil metrics reported nonzero values")
	}
	if s := r.Snapshot(); s.Counters != nil || s.Gauges != nil || s.Histograms != nil {
		t.Fatalf("nil registry snapshot not empty: %+v", s)
	}

	var o *Obs
	if o.Reg() != nil {
		t.Fatal("nil Obs returned a registry")
	}
	sp := o.Span("x")
	sp.Set("k", 1).Set("j", 2)
	sp.End() // must not panic
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Fatal("same name yielded distinct counters")
	}
	if r.Gauge("a") != r.Gauge("a") {
		t.Fatal("same name yielded distinct gauges")
	}
	if r.Histogram("a", []float64{1, 2}) != r.Histogram("a", nil) {
		t.Fatal("same name yielded distinct histograms")
	}
}

func TestCounterGaugeConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Fatalf("counter = %d, want %d", c.Value(), workers*per)
	}
	if g.Value() != 0 {
		t.Fatalf("gauge = %d, want 0", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 0.5+1+5+50+500; got != want {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	s := r.Snapshot().Histograms["h"]
	wantCounts := []int64{2, 1, 1} // (≤1): 0.5 and 1; (≤10): 5; (≤100): 50
	for i, b := range s.Buckets {
		if b.Count != wantCounts[i] {
			t.Fatalf("bucket le=%v count = %d, want %d", b.LE, b.Count, wantCounts[i])
		}
	}
	if s.Overflow != 1 {
		t.Fatalf("overflow = %d, want 1 (the 500)", s.Overflow)
	}
}

func TestSnapshotCopies(t *testing.T) {
	r := NewRegistry()
	r.Counter("n").Add(7)
	r.Gauge("q").Set(3)
	s := r.Snapshot()
	if s.Counters["n"] != 7 || s.Gauges["q"] != 3 {
		t.Fatalf("snapshot = %+v", s)
	}
	r.Counter("n").Add(1)
	if s.Counters["n"] != 7 {
		t.Fatal("snapshot aliased live counter")
	}
}
