// Package obs is the run-telemetry layer of the measurement engine:
// metrics, spans, run manifests, and a debug HTTP endpoint. The paper
// only exists because NERSC's LDMS/OMNI pipeline (§II-B) observed
// every host; obs applies the same discipline to the reproduction
// itself, so a long sweep is never a black box.
//
// Everything here is dependency-free (stdlib only) and zero-cost when
// off: every recorder is nil-safe — a nil *Registry hands out nil
// metrics, and a nil *Counter, *Gauge, *Histogram, *Tracer, *Span, or
// *Obs no-ops on every method — so instrumented hot paths pay one nil
// check when observability is disabled, which is the default.
// Metrics and spans never write to stdout; the byte-identical -quick
// golden output is unaffected whether telemetry is on or off.
package obs

// Obs bundles the telemetry sinks one run threads through the system.
// The zero value and the nil pointer are both fully usable no-ops.
type Obs struct {
	Metrics *Registry
	Tracer  *Tracer
}

// New returns an Obs with a live metrics registry and no tracer.
func New() *Obs { return &Obs{Metrics: NewRegistry()} }

// Reg returns the registry (nil when o is nil or tracing-only).
func (o *Obs) Reg() *Registry {
	if o == nil {
		return nil
	}
	return o.Metrics
}

// Span starts a span on the bundled tracer; nil-safe at every level,
// so callers can unconditionally `defer o.Span("x").End()`.
func (o *Obs) Span(name string) *Span {
	if o == nil {
		return nil
	}
	return o.Tracer.Start(name)
}
