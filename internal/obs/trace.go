package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Tracer emits completed spans as JSON lines (one object per line) to
// an io.Writer — the run's trace file. It is safe for concurrent use;
// a nil tracer hands out nil spans, so instrumented code can trace
// unconditionally.
//
// A span line looks like:
//
//	{"span":"measure","start":"2026-08-05T12:00:00.000Z","ms":12.4,"bench":"Si256_hse","cache_hit":false}
//
// Attribute keys set via Set land at the top level of the object
// (encoding/json sorts map keys, so the layout is stable); "span",
// "start", and "ms" are reserved.
type Tracer struct {
	mu sync.Mutex
	w  io.Writer
}

// NewTracer returns a tracer writing JSON lines to w. The caller owns
// w's lifetime (closing files, etc.).
func NewTracer(w io.Writer) *Tracer { return &Tracer{w: w} }

// Span is one timed operation. Create with Tracer.Start, annotate with
// Set, and emit with End. All methods no-op on a nil span. A span must
// be annotated and ended by the goroutine that started it.
type Span struct {
	t     *Tracer
	name  string
	start time.Time
	attrs map[string]any
}

// Start opens a span; nothing is written until End.
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	return &Span{t: t, name: name, start: time.Now()}
}

// Set attaches an attribute to the span, returning the span so calls
// chain. Values must be JSON-marshalable.
func (s *Span) Set(key string, value any) *Span {
	if s == nil {
		return nil
	}
	if s.attrs == nil {
		s.attrs = make(map[string]any, 8)
	}
	s.attrs[key] = value
	return s
}

// End records the duration and writes the span as one JSON line.
func (s *Span) End() {
	if s == nil {
		return
	}
	line := make(map[string]any, len(s.attrs)+3)
	for k, v := range s.attrs {
		line[k] = v
	}
	line["span"] = s.name
	line["start"] = s.start.UTC().Format(time.RFC3339Nano)
	line["ms"] = float64(time.Since(s.start)) / float64(time.Millisecond)
	buf, err := json.Marshal(line)
	if err != nil {
		// An unmarshalable attribute is a programming error in the
		// instrumentation; drop the span rather than corrupt the file.
		return
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	s.t.w.Write(append(buf, '\n'))
}
