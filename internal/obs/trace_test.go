package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestSpanEmitsJSONLine(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	sp := tr.Start("measure")
	sp.Set("bench", "Si256_hse").Set("cache_hit", false).Set("nodes", 2)
	sp.End()

	line := strings.TrimSuffix(buf.String(), "\n")
	if strings.Contains(line, "\n") {
		t.Fatalf("span emitted more than one line: %q", line)
	}
	var got map[string]any
	if err := json.Unmarshal([]byte(line), &got); err != nil {
		t.Fatalf("span line is not JSON: %v\n%q", err, line)
	}
	if got["span"] != "measure" || got["bench"] != "Si256_hse" || got["cache_hit"] != false {
		t.Fatalf("span fields wrong: %v", got)
	}
	if _, ok := got["ms"].(float64); !ok {
		t.Fatalf("span has no numeric ms: %v", got)
	}
	if _, ok := got["start"].(string); !ok {
		t.Fatalf("span has no start timestamp: %v", got)
	}
}

func TestTracerConcurrentSpansStayLineAtomic(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	const n = 64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tr.Start("s").Set("i", i).End()
		}(i)
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != n {
		t.Fatalf("got %d lines, want %d", len(lines), n)
	}
	for _, l := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(l), &m); err != nil {
			t.Fatalf("interleaved/corrupt trace line %q: %v", l, err)
		}
	}
}

func TestNilTracerSpans(t *testing.T) {
	var tr *Tracer
	sp := tr.Start("x")
	if sp != nil {
		t.Fatal("nil tracer returned a live span")
	}
	sp.Set("k", "v").End() // must not panic
}
