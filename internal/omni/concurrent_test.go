package omni

import (
	"fmt"
	"sync"
	"testing"

	"vasppower/internal/obs"
	"vasppower/internal/timeseries"
)

// chunk builds a small in-order series covering [start, start+4].
func chunk(start float64) timeseries.Series {
	var s timeseries.Series
	for i := 0; i < 5; i++ {
		s.Times = append(s.Times, start+float64(i))
		s.Values = append(s.Values, 100+float64(i))
	}
	return s
}

// TestConcurrentInsertWhileQuery exercises the package's documented
// guarantee — "in production many LDMS forwarders insert while
// analysis queries run" — under the race detector: per-host writers
// stream in-order chunks while readers hammer Query, JobPower,
// JobEnergy, Hosts, and MetricsOf the whole time.
func TestConcurrentInsertWhileQuery(t *testing.T) {
	s := NewStore()
	m := NewMetrics(obs.NewRegistry())
	SetMetrics(m)
	defer SetMetrics(nil)

	const hosts, chunks = 4, 50
	hostName := func(h int) string { return fmt.Sprintf("nid%03d", h) }

	// Pre-register a job over the window the writers will fill, and
	// seed each host with one chunk so early queries can hit data.
	var nodes []string
	for h := 0; h < hosts; h++ {
		nodes = append(nodes, hostName(h))
		if err := s.Insert(hostName(h), "node", chunk(0)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.RegisterJob(JobRecord{
		ID: "job1", User: "u", App: "vasp", Nodes: nodes, Start: 0, End: chunks * 5,
	}); err != nil {
		t.Fatal(err)
	}

	// Writers: one per host, each streaming strictly-later chunks.
	var writers sync.WaitGroup
	for h := 0; h < hosts; h++ {
		writers.Add(1)
		go func(h int) {
			defer writers.Done()
			for c := 1; c < chunks; c++ {
				if err := s.Insert(hostName(h), "node", chunk(float64(c)*5)); err != nil {
					t.Errorf("insert %s chunk %d: %v", hostName(h), c, err)
					return
				}
			}
		}(h)
	}

	// Readers: query until the writers are done.
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				host := hostName(r % hosts)
				if _, err := s.Query(host, "node", 0, chunks*5); err != nil {
					t.Errorf("query %s: %v", host, err)
					return
				}
				if _, err := s.JobPower("job1", "node"); err != nil {
					t.Errorf("job power: %v", err)
					return
				}
				if _, err := s.JobEnergy("job1"); err != nil {
					t.Errorf("job energy: %v", err)
					return
				}
				s.Hosts()
				s.MetricsOf(host)
			}
		}(r)
	}

	writers.Wait()
	close(stop)
	readers.Wait()

	// Every host ends with the complete in-order series.
	for h := 0; h < hosts; h++ {
		series, err := s.Query(hostName(h), "node", 0, chunks*5)
		if err != nil {
			t.Fatal(err)
		}
		if series.Len() != chunks*5 {
			t.Fatalf("%s has %d samples, want %d", hostName(h), series.Len(), chunks*5)
		}
	}
	if got, want := m.Inserts.Value(), int64(hosts*chunks); got != want {
		t.Fatalf("inserts = %d, want %d", got, want)
	}
	if m.Queries.Value() == 0 {
		t.Fatal("no queries counted despite reader load")
	}
}
