// Package omni models NERSC's Operations Monitoring and Notification
// Infrastructure (OMNI, §II-B): a time-series store for the power
// telemetry of every host, plus a job registry so power data can be
// queried per job — the workflow of the paper's "previously-developed
// querying scripts" [20].
//
// The store is safe for concurrent use: in production many LDMS
// forwarders insert while analysis queries run.
package omni

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"vasppower/internal/obs"
	"vasppower/internal/timeseries"
)

// Metrics counts store traffic across every Store in the process —
// the reproduction's stand-in for OMNI's own ingest/query accounting.
// Inserts counts accepted Insert calls (rejected ones are not stored,
// so they are not counted); Queries counts Query calls, including the
// per-node queries JobPower fans out. Install with SetMetrics; the
// nil default costs one atomic load per operation.
type Metrics struct {
	Inserts *obs.Counter
	Queries *obs.Counter
}

// NewMetrics registers the store metric set under "omni." in reg.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		Inserts: reg.Counter("omni.inserts"),
		Queries: reg.Counter("omni.queries"),
	}
}

var metrics atomic.Pointer[Metrics]

// SetMetrics installs (or, with nil, removes) the process-wide store
// metrics. Install once at startup, before stores see traffic.
func SetMetrics(m *Metrics) { metrics.Store(m) }

// Store is the telemetry database.
type Store struct {
	mu     sync.RWMutex
	series map[string]map[string]timeseries.Series // host → metric → series
	jobs   map[string]JobRecord
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{
		series: make(map[string]map[string]timeseries.Series),
		jobs:   make(map[string]JobRecord),
	}
}

// JobRecord describes one batch job for job-scoped queries.
type JobRecord struct {
	ID    string
	User  string
	App   string
	Nodes []string
	Start float64
	End   float64
}

// Validate checks the record.
func (j JobRecord) Validate() error {
	switch {
	case j.ID == "":
		return fmt.Errorf("omni: job with empty ID")
	case len(j.Nodes) == 0:
		return fmt.Errorf("omni: job %s has no nodes", j.ID)
	case j.End <= j.Start:
		return fmt.Errorf("omni: job %s has empty time window [%v,%v]", j.ID, j.Start, j.End)
	}
	return nil
}

// Insert appends samples for (host, metric). Samples must continue
// strictly after any existing ones for that key.
func (s *Store) Insert(host, metric string, data timeseries.Series) error {
	if host == "" || metric == "" {
		return fmt.Errorf("omni: empty host or metric")
	}
	if err := data.Validate(); err != nil {
		return err
	}
	if data.Len() == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	hm := s.series[host]
	if hm == nil {
		hm = make(map[string]timeseries.Series)
		s.series[host] = hm
	}
	existing := hm[metric]
	if existing.Len() > 0 && data.Times[0] <= existing.Times[existing.Len()-1] {
		return fmt.Errorf("omni: out-of-order insert for %s/%s (%v after %v)",
			host, metric, data.Times[0], existing.Times[existing.Len()-1])
	}
	existing.Times = append(existing.Times, data.Times...)
	existing.Values = append(existing.Values, data.Values...)
	hm[metric] = existing
	if m := metrics.Load(); m != nil {
		m.Inserts.Add(1)
	}
	return nil
}

// InsertSample appends a single sample for (host, metric) — the
// streaming ingest path the telemetry subscription pump uses, so a
// live run lands in the store one reading at a time instead of as a
// post-run batch. The same ordering contract as Insert applies: each
// sample must be strictly after the last one stored for its key.
func (s *Store) InsertSample(host, metric string, t, v float64) error {
	if host == "" || metric == "" {
		return fmt.Errorf("omni: empty host or metric")
	}
	if math.IsNaN(t) || math.IsInf(t, 0) || math.IsNaN(v) || math.IsInf(v, 0) {
		return fmt.Errorf("omni: non-finite sample for %s/%s", host, metric)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	hm := s.series[host]
	if hm == nil {
		hm = make(map[string]timeseries.Series)
		s.series[host] = hm
	}
	existing := hm[metric]
	if n := existing.Len(); n > 0 && t <= existing.Times[n-1] {
		return fmt.Errorf("omni: out-of-order insert for %s/%s (%v after %v)",
			host, metric, t, existing.Times[n-1])
	}
	existing.Times = append(existing.Times, t)
	existing.Values = append(existing.Values, v)
	hm[metric] = existing
	if m := metrics.Load(); m != nil {
		m.Inserts.Add(1)
	}
	return nil
}

// Hosts returns all hosts with data, sorted.
func (s *Store) Hosts() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.series))
	for h := range s.series {
		out = append(out, h)
	}
	sort.Strings(out)
	return out
}

// MetricsOf returns the metrics stored for a host, sorted.
func (s *Store) MetricsOf(host string) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	hm := s.series[host]
	out := make([]string, 0, len(hm))
	for m := range hm {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Query returns the samples of (host, metric) with t ∈ [t0, t1].
func (s *Store) Query(host, metric string, t0, t1 float64) (timeseries.Series, error) {
	if m := metrics.Load(); m != nil {
		m.Queries.Add(1)
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	hm, ok := s.series[host]
	if !ok {
		return timeseries.Series{}, fmt.Errorf("omni: unknown host %q", host)
	}
	data, ok := hm[metric]
	if !ok {
		return timeseries.Series{}, fmt.Errorf("omni: no metric %q for host %q", metric, host)
	}
	return data.Slice(t0, t1), nil
}

// RegisterJob records a job.
func (s *Store) RegisterJob(j JobRecord) error {
	if err := j.Validate(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.jobs[j.ID]; dup {
		return fmt.Errorf("omni: duplicate job %s", j.ID)
	}
	s.jobs[j.ID] = j
	return nil
}

// Job returns a registered job.
func (s *Store) Job(id string) (JobRecord, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobRecord{}, fmt.Errorf("omni: unknown job %q", id)
	}
	return j, nil
}

// Jobs returns all registered job IDs, sorted.
func (s *Store) Jobs() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.jobs))
	for id := range s.jobs {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// JobPower returns, for each node of the job, the given metric's
// samples within the job window — the paper's core query.
func (s *Store) JobPower(jobID, metric string) (map[string]timeseries.Series, error) {
	j, err := s.Job(jobID)
	if err != nil {
		return nil, err
	}
	out := make(map[string]timeseries.Series, len(j.Nodes))
	for _, host := range j.Nodes {
		data, err := s.Query(host, metric, j.Start, j.End)
		if err != nil {
			return nil, fmt.Errorf("omni: job %s: %w", jobID, err)
		}
		out[host] = data
	}
	return out, nil
}

// JobEnergy estimates the job's node-level energy in joules by
// trapezoidal integration of every node's "node" metric.
func (s *Store) JobEnergy(jobID string) (float64, error) {
	perNode, err := s.JobPower(jobID, "node")
	if err != nil {
		return 0, err
	}
	var e float64
	for _, series := range perNode {
		e += series.Energy()
	}
	return e, nil
}
