package omni

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"vasppower/internal/timeseries"
)

func mkSeries(t0, dt float64, vals ...float64) timeseries.Series {
	s := timeseries.Series{}
	for i, v := range vals {
		s.Times = append(s.Times, t0+float64(i)*dt)
		s.Values = append(s.Values, v)
	}
	return s
}

func TestInsertAndQuery(t *testing.T) {
	st := NewStore()
	if err := st.Insert("nid1", "node", mkSeries(0, 2, 500, 600, 700)); err != nil {
		t.Fatal(err)
	}
	got, err := st.Query("nid1", "node", 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 || got.Values[0] != 600 {
		t.Fatalf("query wrong: %+v", got)
	}
}

func TestInsertAppends(t *testing.T) {
	st := NewStore()
	_ = st.Insert("nid1", "node", mkSeries(0, 1, 1, 2))
	if err := st.Insert("nid1", "node", mkSeries(2, 1, 3, 4)); err != nil {
		t.Fatal(err)
	}
	got, _ := st.Query("nid1", "node", 0, 10)
	if got.Len() != 4 {
		t.Fatalf("appended length = %d", got.Len())
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertRejectsOutOfOrder(t *testing.T) {
	st := NewStore()
	_ = st.Insert("nid1", "node", mkSeries(10, 1, 1, 2))
	if err := st.Insert("nid1", "node", mkSeries(5, 1, 3)); err == nil {
		t.Fatal("out-of-order insert accepted")
	}
}

func TestInsertValidation(t *testing.T) {
	st := NewStore()
	if err := st.Insert("", "node", mkSeries(0, 1, 1)); err == nil {
		t.Fatal("empty host accepted")
	}
	if err := st.Insert("nid1", "", mkSeries(0, 1, 1)); err == nil {
		t.Fatal("empty metric accepted")
	}
	bad := timeseries.Series{Times: []float64{1, 1}, Values: []float64{1, 2}}
	if err := st.Insert("nid1", "node", bad); err == nil {
		t.Fatal("invalid series accepted")
	}
	// Empty insert is a no-op.
	if err := st.Insert("nid1", "node", timeseries.Series{}); err != nil {
		t.Fatal(err)
	}
}

func TestQueryErrors(t *testing.T) {
	st := NewStore()
	_ = st.Insert("nid1", "node", mkSeries(0, 1, 1))
	if _, err := st.Query("nope", "node", 0, 1); err == nil {
		t.Fatal("unknown host accepted")
	}
	if _, err := st.Query("nid1", "nope", 0, 1); err == nil {
		t.Fatal("unknown metric accepted")
	}
}

func TestHostsAndMetrics(t *testing.T) {
	st := NewStore()
	_ = st.Insert("b", "node", mkSeries(0, 1, 1))
	_ = st.Insert("a", "cpu", mkSeries(0, 1, 1))
	_ = st.Insert("a", "node", mkSeries(0, 1, 1))
	hosts := st.Hosts()
	if len(hosts) != 2 || hosts[0] != "a" || hosts[1] != "b" {
		t.Fatalf("hosts = %v", hosts)
	}
	ms := st.MetricsOf("a")
	if len(ms) != 2 || ms[0] != "cpu" {
		t.Fatalf("metrics = %v", ms)
	}
}

func TestJobRegistryAndJobPower(t *testing.T) {
	st := NewStore()
	for _, h := range []string{"nid1", "nid2"} {
		_ = st.Insert(h, "node", mkSeries(0, 2, 500, 600, 700, 800, 900))
	}
	job := JobRecord{ID: "123", User: "alice", App: "vasp", Nodes: []string{"nid1", "nid2"}, Start: 2, End: 7}
	if err := st.RegisterJob(job); err != nil {
		t.Fatal(err)
	}
	if err := st.RegisterJob(job); err == nil {
		t.Fatal("duplicate job accepted")
	}
	got, err := st.JobPower("123", "node")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("JobPower nodes = %d", len(got))
	}
	// Samples at t=2,4,6 fall inside [2,7].
	if got["nid1"].Len() != 3 {
		t.Fatalf("window filter wrong: %d samples", got["nid1"].Len())
	}
	ids := st.Jobs()
	if len(ids) != 1 || ids[0] != "123" {
		t.Fatalf("Jobs = %v", ids)
	}
}

func TestJobValidation(t *testing.T) {
	bad := []JobRecord{
		{ID: "", Nodes: []string{"a"}, Start: 0, End: 1},
		{ID: "x", Nodes: nil, Start: 0, End: 1},
		{ID: "x", Nodes: []string{"a"}, Start: 1, End: 1},
	}
	for i, j := range bad {
		if err := j.Validate(); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
	st := NewStore()
	if err := st.RegisterJob(bad[0]); err == nil {
		t.Fatal("invalid job registered")
	}
	if _, err := st.Job("missing"); err == nil {
		t.Fatal("unknown job returned")
	}
	if _, err := st.JobPower("missing", "node"); err == nil {
		t.Fatal("unknown job power returned")
	}
}

func TestJobEnergy(t *testing.T) {
	st := NewStore()
	// Constant 1000 W for 10 s on one node.
	s := timeseries.Series{}
	for i := 0; i <= 10; i++ {
		s.Times = append(s.Times, float64(i))
		s.Values = append(s.Values, 1000)
	}
	_ = st.Insert("nid1", "node", s)
	_ = st.RegisterJob(JobRecord{ID: "j", Nodes: []string{"nid1"}, Start: 0, End: 10})
	e, err := st.JobEnergy("j")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e-10000) > 1e-6 {
		t.Fatalf("energy = %v, want 10000", e)
	}
}

func TestConcurrentAccess(t *testing.T) {
	st := NewStore()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			host := fmt.Sprintf("nid%d", w)
			for i := 0; i < 100; i++ {
				_ = st.Insert(host, "node", mkSeries(float64(i), 0.5, float64(i)))
				_, _ = st.Query(host, "node", 0, 1000)
				st.Hosts()
			}
		}(w)
	}
	wg.Wait()
	if len(st.Hosts()) != 8 {
		t.Fatalf("hosts = %v", st.Hosts())
	}
}
