package par

import (
	"context"
	"errors"
	"testing"

	"vasppower/internal/obs"
)

// TestForEachPreCancelledReturnsError pins the contract the manifest
// relies on: a context that is cancelled before any item starts must
// surface ctx.Err() — for every worker count and item count — and
// report all n items as skipped.
func TestForEachPreCancelledReturnsError(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		m := NewMetrics(obs.NewRegistry())
		SetMetrics(m)
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		ran := false
		err := ForEach(ctx, workers, 5, func(context.Context, int) error {
			ran = true
			return nil
		})
		SetMetrics(nil)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if ran {
			t.Fatalf("workers=%d: item ran under a pre-cancelled context", workers)
		}
		if got := m.ItemsSkipped.Value(); got != 5 {
			t.Fatalf("workers=%d: skipped = %d, want 5", workers, got)
		}
		if m.ItemsStarted.Value() != 0 {
			t.Fatalf("workers=%d: started = %d, want 0", workers, m.ItemsStarted.Value())
		}
	}
}

func TestForEachMetricsFullRun(t *testing.T) {
	for _, workers := range []int{1, 4} {
		m := NewMetrics(obs.NewRegistry())
		SetMetrics(m)
		const n = 20
		err := ForEach(context.Background(), workers, n, func(context.Context, int) error { return nil })
		SetMetrics(nil)
		if err != nil {
			t.Fatal(err)
		}
		if m.ItemsStarted.Value() != n || m.ItemsCompleted.Value() != n {
			t.Fatalf("workers=%d: started=%d completed=%d, want %d/%d",
				workers, m.ItemsStarted.Value(), m.ItemsCompleted.Value(), n, n)
		}
		if m.ItemsSkipped.Value() != 0 {
			t.Fatalf("workers=%d: skipped = %d, want 0", workers, m.ItemsSkipped.Value())
		}
		if m.QueueDepth.Value() != 0 {
			t.Fatalf("workers=%d: queue depth = %d after drain, want 0", workers, m.QueueDepth.Value())
		}
		if m.ItemMS.Count() != n {
			t.Fatalf("workers=%d: item histogram count = %d, want %d", workers, m.ItemMS.Count(), n)
		}
	}
}

// TestForEachMetricsSkippedOnError checks the error path's ledger:
// started + skipped == n, queue depth drains to zero, and the failing
// item still counts as started and completed.
func TestForEachMetricsSkippedOnError(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		m := NewMetrics(obs.NewRegistry())
		SetMetrics(m)
		const n = 50
		err := ForEach(context.Background(), workers, n, func(_ context.Context, i int) error {
			if i == 3 {
				return boom
			}
			return nil
		})
		SetMetrics(nil)
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v, want boom", workers, err)
		}
		started, skipped := m.ItemsStarted.Value(), m.ItemsSkipped.Value()
		if started+skipped != n {
			t.Fatalf("workers=%d: started(%d) + skipped(%d) != %d", workers, started, skipped, n)
		}
		if skipped == 0 {
			t.Fatalf("workers=%d: no items reported skipped after early error", workers)
		}
		if m.ItemsCompleted.Value() != started {
			t.Fatalf("workers=%d: completed(%d) != started(%d)",
				workers, m.ItemsCompleted.Value(), started)
		}
		if m.QueueDepth.Value() != 0 {
			t.Fatalf("workers=%d: queue depth = %d after drain, want 0", workers, m.QueueDepth.Value())
		}
	}
}

// TestForEachUninstrumented guards the default path: no metrics
// installed, everything still works.
func TestForEachUninstrumented(t *testing.T) {
	sum := 0
	err := ForEach(context.Background(), 1, 10, func(_ context.Context, i int) error {
		sum += i
		return nil
	})
	if err != nil || sum != 45 {
		t.Fatalf("sum = %d err = %v", sum, err)
	}
}
