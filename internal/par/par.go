// Package par provides the bounded worker-pool primitive behind the
// parallel measurement engine: deterministic fan-out of independent,
// index-addressed work items with first-error cancellation.
//
// The engine's contract is that parallel execution is an *optimization
// only*: every work item derives its randomness from labels and seeds,
// never from execution order, and callers assemble results by index.
// ForEach therefore produces identical outcomes for every worker
// count; workers == 1 runs the items serially on the calling
// goroutine, which is exactly the pre-engine behavior.
package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a configured worker count: values <= 0 mean "one
// worker per available CPU" (runtime.GOMAXPROCS(0)).
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach invokes fn(ctx, i) for every i in [0, n), running at most
// `workers` invocations concurrently (workers <= 1 runs serially in
// index order). The first error cancels the shared context; items
// that have not started when the cancellation lands are skipped.
// ForEach returns after all in-flight items finish, reporting the
// lowest-index error among the items that ran. When exactly one item
// can fail (the usual case: errors here are deterministic functions
// of the item), that is the same error the serial loop stops at;
// callers that need every item's error regardless of scheduling store
// per-index errors and return nil from fn.
func ForEach(ctx context.Context, workers, n int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(ctx, i); err != nil {
				return err
			}
		}
		return nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		next    atomic.Int64 // next item index to claim
		mu      sync.Mutex
		errIdx  = n // lowest failing index seen so far
		firstEr error
		wg      sync.WaitGroup
	)
	record := func(i int, err error) {
		mu.Lock()
		if i < errIdx {
			errIdx, firstEr = i, err
		}
		mu.Unlock()
		cancel()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if ctx.Err() != nil {
					return
				}
				if err := fn(ctx, i); err != nil {
					record(i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if firstEr != nil {
		return firstEr
	}
	return ctx.Err()
}
