// Package par provides the bounded worker-pool primitive behind the
// parallel measurement engine: deterministic fan-out of independent,
// index-addressed work items with first-error cancellation.
//
// The engine's contract is that parallel execution is an *optimization
// only*: every work item derives its randomness from labels and seeds,
// never from execution order, and callers assemble results by index.
// ForEach therefore produces identical outcomes for every worker
// count; workers == 1 runs the items serially on the calling
// goroutine, which is exactly the pre-engine behavior.
package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"vasppower/internal/obs"
)

// Workers resolves a configured worker count: values <= 0 mean "one
// worker per available CPU" (runtime.GOMAXPROCS(0)).
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Metrics is the pool's observability hook, shared by every ForEach in
// the process (the measurement engine nests pools — experiments fan
// out sweeps which fan out repeats — and one ledger across all of them
// is what makes a run's manifest legible). ItemsStarted counts fn
// invocations; ItemsCompleted counts fn returns (successful or not);
// ItemsSkipped counts items never run because cancellation or an
// earlier error landed first, so cancelled runs are visible instead of
// silently short. BusyNS accumulates per-worker busy time across the
// pool, ItemMS is the per-item duration distribution, and QueueDepth
// tracks items accepted but not yet claimed.
type Metrics struct {
	ItemsStarted   *obs.Counter
	ItemsCompleted *obs.Counter
	ItemsSkipped   *obs.Counter
	BusyNS         *obs.Counter
	ItemMS         *obs.Histogram
	QueueDepth     *obs.Gauge
}

// itemBucketsMS spans trimmed -quick items (sub-ms) to full
// paper-protocol measurements (tens of seconds).
var itemBucketsMS = []float64{1, 10, 100, 1000, 10000, 60000}

// NewMetrics registers the pool metric set under "par." in reg.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		ItemsStarted:   reg.Counter("par.items_started"),
		ItemsCompleted: reg.Counter("par.items_completed"),
		ItemsSkipped:   reg.Counter("par.items_skipped"),
		BusyNS:         reg.Counter("par.worker_busy_ns"),
		ItemMS:         reg.Histogram("par.item_ms", itemBucketsMS),
		QueueDepth:     reg.Gauge("par.queue_depth"),
	}
}

// metrics is the process-wide recorder; nil (the default) makes every
// ForEach metrics-free at the cost of one atomic load per call.
var metrics atomic.Pointer[Metrics]

// SetMetrics installs (or, with nil, removes) the process-wide pool
// metrics. Install once at startup, before pools run.
func SetMetrics(m *Metrics) { metrics.Store(m) }

// tracker scopes one ForEach call's contribution to the global
// metrics. A nil-metrics tracker no-ops everywhere.
type tracker struct {
	m       *Metrics
	n       int64
	claimed atomic.Int64
	started atomic.Int64
}

func newTracker(n int) *tracker {
	t := &tracker{m: metrics.Load(), n: int64(n)}
	if t.m != nil {
		t.m.QueueDepth.Add(t.n)
	}
	return t
}

// claim marks one item as taken off the queue (it may still be
// skipped if cancellation already landed).
func (t *tracker) claim() {
	if t.m == nil {
		return
	}
	t.claimed.Add(1)
	t.m.QueueDepth.Add(-1)
}

// run times one fn invocation.
func (t *tracker) run(fn func() error) error {
	if t.m == nil {
		return fn()
	}
	t.started.Add(1)
	t.m.ItemsStarted.Add(1)
	start := time.Now()
	err := fn()
	d := time.Since(start)
	t.m.BusyNS.Add(int64(d))
	t.m.ItemMS.Observe(float64(d) / 1e6)
	t.m.ItemsCompleted.Add(1)
	return err
}

// finish drains the queue-depth contribution of unclaimed items and
// records every item that never ran as skipped.
func (t *tracker) finish() {
	if t.m == nil {
		return
	}
	t.m.QueueDepth.Add(-(t.n - t.claimed.Load()))
	t.m.ItemsSkipped.Add(t.n - t.started.Load())
}

// ForEach invokes fn(ctx, i) for every i in [0, n), running at most
// `workers` invocations concurrently (workers <= 1 runs serially in
// index order). The first error cancels the shared context; items
// that have not started when the cancellation lands are skipped and
// counted in Metrics.ItemsSkipped. A context that is already cancelled
// on entry returns ctx.Err() with every item skipped — never a silent
// success. ForEach returns after all in-flight items finish, reporting
// the lowest-index error among the items that ran. When exactly one
// item can fail (the usual case: errors here are deterministic
// functions of the item), that is the same error the serial loop stops
// at; callers that need every item's error regardless of scheduling
// store per-index errors and return nil from fn.
func ForEach(ctx context.Context, workers, n int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	if err := ctx.Err(); err != nil {
		// Already cancelled before any item could start: report it
		// (and make the n skipped items visible) rather than falling
		// through to a path that might mask the cancellation.
		if m := metrics.Load(); m != nil {
			m.ItemsSkipped.Add(int64(n))
		}
		return err
	}
	if workers > n {
		workers = n
	}
	tk := newTracker(n)
	defer tk.finish()
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			tk.claim()
			if err := tk.run(func() error { return fn(ctx, i) }); err != nil {
				return err
			}
		}
		return nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		next    atomic.Int64 // next item index to claim
		mu      sync.Mutex
		errIdx  = n // lowest failing index seen so far
		firstEr error
		wg      sync.WaitGroup
	)
	record := func(i int, err error) {
		mu.Lock()
		if i < errIdx {
			errIdx, firstEr = i, err
		}
		mu.Unlock()
		cancel()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				tk.claim()
				if ctx.Err() != nil {
					return
				}
				if err := tk.run(func() error { return fn(ctx, i) }); err != nil {
					record(i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if firstEr != nil {
		return firstEr
	}
	return ctx.Err()
}
