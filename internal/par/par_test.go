package par

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(4); got != 4 {
		t.Fatalf("Workers(4) = %d", got)
	}
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d, want GOMAXPROCS", got)
	}
}

func TestForEachCoversAllItems(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		n := 50
		seen := make([]int32, n)
		err := ForEach(context.Background(), workers, n, func(_ context.Context, i int) error {
			atomic.AddInt32(&seen[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("workers=%d: item %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEachSerialStopsAtFirstError(t *testing.T) {
	boom := errors.New("boom")
	var ran []int
	err := ForEach(context.Background(), 1, 10, func(_ context.Context, i int) error {
		ran = append(ran, i)
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if len(ran) != 4 {
		t.Fatalf("serial run did not stop at the failing item: ran %v", ran)
	}
}

func TestForEachParallelCancelsOnError(t *testing.T) {
	boom := errors.New("boom")
	var started atomic.Int32
	err := ForEach(context.Background(), 4, 1000, func(_ context.Context, i int) error {
		started.Add(1)
		if i == 0 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if n := started.Load(); n == 1000 {
		t.Fatal("cancellation did not skip any pending items")
	}
}

func TestForEachLowestIndexErrorWins(t *testing.T) {
	// Every item fails; the reported error must come from an item that
	// actually ran, and among those the lowest index.
	err := ForEach(context.Background(), 8, 64, func(_ context.Context, i int) error {
		return fmt.Errorf("item %d", i)
	})
	if err == nil {
		t.Fatal("expected an error")
	}
}

func TestForEachHonorsParentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	err := ForEach(ctx, 1, 5, func(context.Context, int) error { calls++; return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if calls != 0 {
		t.Fatalf("ran %d items under a canceled context", calls)
	}
}

func TestForEachZeroItems(t *testing.T) {
	if err := ForEach(context.Background(), 4, 0, nil); err != nil {
		t.Fatalf("n=0: %v", err)
	}
}
