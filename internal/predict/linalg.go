// Package predict implements the paper's proposed next step (§VI-C):
// predicting a VASP job's power from quantities visible to the
// scheduler before the job runs — the workload type and the
// computational sizes (plane waves, bands, electrons, concurrency)
// readable from the INCAR. Per-class ridge-regression models in log
// space are trained on simulated silicon-supercell profiles and
// evaluated on the (held-out) Table I production benchmarks.
package predict

import (
	"fmt"
	"math"
)

// solveRidge solves (XᵀX + λI)β = Xᵀy for β by Gaussian elimination
// with partial pivoting. X is n×p (row-major), y has length n.
func solveRidge(X [][]float64, y []float64, lambda float64) ([]float64, error) {
	n := len(X)
	if n == 0 || n != len(y) {
		return nil, fmt.Errorf("predict: %d rows but %d targets", n, len(y))
	}
	p := len(X[0])
	for i, row := range X {
		if len(row) != p {
			return nil, fmt.Errorf("predict: ragged design matrix at row %d", i)
		}
	}
	if lambda < 0 {
		return nil, fmt.Errorf("predict: negative ridge penalty %v", lambda)
	}
	// Normal equations.
	A := make([][]float64, p)
	b := make([]float64, p)
	for i := 0; i < p; i++ {
		A[i] = make([]float64, p)
		for j := 0; j < p; j++ {
			var s float64
			for r := 0; r < n; r++ {
				s += X[r][i] * X[r][j]
			}
			A[i][j] = s
		}
		A[i][i] += lambda
		var s float64
		for r := 0; r < n; r++ {
			s += X[r][i] * y[r]
		}
		b[i] = s
	}
	return solveLinear(A, b)
}

// solveLinear solves A·x = b in place by Gaussian elimination with
// partial pivoting.
func solveLinear(A [][]float64, b []float64) ([]float64, error) {
	p := len(A)
	for col := 0; col < p; col++ {
		// Pivot.
		pivot := col
		best := math.Abs(A[col][col])
		for r := col + 1; r < p; r++ {
			if v := math.Abs(A[r][col]); v > best {
				best, pivot = v, r
			}
		}
		if best < 1e-12 {
			return nil, fmt.Errorf("predict: singular system at column %d", col)
		}
		A[col], A[pivot] = A[pivot], A[col]
		b[col], b[pivot] = b[pivot], b[col]
		// Eliminate.
		for r := col + 1; r < p; r++ {
			f := A[r][col] / A[col][col]
			if f == 0 {
				continue
			}
			for c := col; c < p; c++ {
				A[r][c] -= f * A[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	// Back substitution.
	x := make([]float64, p)
	for r := p - 1; r >= 0; r-- {
		s := b[r]
		for c := r + 1; c < p; c++ {
			s -= A[r][c] * x[c]
		}
		x[r] = s / A[r][r]
	}
	return x, nil
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
