package predict

import (
	"fmt"
	"math"

	"vasppower/internal/sched"
	"vasppower/internal/workloads"
)

// Features extracts the scheduler-visible predictors of one job:
// everything comes from the INCAR/KPOINTS and the requested node
// count — no measurement of the job itself is needed, which is the
// §VI-A requirement ("without costly computation").
func Features(b workloads.Benchmark, nodes int) ([]float64, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	if nodes <= 0 {
		return nil, fmt.Errorf("predict: node count %d", nodes)
	}
	ranks := 4 * nodes
	kpar := b.KPar
	if ranks%kpar != 0 {
		kpar = 1
	}
	bandsPerGPU := float64(b.NBands) * float64(kpar) / float64(ranks)
	if bandsPerGPU < 1 {
		bandsPerGPU = 1
	}
	return []float64{
		1,
		math.Log(float64(b.NPLWV())),
		math.Log(bandsPerGPU),
		math.Log(float64(b.Structure.Electrons)),
		math.Log(float64(nodes)),
		math.Log(float64(b.KPoints.Reduced())),
	}, nil
}

// featureDim is the length of the Features vector.
const featureDim = 6

// Model predicts node-level high power mode (watts) from job
// features, one ridge regression per workload class.
type Model struct {
	coef map[sched.Class][]float64
}

// Sample is one training observation.
type Sample struct {
	Bench    workloads.Benchmark
	Nodes    int
	NodeMode float64 // measured high power mode per node, W
}

// Fit trains the per-class models. Each class needs at least
// featureDim+1 samples.
func Fit(samples []Sample, lambda float64) (*Model, error) {
	byClass := map[sched.Class][]Sample{}
	for _, s := range samples {
		if s.NodeMode <= 0 {
			return nil, fmt.Errorf("predict: sample %s has mode %v", s.Bench.Name, s.NodeMode)
		}
		c := sched.Classify(s.Bench.Method)
		byClass[c] = append(byClass[c], s)
	}
	m := &Model{coef: map[sched.Class][]float64{}}
	for class, ss := range byClass {
		if len(ss) < featureDim+1 {
			return nil, fmt.Errorf("predict: class %v has only %d samples (need ≥ %d)",
				class, len(ss), featureDim+1)
		}
		X := make([][]float64, len(ss))
		y := make([]float64, len(ss))
		for i, s := range ss {
			f, err := Features(s.Bench, s.Nodes)
			if err != nil {
				return nil, err
			}
			X[i] = f
			// Fit in log space: power spans 700–1900 W and effects are
			// multiplicative (saturation curves).
			y[i] = math.Log(s.NodeMode)
		}
		beta, err := solveRidge(X, y, lambda)
		if err != nil {
			return nil, fmt.Errorf("predict: class %v: %w", class, err)
		}
		m.coef[class] = beta
	}
	return m, nil
}

// Classes returns the classes the model can predict.
func (m *Model) Classes() []sched.Class {
	var out []sched.Class
	for c := range m.coef {
		out = append(out, c)
	}
	return out
}

// Predict estimates the node high power mode (W) for a job.
func (m *Model) Predict(b workloads.Benchmark, nodes int) (float64, error) {
	class := sched.Classify(b.Method)
	beta, ok := m.coef[class]
	if !ok {
		return 0, fmt.Errorf("predict: no model for class %v", class)
	}
	f, err := Features(b, nodes)
	if err != nil {
		return 0, err
	}
	return math.Exp(dot(beta, f)), nil
}

// Evaluation summarizes prediction error over a test set.
type Evaluation struct {
	N    int
	MAPE float64 // mean absolute percentage error
	Max  float64 // worst absolute percentage error
}

// Evaluate scores the model against measured samples.
func (m *Model) Evaluate(test []Sample) (Evaluation, error) {
	var ev Evaluation
	for _, s := range test {
		pred, err := m.Predict(s.Bench, s.Nodes)
		if err != nil {
			return ev, err
		}
		ape := math.Abs(pred-s.NodeMode) / s.NodeMode
		ev.MAPE += ape
		if ape > ev.Max {
			ev.Max = ape
		}
		ev.N++
	}
	if ev.N > 0 {
		ev.MAPE /= float64(ev.N)
	}
	return ev, nil
}
