package predict

import (
	"math"
	"testing"

	"vasppower/internal/rng"
	"vasppower/internal/workloads"
)

func TestSolveLinearKnownSystem(t *testing.T) {
	A := [][]float64{{2, 1}, {1, 3}}
	b := []float64{5, 10}
	x, err := solveLinear(A, b)
	if err != nil {
		t.Fatal(err)
	}
	// Solution of 2x+y=5, x+3y=10 → x=1, y=3.
	if math.Abs(x[0]-1) > 1e-9 || math.Abs(x[1]-3) > 1e-9 {
		t.Fatalf("x = %v", x)
	}
}

func TestSolveLinearSingular(t *testing.T) {
	A := [][]float64{{1, 2}, {2, 4}}
	if _, err := solveLinear(A, []float64{1, 2}); err == nil {
		t.Fatal("singular system accepted")
	}
}

func TestSolveLinearNeedsPivoting(t *testing.T) {
	// Zero on the diagonal: fails without partial pivoting.
	A := [][]float64{{0, 1}, {1, 0}}
	x, err := solveLinear(A, []float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-3) > 1e-9 || math.Abs(x[1]-2) > 1e-9 {
		t.Fatalf("x = %v", x)
	}
}

func TestRidgeRecoversCoefficients(t *testing.T) {
	// y = 3 + 2·x1 − x2 with small noise; OLS (λ→0) recovers it.
	r := rng.New(1)
	var X [][]float64
	var y []float64
	for i := 0; i < 200; i++ {
		x1, x2 := r.Uniform(-2, 2), r.Uniform(-2, 2)
		X = append(X, []float64{1, x1, x2})
		y = append(y, 3+2*x1-x2+r.Normal(0, 0.01))
	}
	beta, err := solveRidge(X, y, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 2, -1}
	for i := range want {
		if math.Abs(beta[i]-want[i]) > 0.02 {
			t.Fatalf("beta = %v, want ≈ %v", beta, want)
		}
	}
}

func TestRidgeShrinks(t *testing.T) {
	r := rng.New(2)
	var X [][]float64
	var y []float64
	for i := 0; i < 50; i++ {
		x := r.Uniform(-1, 1)
		X = append(X, []float64{1, x})
		y = append(y, 5*x+r.Normal(0, 0.1))
	}
	small, _ := solveRidge(X, y, 1e-9)
	big, _ := solveRidge(X, y, 100)
	if math.Abs(big[1]) >= math.Abs(small[1]) {
		t.Fatalf("ridge did not shrink: %v vs %v", big[1], small[1])
	}
}

func TestSolveRidgeValidation(t *testing.T) {
	if _, err := solveRidge(nil, nil, 0); err == nil {
		t.Fatal("empty system accepted")
	}
	if _, err := solveRidge([][]float64{{1}}, []float64{1, 2}, 0); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := solveRidge([][]float64{{1, 2}, {1}}, []float64{1, 2}, 0); err == nil {
		t.Fatal("ragged matrix accepted")
	}
	if _, err := solveRidge([][]float64{{1}}, []float64{1}, -1); err == nil {
		t.Fatal("negative lambda accepted")
	}
}

func TestFeatures(t *testing.T) {
	b, _ := workloads.ByName("Si256_hse")
	f, err := Features(b, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(f) != featureDim || f[0] != 1 {
		t.Fatalf("features = %v", f)
	}
	// NPLWV feature is log(512000).
	if math.Abs(f[1]-math.Log(512000)) > 1e-9 {
		t.Fatalf("nplwv feature = %v", f[1])
	}
	// More nodes → fewer bands per GPU.
	f4, _ := Features(b, 4)
	if f4[2] >= f[2] {
		t.Fatal("bands-per-GPU feature did not shrink with nodes")
	}
	if _, err := Features(b, 0); err == nil {
		t.Fatal("zero nodes accepted")
	}
}

func TestFitValidation(t *testing.T) {
	b, _ := workloads.ByName("PdO2")
	if _, err := Fit([]Sample{{Bench: b, Nodes: 1, NodeMode: 0}}, 1e-3); err == nil {
		t.Fatal("zero-mode sample accepted")
	}
	// Too few samples for a class.
	if _, err := Fit([]Sample{{Bench: b, Nodes: 1, NodeMode: 900}}, 1e-3); err == nil {
		t.Fatal("under-determined class accepted")
	}
}

// TestFitPredictSynthetic checks the full pipeline against a
// synthetic power law: if modes follow exp(β·features) exactly, the
// model recovers them.
func TestFitPredictSynthetic(t *testing.T) {
	var samples []Sample
	for _, atoms := range []int{64, 128, 256, 512, 1024, 2048} {
		for _, nodes := range []int{1, 2} {
			b, err := workloads.SiliconBenchmark(atoms, workloads.TableI()[2].Method) // DFTRMM
			if err != nil {
				t.Fatal(err)
			}
			f, _ := Features(b, nodes)
			mode := math.Exp(5 + 0.1*f[1] + 0.05*f[2] + 0.02*f[3] - 0.03*f[4])
			samples = append(samples, Sample{Bench: b, Nodes: nodes, NodeMode: mode})
		}
	}
	m, err := Fit(samples, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := m.Evaluate(samples)
	if err != nil {
		t.Fatal(err)
	}
	if ev.MAPE > 1e-6 {
		t.Fatalf("exact synthetic fit should have ~zero error, MAPE %v", ev.MAPE)
	}
	// Unknown class rejected.
	hseBench, _ := workloads.ByName("Si256_hse")
	if _, err := m.Predict(hseBench, 1); err == nil {
		t.Fatal("prediction for untrained class accepted")
	}
}
