// Package report renders experiment results as terminal text: aligned
// tables, horizontal bar charts, sparklines, and ASCII histograms, so
// every figure of the paper can be regenerated in a terminal without
// plotting dependencies.
package report

import (
	"fmt"
	"math"
	"strings"

	"vasppower/internal/stats"
	"vasppower/internal/timeseries"
)

// Table is a simple column-aligned text table.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given header.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.header))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			sb.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		sb.WriteString("\n")
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return sb.String()
}

// Bar renders a horizontal bar scaled so that `max` fills `width`
// characters, with the numeric value appended.
func Bar(value, max float64, width int) string {
	if width <= 0 {
		width = 40
	}
	if max <= 0 {
		max = 1
	}
	n := int(math.Round(value / max * float64(width)))
	if n < 0 {
		n = 0
	}
	if n > width {
		n = width
	}
	return strings.Repeat("█", n) + strings.Repeat("·", width-n)
}

var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders values as a compact unicode strip, downsampling
// to at most width points by window-averaging.
func Sparkline(values []float64, width int) string {
	if len(values) == 0 {
		return ""
	}
	if width <= 0 {
		width = 60
	}
	pts := values
	if len(values) > width {
		pts = make([]float64, width)
		for i := range pts {
			lo := i * len(values) / width
			hi := (i + 1) * len(values) / width
			if hi <= lo {
				hi = lo + 1
			}
			var sum float64
			for _, v := range values[lo:hi] {
				sum += v
			}
			pts[i] = sum / float64(hi-lo)
		}
	}
	lo, hi := pts[0], pts[0]
	for _, v := range pts {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	var sb strings.Builder
	for _, v := range pts {
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(sparkRunes)-1))
		}
		sb.WriteRune(sparkRunes[idx])
	}
	return sb.String()
}

// SeriesLine renders a labeled sparkline with range annotations.
func SeriesLine(label string, s timeseries.Series, width int) string {
	if s.Len() == 0 {
		return fmt.Sprintf("%-14s (no samples)", label)
	}
	return fmt.Sprintf("%-14s %s  [%.0f..%.0f W, mean %.0f]",
		label, Sparkline(s.Values, width), s.Min(), s.Max(), s.Mean())
}

// HistogramText renders a histogram as rows of bars.
func HistogramText(h *stats.Histogram, width int) string {
	var sb strings.Builder
	maxCount := 0
	for _, c := range h.Counts {
		if c > maxCount {
			maxCount = c
		}
	}
	if maxCount == 0 {
		return "(empty histogram)\n"
	}
	for i, c := range h.Counts {
		fmt.Fprintf(&sb, "%8.0f W  %s %d\n", h.BinCenter(i), Bar(float64(c), float64(maxCount), width), c)
	}
	return sb.String()
}

// ViolinText renders one violin as a density strip plus quartiles and
// modes.
func ViolinText(v *stats.Violin, width int) string {
	if v == nil {
		return "(empty violin)\n"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-18s %s\n", v.Label, Sparkline(v.KDE.Density, width))
	fmt.Fprintf(&sb, "%-18s min %.0f  q1 %.0f  med %.0f  q3 %.0f  max %.0f",
		"", v.Summary.Min, v.Summary.Q1, v.Summary.Median, v.Summary.Q3, v.Summary.Max)
	if hpm, ok := v.HighPowerMode(); ok {
		fmt.Fprintf(&sb, "  high-mode %.0f (FWHM %.0f)", hpm.X, hpm.FWHM)
	}
	sb.WriteString("\n")
	return sb.String()
}

// Watts formats a power value compactly.
func Watts(w float64) string { return fmt.Sprintf("%.0f W", w) }

// Seconds formats a duration compactly.
func Seconds(s float64) string {
	if s >= 100 {
		return fmt.Sprintf("%.0f s", s)
	}
	return fmt.Sprintf("%.1f s", s)
}

// Percent formats a ratio as a percentage.
func Percent(x float64) string { return fmt.Sprintf("%.1f%%", x*100) }
