package report

import (
	"strings"
	"testing"
	"unicode/utf8"

	"vasppower/internal/rng"
	"vasppower/internal/stats"
	"vasppower/internal/timeseries"
)

func TestTableAlignment(t *testing.T) {
	tb := NewTable("name", "value")
	tb.AddRow("a", "1")
	tb.AddRow("longer-name", "22")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
	// All rows equal width.
	w := len(lines[0])
	for i, l := range lines {
		if len(strings.TrimRight(l, " ")) > w {
			t.Fatalf("row %d wider than header: %q", i, l)
		}
	}
	if !strings.Contains(out, "longer-name") {
		t.Fatal("row content missing")
	}
}

func TestTableShortRowPadded(t *testing.T) {
	tb := NewTable("a", "b", "c")
	tb.AddRow("only")
	out := tb.String()
	if !strings.Contains(out, "only") {
		t.Fatal("short row lost")
	}
}

func TestBar(t *testing.T) {
	full := Bar(10, 10, 10)
	if utf8.RuneCountInString(full) != 10 || strings.Contains(full, "·") {
		t.Fatalf("full bar wrong: %q", full)
	}
	empty := Bar(0, 10, 10)
	if strings.Contains(empty, "█") {
		t.Fatalf("empty bar wrong: %q", empty)
	}
	half := Bar(5, 10, 10)
	if strings.Count(half, "█") != 5 {
		t.Fatalf("half bar wrong: %q", half)
	}
	// Clamping.
	over := Bar(20, 10, 10)
	if utf8.RuneCountInString(over) != 10 {
		t.Fatalf("over bar wrong: %q", over)
	}
	if got := Bar(1, 0, 0); got == "" {
		t.Fatal("degenerate args should still render")
	}
}

func TestSparkline(t *testing.T) {
	if Sparkline(nil, 10) != "" {
		t.Fatal("empty sparkline should be empty")
	}
	s := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7}, 8)
	if utf8.RuneCountInString(s) != 8 {
		t.Fatalf("sparkline length wrong: %q", s)
	}
	if !strings.HasPrefix(s, "▁") || !strings.HasSuffix(s, "█") {
		t.Fatalf("monotone ramp should span glyph range: %q", s)
	}
	// Downsampling to width.
	long := make([]float64, 1000)
	for i := range long {
		long[i] = float64(i)
	}
	d := Sparkline(long, 40)
	if utf8.RuneCountInString(d) != 40 {
		t.Fatalf("downsampled length = %d", utf8.RuneCountInString(d))
	}
	// Constant input does not panic (zero range).
	c := Sparkline([]float64{5, 5, 5}, 10)
	if c == "" {
		t.Fatal("constant sparkline empty")
	}
}

func TestSeriesLine(t *testing.T) {
	var s timeseries.Series
	if !strings.Contains(SeriesLine("x", s, 10), "no samples") {
		t.Fatal("empty series line wrong")
	}
	s.Times = []float64{1, 2, 3}
	s.Values = []float64{100, 200, 300}
	line := SeriesLine("node", s, 10)
	if !strings.Contains(line, "node") || !strings.Contains(line, "mean 200") {
		t.Fatalf("series line wrong: %q", line)
	}
}

func TestHistogramText(t *testing.T) {
	h := stats.NewHistogram([]float64{1, 1, 2, 3}, 3, 0, 3)
	out := HistogramText(h, 20)
	if strings.Count(out, "\n") != 3 {
		t.Fatalf("histogram rows wrong: %q", out)
	}
	empty := stats.NewHistogram(nil, 3, 0, 3)
	if !strings.Contains(HistogramText(empty, 20), "empty") {
		t.Fatal("empty histogram not flagged")
	}
}

func TestViolinText(t *testing.T) {
	r := rng.New(1)
	var xs []float64
	for i := 0; i < 2000; i++ {
		xs = append(xs, r.Normal(500, 20))
	}
	v := stats.NewViolin("hse", xs)
	out := ViolinText(v, 30)
	if !strings.Contains(out, "hse") || !strings.Contains(out, "high-mode") {
		t.Fatalf("violin text wrong: %q", out)
	}
	if !strings.Contains(ViolinText(nil, 30), "empty") {
		t.Fatal("nil violin not flagged")
	}
}

func TestFormatters(t *testing.T) {
	if Watts(123.4) != "123 W" {
		t.Fatalf("Watts = %q", Watts(123.4))
	}
	if Seconds(5.25) != "5.2 s" {
		t.Fatalf("Seconds = %q", Seconds(5.25))
	}
	if Seconds(250) != "250 s" {
		t.Fatalf("Seconds = %q", Seconds(250))
	}
	if Percent(0.095) != "9.5%" {
		t.Fatalf("Percent = %q", Percent(0.095))
	}
}
