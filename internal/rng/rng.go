// Package rng provides deterministic, label-splittable pseudo-random
// streams for the simulator.
//
// Every stochastic element of the simulation (per-node manufacturing
// variability, sensor noise, runtime jitter, scheduler arrivals) draws
// from a Stream derived from a root seed and a chain of string labels.
// Two runs with the same root seed therefore produce bit-identical
// results, and changing one subsystem's draws never perturbs another's
// — the property the paper's five-repeat protocol needs to be testable.
//
// The generator is a 64-bit PCG variant (PCG-XSH-RR with a 128-bit LCG
// replaced by two 64-bit words, matching the construction used by
// math/rand/v2), implemented locally so the stream layout is frozen
// regardless of Go version.
package rng

import (
	"hash/fnv"
	"math"
)

// Stream is a deterministic pseudo-random number generator.
// It is not safe for concurrent use; derive one Stream per goroutine
// via Split.
type Stream struct {
	hi, lo uint64
	// cached spare normal deviate for Box-Muller
	spare    float64
	hasSpare bool
}

// New returns a Stream seeded from the given 64-bit seed.
func New(seed uint64) *Stream {
	s := &Stream{}
	s.seed(seed, seed*0x9e3779b97f4a7c15+0x243f6a8885a308d3)
	return s
}

func (s *Stream) seed(hi, lo uint64) {
	s.hi = hi
	s.lo = lo
	s.hasSpare = false
	// Warm up: the first outputs of a low-entropy LCG state correlate
	// with the seed; discard a few.
	for i := 0; i < 4; i++ {
		s.Uint64()
	}
}

const (
	mulHi = 2549297995355413924
	mulLo = 4865540595714422341
	incHi = 6364136223846793005
	incLo = 1442695040888963407
)

// Uint64 returns the next 64 bits from the stream.
func (s *Stream) Uint64() uint64 {
	// 128-bit LCG step: state = state*mul + inc.
	hi, lo := s.hi, s.lo
	pHi, pLo := mul64(lo, mulLo)
	newLo := pLo + incLo
	var carry uint64
	if newLo < pLo {
		carry = 1
	}
	newHi := hi*mulLo + lo*mulHi + pHi + incHi + carry
	s.lo = newLo
	s.hi = newHi

	// DXSM output permutation (as in PCG64 DXSM).
	h := s.hi
	l := s.lo | 1
	h ^= h >> 32
	h *= mulLo
	h ^= h >> 48
	h *= l
	return h
}

// mul64 returns the 128-bit product of x and y as (hi, lo).
func mul64(x, y uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	x0, x1 := x&mask32, x>>32
	y0, y1 := y&mask32, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += x0 * y1
	hi = x1*y1 + w2 + w1>>32
	lo = x * y
	return
}

// Split derives an independent child stream identified by label.
// The derivation hashes the parent's current state with the label, so
// Split may be called repeatedly with distinct labels to build a tree
// of independent streams. Splitting does not advance the parent.
func (s *Stream) Split(label string) *Stream {
	h := fnv.New64a()
	var buf [16]byte
	putUint64(buf[0:8], s.hi)
	putUint64(buf[8:16], s.lo)
	h.Write(buf[:])
	h.Write([]byte(label))
	child := &Stream{}
	hv := h.Sum64()
	child.seed(hv, hv^0x5851f42d4c957f2d)
	return child
}

func putUint64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

// Float64 returns a uniform deviate in [0, 1).
func (s *Stream) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Uniform returns a uniform deviate in [lo, hi).
func (s *Stream) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.Float64()
}

// IntN returns a uniform integer in [0, n). It panics if n <= 0.
func (s *Stream) IntN(n int) int {
	if n <= 0 {
		panic("rng: IntN with non-positive n")
	}
	// Lemire's nearly-divisionless bounded sampling.
	un := uint64(n)
	v := s.Uint64()
	hi, lo := mul64(v, un)
	if lo < un {
		thresh := -un % un
		for lo < thresh {
			v = s.Uint64()
			hi, lo = mul64(v, un)
		}
	}
	return int(hi)
}

// Normal returns a normally distributed deviate with the given mean and
// standard deviation, via the Box-Muller transform.
func (s *Stream) Normal(mean, stddev float64) float64 {
	if s.hasSpare {
		s.hasSpare = false
		return mean + stddev*s.spare
	}
	var u, v, r2 float64
	for {
		u = 2*s.Float64() - 1
		v = 2*s.Float64() - 1
		r2 = u*u + v*v
		if r2 > 0 && r2 < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(r2) / r2)
	s.spare = v * f
	s.hasSpare = true
	return mean + stddev*u*f
}

// LogNormal returns a deviate whose logarithm is normal with parameters
// mu and sigma. Used for runtime jitter (multiplicative noise ≥ 0).
func (s *Stream) LogNormal(mu, sigma float64) float64 {
	return math.Exp(s.Normal(mu, sigma))
}

// Exponential returns an exponentially distributed deviate with the
// given mean (used by the scheduler's arrival process).
func (s *Stream) Exponential(mean float64) float64 {
	u := s.Float64()
	// Guard against log(0).
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	return -mean * math.Log(1-u)
}

// Bool returns true with probability p.
func (s *Stream) Bool(p float64) bool {
	return s.Float64() < p
}

// Perm returns a random permutation of [0, n).
func (s *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := s.IntN(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle randomizes the order of elements using swap.
func (s *Stream) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.IntN(i + 1)
		swap(i, j)
	}
}
