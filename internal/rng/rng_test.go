package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("streams diverged at draw %d: %d != %d", i, av, bv)
		}
	}
}

func TestSeedsProduceDistinctStreams(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical draws out of 100", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	root := New(7)
	a := root.Split("node0")
	b := root.Split("node1")
	a2 := root.Split("node0")
	// Same label twice (without advancing the parent) is reproducible.
	for i := 0; i < 100; i++ {
		if a.Uint64() != a2.Uint64() {
			t.Fatalf("same-label splits diverged at draw %d", i)
		}
	}
	// Distinct labels give distinct streams.
	c := root.Split("node0")
	d := root.Split("node1")
	_ = b
	diff := false
	for i := 0; i < 10; i++ {
		if c.Uint64() != d.Uint64() {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("distinct labels produced identical streams")
	}
}

func TestSplitDoesNotAdvanceParent(t *testing.T) {
	a := New(99)
	b := New(99)
	_ = a.Split("x")
	_ = a.Split("y")
	for i := 0; i < 50; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Split advanced the parent stream")
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 100000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(5)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ≈ 0.5", mean)
	}
}

func TestIntNBounds(t *testing.T) {
	s := New(11)
	counts := make([]int, 7)
	for i := 0; i < 70000; i++ {
		v := s.IntN(7)
		if v < 0 || v >= 7 {
			t.Fatalf("IntN(7) out of range: %d", v)
		}
		counts[v]++
	}
	for i, c := range counts {
		if c < 8000 || c > 12000 {
			t.Fatalf("IntN(7) bucket %d count %d far from uniform (10000)", i, c)
		}
	}
}

func TestIntNPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("IntN(0) did not panic")
		}
	}()
	New(1).IntN(0)
}

func TestNormalMoments(t *testing.T) {
	s := New(17)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := s.Normal(10, 3)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-10) > 0.05 {
		t.Fatalf("normal mean = %v, want ≈ 10", mean)
	}
	if math.Abs(math.Sqrt(variance)-3) > 0.05 {
		t.Fatalf("normal stddev = %v, want ≈ 3", math.Sqrt(variance))
	}
}

func TestLogNormalPositive(t *testing.T) {
	s := New(23)
	for i := 0; i < 10000; i++ {
		if v := s.LogNormal(0, 0.5); v <= 0 {
			t.Fatalf("LogNormal produced non-positive value %v", v)
		}
	}
}

func TestExponentialMean(t *testing.T) {
	s := New(29)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := s.Exponential(4)
		if v < 0 {
			t.Fatalf("Exponential produced negative value %v", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-4) > 0.1 {
		t.Fatalf("exponential mean = %v, want ≈ 4", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(31)
	for trial := 0; trial < 20; trial++ {
		n := 1 + s.IntN(50)
		p := s.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShufflePreservesElements(t *testing.T) {
	s := New(37)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range xs {
		sum += v
	}
	s.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	sum2 := 0
	for _, v := range xs {
		sum2 += v
	}
	if sum != sum2 {
		t.Fatalf("Shuffle changed multiset: sum %d -> %d", sum, sum2)
	}
}

func TestBoolProbability(t *testing.T) {
	s := New(41)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if s.Bool(0.25) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.25) > 0.01 {
		t.Fatalf("Bool(0.25) hit rate = %v", frac)
	}
}

// Property: mul64 agrees with big-integer multiplication for the low
// and high words (checked against the math/bits identity using the
// schoolbook decomposition with independent operands).
func TestMul64Property(t *testing.T) {
	f := func(x, y uint64) bool {
		hi, lo := mul64(x, y)
		// Verify lo is the truncated product.
		if lo != x*y {
			return false
		}
		// Verify hi via decomposition into 32-bit halves, computed
		// with a different association order.
		const mask = 1<<32 - 1
		a, b := x>>32, x&mask
		c, d := y>>32, y&mask
		bd := b * d
		ad := a * d
		bc := b * c
		mid := ad&mask + bc&mask + bd>>32
		wantHi := a*c + ad>>32 + bc>>32 + mid>>32
		return hi == wantHi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: splitting with any label yields a working stream whose
// uniform outputs stay in range.
func TestSplitAnyLabelProperty(t *testing.T) {
	root := New(1234)
	f := func(label string) bool {
		s := root.Split(label)
		for i := 0; i < 16; i++ {
			if v := s.Float64(); v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = s.Uint64()
	}
	_ = sink
}

func BenchmarkNormal(b *testing.B) {
	s := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = s.Normal(0, 1)
	}
	_ = sink
}
