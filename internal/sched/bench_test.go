package sched

import (
	"fmt"
	"testing"
)

// benchConfig builds the facility benchmark configuration: budget
// 1100 W/node over idle 460, profile-aware policy, fake (solver-free)
// measurements so the numbers isolate the simulate loop itself, and
// arrival rate scaled with cluster size (90 s mean inter-arrival at 8
// nodes) so every scale runs near saturation.
func benchConfig(nodes int) (SimConfig, float64) {
	cfg := SimConfig{
		ClusterNodes: nodes,
		BudgetW:      float64(nodes) * 1100,
		IdleNodeW:    460,
		Policy:       DefaultProfileAware(),
		Catalog:      fakeCatalog(1),
	}
	return cfg, 90.0 * 8 / float64(nodes)
}

// BenchmarkSimulate measures the incremental loop across the facility
// grid: {8, 128, 1800} nodes × {1k, 10k, 100k} jobs. Jobs are
// materialized outside the timer (generation is the stream's cost,
// not the scheduler's) and the catalog is warmed by one untimed run,
// so allocs/op ÷ jobs is the loop's per-job allocation count.
func BenchmarkSimulate(b *testing.B) {
	for _, nodes := range []int{8, 128, 1800} {
		for _, jobs := range []int{1000, 10000, 100000} {
			b.Run(fmt.Sprintf("nodes=%d/jobs=%d", nodes, jobs), func(b *testing.B) {
				cfg, mean := benchConfig(nodes)
				mix := SyntheticJobMix(jobs, mean, 2024)
				if _, err := Simulate(cfg, mix); err != nil { // warm catalog
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := Simulate(cfg, mix)
					if err != nil {
						b.Fatal(err)
					}
					if res.Completed+res.Dropped != len(mix) {
						b.Fatalf("lost jobs: %d+%d of %d", res.Completed, res.Dropped, len(mix))
					}
				}
			})
		}
	}
}

// BenchmarkSimulateStream measures the streaming entry point at the
// facility preset scale, generation included — the end-to-end cost of
// `pmsched -preset facility`.
func BenchmarkSimulateStream(b *testing.B) {
	for _, jobs := range []int{10000, 100000} {
		b.Run(fmt.Sprintf("nodes=1800/jobs=%d", jobs), func(b *testing.B) {
			cfg, mean := benchConfig(1800)
			if _, err := SimulateStream(cfg, SyntheticJobStream(jobs, mean, 2024)); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := SimulateStream(cfg, SyntheticJobStream(jobs, mean, 2024)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSimulateOracle measures the retained pre-refactor loop at
// the scales it can reach, for the before/after ratio in BENCH.md.
// (At 1800 nodes × 100k jobs the O(cycles × queue) rescans make it
// impractical — which is the point of the refactor.)
func BenchmarkSimulateOracle(b *testing.B) {
	for _, bc := range []struct{ nodes, jobs int }{{8, 1000}, {128, 10000}} {
		b.Run(fmt.Sprintf("nodes=%d/jobs=%d", bc.nodes, bc.jobs), func(b *testing.B) {
			cfg, mean := benchConfig(bc.nodes)
			mix := SyntheticJobMix(bc.jobs, mean, 2024)
			if _, err := simulateOracle(cfg, mix); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := simulateOracle(cfg, mix); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
