package sched

import (
	"sync"

	"vasppower/internal/core"
	"vasppower/internal/hw/platform"
	"vasppower/internal/workloads"
)

// Profile is what the scheduler knows about running a benchmark at a
// node count under a cap: measured once, reused for every job
// instance (the paper's workflow — profiles are gathered offline and
// consulted at scheduling time).
type Profile struct {
	Runtime    float64 // seconds
	MeanNodeW  float64 // mean node power, W
	ModeNodeW  float64 // high power mode per node, W
	EnergyJ    float64 // job energy
	BaselineRT float64 // runtime at default limits (for loss accounting)
}

// PerfLoss returns the fractional slowdown versus the uncapped run.
func (p Profile) PerfLoss() float64 {
	if p.BaselineRT <= 0 {
		return 0
	}
	return p.Runtime/p.BaselineRT - 1
}

// profileKey identifies one cached profile. A comparable struct key
// (rather than a formatted string) keeps the hot Get path free of
// per-call allocations — the facility-scale simulate loop consults
// the catalog once per job start — and preserves the cap at full
// float precision, so nearby caps (149.6 vs 150) never alias.
type profileKey struct {
	bench string
	nodes int
	capW  float64
}

// Catalog measures and caches profiles keyed by (benchmark, nodes,
// cap) for one platform. Safe for concurrent use.
type Catalog struct {
	mu       sync.Mutex
	platform platform.Platform
	seed     uint64
	entries  map[profileKey]Profile
	measure  func(core.MeasureSpec) (core.JobProfile, error)
}

// NewCatalog creates an empty catalog on the default platform; seed
// drives the measurement runs.
func NewCatalog(seed uint64) *Catalog {
	return NewCatalogOn(platform.Platform{}, seed)
}

// NewCatalogOn creates an empty catalog whose measurements run on the
// given platform (zero = default).
func NewCatalogOn(p platform.Platform, seed uint64) *Catalog {
	return &Catalog{
		platform: platform.OrDefault(p), seed: seed,
		entries: make(map[profileKey]Profile), measure: core.Measure,
	}
}

// SetMeasure replaces the measurement function profiles are gathered
// with — the hook pmsched uses to route catalog measurements through
// the process-wide two-tier result cache so repeated scheduler studies
// reuse prior simulations. Call before the first Get.
func (c *Catalog) SetMeasure(fn func(core.MeasureSpec) (core.JobProfile, error)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if fn != nil {
		c.measure = fn
	}
}

// Get returns the profile for (bench, nodes, cap), measuring it on
// first use. cap = 0 means default limits.
func (c *Catalog) Get(b workloads.Benchmark, nodes int, cap float64) (Profile, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := profileKey{b.Name, nodes, cap}
	if p, ok := c.entries[k]; ok {
		return p, nil
	}
	base, err := c.measureLocked(b, nodes, 0)
	if err != nil {
		return Profile{}, err
	}
	p := base
	if cap > 0 && cap < c.platform.GPU.TDP {
		p, err = c.measureLocked(b, nodes, cap)
		if err != nil {
			return Profile{}, err
		}
	}
	p.BaselineRT = base.Runtime
	c.entries[k] = p
	return p, nil
}

// measureLocked runs the benchmark once and summarizes it; results
// are cached under their own key so the baseline is measured once.
func (c *Catalog) measureLocked(b workloads.Benchmark, nodes int, cap float64) (Profile, error) {
	k := profileKey{b.Name, nodes, cap}
	if p, ok := c.entries[k]; ok {
		return p, nil
	}
	jp, err := c.measure(core.MeasureSpec{
		Bench: b, Platform: c.platform, Nodes: nodes, CapW: cap, Seed: c.seed,
	})
	if err != nil {
		return Profile{}, err
	}
	p := Profile{
		Runtime:   jp.Runtime,
		MeanNodeW: jp.NodeTotal.Summary.Mean,
		EnergyJ:   jp.EnergyJ,
	}
	if jp.NodeTotal.HasMode {
		p.ModeNodeW = jp.NodeTotal.HighMode.X
	} else {
		p.ModeNodeW = jp.NodeTotal.Summary.Mean
	}
	p.BaselineRT = p.Runtime
	c.entries[k] = p
	return p, nil
}

// Size returns the number of cached entries.
func (c *Catalog) Size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
