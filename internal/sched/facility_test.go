package sched

import (
	"fmt"
	"math"
	"reflect"
	"strings"
	"testing"

	"vasppower/internal/core"
	"vasppower/internal/obs"
)

// fakeMeasure is a deterministic, solver-free measurement function for
// facility-scale tests: profiles derive arithmetically from the spec,
// so a 10k-job simulation costs microseconds of "measurement".
func fakeMeasure(spec core.MeasureSpec) (core.JobProfile, error) {
	rt := 120 + 17*float64(len(spec.Bench.Name)%7) + 300*float64(spec.Nodes)
	if spec.CapW > 0 {
		rt *= 1 + 50/spec.CapW
	}
	mean := 1000.0 + 25*float64(len(spec.Bench.Name))
	if spec.CapW > 0 && mean > 4*spec.CapW+600 {
		mean = 4*spec.CapW + 600
	}
	var p core.JobProfile
	p.Name = spec.Bench.Name
	p.Runtime = rt
	p.EnergyJ = rt * mean * float64(spec.Nodes)
	p.NodeTotal.Summary.Mean = mean
	return p, nil
}

func fakeCatalog(seed uint64) *Catalog {
	cat := NewCatalog(seed)
	cat.SetMeasure(fakeMeasure)
	return cat
}

// TestSimulateMatchesOracle is the differential gate for the
// incremental loop: across policies, budgets, and jitter, the Result
// must be bit-identical (reflect.DeepEqual, no tolerances) to the
// retained pre-refactor implementation in oracle.go.
func TestSimulateMatchesOracle(t *testing.T) {
	policies := []Policy{
		NoCap{NodeTDP: 2350},
		UniformCap{Watts: 200, HostWatts: 350},
		DefaultProfileAware(),
	}
	jobs := smallMix(24, 7)
	for _, p := range policies {
		for _, budget := range []float64{0, 8 * 1100} {
			for _, jitterSeed := range []uint64{0, 42} {
				name := fmt.Sprintf("%s/budget=%.0f/jitter=%d", p.Name(), budget, jitterSeed)
				cfgA := simCfg(p, budget, NewCatalog(1))
				cfgB := simCfg(p, budget, NewCatalog(1))
				cfgA.JitterSeed = jitterSeed
				cfgB.JitterSeed = jitterSeed
				got, err := Simulate(cfgA, jobs)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				want, err := simulateOracle(cfgB, jobs)
				if err != nil {
					t.Fatalf("%s: oracle: %v", name, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%s: incremental loop diverged from oracle:\n got %+v\nwant %+v", name, got, want)
				}
			}
		}
	}
}

// TestDroppedJobsRecorded pins the drop path: jobs whose configuration
// cannot be profiled are counted and named in the Result (not silently
// discarded), capacity is untouched, and the incremental loop drops
// exactly the jobs the oracle drops.
func TestDroppedJobsRecorded(t *testing.T) {
	failing := func(spec core.MeasureSpec) (core.JobProfile, error) {
		if spec.Bench.Name == "CuC_vdw" {
			return core.JobProfile{}, fmt.Errorf("no profile for %s", spec.Bench.Name)
		}
		return fakeMeasure(spec)
	}
	jobs := smallMix(32, 5)
	nVdw := 0
	for _, j := range jobs {
		if j.Bench.Name == "CuC_vdw" {
			nVdw++
		}
	}
	if nVdw == 0 {
		t.Fatal("mix has no CuC_vdw jobs; pick another seed")
	}
	catA, catB := NewCatalog(1), NewCatalog(1)
	catA.SetMeasure(failing)
	catB.SetMeasure(failing)
	got, err := Simulate(simCfg(DefaultProfileAware(), 8*1100, catA), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if got.Dropped != nVdw || len(got.DroppedIDs) != nVdw {
		t.Fatalf("dropped %d (%d IDs), want %d", got.Dropped, len(got.DroppedIDs), nVdw)
	}
	if got.Completed+got.Dropped != len(jobs) {
		t.Fatalf("completed %d + dropped %d != %d jobs", got.Completed, got.Dropped, len(jobs))
	}
	for _, id := range got.DroppedIDs {
		for _, o := range got.Outcomes {
			if o.ID == id {
				t.Fatalf("job %s both dropped and completed", id)
			}
		}
	}
	want, err := simulateOracle(simCfg(DefaultProfileAware(), 8*1100, catB), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("drop handling diverged from oracle:\n got %+v\nwant %+v", got, want)
	}
}

// TestSimulateStreamMatchesSlice pins that the streaming entry point
// is the same simulation: SimulateStream over SyntheticJobStream
// equals Simulate over the materialized SyntheticJobMix, bit for bit.
func TestSimulateStreamMatchesSlice(t *testing.T) {
	const n, mean, seed = 40, 45, 17
	jobs := SyntheticJobMix(n, mean, seed)
	a, err := Simulate(simCfg(DefaultProfileAware(), 8*1100, fakeCatalog(1)), jobs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateStream(simCfg(DefaultProfileAware(), 8*1100, fakeCatalog(1)), SyntheticJobStream(n, mean, seed))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("stream result diverged from slice result:\n got %+v\nwant %+v", b, a)
	}
}

// TestSyntheticStreamMatchesMix pins that the lazy generator and the
// materialized mix are one generator: draining the stream yields
// exactly the slice.
func TestSyntheticStreamMatchesMix(t *testing.T) {
	const n, mean, seed = 100, 30, 9
	want := SyntheticJobMix(n, mean, seed)
	src := SyntheticJobStream(n, mean, seed)
	if h := src.SizeHint(); h != n {
		t.Fatalf("fresh SizeHint %d, want %d", h, n)
	}
	var got []Job
	for {
		j, ok := src.Next()
		if !ok {
			break
		}
		got = append(got, j)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("stream yielded %d jobs != mix %d jobs (or contents differ)", len(got), len(want))
	}
	if h := src.SizeHint(); h != 0 {
		t.Fatalf("drained SizeHint %d, want 0", h)
	}
}

// TestFacilityScaleDeterministic runs the facility preset scale —
// 1,800 nodes, 10k jobs — twice and requires byte-identical Results.
func TestFacilityScaleDeterministic(t *testing.T) {
	const nodes, jobs = 1800, 10000
	run := func() Result {
		cfg := SimConfig{
			ClusterNodes: nodes,
			BudgetW:      nodes * 1100,
			IdleNodeW:    460,
			Policy:       DefaultProfileAware(),
			Catalog:      fakeCatalog(3),
			JitterSeed:   99,
		}
		res, err := SimulateStream(cfg, SyntheticJobStream(jobs, 5, 2024))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("facility-scale simulation not deterministic across runs")
	}
	if a.Completed+a.Dropped != jobs {
		t.Fatalf("completed %d + dropped %d != %d", a.Completed, a.Dropped, jobs)
	}
	if a.Dropped != 0 {
		t.Fatalf("unexpected drops: %d (%v...)", a.Dropped, a.DroppedIDs[:1])
	}
	if a.PeakPowerW > float64(nodes)*1100+1e-6 {
		t.Fatalf("budget violated at scale: peak %v", a.PeakPowerW)
	}
}

// TestBudgetEnvelope pins the time-varying facility envelope: under a
// budget too tight for any start, jobs queue until the phase that
// lifts it, and every start lands on a cycle boundary at or after the
// lift.
func TestBudgetEnvelope(t *testing.T) {
	jobs := smallMix(6, 13)
	for i := range jobs {
		jobs[i].Arrival = float64(i) * 10 // all well before the lift
	}
	idleFloor := 8 * 460.0
	cfg := simCfg(NoCap{NodeTDP: 2350}, idleFloor+100, fakeCatalog(1)) // headroom 100 W < any job's need
	cfg.BudgetSchedule = []BudgetPhase{{Start: 600, BudgetW: 0}}       // unconstrained from t=600
	res, err := Simulate(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != len(jobs) {
		t.Fatalf("completed %d of %d", res.Completed, len(jobs))
	}
	for _, o := range res.Outcomes {
		if o.Start < 600 {
			t.Fatalf("job %s started at %v under the pre-lift envelope", o.ID, o.Start)
		}
	}
	// A drop mid-schedule must not kill running jobs: rerun with a
	// late drop back to the tight budget and confirm everything that
	// started before the drop still completes.
	cfg.BudgetSchedule = []BudgetPhase{{Start: 600, BudgetW: 0}, {Start: 660, BudgetW: idleFloor + 100}}
	res2, err := Simulate(cfg, jobs)
	if err == nil {
		for _, o := range res2.Outcomes {
			if o.Start >= 600 && o.Start < 660 && o.End <= o.Start {
				t.Fatalf("job %s truncated by budget drop: %+v", o.ID, o)
			}
		}
	} else if !strings.Contains(err.Error(), "never started") {
		t.Fatalf("unexpected error under drop schedule: %v", err)
	}
}

// TestStartQuantization pins the paper's 30-second scheduling cycle:
// event-driven passes must still only start jobs at multiples of
// CycleSeconds, exactly as the ticker did.
func TestStartQuantization(t *testing.T) {
	res, err := SimulateStream(
		simCfg(DefaultProfileAware(), 8*1100, fakeCatalog(1)),
		SyntheticJobStream(50, 45, 23))
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range res.Outcomes {
		if math.Mod(o.Start, CycleSeconds) != 0 {
			t.Fatalf("job %s started off-cycle at %v", o.ID, o.Start)
		}
	}
}

// TestDeadlockDetected pins the improvement over the ticker loop: a
// mix that can never start returns an error instead of ticking
// forever.
func TestDeadlockDetected(t *testing.T) {
	jobs := smallMix(4, 3)
	cfg := simCfg(NoCap{NodeTDP: 2350}, 8*460+100, fakeCatalog(1)) // headroom forever too small
	_, err := Simulate(cfg, jobs)
	if err == nil || !strings.Contains(err.Error(), "never started") {
		t.Fatalf("want deadlock error, got %v", err)
	}
}

// TestStreamValidation pins the lazy validation path and the budget
// schedule validation.
func TestStreamValidation(t *testing.T) {
	cfg := simCfg(NoCap{NodeTDP: 2350}, 0, fakeCatalog(1))
	if _, err := SimulateStream(cfg, nil); err == nil {
		t.Fatal("nil stream accepted")
	}
	jobs := smallMix(2, 1)
	disordered := []Job{jobs[1], jobs[0]}
	if disordered[0].Arrival <= disordered[1].Arrival {
		t.Fatal("test setup: jobs not out of order")
	}
	if _, err := SimulateStream(cfg, &sliceStream{jobs: disordered}); err == nil ||
		!strings.Contains(err.Error(), "sorted by arrival") {
		t.Fatalf("out-of-order stream: got %v", err)
	}
	big := append([]Job(nil), jobs...)
	big[0].Nodes = 99
	if _, err := SimulateStream(cfg, &sliceStream{jobs: big}); err == nil ||
		!strings.Contains(err.Error(), "needs 99 nodes") {
		t.Fatalf("oversized job in stream: got %v", err)
	}
	bad := cfg
	bad.BudgetSchedule = []BudgetPhase{{Start: 100, BudgetW: 1000}, {Start: 50, BudgetW: 2000}}
	if _, err := Simulate(bad, jobs); err == nil || !strings.Contains(err.Error(), "not sorted") {
		t.Fatalf("unsorted schedule: got %v", err)
	}
	bad.BudgetSchedule = []BudgetPhase{{Start: -1, BudgetW: 1000}}
	if _, err := Simulate(bad, jobs); err == nil {
		t.Fatal("negative phase start accepted")
	}
	bad.BudgetSchedule = []BudgetPhase{{Start: 0, BudgetW: math.NaN()}}
	if _, err := Simulate(bad, jobs); err == nil {
		t.Fatal("NaN phase budget accepted")
	}
}

// TestSchedMetrics pins the obs wiring: a simulation under installed
// metrics accounts for every job as started, dropped, or completed,
// counts its packing passes, and records head-of-line stalls and the
// peak reservation.
func TestSchedMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	SetMetrics(m)
	defer SetMetrics(nil)

	failing := func(spec core.MeasureSpec) (core.JobProfile, error) {
		if spec.Bench.Name == "CuC_vdw" {
			return core.JobProfile{}, fmt.Errorf("no profile")
		}
		return fakeMeasure(spec)
	}
	cat := NewCatalog(1)
	cat.SetMeasure(failing)
	jobs := smallMix(32, 5)
	cfg := simCfg(DefaultProfileAware(), 8*1100, cat)
	cfg.ClusterNodes = 2 // force queueing → head-of-line stalls
	res, err := Simulate(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.JobsStarted.Value(); got != int64(res.Completed) {
		t.Fatalf("jobs_started %d, want %d", got, res.Completed)
	}
	if got := m.JobsDropped.Value(); got != int64(res.Dropped) {
		t.Fatalf("jobs_dropped %d, want %d", got, res.Dropped)
	}
	if got := m.JobsCompleted.Value(); got != int64(res.Completed) {
		t.Fatalf("jobs_completed %d, want %d", got, res.Completed)
	}
	if m.PackingPasses.Value() <= 0 {
		t.Fatal("no packing passes counted")
	}
	if m.HOLStalls.Value() <= 0 {
		t.Fatal("no head-of-line stalls counted on a 2-node cluster")
	}
	if got := m.PeakReservedW.Value(); got != int64(res.PeakPowerW) {
		t.Fatalf("peak_reserved_w %d, want %d", got, int64(res.PeakPowerW))
	}
}
