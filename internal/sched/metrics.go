package sched

import (
	"sync/atomic"

	"vasppower/internal/obs"
)

// Metrics counts scheduler activity across every simulation in the
// process — what makes a facility-scale run diagnosable from its run
// manifest the way measurement sweeps are: how many packing passes
// the incremental loop actually ran (versus the cycles a ticker
// would have burned), how many jobs started and were dropped, how
// often the queue was left blocked with work waiting (head-of-line
// stalls), and the highest power the packer ever reserved. Install
// with SetMetrics; the nil default costs one atomic load per
// simulation.
type Metrics struct {
	PackingPasses *obs.Counter
	JobsStarted   *obs.Counter
	JobsDropped   *obs.Counter
	JobsCompleted *obs.Counter
	HOLStalls     *obs.Counter
	PeakReservedW *obs.Gauge
}

// NewMetrics registers the scheduler metric set under "sched." in reg.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		PackingPasses: reg.Counter("sched.packing_passes"),
		JobsStarted:   reg.Counter("sched.jobs_started"),
		JobsDropped:   reg.Counter("sched.jobs_dropped"),
		JobsCompleted: reg.Counter("sched.jobs_completed"),
		HOLStalls:     reg.Counter("sched.hol_stalls"),
		PeakReservedW: reg.Gauge("sched.peak_reserved_w"),
	}
}

var metrics atomic.Pointer[Metrics]

// SetMetrics installs (or, with nil, removes) the process-wide
// scheduler metrics. Install once at startup, before simulations run.
func SetMetrics(m *Metrics) { metrics.Store(m) }
