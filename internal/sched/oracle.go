package sched

import (
	"fmt"
	"math"
	"sort"

	"vasppower/internal/rng"
	"vasppower/internal/sim"
)

// simulateOracle is the pre-refactor simulate loop, retained verbatim
// as the reference implementation for differential tests: a 30-second
// cycle ticker that rescans the entire waiting queue (O(cycles ×
// queue)), per-job arrival closures, and a string-keyed active map.
// The incremental loop in Simulate must produce bit-identical Results
// on every input the oracle can run.
//
// Limitations (by construction, do not fix): it ignores
// cfg.BudgetSchedule (constant-budget only), and a job mix that can
// never finish (e.g. a job whose reservation exceeds the budget
// forever) ticks forever instead of returning the "never started"
// error — the incremental loop detects that deadlock.
func simulateOracle(cfg SimConfig, jobs []Job) (Result, error) {
	if cfg.ClusterNodes <= 0 {
		return Result{}, fmt.Errorf("sched: cluster size %d", cfg.ClusterNodes)
	}
	if cfg.Policy == nil || cfg.Catalog == nil {
		return Result{}, fmt.Errorf("sched: missing policy or catalog")
	}
	for _, j := range jobs {
		if err := j.Validate(); err != nil {
			return Result{}, err
		}
		if j.Nodes > cfg.ClusterNodes {
			return Result{}, fmt.Errorf("sched: job %s needs %d nodes, cluster has %d", j.ID, j.Nodes, cfg.ClusterNodes)
		}
	}
	queue := append([]Job(nil), jobs...)
	SortJobs(queue)

	var jitter *rng.Stream
	if cfg.JitterSeed != 0 {
		jitter = rng.New(cfg.JitterSeed)
	}

	type running struct {
		job     Job
		outcome JobOutcome
	}
	engine := sim.New()
	freeNodes := cfg.ClusterNodes
	reservedW := float64(cfg.ClusterNodes) * cfg.IdleNodeW
	res := Result{Policy: cfg.Policy.Name(), BudgetW: cfg.BudgetW, ClusterNodes: cfg.ClusterNodes}
	res.PeakPowerW = reservedW
	remaining := len(queue) // jobs not yet completed (or dropped)

	active := map[string]*running{}
	var outcomes []JobOutcome

	// tryStart greedily starts queued jobs (FIFO with first-fit skip,
	// like a backfilling scheduler without reservations).
	var waiting []Job
	tryStart := func(now float64) {
		kept := waiting[:0]
		for _, j := range waiting {
			class := Classify(j.Bench.Method)
			cap := cfg.Policy.Cap(class)
			perNodeW := cfg.Policy.BudgetPowerPerNode(class)
			needW := float64(j.Nodes) * (perNodeW - cfg.IdleNodeW)
			fits := j.Nodes <= freeNodes &&
				(cfg.BudgetW <= 0 || reservedW+needW <= cfg.BudgetW)
			if !fits {
				kept = append(kept, j)
				continue
			}
			prof, err := cfg.Catalog.Get(j.Bench, j.Nodes, cap)
			if err != nil {
				// Unrunnable configuration: drop the job rather than
				// deadlocking the queue.
				remaining--
				res.Dropped++
				res.DroppedIDs = append(res.DroppedIDs, j.ID)
				continue
			}
			rt := prof.Runtime
			if jitter != nil {
				rt *= jitter.LogNormal(0, 0.02)
			}
			freeNodes -= j.Nodes
			reservedW += needW
			if reservedW > res.PeakPowerW {
				res.PeakPowerW = reservedW
			}
			r := &running{job: j, outcome: JobOutcome{
				ID: j.ID, Class: class, CapW: cap,
				Start: now, End: now + rt, Wait: now - j.Arrival,
				Runtime: rt, PerfLoss: prof.PerfLoss(),
				EnergyJ:     prof.EnergyJ,
				PowerW:      float64(j.Nodes) * perNodeW,
				Nodes:       j.Nodes,
				ActualMeanW: float64(j.Nodes) * prof.MeanNodeW,
			}}
			active[j.ID] = r
			jj := j
			engine.At(now+rt, func() {
				freeNodes += jj.Nodes
				reservedW -= needW
				outcomes = append(outcomes, r.outcome)
				delete(active, jj.ID)
				remaining--
			})
		}
		waiting = kept
	}

	// Arrival events enqueue jobs; a 30-second cycle ticker runs the
	// scheduling pass.
	for _, j := range queue {
		jj := j
		engine.At(j.Arrival, func() {
			waiting = append(waiting, jj)
		})
	}
	var cycle func()
	cycle = func() {
		tryStart(engine.Now())
		if remaining > 0 {
			engine.After(CycleSeconds, cycle)
		}
	}
	engine.At(0, cycle)
	engine.Run()

	if len(waiting) > 0 {
		return Result{}, fmt.Errorf("sched: %d jobs never started", len(waiting))
	}
	sort.Slice(outcomes, func(i, k int) bool { return outcomes[i].ID < outcomes[k].ID })
	res.Outcomes = outcomes
	res.Completed = len(outcomes)
	var waitSum, lossSum float64
	for _, o := range outcomes {
		res.TotalEnergyJ += o.EnergyJ
		waitSum += o.Wait
		res.MaxWait = math.Max(res.MaxWait, o.Wait)
		lossSum += o.PerfLoss
		res.Makespan = math.Max(res.Makespan, o.End)
	}
	if len(outcomes) > 0 {
		res.MeanWait = waitSum / float64(len(outcomes))
		res.MeanPerfLoss = lossSum / float64(len(outcomes))
	}
	if res.Makespan > 0 {
		res.Throughput = float64(res.Completed) / (res.Makespan / 3600)
	}
	return res, nil
}
