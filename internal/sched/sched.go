// Package sched implements the power-aware batch scheduling the paper
// proposes in §VI: a Slurm-like scheduler running 30-second cycles
// that classifies VASP jobs by workload type (readable from the INCAR
// without any costly computation), applies per-class GPU power caps,
// and packs jobs under a facility power budget.
//
// Three policies are provided for the ablation:
//
//   - NoCap: jobs run at default limits and are budgeted at node TDP
//     (what a site must assume without profiles);
//   - UniformCap: one cap for everything;
//   - ProfileAware: the paper's proposal — per-class caps chosen from
//     the measured profiles (50% TDP for everything, since the study
//     shows <10% loss there, with DFT-class jobs capped harder).
package sched

import (
	"fmt"
	"sort"

	"vasppower/internal/dft/method"
	"vasppower/internal/workloads"
)

// Class is the workload type the scheduler can infer from job inputs.
type Class int

// Workload classes, ordered by typical power appetite.
const (
	ClassDFT    Class = iota // plain DFT functionals: lowest power
	ClassHybrid              // HSE: high sustained power
	ClassRPA                 // ACFDT/RPA: high peaks, CPU phases
)

func (c Class) String() string {
	switch c {
	case ClassDFT:
		return "dft"
	case ClassHybrid:
		return "hybrid"
	case ClassRPA:
		return "rpa"
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// Classify maps a method kind to its scheduler class. This mirrors
// §VI-A: "The batch system can determine the workload type of VASP
// jobs in the queue without costly computation" — it is a pure INCAR
// lookup.
func Classify(k method.Kind) Class {
	switch k {
	case method.HSE:
		return ClassHybrid
	case method.ACFDTR:
		return ClassRPA
	default:
		return ClassDFT
	}
}

// Policy decides the GPU power cap for a job class (0 = default).
type Policy interface {
	Name() string
	Cap(c Class) float64
	// BudgetPowerPerNode is the per-node power the scheduler reserves
	// for a job of this class when packing under the facility budget.
	BudgetPowerPerNode(c Class) float64
}

// NoCap runs everything at default limits; without profiles the
// scheduler must reserve node TDP.
type NoCap struct{ NodeTDP float64 }

// Name implements Policy.
func (NoCap) Name() string { return "nocap" }

// Cap implements Policy.
func (NoCap) Cap(Class) float64 { return 0 }

// BudgetPowerPerNode implements Policy.
func (p NoCap) BudgetPowerPerNode(Class) float64 { return p.NodeTDP }

// UniformCap applies one GPU cap to every job and budgets each node
// at the capped worst case (4 GPUs at the cap + host).
type UniformCap struct {
	Watts     float64
	HostWatts float64 // CPU+mem+peripheral allowance per node
}

// Name implements Policy.
func (p UniformCap) Name() string { return fmt.Sprintf("uniform-%.0f", p.Watts) }

// Cap implements Policy.
func (p UniformCap) Cap(Class) float64 { return p.Watts }

// BudgetPowerPerNode implements Policy.
func (p UniformCap) BudgetPowerPerNode(Class) float64 {
	return 4*p.Watts + p.HostWatts
}

// ProfileAware is the paper's proposal: per-class caps derived from
// the profile study, and per-class power reservations taken from the
// measured high power modes rather than worst cases.
type ProfileAware struct {
	// CapByClass holds the GPU cap per class.
	CapByClass map[Class]float64
	// ReserveByClass holds the per-node power reservation per class.
	ReserveByClass map[Class]float64
}

// DefaultProfileAware returns the policy the study supports: 50% TDP
// (200 W) for the hungry classes (<10% loss, §V-C) and 150 W for
// DFT-class jobs (no visible loss even lower). Reservations come from
// the measured capped high power modes.
func DefaultProfileAware() ProfileAware {
	return ProfileAware{
		CapByClass: map[Class]float64{
			ClassDFT:    150,
			ClassHybrid: 200,
			ClassRPA:    200,
		},
		ReserveByClass: map[Class]float64{
			ClassDFT:    950,  // capped DFT-class node mode + margin
			ClassHybrid: 1150, // 4×200 + host
			ClassRPA:    1150,
		},
	}
}

// Name implements Policy.
func (ProfileAware) Name() string { return "profile-aware" }

// Cap implements Policy.
func (p ProfileAware) Cap(c Class) float64 { return p.CapByClass[c] }

// BudgetPowerPerNode implements Policy.
func (p ProfileAware) BudgetPowerPerNode(c Class) float64 { return p.ReserveByClass[c] }

// Job is one queued batch job.
type Job struct {
	ID      string
	Bench   workloads.Benchmark
	Nodes   int
	Arrival float64 // seconds
}

// Validate checks the job.
func (j Job) Validate() error {
	if j.ID == "" {
		return fmt.Errorf("sched: job with empty ID")
	}
	if j.Nodes <= 0 {
		return fmt.Errorf("sched: job %s with %d nodes", j.ID, j.Nodes)
	}
	if j.Arrival < 0 {
		return fmt.Errorf("sched: job %s with negative arrival", j.ID)
	}
	return j.Bench.Validate()
}

// SortJobs orders jobs by arrival then ID (deterministic queue order).
func SortJobs(jobs []Job) {
	sort.Slice(jobs, func(i, k int) bool {
		if jobs[i].Arrival != jobs[k].Arrival {
			return jobs[i].Arrival < jobs[k].Arrival
		}
		return jobs[i].ID < jobs[k].ID
	})
}
