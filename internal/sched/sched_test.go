package sched

import (
	"testing"

	"vasppower/internal/dft/method"
	"vasppower/internal/workloads"
)

func TestClassify(t *testing.T) {
	cases := map[method.Kind]Class{
		method.DFTRMM:   ClassDFT,
		method.DFTBD:    ClassDFT,
		method.DFTBDRMM: ClassDFT,
		method.DFTCG:    ClassDFT,
		method.VDW:      ClassDFT,
		method.HSE:      ClassHybrid,
		method.ACFDTR:   ClassRPA,
	}
	for k, want := range cases {
		if got := Classify(k); got != want {
			t.Fatalf("Classify(%v) = %v, want %v", k, got, want)
		}
	}
}

func TestClassString(t *testing.T) {
	if ClassDFT.String() != "dft" || ClassHybrid.String() != "hybrid" || ClassRPA.String() != "rpa" {
		t.Fatal("class strings wrong")
	}
	if Class(9).String() == "" {
		t.Fatal("unknown class should render")
	}
}

func TestPolicies(t *testing.T) {
	nc := NoCap{NodeTDP: 2350}
	if nc.Cap(ClassHybrid) != 0 || nc.BudgetPowerPerNode(ClassDFT) != 2350 {
		t.Fatal("NoCap wrong")
	}
	uc := UniformCap{Watts: 200, HostWatts: 350}
	if uc.Cap(ClassDFT) != 200 || uc.BudgetPowerPerNode(ClassRPA) != 1150 {
		t.Fatal("UniformCap wrong")
	}
	pa := DefaultProfileAware()
	if pa.Cap(ClassDFT) >= pa.Cap(ClassHybrid) {
		t.Fatal("profile-aware should cap DFT harder than hybrid")
	}
	if pa.BudgetPowerPerNode(ClassDFT) >= (NoCap{NodeTDP: 2350}).BudgetPowerPerNode(ClassDFT) {
		t.Fatal("profile-aware reservation should undercut TDP")
	}
}

func TestJobValidate(t *testing.T) {
	b, _ := workloads.ByName("PdO2")
	good := Job{ID: "j1", Bench: b, Nodes: 1, Arrival: 0}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Job{
		{ID: "", Bench: b, Nodes: 1},
		{ID: "j", Bench: b, Nodes: 0},
		{ID: "j", Bench: b, Nodes: 1, Arrival: -1},
	}
	for i, j := range bad {
		if err := j.Validate(); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
}

func TestSortJobs(t *testing.T) {
	b, _ := workloads.ByName("PdO2")
	jobs := []Job{
		{ID: "b", Bench: b, Nodes: 1, Arrival: 5},
		{ID: "a", Bench: b, Nodes: 1, Arrival: 5},
		{ID: "c", Bench: b, Nodes: 1, Arrival: 1},
	}
	SortJobs(jobs)
	if jobs[0].ID != "c" || jobs[1].ID != "a" || jobs[2].ID != "b" {
		t.Fatalf("sort wrong: %v %v %v", jobs[0].ID, jobs[1].ID, jobs[2].ID)
	}
}

func TestCatalogCachesAndMeasures(t *testing.T) {
	cat := NewCatalog(1)
	b, _ := workloads.ByName("GaAsBi-64")
	p1, err := cat.Get(b, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p1.Runtime <= 0 || p1.MeanNodeW <= 0 || p1.ModeNodeW <= 0 {
		t.Fatalf("profile empty: %+v", p1)
	}
	n := cat.Size()
	p2, err := cat.Get(b, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cat.Size() != n {
		t.Fatal("second Get re-measured")
	}
	if p1 != p2 {
		t.Fatal("cache returned different profile")
	}
	// Capped profile records loss vs baseline.
	pc, err := cat.Get(b, 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if pc.BaselineRT != p1.Runtime {
		t.Fatalf("baseline not propagated: %v vs %v", pc.BaselineRT, p1.Runtime)
	}
	if pc.PerfLoss() < 0 || pc.PerfLoss() > 0.2 {
		t.Fatalf("GaAsBi at 100 W should lose <20%%: %v", pc.PerfLoss())
	}
}

func TestSyntheticJobMix(t *testing.T) {
	jobs := SyntheticJobMix(50, 120, 7)
	if len(jobs) != 50 {
		t.Fatalf("jobs = %d", len(jobs))
	}
	prev := -1.0
	classes := map[Class]int{}
	for _, j := range jobs {
		if err := j.Validate(); err != nil {
			t.Fatal(err)
		}
		if j.Arrival < prev {
			t.Fatal("arrivals not monotone")
		}
		prev = j.Arrival
		classes[Classify(j.Bench.Method)]++
	}
	if classes[ClassDFT] == 0 || classes[ClassHybrid]+classes[ClassRPA] == 0 {
		t.Fatalf("mix lacks diversity: %v", classes)
	}
	// Deterministic.
	again := SyntheticJobMix(50, 120, 7)
	for i := range jobs {
		if jobs[i] != again[i] {
			t.Fatal("mix not reproducible")
		}
	}
}
