package sched

import (
	"fmt"
	"math"
	"sort"

	"vasppower/internal/rng"
	"vasppower/internal/sim"
	"vasppower/internal/timeseries"
)

// CycleSeconds is the scheduling cycle length; the paper notes power
// capping decisions fit "within each scheduling cycle, usually 30
// seconds" (§VI-A).
const CycleSeconds = 30.0

// BudgetPhase is one step of a time-varying facility power envelope:
// from Start seconds on, the facility budget is BudgetW watts (0 =
// unconstrained from then on). A schedule of phases models the
// envelopes real facilities live under — demand-response windows,
// time-of-day tariffs, co-scheduled partitions — so cap policies can
// be ablated against a realistic envelope rather than one flat cap.
type BudgetPhase struct {
	Start   float64
	BudgetW float64
}

// SimConfig configures one scheduler simulation.
type SimConfig struct {
	ClusterNodes int
	// BudgetW is the facility power budget for the GPU partition; 0
	// disables budget packing (nodes are the only constraint).
	BudgetW float64
	// BudgetSchedule optionally varies the budget over time: BudgetW
	// applies until the first phase starts, then each phase's BudgetW
	// from its Start on. Phases must be sorted by Start. A budget drop
	// never kills running jobs; it only blocks new starts until
	// reservations drain below the new envelope.
	BudgetSchedule []BudgetPhase
	// IdleNodeW is the power reserved per idle node.
	IdleNodeW float64
	Policy    Policy
	Catalog   *Catalog
	// JitterSeed adds per-job runtime jitter (0 = none).
	JitterSeed uint64
}

// JobOutcome records one job's scheduling history.
type JobOutcome struct {
	ID       string
	Class    Class
	CapW     float64
	Start    float64
	End      float64
	Wait     float64
	Runtime  float64
	PerfLoss float64
	EnergyJ  float64
	PowerW   float64 // reserved node power × nodes while running
	Nodes    int
	// ActualMeanW is the measured mean node power × nodes — what the
	// job really draws, as opposed to what the policy reserved.
	ActualMeanW float64
}

// Result summarizes one policy run over a job mix.
type Result struct {
	Policy       string
	Completed    int
	Makespan     float64
	TotalEnergyJ float64
	MeanWait     float64
	MaxWait      float64
	PeakPowerW   float64 // highest reserved power at any instant
	MeanPerfLoss float64
	Throughput   float64 // jobs per hour over the makespan
	Outcomes     []JobOutcome
	BudgetW      float64
	ClusterNodes int
	// Dropped counts jobs discarded because their configuration could
	// not be profiled (Catalog.Get failed); DroppedIDs lists them in
	// drop order. A silent drop is a debugging dead end — a facility
	// run that "completes" 99,960 of 100,000 jobs must say which 40
	// vanished and why.
	Dropped    int
	DroppedIDs []string
}

// Simulate runs the job mix through the scheduler under the policy.
//
// The loop is incremental and event-driven: jobs are index-addressed
// records in preallocated slices (no per-job closures or map
// entries), the waiting queue is a set of per-(nodes, class) FIFO
// buckets, and a packing pass runs only at 30-second cycle boundaries
// that follow a capacity change (arrival, completion, budget phase) —
// never on an unconditional ticker. The results are bit-identical to
// the retained reference implementation (see oracle.go and the
// equivalence argument in DESIGN.md): within a pass capacity only
// shrinks, so FIFO first-fit-skip over the whole queue equals
// repeatedly starting the lowest-sequence fitting bucket head, and a
// pass after an unchanged cycle is provably a no-op.
func Simulate(cfg SimConfig, jobs []Job) (Result, error) {
	if err := validateConfig(cfg); err != nil {
		return Result{}, err
	}
	for _, j := range jobs {
		if err := j.Validate(); err != nil {
			return Result{}, err
		}
		if j.Nodes > cfg.ClusterNodes {
			return Result{}, fmt.Errorf("sched: job %s needs %d nodes, cluster has %d", j.ID, j.Nodes, cfg.ClusterNodes)
		}
	}
	queue := append([]Job(nil), jobs...)
	SortJobs(queue)
	return simulate(cfg, &sliceStream{jobs: queue}, false)
}

// SimulateStream is Simulate over a lazily generated job stream (see
// JobStream): the facility-scale entry point, where a 100k-job mix is
// pulled in arrival order instead of materializing up front. Jobs are
// validated as they are drawn, so an invalid job surfaces only once
// virtual time reaches its arrival.
func SimulateStream(cfg SimConfig, src JobStream) (Result, error) {
	if err := validateConfig(cfg); err != nil {
		return Result{}, err
	}
	if src == nil {
		return Result{}, fmt.Errorf("sched: nil job stream")
	}
	return simulate(cfg, src, true)
}

func validateConfig(cfg SimConfig) error {
	if cfg.ClusterNodes <= 0 {
		return fmt.Errorf("sched: cluster size %d", cfg.ClusterNodes)
	}
	if cfg.Policy == nil || cfg.Catalog == nil {
		return fmt.Errorf("sched: missing policy or catalog")
	}
	prev := math.Inf(-1)
	for i, ph := range cfg.BudgetSchedule {
		if math.IsNaN(ph.Start) || math.IsInf(ph.Start, 0) || ph.Start < 0 {
			return fmt.Errorf("sched: budget phase %d at invalid time %v", i, ph.Start)
		}
		if ph.Start < prev {
			return fmt.Errorf("sched: budget schedule not sorted at phase %d (%v after %v)", i, ph.Start, prev)
		}
		if math.IsNaN(ph.BudgetW) || ph.BudgetW < 0 {
			return fmt.Errorf("sched: budget phase %d with invalid budget %v", i, ph.BudgetW)
		}
		prev = ph.Start
	}
	return nil
}

// bucketKey groups waiting jobs that are interchangeable to the
// packer: same node demand and same class ⇒ same cap, reservation,
// and fit test.
type bucketKey struct {
	nodes int
	class Class
}

// bucket is one FIFO of waiting jobs with identical packing
// requirements, threaded intrusively through jobRec.next. Because all
// members need exactly the same capacity, if the head does not fit,
// none behind it does — which is what turns the O(queue) first-fit
// scan into an O(buckets) head inspection.
type bucket struct {
	nodes    int
	class    Class
	capW     float64
	perNodeW float64
	needW    float64 // reservation above idle for one job of this bucket
	head     int32   // index into recs, -1 = empty
	tail     int32
}

// jobRec is one job's record in the simulation: its queue linkage
// while waiting, its reservation while running, and its outcome. Jobs
// are addressed by index (arrival sequence) everywhere — no string
// keys, no per-job closures.
type jobRec struct {
	job     Job
	next    int32 // next index in the same bucket's FIFO, -1 = none
	needW   float64
	outcome JobOutcome
}

// simState is the incremental simulate loop. All event callbacks are
// bound once (arriveFn/passFn/envFn/completeFn), so the steady state
// allocates nothing per job beyond the amortized growth of recs and
// outcomes.
type simState struct {
	cfg    SimConfig
	engine *sim.Engine
	jitter *rng.Stream
	src    JobStream
	lazy   bool // validate jobs as drawn (stream path)
	m      *Metrics

	recs    []jobRec
	buckets []bucket
	bindex  map[bucketKey]int32

	pending     Job
	havePending bool
	lastArrival float64

	freeNodes int
	reservedW float64
	peakW     float64
	budgetW   float64
	phaseIdx  int

	waiting    int
	started    int
	dropped    int
	droppedIDs []string
	outcomes   []JobOutcome

	passScheduled bool
	passes        int64
	holStalls     int64

	err error

	arriveFn   func()
	passFn     func()
	envFn      func()
	completeFn func(int)
}

func simulate(cfg SimConfig, src JobStream, lazy bool) (Result, error) {
	s := &simState{
		cfg:       cfg,
		engine:    sim.New(),
		src:       src,
		lazy:      lazy,
		m:         metrics.Load(),
		bindex:    make(map[bucketKey]int32),
		freeNodes: cfg.ClusterNodes,
		reservedW: float64(cfg.ClusterNodes) * cfg.IdleNodeW,
		budgetW:   cfg.BudgetW,
	}
	s.peakW = s.reservedW
	if cfg.JitterSeed != 0 {
		s.jitter = rng.New(cfg.JitterSeed)
	}
	if h, ok := src.(SizeHinter); ok {
		if n := h.SizeHint(); n > 0 {
			s.recs = make([]jobRec, 0, n)
			s.outcomes = make([]JobOutcome, 0, n)
		}
	}
	s.arriveFn = s.arrive
	s.passFn = s.pass
	s.completeFn = s.complete

	// Kick off the arrival chain first, then the envelope chain, so an
	// arrival and a phase at the same instant keep that order (both
	// precede any pass at that instant regardless — see pass).
	s.advance()
	if s.err != nil {
		return Result{}, s.err
	}
	if s.havePending {
		s.engine.At(s.pending.Arrival, s.arriveFn)
	}
	if len(cfg.BudgetSchedule) > 0 {
		s.envFn = s.envelope
		s.engine.At(cfg.BudgetSchedule[0].Start, s.envFn)
	}
	for s.err == nil && s.engine.Step() {
	}
	if s.err != nil {
		return Result{}, s.err
	}
	if s.waiting > 0 {
		// Unlike the ticker loop (which would spin forever), running
		// out of events with jobs still queued is a detected deadlock:
		// nothing pending can ever free the capacity they need.
		return Result{}, fmt.Errorf("sched: %d jobs never started", s.waiting)
	}
	return s.result(), nil
}

// advance pulls the next job from the stream into pending, validating
// lazily on the stream path and enforcing arrival order on both.
func (s *simState) advance() {
	j, ok := s.src.Next()
	if !ok {
		s.havePending = false
		return
	}
	if s.lazy {
		if err := j.Validate(); err != nil {
			s.err = err
			s.havePending = false
			return
		}
		if j.Nodes > s.cfg.ClusterNodes {
			s.err = fmt.Errorf("sched: job %s needs %d nodes, cluster has %d", j.ID, j.Nodes, s.cfg.ClusterNodes)
			s.havePending = false
			return
		}
	}
	if j.Arrival < s.lastArrival {
		s.err = fmt.Errorf("sched: job %s arrives at %v, before the previous job at %v (streams must be sorted by arrival)",
			j.ID, j.Arrival, s.lastArrival)
		s.havePending = false
		return
	}
	s.lastArrival = j.Arrival
	s.pending = j
	s.havePending = true
}

// arrive is the (single, reused) arrival-chain callback: drain every
// job whose arrival time has come, then schedule the chain's next
// link at the following arrival.
func (s *simState) arrive() {
	s.drainArrivals(s.engine.Now())
	if s.err == nil && s.havePending {
		s.engine.At(s.pending.Arrival, s.arriveFn)
	}
}

// drainArrivals enqueues every job with Arrival ≤ now. The pass
// callback also calls it before packing, which guarantees a pass at
// cycle boundary t sees all arrivals at t even when the chain link
// for them was scheduled after the pass event (same-instant event
// order in the engine is creation order).
func (s *simState) drainArrivals(now float64) {
	n := 0
	for s.err == nil && s.havePending && s.pending.Arrival <= now {
		s.enqueue(s.pending)
		s.advance()
		n++
	}
	if n > 0 {
		s.schedulePass()
	}
}

// enqueue appends a job record and links it onto its bucket's FIFO,
// creating the bucket (with its policy-derived cap and reservation)
// on first sight of the (nodes, class) pair.
func (s *simState) enqueue(j Job) {
	idx := int32(len(s.recs))
	s.recs = append(s.recs, jobRec{job: j, next: -1})
	class := Classify(j.Bench.Method)
	k := bucketKey{j.Nodes, class}
	bi, ok := s.bindex[k]
	if !ok {
		perNodeW := s.cfg.Policy.BudgetPowerPerNode(class)
		bi = int32(len(s.buckets))
		s.buckets = append(s.buckets, bucket{
			nodes:    j.Nodes,
			class:    class,
			capW:     s.cfg.Policy.Cap(class),
			perNodeW: perNodeW,
			needW:    float64(j.Nodes) * (perNodeW - s.cfg.IdleNodeW),
			head:     -1,
			tail:     -1,
		})
		s.bindex[k] = bi
	}
	b := &s.buckets[bi]
	if b.tail >= 0 {
		s.recs[b.tail].next = idx
	} else {
		b.head = idx
	}
	b.tail = idx
	s.waiting++
}

// schedulePass arms one packing pass at the next cycle boundary (the
// smallest multiple of CycleSeconds ≥ now), if none is armed and
// there is anything to pack. Passes are only ever armed here, from
// capacity-changing events — the event-driven replacement for the
// unconditional cycle ticker.
func (s *simState) schedulePass() {
	if s.passScheduled || s.waiting == 0 {
		return
	}
	s.passScheduled = true
	s.engine.At(nextCycle(s.engine.Now()), s.passFn)
}

// nextCycle returns the smallest multiple of CycleSeconds ≥ t,
// guarding against the division rounding across the boundary in
// either direction.
func nextCycle(t float64) float64 {
	k := math.Ceil(t / CycleSeconds)
	q := k * CycleSeconds
	if q < t {
		q = (k + 1) * CycleSeconds
	}
	return q
}

// envelope is the budget-phase chain callback.
func (s *simState) envelope() {
	s.applyEnvelope(s.engine.Now())
	if s.phaseIdx < len(s.cfg.BudgetSchedule) {
		s.engine.At(s.cfg.BudgetSchedule[s.phaseIdx].Start, s.envFn)
	}
}

// applyEnvelope advances the budget to the latest phase with
// Start ≤ now. Any change arms a pass: a rise may admit waiting jobs,
// and treating drops the same way costs one O(buckets) no-op.
func (s *simState) applyEnvelope(now float64) {
	for s.phaseIdx < len(s.cfg.BudgetSchedule) && s.cfg.BudgetSchedule[s.phaseIdx].Start <= now {
		nb := s.cfg.BudgetSchedule[s.phaseIdx].BudgetW
		s.phaseIdx++
		if nb != s.budgetW {
			s.budgetW = nb
			s.schedulePass()
		}
	}
}

// pass is the packing pass, run only at cycle boundaries armed by
// schedulePass. It first catches up on same-instant state (budget
// phases, arrivals), then packs.
func (s *simState) pass() {
	now := s.engine.Now()
	s.applyEnvelope(now)
	s.drainArrivals(now)
	if s.err != nil {
		return
	}
	s.pack(now)
	s.passScheduled = false
}

// pack repeatedly starts the lowest-arrival-sequence waiting job that
// fits the current capacity, which is exactly what one FIFO
// first-fit-skip scan over the whole queue would start (capacity only
// shrinks within a pass, so a job found unfittable stays unfittable,
// and within a bucket the head is always the first candidate). Cost:
// O(buckets) per started job plus O(buckets) to conclude nothing
// fits — the head-of-line early exit.
func (s *simState) pack(now float64) {
	s.passes++
	if s.m != nil {
		s.m.PackingPasses.Inc()
	}
	for {
		best := int32(-1)
		var bb *bucket
		for i := range s.buckets {
			b := &s.buckets[i]
			if b.head < 0 || b.nodes > s.freeNodes {
				continue
			}
			if s.budgetW > 0 && s.reservedW+b.needW > s.budgetW {
				continue
			}
			if best < 0 || b.head < best {
				best = b.head
				bb = b
			}
		}
		if best < 0 {
			break
		}
		rec := &s.recs[best]
		bb.head = rec.next
		if bb.head < 0 {
			bb.tail = -1
		}
		rec.next = -1
		s.waiting--
		s.startOrDrop(now, best, bb)
	}
	if s.waiting > 0 {
		s.holStalls++
		if s.m != nil {
			s.m.HOLStalls.Inc()
		}
	}
}

// startOrDrop starts the job at recs[idx] under its bucket's cap, or
// drops it (recorded, not silent) when its configuration cannot be
// profiled.
func (s *simState) startOrDrop(now float64, idx int32, b *bucket) {
	rec := &s.recs[idx]
	j := rec.job
	prof, err := s.cfg.Catalog.Get(j.Bench, j.Nodes, b.capW)
	if err != nil {
		// Unrunnable configuration: drop the job rather than
		// deadlocking the queue, and record it in the Result.
		s.dropped++
		s.droppedIDs = append(s.droppedIDs, j.ID)
		if s.m != nil {
			s.m.JobsDropped.Inc()
		}
		rec.job = Job{}
		return
	}
	rt := prof.Runtime
	if s.jitter != nil {
		rt *= s.jitter.LogNormal(0, 0.02)
	}
	s.freeNodes -= j.Nodes
	s.reservedW += b.needW
	if s.reservedW > s.peakW {
		s.peakW = s.reservedW
	}
	rec.needW = b.needW
	rec.outcome = JobOutcome{
		ID: j.ID, Class: b.class, CapW: b.capW,
		Start: now, End: now + rt, Wait: now - j.Arrival,
		Runtime: rt, PerfLoss: prof.PerfLoss(),
		EnergyJ:     prof.EnergyJ,
		PowerW:      float64(j.Nodes) * b.perNodeW,
		Nodes:       j.Nodes,
		ActualMeanW: float64(j.Nodes) * prof.MeanNodeW,
	}
	rec.job = Job{} // the benchmark is no longer needed; let it go
	s.started++
	if s.m != nil {
		s.m.JobsStarted.Inc()
	}
	s.engine.AtArg(now+rt, s.completeFn, int(idx))
}

// complete is the (single, reused) completion callback: free the
// job's capacity, record its outcome, and arm a pass if anything is
// waiting for that capacity.
func (s *simState) complete(idx int) {
	rec := &s.recs[idx]
	s.freeNodes += rec.outcome.Nodes
	s.reservedW -= rec.needW
	s.outcomes = append(s.outcomes, rec.outcome)
	if s.m != nil {
		s.m.JobsCompleted.Inc()
	}
	s.schedulePass()
}

// result assembles the Result exactly as the reference loop does
// (sort by ID first, then accumulate in that order, so the floating-
// point sums are bit-identical).
func (s *simState) result() Result {
	res := Result{
		Policy: s.cfg.Policy.Name(), BudgetW: s.cfg.BudgetW, ClusterNodes: s.cfg.ClusterNodes,
		Dropped: s.dropped, DroppedIDs: s.droppedIDs,
	}
	res.PeakPowerW = s.peakW
	outcomes := s.outcomes
	sort.Slice(outcomes, func(i, k int) bool { return outcomes[i].ID < outcomes[k].ID })
	res.Outcomes = outcomes
	res.Completed = len(outcomes)
	var waitSum, lossSum float64
	for _, o := range outcomes {
		res.TotalEnergyJ += o.EnergyJ
		waitSum += o.Wait
		res.MaxWait = math.Max(res.MaxWait, o.Wait)
		lossSum += o.PerfLoss
		res.Makespan = math.Max(res.Makespan, o.End)
	}
	if len(outcomes) > 0 {
		res.MeanWait = waitSum / float64(len(outcomes))
		res.MeanPerfLoss = lossSum / float64(len(outcomes))
	}
	if res.Makespan > 0 {
		res.Throughput = float64(res.Completed) / (res.Makespan / 3600)
	}
	if s.m != nil {
		if w := int64(s.peakW); w > s.m.PeakReservedW.Value() {
			s.m.PeakReservedW.Set(w)
		}
	}
	return res
}

// Timelines reconstructs the cluster's power over the schedule as two
// step functions: what the policy reserved, and what the jobs
// actually drew (measured mean node power while running; idle nodes
// at idleNodeW in both). The gap between the two is the budget the
// policy could not hand out — the quantitative cost of scheduling
// without profiles (§VI-A).
func (r Result) Timelines(idleNodeW float64) (reserved, actual *timeseries.Trace) {
	type edge struct {
		t        float64
		dReserve float64
		dActual  float64
	}
	edges := make([]edge, 0, 2*len(r.Outcomes))
	for _, o := range r.Outcomes {
		idle := float64(o.Nodes) * idleNodeW
		edges = append(edges,
			edge{o.Start, o.PowerW - idle, o.ActualMeanW - idle},
			edge{o.End, -(o.PowerW - idle), -(o.ActualMeanW - idle)})
	}
	// Stable sort with the construction order (Outcomes are sorted by
	// ID) as the tiebreak, so coincident edges always apply in one
	// deterministic order and the step functions are reproducible.
	sort.SliceStable(edges, func(i, k int) bool { return edges[i].t < edges[k].t })
	base := float64(r.ClusterNodes) * idleNodeW
	reserved, actual = &timeseries.Trace{}, &timeseries.Trace{}
	curR, curA := base, base
	prev := 0.0
	for _, e := range edges {
		if e.t > prev {
			reserved.Append(e.t-prev, curR)
			actual.Append(e.t-prev, curA)
			prev = e.t
		}
		curR += e.dReserve
		curA += e.dActual
	}
	return reserved, actual
}

// BudgetUtilization returns mean actual draw divided by mean reserved
// power over the schedule — how much of what the policy set aside was
// really used (1.0 = perfectly sized reservations).
func (r Result) BudgetUtilization(idleNodeW float64) float64 {
	reserved, actual := r.Timelines(idleNodeW)
	if reserved.Energy() <= 0 {
		return 0
	}
	return actual.Energy() / reserved.Energy()
}
