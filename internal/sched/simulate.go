package sched

import (
	"fmt"
	"math"
	"sort"

	"vasppower/internal/rng"
	"vasppower/internal/sim"
	"vasppower/internal/timeseries"
	"vasppower/internal/workloads"
)

// CycleSeconds is the scheduling cycle length; the paper notes power
// capping decisions fit "within each scheduling cycle, usually 30
// seconds" (§VI-A).
const CycleSeconds = 30.0

// SimConfig configures one scheduler simulation.
type SimConfig struct {
	ClusterNodes int
	// BudgetW is the facility power budget for the GPU partition; 0
	// disables budget packing (nodes are the only constraint).
	BudgetW float64
	// IdleNodeW is the power reserved per idle node.
	IdleNodeW float64
	Policy    Policy
	Catalog   *Catalog
	// JitterSeed adds per-job runtime jitter (0 = none).
	JitterSeed uint64
}

// JobOutcome records one job's scheduling history.
type JobOutcome struct {
	ID       string
	Class    Class
	CapW     float64
	Start    float64
	End      float64
	Wait     float64
	Runtime  float64
	PerfLoss float64
	EnergyJ  float64
	PowerW   float64 // reserved node power × nodes while running
	Nodes    int
	// ActualMeanW is the measured mean node power × nodes — what the
	// job really draws, as opposed to what the policy reserved.
	ActualMeanW float64
}

// Result summarizes one policy run over a job mix.
type Result struct {
	Policy       string
	Completed    int
	Makespan     float64
	TotalEnergyJ float64
	MeanWait     float64
	MaxWait      float64
	PeakPowerW   float64 // highest reserved power at any instant
	MeanPerfLoss float64
	Throughput   float64 // jobs per hour over the makespan
	Outcomes     []JobOutcome
	BudgetW      float64
	ClusterNodes int
}

// Simulate runs the job mix through the scheduler under the policy.
func Simulate(cfg SimConfig, jobs []Job) (Result, error) {
	if cfg.ClusterNodes <= 0 {
		return Result{}, fmt.Errorf("sched: cluster size %d", cfg.ClusterNodes)
	}
	if cfg.Policy == nil || cfg.Catalog == nil {
		return Result{}, fmt.Errorf("sched: missing policy or catalog")
	}
	for _, j := range jobs {
		if err := j.Validate(); err != nil {
			return Result{}, err
		}
		if j.Nodes > cfg.ClusterNodes {
			return Result{}, fmt.Errorf("sched: job %s needs %d nodes, cluster has %d", j.ID, j.Nodes, cfg.ClusterNodes)
		}
	}
	queue := append([]Job(nil), jobs...)
	SortJobs(queue)

	var jitter *rng.Stream
	if cfg.JitterSeed != 0 {
		jitter = rng.New(cfg.JitterSeed)
	}

	type running struct {
		job     Job
		outcome JobOutcome
	}
	engine := sim.New()
	freeNodes := cfg.ClusterNodes
	reservedW := float64(cfg.ClusterNodes) * cfg.IdleNodeW
	res := Result{Policy: cfg.Policy.Name(), BudgetW: cfg.BudgetW, ClusterNodes: cfg.ClusterNodes}
	res.PeakPowerW = reservedW
	remaining := len(queue) // jobs not yet completed (or dropped)

	active := map[string]*running{}
	var outcomes []JobOutcome

	// tryStart greedily starts queued jobs (FIFO with first-fit skip,
	// like a backfilling scheduler without reservations).
	var waiting []Job
	tryStart := func(now float64) {
		kept := waiting[:0]
		for _, j := range waiting {
			class := Classify(j.Bench.Method)
			cap := cfg.Policy.Cap(class)
			perNodeW := cfg.Policy.BudgetPowerPerNode(class)
			needW := float64(j.Nodes) * (perNodeW - cfg.IdleNodeW)
			fits := j.Nodes <= freeNodes &&
				(cfg.BudgetW <= 0 || reservedW+needW <= cfg.BudgetW)
			if !fits {
				kept = append(kept, j)
				continue
			}
			prof, err := cfg.Catalog.Get(j.Bench, j.Nodes, cap)
			if err != nil {
				// Unrunnable configuration: drop the job rather than
				// deadlocking the queue.
				remaining--
				continue
			}
			rt := prof.Runtime
			if jitter != nil {
				rt *= jitter.LogNormal(0, 0.02)
			}
			freeNodes -= j.Nodes
			reservedW += needW
			if reservedW > res.PeakPowerW {
				res.PeakPowerW = reservedW
			}
			r := &running{job: j, outcome: JobOutcome{
				ID: j.ID, Class: class, CapW: cap,
				Start: now, End: now + rt, Wait: now - j.Arrival,
				Runtime: rt, PerfLoss: prof.PerfLoss(),
				EnergyJ:     prof.EnergyJ,
				PowerW:      float64(j.Nodes) * perNodeW,
				Nodes:       j.Nodes,
				ActualMeanW: float64(j.Nodes) * prof.MeanNodeW,
			}}
			active[j.ID] = r
			jj := j
			engine.At(now+rt, func() {
				freeNodes += jj.Nodes
				reservedW -= needW
				outcomes = append(outcomes, r.outcome)
				delete(active, jj.ID)
				remaining--
			})
		}
		waiting = kept
	}

	// Arrival events enqueue jobs; a 30-second cycle ticker runs the
	// scheduling pass.
	for _, j := range queue {
		jj := j
		engine.At(j.Arrival, func() {
			waiting = append(waiting, jj)
		})
	}
	var cycle func()
	cycle = func() {
		tryStart(engine.Now())
		if remaining > 0 {
			engine.After(CycleSeconds, cycle)
		}
	}
	engine.At(0, cycle)
	engine.Run()

	if len(waiting) > 0 {
		return Result{}, fmt.Errorf("sched: %d jobs never started", len(waiting))
	}
	sort.Slice(outcomes, func(i, k int) bool { return outcomes[i].ID < outcomes[k].ID })
	res.Outcomes = outcomes
	res.Completed = len(outcomes)
	var waitSum, lossSum float64
	for _, o := range outcomes {
		res.TotalEnergyJ += o.EnergyJ
		waitSum += o.Wait
		res.MaxWait = math.Max(res.MaxWait, o.Wait)
		lossSum += o.PerfLoss
		res.Makespan = math.Max(res.Makespan, o.End)
	}
	if len(outcomes) > 0 {
		res.MeanWait = waitSum / float64(len(outcomes))
		res.MeanPerfLoss = lossSum / float64(len(outcomes))
	}
	if res.Makespan > 0 {
		res.Throughput = float64(res.Completed) / (res.Makespan / 3600)
	}
	return res, nil
}

// SyntheticJobMix builds a reproducible mix of VASP jobs drawn from
// the Table I suite with Poisson-ish arrivals — the workload for the
// scheduler ablation. Heavy RPA/HSE jobs appear less often than plain
// DFT, mirroring production mixes.
func SyntheticJobMix(n int, meanInterArrival float64, seed uint64) []Job {
	r := rng.New(seed)
	suite := []struct {
		name   string
		weight float64
		nodes  []int
	}{
		{"PdO2", 0.25, []int{1, 2}},
		{"PdO4", 0.20, []int{1, 2}},
		{"GaAsBi-64", 0.20, []int{1, 2}},
		{"CuC_vdw", 0.15, []int{1}},
		{"B.hR105_hse", 0.10, []int{1, 2}},
		{"Si128_acfdtr", 0.10, []int{1, 2}},
	}
	var jobs []Job
	t := 0.0
	for i := 0; i < n; i++ {
		t += r.Exponential(meanInterArrival)
		x := r.Float64()
		pick := suite[len(suite)-1]
		acc := 0.0
		for _, s := range suite {
			acc += s.weight
			if x <= acc {
				pick = s
				break
			}
		}
		b, ok := workloads.ByName(pick.name)
		if !ok {
			continue
		}
		jobs = append(jobs, Job{
			ID:      fmt.Sprintf("job%04d", i),
			Bench:   b,
			Nodes:   pick.nodes[r.IntN(len(pick.nodes))],
			Arrival: t,
		})
	}
	return jobs
}

// Timelines reconstructs the cluster's power over the schedule as two
// step functions: what the policy reserved, and what the jobs
// actually drew (measured mean node power while running; idle nodes
// at idleNodeW in both). The gap between the two is the budget the
// policy could not hand out — the quantitative cost of scheduling
// without profiles (§VI-A).
func (r Result) Timelines(idleNodeW float64) (reserved, actual *timeseries.Trace) {
	type edge struct {
		t        float64
		dReserve float64
		dActual  float64
	}
	var edges []edge
	for _, o := range r.Outcomes {
		idle := float64(o.Nodes) * idleNodeW
		edges = append(edges,
			edge{o.Start, o.PowerW - idle, o.ActualMeanW - idle},
			edge{o.End, -(o.PowerW - idle), -(o.ActualMeanW - idle)})
	}
	sort.Slice(edges, func(i, k int) bool { return edges[i].t < edges[k].t })
	base := float64(r.ClusterNodes) * idleNodeW
	reserved, actual = &timeseries.Trace{}, &timeseries.Trace{}
	curR, curA := base, base
	prev := 0.0
	for _, e := range edges {
		if e.t > prev {
			reserved.Append(e.t-prev, curR)
			actual.Append(e.t-prev, curA)
			prev = e.t
		}
		curR += e.dReserve
		curA += e.dActual
	}
	return reserved, actual
}

// BudgetUtilization returns mean actual draw divided by mean reserved
// power over the schedule — how much of what the policy set aside was
// really used (1.0 = perfectly sized reservations).
func (r Result) BudgetUtilization(idleNodeW float64) float64 {
	reserved, actual := r.Timelines(idleNodeW)
	if reserved.Energy() <= 0 {
		return 0
	}
	return actual.Energy() / reserved.Energy()
}
