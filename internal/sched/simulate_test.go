package sched

import (
	"testing"
)

// smallMix returns a quick job mix (light benchmarks only) for the
// simulator tests.
func smallMix(n int, seed uint64) []Job {
	jobs := SyntheticJobMix(n, 60, seed)
	// Keep the mix as generated — the catalog caches measurements, so
	// repeated benchmarks cost one solver run each.
	return jobs
}

func simCfg(policy Policy, budget float64, cat *Catalog) SimConfig {
	return SimConfig{
		ClusterNodes: 8,
		BudgetW:      budget,
		IdleNodeW:    460,
		Policy:       policy,
		Catalog:      cat,
	}
}

func TestSimulateCompletesAllJobs(t *testing.T) {
	cat := NewCatalog(1)
	jobs := smallMix(12, 3)
	res, err := Simulate(simCfg(NoCap{NodeTDP: 2350}, 0, cat), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != len(jobs) {
		t.Fatalf("completed %d of %d", res.Completed, len(jobs))
	}
	if res.Makespan <= 0 || res.TotalEnergyJ <= 0 {
		t.Fatalf("degenerate result: %+v", res)
	}
	for _, o := range res.Outcomes {
		if o.End <= o.Start || o.Wait < 0 {
			t.Fatalf("bad outcome: %+v", o)
		}
	}
}

func TestBudgetConstrainsPeakPower(t *testing.T) {
	cat := NewCatalog(1)
	jobs := smallMix(10, 5)
	budget := 8 * 1200.0 // well under 8 × TDP
	res, err := Simulate(simCfg(NoCap{NodeTDP: 2350}, budget, cat), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if res.PeakPowerW > budget+1e-6 {
		t.Fatalf("budget violated: peak %v > %v", res.PeakPowerW, budget)
	}
}

func TestProfileAwareBeatsNoCapUnderBudget(t *testing.T) {
	// The paper's §VI argument: under a tight facility budget,
	// profile-based caps let more jobs run concurrently, improving
	// throughput/makespan at a small performance cost.
	catA := NewCatalog(1)
	catB := NewCatalog(1)
	jobs := smallMix(16, 9)
	budget := 8 * 1100.0
	noCap, err := Simulate(simCfg(NoCap{NodeTDP: 2350}, budget, catA), jobs)
	if err != nil {
		t.Fatal(err)
	}
	aware, err := Simulate(simCfg(DefaultProfileAware(), budget, catB), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if aware.Makespan >= noCap.Makespan {
		t.Fatalf("profile-aware makespan %v not better than nocap %v under budget",
			aware.Makespan, noCap.Makespan)
	}
	if aware.MeanWait >= noCap.MeanWait {
		t.Fatalf("profile-aware wait %v not better than nocap %v", aware.MeanWait, noCap.MeanWait)
	}
	// Performance cost of capping stays below 10% on average (§V-C).
	if aware.MeanPerfLoss > 0.10 {
		t.Fatalf("mean perf loss %v exceeds 10%%", aware.MeanPerfLoss)
	}
	if noCap.MeanPerfLoss != 0 {
		t.Fatalf("nocap should have zero perf loss, got %v", noCap.MeanPerfLoss)
	}
}

func TestSimulateValidation(t *testing.T) {
	cat := NewCatalog(1)
	jobs := smallMix(2, 1)
	if _, err := Simulate(SimConfig{ClusterNodes: 0, Policy: NoCap{}, Catalog: cat}, jobs); err == nil {
		t.Fatal("zero cluster accepted")
	}
	if _, err := Simulate(SimConfig{ClusterNodes: 4, Catalog: cat}, jobs); err == nil {
		t.Fatal("missing policy accepted")
	}
	if _, err := Simulate(SimConfig{ClusterNodes: 4, Policy: NoCap{}}, jobs); err == nil {
		t.Fatal("missing catalog accepted")
	}
	big := jobs[:1]
	big[0].Nodes = 99
	if _, err := Simulate(simCfg(NoCap{NodeTDP: 2350}, 0, cat), big); err == nil {
		t.Fatal("oversized job accepted")
	}
}

func TestSimulateDeterministic(t *testing.T) {
	jobs := smallMix(8, 11)
	a, err := Simulate(simCfg(DefaultProfileAware(), 0, NewCatalog(2)), jobs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(simCfg(DefaultProfileAware(), 0, NewCatalog(2)), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan || a.TotalEnergyJ != b.TotalEnergyJ {
		t.Fatal("simulation not deterministic")
	}
}

func TestWaitAccounting(t *testing.T) {
	// Two identical single-node jobs on a one-node cluster: the second
	// must wait for the first.
	cat := NewCatalog(1)
	jobs := smallMix(6, 13)
	for i := range jobs {
		jobs[i].Nodes = 1
		jobs[i].Arrival = 0
	}
	cfg := simCfg(NoCap{NodeTDP: 2350}, 0, cat)
	cfg.ClusterNodes = 1
	res, err := Simulate(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxWait <= 0 {
		t.Fatal("serialized jobs should wait")
	}
	if res.Completed != len(jobs) {
		t.Fatalf("completed %d", res.Completed)
	}
}

func TestTimelinesAndUtilization(t *testing.T) {
	cat := NewCatalog(1)
	jobs := smallMix(8, 21)
	const idleW = 460
	res, err := Simulate(simCfg(NoCap{NodeTDP: 2350}, 0, cat), jobs)
	if err != nil {
		t.Fatal(err)
	}
	reserved, actual := res.Timelines(idleW)
	if reserved.Duration() <= 0 || actual.Duration() != reserved.Duration() {
		t.Fatalf("timeline durations: %v vs %v", reserved.Duration(), actual.Duration())
	}
	// Reservations dominate actual draw at every instant under NoCap
	// (TDP per node vs real usage).
	for x := 0.0; x < reserved.Duration(); x += reserved.Duration() / 50 {
		if actual.PowerAt(x) > reserved.PowerAt(x)+1e-6 {
			t.Fatalf("actual draw above reservation at t=%v", x)
		}
	}
	// The floor of both is the idle cluster.
	if reserved.MinPower() < float64(res.ClusterNodes)*idleW-1e-6 {
		t.Fatal("reserved timeline below idle floor")
	}
	util := res.BudgetUtilization(idleW)
	if util <= 0 || util >= 1 {
		t.Fatalf("NoCap budget utilization %v, want in (0,1)", util)
	}
	// Profile-aware reservations are much tighter.
	aware, err := Simulate(simCfg(DefaultProfileAware(), 0, NewCatalog(1)), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if au := aware.BudgetUtilization(idleW); au <= util {
		t.Fatalf("profile-aware utilization %v not better than nocap %v", au, util)
	}
}
