package sched

import (
	"fmt"

	"vasppower/internal/rng"
	"vasppower/internal/workloads"
)

// JobStream feeds jobs to SimulateStream one at a time, in
// nondecreasing Arrival order (ties must already be in the order
// SortJobs would put them: by ID). Streaming is what lets a 100k-job
// facility mix run without materializing the whole slice up front —
// the simulate loop pulls jobs as virtual time reaches them.
type JobStream interface {
	// Next returns the next job; ok is false once the stream is
	// exhausted. Implementations must be deterministic: two streams
	// built from the same inputs yield the same jobs.
	Next() (j Job, ok bool)
}

// SizeHinter is optionally implemented by a JobStream that knows
// (an upper bound on) how many jobs remain; SimulateStream uses the
// hint to preallocate its per-job records.
type SizeHinter interface {
	SizeHint() int
}

// sliceStream adapts a pre-sorted, pre-validated []Job to JobStream.
type sliceStream struct {
	jobs []Job
	i    int
}

func (s *sliceStream) Next() (Job, bool) {
	if s.i >= len(s.jobs) {
		return Job{}, false
	}
	j := s.jobs[s.i]
	s.i++
	return j, true
}

func (s *sliceStream) SizeHint() int { return len(s.jobs) - s.i }

// mixEntry is one benchmark's weight and node-count options in the
// synthetic production mix.
type mixEntry struct {
	name   string
	weight float64
	nodes  []int
}

// mixSuite is the Table I draw table for SyntheticJobMix/Stream:
// heavy RPA/HSE jobs appear less often than plain DFT, mirroring
// production mixes.
var mixSuite = []mixEntry{
	{"PdO2", 0.25, []int{1, 2}},
	{"PdO4", 0.20, []int{1, 2}},
	{"GaAsBi-64", 0.20, []int{1, 2}},
	{"CuC_vdw", 0.15, []int{1}},
	{"B.hR105_hse", 0.10, []int{1, 2}},
	{"Si128_acfdtr", 0.10, []int{1, 2}},
}

// SyntheticStream generates the SyntheticJobMix job sequence lazily:
// the same jobs, in the same order, drawn from the same RNG stream,
// but one at a time. Not safe for concurrent use; build one stream
// per simulation.
type SyntheticStream struct {
	r    *rng.Stream
	mean float64
	n    int
	i    int
	t    float64
}

// SyntheticJobStream returns a stream of n jobs with Poisson-ish
// arrivals (mean inter-arrival seconds) drawn from the Table I suite.
// Draining it yields exactly SyntheticJobMix(n, meanInterArrival,
// seed) — the two share one generator.
func SyntheticJobStream(n int, meanInterArrival float64, seed uint64) *SyntheticStream {
	return &SyntheticStream{r: rng.New(seed), mean: meanInterArrival, n: n}
}

// Next implements JobStream.
func (s *SyntheticStream) Next() (Job, bool) {
	for s.i < s.n {
		i := s.i
		s.i++
		s.t += s.r.Exponential(s.mean)
		x := s.r.Float64()
		pick := mixSuite[len(mixSuite)-1]
		acc := 0.0
		for _, e := range mixSuite {
			acc += e.weight
			if x <= acc {
				pick = e
				break
			}
		}
		b, ok := workloads.ByName(pick.name)
		if !ok {
			continue
		}
		return Job{
			ID:      fmt.Sprintf("job%04d", i),
			Bench:   b,
			Nodes:   pick.nodes[s.r.IntN(len(pick.nodes))],
			Arrival: s.t,
		}, true
	}
	return Job{}, false
}

// SizeHint implements SizeHinter (an upper bound: draws whose
// benchmark lookup fails are skipped, not emitted).
func (s *SyntheticStream) SizeHint() int { return s.n - s.i }

// SyntheticJobMix builds a reproducible mix of VASP jobs drawn from
// the Table I suite with Poisson-ish arrivals — the workload for the
// scheduler ablation. It drains SyntheticJobStream; prefer the stream
// form for facility-scale mixes that should not materialize up front.
func SyntheticJobMix(n int, meanInterArrival float64, seed uint64) []Job {
	src := SyntheticJobStream(n, meanInterArrival, seed)
	var jobs []Job
	for {
		j, ok := src.Next()
		if !ok {
			return jobs
		}
		jobs = append(jobs, j)
	}
}
