package serve

import (
	"context"
	"errors"
	"sync"
)

// ErrSaturated is returned by Limiter.Acquire when the server is at
// capacity AND the waiting queue is full — the request should be shed
// with 429 and a Retry-After hint rather than queued into unbounded
// latency. Bounding the queue is what turns overload into fast
// failure instead of collapse: every queued request still costs its
// caller the full queue drain time, so past a point refusing is
// kinder than accepting.
var ErrSaturated = errors.New("serve: at capacity, queue full")

// Limiter is the admission gate: a weighted semaphore (cheap requests
// weigh 1, a sweep weighs by its point count) with a bounded FIFO
// waiting queue. The warm response-cache path bypasses it entirely —
// admission protects evaluation capacity, and a byte-cache hit
// evaluates nothing.
type Limiter struct {
	m        *Metrics
	capacity int64
	maxQueue int

	mu      sync.Mutex
	cur     int64
	waiters []*waiter // FIFO; index 0 is next to admit
}

type waiter struct {
	n     int64
	ready chan struct{}
}

// NewLimiter builds a limiter admitting at most capacity units of
// concurrent work, with at most maxQueue callers waiting beyond that.
func NewLimiter(capacity int64, maxQueue int, m *Metrics) *Limiter {
	if capacity <= 0 {
		capacity = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &Limiter{m: m, capacity: capacity, maxQueue: maxQueue}
}

// Capacity returns the configured concurrent-work bound.
func (l *Limiter) Capacity() int64 { return l.capacity }

// clampWeight bounds a request weight to [1, capacity] so one huge
// sweep can fill the server but never deadlock against it.
func (l *Limiter) clampWeight(n int64) int64 {
	if n < 1 {
		n = 1
	}
	if n > l.capacity {
		n = l.capacity
	}
	return n
}

// Acquire admits n units of work, blocking in FIFO order while the
// server is full. It returns ErrSaturated immediately when the wait
// queue is at its bound, or ctx.Err() if the context ends first.
// The fast path (capacity available, nobody queued) takes one mutex
// and allocates nothing.
func (l *Limiter) Acquire(ctx context.Context, n int64) error {
	n = l.clampWeight(n)
	l.mu.Lock()
	if l.cur+n <= l.capacity && len(l.waiters) == 0 {
		l.cur += n
		l.mu.Unlock()
		if l.m != nil {
			l.m.InFlight.Add(n)
		}
		return nil
	}
	if len(l.waiters) >= l.maxQueue {
		l.mu.Unlock()
		if l.m != nil {
			l.m.Shed.Inc()
		}
		return ErrSaturated
	}
	w := &waiter{n: n, ready: make(chan struct{})}
	l.waiters = append(l.waiters, w)
	l.mu.Unlock()
	if l.m != nil {
		l.m.QueueDepth.Add(1)
		defer l.m.QueueDepth.Add(-1)
	}

	select {
	case <-w.ready:
		if l.m != nil {
			l.m.InFlight.Add(n)
		}
		return nil
	case <-ctx.Done():
		l.mu.Lock()
		// Admission may have raced the cancellation; if our slot was
		// already granted, hand it back.
		granted := true
		for i, q := range l.waiters {
			if q == w {
				l.waiters = append(l.waiters[:i], l.waiters[i+1:]...)
				granted = false
				break
			}
		}
		if granted {
			l.cur -= w.n
		}
		// Re-run admission in both cases: we either returned capacity,
		// or removed a queued waiter — and if that waiter was a large
		// head-of-queue request, a smaller one behind it may now fit.
		l.admitLocked()
		l.mu.Unlock()
		if l.m != nil {
			l.m.Timeouts.Inc()
		}
		return ctx.Err()
	}
}

// Release returns n units of capacity and admits as many queued
// waiters as now fit, in FIFO order.
func (l *Limiter) Release(n int64) {
	n = l.clampWeight(n)
	l.mu.Lock()
	l.cur -= n
	if l.cur < 0 {
		l.cur = 0
	}
	l.admitLocked()
	l.mu.Unlock()
	if l.m != nil {
		l.m.InFlight.Add(-n)
	}
}

// admitLocked grants the longest-waiting callers whose weights fit.
// Strict FIFO: a large request at the head blocks smaller ones behind
// it, which is what keeps heavy sweeps from starving under a stream
// of cheap requests.
func (l *Limiter) admitLocked() {
	for len(l.waiters) > 0 {
		w := l.waiters[0]
		if l.cur+w.n > l.capacity {
			return
		}
		l.cur += w.n
		l.waiters = l.waiters[1:]
		close(w.ready)
	}
}

// InFlight returns the currently admitted weight (monitoring only).
func (l *Limiter) InFlight() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.cur
}
