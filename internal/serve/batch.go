package serve

import (
	"context"
	"sync"
	"time"

	"vasppower/internal/core"
	"vasppower/internal/par"
)

// Batcher decomposes sweep requests into per-point measurement work
// items and fans them out through a shared batch window: points
// submitted by any request within one window are collected, deduped by
// canonical spec key, and executed as a single par.ForEach fan-out.
// Two clients sweeping overlapping cap ranges at the same moment
// therefore share both the worker pool and the per-point work — each
// distinct point is evaluated once per window, and the memo tiers
// below dedupe across windows.
//
// The window trades a bounded latency floor (Window, ~ms) for
// cross-request merging; Window <= 0 degenerates to per-submission
// fan-out (no added latency, no merging) — the configuration unit
// tests use for determinism.
type Batcher struct {
	measure func(core.MeasureSpec) (core.JobProfile, error)
	keyFn   func(core.MeasureSpec) string
	window  time.Duration
	workers int
	m       *Metrics

	mu      sync.Mutex
	pending map[string]*PointFlight // open window's points, by canonical key
	batch   []*PointFlight          // same points, in submission order
}

// PointFlight is one in-flight (or completed) sweep point. Multiple
// requests may hold the same flight; its result is set exactly once,
// before done closes.
type PointFlight struct {
	spec core.MeasureSpec
	done chan struct{}
	jp   core.JobProfile
	err  error
}

// Wait blocks until the point's evaluation completes (or ctx ends) and
// returns its result.
func (f *PointFlight) Wait(ctx context.Context) (core.JobProfile, error) {
	select {
	case <-f.done:
		return f.jp, f.err
	case <-ctx.Done():
		return core.JobProfile{}, ctx.Err()
	}
}

// NewBatcher builds a batcher executing points with measure on pools
// of `workers` goroutines (0 = one per CPU), merging submissions that
// land within window of the first.
func NewBatcher(measure func(core.MeasureSpec) (core.JobProfile, error),
	keyFn func(core.MeasureSpec) string,
	window time.Duration, workers int, m *Metrics) *Batcher {
	return &Batcher{
		measure: measure, keyFn: keyFn,
		window: window, workers: workers, m: m,
		pending: make(map[string]*PointFlight),
	}
}

// Enqueue registers one point in the open batch window, returning its
// flight. A point whose canonical key is already pending joins the
// existing flight (counted in serve.batch_merged). The first point of
// a window arms the window timer; with Window <= 0 the submission
// flushes immediately.
func (b *Batcher) Enqueue(spec core.MeasureSpec) *PointFlight {
	key := b.keyFn(spec)
	b.mu.Lock()
	if f, ok := b.pending[key]; ok {
		b.mu.Unlock()
		if b.m != nil {
			b.m.BatchMerged.Inc()
		}
		return f
	}
	f := &PointFlight{spec: spec, done: make(chan struct{})}
	b.pending[key] = f
	b.batch = append(b.batch, f)
	armed := len(b.batch) == 1
	b.mu.Unlock()
	if armed {
		if b.window > 0 {
			time.AfterFunc(b.window, b.flush)
		} else {
			go b.flush()
		}
	}
	return f
}

// flush closes the open window and fans its points out. Points run in
// submission order through the worker pool; each flight's result is
// delivered to every waiter via its done channel. Errors stay
// per-point (a failed point fails the sweeps containing it, not the
// whole batch).
func (b *Batcher) flush() {
	b.mu.Lock()
	batch := b.batch
	b.batch = nil
	b.pending = make(map[string]*PointFlight)
	b.mu.Unlock()
	if len(batch) == 0 {
		return
	}
	if b.m != nil {
		b.m.BatchFlushes.Inc()
		b.m.BatchPoints.Add(int64(len(batch)))
	}
	par.ForEach(context.Background(), par.Workers(b.workers), len(batch),
		func(_ context.Context, i int) error {
			f := batch[i]
			f.jp, f.err = b.measure(f.spec)
			close(f.done)
			return nil // per-point errors ride the flight, not the pool
		})
}

// Measure runs specs through the batcher and assembles their profiles
// by index, returning the first failing point's error (with its
// index intact for the caller's message).
func (b *Batcher) Measure(ctx context.Context, specs []core.MeasureSpec) ([]core.JobProfile, error) {
	flights := make([]*PointFlight, len(specs))
	for i, spec := range specs {
		flights[i] = b.Enqueue(spec)
	}
	out := make([]core.JobProfile, len(specs))
	for i, f := range flights {
		jp, err := f.Wait(ctx)
		if err != nil {
			return nil, err
		}
		out[i] = jp
	}
	return out, nil
}
