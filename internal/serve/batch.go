package serve

import (
	"context"
	"sync"
	"time"

	"vasppower/internal/core"
	"vasppower/internal/par"
)

// Batcher decomposes sweep requests into per-point measurement work
// items and fans them out through a shared batch window: points
// submitted by any request within one window are collected, deduped by
// canonical spec key, and executed as a single par.ForEach fan-out.
// Two clients sweeping overlapping cap ranges at the same moment
// therefore share both the worker pool and the per-point work — each
// distinct point is evaluated once per window, and the memo tiers
// below dedupe across windows.
//
// The window trades a bounded latency floor (Window, ~ms) for
// cross-request merging; Window <= 0 degenerates to per-submission
// fan-out (no added latency, no merging) — the configuration unit
// tests use for determinism.
type Batcher struct {
	measure func(core.MeasureSpec) (core.JobProfile, error)
	// group, when non-nil, measures several cap points of one
	// spec-minus-cap identity through a shared incremental sweep
	// context (the resolution phase paid once per group per window).
	group   func(core.MeasureSpec, []float64) ([]core.JobProfile, error)
	keyFn   func(core.MeasureSpec) string
	window  time.Duration
	workers int
	m       *Metrics

	mu      sync.Mutex
	pending map[string]*PointFlight // open window's points, by canonical key
	batch   []*PointFlight          // same points, in submission order
}

// PointFlight is one in-flight (or completed) sweep point. Multiple
// requests may hold the same flight; its result is set exactly once,
// before done closes.
type PointFlight struct {
	spec core.MeasureSpec
	done chan struct{}
	jp   core.JobProfile
	err  error
}

// Wait blocks until the point's evaluation completes (or ctx ends) and
// returns its result.
func (f *PointFlight) Wait(ctx context.Context) (core.JobProfile, error) {
	select {
	case <-f.done:
		return f.jp, f.err
	case <-ctx.Done():
		return core.JobProfile{}, ctx.Err()
	}
}

// NewBatcher builds a batcher executing points with measure on pools
// of `workers` goroutines (0 = one per CPU), merging submissions that
// land within window of the first. A non-nil group function lets a
// flush run the points that share a spec-minus-cap identity through
// one incremental sweep context; nil keeps the per-point path (tests
// injecting a measure counter see every point).
func NewBatcher(measure func(core.MeasureSpec) (core.JobProfile, error),
	group func(core.MeasureSpec, []float64) ([]core.JobProfile, error),
	keyFn func(core.MeasureSpec) string,
	window time.Duration, workers int, m *Metrics) *Batcher {
	return &Batcher{
		measure: measure, group: group, keyFn: keyFn,
		window: window, workers: workers, m: m,
		pending: make(map[string]*PointFlight),
	}
}

// Enqueue registers one point in the open batch window, returning its
// flight. A point whose canonical key is already pending joins the
// existing flight (counted in serve.batch_merged). The first point of
// a window arms the window timer; with Window <= 0 the submission
// flushes immediately.
func (b *Batcher) Enqueue(spec core.MeasureSpec) *PointFlight {
	key := b.keyFn(spec)
	b.mu.Lock()
	if f, ok := b.pending[key]; ok {
		b.mu.Unlock()
		if b.m != nil {
			b.m.BatchMerged.Inc()
		}
		return f
	}
	f := &PointFlight{spec: spec, done: make(chan struct{})}
	b.pending[key] = f
	b.batch = append(b.batch, f)
	armed := len(b.batch) == 1
	b.mu.Unlock()
	if armed {
		if b.window > 0 {
			time.AfterFunc(b.window, b.flush)
		} else {
			go b.flush()
		}
	}
	return f
}

// flush closes the open window and fans its points out. Points run in
// submission order through the worker pool; each flight's result is
// delivered to every waiter via its done channel. Errors stay
// per-point (a failed point fails the sweeps containing it, not the
// whole batch).
func (b *Batcher) flush() {
	b.mu.Lock()
	batch := b.batch
	b.batch = nil
	b.pending = make(map[string]*PointFlight)
	b.mu.Unlock()
	if len(batch) == 0 {
		return
	}
	if b.m != nil {
		b.m.BatchFlushes.Inc()
		b.m.BatchPoints.Add(int64(len(batch)))
	}
	if b.group == nil {
		par.ForEach(context.Background(), par.Workers(b.workers), len(batch),
			func(_ context.Context, i int) error {
				f := batch[i]
				f.jp, f.err = b.measure(f.spec)
				close(f.done)
				return nil // per-point errors ride the flight, not the pool
			})
		return
	}

	// Collect points sharing a canonical spec-minus-cap identity into
	// cap-sweep groups, in submission order; the fan-out goes per group
	// so each group's resolution phase runs once.
	type capGroup struct {
		flights []*PointFlight
		caps    []float64
	}
	groups := make(map[string]*capGroup, len(batch))
	order := make([]*capGroup, 0, len(batch))
	for _, f := range batch {
		base := f.spec
		base.CapW = 0
		k := b.keyFn(base)
		g, ok := groups[k]
		if !ok {
			g = &capGroup{}
			groups[k] = g
			order = append(order, g)
		}
		g.flights = append(g.flights, f)
		g.caps = append(g.caps, f.spec.CapW)
	}
	par.ForEach(context.Background(), par.Workers(b.workers), len(order),
		func(_ context.Context, i int) error {
			g := order[i]
			if len(g.flights) > 1 {
				if b.m != nil {
					b.m.BatchGroups.Inc()
				}
				jps, err := b.group(g.flights[0].spec, g.caps)
				if err == nil {
					for fi, f := range g.flights {
						f.jp = jps[fi]
						close(f.done)
					}
					return nil
				}
				// Group failure: fall through to per-point evaluation so
				// errors stay per-point (successful points re-resolve via
				// the memo tiers, not a fresh computation).
			}
			for _, f := range g.flights {
				f.jp, f.err = b.measure(f.spec)
				close(f.done)
			}
			return nil // per-point errors ride the flight, not the pool
		})
}

// Measure runs specs through the batcher and assembles their profiles
// by index, returning the first failing point's error (with its
// index intact for the caller's message).
func (b *Batcher) Measure(ctx context.Context, specs []core.MeasureSpec) ([]core.JobProfile, error) {
	flights := make([]*PointFlight, len(specs))
	for i, spec := range specs {
		flights[i] = b.Enqueue(spec)
	}
	out := make([]core.JobProfile, len(specs))
	for i, f := range flights {
		jp, err := f.Wait(ctx)
		if err != nil {
			return nil, err
		}
		out[i] = jp
	}
	return out, nil
}
