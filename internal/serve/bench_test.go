package serve

import (
	"bytes"
	"io"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"testing"

	"vasppower/internal/obs"
)

// discardWriter is a minimal ResponseWriter for hot-path benchmarks:
// its header map is allocated once and reused, so the only allocations
// a benchmark observes are the handler's own.
type discardWriter struct {
	h      http.Header
	status int
	n      int
}

func newDiscardWriter() *discardWriter {
	return &discardWriter{h: make(http.Header, 4)}
}

func (d *discardWriter) Header() http.Header { return d.h }
func (d *discardWriter) WriteHeader(code int) {
	d.status = code
}
func (d *discardWriter) Write(p []byte) (int, error) {
	d.n += len(p)
	return len(p), nil
}
func (d *discardWriter) reset() {
	d.status = 0
	d.n = 0
	for k := range d.h {
		delete(d.h, k)
	}
}

// resettableBody replays the same request body every iteration
// without reallocating a reader.
type resettableBody struct{ r bytes.Reader }

func (b *resettableBody) Read(p []byte) (int, error) { return b.r.Read(p) }
func (b *resettableBody) Close() error               { return nil }

func newWarmServer(b *testing.B) (*Server, *http.Request, *resettableBody) {
	b.Helper()
	f := &fakeMeasure{}
	s := New(Config{Measure: f.fn, Reg: obs.NewRegistry(), BatchWindow: -1})
	// Prime the byte cache with one real round trip.
	req, _ := http.NewRequest(http.MethodPost, "/v1/measure", strings.NewReader(measureBody))
	w := newDiscardWriter()
	s.Handler().ServeHTTP(w, req)
	if w.status != 200 && w.status != 0 {
		b.Fatalf("priming request failed: status %d", w.status)
	}

	body := &resettableBody{}
	body.r.Reset([]byte(measureBody))
	warm := &http.Request{
		Method: http.MethodPost,
		URL:    &url.URL{Path: "/v1/measure"},
		Body:   body,
	}
	return s, warm, body
}

// BenchmarkWarmMeasure is the tentpole's headline number: a cached
// /v1/measure request through the full mux → lookup → write path.
// Target: 0 allocs/op, > 50k req/s on one core (ns/op < 20000).
func BenchmarkWarmMeasure(b *testing.B) {
	s, req, body := newWarmServer(b)
	h := s.Handler()
	w := newDiscardWriter()
	raw := []byte(measureBody)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body.r.Reset(raw)
		h.ServeHTTP(w, req)
	}
	b.StopTimer()
	if w.status != 0 && w.status != 200 {
		b.Fatalf("warm request failed: status %d", w.status)
	}
	if hits := s.Metrics().Hits.Value(); hits < int64(b.N) {
		b.Fatalf("only %d/%d hits — benchmark fell off the warm path", hits, b.N)
	}
}

// BenchmarkWarmMeasureParallel drives the warm path from all cores —
// the shard count should keep contention negligible.
func BenchmarkWarmMeasureParallel(b *testing.B) {
	s, _, _ := newWarmServer(b)
	h := s.Handler()
	raw := []byte(measureBody)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		w := newDiscardWriter()
		body := &resettableBody{}
		req := &http.Request{
			Method: http.MethodPost,
			URL:    &url.URL{Path: "/v1/measure"},
			Body:   body,
		}
		for pb.Next() {
			body.r.Reset(raw)
			h.ServeHTTP(w, req)
		}
	})
}

// BenchmarkCacheLookup isolates the byte-cache probe itself (the
// floor under the HTTP numbers).
func BenchmarkCacheLookup(b *testing.B) {
	c := newRespCache(NewMetrics(nil), 1024)
	e := &respEntry{done: make(chan struct{}), status: 200, body: []byte("{}")}
	close(e.done)
	body := []byte(measureBody)
	c.alias(body, e)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if c.lookup(body) == nil {
			b.Fatal("lost the alias")
		}
	}
}

// BenchmarkColdMeasure measures the miss path with a trivial Measure:
// decode + validate + singleflight + encode + alias registration.
func BenchmarkColdMeasure(b *testing.B) {
	f := &fakeMeasure{}
	s := New(Config{Measure: f.fn, Reg: obs.NewRegistry(), BatchWindow: -1, CacheEntries: 64})
	h := s.Handler()
	w := newDiscardWriter()
	// Distinct cap per iteration defeats both cache indexes, so every
	// request pays the full evaluate-and-encode path. Caps stay strictly
	// below the TDP: at or above it they canonicalize to uncapped and
	// would all land on one warm canonical entry.
	bodies := make([][]byte, 512)
	for i := range bodies {
		bodies[i] = []byte(`{"bench":"Si256_hse","cap_w":` +
			strconv.FormatFloat(100+float64(i)/2, 'g', -1, 64) + `}`)
	}
	body := &resettableBody{}
	req := &http.Request{
		Method: http.MethodPost,
		URL:    &url.URL{Path: "/v1/measure"},
		Body:   body,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body.r.Reset(bodies[i%len(bodies)])
		h.ServeHTTP(w, req)
		w.reset()
	}
}

func itoa(n int) string {
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// BenchmarkWarmHTTP goes over a real TCP loopback connection with a
// hand-rolled client loop (no net/http client allocation noise) to
// sanity-check that the end-to-end server, not just the handler,
// sustains the target rate.
func BenchmarkWarmHTTP(b *testing.B) {
	f := &fakeMeasure{}
	s := New(Config{Measure: f.fn, Reg: obs.NewRegistry(), BatchWindow: -1})
	srv := &http.Server{Handler: s.Handler()}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Skipf("loopback listen: %v", err)
	}
	defer ln.Close()
	go srv.Serve(ln)
	defer srv.Close()

	addr := ln.Addr().String()
	reqBytes := []byte("POST /v1/measure HTTP/1.1\r\nHost: bench\r\nContent-Type: application/json\r\nContent-Length: " +
		itoa(len(measureBody)) + "\r\n\r\n" + measureBody)

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close()
	rd := newChunkReader(conn)
	// Prime.
	if err := roundTrip(conn, rd, reqBytes); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := roundTrip(conn, rd, reqBytes); err != nil {
			b.Fatal(err)
		}
	}
}

func roundTrip(conn io.ReadWriter, rd *chunkReader, req []byte) error {
	if _, err := conn.Write(req); err != nil {
		return err
	}
	return rd.readResponse()
}

// chunkReader consumes one HTTP/1.1 response per call, reusing its
// buffer, by scanning for the header terminator and Content-Length.
type chunkReader struct {
	r   io.Reader
	buf []byte
	n   int
}

func newChunkReader(r io.Reader) *chunkReader {
	return &chunkReader{r: r, buf: make([]byte, 64<<10)}
}

func (c *chunkReader) readResponse() error {
	c.n = 0
	for {
		n, err := c.r.Read(c.buf[c.n:])
		if err != nil {
			return err
		}
		c.n += n
		head := c.buf[:c.n]
		if i := bytes.Index(head, []byte("\r\n\r\n")); i >= 0 {
			cl := contentLength(head[:i])
			if c.n >= i+4+cl {
				return nil
			}
		}
	}
}

func contentLength(head []byte) int {
	i := bytes.Index(head, []byte("Content-Length: "))
	if i < 0 {
		return 0
	}
	n := 0
	for _, b := range head[i+len("Content-Length: "):] {
		if b < '0' || b > '9' {
			break
		}
		n = n*10 + int(b-'0')
	}
	return n
}
