package serve

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"vasppower/internal/core"
	"vasppower/internal/hw/platform"
	"vasppower/internal/omni"
	"vasppower/internal/sched"
	"vasppower/internal/workloads"
)

// maxBodyBytes bounds one request body; the largest legitimate body
// (an explicit scaling sweep) is well under 64 KiB.
const maxBodyBytes = 1 << 20

// Pooled request-body buffers keep the warm path allocation-free:
// steady-state bodies fit the initial capacity, so reads reuse one
// buffer per concurrent request.
var bufPool = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

func getBuf() *[]byte  { return bufPool.Get().(*[]byte) }
func putBuf(b *[]byte) { *b = (*b)[:0]; bufPool.Put(b) }

var errBodyTooLarge = errors.New("request body exceeds 1 MiB")

// bodyErrStatus distinguishes an oversized payload (413, so clients
// know shrinking — not fixing — the body is the remedy) from a
// transport-level read failure (400).
func bodyErrStatus(err error) int {
	if errors.Is(err, errBodyTooLarge) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// readBody reads the full request body into the pooled buffer,
// without allocating while the body fits its capacity.
func readBody(r *http.Request, bp *[]byte) ([]byte, error) {
	b := (*bp)[:0]
	for {
		if len(b) == cap(b) {
			if cap(b) >= maxBodyBytes {
				return nil, errBodyTooLarge
			}
			b = append(b, 0)[:len(b)]
			// append's growth overshoots; clamp the working capacity at
			// the limit so an over-limit body can never fit in the slack
			// and slip past the cap(b) >= maxBodyBytes check above.
			if cap(b) > maxBodyBytes {
				b = b[:len(b):maxBodyBytes]
			}
		}
		n, err := r.Body.Read(b[len(b):cap(b)])
		b = b[:len(b)+n]
		if err == io.EOF {
			*bp = b
			return b, nil
		}
		if err != nil {
			return nil, err
		}
	}
}

// Preallocated header values: assigning an existing slice into the
// header map is what keeps the warm path at zero allocations (Set
// would build a fresh []string per request).
var (
	jsonCT     = []string{"application/json"}
	xCacheHit  = []string{"hit"}
	xCacheMiss = []string{"miss"}
	retryAfter = []string{"1"}
)

// writeEntry writes a completed 200 entry's canonical bytes.
func writeEntry(w http.ResponseWriter, e *respEntry, hit bool) {
	h := w.Header()
	h["Content-Type"] = jsonCT
	if hit {
		h["X-Cache"] = xCacheHit
	} else {
		h["X-Cache"] = xCacheMiss
	}
	w.Write(e.body)
}

// httpError writes a JSON error body and counts it. 4xx are the
// caller's fault, 5xx ours; both land in serve.errors.
func (s *Server) httpError(w http.ResponseWriter, status int, msg string) {
	s.m.Errors.Inc()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	resp, _ := json.Marshal(struct {
		Error string `json:"error"`
	}{msg})
	w.Write(append(resp, '\n'))
}

// shed writes the saturation response. The 429 was already counted in
// serve.shed by the limiter; Retry-After tells well-behaved clients
// to back off instead of retry-storming.
func (s *Server) shed(w http.ResponseWriter) {
	h := w.Header()
	h["Content-Type"] = jsonCT
	h["Retry-After"] = retryAfter
	w.WriteHeader(http.StatusTooManyRequests)
	io.WriteString(w, "{\"error\":\"server at capacity, retry later\"}\n")
}

func (s *Server) observeLatency(start time.Time) {
	s.m.LatencyMS.Observe(float64(time.Since(start)) / 1e6)
}

// ---- /v1/measure ----

// measureRequest is the wire form of one MeasureSpec. Unknown fields
// are rejected — a typoed "cap" silently measuring uncapped would be
// a debugging dead end.
type measureRequest struct {
	Bench    string  `json:"bench"`
	Platform string  `json:"platform,omitempty"`
	Nodes    int     `json:"nodes,omitempty"`
	Repeats  int     `json:"repeats,omitempty"`
	CapW     float64 `json:"cap_w,omitempty"`
	Seed     uint64  `json:"seed,omitempty"`
	Entropy  float64 `json:"entropy,omitempty"`
}

// apiError carries a validation failure to the HTTP layer.
type apiError struct {
	status int
	msg    string
}

func badRequest(format string, args ...any) *apiError {
	return &apiError{http.StatusBadRequest, fmt.Sprintf(format, args...)}
}

// checkFinite applies the Kernel.Validate idiom to wire floats: NaN
// and ±Inf never enter a spec (JSON cannot express them literally,
// but oversized exponents and future non-JSON callers can).
func checkFinite(field string, v float64) *apiError {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return badRequest("%s must be finite, got %v", field, v)
	}
	return nil
}

// readerPool recycles the bytes.Reader feeding each strict decode.
// json.Decoder has no Reset, so the decoder itself must be rebuilt per
// request, but its input reader is the pool's to keep — one fewer
// allocation on every cold request.
var readerPool = sync.Pool{New: func() any { return new(bytes.Reader) }}

func decodeStrict(body []byte, dst any) *apiError {
	br := readerPool.Get().(*bytes.Reader)
	br.Reset(body)
	dec := json.NewDecoder(br)
	dec.DisallowUnknownFields()
	err := dec.Decode(dst)
	// Trailing garbage after the JSON value is malformed too.
	trailing := err == nil && dec.More()
	br.Reset(nil) // drop the pooled body reference before returning br
	readerPool.Put(br)
	if err != nil {
		return badRequest("malformed request: %v", err)
	}
	if trailing {
		return badRequest("malformed request: trailing data after JSON body")
	}
	return nil
}

// resolvePlatform maps a wire platform name to a registered Platform.
func resolvePlatform(name string) (platform.Platform, *apiError) {
	if name == "" {
		return platform.Default(), nil
	}
	p, err := platform.Get(name)
	if err != nil {
		return platform.Platform{}, badRequest("unknown platform %q (registered: %s)",
			name, strings.Join(platform.List(), ", "))
	}
	return p, nil
}

// specLimits bound a single measurement to what the simulator handles
// in bounded time; they exist to shed abusive requests, not to police
// science.
const (
	maxSpecNodes   = 4096
	maxSpecRepeats = 100
)

func (req measureRequest) toSpec() (core.MeasureSpec, *apiError) {
	b, ok := workloads.ByName(req.Bench)
	if !ok {
		return core.MeasureSpec{}, badRequest("unknown benchmark %q", req.Bench)
	}
	p, aerr := resolvePlatform(req.Platform)
	if aerr != nil {
		return core.MeasureSpec{}, aerr
	}
	if req.Nodes < 0 || req.Nodes > maxSpecNodes {
		return core.MeasureSpec{}, badRequest("nodes %d out of range [0, %d]", req.Nodes, maxSpecNodes)
	}
	if req.Repeats < 0 || req.Repeats > maxSpecRepeats {
		return core.MeasureSpec{}, badRequest("repeats %d out of range [0, %d]", req.Repeats, maxSpecRepeats)
	}
	if aerr := checkFinite("cap_w", req.CapW); aerr != nil {
		return core.MeasureSpec{}, aerr
	}
	if req.CapW < 0 {
		return core.MeasureSpec{}, badRequest("cap_w %g must be >= 0 (0 = uncapped)", req.CapW)
	}
	if aerr := checkFinite("entropy", req.Entropy); aerr != nil {
		return core.MeasureSpec{}, aerr
	}
	if req.Entropy < 0 || req.Entropy > 1 {
		return core.MeasureSpec{}, badRequest("entropy %g out of range [0, 1]", req.Entropy)
	}
	return core.MeasureSpec{
		Bench: b, Platform: p, Nodes: req.Nodes, Repeats: req.Repeats,
		CapW: req.CapW, Seed: req.Seed, Entropy: req.Entropy,
	}, nil
}

// profileJSON summarizes one component's power profile on the wire.
type profileJSON struct {
	MeanW     float64 `json:"mean_w"`
	MaxW      float64 `json:"max_w"`
	StdDevW   float64 `json:"stddev_w"`
	HighModeW float64 `json:"high_mode_w,omitempty"`
	FWHMW     float64 `json:"fwhm_w,omitempty"`
}

func toProfileJSON(p core.Profile) profileJSON {
	pj := profileJSON{
		MeanW:   p.Summary.Mean,
		MaxW:    p.Summary.Max,
		StdDevW: p.Summary.StdDev,
	}
	if p.HasMode {
		pj.HighModeW = p.HighMode.X
		pj.FWHMW = p.HighMode.FWHM
	}
	return pj
}

// measureResponse is the canonical wire form of one measurement: the
// resolved spec (so a client sees the defaults that applied) plus the
// profile summary. Field order is fixed — responses are cached as
// bytes and diffed byte-for-byte against powerd -oneshot in CI.
type measureResponse struct {
	Bench    string  `json:"bench"`
	Platform string  `json:"platform"`
	Nodes    int     `json:"nodes"`
	Repeats  int     `json:"repeats"`
	CapW     float64 `json:"cap_w"`
	Seed     uint64  `json:"seed"`
	Entropy  float64 `json:"entropy,omitempty"`

	RuntimeS float64     `json:"runtime_s"`
	EnergyJ  float64     `json:"energy_j"`
	Node     profileJSON `json:"node"`
	CPU      profileJSON `json:"cpu"`
	Mem      profileJSON `json:"mem"`
	GPUSum   profileJSON `json:"gpu_sum"`
	GPUModeW float64     `json:"gpu_mode_w,omitempty"`
	GPUShare float64     `json:"gpu_share"`
}

func buildMeasureResponse(spec core.MeasureSpec, jp core.JobProfile) measureResponse {
	resolved := spec
	resolved.Platform = platform.OrDefault(spec.Platform)
	if resolved.Nodes <= 0 {
		resolved.Nodes = 1
	}
	if resolved.Repeats <= 0 {
		resolved.Repeats = 1
	}
	// A cap at or above the GPU's TDP is the stock power limit, so the
	// canonical cache key treats it as uncapped; echo the cap the same
	// way, because cap_w=0 and cap_w>=TDP requests share one cached
	// response entry and the bytes must not depend on which arrived
	// first.
	if resolved.CapW <= 0 || resolved.CapW >= resolved.Platform.GPU.TDP {
		resolved.CapW = 0
	}
	resp := measureResponse{
		Bench:    spec.Bench.Name,
		Platform: resolved.Platform.Name,
		Nodes:    resolved.Nodes,
		Repeats:  resolved.Repeats,
		CapW:     resolved.CapW,
		Seed:     spec.Seed,
		Entropy:  spec.Entropy,
		RuntimeS: jp.Runtime,
		EnergyJ:  jp.EnergyJ,
		Node:     toProfileJSON(jp.NodeTotal),
		CPU:      toProfileJSON(jp.CPU),
		Mem:      toProfileJSON(jp.Mem),
		GPUSum:   toProfileJSON(jp.GPUSum),
		GPUShare: jp.GPUShareOfNode(),
	}
	var sum float64
	n := 0
	for _, g := range jp.GPUs {
		if g.HasMode {
			sum += g.HighMode.X
			n++
		}
	}
	if n > 0 {
		resp.GPUModeW = sum / float64(n)
	}
	return resp
}

func encodeJSON(v any) (int, []byte, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return http.StatusInternalServerError, nil, err
	}
	return http.StatusOK, append(b, '\n'), nil
}

func (s *Server) handleMeasure(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.m.Requests.Inc()
	if r.Method != http.MethodPost {
		s.httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	buf := getBuf()
	defer putBuf(buf)
	body, err := readBody(r, buf)
	if err != nil {
		s.httpError(w, bodyErrStatus(err), err.Error())
		return
	}

	// Warm path: verbatim body bytes already mapped to canonical
	// response bytes. No parsing, no admission (nothing to evaluate),
	// no allocation.
	if e := s.cache.lookup(body); e != nil {
		s.m.Hits.Inc()
		writeEntry(w, e, true)
		s.observeLatency(start)
		return
	}

	var req measureRequest
	if aerr := decodeStrict(body, &req); aerr != nil {
		s.httpError(w, aerr.status, aerr.msg)
		return
	}
	spec, aerr := req.toSpec()
	if aerr != nil {
		s.httpError(w, aerr.status, aerr.msg)
		return
	}

	ctx, cancel := contextWithTimeout(r, s.cfg.Timeout)
	defer cancel()
	if err := s.limiter.Acquire(ctx, 1); err != nil {
		if errors.Is(err, ErrSaturated) {
			s.shed(w)
			return
		}
		s.httpError(w, http.StatusServiceUnavailable, "canceled while queued: "+err.Error())
		return
	}
	defer s.limiter.Release(1)

	s.m.Misses.Inc()
	e, coalesced, err := s.cache.do(ctx, measureCanonKey(spec), func() (int, []byte, error) {
		jp, err := s.cfg.Measure(spec)
		if err != nil {
			return http.StatusInternalServerError, nil, err
		}
		return encodeJSON(buildMeasureResponse(spec, jp))
	})
	if coalesced {
		s.m.Coalesced.Inc()
	}
	if err != nil {
		s.evalError(w, err)
		return
	}
	s.cache.alias(body, e)
	writeEntry(w, e, false)
	s.observeLatency(start)
}

// contextWithTimeout applies the endpoint budget on top of the
// request's own lifetime.
func contextWithTimeout(r *http.Request, d time.Duration) (context.Context, context.CancelFunc) {
	return context.WithTimeout(r.Context(), d)
}

// evalError maps an evaluation failure to HTTP: deadline → 504,
// anything else → 500. Evaluation errors are never cached, so the
// next identical request retries.
func (s *Server) evalError(w http.ResponseWriter, err error) {
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		s.m.Timeouts.Inc()
		s.httpError(w, http.StatusGatewayTimeout, "evaluation timed out: "+err.Error())
		return
	}
	s.httpError(w, http.StatusInternalServerError, err.Error())
}

// ---- /v1/sweep ----

// sweepRequest describes either a power-cap sweep (kind "cap": one
// bench at fixed node count across [from_w, to_w] in step_w
// increments) or a scaling sweep (kind "scaling": one bench across
// node_counts at a fixed cap).
type sweepRequest struct {
	Kind       string  `json:"kind"`
	Bench      string  `json:"bench"`
	Platform   string  `json:"platform,omitempty"`
	Nodes      int     `json:"nodes,omitempty"`
	Repeats    int     `json:"repeats,omitempty"`
	Seed       uint64  `json:"seed,omitempty"`
	Entropy    float64 `json:"entropy,omitempty"`
	FromW      float64 `json:"from_w,omitempty"` // cap sweep; 0 = platform GPU MinPowerLimit
	ToW        float64 `json:"to_w,omitempty"`   // cap sweep; 0 = platform GPU TDP
	StepW      float64 `json:"step_w,omitempty"` // cap sweep; 0 = 25 W
	CapW       float64 `json:"cap_w,omitempty"`  // scaling sweep's fixed cap
	NodeCounts []int   `json:"node_counts,omitempty"`
	Stream     bool    `json:"stream,omitempty"` // NDJSON, one point per line
}

type sweepResponse struct {
	Kind     string            `json:"kind"`
	Bench    string            `json:"bench"`
	Platform string            `json:"platform"`
	Count    int               `json:"count"`
	Points   []measureResponse `json:"points"`
}

// toSpecs expands the request into its per-point MeasureSpecs, in
// sweep order.
func (req sweepRequest) toSpecs(maxPoints int) ([]core.MeasureSpec, *apiError) {
	base := measureRequest{
		Bench: req.Bench, Platform: req.Platform, Nodes: req.Nodes,
		Repeats: req.Repeats, Seed: req.Seed, Entropy: req.Entropy,
	}
	switch req.Kind {
	case "cap":
		p, aerr := resolvePlatform(req.Platform)
		if aerr != nil {
			return nil, aerr
		}
		for _, f := range [...]struct {
			name string
			v    float64
		}{{"from_w", req.FromW}, {"to_w", req.ToW}, {"step_w", req.StepW}} {
			if aerr := checkFinite(f.name, f.v); aerr != nil {
				return nil, aerr
			}
			if f.v < 0 {
				return nil, badRequest("%s %g must be >= 0", f.name, f.v)
			}
		}
		from, to, step := req.FromW, req.ToW, req.StepW
		if from == 0 {
			from = p.GPU.MinPowerLimit
		}
		if to == 0 {
			to = p.GPU.TDP
		}
		if step == 0 {
			step = 25
		}
		if from > to {
			return nil, badRequest("from_w %g exceeds to_w %g", from, to)
		}
		// Validate the point count in float space: a tiny step_w makes
		// (to-from)/step overflow int, and out-of-range float→int
		// conversion yields an unspecified (on amd64, negative) value
		// that would slip past the bound and panic in make.
		pts := (to-from)/step + 1
		if pts > float64(maxPoints) {
			return nil, badRequest("sweep of %g points exceeds the %d-point limit; raise step_w or narrow the range", math.Floor(pts), maxPoints)
		}
		n := int(pts)
		if n < 1 {
			n = 1
		}
		specs := make([]core.MeasureSpec, 0, n)
		for i := 0; i < n; i++ {
			pt := base
			pt.CapW = from + float64(i)*step
			spec, aerr := pt.toSpec()
			if aerr != nil {
				return nil, aerr
			}
			specs = append(specs, spec)
		}
		return specs, nil
	case "scaling":
		if len(req.NodeCounts) == 0 {
			return nil, badRequest("scaling sweep requires node_counts")
		}
		if len(req.NodeCounts) > maxPoints {
			return nil, badRequest("sweep of %d points exceeds the %d-point limit", len(req.NodeCounts), maxPoints)
		}
		if aerr := checkFinite("cap_w", req.CapW); aerr != nil {
			return nil, aerr
		}
		specs := make([]core.MeasureSpec, 0, len(req.NodeCounts))
		for _, nodes := range req.NodeCounts {
			pt := base
			pt.Nodes = nodes
			pt.CapW = req.CapW
			spec, aerr := pt.toSpec()
			if aerr != nil {
				return nil, aerr
			}
			specs = append(specs, spec)
		}
		return specs, nil
	default:
		return nil, badRequest("unknown sweep kind %q (want \"cap\" or \"scaling\")", req.Kind)
	}
}

// sweepCanonKey hashes the ordered per-point canonical keys: two
// sweeps are identical exactly when they expand to the same points in
// the same order. Each point's key is rendered into one pooled buffer
// and hashed in place, so a large sweep allocates no per-point
// strings.
func sweepCanonKey(kind string, specs []core.MeasureSpec) string {
	h := sha256.New()
	io.WriteString(h, kind)
	bp := getBuf()
	for _, spec := range specs {
		*bp = append((*bp)[:0], '|')
		*bp = appendMeasureCanonKey(*bp, spec)
		h.Write(*bp)
	}
	putBuf(bp)
	return "sweep|" + hex.EncodeToString(h.Sum(nil))
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.m.Requests.Inc()
	if r.Method != http.MethodPost {
		s.httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	buf := getBuf()
	defer putBuf(buf)
	body, err := readBody(r, buf)
	if err != nil {
		s.httpError(w, bodyErrStatus(err), err.Error())
		return
	}
	if e := s.cache.lookup(body); e != nil {
		s.m.Hits.Inc()
		writeEntry(w, e, true)
		s.observeLatency(start)
		return
	}
	var req sweepRequest
	if aerr := decodeStrict(body, &req); aerr != nil {
		s.httpError(w, aerr.status, aerr.msg)
		return
	}
	specs, aerr := req.toSpecs(s.cfg.MaxSweepPoints)
	if aerr != nil {
		s.httpError(w, aerr.status, aerr.msg)
		return
	}

	ctx, cancel := contextWithTimeout(r, s.cfg.SweepTimeout)
	defer cancel()
	weight := int64(len(specs))
	if err := s.limiter.Acquire(ctx, weight); err != nil {
		if errors.Is(err, ErrSaturated) {
			s.shed(w)
			return
		}
		s.httpError(w, http.StatusServiceUnavailable, "canceled while queued: "+err.Error())
		return
	}
	defer s.limiter.Release(weight)
	s.m.Misses.Inc()

	if req.Stream {
		s.streamSweep(ctx, w, req, specs)
		s.observeLatency(start)
		return
	}

	e, coalesced, err := s.cache.do(ctx, sweepCanonKey(req.Kind, specs), func() (int, []byte, error) {
		jps, err := s.batcher.Measure(ctx, specs)
		if err != nil {
			return http.StatusInternalServerError, nil, err
		}
		resp := sweepResponse{
			Kind:     req.Kind,
			Bench:    specs[0].Bench.Name,
			Platform: platform.OrDefault(specs[0].Platform).Name,
			Count:    len(specs),
			Points:   make([]measureResponse, len(specs)),
		}
		for i, jp := range jps {
			resp.Points[i] = buildMeasureResponse(specs[i], jp)
		}
		return encodeJSON(resp)
	})
	if coalesced {
		s.m.Coalesced.Inc()
	}
	if err != nil {
		s.evalError(w, err)
		return
	}
	s.cache.alias(body, e)
	writeEntry(w, e, false)
	s.observeLatency(start)
}

// streamSweep writes the sweep as NDJSON, one point per line, flushed
// as each point's flight completes — a client watching a long sweep
// sees points appear in order instead of waiting for the batch.
// Streamed responses bypass the response cache (the value of a stream
// is its incremental delivery; the memo tiers below still dedupe the
// points themselves).
func (s *Server) streamSweep(ctx context.Context, w http.ResponseWriter, req sweepRequest, specs []core.MeasureSpec) {
	h := w.Header()
	h["Content-Type"] = []string{"application/x-ndjson"}
	flusher, _ := w.(http.Flusher)
	flights := make([]*PointFlight, len(specs))
	for i, spec := range specs {
		flights[i] = s.batcher.Enqueue(spec)
	}
	for i, f := range flights {
		jp, err := f.Wait(ctx)
		if err != nil {
			// Mid-stream failure: the status line is already out, so
			// deliver the error as a terminal NDJSON record.
			line, _ := json.Marshal(struct {
				Error string `json:"error"`
				Point int    `json:"point"`
			}{err.Error(), i})
			w.Write(append(line, '\n'))
			if flusher != nil {
				flusher.Flush()
			}
			s.m.Errors.Inc()
			return
		}
		line, err := json.Marshal(buildMeasureResponse(specs[i], jp))
		if err != nil {
			s.m.Errors.Inc()
			return
		}
		w.Write(append(line, '\n'))
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// ---- /v1/schedule ----

// scheduleRequest configures one facility what-if: a synthetic VASP
// job mix streamed through the power-aware scheduler under a policy.
type scheduleRequest struct {
	Policy       string      `json:"policy"`                // nocap | uniform | profile-aware
	ClusterNodes int         `json:"cluster_nodes"`         // required
	Jobs         int         `json:"jobs"`                  // required
	BudgetKW     float64     `json:"budget_kw,omitempty"`   // 0 = unconstrained
	IdleNodeW    float64     `json:"idle_node_w,omitempty"` // 0 = 460 (Perlmutter idle)
	UniformW     float64     `json:"uniform_w,omitempty"`   // uniform policy cap; 0 = 200
	ArrivalS     float64     `json:"arrival_s,omitempty"`   // mean inter-arrival; 0 = 90
	Seed         uint64      `json:"seed,omitempty"`
	Platform     string      `json:"platform,omitempty"`
	Envelope     []phaseJSON `json:"envelope,omitempty"` // time-varying budget
}

type phaseJSON struct {
	StartS   float64 `json:"start_s"`
	BudgetKW float64 `json:"budget_kw"`
}

type scheduleResponse struct {
	Policy          string  `json:"policy"`
	ClusterNodes    int     `json:"cluster_nodes"`
	Jobs            int     `json:"jobs"`
	Completed       int     `json:"completed"`
	Dropped         int     `json:"dropped"`
	MakespanS       float64 `json:"makespan_s"`
	MeanWaitS       float64 `json:"mean_wait_s"`
	MaxWaitS        float64 `json:"max_wait_s"`
	PeakPowerW      float64 `json:"peak_power_w"`
	EnergyJ         float64 `json:"energy_j"`
	MeanPerfLoss    float64 `json:"mean_perf_loss"`
	ThroughputJobsH float64 `json:"throughput_jobs_h"`
}

const (
	maxClusterNodes  = 100000
	defaultIdleNodeW = 460 // Perlmutter idle node draw, W (pmsched's default)
	defaultUniformW  = 200
	defaultArrivalS  = 90
)

func (req scheduleRequest) validate(maxJobs int) *apiError {
	if req.ClusterNodes <= 0 || req.ClusterNodes > maxClusterNodes {
		return badRequest("cluster_nodes %d out of range [1, %d]", req.ClusterNodes, maxClusterNodes)
	}
	if req.Jobs <= 0 || req.Jobs > maxJobs {
		return badRequest("jobs %d out of range [1, %d]", req.Jobs, maxJobs)
	}
	for _, f := range [...]struct {
		name string
		v    float64
	}{{"budget_kw", req.BudgetKW}, {"idle_node_w", req.IdleNodeW},
		{"uniform_w", req.UniformW}, {"arrival_s", req.ArrivalS}} {
		if aerr := checkFinite(f.name, f.v); aerr != nil {
			return aerr
		}
		if f.v < 0 {
			return badRequest("%s %g must be >= 0", f.name, f.v)
		}
	}
	last := math.Inf(-1)
	for i, ph := range req.Envelope {
		if aerr := checkFinite("envelope.start_s", ph.StartS); aerr != nil {
			return aerr
		}
		if aerr := checkFinite("envelope.budget_kw", ph.BudgetKW); aerr != nil {
			return aerr
		}
		if ph.StartS <= last {
			return badRequest("envelope phases must have strictly increasing start_s (phase %d)", i)
		}
		last = ph.StartS
	}
	return nil
}

// scheduleCanonKey: every field that affects the result, in fixed order.
func scheduleCanonKey(req scheduleRequest, platformName string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "schedule|%s|%s|n%d|j%d|b%g|i%g|u%g|a%g|s%d",
		req.Policy, platformName, req.ClusterNodes, req.Jobs,
		req.BudgetKW, req.IdleNodeW, req.UniformW, req.ArrivalS, req.Seed)
	for _, ph := range req.Envelope {
		fmt.Fprintf(&b, "|e%g:%g", ph.StartS, ph.BudgetKW)
	}
	return b.String()
}

func (s *Server) handleSchedule(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.m.Requests.Inc()
	if r.Method != http.MethodPost {
		s.httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	buf := getBuf()
	defer putBuf(buf)
	body, err := readBody(r, buf)
	if err != nil {
		s.httpError(w, bodyErrStatus(err), err.Error())
		return
	}
	if e := s.cache.lookup(body); e != nil {
		s.m.Hits.Inc()
		writeEntry(w, e, true)
		s.observeLatency(start)
		return
	}
	var req scheduleRequest
	if aerr := decodeStrict(body, &req); aerr != nil {
		s.httpError(w, aerr.status, aerr.msg)
		return
	}
	if aerr := req.validate(s.cfg.MaxScheduleJobs); aerr != nil {
		s.httpError(w, aerr.status, aerr.msg)
		return
	}
	p, aerr := resolvePlatform(req.Platform)
	if aerr != nil {
		s.httpError(w, aerr.status, aerr.msg)
		return
	}
	uniformW := req.UniformW
	if uniformW == 0 {
		uniformW = defaultUniformW
	}
	var policy sched.Policy
	switch req.Policy {
	case "nocap":
		policy = sched.NoCap{NodeTDP: p.Node.TDP}
	case "uniform":
		policy = sched.UniformCap{Watts: uniformW, HostWatts: 350}
	case "profile-aware":
		policy = sched.DefaultProfileAware()
	default:
		s.httpError(w, http.StatusBadRequest,
			fmt.Sprintf("unknown policy %q (want nocap, uniform, or profile-aware)", req.Policy))
		return
	}

	ctx, cancel := contextWithTimeout(r, s.cfg.ScheduleTimeout)
	defer cancel()
	const scheduleWeight = 2 // one sim = many measurements, but they memoize
	if err := s.limiter.Acquire(ctx, scheduleWeight); err != nil {
		if errors.Is(err, ErrSaturated) {
			s.shed(w)
			return
		}
		s.httpError(w, http.StatusServiceUnavailable, "canceled while queued: "+err.Error())
		return
	}
	defer s.limiter.Release(scheduleWeight)
	s.m.Misses.Inc()

	e, coalesced, err := s.cache.do(ctx, scheduleCanonKey(req, p.Name), func() (int, []byte, error) {
		idle := req.IdleNodeW
		if idle == 0 {
			idle = defaultIdleNodeW
		}
		arrival := req.ArrivalS
		if arrival == 0 {
			arrival = defaultArrivalS
		}
		var schedule []sched.BudgetPhase
		for _, ph := range req.Envelope {
			schedule = append(schedule, sched.BudgetPhase{Start: ph.StartS, BudgetW: ph.BudgetKW * 1000})
		}
		cat := sched.NewCatalogOn(p, req.Seed)
		cat.SetMeasure(s.cfg.Measure)
		res, err := sched.SimulateStream(sched.SimConfig{
			ClusterNodes:   req.ClusterNodes,
			BudgetW:        req.BudgetKW * 1000,
			BudgetSchedule: schedule,
			IdleNodeW:      idle,
			Policy:         policy,
			Catalog:        cat,
		}, sched.SyntheticJobStream(req.Jobs, arrival, req.Seed))
		if err != nil {
			return http.StatusInternalServerError, nil, err
		}
		return encodeJSON(scheduleResponse{
			Policy:          res.Policy,
			ClusterNodes:    res.ClusterNodes,
			Jobs:            req.Jobs,
			Completed:       res.Completed,
			Dropped:         res.Dropped,
			MakespanS:       res.Makespan,
			MeanWaitS:       res.MeanWait,
			MaxWaitS:        res.MaxWait,
			PeakPowerW:      res.PeakPowerW,
			EnergyJ:         res.TotalEnergyJ,
			MeanPerfLoss:    res.MeanPerfLoss,
			ThroughputJobsH: res.Throughput,
		})
	})
	if coalesced {
		s.m.Coalesced.Inc()
	}
	if err != nil {
		s.evalError(w, err)
		return
	}
	s.cache.alias(body, e)
	writeEntry(w, e, false)
	s.observeLatency(start)
}

// ---- /v1/omni/* (read-only; uncached — the store mutates live) ----

func (s *Server) omniStore(w http.ResponseWriter) *omni.Store {
	if s.cfg.Store == nil {
		s.httpError(w, http.StatusNotFound, "omni store not enabled on this server")
		return nil
	}
	return s.cfg.Store
}

func (s *Server) handleOmniHosts(w http.ResponseWriter, r *http.Request) {
	s.m.Requests.Inc()
	store := s.omniStore(w)
	if store == nil {
		return
	}
	type hostJSON struct {
		Host    string   `json:"host"`
		Metrics []string `json:"metrics"`
	}
	var out struct {
		Hosts []hostJSON `json:"hosts"`
	}
	for _, h := range store.Hosts() {
		out.Hosts = append(out.Hosts, hostJSON{Host: h, Metrics: store.MetricsOf(h)})
	}
	s.writeJSON(w, out)
}

func (s *Server) handleOmniQuery(w http.ResponseWriter, r *http.Request) {
	s.m.Requests.Inc()
	store := s.omniStore(w)
	if store == nil {
		return
	}
	q := r.URL.Query()
	host, metric := q.Get("host"), q.Get("metric")
	if host == "" || metric == "" {
		s.httpError(w, http.StatusBadRequest, "host and metric query parameters are required")
		return
	}
	t0, t1 := 0.0, math.MaxFloat64
	var err error
	if v := q.Get("t0"); v != "" {
		if t0, err = strconv.ParseFloat(v, 64); err != nil {
			s.httpError(w, http.StatusBadRequest, "bad t0: "+err.Error())
			return
		}
	}
	if v := q.Get("t1"); v != "" {
		if t1, err = strconv.ParseFloat(v, 64); err != nil {
			s.httpError(w, http.StatusBadRequest, "bad t1: "+err.Error())
			return
		}
	}
	series, err := store.Query(host, metric, t0, t1)
	if err != nil {
		s.httpError(w, http.StatusNotFound, err.Error())
		return
	}
	s.writeJSON(w, struct {
		Host   string    `json:"host"`
		Metric string    `json:"metric"`
		Times  []float64 `json:"times"`
		Values []float64 `json:"values"`
	}{host, metric, series.Times, series.Values})
}

func (s *Server) handleOmniJobs(w http.ResponseWriter, r *http.Request) {
	s.m.Requests.Inc()
	store := s.omniStore(w)
	if store == nil {
		return
	}
	id := r.URL.Query().Get("id")
	if id == "" {
		s.writeJSON(w, struct {
			Jobs []string `json:"jobs"`
		}{store.Jobs()})
		return
	}
	job, err := store.Job(id)
	if err != nil {
		s.httpError(w, http.StatusNotFound, err.Error())
		return
	}
	energy, _ := store.JobEnergy(id)
	s.writeJSON(w, struct {
		ID      string   `json:"id"`
		User    string   `json:"user,omitempty"`
		App     string   `json:"app,omitempty"`
		Nodes   []string `json:"nodes"`
		StartS  float64  `json:"start_s"`
		EndS    float64  `json:"end_s"`
		EnergyJ float64  `json:"energy_j"`
	}{job.ID, job.User, job.App, job.Nodes, job.Start, job.End, energy})
}

// ---- /v1/telemetry ----

func (s *Server) handleTelemetry(w http.ResponseWriter, r *http.Request) {
	s.m.Requests.Inc()
	if s.cfg.Hub == nil {
		s.httpError(w, http.StatusNotFound, "telemetry hub not enabled on this server")
		return
	}
	q := r.URL.Query()
	host := q.Get("host")
	if host == "" {
		s.httpError(w, http.StatusBadRequest, "host query parameter is required")
		return
	}
	sub, attached, err := s.telem.sub(host, q.Get("domain"))
	if err != nil {
		s.httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	type sampleJSON struct {
		Domain string  `json:"domain"`
		T      float64 `json:"t"`
		Watts  float64 `json:"watts"`
	}
	out := struct {
		Host     string       `json:"host"`
		Domain   string       `json:"domain,omitempty"`
		Attached bool         `json:"attached"` // true on the ring-creating call
		Dropped  uint64       `json:"dropped"`
		Samples  []sampleJSON `json:"samples"`
	}{Host: host, Domain: q.Get("domain"), Attached: attached, Samples: []sampleJSON{}}
	for {
		smp, ok := sub.TryNext()
		if !ok {
			break
		}
		out.Samples = append(out.Samples, sampleJSON{string(smp.Domain), smp.T, smp.Watts})
	}
	out.Dropped = sub.Dropped()
	s.writeJSON(w, out)
}

// ---- /healthz ----

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	entries, aliases := s.cache.Len()
	s.writeJSON(w, struct {
		Status       string  `json:"status"`
		UptimeS      float64 `json:"uptime_s"`
		InFlight     int64   `json:"in_flight"`
		CacheEntries int     `json:"cache_entries"`
		CacheAliases int     `json:"cache_aliases"`
	}{"ok", time.Since(s.started).Seconds(), s.limiter.InFlight(), entries, aliases})
}

// writeJSON writes v as a 200 JSON response (uncached endpoints).
func (s *Server) writeJSON(w http.ResponseWriter, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		s.httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header()["Content-Type"] = jsonCT
	w.Write(append(b, '\n'))
}
