package serve

import "vasppower/internal/obs"

// Metrics is the serving layer's ledger, registered under "serve." so
// powerd's run manifest records the request mix the same way it
// records cache and scheduler traffic. Every endpoint except /healthz
// (which liveness probes would otherwise dominate) lands in Requests.
// On the cached endpoints each request then scores Hits (served from
// pre-serialized bytes), Misses (admitted into evaluation), Shed
// (refused at admission), or Errors (rejected by validation, or
// failed — a miss whose evaluation fails counts in both Misses and
// Errors). Coalesced counts the misses that joined another caller's
// in-flight evaluation instead of running their own — the
// singleflight dividend under concurrent identical load.
type Metrics struct {
	Requests  *obs.Counter
	Hits      *obs.Counter
	Misses    *obs.Counter
	Coalesced *obs.Counter
	Shed      *obs.Counter
	Errors    *obs.Counter
	Timeouts  *obs.Counter

	// InFlight is the admission semaphore's current weight; QueueDepth
	// counts callers blocked waiting for admission.
	InFlight   *obs.Gauge
	QueueDepth *obs.Gauge

	// LatencyMS is the full request-handling distribution (hits and
	// misses together; the bimodality is the point — µs hits next to
	// ms..s evaluations).
	LatencyMS *obs.Histogram

	// Batch accounting: Flushes counts batch windows executed,
	// BatchPoints the work items fanned out across them, BatchMerged
	// the sweep points that joined a point already pending in the same
	// window (cross-request dedup at point granularity), and
	// BatchGroups the cap-sweep groups — points in one window sharing a
	// spec-minus-cap identity — that rode one incremental sweep context
	// instead of solving from scratch per point.
	BatchFlushes *obs.Counter
	BatchPoints  *obs.Counter
	BatchMerged  *obs.Counter
	BatchGroups  *obs.Counter
}

// latencyBucketsMS spans cached hits (tens of µs) through cold sweep
// evaluations (seconds).
var latencyBucketsMS = []float64{0.01, 0.1, 1, 10, 100, 1000, 10000}

// NewMetrics registers the serving metric set under "serve." in reg.
// A nil registry yields a usable all-no-op Metrics, matching the
// repo-wide convention.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		Requests:     reg.Counter("serve.requests"),
		Hits:         reg.Counter("serve.hits"),
		Misses:       reg.Counter("serve.misses"),
		Coalesced:    reg.Counter("serve.coalesced"),
		Shed:         reg.Counter("serve.shed"),
		Errors:       reg.Counter("serve.errors"),
		Timeouts:     reg.Counter("serve.timeouts"),
		InFlight:     reg.Gauge("serve.inflight"),
		QueueDepth:   reg.Gauge("serve.queue_depth"),
		LatencyMS:    reg.Histogram("serve.latency_ms", latencyBucketsMS),
		BatchFlushes: reg.Counter("serve.batch_flushes"),
		BatchPoints:  reg.Counter("serve.batch_points"),
		BatchMerged:  reg.Counter("serve.batch_merged"),
		BatchGroups:  reg.Counter("serve.batch_groups"),
	}
}
