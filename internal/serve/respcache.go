package serve

import (
	"context"
	"sync"
)

// respCache is the serving layer's third cache tier: canonical,
// pre-serialized JSON response bytes, keyed two ways.
//
// The memo tiers below it make a warm MeasureSpec ~µs, but a naive
// handler still pays JSON decode + evaluate-key + JSON encode on every
// request. This cache removes all three from the warm path:
//
//   - the canonical index maps a semantic key (experiments.SpecKey for
//     measures; analogous strings for sweeps and schedules) to one
//     completed response entry, with memo-style singleflight so
//     concurrent identical misses produce one evaluation and one
//     encoding;
//   - the alias index maps verbatim request-body bytes to the same
//     entries, so a repeated request is served without parsing its
//     body at all. Lookup is alloc-free: FNV over the body picks the
//     shard and Go's map[string] lookup on a []byte key compiles to a
//     no-copy access.
//
// Two bodies that differ only in JSON field order (or explicit-vs-
// default fields) get separate aliases but share one entry through the
// canonical index, so the expensive work still happens once.
//
// Entries are bounded per shard; overflowing a shard resets it (the
// tiers below refill a dropped entry in ~µs, so eviction precision is
// not worth per-hit bookkeeping on this path).
type respCache struct {
	m           *Metrics
	maxPerShard int
	shards      [respShardCount]respShard
}

// respShardCount bounds lock contention on the warm path; power of
// two well above any plausible core count.
const respShardCount = 64

type respShard struct {
	mu         sync.Mutex
	entries    map[string]*respEntry // canonical key → entry (may be in flight)
	aliases    map[string]*respEntry // verbatim body → completed entry
	aliasBytes int                   // total key bytes resident in aliases
}

// Alias keys copy verbatim request bodies, and whitespace/field-order
// variants of one valid spec give a client unlimited distinct bodies
// that all alias successfully — so aliases must be bounded in bytes,
// not just count. Bodies over maxAliasBody (far above any legitimate
// request; those still hit the canonical index after a parse) are not
// aliased at all, and a shard resets once its resident key bytes reach
// maxAliasShardBytes (≈ 64 MiB across 64 shards).
const (
	maxAliasBody       = 4 << 10
	maxAliasShardBytes = 1 << 20
)

// respEntry is one response's slot. done is closed exactly once after
// status/body/err are set; readers touch them only after observing the
// close. Completed successful entries are immutable thereafter — the
// byte slice is shared by every writer that serves it.
type respEntry struct {
	done   chan struct{}
	status int
	body   []byte
	err    error
}

func newRespCache(m *Metrics, maxEntries int) *respCache {
	c := &respCache{m: m, maxPerShard: maxEntries/respShardCount + 1}
	for i := range c.shards {
		c.shards[i].entries = make(map[string]*respEntry)
		c.shards[i].aliases = make(map[string]*respEntry)
	}
	return c
}

// fnv32a is FNV-1a over a byte slice, inlined so the hot path never
// touches hash.Hash (whose constructor escapes to the heap).
func fnv32a(b []byte) uint32 {
	h := uint32(2166136261)
	for _, c := range b {
		h ^= uint32(c)
		h *= 16777619
	}
	return h
}

func fnv32aString(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// lookup returns the completed response aliased to the verbatim
// request body, or nil. This is the entire warm path: zero
// allocations, one shard lock.
func (c *respCache) lookup(body []byte) *respEntry {
	s := &c.shards[fnv32a(body)%respShardCount]
	s.mu.Lock()
	e := s.aliases[string(body)] // no-copy map access on []byte key
	s.mu.Unlock()
	return e
}

// alias registers body as a verbatim-bytes alias of a completed
// successful entry, so the next identical body skips parsing. The body
// is copied (the caller's buffer is pooled and will be reused).
func (c *respCache) alias(body []byte, e *respEntry) {
	if e == nil || e.err != nil || e.status != 200 || len(body) > maxAliasBody {
		return
	}
	s := &c.shards[fnv32a(body)%respShardCount]
	s.mu.Lock()
	if _, ok := s.aliases[string(body)]; ok { // no-copy probe
		s.mu.Unlock()
		return
	}
	if len(s.aliases) >= c.maxPerShard || s.aliasBytes+len(body) > maxAliasShardBytes {
		s.aliases = make(map[string]*respEntry)
		s.aliasBytes = 0
	}
	s.aliases[string(body)] = e // copies: aliases must own their keys
	s.aliasBytes += len(body)
	s.mu.Unlock()
}

// do returns the entry for canonKey, running fill at most once across
// concurrent callers: the first caller in computes (and its entry is
// cached only on success, like the memo tiers — errors are delivered
// to the flight's waiters, then retried by the next caller), later
// callers block on the in-flight entry and are reported coalesced.
// ctx bounds only the waiting of coalesced callers; the computing
// caller runs fill to completion so waiters always get a result.
func (c *respCache) do(ctx context.Context, canonKey string, fill func() (status int, body []byte, err error)) (e *respEntry, coalesced bool, err error) {
	s := &c.shards[fnv32aString(canonKey)%respShardCount]
	s.mu.Lock()
	if e, ok := s.entries[canonKey]; ok {
		s.mu.Unlock()
		select {
		case <-e.done:
			return e, false, e.err
		default:
		}
		select {
		case <-e.done:
			return e, true, e.err
		case <-ctx.Done():
			return nil, true, ctx.Err()
		}
	}
	e = &respEntry{done: make(chan struct{})}
	if len(s.entries) >= c.maxPerShard {
		s.entries = make(map[string]*respEntry)
	}
	s.entries[canonKey] = e
	s.mu.Unlock()

	e.status, e.body, e.err = fill()
	if e.err != nil || e.status != 200 {
		s.mu.Lock()
		// Only evict our own entry: a concurrent reset may have
		// replaced the map, or a later flight may occupy the slot.
		if cur, ok := s.entries[canonKey]; ok && cur == e {
			delete(s.entries, canonKey)
		}
		s.mu.Unlock()
	}
	close(e.done)
	return e, false, e.err
}

// Len returns the number of completed-or-in-flight canonical entries
// plus registered aliases, across all shards (monitoring only).
func (c *respCache) Len() (entries, aliases int) {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		entries += len(s.entries)
		aliases += len(s.aliases)
		s.mu.Unlock()
	}
	return entries, aliases
}
