// Package serve is the long-running HTTP front end of the measurement
// engine: the routing → admission → coalesce → batch → compute → cache
// pipeline behind cmd/powerd.
//
// The design mirrors an inference-serving stack. Requests route to
// JSON endpoints (/v1/measure, /v1/sweep, /v1/schedule, /v1/omni/...,
// /v1/telemetry, /healthz); an admission limiter (weighted semaphore,
// bounded queue, 429 + Retry-After on saturation) protects evaluation
// capacity; identical concurrent requests coalesce onto one
// evaluation; sweeps decompose into per-point work items micro-batched
// across requests; results serialize once into a response cache of
// canonical JSON bytes, after which the warm path performs zero
// parsing, zero encoding, and zero allocation per request.
//
// Invariants the pipeline maintains:
//
//   - a warm hit bypasses admission entirely (it evaluates nothing);
//   - for one canonical request identity, at most one evaluation and
//     one JSON encoding are in flight at any moment;
//   - responses are byte-deterministic: the same spec always yields
//     the same bytes, which is what makes caching them sound and lets
//     CI diff a served response against the CLI's -oneshot output;
//   - error responses are never cached;
//   - telemetry (serve.* metrics) never influences response bytes.
package serve

import (
	"bytes"
	"net/http"
	"time"

	"vasppower/internal/core"
	"vasppower/internal/experiments"
	"vasppower/internal/obs"
	"vasppower/internal/omni"
	"vasppower/internal/telemetry"
)

// Config assembles a Server. The zero value works: every knob has a
// serving-grade default, evaluation runs through the process-wide
// two-tier measurement cache, and metrics are no-ops until a registry
// is supplied.
type Config struct {
	// Measure evaluates one spec; nil means
	// experiments.CachedMeasureSpec (the shared two-tier cache). Tests
	// inject counters and gates here.
	Measure func(core.MeasureSpec) (core.JobProfile, error)
	// MeasureGroup evaluates one spec at several cap points through a
	// shared incremental sweep context. It defaults to
	// experiments.CachedMeasureGroup only when Measure is also
	// defaulted; a test injecting Measure keeps the per-point path
	// unless it supplies its own group function.
	MeasureGroup func(core.MeasureSpec, []float64) ([]core.JobProfile, error)
	// Workers bounds each batch window's fan-out pool (0 = one per
	// CPU).
	Workers int
	// MaxInFlight is the admission capacity in weight units (a measure
	// or schedule request weighs 1–2; a sweep weighs its point count).
	// 0 = DefaultMaxInFlight.
	MaxInFlight int
	// MaxQueue bounds callers waiting for admission; beyond it
	// requests are shed with 429. 0 = DefaultMaxQueue. Use -1 for an
	// actually-zero queue (shed the moment capacity is full).
	MaxQueue int
	// Timeout bounds one measure evaluation; SweepTimeout and
	// ScheduleTimeout bound their endpoints. 0 = defaults.
	Timeout         time.Duration
	SweepTimeout    time.Duration
	ScheduleTimeout time.Duration
	// MaxSweepPoints rejects oversized sweeps up front (0 =
	// DefaultMaxSweepPoints).
	MaxSweepPoints int
	// MaxScheduleJobs bounds one what-if run's synthetic mix (0 =
	// DefaultMaxScheduleJobs).
	MaxScheduleJobs int
	// BatchWindow is the sweep micro-batch window (0 =
	// DefaultBatchWindow; negative = flush every submission
	// immediately, which unit tests use).
	BatchWindow time.Duration
	// CacheEntries bounds the response cache (canonical entries and
	// body aliases each; 0 = DefaultCacheEntries).
	CacheEntries int
	// Reg receives the serve.* metrics (nil = no-op metrics).
	Reg *obs.Registry
	// Store, when set, backs the read-only /v1/omni endpoints.
	Store *omni.Store
	// Hub, when set, backs /v1/telemetry with lazily attached
	// host-filtered subscriptions.
	Hub *telemetry.Hub
	// TelemetryRing is each per-host telemetry ring's capacity (0 =
	// DefaultTelemetryRing).
	TelemetryRing int
}

// Serving-grade defaults; see Config.
const (
	DefaultMaxInFlight     = 64
	DefaultMaxQueue        = 256
	DefaultTimeout         = 30 * time.Second
	DefaultSweepTimeout    = 5 * time.Minute
	DefaultScheduleTimeout = 5 * time.Minute
	DefaultMaxSweepPoints  = 4096
	DefaultMaxScheduleJobs = 100000
	DefaultBatchWindow     = 2 * time.Millisecond
	DefaultCacheEntries    = 1 << 16
	DefaultTelemetryRing   = 4096
)

func (c Config) withDefaults() Config {
	if c.Measure == nil {
		c.Measure = experiments.CachedMeasureSpec
		if c.MeasureGroup == nil {
			c.MeasureGroup = experiments.CachedMeasureGroup
		}
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = DefaultMaxInFlight
	}
	switch {
	case c.MaxQueue == 0:
		c.MaxQueue = DefaultMaxQueue
	case c.MaxQueue < 0:
		c.MaxQueue = 0
	}
	if c.Timeout <= 0 {
		c.Timeout = DefaultTimeout
	}
	if c.SweepTimeout <= 0 {
		c.SweepTimeout = DefaultSweepTimeout
	}
	if c.ScheduleTimeout <= 0 {
		c.ScheduleTimeout = DefaultScheduleTimeout
	}
	if c.MaxSweepPoints <= 0 {
		c.MaxSweepPoints = DefaultMaxSweepPoints
	}
	if c.MaxScheduleJobs <= 0 {
		c.MaxScheduleJobs = DefaultMaxScheduleJobs
	}
	if c.BatchWindow == 0 {
		c.BatchWindow = DefaultBatchWindow
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = DefaultCacheEntries
	}
	if c.TelemetryRing <= 0 {
		c.TelemetryRing = DefaultTelemetryRing
	}
	return c
}

// Server holds the pipeline's state. Build with New, mount with Mount
// (or serve its Handler directly), and drain by shutting down the
// enclosing http.Server — the Server itself keeps no listener.
type Server struct {
	cfg     Config
	m       *Metrics
	cache   *respCache
	limiter *Limiter
	batcher *Batcher
	mux     *http.ServeMux
	started time.Time

	telem telemetryRings
}

// New assembles the pipeline.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	m := NewMetrics(cfg.Reg)
	s := &Server{
		cfg:     cfg,
		m:       m,
		cache:   newRespCache(m, cfg.CacheEntries),
		limiter: NewLimiter(int64(cfg.MaxInFlight), cfg.MaxQueue, m),
		mux:     http.NewServeMux(),
		started: time.Now(),
	}
	window := cfg.BatchWindow
	if window < 0 {
		window = 0
	}
	s.batcher = NewBatcher(cfg.Measure, cfg.MeasureGroup, measureCanonKey, window, cfg.Workers, m)
	s.telem.init(cfg.Hub, cfg.TelemetryRing)

	s.mux.HandleFunc("/v1/measure", s.handleMeasure)
	s.mux.HandleFunc("/v1/sweep", s.handleSweep)
	s.mux.HandleFunc("/v1/schedule", s.handleSchedule)
	s.mux.HandleFunc("/v1/omni/hosts", s.handleOmniHosts)
	s.mux.HandleFunc("/v1/omni/query", s.handleOmniQuery)
	s.mux.HandleFunc("/v1/omni/jobs", s.handleOmniJobs)
	s.mux.HandleFunc("/v1/telemetry", s.handleTelemetry)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	return s
}

// appendMeasureCanonKey appends measureCanonKey(spec) to dst without
// allocating — the form the sweep hashing path and the batcher's
// group keying use.
func appendMeasureCanonKey(dst []byte, spec core.MeasureSpec) []byte {
	dst = append(dst, "measure|"...)
	return experiments.AppendSpecKey(dst, spec)
}

// measureCanonKey is the canonical identity shared with the memo
// tiers, prefixed per endpoint so a sweep key can never collide with
// a measure key. The key is built in a pooled buffer, so the only
// allocation is the returned string itself.
func measureCanonKey(spec core.MeasureSpec) string {
	bp := getBuf()
	*bp = appendMeasureCanonKey((*bp)[:0], spec)
	key := string(*bp)
	putBuf(bp)
	return key
}

// Handler returns the endpoint mux (the /v1/* tree plus /healthz).
func (s *Server) Handler() http.Handler { return s.mux }

// Mount registers every endpoint pattern on an external mux-like
// surface — obs.DebugServer in powerd, so the API, pprof,
// /debug/vars, and /metrics share one listener.
func (s *Server) Mount(h interface {
	Handle(pattern string, handler http.Handler)
}) {
	for _, p := range []string{
		"/v1/measure", "/v1/sweep", "/v1/schedule",
		"/v1/omni/hosts", "/v1/omni/query", "/v1/omni/jobs",
		"/v1/telemetry", "/healthz",
	} {
		h.Handle(p, s.mux)
	}
}

// Metrics returns the server's metric set (for tests and monitoring).
func (s *Server) Metrics() *Metrics { return s.m }

// OneShot dispatches one request through the full pipeline without a
// listener and returns the status code and response body. It is the
// CLI's -oneshot mode: because responses are byte-deterministic, CI
// can diff this output against the same request served over HTTP.
func (s *Server) OneShot(method, target string, body []byte) (int, []byte) {
	req, err := http.NewRequest(method, target, bytes.NewReader(body))
	if err != nil {
		return http.StatusBadRequest, []byte(err.Error())
	}
	w := &memoryResponseWriter{h: make(http.Header, 4)}
	s.mux.ServeHTTP(w, req)
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.status, w.body.Bytes()
}

// memoryResponseWriter captures a response in memory for OneShot.
type memoryResponseWriter struct {
	h      http.Header
	status int
	body   bytes.Buffer
}

func (w *memoryResponseWriter) Header() http.Header         { return w.h }
func (w *memoryResponseWriter) WriteHeader(code int)        { w.status = code }
func (w *memoryResponseWriter) Write(p []byte) (int, error) { return w.body.Write(p) }
