package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io/fs"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"vasppower/internal/core"
	"vasppower/internal/experiments"
	"vasppower/internal/hw/node"
	"vasppower/internal/obs"
	"vasppower/internal/omni"
	"vasppower/internal/stats"
	"vasppower/internal/telemetry"
	"vasppower/internal/timeseries"
	"vasppower/internal/workloads"
)

// fakeMeasure is a deterministic stand-in for the measurement engine:
// it counts evaluations and optionally blocks each one on a gate so
// tests can hold requests in flight.
type fakeMeasure struct {
	evals atomic.Int64
	gate  chan struct{} // nil = never block
}

func (f *fakeMeasure) fn(spec core.MeasureSpec) (core.JobProfile, error) {
	f.evals.Add(1)
	if f.gate != nil {
		<-f.gate
	}
	mean := 1000.0 + spec.CapW + 10*float64(spec.Nodes)
	prof := core.Profile{Summary: stats.Summary{Mean: mean, Max: mean + 200, StdDev: 50}}
	return core.JobProfile{
		Runtime:   100,
		EnergyJ:   mean * 100,
		NodeTotal: prof,
		CPU:       core.Profile{Summary: stats.Summary{Mean: 200}},
		Mem:       core.Profile{Summary: stats.Summary{Mean: 100}},
		GPUSum:    core.Profile{Summary: stats.Summary{Mean: mean / 2}},
	}, nil
}

func newTestServer(t *testing.T, mutate func(*Config)) (*Server, *fakeMeasure) {
	t.Helper()
	f := &fakeMeasure{}
	cfg := Config{
		Measure:     f.fn,
		Reg:         obs.NewRegistry(),
		BatchWindow: -1, // flush immediately: deterministic tests
	}
	if mutate != nil {
		mutate(&cfg)
	}
	if cfg.Measure == nil {
		cfg.Measure = f.fn
	}
	return New(cfg), f
}

func post(t *testing.T, s *Server, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	return w
}

func get(t *testing.T, s *Server, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	return w
}

const measureBody = `{"bench":"Si256_hse","nodes":1,"cap_w":250}`

func TestMeasureWarmHit(t *testing.T) {
	s, f := newTestServer(t, nil)
	first := post(t, s, "/v1/measure", measureBody)
	if first.Code != 200 {
		t.Fatalf("first request: status %d body %s", first.Code, first.Body)
	}
	if got := first.Header().Get("X-Cache"); got != "miss" {
		t.Fatalf("first request X-Cache = %q, want miss", got)
	}
	second := post(t, s, "/v1/measure", measureBody)
	if second.Code != 200 {
		t.Fatalf("second request: status %d", second.Code)
	}
	if got := second.Header().Get("X-Cache"); got != "hit" {
		t.Fatalf("second request X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(first.Body.Bytes(), second.Body.Bytes()) {
		t.Fatalf("hit bytes differ from miss bytes:\n%s\n%s", first.Body, second.Body)
	}
	if n := f.evals.Load(); n != 1 {
		t.Fatalf("evaluations = %d, want 1", n)
	}
	if v := s.Metrics().Hits.Value(); v != 1 {
		t.Fatalf("serve.hits = %d, want 1", v)
	}
	var resp map[string]any
	if err := json.Unmarshal(second.Body.Bytes(), &resp); err != nil {
		t.Fatalf("response not JSON: %v", err)
	}
	if resp["platform"] == "" || resp["runtime_s"].(float64) != 100 {
		t.Fatalf("unexpected response: %v", resp)
	}
}

// TestSemanticDedup: bodies that differ in field order or in spelling
// out defaults are distinct byte aliases but one canonical identity —
// one evaluation, identical response bytes.
func TestSemanticDedup(t *testing.T) {
	s, f := newTestServer(t, nil)
	a := post(t, s, "/v1/measure", `{"bench":"Si256_hse","cap_w":250,"nodes":1}`)
	b := post(t, s, "/v1/measure", `{"nodes":1,"cap_w":250,"bench":"Si256_hse"}`)
	c := post(t, s, "/v1/measure", `{"bench":"Si256_hse","cap_w":250,"nodes":1,"repeats":1}`)
	for i, w := range []*httptest.ResponseRecorder{a, b, c} {
		if w.Code != 200 {
			t.Fatalf("request %d: status %d body %s", i, w.Code, w.Body)
		}
	}
	if !bytes.Equal(a.Body.Bytes(), b.Body.Bytes()) || !bytes.Equal(a.Body.Bytes(), c.Body.Bytes()) {
		t.Fatalf("semantically identical requests returned different bytes")
	}
	if n := f.evals.Load(); n != 1 {
		t.Fatalf("evaluations = %d, want 1 (canonical dedup)", n)
	}
}

// TestAliasByteBound: alias keys copy verbatim request bodies, so a
// client minting unlimited whitespace variants of one spec must not
// pin unbounded memory. Bodies over maxAliasBody are never aliased
// (they still dedupe through the canonical index), and a shard's
// resident alias bytes never exceed maxAliasShardBytes.
func TestAliasByteBound(t *testing.T) {
	s, f := newTestServer(t, nil)
	body := `{"bench":"Si256_hse"}` + strings.Repeat(" ", maxAliasBody)
	for i := 0; i < 2; i++ {
		if w := post(t, s, "/v1/measure", body); w.Code != 200 {
			t.Fatalf("request %d: status %d body %s", i, w.Code, w.Body)
		}
	}
	if _, aliases := s.cache.Len(); aliases != 0 {
		t.Fatalf("oversized body registered %d aliases, want 0", aliases)
	}
	if n := f.evals.Load(); n != 1 {
		t.Fatalf("evaluations = %d, want 1 (canonical dedup without alias)", n)
	}

	c := newRespCache(nil, 1<<20) // count bound far above the byte bound
	e := &respEntry{done: make(chan struct{}), status: 200, body: []byte("{}")}
	close(e.done)
	pad := strings.Repeat(" ", 4000)
	for i, inserted := 0, 0; inserted < 300; i++ {
		vb := []byte(fmt.Sprintf(`{"i":%d}`, i) + pad)
		if fnv32a(vb)%respShardCount != 0 {
			continue // target one shard so the byte bound actually trips
		}
		c.alias(vb, e)
		inserted++
		if b := c.shards[0].aliasBytes; b > maxAliasShardBytes {
			t.Fatalf("shard alias bytes %d exceed bound %d", b, maxAliasShardBytes)
		}
	}
}

// TestCoalescingBurst holds the single evaluation open while N
// identical requests pile in: exactly one evaluation runs, everyone
// gets the same bytes, and the followers count as coalesced.
func TestCoalescingBurst(t *testing.T) {
	const n = 32
	f := &fakeMeasure{gate: make(chan struct{})}
	s, _ := newTestServer(t, func(c *Config) { c.Measure = f.fn })

	var wg sync.WaitGroup
	codes := make([]int, n)
	bodies := make([][]byte, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := post(t, s, "/v1/measure", measureBody)
			codes[i] = w.Code
			bodies[i] = w.Body.Bytes()
		}(i)
	}
	// Wait for the one evaluation to be in flight, then let it finish.
	deadline := time.Now().Add(5 * time.Second)
	for f.evals.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no evaluation started")
		}
		time.Sleep(time.Millisecond)
	}
	close(f.gate)
	wg.Wait()

	for i := 0; i < n; i++ {
		if codes[i] != 200 {
			t.Fatalf("request %d: status %d", i, codes[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("request %d returned different bytes", i)
		}
	}
	if got := f.evals.Load(); got != 1 {
		t.Fatalf("evaluations = %d, want exactly 1", got)
	}
	m := s.Metrics()
	if m.Coalesced.Value() == 0 {
		t.Fatalf("serve.coalesced = 0, want > 0 (followers must coalesce)")
	}
	if m.Coalesced.Value()+m.Hits.Value()+1 != n {
		t.Fatalf("coalesced(%d) + hits(%d) + 1 leader != %d requests",
			m.Coalesced.Value(), m.Hits.Value(), n)
	}
}

func TestErrorPaths(t *testing.T) {
	s, f := newTestServer(t, nil)
	cases := []struct {
		name string
		body string
		want int
		frag string // substring expected in the error message
	}{
		{"malformed JSON", `{"bench":`, 400, "malformed"},
		{"unknown field", `{"bench":"Si256_hse","cap":250}`, 400, "unknown field"},
		{"trailing garbage", `{"bench":"Si256_hse"} trailing`, 400, "trailing"},
		{"unknown bench", `{"bench":"NoSuchBench"}`, 400, "unknown benchmark"},
		{"unknown platform", `{"bench":"Si256_hse","platform":"cray-1"}`, 400, "unknown platform"},
		{"nodes out of range", `{"bench":"Si256_hse","nodes":100000}`, 400, "nodes"},
		{"negative repeats", `{"bench":"Si256_hse","repeats":-1}`, 400, "repeats"},
		{"negative cap", `{"bench":"Si256_hse","cap_w":-5}`, 400, "cap_w"},
		{"infinite cap (1e999)", `{"bench":"Si256_hse","cap_w":1e999}`, 400, "malformed"},
		{"entropy out of range", `{"bench":"Si256_hse","entropy":1.5}`, 400, "entropy"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := post(t, s, "/v1/measure", tc.body)
			if w.Code != tc.want {
				t.Fatalf("status %d, want %d (body %s)", w.Code, tc.want, w.Body)
			}
			if !strings.Contains(w.Body.String(), tc.frag) {
				t.Fatalf("error %q does not mention %q", w.Body, tc.frag)
			}
		})
	}
	if w := get(t, s, "/v1/measure"); w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/measure: status %d, want 405", w.Code)
	}
	// Oversized body is rejected before any parsing, with 413 so a
	// well-behaved client can tell payload size from malformed JSON.
	big := `{"bench":"` + strings.Repeat("x", maxBodyBytes) + `"}`
	if w := post(t, s, "/v1/measure", big); w.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 413", w.Code)
	}
	if n := f.evals.Load(); n != 0 {
		t.Fatalf("invalid requests triggered %d evaluations", n)
	}
	// Errors are never cached: a previously failing body succeeds once valid.
	if e := s.Metrics().Errors.Value(); e == 0 {
		t.Fatal("serve.errors not counted")
	}
}

// TestCheckFinite exercises the NaN/Inf guard directly: JSON cannot
// carry the literals, but the validator is spec-level and future
// non-JSON callers hit it.
func TestCheckFinite(t *testing.T) {
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		req := measureRequest{Bench: "Si256_hse", CapW: v}
		if _, aerr := req.toSpec(); aerr == nil {
			t.Fatalf("cap_w=%v accepted", v)
		}
		req = measureRequest{Bench: "Si256_hse", Entropy: v}
		if _, aerr := req.toSpec(); aerr == nil {
			t.Fatalf("entropy=%v accepted", v)
		}
	}
}

func TestSweepCap(t *testing.T) {
	s, f := newTestServer(t, nil)
	body := `{"kind":"cap","bench":"Si256_hse","from_w":100,"to_w":200,"step_w":50}`
	w := post(t, s, "/v1/sweep", body)
	if w.Code != 200 {
		t.Fatalf("status %d body %s", w.Code, w.Body)
	}
	var resp sweepResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Count != 3 || len(resp.Points) != 3 {
		t.Fatalf("count %d, points %d, want 3", resp.Count, len(resp.Points))
	}
	for i, want := range []float64{100, 150, 200} {
		if resp.Points[i].CapW != want {
			t.Fatalf("point %d cap %g, want %g", i, resp.Points[i].CapW, want)
		}
	}
	if n := f.evals.Load(); n != 3 {
		t.Fatalf("evaluations = %d, want 3", n)
	}
	// Second identical sweep: byte-cache hit, no new evaluations.
	w2 := post(t, s, "/v1/sweep", body)
	if w2.Header().Get("X-Cache") != "hit" || f.evals.Load() != 3 {
		t.Fatalf("repeat sweep not served from cache (evals %d)", f.evals.Load())
	}
	if !bytes.Equal(w.Body.Bytes(), w2.Body.Bytes()) {
		t.Fatal("cached sweep bytes differ")
	}
}

func TestSweepPointsSharedWithMeasure(t *testing.T) {
	// A sweep and a point measure share canonical identities through
	// the batcher's key function — but distinct endpoints still
	// evaluate independently unless the memo tiers join them. Here both
	// go through the same fake (no memo), so the assertion is just that
	// the sweep's per-point spec equals the measure's canonical spec.
	s, _ := newTestServer(t, nil)
	w := post(t, s, "/v1/sweep", `{"kind":"scaling","bench":"Si256_hse","node_counts":[1,2,4]}`)
	if w.Code != 200 {
		t.Fatalf("status %d body %s", w.Code, w.Body)
	}
	var resp sweepResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	for i, want := range []int{1, 2, 4} {
		if resp.Points[i].Nodes != want {
			t.Fatalf("point %d nodes %d, want %d", i, resp.Points[i].Nodes, want)
		}
	}
}

func TestSweepErrors(t *testing.T) {
	s, _ := newTestServer(t, func(c *Config) { c.MaxSweepPoints = 16 })
	cases := []struct {
		name, body, frag string
	}{
		{"oversized", `{"kind":"cap","bench":"Si256_hse","from_w":1,"to_w":1000,"step_w":1}`, "exceeds the 16-point limit"},
		// A denormal step makes the float point count overflow int;
		// it must be rejected in float space, not panic in make.
		{"tiny step", `{"kind":"cap","bench":"Si256_hse","from_w":1,"to_w":400,"step_w":1e-300}`, "exceeds the 16-point limit"},
		{"unknown kind", `{"kind":"zigzag","bench":"Si256_hse"}`, "unknown sweep kind"},
		{"scaling without counts", `{"kind":"scaling","bench":"Si256_hse"}`, "node_counts"},
		{"inverted range", `{"kind":"cap","bench":"Si256_hse","from_w":300,"to_w":100}`, "exceeds to_w"},
		{"bad bench", `{"kind":"cap","bench":"nope","from_w":100,"to_w":100}`, "unknown benchmark"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := post(t, s, "/v1/sweep", tc.body)
			if w.Code != 400 {
				t.Fatalf("status %d, want 400 (body %s)", w.Code, w.Body)
			}
			if !strings.Contains(w.Body.String(), tc.frag) {
				t.Fatalf("error %q missing %q", w.Body, tc.frag)
			}
		})
	}
}

func TestSweepStream(t *testing.T) {
	s, _ := newTestServer(t, nil)
	w := post(t, s, "/v1/sweep", `{"kind":"cap","bench":"Si256_hse","from_w":100,"to_w":200,"step_w":50,"stream":true}`)
	if w.Code != 200 {
		t.Fatalf("status %d body %s", w.Code, w.Body)
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type %q, want NDJSON", ct)
	}
	lines := strings.Split(strings.TrimSpace(w.Body.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("%d NDJSON lines, want 3", len(lines))
	}
	for i, line := range lines {
		var pt measureResponse
		if err := json.Unmarshal([]byte(line), &pt); err != nil {
			t.Fatalf("line %d not JSON: %v", i, err)
		}
		if want := 100 + 50*float64(i); pt.CapW != want {
			t.Fatalf("line %d cap %g, want %g", i, pt.CapW, want)
		}
	}
}

func TestScheduleEndpoint(t *testing.T) {
	s, f := newTestServer(t, nil)
	body := `{"policy":"uniform","cluster_nodes":8,"jobs":6,"budget_kw":10,"seed":7}`
	w := post(t, s, "/v1/schedule", body)
	if w.Code != 200 {
		t.Fatalf("status %d body %s", w.Code, w.Body)
	}
	var resp scheduleResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Completed+resp.Dropped != 6 {
		t.Fatalf("completed %d + dropped %d != 6 jobs", resp.Completed, resp.Dropped)
	}
	if resp.MakespanS <= 0 {
		t.Fatalf("makespan %g, want > 0", resp.MakespanS)
	}
	evalsAfterFirst := f.evals.Load()
	// Identical what-if: served from bytes, no new simulation.
	w2 := post(t, s, "/v1/schedule", body)
	if w2.Header().Get("X-Cache") != "hit" {
		t.Fatalf("repeat schedule X-Cache %q, want hit", w2.Header().Get("X-Cache"))
	}
	if f.evals.Load() != evalsAfterFirst {
		t.Fatal("repeat schedule re-measured")
	}
	if !bytes.Equal(w.Body.Bytes(), w2.Body.Bytes()) {
		t.Fatal("cached schedule bytes differ")
	}
}

func TestScheduleErrors(t *testing.T) {
	s, _ := newTestServer(t, func(c *Config) { c.MaxScheduleJobs = 100 })
	cases := []struct {
		name, body, frag string
	}{
		{"unknown policy", `{"policy":"anarchic","cluster_nodes":4,"jobs":2}`, "unknown policy"},
		{"no jobs", `{"policy":"nocap","cluster_nodes":4,"jobs":0}`, "jobs"},
		{"no nodes", `{"policy":"nocap","cluster_nodes":0,"jobs":2}`, "cluster_nodes"},
		{"too many jobs", `{"policy":"nocap","cluster_nodes":4,"jobs":101}`, "jobs"},
		{"unsorted envelope", `{"policy":"nocap","cluster_nodes":4,"jobs":2,"envelope":[{"start_s":10,"budget_kw":5},{"start_s":5,"budget_kw":4}]}`, "increasing"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := post(t, s, "/v1/schedule", tc.body)
			if w.Code != 400 {
				t.Fatalf("status %d, want 400 (body %s)", w.Code, w.Body)
			}
			if !strings.Contains(w.Body.String(), tc.frag) {
				t.Fatalf("error %q missing %q", w.Body, tc.frag)
			}
		})
	}
}

// TestAdmissionShed: with capacity 1 and a zero queue, a second
// distinct request is shed with 429 + Retry-After while the first
// evaluation is in flight.
func TestAdmissionShed(t *testing.T) {
	f := &fakeMeasure{gate: make(chan struct{})}
	s, _ := newTestServer(t, func(c *Config) {
		c.Measure = f.fn
		c.MaxInFlight = 1
		c.MaxQueue = -1 // shed immediately at capacity
	})
	done := make(chan *httptest.ResponseRecorder)
	go func() { done <- post(t, s, "/v1/measure", measureBody) }()
	deadline := time.Now().Add(5 * time.Second)
	for f.evals.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first evaluation never started")
		}
		time.Sleep(time.Millisecond)
	}

	shed := post(t, s, "/v1/measure", `{"bench":"B.hR105_hse"}`)
	if shed.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", shed.Code)
	}
	if shed.Header().Get("Retry-After") != "1" {
		t.Fatalf("Retry-After %q, want 1", shed.Header().Get("Retry-After"))
	}
	if s.Metrics().Shed.Value() != 1 {
		t.Fatalf("serve.shed = %d, want 1", s.Metrics().Shed.Value())
	}

	close(f.gate)
	first := <-done
	if first.Code != 200 {
		t.Fatalf("first request: status %d", first.Code)
	}

	// Warm hits bypass admission entirely: saturate again, the cached
	// body still serves.
	f.gate = make(chan struct{})
	go func() { done <- post(t, s, "/v1/measure", `{"bench":"PdO4"}`) }()
	deadline = time.Now().Add(5 * time.Second)
	for f.evals.Load() < 2 { // PdO4 is the 2nd evaluation (the shed request never ran)
		if time.Now().After(deadline) {
			t.Fatal("saturating evaluation never started")
		}
		time.Sleep(time.Millisecond)
	}
	warm := post(t, s, "/v1/measure", measureBody)
	if warm.Code != 200 || warm.Header().Get("X-Cache") != "hit" {
		t.Fatalf("warm hit under saturation: status %d X-Cache %q", warm.Code, warm.Header().Get("X-Cache"))
	}
	close(f.gate)
	<-done
}

func TestOmniEndpoints(t *testing.T) {
	store := omni.NewStore()
	if err := store.Insert("nid000001", "power.node", timeseries.Series{
		Times: []float64{0, 1, 2, 3}, Values: []float64{100, 200, 300, 400},
	}); err != nil {
		t.Fatal(err)
	}
	if err := store.RegisterJob(omni.JobRecord{
		ID: "job1", App: "vasp", Nodes: []string{"nid000001"}, Start: 0, End: 3,
	}); err != nil {
		t.Fatal(err)
	}
	s, _ := newTestServer(t, func(c *Config) { c.Store = store })

	w := get(t, s, "/v1/omni/hosts")
	if w.Code != 200 || !strings.Contains(w.Body.String(), "nid000001") {
		t.Fatalf("hosts: status %d body %s", w.Code, w.Body)
	}
	w = get(t, s, "/v1/omni/query?host=nid000001&metric=power.node&t0=1&t1=2")
	if w.Code != 200 {
		t.Fatalf("query: status %d body %s", w.Code, w.Body)
	}
	var q struct {
		Values []float64 `json:"values"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &q); err != nil {
		t.Fatal(err)
	}
	if len(q.Values) != 2 || q.Values[0] != 200 {
		t.Fatalf("query window values %v, want [200 300]", q.Values)
	}
	if w = get(t, s, "/v1/omni/query?host=ghost&metric=power.node"); w.Code != 404 {
		t.Fatalf("unknown host: status %d, want 404", w.Code)
	}
	if w = get(t, s, "/v1/omni/query?host=nid000001"); w.Code != 400 {
		t.Fatalf("missing metric: status %d, want 400", w.Code)
	}
	if w = get(t, s, "/v1/omni/query?host=nid000001&metric=power.node&t0=zero"); w.Code != 400 {
		t.Fatalf("bad t0: status %d, want 400", w.Code)
	}
	w = get(t, s, "/v1/omni/jobs")
	if w.Code != 200 || !strings.Contains(w.Body.String(), "job1") {
		t.Fatalf("jobs: status %d body %s", w.Code, w.Body)
	}
	w = get(t, s, "/v1/omni/jobs?id=job1")
	if w.Code != 200 || !strings.Contains(w.Body.String(), "energy_j") {
		t.Fatalf("job detail: status %d body %s", w.Code, w.Body)
	}
	if w = get(t, s, "/v1/omni/jobs?id=ghost"); w.Code != 404 {
		t.Fatalf("unknown job: status %d, want 404", w.Code)
	}

	bare, _ := newTestServer(t, nil)
	if w = get(t, bare, "/v1/omni/hosts"); w.Code != 404 {
		t.Fatalf("store-less server: status %d, want 404", w.Code)
	}
}

func TestTelemetryEndpoint(t *testing.T) {
	hub := telemetry.NewHub()
	s, _ := newTestServer(t, func(c *Config) { c.Hub = hub })

	// First query attaches the host-filtered ring; samples published
	// before attachment are not buffered.
	w := get(t, s, "/v1/telemetry?host=nid000001")
	if w.Code != 200 {
		t.Fatalf("status %d body %s", w.Code, w.Body)
	}
	var first struct {
		Attached bool `json:"attached"`
		Samples  []struct {
			Domain string  `json:"domain"`
			Watts  float64 `json:"watts"`
		} `json:"samples"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &first); err != nil {
		t.Fatal(err)
	}
	if !first.Attached || len(first.Samples) != 0 {
		t.Fatalf("first query: attached %v samples %d, want true/0", first.Attached, len(first.Samples))
	}

	hub.Publish(telemetry.Sample{Host: "nid000001", Domain: node.DomainGPU, T: 1, Watts: 400})
	hub.Publish(telemetry.Sample{Host: "nid000002", Domain: node.DomainGPU, T: 1, Watts: 999})
	hub.Publish(telemetry.Sample{Host: "nid000001", Domain: node.DomainNode, T: 2, Watts: 900})

	w = get(t, s, "/v1/telemetry?host=nid000001")
	var second struct {
		Attached bool `json:"attached"`
		Samples  []struct {
			Domain string  `json:"domain"`
			Watts  float64 `json:"watts"`
		} `json:"samples"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &second); err != nil {
		t.Fatal(err)
	}
	if second.Attached {
		t.Fatal("second query should reuse the ring")
	}
	if len(second.Samples) != 2 {
		t.Fatalf("%d samples, want 2 (host-filtered)", len(second.Samples))
	}
	for _, smp := range second.Samples {
		if smp.Watts == 999 {
			t.Fatal("another host's sample leaked into the ring")
		}
	}

	if w = get(t, s, "/v1/telemetry"); w.Code != 400 {
		t.Fatalf("missing host: status %d, want 400", w.Code)
	}
	if w = get(t, s, "/v1/telemetry?host=x&domain=warp"); w.Code != 400 {
		t.Fatalf("bad domain: status %d, want 400", w.Code)
	}
	bare, _ := newTestServer(t, nil)
	if w = get(t, bare, "/v1/telemetry?host=x"); w.Code != 404 {
		t.Fatalf("hub-less server: status %d, want 404", w.Code)
	}
}

func TestHealthz(t *testing.T) {
	s, _ := newTestServer(t, nil)
	w := get(t, s, "/healthz")
	if w.Code != 200 {
		t.Fatalf("status %d", w.Code)
	}
	var h struct {
		Status string `json:"status"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &h); err != nil || h.Status != "ok" {
		t.Fatalf("healthz body %s (err %v)", w.Body, err)
	}
}

func TestLimiterFIFOAndCancel(t *testing.T) {
	l := NewLimiter(2, 8, nil)
	if err := l.Acquire(context.Background(), 2); err != nil {
		t.Fatal(err)
	}
	// Two queued waiters; cancel the first, release, second admits.
	ctx1, cancel1 := context.WithCancel(context.Background())
	errs := make(chan error, 2)
	started := make(chan struct{}, 2)
	go func() { started <- struct{}{}; errs <- l.Acquire(ctx1, 1) }()
	<-started
	waitQueued(t, l, 1)
	go func() { started <- struct{}{}; errs <- l.Acquire(context.Background(), 1) }()
	<-started
	waitQueued(t, l, 2)

	cancel1()
	if err := <-errs; err != context.Canceled {
		t.Fatalf("canceled waiter got %v", err)
	}
	l.Release(2)
	if err := <-errs; err != nil {
		t.Fatalf("second waiter got %v", err)
	}
	if got := l.InFlight(); got != 1 {
		t.Fatalf("in-flight %d, want 1", got)
	}
	l.Release(1)
	if got := l.InFlight(); got != 0 {
		t.Fatalf("in-flight %d after release, want 0", got)
	}
}

// TestLimiterCancelHeadAdmitsSmaller: canceling a queued (not yet
// granted) head waiter must re-run admission — a smaller waiter behind
// it that already fits the free capacity is admitted immediately, not
// left blocked until the next Release.
func TestLimiterCancelHeadAdmitsSmaller(t *testing.T) {
	l := NewLimiter(4, 8, nil)
	if err := l.Acquire(context.Background(), 3); err != nil {
		t.Fatal(err)
	}
	ctxBig, cancelBig := context.WithCancel(context.Background())
	bigErr := make(chan error, 1)
	go func() { bigErr <- l.Acquire(ctxBig, 4) }() // can't fit: heads the queue
	waitQueued(t, l, 1)
	smallErr := make(chan error, 1)
	go func() { smallErr <- l.Acquire(context.Background(), 1) }() // fits, but FIFO-blocked
	waitQueued(t, l, 2)

	cancelBig()
	if err := <-bigErr; err != context.Canceled {
		t.Fatalf("canceled head waiter got %v", err)
	}
	select {
	case err := <-smallErr:
		if err != nil {
			t.Fatalf("small waiter got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("small waiter not admitted after head cancellation")
	}
	if got := l.InFlight(); got != 4 {
		t.Fatalf("in-flight %d, want 4", got)
	}
	l.Release(3)
	l.Release(1)
}

func waitQueued(t *testing.T, l *Limiter, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		l.mu.Lock()
		q := len(l.waiters)
		l.mu.Unlock()
		if q >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("queue never reached %d", n)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestLimiterSaturation(t *testing.T) {
	l := NewLimiter(1, 0, nil)
	if err := l.Acquire(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	if err := l.Acquire(context.Background(), 1); err != ErrSaturated {
		t.Fatalf("got %v, want ErrSaturated", err)
	}
	l.Release(1)
	if err := l.Acquire(context.Background(), 1); err != nil {
		t.Fatalf("after release: %v", err)
	}
}

func TestBatcherMerges(t *testing.T) {
	f := &fakeMeasure{}
	m := NewMetrics(obs.NewRegistry())
	b := NewBatcher(f.fn, nil, measureCanonKey, 20*time.Millisecond, 2, m)
	specA := mustSpec(t, measureRequest{Bench: "Si256_hse", CapW: 250})
	specB := mustSpec(t, measureRequest{Bench: "Si256_hse", CapW: 300})
	fa1 := b.Enqueue(specA)
	fa2 := b.Enqueue(specA) // same point, same window → same flight
	fb := b.Enqueue(specB)
	if fa1 != fa2 {
		t.Fatal("identical points in one window got separate flights")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for _, fl := range []*PointFlight{fa1, fa2, fb} {
		if _, err := fl.Wait(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if n := f.evals.Load(); n != 2 {
		t.Fatalf("evaluations = %d, want 2 (A merged)", n)
	}
	if m.BatchMerged.Value() != 1 {
		t.Fatalf("serve.batch_merged = %d, want 1", m.BatchMerged.Value())
	}
	if m.BatchFlushes.Value() != 1 {
		t.Fatalf("serve.batch_flushes = %d, want 1 (shared window)", m.BatchFlushes.Value())
	}
}

// TestNonBindingCapCanonicalization: a cap at or above the platform
// TDP is the stock power limit, so cap_w=0, cap_w=TDP, and cap_w>TDP
// must share one canonical cache entry — one evaluation, identical
// response bytes, and an echoed cap_w of 0 regardless of which form
// arrived first.
func TestNonBindingCapCanonicalization(t *testing.T) {
	s, f := newTestServer(t, nil)
	tdp := mustSpec(t, measureRequest{Bench: "Si256_hse"}).Platform.GPU.TDP
	bodies := []string{
		fmt.Sprintf(`{"bench":"Si256_hse","cap_w":%g}`, tdp+50),
		`{"bench":"Si256_hse"}`,
		`{"bench":"Si256_hse","cap_w":0}`,
		fmt.Sprintf(`{"bench":"Si256_hse","cap_w":%g}`, tdp),
	}
	var first []byte
	for i, body := range bodies {
		w := post(t, s, "/v1/measure", body)
		if w.Code != 200 {
			t.Fatalf("request %d: status %d body %s", i, w.Code, w.Body)
		}
		if i == 0 {
			first = append([]byte(nil), w.Body.Bytes()...)
			continue
		}
		if !bytes.Equal(w.Body.Bytes(), first) {
			t.Fatalf("request %d bytes differ from first:\n%s\n%s", i, w.Body, first)
		}
	}
	if n := f.evals.Load(); n != 1 {
		t.Fatalf("evaluations = %d, want 1 (non-binding caps share one entry)", n)
	}
	var resp measureResponse
	if err := json.Unmarshal(first, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.CapW != 0 {
		t.Fatalf("echoed cap_w = %g, want 0 (normalized)", resp.CapW)
	}
	// A binding cap stays a distinct identity.
	w := post(t, s, "/v1/measure", `{"bench":"Si256_hse","cap_w":250}`)
	if w.Code != 200 {
		t.Fatalf("binding cap: status %d", w.Code)
	}
	if n := f.evals.Load(); n != 2 {
		t.Fatalf("evaluations = %d, want 2 (binding cap is distinct)", n)
	}
}

// TestSweepGroupPath: points of one sweep that share a spec-minus-cap
// identity ride one MeasureGroup call (serve.batch_groups), and the
// response bytes are identical to the per-point path's.
func TestSweepGroupPath(t *testing.T) {
	f := &fakeMeasure{}
	var groupCalls atomic.Int64
	group := func(spec core.MeasureSpec, caps []float64) ([]core.JobProfile, error) {
		groupCalls.Add(1)
		out := make([]core.JobProfile, len(caps))
		for i, capW := range caps {
			pt := spec
			pt.CapW = capW
			jp, err := f.fn(pt)
			if err != nil {
				return nil, err
			}
			out[i] = jp
		}
		return out, nil
	}
	// A real window so all three points land in one flush.
	s := New(Config{Measure: f.fn, MeasureGroup: group,
		Reg: obs.NewRegistry(), BatchWindow: 20 * time.Millisecond})
	body := `{"kind":"cap","bench":"Si256_hse","from_w":100,"to_w":200,"step_w":50}`
	w := post(t, s, "/v1/sweep", body)
	if w.Code != 200 {
		t.Fatalf("status %d body %s", w.Code, w.Body)
	}
	if n := groupCalls.Load(); n != 1 {
		t.Fatalf("group calls = %d, want 1", n)
	}
	if n := f.evals.Load(); n != 3 {
		t.Fatalf("evaluations = %d, want 3", n)
	}
	if v := s.Metrics().BatchGroups.Value(); v != 1 {
		t.Fatalf("serve.batch_groups = %d, want 1", v)
	}
	// The per-point path (no group fn) must produce identical bytes.
	s2, _ := newTestServer(t, func(c *Config) { c.Measure = f.fn })
	w2 := post(t, s2, "/v1/sweep", body)
	if w2.Code != 200 {
		t.Fatalf("per-point status %d", w2.Code)
	}
	if !bytes.Equal(w.Body.Bytes(), w2.Body.Bytes()) {
		t.Fatalf("group-path bytes differ from per-point bytes:\n%s\n%s", w.Body, w2.Body)
	}
}

// TestSweepGroupError: a failing group falls back to per-point
// evaluation so errors stay per-point.
func TestSweepGroupError(t *testing.T) {
	f := &fakeMeasure{}
	group := func(core.MeasureSpec, []float64) ([]core.JobProfile, error) {
		return nil, fmt.Errorf("group exploded")
	}
	s := New(Config{Measure: f.fn, MeasureGroup: group,
		Reg: obs.NewRegistry(), BatchWindow: 20 * time.Millisecond})
	w := post(t, s, "/v1/sweep", `{"kind":"cap","bench":"Si256_hse","from_w":100,"to_w":200,"step_w":50}`)
	if w.Code != 200 {
		t.Fatalf("status %d body %s (group failure must fall back)", w.Code, w.Body)
	}
	if n := f.evals.Load(); n != 3 {
		t.Fatalf("evaluations = %d, want 3 (per-point fallback)", n)
	}
}

// TestSweepStreamCancelMidStream: cancelling a streaming sweep while a
// point is still evaluating must emit a terminal NDJSON error record
// for that point, return the handler, and release the admission
// weight; the blocked evaluation drains in the background afterwards.
func TestSweepStreamCancelMidStream(t *testing.T) {
	block := make(chan struct{})
	measure := func(spec core.MeasureSpec) (core.JobProfile, error) {
		if spec.CapW == 200 { // last point of the sweep below
			<-block
		}
		return core.JobProfile{Runtime: 1}, nil
	}
	s, _ := newTestServer(t, func(c *Config) { c.Measure = measure })
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req := httptest.NewRequest(http.MethodPost, "/v1/sweep",
		strings.NewReader(`{"kind":"cap","bench":"Si256_hse","from_w":100,"to_w":200,"step_w":50,"stream":true}`)).
		WithContext(ctx)
	// Cancel once the first two points are streamed; the third is gated
	// on block, so its Wait observes only the cancellation.
	w := &lineSignalRecorder{ResponseRecorder: httptest.NewRecorder(), want: 2, ready: make(chan struct{})}
	done := make(chan struct{})
	go func() {
		s.Handler().ServeHTTP(w, req)
		close(done)
	}()
	select {
	case <-w.ready:
	case <-time.After(10 * time.Second):
		t.Fatal("first two points never streamed")
	}
	cancel()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("handler did not return after cancellation")
	}
	close(block) // let the background flush drain

	lines := strings.Split(strings.TrimSpace(w.Body.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("%d NDJSON lines, want 3 (2 points + terminal error): %q", len(lines), w.Body)
	}
	var terminal struct {
		Error string `json:"error"`
		Point int    `json:"point"`
	}
	if err := json.Unmarshal([]byte(lines[2]), &terminal); err != nil {
		t.Fatalf("terminal line not JSON: %v", err)
	}
	if terminal.Point != 2 || !strings.Contains(terminal.Error, "context canceled") {
		t.Fatalf("terminal record = %+v, want point 2 canceled", terminal)
	}
	if v := s.Metrics().Errors.Value(); v != 1 {
		t.Fatalf("serve.errors = %d, want 1", v)
	}
	if v := s.limiter.InFlight(); v != 0 {
		t.Fatalf("admission weight %d still held after cancelled stream", v)
	}
}

// lineSignalRecorder closes ready once `want` NDJSON lines have been
// written.
type lineSignalRecorder struct {
	*httptest.ResponseRecorder
	want  int
	lines int
	ready chan struct{}
	once  sync.Once
}

func (w *lineSignalRecorder) Write(p []byte) (int, error) {
	n, err := w.ResponseRecorder.Write(p)
	w.lines += bytes.Count(p[:n], []byte("\n"))
	if w.lines >= w.want {
		w.once.Do(func() { close(w.ready) })
	}
	return n, err
}

// cancelOnWriteRecorder cancels a context on the first body write —
// the closest a test can get to a client dropping mid-stream.
type cancelOnWriteRecorder struct {
	*httptest.ResponseRecorder
	cancel context.CancelFunc
	once   sync.Once
}

func (w *cancelOnWriteRecorder) Write(p []byte) (int, error) {
	w.once.Do(w.cancel)
	return w.ResponseRecorder.Write(p)
}

// TestSweepStreamCancelReleasesArenaAndDisk drives the real engine
// with a disk cache attached and drops the client at the first
// streamed byte: however far evaluation got, the incremental sweep
// arena must return to zero and the cache directory must hold only
// whole, committed entries (no tmp-* files).
func TestSweepStreamCancelReleasesArenaAndDisk(t *testing.T) {
	dir := t.TempDir()
	if _, err := experiments.EnableDiskCache(dir, 0); err != nil {
		t.Fatal(err)
	}
	defer experiments.DisableDiskCache()
	experiments.ResetCache()
	defer experiments.ResetCache()

	before := workloads.ActiveSweeps()
	s := New(Config{Reg: obs.NewRegistry(), BatchWindow: 10 * time.Millisecond})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req := httptest.NewRequest(http.MethodPost, "/v1/sweep",
		strings.NewReader(`{"kind":"cap","bench":"B.hR105_hse","from_w":150,"to_w":350,"step_w":50,"stream":true}`)).
		WithContext(ctx)
	w := &cancelOnWriteRecorder{ResponseRecorder: httptest.NewRecorder(), cancel: cancel}
	done := make(chan struct{})
	go func() {
		s.Handler().ServeHTTP(w, req)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("handler did not return after client drop")
	}
	deadline := time.Now().Add(60 * time.Second)
	for workloads.ActiveSweeps() != before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := workloads.ActiveSweeps(); got != before {
		t.Fatalf("ActiveSweeps = %d, want %d (arena leaked after dropped stream)", got, before)
	}
	tmp := 0
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasPrefix(d.Name(), "tmp-") {
			tmp++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if tmp != 0 {
		t.Fatalf("%d tmp-* files left in the disk cache after dropped stream", tmp)
	}
}

func mustSpec(t *testing.T, req measureRequest) core.MeasureSpec {
	t.Helper()
	spec, aerr := req.toSpec()
	if aerr != nil {
		t.Fatalf("spec: %s", aerr.msg)
	}
	return spec
}

func TestWaitForShutdown(t *testing.T) {
	if got := WaitForShutdown(0); got != "hold elapsed" {
		t.Fatalf("hold 0: %q", got)
	}
	start := time.Now()
	if got := WaitForShutdown(20 * time.Millisecond); got != "hold elapsed" {
		t.Fatalf("short hold: %q", got)
	}
	if time.Since(start) < 20*time.Millisecond {
		t.Fatal("short hold returned early without a signal")
	}
	// A signal ends an indefinite hold.
	done := make(chan string, 1)
	go func() { done <- WaitForShutdown(-1) }()
	time.Sleep(50 * time.Millisecond) // let Notify install
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-done:
		if got != "signal" {
			t.Fatalf("signal hold: %q", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("SIGTERM did not end the hold")
	}
}

func TestMountCoversEveryEndpoint(t *testing.T) {
	s, _ := newTestServer(t, nil)
	mux := http.NewServeMux()
	s.Mount(mux)
	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	w := httptest.NewRecorder()
	mux.ServeHTTP(w, req)
	if w.Code != 200 {
		t.Fatalf("mounted /healthz: status %d", w.Code)
	}
}

// TestResponseDeterminism pins the canonical-bytes invariant: two
// servers given the same spec produce identical bytes (what lets CI
// diff a served response against powerd -oneshot).
func TestResponseDeterminism(t *testing.T) {
	s1, _ := newTestServer(t, nil)
	s2, _ := newTestServer(t, nil)
	a := post(t, s1, "/v1/measure", measureBody)
	b := post(t, s2, "/v1/measure", measureBody)
	if !bytes.Equal(a.Body.Bytes(), b.Body.Bytes()) {
		t.Fatalf("same spec, different bytes:\n%s\n%s", a.Body, b.Body)
	}
}
