package serve

import (
	"os"
	"os/signal"
	"syscall"
	"time"
)

// WaitForShutdown blocks until the process should exit: SIGINT or
// SIGTERM arrives, or hold elapses — whichever comes first.
//
//   - hold < 0: wait for a signal alone (serve forever);
//   - hold == 0: return immediately (one-shot runs that only hold the
//     server open as a side effect of other work);
//   - hold > 0: wait up to hold, a signal ends the wait early.
//
// It returns the reason ("signal" or "hold elapsed") so callers can
// log which path ended the run. This replaces the old fixed
// `-telemetry-hold` sleep on the CLI tools: a scrape-and-kill CI job
// or an operator's Ctrl-C now ends the hold the moment it fires
// instead of waiting out the timer, and the binaries get a uniform
// graceful-drain trigger.
func WaitForShutdown(hold time.Duration) string {
	if hold == 0 {
		return "hold elapsed"
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	if hold < 0 {
		<-sig
		return "signal"
	}
	t := time.NewTimer(hold)
	defer t.Stop()
	select {
	case <-sig:
		return "signal"
	case <-t.C:
		return "hold elapsed"
	}
}
