package serve

import (
	"fmt"
	"sync"

	"vasppower/internal/hw/node"
	"vasppower/internal/telemetry"
)

// telemetryRings owns /v1/telemetry's per-(host, domain) hub
// subscriptions, attached lazily on first query. Each ring is
// host-filtered at the hub (telemetry.SubscribeHost), so a busy
// neighbor host can never overflow it — the property TestHostScope
// pins down in the telemetry package.
type telemetryRings struct {
	hub *telemetry.Hub
	cap int

	mu   sync.Mutex
	subs map[string]*telemetry.Subscription // "host|domain" → ring
}

func (t *telemetryRings) init(hub *telemetry.Hub, capacity int) {
	t.hub = hub
	t.cap = capacity
	t.subs = make(map[string]*telemetry.Subscription)
}

// sub returns the ring for (host, domain), creating it on first use.
// attached reports whether this call created the ring — samples
// published before attachment were never buffered, which the response
// surfaces so clients don't mistake "just attached" for "host idle".
func (t *telemetryRings) sub(host, domain string) (s *telemetry.Subscription, attached bool, err error) {
	key := host + "|" + domain
	t.mu.Lock()
	defer t.mu.Unlock()
	if s, ok := t.subs[key]; ok {
		return s, false, nil
	}
	if t.hub == nil {
		return nil, false, fmt.Errorf("serve: telemetry hub not configured")
	}
	s, err = t.hub.SubscribeHost(host, node.Domain(domain), t.cap)
	if err != nil {
		return nil, false, err
	}
	t.subs[key] = s
	return s, true, nil
}

// close detaches every ring (shutdown path).
func (t *telemetryRings) close() {
	t.mu.Lock()
	defer t.mu.Unlock()
	for k, s := range t.subs {
		s.Close()
		delete(t.subs, k)
	}
}
