// Package sim is a minimal discrete-event simulation engine: a virtual
// clock and an ordered event queue. Hour-long VASP jobs, 0.1-second
// telemetry sampling, and 30-second scheduler cycles all run in
// virtual time, so a full paper experiment executes in milliseconds of
// wall time.
//
// The engine is deliberately single-threaded: determinism matters more
// than parallel speed for a reproduction, and events at equal
// timestamps fire in scheduling order (FIFO), which keeps every run
// bit-identical.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"sync/atomic"

	"vasppower/internal/obs"
)

// Metrics counts events fired across every engine in the process — the
// denominator of "where does wall-clock go" for a sweep that runs
// millions of virtual-time events. Install with SetMetrics; the nil
// default costs one atomic load per fired event.
type Metrics struct {
	Steps *obs.Counter
}

// NewMetrics registers the engine metric set under "sim." in reg.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{Steps: reg.Counter("sim.steps")}
}

var metrics atomic.Pointer[Metrics]

// SetMetrics installs (or, with nil, removes) the process-wide engine
// metrics. Install once at startup, before simulations run.
func SetMetrics(m *Metrics) { metrics.Store(m) }

// Event is a scheduled callback. Cancel prevents a pending event from
// firing; cancelling an already-fired event is a no-op.
//
// Handle lifetime: once an event has fired, or has been cancelled and
// subsequently collected from the queue, the engine recycles the Event
// for a later At/After call (sweeps schedule millions of events, and
// pooling keeps them out of the allocator). A handle is therefore only
// good until its event fires or is cancelled — drop it after either,
// and never call Cancel on a handle whose event may already have
// fired.
type Event struct {
	at        float64
	seq       uint64
	fn        func()
	fnArg     func(int) // set instead of fn by AtArg/AfterArg
	arg       int
	cancelled bool
	fired     bool
	index     int // heap index, -1 once popped
}

// Time returns the virtual time at which the event is scheduled.
func (ev *Event) Time() float64 { return ev.at }

// Cancel prevents the event from firing. Safe to call multiple times.
func (ev *Event) Cancel() { ev.cancelled = true }

// Engine is the simulation core. The zero value is ready to use and
// starts at time 0.
type Engine struct {
	now  float64
	pq   eventHeap
	seq  uint64
	free []*Event // recycled Events; see Event's handle-lifetime note
}

// New returns a fresh engine at virtual time 0.
func New() *Engine { return &Engine{} }

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Pending returns the number of events still queued (including
// cancelled-but-unpopped events).
func (e *Engine) Pending() int { return len(e.pq) }

// At schedules fn at absolute virtual time t. Scheduling in the past
// panics: it indicates a simulator bug, and silently reordering time
// would corrupt every power trace built on top of the engine.
func (e *Engine) At(t float64, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, e.now))
	}
	if math.IsNaN(t) || math.IsInf(t, 0) {
		panic(fmt.Sprintf("sim: scheduling at non-finite time %v", t))
	}
	ev := e.alloc(t, fn)
	e.seq++
	heap.Push(&e.pq, ev)
	return ev
}

// AtArg schedules fn(arg) at absolute virtual time t. It behaves like
// At but carries an integer argument inside the pooled Event, so a
// caller scheduling one event per work item (the scheduler schedules
// one completion per job) can reuse a single long-lived callback
// instead of allocating a fresh closure per item — the difference
// between O(jobs) closures and zero steady-state allocations.
func (e *Engine) AtArg(t float64, fn func(int), arg int) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, e.now))
	}
	if math.IsNaN(t) || math.IsInf(t, 0) {
		panic(fmt.Sprintf("sim: scheduling at non-finite time %v", t))
	}
	ev := e.alloc(t, nil)
	ev.fnArg = fn
	ev.arg = arg
	e.seq++
	heap.Push(&e.pq, ev)
	return ev
}

// AfterArg schedules fn(arg) delay seconds from now.
func (e *Engine) AfterArg(delay float64, fn func(int), arg int) *Event {
	return e.AtArg(e.now+delay, fn, arg)
}

// alloc takes an Event from the free list (resetting every field) or
// allocates a fresh one. The free list is bounded by the peak number
// of pending events, so it needs no cap of its own.
func (e *Engine) alloc(t float64, fn func()) *Event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		*ev = Event{at: t, seq: e.seq, fn: fn}
		return ev
	}
	return &Event{at: t, seq: e.seq, fn: fn}
}

// recycle returns a popped event to the free list. The callback is
// released immediately so pooled events never pin closures (and the
// node sensors they capture) across simulations.
func (e *Engine) recycle(ev *Event) {
	ev.fn = nil
	ev.fnArg = nil
	e.free = append(e.free, ev)
}

// After schedules fn delay seconds from now. Negative delays panic.
func (e *Engine) After(delay float64, fn func()) *Event {
	return e.At(e.now+delay, fn)
}

// Step fires the next pending event, advancing the clock to its time.
// It returns false when no events remain.
func (e *Engine) Step() bool {
	for len(e.pq) > 0 {
		ev := heap.Pop(&e.pq).(*Event)
		if ev.cancelled {
			e.recycle(ev)
			continue
		}
		e.now = ev.at
		ev.fired = true
		if m := metrics.Load(); m != nil {
			m.Steps.Add(1)
		}
		if ev.fnArg != nil {
			ev.fnArg(ev.arg)
		} else {
			ev.fn()
		}
		// Recycle only after fn returns: fn may consult the handle (a
		// Ticker's arm wrapper does) and may itself schedule new events
		// from the free list.
		e.recycle(ev)
		return true
	}
	return false
}

// Run fires events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil fires events with time ≤ t, then advances the clock to
// exactly t (even if no event lands there).
func (e *Engine) RunUntil(t float64) {
	if t < e.now {
		panic(fmt.Sprintf("sim: RunUntil(%v) before now %v", t, e.now))
	}
	for len(e.pq) > 0 {
		// Peek.
		next := e.pq[0]
		if next.cancelled {
			e.recycle(heap.Pop(&e.pq).(*Event))
			continue
		}
		if next.at > t {
			break
		}
		e.Step()
	}
	e.now = t
}

// Ticker fires a callback at a fixed period until stopped. The first
// tick fires one period after creation (matching a polling sampler
// that reports at the end of each interval).
type Ticker struct {
	engine  *Engine
	period  float64
	fn      func(now float64)
	ev      *Event
	tick    func() // the arm callback, allocated once per Ticker
	stopped bool
}

// Every creates and starts a Ticker with the given period (seconds).
// It panics if period <= 0.
func (e *Engine) Every(period float64, fn func(now float64)) *Ticker {
	if period <= 0 {
		panic("sim: non-positive ticker period")
	}
	t := &Ticker{engine: e, period: period, fn: fn}
	t.tick = func() {
		// This event is firing, so its handle is about to go stale
		// (the engine recycles fired events): drop it before running
		// the callback so a Stop never cancels a recycled event.
		t.ev = nil
		if t.stopped {
			return
		}
		t.fn(t.engine.Now())
		if !t.stopped {
			t.arm()
		}
	}
	t.arm()
	return t
}

func (t *Ticker) arm() {
	t.ev = t.engine.After(t.period, t.tick)
}

// Stop halts the ticker. Safe to call from within the tick callback,
// and safe to call multiple times.
func (t *Ticker) Stop() {
	t.stopped = true
	if t.ev != nil {
		t.ev.Cancel()
		t.ev = nil
	}
}

// eventHeap orders events by (time, sequence) so ties fire FIFO.
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}
