package sim

import (
	"sort"
	"testing"

	"vasppower/internal/rng"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	e := New()
	var order []float64
	for _, at := range []float64{5, 1, 3, 2, 4} {
		at := at
		e.At(at, func() { order = append(order, at) })
	}
	e.Run()
	if !sort.Float64sAreSorted(order) {
		t.Fatalf("events fired out of order: %v", order)
	}
	if e.Now() != 5 {
		t.Fatalf("final time = %v, want 5", e.Now())
	}
}

func TestTiesFireFIFO(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(1, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie order not FIFO: %v", order)
		}
	}
}

func TestAfterUsesCurrentTime(t *testing.T) {
	e := New()
	var firedAt float64
	e.At(10, func() {
		e.After(5, func() { firedAt = e.Now() })
	})
	e.Run()
	if firedAt != 15 {
		t.Fatalf("After fired at %v, want 15", firedAt)
	}
}

func TestCancel(t *testing.T) {
	e := New()
	fired := false
	ev := e.At(1, func() { fired = true })
	ev.Cancel()
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := New()
	e.At(10, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.At(5, func() {})
}

func TestRunUntil(t *testing.T) {
	e := New()
	var fired []float64
	for _, at := range []float64{1, 2, 3, 4} {
		at := at
		e.At(at, func() { fired = append(fired, at) })
	}
	e.RunUntil(2.5)
	if len(fired) != 2 {
		t.Fatalf("RunUntil(2.5) fired %v", fired)
	}
	if e.Now() != 2.5 {
		t.Fatalf("clock = %v, want 2.5", e.Now())
	}
	e.Run()
	if len(fired) != 4 {
		t.Fatalf("remaining events lost: %v", fired)
	}
}

func TestRunUntilAdvancesEmptyClock(t *testing.T) {
	e := New()
	e.RunUntil(42)
	if e.Now() != 42 {
		t.Fatalf("clock = %v, want 42", e.Now())
	}
}

func TestTicker(t *testing.T) {
	e := New()
	var ticks []float64
	tk := e.Every(2, func(now float64) {
		ticks = append(ticks, now)
	})
	e.At(11, func() { tk.Stop() })
	e.Run()
	want := []float64{2, 4, 6, 8, 10}
	if len(ticks) != len(want) {
		t.Fatalf("ticks = %v, want %v", ticks, want)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("ticks = %v, want %v", ticks, want)
		}
	}
}

func TestTickerStopFromCallback(t *testing.T) {
	e := New()
	count := 0
	var tk *Ticker
	tk = e.Every(1, func(now float64) {
		count++
		if count == 3 {
			tk.Stop()
		}
	})
	e.Run()
	if count != 3 {
		t.Fatalf("ticker fired %d times after in-callback Stop, want 3", count)
	}
}

func TestNestedScheduling(t *testing.T) {
	// A chain of events each scheduling the next: simulates a process.
	e := New()
	depth := 0
	var step func()
	step = func() {
		depth++
		if depth < 100 {
			e.After(1, step)
		}
	}
	e.After(1, step)
	e.Run()
	if depth != 100 {
		t.Fatalf("chain depth = %d, want 100", depth)
	}
	if e.Now() != 100 {
		t.Fatalf("final time = %v, want 100", e.Now())
	}
}

// Property: with random schedules, events always fire in nondecreasing
// time order and the clock never moves backwards.
func TestRandomScheduleOrderProperty(t *testing.T) {
	root := rng.New(77)
	for trial := 0; trial < 30; trial++ {
		r := rng.New(root.Uint64())
		e := New()
		var last float64 = -1
		violations := 0
		n := 1 + r.IntN(200)
		for i := 0; i < n; i++ {
			at := r.Float64() * 1000
			e.At(at, func() {
				if e.Now() < last {
					violations++
				}
				last = e.Now()
				// Sometimes schedule follow-ups.
				if r.Bool(0.3) {
					e.After(r.Float64()*10, func() {
						if e.Now() < last {
							violations++
						}
						last = e.Now()
					})
				}
			})
		}
		e.Run()
		if violations > 0 {
			t.Fatalf("trial %d: %d time-order violations", trial, violations)
		}
	}
}

// TestEventRecycling pins the free-list pool: a fired (or cancelled
// and collected) event's storage is reused by a later schedule, reset
// fields and all, and the simulation stays correct through reuse.
func TestEventRecycling(t *testing.T) {
	e := New()
	first := e.At(1, func() {})
	e.Run()
	second := e.After(1, func() {})
	if first != second {
		t.Fatal("fired event was not recycled for the next schedule")
	}
	if second.cancelled || second.fired || second.fn == nil {
		t.Fatal("recycled event not fully reset")
	}
	fired := false
	second.fn = func() { fired = true }
	e.Run()
	if !fired {
		t.Fatal("recycled event did not fire")
	}

	// Cancelled events are collected and recycled too.
	ev := e.After(1, func() { t.Error("cancelled event fired") })
	ev.Cancel()
	e.Run()
	if got := e.After(1, func() {}); got != ev {
		t.Fatal("cancelled event was not recycled after collection")
	}
	e.Run()
}

// TestRecycledEventsDropClosures: pooled events must not pin their
// callbacks (which capture node sensors) while idle on the free list.
func TestRecycledEventsDropClosures(t *testing.T) {
	e := New()
	e.At(1, func() {})
	e.Run()
	if len(e.free) != 1 || e.free[0].fn != nil {
		t.Fatalf("free list holds a closure (len %d)", len(e.free))
	}
}

// TestTickerStopAfterRecycle: stopping a ticker twice, or after its
// pending event has fired and been recycled into an unrelated
// schedule, must not cancel the unrelated event.
func TestTickerStopAfterRecycle(t *testing.T) {
	e := New()
	tk := e.Every(1, func(float64) {})
	e.RunUntil(1.5) // one tick fired; tk re-armed for t=2
	tk.Stop()
	tk.Stop() // second Stop must be a no-op, not a stale Cancel
	fired := false
	e.At(2, func() { fired = true }) // may reuse the cancelled event's slot
	e.Run()
	if !fired {
		t.Fatal("event scheduled after ticker Stop was cancelled by a stale handle")
	}
}

// BenchmarkScheduleFire measures the steady-state schedule→fire cycle;
// with the free-list pool this allocates nothing per event.
func BenchmarkScheduleFire(b *testing.B) {
	e := New()
	fn := func() {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.After(1, fn)
		e.Step()
	}
}

// BenchmarkTickerTicks measures a long-running sampler: one ticker,
// many ticks (the LDMS pipeline's shape).
func BenchmarkTickerTicks(b *testing.B) {
	e := New()
	tk := e.Every(1, func(float64) {})
	defer tk.Stop()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

func TestPending(t *testing.T) {
	e := New()
	e.At(1, func() {})
	e.At(2, func() {})
	if e.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", e.Pending())
	}
	e.Run()
	if e.Pending() != 0 {
		t.Fatalf("Pending after run = %d", e.Pending())
	}
}
