package sim

import (
	"testing"

	"vasppower/internal/obs"
)

// TestStepMetrics checks that fired events are counted (and cancelled
// ones are not) when metrics are installed, and that the default
// uninstrumented engine counts nothing.
func TestStepMetrics(t *testing.T) {
	m := NewMetrics(obs.NewRegistry())
	SetMetrics(m)
	defer SetMetrics(nil)

	e := New()
	fired := 0
	for i := 0; i < 10; i++ {
		e.After(float64(i+1), func() { fired++ })
	}
	e.After(100, func() { t.Error("cancelled event fired") }).Cancel()
	e.Run()
	if fired != 10 {
		t.Fatalf("fired %d events, want 10", fired)
	}
	if got := m.Steps.Value(); got != 10 {
		t.Fatalf("sim.steps = %d, want 10 (cancelled events must not count)", got)
	}

	SetMetrics(nil)
	e2 := New()
	e2.After(1, func() {})
	e2.Run()
	if got := m.Steps.Value(); got != 10 {
		t.Fatalf("uninstrumented engine moved the counter: %d", got)
	}
}
