// Package stats implements the statistical toolkit the paper uses to
// characterize application power: descriptive statistics, histograms,
// Gaussian kernel density estimation (KDE), mode finding (in
// particular the paper's "high power mode" — the mode at the highest
// power), full width at half maximum (FWHM), and violin-plot
// summaries.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned when an operation needs at least one sample.
var ErrEmpty = errors.New("stats: empty sample")

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N      int
	Min    float64
	Max    float64
	Mean   float64
	Median float64
	StdDev float64 // population standard deviation
	Q1, Q3 float64 // quartiles (linear interpolation)
}

// Describe computes a Summary of xs. It returns ErrEmpty for an empty
// sample.
func Describe(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	s := Summary{N: len(xs)}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Min = sorted[0]
	s.Max = sorted[len(sorted)-1]
	var sum, sumSq float64
	for _, v := range xs {
		sum += v
		sumSq += v * v
	}
	n := float64(len(xs))
	s.Mean = sum / n
	variance := sumSq/n - s.Mean*s.Mean
	if variance < 0 {
		variance = 0 // fp noise on constant samples
	}
	s.StdDev = math.Sqrt(variance)
	s.Median = quantileSorted(sorted, 0.5)
	s.Q1 = quantileSorted(sorted, 0.25)
	s.Q3 = quantileSorted(sorted, 0.75)
	return s, nil
}

// Mean returns the arithmetic mean (NaN for empty).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, v := range xs {
		sum += v
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation (NaN for empty).
func StdDev(xs []float64) float64 {
	s, err := Describe(xs)
	if err != nil {
		return math.NaN()
	}
	return s.StdDev
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) using linear
// interpolation between order statistics (type-7, the numpy default).
// It returns NaN for an empty sample.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

func quantileSorted(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 1 {
		return sorted[0]
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= n {
		return sorted[n-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// IQR returns the interquartile range (NaN for empty).
func IQR(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	return Quantile(xs, 0.75) - Quantile(xs, 0.25)
}
