package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"vasppower/internal/rng"
)

func TestDescribeBasic(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	s, err := Describe(xs)
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 8 || s.Min != 2 || s.Max != 9 {
		t.Fatalf("N/min/max wrong: %+v", s)
	}
	if math.Abs(s.Mean-5) > 1e-12 {
		t.Fatalf("mean = %v, want 5", s.Mean)
	}
	if math.Abs(s.StdDev-2) > 1e-12 {
		t.Fatalf("stddev = %v, want 2", s.StdDev)
	}
	if math.Abs(s.Median-4.5) > 1e-12 {
		t.Fatalf("median = %v, want 4.5", s.Median)
	}
}

func TestDescribeEmpty(t *testing.T) {
	if _, err := Describe(nil); err != ErrEmpty {
		t.Fatalf("expected ErrEmpty, got %v", err)
	}
}

func TestDescribeSingleton(t *testing.T) {
	s, err := Describe([]float64{42})
	if err != nil {
		t.Fatal(err)
	}
	if s.Min != 42 || s.Max != 42 || s.Mean != 42 || s.Median != 42 || s.StdDev != 0 {
		t.Fatalf("singleton summary wrong: %+v", s)
	}
}

func TestDescribeConstantSample(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = 7
	}
	s, _ := Describe(xs)
	if s.StdDev != 0 || s.Q1 != 7 || s.Q3 != 7 {
		t.Fatalf("constant sample summary wrong: %+v", s)
	}
}

func TestQuantileEdges(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if Quantile(xs, 0) != 1 || Quantile(xs, 1) != 4 {
		t.Fatal("quantile edges wrong")
	}
	if got := Quantile(xs, 0.5); math.Abs(got-2.5) > 1e-12 {
		t.Fatalf("median quantile = %v, want 2.5", got)
	}
	// Type-7: Q1 of {1,2,3,4} = 1.75.
	if got := Quantile(xs, 0.25); math.Abs(got-1.75) > 1e-12 {
		t.Fatalf("Q1 = %v, want 1.75", got)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("empty quantile should be NaN")
	}
}

// Property: quantile is monotone in q and bounded by [min, max].
func TestQuantileMonotoneProperty(t *testing.T) {
	st := rng.New(1)
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 + r.IntN(100)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Normal(100, 30)
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0001; q += 0.05 {
			v := Quantile(xs, q)
			if v < prev-1e-9 || v < sorted[0]-1e-9 || v > sorted[n-1]+1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	for i := 0; i < 100; i++ {
		if !f(st.Uint64()) {
			t.Fatal("quantile not monotone/bounded")
		}
	}
}

// Property: mean lies within [min, max]; stddev >= 0.
func TestDescribeInvariants(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e9 {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		s, err := Describe(xs)
		if err != nil {
			return false
		}
		return s.Mean >= s.Min-1e-6 && s.Mean <= s.Max+1e-6 && s.StdDev >= 0 &&
			s.Q1 <= s.Median+1e-9 && s.Median <= s.Q3+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestIQR(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9}
	got := IQR(xs)
	if math.Abs(got-4) > 1e-12 {
		t.Fatalf("IQR = %v, want 4", got)
	}
}

func TestMeanStdDevHelpers(t *testing.T) {
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(StdDev(nil)) {
		t.Fatal("empty helpers should be NaN")
	}
	if Mean([]float64{1, 3}) != 2 {
		t.Fatal("Mean wrong")
	}
	if StdDev([]float64{1, 3}) != 1 {
		t.Fatal("StdDev wrong")
	}
}
