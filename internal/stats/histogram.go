package stats

import (
	"fmt"
	"math"
)

// Histogram is a fixed-width binned frequency count over [Lo, Hi).
// Values landing exactly on Hi are assigned to the last bin so that a
// histogram over [min, max] of a sample loses no points.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	total  int
}

// NewHistogram builds a histogram of xs with the given number of bins
// over [lo, hi]. It panics if bins <= 0 or hi <= lo.
func NewHistogram(xs []float64, bins int, lo, hi float64) *Histogram {
	if bins <= 0 {
		panic("stats: histogram with no bins")
	}
	if hi <= lo {
		panic(fmt.Sprintf("stats: histogram range [%v,%v] is empty", lo, hi))
	}
	h := &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
	for _, x := range xs {
		h.Add(x)
	}
	return h
}

// AutoHistogram builds a histogram spanning the sample range with a
// bin count chosen by the Freedman–Diaconis rule (falling back to
// Sturges when the IQR is degenerate), clamped to [8, 256] bins.
func AutoHistogram(xs []float64) *Histogram {
	if len(xs) == 0 {
		return &Histogram{Lo: 0, Hi: 1, Counts: make([]int, 1)}
	}
	s, _ := Describe(xs)
	lo, hi := s.Min, s.Max
	if hi == lo {
		hi = lo + 1
	}
	iqr := s.Q3 - s.Q1
	var bins int
	if iqr > 0 {
		width := 2 * iqr / math.Cbrt(float64(len(xs)))
		bins = int(math.Ceil((hi - lo) / width))
	} else {
		bins = int(math.Ceil(math.Log2(float64(len(xs))))) + 1
	}
	if bins < 8 {
		bins = 8
	}
	if bins > 256 {
		bins = 256
	}
	return NewHistogram(xs, bins, lo, hi)
}

// Add counts one value. Values outside [Lo, Hi] are clamped into the
// boundary bins (telemetry glitches shouldn't be silently lost).
func (h *Histogram) Add(x float64) {
	bins := len(h.Counts)
	width := (h.Hi - h.Lo) / float64(bins)
	i := int((x - h.Lo) / width)
	if i < 0 {
		i = 0
	}
	if i >= bins {
		i = bins - 1
	}
	h.Counts[i]++
	h.total++
}

// Total returns the number of counted values.
func (h *Histogram) Total() int { return h.total }

// BinWidth returns the width of each bin.
func (h *Histogram) BinWidth() float64 {
	return (h.Hi - h.Lo) / float64(len(h.Counts))
}

// BinCenter returns the center value of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.Lo + (float64(i)+0.5)*h.BinWidth()
}

// Density returns the normalized density of bin i (so that the sum of
// Density(i)·BinWidth over all bins is 1). Returns 0 for an empty
// histogram.
func (h *Histogram) Density(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / (float64(h.total) * h.BinWidth())
}

// PeakBin returns the index of the most populated bin (ties go to the
// lower index). Returns -1 for an empty histogram.
func (h *Histogram) PeakBin() int {
	if h.total == 0 {
		return -1
	}
	best, bestC := 0, -1
	for i, c := range h.Counts {
		if c > bestC {
			best, bestC = i, c
		}
	}
	return best
}
