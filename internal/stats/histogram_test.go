package stats

import (
	"math"
	"testing"

	"vasppower/internal/rng"
)

func TestHistogramBasic(t *testing.T) {
	xs := []float64{0.5, 1.5, 1.6, 2.5, 3.5}
	h := NewHistogram(xs, 4, 0, 4)
	want := []int{1, 2, 1, 1}
	for i, w := range want {
		if h.Counts[i] != w {
			t.Fatalf("bin %d = %d, want %d (all: %v)", i, h.Counts[i], w, h.Counts)
		}
	}
	if h.Total() != 5 {
		t.Fatalf("total = %d", h.Total())
	}
}

func TestHistogramBoundaryValueGoesToLastBin(t *testing.T) {
	h := NewHistogram([]float64{4.0}, 4, 0, 4)
	if h.Counts[3] != 1 {
		t.Fatalf("value at Hi not in last bin: %v", h.Counts)
	}
}

func TestHistogramClampsOutliers(t *testing.T) {
	h := NewHistogram([]float64{-100, 100}, 4, 0, 4)
	if h.Counts[0] != 1 || h.Counts[3] != 1 {
		t.Fatalf("outliers not clamped: %v", h.Counts)
	}
	if h.Total() != 2 {
		t.Fatal("outliers lost")
	}
}

func TestHistogramDensityNormalized(t *testing.T) {
	r := rng.New(1)
	xs := make([]float64, 10000)
	for i := range xs {
		xs[i] = r.Uniform(0, 10)
	}
	h := NewHistogram(xs, 20, 0, 10)
	var integral float64
	for i := range h.Counts {
		integral += h.Density(i) * h.BinWidth()
	}
	if math.Abs(integral-1) > 1e-9 {
		t.Fatalf("density integral = %v, want 1", integral)
	}
}

func TestHistogramPeakBin(t *testing.T) {
	xs := []float64{1, 1, 1, 3}
	h := NewHistogram(xs, 4, 0, 4)
	if got := h.PeakBin(); got != 1 {
		t.Fatalf("PeakBin = %d, want 1", got)
	}
	empty := NewHistogram(nil, 4, 0, 4)
	if empty.PeakBin() != -1 {
		t.Fatal("empty PeakBin should be -1")
	}
	if empty.Density(0) != 0 {
		t.Fatal("empty density should be 0")
	}
}

func TestHistogramBinCenter(t *testing.T) {
	h := NewHistogram(nil, 4, 0, 8)
	if h.BinWidth() != 2 {
		t.Fatalf("BinWidth = %v", h.BinWidth())
	}
	if h.BinCenter(0) != 1 || h.BinCenter(3) != 7 {
		t.Fatalf("BinCenter wrong: %v, %v", h.BinCenter(0), h.BinCenter(3))
	}
}

func TestHistogramPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("zero bins", func() { NewHistogram(nil, 0, 0, 1) })
	mustPanic("empty range", func() { NewHistogram(nil, 4, 1, 1) })
}

func TestAutoHistogram(t *testing.T) {
	r := rng.New(2)
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = r.Normal(500, 50)
	}
	h := AutoHistogram(xs)
	if h.Total() != 5000 {
		t.Fatalf("auto histogram lost samples: %d", h.Total())
	}
	if len(h.Counts) < 8 || len(h.Counts) > 256 {
		t.Fatalf("bin count out of clamp: %d", len(h.Counts))
	}
	// Peak bin should be near 500.
	c := h.BinCenter(h.PeakBin())
	if math.Abs(c-500) > 50 {
		t.Fatalf("auto histogram peak at %v, want ≈ 500", c)
	}
	// Degenerate inputs do not panic.
	if AutoHistogram(nil).Total() != 0 {
		t.Fatal("empty auto histogram should be empty")
	}
	if AutoHistogram([]float64{5, 5, 5}).Total() != 3 {
		t.Fatal("constant auto histogram lost samples")
	}
}

func TestViolin(t *testing.T) {
	r := rng.New(3)
	var xs []float64
	for i := 0; i < 5000; i++ {
		xs = append(xs, r.Normal(700, 25))
	}
	for i := 0; i < 5000; i++ {
		xs = append(xs, r.Normal(1400, 25))
	}
	v := NewViolin("test", xs)
	if v == nil {
		t.Fatal("nil violin")
	}
	if !v.IsMultiModal() {
		t.Fatal("bimodal sample not detected as multi-modal")
	}
	hpm, ok := v.HighPowerMode()
	if !ok || math.Abs(hpm.X-1400) > 15 {
		t.Fatalf("violin high power mode = %+v", hpm)
	}
	if v.Summary.N != 10000 {
		t.Fatalf("violin summary N = %d", v.Summary.N)
	}
	if NewViolin("empty", nil) != nil {
		t.Fatal("empty violin should be nil")
	}
	var nilV *Violin
	if _, ok := nilV.HighPowerMode(); ok {
		t.Fatal("nil violin should have no mode")
	}
	if nilV.IsMultiModal() {
		t.Fatal("nil violin should not be multimodal")
	}
}
