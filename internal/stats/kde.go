package stats

import (
	"math"
	"sort"
)

// KDE is a Gaussian kernel density estimate over a uniform evaluation
// grid. The paper determines the "high power mode" from the KDE of the
// power timeline data (§III-B.3).
type KDE struct {
	Xs        []float64 // grid points (strictly increasing, uniform)
	Density   []float64 // estimated density at each grid point
	Bandwidth float64
}

// SilvermanBandwidth returns Silverman's rule-of-thumb bandwidth:
// 0.9·min(σ, IQR/1.34)·n^(−1/5). Degenerate samples (zero spread) get
// a small positive bandwidth so the KDE remains well-defined.
func SilvermanBandwidth(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	s, _ := Describe(xs)
	spread := s.StdDev
	if iqr := (s.Q3 - s.Q1) / 1.34; iqr > 0 && iqr < spread {
		spread = iqr
	}
	if spread <= 0 {
		// Constant sample: pick a bandwidth proportional to the value
		// scale so the density is a narrow bump, not a delta.
		spread = math.Max(1e-6, math.Abs(s.Mean)*1e-3)
	}
	return 0.9 * spread * math.Pow(float64(len(xs)), -0.2)
}

// NewKDE estimates the density of xs on a uniform grid of gridN points
// spanning [min−3h, max+3h], with bandwidth h. If h <= 0, Silverman's
// rule is used. gridN < 2 panics. The Gaussian kernel is truncated at
// 4 bandwidths (pointwise relative error below ~1e−4), which keeps the
// evaluation linear in the number of contributing (sample, grid point)
// pairs rather than the full n×gridN product.
func NewKDE(xs []float64, h float64, gridN int) *KDE {
	if gridN < 2 {
		panic("stats: KDE grid too small")
	}
	if len(xs) == 0 {
		return &KDE{Xs: []float64{0, 1}, Density: []float64{0, 0}, Bandwidth: 1}
	}
	if h <= 0 {
		h = SilvermanBandwidth(xs)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	lo := sorted[0] - 3*h
	hi := sorted[len(sorted)-1] + 3*h
	k := &KDE{
		Xs:        make([]float64, gridN),
		Density:   make([]float64, gridN),
		Bandwidth: h,
	}
	step := (hi - lo) / float64(gridN-1)
	invH := 1 / h
	norm := 1 / (float64(len(xs)) * h * math.Sqrt(2*math.Pi))
	// Truncate the kernel at |x−xi| > 4h: exp(−8) ≈ 3.4e−4 of the peak,
	// and the discarded tail mass per sample is 2(1−Φ(4)) ≈ 6e−5 — far
	// below every tolerance downstream. Grid points increase strictly,
	// so the contributing sample window [j0, j1) slides monotonically:
	// both edges only ever advance, making the window bookkeeping O(n)
	// over the whole grid instead of a binary search per grid point.
	cut := 4 * h
	j0, j1 := 0, 0
	for i := 0; i < gridN; i++ {
		x := lo + float64(i)*step
		k.Xs[i] = x
		for j0 < len(sorted) && sorted[j0] < x-cut {
			j0++
		}
		if j1 < j0 {
			j1 = j0
		}
		for j1 < len(sorted) && sorted[j1] <= x+cut {
			j1++
		}
		var d float64
		for j := j0; j < j1; j++ {
			u := (x - sorted[j]) * invH
			d += math.Exp(-0.5 * u * u)
		}
		k.Density[i] = d * norm
	}
	return k
}

// Step returns the grid spacing.
func (k *KDE) Step() float64 {
	if len(k.Xs) < 2 {
		return 0
	}
	return k.Xs[1] - k.Xs[0]
}

// Integral returns the trapezoidal integral of the density over the
// grid (≈ 1 for a well-resolved estimate).
func (k *KDE) Integral() float64 {
	var s float64
	for i := 1; i < len(k.Xs); i++ {
		s += (k.Xs[i] - k.Xs[i-1]) * (k.Density[i] + k.Density[i-1]) / 2
	}
	return s
}

// DensityAt evaluates the estimate at x by linear interpolation on the
// grid (0 outside the grid).
func (k *KDE) DensityAt(x float64) float64 {
	n := len(k.Xs)
	if n == 0 || x < k.Xs[0] || x > k.Xs[n-1] {
		return 0
	}
	i := sort.SearchFloat64s(k.Xs, x)
	if i == 0 {
		return k.Density[0]
	}
	if i >= n {
		return k.Density[n-1]
	}
	x0, x1 := k.Xs[i-1], k.Xs[i]
	f := (x - x0) / (x1 - x0)
	return k.Density[i-1]*(1-f) + k.Density[i]*f
}

// Mode is a local maximum of a KDE.
type Mode struct {
	X       float64 // location (watts, in our use)
	Density float64 // density at the peak
	// FWHM is the full width at half maximum of this mode's peak,
	// measured within the peak's basin (walking outward from the peak
	// until the density falls below half the peak density or a valley
	// is crossed).
	FWHM float64
}

// Modes returns the local maxima of the density curve, in increasing
// order of X, ignoring peaks whose density is below minRelDensity times
// the global maximum density (to suppress numerical ripples).
func (k *KDE) Modes(minRelDensity float64) []Mode {
	n := len(k.Xs)
	if n < 3 {
		return nil
	}
	var globalMax float64
	for _, d := range k.Density {
		if d > globalMax {
			globalMax = d
		}
	}
	if globalMax == 0 {
		return nil
	}
	thresh := minRelDensity * globalMax
	var modes []Mode
	for i := 1; i < n-1; i++ {
		d := k.Density[i]
		if d < thresh {
			continue
		}
		// A peak: strictly greater than the left neighbor and at least
		// as large as the right neighbor (plateaus yield their leftmost
		// point).
		if d > k.Density[i-1] && d >= k.Density[i+1] {
			modes = append(modes, Mode{
				X:       k.Xs[i],
				Density: d,
				FWHM:    k.fwhmAt(i),
			})
		}
	}
	return modes
}

// fwhmAt measures the full width at half maximum of the peak at grid
// index i, walking outward until the density drops below half of the
// peak value. Interpolates the crossing points linearly. If the
// density never falls below half within the grid (e.g. a shoulder), the
// grid edge bounds the width.
func (k *KDE) fwhmAt(i int) float64 {
	half := k.Density[i] / 2
	// Walk left.
	left := k.Xs[0]
	for j := i; j > 0; j-- {
		if k.Density[j-1] < half {
			// Crossing between j-1 and j.
			d0, d1 := k.Density[j-1], k.Density[j]
			f := (half - d0) / (d1 - d0)
			left = k.Xs[j-1] + f*(k.Xs[j]-k.Xs[j-1])
			break
		}
	}
	// Walk right.
	right := k.Xs[len(k.Xs)-1]
	for j := i; j < len(k.Xs)-1; j++ {
		if k.Density[j+1] < half {
			d0, d1 := k.Density[j], k.Density[j+1]
			f := (d0 - half) / (d0 - d1)
			right = k.Xs[j] + f*(k.Xs[j+1]-k.Xs[j])
			break
		}
	}
	return right - left
}

// HighPowerMode returns the paper's headline metric: the mode at the
// highest power (the rightmost local maximum whose density is at least
// minRelDensity of the global peak). ok is false when no mode exists.
//
// The paper argues this is a better power-management metric than the
// mean (multi-modal timelines) or the max (brief spikes).
func (k *KDE) HighPowerMode(minRelDensity float64) (Mode, bool) {
	modes := k.Modes(minRelDensity)
	if len(modes) == 0 {
		return Mode{}, false
	}
	return modes[len(modes)-1], true
}

// DefaultModeThreshold is the relative-density cutoff used throughout
// the experiments when locating modes: a local maximum must reach 10%
// of the global density peak to count as a mode. This mirrors the
// paper's KDE-based visual identification, which ignores negligible
// ripples.
const DefaultModeThreshold = 0.10

// HighPowerModeOf is a convenience wrapper: Silverman KDE on a
// 512-point grid, then HighPowerMode with the default threshold.
func HighPowerModeOf(xs []float64) (Mode, bool) {
	if len(xs) == 0 {
		return Mode{}, false
	}
	k := NewKDE(xs, 0, 512)
	return k.HighPowerMode(DefaultModeThreshold)
}
